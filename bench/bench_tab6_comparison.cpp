// Table VI: Dijkstra vs PHAST vs GPHAST — best configuration of each, with
// the time and energy to solve all-pairs shortest paths (n trees).
//
// Energy uses the paper's wall-power constants (M1-4 alone: 163 W; with a
// GTX 580: 375 W; with a GTX 480: 390 W) times measured/modeled time — the
// same methodology, not the same absolute joules. Expected shape: PHAST is
// 1-2 orders over Dijkstra; GPHAST (modeled) adds another order and wins
// on energy per tree.
#include <cstdio>
#include <vector>

#include "common.h"
#include "dijkstra/dijkstra.h"
#include "gpusim/gphast.h"
#include "phast/batch.h"
#include "phast/phast.h"
#include "pq/dial_buckets.h"
#include "util/omp_env.h"
#include "util/timer.h"

using namespace phast;
using namespace phast::bench;

namespace {

struct Row {
  const char* algorithm;
  const char* device;
  double ms_per_tree;
  double watts;
};

void PrintRow(const Row& row, uint64_t n) {
  const double joules_per_tree = row.watts * row.ms_per_tree / 1e3;
  const double apsp_seconds = row.ms_per_tree * static_cast<double>(n) / 1e3;
  // Paper-scale column: n trees on the 18M-vertex Europe instance, assuming
  // ms/tree scales linearly with n (the sweep is linear in n + m).
  constexpr double kEuropeVertices = 18e6;
  const double europe_ms_per_tree =
      row.ms_per_tree * kEuropeVertices / static_cast<double>(n);
  const double europe_apsp_seconds =
      europe_ms_per_tree * kEuropeVertices / 1e3;
  std::printf("%-10s%-22s%12.3f%12.2f%15s%17s\n", row.algorithm, row.device,
              row.ms_per_tree, joules_per_tree,
              FormatDaysHoursMinutes(apsp_seconds).c_str(),
              FormatDaysHoursMinutes(europe_apsp_seconds).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const BenchConfig config = BenchConfig::FromCommandLine(cli);

  std::printf("=== Table VI: Dijkstra vs PHAST vs GPHAST ===\n");
  const Instance instance = MakeCountryInstance(
      "country-time", config.width, config.height, Metric::kTravelTime,
      config.seed);
  const Graph& g = instance.graph;
  const VertexId n = g.NumVertices();
  const std::vector<VertexId> sources =
      SampleSources(n, config.num_sources, config.seed + 11);

  // Dijkstra, best config: Dial's buckets, all cores (trees per core).
  double dijkstra_ms;
  {
    Timer timer;
#pragma omp parallel default(none) shared(g, sources) firstprivate(n)
    {
      DialBuckets queue(n, MaxArcWeight(g));
      std::vector<Weight> dist(n);
#pragma omp for schedule(dynamic, 1)
      for (int64_t i = 0; i < static_cast<int64_t>(sources.size()); ++i) {
        DijkstraInto(g, sources[static_cast<size_t>(i)], queue, dist, {});
      }
    }
    dijkstra_ms = timer.ElapsedMs() / static_cast<double>(sources.size());
  }

  // PHAST, best config: k=16, SIMD, all cores.
  const Phast engine(instance.ch);
  double phast_ms;
  {
    BatchOptions options;
    options.trees_per_sweep = 16;
    const std::vector<VertexId> batch_sources =
        SampleSources(n, std::max<size_t>(16, config.num_sources), 99);
    Timer timer;
    ComputeManyTrees(engine, batch_sources, options,
                     [](size_t, const Phast::Workspace&, uint32_t) {});
    phast_ms = timer.ElapsedMs() / static_cast<double>(batch_sources.size());
  }

  // GPHAST on both modeled Fermi cards, k=16.
  const auto gphast_ms = [&](const DeviceSpec& spec) {
    const Phast::Options options;  // level-reordered
    Gphast gpu(engine, spec);
    constexpr uint32_t k = 16;
    Phast::Workspace ws = engine.MakeWorkspace(k);
    const std::vector<VertexId> batch = SampleSources(n, k, 7);
    const Gphast::Result r = gpu.ComputeTrees(batch, ws);
    return (r.modeled_device_seconds + r.host_seconds) * 1e3 / k;
  };

  std::printf("\n%-10s%-22s%12s%12s%15s%17s\n", "algorithm", "device",
              "ms/tree", "J/tree", "n trees", "@Europe scale");
  std::printf("%-44s%12s%12s%15s%17s\n", "", "", "", "(d:hh:mm:ss)",
              "(projected)");
  PrintRow({"Dijkstra", "host (all cores)", dijkstra_ms, 163.0}, n);
  PrintRow({"PHAST", "host (k=16, SIMD)", phast_ms, 163.0}, n);
  PrintRow({"GPHAST", "sim-GTX480 (k=16)", gphast_ms(DeviceSpec::Gtx480()),
            390.0},
           n);
  PrintRow({"GPHAST", "sim-GTX580 (k=16)", gphast_ms(DeviceSpec::Gtx580()),
            375.0},
           n);

  std::printf(
      "\nprojection note: linear scaling flatters Dijkstra — at 18M vertices"
      " it pays cache misses our L3-resident instance never sees, which is"
      " where the paper's larger gaps come from (see bench_scaling).\n");
  std::printf("\nPHAST vs Dijkstra:  %.1fx\n", dijkstra_ms / phast_ms);
  std::printf("GPHAST vs Dijkstra: %.0fx (modeled; paper: ~1280x)\n",
              dijkstra_ms / gphast_ms(DeviceSpec::Gtx580()));

  // CH preprocessing amortization (paper: 319 trees vs 4-core Dijkstra).
  const double prep_ms = instance.ch_stats.seconds * 1e3;
  const double g580 = gphast_ms(DeviceSpec::Gtx580());
  if (dijkstra_ms > g580) {
    std::printf("preprocessing amortized after %.0f trees (paper: 319)\n",
                prep_ms / (dijkstra_ms - g580));
  }
  return 0;
}

// Scaling study (supports Tables I & VI): the PHAST-vs-Dijkstra gap as a
// function of instance size.
//
// The paper's headline factors (16.5x single-core, three orders of
// magnitude with a GPU) arise at 18M vertices, where Dijkstra's scattered
// accesses miss in cache while PHAST streams. This host has a 260 MB L3
// that swallows every instance we can preprocess in-bench, so absolute
// factors are compressed — but the *trend* must show: the ratio grows
// monotonically with n. This binary measures exactly that.
#include <cstdio>
#include <vector>

#include "common.h"
#include "dijkstra/dijkstra.h"
#include "graph/connectivity.h"
#include "gpusim/gphast.h"
#include "phast/batch.h"
#include "phast/phast.h"
#include "pq/dial_buckets.h"
#include "util/timer.h"

using namespace phast;
using namespace phast::bench;

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const size_t num_sources =
      static_cast<size_t>(cli.GetInt("sources", 6));
  const uint32_t max_side = static_cast<uint32_t>(cli.GetInt("max-side", 288));

  std::printf("=== Scaling: PHAST vs Dijkstra by instance size ===\n\n");
  std::printf("%10s%12s%14s%14s%12s%14s\n", "vertices", "arcs", "Dijkstra",
              "PHAST k=1", "ratio", "GPHAST k=16");

  for (uint32_t side = 36; side <= max_side; side *= 2) {
    CountryParams params;
    params.width = side;
    params.height = side;
    const GeneratedGraph raw = GenerateCountry(params);
    const SubgraphResult scc = LargestStronglyConnectedComponent(raw.edges);
    const Graph g = Graph::FromEdgeList(scc.edges);
    const CHData ch = BuildContractionHierarchy(g);
    const Phast engine(ch);

    const std::vector<VertexId> sources =
        SampleSources(g.NumVertices(), num_sources, side);

    double dijkstra_ms;
    {
      DialBuckets queue(g.NumVertices(), MaxArcWeight(g));
      std::vector<Weight> dist(g.NumVertices());
      Timer timer;
      for (const VertexId s : sources) DijkstraInto(g, s, queue, dist, {});
      dijkstra_ms = timer.ElapsedMs() / static_cast<double>(sources.size());
    }
    double phast_ms;
    {
      Phast::Workspace ws = engine.MakeWorkspace();
      Timer timer;
      for (const VertexId s : sources) engine.ComputeTree(s, ws);
      phast_ms = timer.ElapsedMs() / static_cast<double>(sources.size());
    }
    double gphast_ms;
    {
      Gphast gpu(engine);
      constexpr uint32_t k = 16;
      Phast::Workspace ws = engine.MakeWorkspace(k);
      const std::vector<VertexId> batch =
          SampleSources(g.NumVertices(), k, side + 1);
      const Gphast::Result r = gpu.ComputeTrees(batch, ws);
      gphast_ms = (r.modeled_device_seconds + r.host_seconds) * 1e3 / k;
    }

    std::printf("%10u%12zu%12.2fms%12.2fms%11.1fx%12.3fms\n",
                g.NumVertices(), g.NumArcs(), dijkstra_ms, phast_ms,
                dijkstra_ms / phast_ms, gphast_ms);
  }
  std::printf(
      "\nreading: while instances fit the last-level cache, the ratio "
      "plateaus at PHAST's pure instruction-count advantage (~1.5-2x: one "
      "relaxation per arc, no queue). The paper's 16.5x appears once "
      "Dijkstra's scattered accesses miss LLC (18M vertices vs a %d MB LLC "
      "here); the GPHAST column already shows the bandwidth story via the "
      "modeled device.\n",
      260);
  return 0;
}

// bench_server — serving-subsystem throughput (DESIGN.md §7).
//
// Drives the OracleService in-process (no sockets, so the numbers isolate
// the scheduler: batching, caching, shedding) with seeded Zipf client
// threads and reports one JSON object per configuration:
//
//   {"config": "...", "clients": 4, "throughput_rps": ..., "p50_ms": ...,
//    "p99_ms": ..., "cache_hit_rate": ..., "mean_batch_width": ...}
//
// Sweeps the knobs the serving design cares about: worker count, batch cap
// (coalescing width), and cache capacity under a skewed source
// distribution.
//
// A fourth axis models the scale-out fabric in-process: N replica engines
// built as zero-copy views over one mapped PHSNAP02 snapshot, requests
// fanned out by the router's consistent-hash ring. The snapshot rows also
// record cold-start time (mmap + shallow-validated engine vs stream
// copy-load) so the O(TOC) start claim has a tracked number.
//
//   bench_server [--width=160 --height=160 --seed=1]
//                [--requests=4000] [--clients=8] [--zipf-skew=0.99]
//                [--replicas-list=1,2,4]
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "common.h"
#include "fabric/mapping.h"
#include "fabric/router.h"
#include "phast/phast.h"
#include "server/metrics.h"
#include "server/service.h"
#include "server/snapshot.h"
#include "server/workload.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace phast;
using namespace phast::bench;
using namespace phast::server;

struct RunResult {
  double elapsed_sec = 0.0;
  uint64_t answered = 0;
  std::vector<double> latencies_ms;
};

RunResult DriveClients(OracleService& service, uint32_t clients,
                       uint64_t requests_per_client, uint32_t window,
                       const WorkloadOptions& wl,
                       const std::vector<VertexId>& rank_to_vertex) {
  std::vector<std::vector<double>> latencies(clients);
  const Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(wl.seed * 0x9E3779B9ULL + c + 1);
      const ZipfSampler zipf(
          static_cast<uint32_t>(rank_to_vertex.size()), wl.zipf_skew);
      std::vector<std::future<Response>> in_flight;
      for (uint64_t i = 0; i < requests_per_client; ++i) {
        in_flight.push_back(
            service.Submit(DrawRequest(wl, zipf, rank_to_vertex, rng)));
        if (in_flight.size() >= window) {
          latencies[c].push_back(in_flight.front().get().latency_ms);
          in_flight.erase(in_flight.begin());
        }
      }
      for (auto& f : in_flight) latencies[c].push_back(f.get().latency_ms);
    });
  }
  for (std::thread& t : threads) t.join();

  RunResult result;
  result.elapsed_sec = wall.ElapsedSec();
  for (auto& per_thread : latencies) {
    result.answered += per_thread.size();
    result.latencies_ms.insert(result.latencies_ms.end(), per_thread.begin(),
                               per_thread.end());
  }
  std::sort(result.latencies_ms.begin(), result.latencies_ms.end());
  return result;
}

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

void RunConfig(const char* label, BenchReport& report, const Phast& engine,
               ServiceOptions options, uint32_t clients, uint64_t requests,
               uint32_t window, const WorkloadOptions& wl,
               const std::vector<VertexId>& rank_to_vertex) {
  MetricsRegistry metrics;
  OracleService service(engine, options, metrics);
  const RunResult run = DriveClients(
      service, clients, std::max<uint64_t>(1, requests / clients), window, wl,
      rank_to_vertex);
  service.Stop();

  const ServiceCounters c = service.Counters();
  const uint64_t cache_lookups = c.cache_hits + c.cache_misses;
  const double mean_width =
      c.batches > 0
          ? static_cast<double>(c.cache_misses > 0 ? c.cache_misses
                                                   : c.completed) /
                static_cast<double>(c.batches)
          : 0.0;
  const double throughput =
      static_cast<double>(run.answered) / run.elapsed_sec;
  const double p50 = Percentile(run.latencies_ms, 0.50);
  const double p95 = Percentile(run.latencies_ms, 0.95);
  const double p99 = Percentile(run.latencies_ms, 0.99);
  const double hit_rate =
      cache_lookups > 0
          ? static_cast<double>(c.cache_hits) / static_cast<double>(cache_lookups)
          : 0.0;
  std::printf(
      "{\"config\": \"%s\", \"workers\": %u, \"max_batch\": %u, "
      "\"cache\": %zu, \"clients\": %u, \"requests\": %llu, "
      "\"throughput_rps\": %.1f, \"p50_ms\": %.3f, \"p95_ms\": %.3f, "
      "\"p99_ms\": %.3f, \"cache_hit_rate\": %.3f, "
      "\"mean_batch_width\": %.2f, \"shed\": %llu}\n",
      label, options.num_workers, options.max_batch, options.cache_capacity,
      clients, static_cast<unsigned long long>(run.answered), throughput, p50,
      p95, p99, hit_rate, mean_width,
      static_cast<unsigned long long>(c.Shed()));
  std::fflush(stdout);
  report.AddRow(label)
      .Add("workers", options.num_workers)
      .Add("max_batch", options.max_batch)
      .Add("cache", options.cache_capacity)
      .Add("requests", run.answered)
      .Add("throughput_rps", throughput)
      .Add("p50_ms", p50)
      .Add("p95_ms", p95)
      .Add("p99_ms", p99)
      .Add("cache_hit_rate", hit_rate)
      .Add("mean_batch_width", mean_width)
      .Add("shed", c.Shed());
}

/// Parses "1,2,4" into replica counts.
std::vector<uint32_t> ParseReplicasList(const std::string& list) {
  std::vector<uint32_t> replicas;
  std::stringstream in(list);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    replicas.push_back(static_cast<uint32_t>(std::stoul(item)));
  }
  Require(!replicas.empty(), "--replicas-list must name at least one count");
  return replicas;
}

/// The replica axis: requests fan out over `services` by the same
/// consistent-hash-by-source placement phast_router uses, so the numbers
/// capture the fabric's partitioning (per-replica cache locality) without
/// socket noise.
RunResult DriveReplicas(std::vector<std::unique_ptr<OracleService>>& services,
                        const fabric::ConsistentHashRing& ring,
                        uint32_t clients, uint64_t requests_per_client,
                        uint32_t window, const WorkloadOptions& wl,
                        const std::vector<VertexId>& rank_to_vertex) {
  std::vector<std::vector<double>> latencies(clients);
  const Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(wl.seed * 0x9E3779B9ULL + c + 1);
      const ZipfSampler zipf(
          static_cast<uint32_t>(rank_to_vertex.size()), wl.zipf_skew);
      std::vector<std::future<Response>> in_flight;
      for (uint64_t i = 0; i < requests_per_client; ++i) {
        const Request request = DrawRequest(wl, zipf, rank_to_vertex, rng);
        OracleService& replica = *services[ring.Pick(request.source)];
        in_flight.push_back(replica.Submit(request));
        if (in_flight.size() >= window) {
          latencies[c].push_back(in_flight.front().get().latency_ms);
          in_flight.erase(in_flight.begin());
        }
      }
      for (auto& f : in_flight) latencies[c].push_back(f.get().latency_ms);
    });
  }
  for (std::thread& t : threads) t.join();

  RunResult result;
  result.elapsed_sec = wall.ElapsedSec();
  for (auto& per_thread : latencies) {
    result.answered += per_thread.size();
    result.latencies_ms.insert(result.latencies_ms.end(), per_thread.begin(),
                               per_thread.end());
  }
  std::sort(result.latencies_ms.begin(), result.latencies_ms.end());
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const BenchConfig config = BenchConfig::FromCommandLine(cli);
  const uint64_t requests =
      static_cast<uint64_t>(cli.GetInt("requests", 4000));
  const uint32_t clients = static_cast<uint32_t>(cli.GetInt("clients", 8));
  const uint32_t window = static_cast<uint32_t>(cli.GetInt("window", 8));

  const Instance instance =
      MakeCountryInstance("country", config.width, config.height,
                          Metric::kTravelTime, config.seed);
  const Phast engine(instance.ch);
  std::fprintf(stderr, "bench_server: %u vertices, %u levels\n",
               engine.NumVertices(), engine.NumLevels());
  BenchReport report("server");
  report.AddConfig("width", config.width);
  report.AddConfig("height", config.height);
  report.AddConfig("seed", config.seed);
  report.AddConfig("n", engine.NumVertices());
  report.AddConfig("clients", clients);
  report.AddConfig("requests", requests);
  report.AddConfig("window", window);

  WorkloadOptions wl;
  wl.seed = config.seed;
  wl.zipf_skew = cli.GetDouble("zipf-skew", 0.99);
  wl.full_tree_fraction = cli.GetDouble("full-tree-fraction", 0.1);
  const std::vector<VertexId> ranks =
      MakeRankMapping(engine.NumVertices(), wl.seed);

  // Axis 1: worker scaling at fixed batch/cache.
  for (const uint32_t workers : {1u, 2u, 4u}) {
    ServiceOptions options;
    options.num_workers = workers;
    options.max_batch = 8;
    options.cache_capacity = 32;
    options.queue_capacity = 4096;
    RunConfig("workers", report, engine, options, clients, requests, window, wl, ranks);
  }
  // Axis 2: coalescing width (max_batch 1 disables batching entirely).
  for (const uint32_t max_batch : {1u, 4u, 16u}) {
    ServiceOptions options;
    options.num_workers = 2;
    options.max_batch = max_batch;
    options.cache_capacity = 32;
    options.queue_capacity = 4096;
    RunConfig("batch", report, engine, options, clients, requests, window, wl, ranks);
  }
  // Axis 3: the cache under Zipf skew (0 = off).
  for (const size_t cache : {size_t{0}, size_t{32}, size_t{256}}) {
    ServiceOptions options;
    options.num_workers = 2;
    options.max_batch = 8;
    options.cache_capacity = cache;
    options.queue_capacity = 4096;
    RunConfig("cache", report, engine, options, clients, requests, window, wl, ranks);
  }

  // Axis 4: the scale-out fabric. One PHSNAP02 snapshot, mapped once;
  // each replica is a zero-copy view engine over the shared mapping.
  const std::vector<uint32_t> replicas_list =
      ParseReplicasList(cli.GetString("replicas-list", "1,2,4"));
  const std::string snap_path = cli.GetString(
      "snapshot-path", "/tmp/bench_server_" + std::to_string(::getpid()) +
                           ".snap");
  server::WriteSnapshotFile(server::MakeSnapshot(engine, &instance.graph),
                            snap_path, server::SnapshotFormat::kPhsnap02);

  // Cold start: mmap + O(TOC) header check + shallow-validated engine,
  // versus the stream loader's read-everything copy-load.
  const Timer cold_timer;
  std::optional<fabric::MappedSnapshot> mapped;
  mapped.emplace(snap_path, fabric::VerifyMode::kOff);
  std::optional<Phast> cold_engine;
  cold_engine.emplace(mapped->LayoutView(), mapped->Validation());
  const double cold_start_ms = cold_timer.ElapsedMs();
  cold_engine.reset();

  const Timer copy_timer;
  {
    server::Snapshot loaded = server::ReadSnapshotFile(snap_path);
    const Phast copy_engine(std::move(loaded.layout));
    (void)copy_engine;
  }
  const double copy_load_ms = copy_timer.ElapsedMs();
  std::printf(
      "{\"config\": \"cold_start\", \"cold_start_ms\": %.3f, "
      "\"copy_load_ms\": %.3f, \"mapped_bytes\": %zu}\n",
      cold_start_ms, copy_load_ms, mapped->MappedBytes());
  std::fflush(stdout);
  report.AddRow("cold_start")
      .Add("cold_start_ms", cold_start_ms)
      .Add("copy_load_ms", copy_load_ms)
      .Add("mapped_bytes", mapped->MappedBytes());

  for (const uint32_t num_replicas : replicas_list) {
    std::vector<Phast> view_engines;
    view_engines.reserve(num_replicas);
    std::vector<std::unique_ptr<OracleService>> services;
    std::vector<std::unique_ptr<MetricsRegistry>> registries;
    for (uint32_t r = 0; r < num_replicas; ++r) {
      view_engines.emplace_back(mapped->LayoutView(), mapped->Validation());
      ServiceOptions options;
      options.num_workers = 1;  // one worker per replica, like phast_serve
      options.max_batch = 8;
      options.cache_capacity = 32;
      options.queue_capacity = 4096;
      registries.push_back(std::make_unique<MetricsRegistry>());
      services.push_back(std::make_unique<OracleService>(
          view_engines.back(), options, *registries.back()));
    }
    const fabric::ConsistentHashRing ring(num_replicas);
    const RunResult run = DriveReplicas(
        services, ring, clients, std::max<uint64_t>(1, requests / clients),
        window, wl, ranks);
    for (auto& service : services) service->Stop();

    const double throughput =
        static_cast<double>(run.answered) / run.elapsed_sec;
    const double p50 = Percentile(run.latencies_ms, 0.50);
    const double p99 = Percentile(run.latencies_ms, 0.99);
    std::printf(
        "{\"config\": \"replicas\", \"replicas\": %u, \"requests\": %llu, "
        "\"throughput_rps\": %.1f, \"p50_ms\": %.3f, \"p99_ms\": %.3f}\n",
        num_replicas, static_cast<unsigned long long>(run.answered),
        throughput, p50, p99);
    std::fflush(stdout);
    report.AddRow("replicas")
        .Add("replicas", num_replicas)
        .Add("requests", run.answered)
        .Add("throughput_rps", throughput)
        .Add("p50_ms", p50)
        .Add("p99_ms", p99);
  }
  std::remove(snap_path.c_str());

  report.WriteJsonIfRequested(cli);
  return 0;
}

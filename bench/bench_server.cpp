// bench_server — serving-subsystem throughput (DESIGN.md §7).
//
// Drives the OracleService in-process (no sockets, so the numbers isolate
// the scheduler: batching, caching, shedding) with seeded Zipf client
// threads and reports one JSON object per configuration:
//
//   {"config": "...", "clients": 4, "throughput_rps": ..., "p50_ms": ...,
//    "p99_ms": ..., "cache_hit_rate": ..., "mean_batch_width": ...}
//
// Sweeps the knobs the serving design cares about: worker count, batch cap
// (coalescing width), and cache capacity under a skewed source
// distribution.
//
//   bench_server [--width=160 --height=160 --seed=1]
//                [--requests=4000] [--clients=8] [--zipf-skew=0.99]
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common.h"
#include "phast/phast.h"
#include "server/metrics.h"
#include "server/service.h"
#include "server/workload.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace phast;
using namespace phast::bench;
using namespace phast::server;

struct RunResult {
  double elapsed_sec = 0.0;
  uint64_t answered = 0;
  std::vector<double> latencies_ms;
};

RunResult DriveClients(OracleService& service, uint32_t clients,
                       uint64_t requests_per_client, uint32_t window,
                       const WorkloadOptions& wl,
                       const std::vector<VertexId>& rank_to_vertex) {
  std::vector<std::vector<double>> latencies(clients);
  const Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(wl.seed * 0x9E3779B9ULL + c + 1);
      const ZipfSampler zipf(
          static_cast<uint32_t>(rank_to_vertex.size()), wl.zipf_skew);
      std::vector<std::future<Response>> in_flight;
      for (uint64_t i = 0; i < requests_per_client; ++i) {
        in_flight.push_back(
            service.Submit(DrawRequest(wl, zipf, rank_to_vertex, rng)));
        if (in_flight.size() >= window) {
          latencies[c].push_back(in_flight.front().get().latency_ms);
          in_flight.erase(in_flight.begin());
        }
      }
      for (auto& f : in_flight) latencies[c].push_back(f.get().latency_ms);
    });
  }
  for (std::thread& t : threads) t.join();

  RunResult result;
  result.elapsed_sec = wall.ElapsedSec();
  for (auto& per_thread : latencies) {
    result.answered += per_thread.size();
    result.latencies_ms.insert(result.latencies_ms.end(), per_thread.begin(),
                               per_thread.end());
  }
  std::sort(result.latencies_ms.begin(), result.latencies_ms.end());
  return result;
}

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

void RunConfig(const char* label, BenchReport& report, const Phast& engine,
               ServiceOptions options, uint32_t clients, uint64_t requests,
               uint32_t window, const WorkloadOptions& wl,
               const std::vector<VertexId>& rank_to_vertex) {
  MetricsRegistry metrics;
  OracleService service(engine, options, metrics);
  const RunResult run = DriveClients(
      service, clients, std::max<uint64_t>(1, requests / clients), window, wl,
      rank_to_vertex);
  service.Stop();

  const ServiceCounters c = service.Counters();
  const uint64_t cache_lookups = c.cache_hits + c.cache_misses;
  const double mean_width =
      c.batches > 0
          ? static_cast<double>(c.cache_misses > 0 ? c.cache_misses
                                                   : c.completed) /
                static_cast<double>(c.batches)
          : 0.0;
  const double throughput =
      static_cast<double>(run.answered) / run.elapsed_sec;
  const double p50 = Percentile(run.latencies_ms, 0.50);
  const double p95 = Percentile(run.latencies_ms, 0.95);
  const double p99 = Percentile(run.latencies_ms, 0.99);
  const double hit_rate =
      cache_lookups > 0
          ? static_cast<double>(c.cache_hits) / static_cast<double>(cache_lookups)
          : 0.0;
  std::printf(
      "{\"config\": \"%s\", \"workers\": %u, \"max_batch\": %u, "
      "\"cache\": %zu, \"clients\": %u, \"requests\": %llu, "
      "\"throughput_rps\": %.1f, \"p50_ms\": %.3f, \"p95_ms\": %.3f, "
      "\"p99_ms\": %.3f, \"cache_hit_rate\": %.3f, "
      "\"mean_batch_width\": %.2f, \"shed\": %llu}\n",
      label, options.num_workers, options.max_batch, options.cache_capacity,
      clients, static_cast<unsigned long long>(run.answered), throughput, p50,
      p95, p99, hit_rate, mean_width,
      static_cast<unsigned long long>(c.Shed()));
  std::fflush(stdout);
  report.AddRow(label)
      .Add("workers", options.num_workers)
      .Add("max_batch", options.max_batch)
      .Add("cache", options.cache_capacity)
      .Add("requests", run.answered)
      .Add("throughput_rps", throughput)
      .Add("p50_ms", p50)
      .Add("p95_ms", p95)
      .Add("p99_ms", p99)
      .Add("cache_hit_rate", hit_rate)
      .Add("mean_batch_width", mean_width)
      .Add("shed", c.Shed());
}

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const BenchConfig config = BenchConfig::FromCommandLine(cli);
  const uint64_t requests =
      static_cast<uint64_t>(cli.GetInt("requests", 4000));
  const uint32_t clients = static_cast<uint32_t>(cli.GetInt("clients", 8));
  const uint32_t window = static_cast<uint32_t>(cli.GetInt("window", 8));

  const Instance instance =
      MakeCountryInstance("country", config.width, config.height,
                          Metric::kTravelTime, config.seed);
  const Phast engine(instance.ch);
  std::fprintf(stderr, "bench_server: %u vertices, %u levels\n",
               engine.NumVertices(), engine.NumLevels());
  BenchReport report("server");
  report.AddConfig("width", config.width);
  report.AddConfig("height", config.height);
  report.AddConfig("seed", config.seed);
  report.AddConfig("n", engine.NumVertices());
  report.AddConfig("clients", clients);
  report.AddConfig("requests", requests);
  report.AddConfig("window", window);

  WorkloadOptions wl;
  wl.seed = config.seed;
  wl.zipf_skew = cli.GetDouble("zipf-skew", 0.99);
  wl.full_tree_fraction = cli.GetDouble("full-tree-fraction", 0.1);
  const std::vector<VertexId> ranks =
      MakeRankMapping(engine.NumVertices(), wl.seed);

  // Axis 1: worker scaling at fixed batch/cache.
  for (const uint32_t workers : {1u, 2u, 4u}) {
    ServiceOptions options;
    options.num_workers = workers;
    options.max_batch = 8;
    options.cache_capacity = 32;
    options.queue_capacity = 4096;
    RunConfig("workers", report, engine, options, clients, requests, window, wl, ranks);
  }
  // Axis 2: coalescing width (max_batch 1 disables batching entirely).
  for (const uint32_t max_batch : {1u, 4u, 16u}) {
    ServiceOptions options;
    options.num_workers = 2;
    options.max_batch = max_batch;
    options.cache_capacity = 32;
    options.queue_capacity = 4096;
    RunConfig("batch", report, engine, options, clients, requests, window, wl, ranks);
  }
  // Axis 3: the cache under Zipf skew (0 = off).
  for (const size_t cache : {size_t{0}, size_t{32}, size_t{256}}) {
    ServiceOptions options;
    options.num_workers = 2;
    options.max_batch = 8;
    options.cache_capacity = cache;
    options.queue_capacity = 4096;
    RunConfig("cache", report, engine, options, clients, requests, window, wl, ranks);
  }
  report.WriteJsonIfRequested(cli);
  return 0;
}

// Tables IV & V: hardware impact on Dijkstra and PHAST.
//
// The paper measures five machines (M2-1 ... M4-12) with thread pinning.
// This environment is a single container, so we (a) measure the host with
// a thread sweep — single thread, one tree per core, 16 trees per sweep
// per core — and (b) model the paper's machines by scaling the measured
// host numbers: Dijkstra scales with core clock, the PHAST sweep with
// per-core memory bandwidth (it is bandwidth-bound, §VIII-C). The claim to
// preserve is relative: PHAST / Dijkstra ~ 19-21x on every machine.
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"
#include "dijkstra/dijkstra.h"
#include "phast/batch.h"
#include "phast/phast.h"
#include "pq/dial_buckets.h"
#include "util/omp_env.h"
#include "util/timer.h"

using namespace phast;
using namespace phast::bench;

namespace {

/// Approximate Table IV specs (clock GHz, total cores, per-core local
/// bandwidth GB/s, NUMA banks).
struct MachineSpec {
  const char* name;
  double clock_ghz;
  int cores;
  double bandwidth_gb_s;
  int numa_banks;
};

const MachineSpec kMachines[] = {
    {"M2-1 (2x Opteron)", 2.4, 2, 6.4, 2},
    {"M2-4 (2x Opteron)", 2.3, 8, 10.7, 2},
    {"M4-12 (4x Opteron)", 2.1, 48, 21.3, 8},
    {"M1-4 (Core-i7 920)", 2.67, 4, 25.6, 1},
    {"M2-6 (2x Xeon X5680)", 3.33, 12, 32.0, 2},
};
// Host times are calibrated against M1-4 (the paper's default machine).
const MachineSpec& kReference = kMachines[3];

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const BenchConfig config = BenchConfig::FromCommandLine(cli);

  std::printf("=== Tables IV & V: architecture impact ===\n");
  const Instance instance = MakeCountryInstance(
      "country-time", config.width, config.height, Metric::kTravelTime,
      config.seed);
  const Graph& g = instance.graph;
  const Phast engine(instance.ch);
  const std::vector<VertexId> sources =
      SampleSources(g.NumVertices(), config.num_sources, config.seed + 5);

  // --- measured host rows -------------------------------------------------
  double dijkstra_ms;
  {
    DialBuckets queue(g.NumVertices(), MaxArcWeight(g));
    std::vector<Weight> dist(g.NumVertices());
    Timer timer;
    for (const VertexId s : sources) DijkstraInto(g, s, queue, dist, {});
    dijkstra_ms = timer.ElapsedMs() / static_cast<double>(sources.size());
  }
  double phast_single_ms;
  {
    Phast::Workspace ws = engine.MakeWorkspace();
    Timer timer;
    for (const VertexId s : sources) engine.ComputeTree(s, ws);
    phast_single_ms = timer.ElapsedMs() / static_cast<double>(sources.size());
  }

  const int max_threads = MaxThreads();
  std::printf("\nmeasured on this host (%d hardware thread(s)):\n",
              max_threads);
  std::printf("%-34s%10.2f ms/tree\n", "Dijkstra (Dial), single thread",
              dijkstra_ms);
  std::printf("%-34s%10.2f ms/tree\n", "PHAST, single thread",
              phast_single_ms);

  for (int threads = 1; threads <= max_threads; threads *= 2) {
    ScopedNumThreads scope(threads);
    BatchOptions options;
    options.trees_per_sweep = 16;
    Timer timer;
    ComputeManyTrees(engine, sources, options,
                     [](size_t, const Phast::Workspace&, uint32_t) {});
    std::printf("PHAST, %2d thread(s), 16/sweep     %10.2f ms/tree\n", threads,
                timer.ElapsedMs() / static_cast<double>(sources.size()));
  }
  std::printf("PHAST/Dijkstra single-thread ratio: %.1fx (paper: ~19x)\n",
              dijkstra_ms / phast_single_ms);

  // --- modeled machine rows (Table V shape) -------------------------------
  std::printf(
      "\nmodeled from host measurements (Dijkstra ~ clock, PHAST sweep ~ "
      "per-core bandwidth), single thread, pinned:\n");
  std::printf("%-24s%10s%10s%12s%12s%8s\n", "machine", "clock", "cores",
              "Dij [ms]", "PHAST [ms]", "ratio");
  for (const MachineSpec& m : kMachines) {
    const double dij = dijkstra_ms * (kReference.clock_ghz / m.clock_ghz);
    const double ph =
        phast_single_ms * (kReference.bandwidth_gb_s / m.bandwidth_gb_s);
    std::printf("%-24s%9.2fG%10d%12.2f%12.2f%7.1fx\n", m.name, m.clock_ghz,
                m.cores, dij, ph, dij / ph);
  }
  std::printf(
      "\nnote: unpinned multi-socket runs degrade toward the slowest NUMA "
      "path (paper Table V); not reproducible in a 1-core container.\n");
  return 0;
}

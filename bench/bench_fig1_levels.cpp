// Figure 1: vertices per CH level.
//
// Paper claims (Europe, travel times): ~140 levels; half of all vertices in
// level 0; the lowest 20 levels hold all but ~100k vertices; all but ~1000
// vertices sit in the lowest 66 levels. We print the histogram plus the
// paper's three summary statistics for the synthetic country.
#include <cstdio>

#include "common.h"
#include "phast/phast.h"

using namespace phast;
using namespace phast::bench;

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const BenchConfig config = BenchConfig::FromCommandLine(cli);
  BenchReport report("fig1_levels");

  std::printf("=== Figure 1: vertices per level ===\n");
  const Instance instance = MakeCountryInstance(
      "country-time", config.width, config.height, Metric::kTravelTime,
      config.seed, config.ChParams());

  const std::vector<uint64_t> histogram = instance.ch.LevelHistogram();
  const uint64_t n = instance.graph.NumVertices();
  report.AddConfig("width", config.width);
  report.AddConfig("height", config.height);
  report.AddConfig("seed", config.seed);
  report.AddConfig("n", n);
  report.AddConfig("levels", histogram.size());

  std::printf("\n%-8s%-12s%-12s%s\n", "level", "vertices", "cumulative",
              "bar (log scale)");
  uint64_t cumulative = 0;
  for (size_t level = 0; level < histogram.size(); ++level) {
    cumulative += histogram[level];
    int bar = 0;
    for (uint64_t x = histogram[level]; x > 0; x /= 4) ++bar;
    std::string bars(static_cast<size_t>(bar), '#');
    std::printf("%-8zu%-12llu%-12llu%s\n", level,
                static_cast<unsigned long long>(histogram[level]),
                static_cast<unsigned long long>(cumulative), bars.c_str());
    report.AddRow("level_" + std::to_string(level))
        .Add("level", level)
        .Add("vertices", histogram[level])
        .Add("cumulative", cumulative);
  }

  // The paper's three summary claims, restated for this instance.
  std::printf("\nsummary:\n");
  std::printf("  levels:               %zu (paper: ~140 on Europe)\n",
              histogram.size());
  std::printf("  level-0 share:        %.1f%% (paper: ~50%%)\n",
              100.0 * static_cast<double>(histogram[0]) /
                  static_cast<double>(n));

  uint64_t below = 0;
  size_t levels_for_99 = 0;
  for (size_t level = 0; level < histogram.size(); ++level) {
    below += histogram[level];
    if (static_cast<double>(below) >= 0.99 * static_cast<double>(n)) {
      levels_for_99 = level + 1;
      break;
    }
  }
  std::printf("  levels holding 99%%:   %zu of %zu\n", levels_for_99,
              histogram.size());
  report.AddConfig("level0_share",
                   static_cast<double>(histogram[0]) / static_cast<double>(n));
  report.AddConfig("levels_for_99", levels_for_99);

  // One profiled sweep over the same hierarchy: the timed per-level view of
  // the figure (arc counts, nanoseconds, modeled bandwidth — DESIGN.md §8).
  {
    Phast::Options options;
    options.collect_profile = true;
    const Phast engine(instance.ch, options);
    Phast::Workspace ws = engine.MakeWorkspace(1);
    engine.ComputeTree(0, ws);
    report.AddSection("profile", ws.Profile().ToJson());
  }
  report.WriteJsonIfRequested(cli);
  return 0;
}

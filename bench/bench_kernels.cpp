// Micro-benchmarks (google-benchmark): sweep kernels across k and SIMD
// modes, priority queues under a Dijkstra-like load, and the upward CH
// search. These support the table drivers by isolating the primitives.
#include <benchmark/benchmark.h>

#include "ch/contraction.h"
#include "common.h"
#include "dijkstra/dijkstra.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "graph/reorder.h"
#include "obs/trace.h"
#include "phast/phast.h"
#include "pq/dary_heap.h"
#include "pq/dial_buckets.h"
#include "pq/multilevel_buckets.h"
#include "pq/radix_heap.h"
#include "util/rng.h"

namespace phast {
namespace {

/// Shared mid-size instance (built once per binary run).
const bench::Instance& SharedInstance() {
  static const bench::Instance instance = bench::MakeCountryInstance(
      "kernels", 96, 96, Metric::kTravelTime, 1);
  return instance;
}

void BM_SweepKernel(benchmark::State& state, SimdMode mode) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  if (!SimdModeAvailable(mode)) {
    state.SkipWithError("SIMD mode unavailable");
    return;
  }
  Phast::Options options;
  options.simd = mode;
  const Phast engine(SharedInstance().ch, options);
  Phast::Workspace ws = engine.MakeWorkspace(k);
  const std::vector<VertexId> sources =
      bench::SampleSources(engine.NumVertices(), k, 3);
  for (auto _ : state) {
    engine.ComputeTrees(sources, ws);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * k);
  state.SetLabel(engine.KernelNameFor(k));
}

BENCHMARK_CAPTURE(BM_SweepKernel, scalar, SimdMode::kScalar)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16);
BENCHMARK_CAPTURE(BM_SweepKernel, sse, SimdMode::kSse)->Arg(4)->Arg(16);
BENCHMARK_CAPTURE(BM_SweepKernel, avx2, SimdMode::kAvx2)->Arg(8)->Arg(16);

template <typename Queue, typename... Args>
void BM_DijkstraQueue(benchmark::State& state, Args... args) {
  const Graph& g = SharedInstance().graph;
  Queue queue(g.NumVertices(), args...);
  std::vector<Weight> dist(g.NumVertices());
  Rng rng(7);
  for (auto _ : state) {
    const VertexId s =
        static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    DijkstraInto(g, s, queue, dist, {});
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          g.NumVertices());
}

void BM_DijkstraBinaryHeap(benchmark::State& state) {
  BM_DijkstraQueue<BinaryHeap>(state);
}
void BM_DijkstraFourHeap(benchmark::State& state) {
  BM_DijkstraQueue<FourHeap>(state);
}
void BM_DijkstraDial(benchmark::State& state) {
  BM_DijkstraQueue<DialBuckets>(state, MaxArcWeight(SharedInstance().graph));
}
void BM_DijkstraRadix(benchmark::State& state) {
  BM_DijkstraQueue<RadixHeap>(state);
}
void BM_DijkstraSmartQueue(benchmark::State& state) {
  BM_DijkstraQueue<MultiLevelBuckets>(state);
}
BENCHMARK(BM_DijkstraBinaryHeap);
BENCHMARK(BM_DijkstraFourHeap);
BENCHMARK(BM_DijkstraDial);
BENCHMARK(BM_DijkstraRadix);
BENCHMARK(BM_DijkstraSmartQueue);

void BM_UpwardSearch(benchmark::State& state) {
  const Phast engine(SharedInstance().ch);
  Phast::Workspace ws = engine.MakeWorkspace();
  Rng rng(9);
  for (auto _ : state) {
    const VertexId s =
        static_cast<VertexId>(rng.NextBounded(engine.NumVertices()));
    engine.RunUpwardPhase({&s, 1}, ws);
    engine.FinishExternalSweep(ws);
    benchmark::DoNotOptimize(ws.UpwardSearchSpace());
  }
}
BENCHMARK(BM_UpwardSearch);

// The tracing zero-overhead pair (DESIGN.md §8): with PHAST_TRACING=OFF
// the PHAST_SPAN macro expands to nothing and BM_SpanOverhead must time
// identically to BM_SpanOverheadBaseline — the CI trace-smoke job builds
// that configuration and compares. With tracing compiled in but disabled
// at runtime (the default here), the delta is one relaxed atomic load.
void BM_SpanOverheadBaseline(benchmark::State& state) {
  uint64_t acc = 0;
  for (auto _ : state) {
    acc = acc * 3 + 1;
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_SpanOverheadBaseline);

void BM_SpanOverhead(benchmark::State& state) {
  uint64_t acc = 0;
  for (auto _ : state) {
    PHAST_SPAN("bench.span_overhead");
    acc = acc * 3 + 1;
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_SpanOverhead);

void BM_ChPreprocessing(benchmark::State& state) {
  const uint32_t side = static_cast<uint32_t>(state.range(0));
  CountryParams params;
  params.width = side;
  params.height = side;
  const GeneratedGraph raw = GenerateCountry(params);
  const Graph g = Graph::FromEdgeList(
      LargestStronglyConnectedComponent(raw.edges).edges);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildContractionHierarchy(g));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          g.NumVertices());
}
BENCHMARK(BM_ChPreprocessing)->Arg(24)->Arg(48)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace phast

BENCHMARK_MAIN();

#include "common.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "graph/connectivity.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/timer.h"

namespace phast::bench {

Instance MakeCountryInstance(const std::string& name, uint32_t width,
                             uint32_t height, Metric metric, uint64_t seed,
                             const CHParams& ch_params) {
  CountryParams params;
  params.width = width;
  params.height = height;
  params.metric = metric;
  params.seed = seed;

  const GeneratedGraph raw = GenerateCountry(params);
  const SubgraphResult scc = LargestStronglyConnectedComponent(raw.edges);

  // DFS layout from a fixed root — the paper's default vertex order (§II-A).
  const Graph unordered = Graph::FromEdgeList(scc.edges);
  const Permutation dfs = DfsPermutation(unordered, 0);

  Instance instance;
  instance.name = name;
  instance.metric = metric;
  instance.edges = ApplyPermutation(scc.edges, dfs);
  instance.graph = Graph::FromEdgeList(instance.edges);
  instance.ch =
      BuildContractionHierarchy(instance.graph, ch_params, &instance.ch_stats);

  std::printf(
      "instance %-12s  n=%u  m=%zu  metric=%s  ch: %zu shortcuts, %u levels, "
      "%.2fs preprocessing\n",
      name.c_str(), instance.graph.NumVertices(), instance.graph.NumArcs(),
      metric == Metric::kTravelTime ? "time" : "distance",
      instance.ch.num_shortcuts, instance.ch.NumLevels(),
      instance.ch_stats.seconds);
  return instance;
}

std::vector<VertexId> SampleSources(VertexId n, size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<VertexId> sources(count);
  for (auto& s : sources) s = static_cast<VertexId>(rng.NextBounded(n));
  return sources;
}

BenchConfig BenchConfig::FromCommandLine(const CommandLine& cli) {
  BenchConfig config;
  config.width = static_cast<uint32_t>(cli.GetInt("width", config.width));
  config.height = static_cast<uint32_t>(cli.GetInt("height", config.height));
  config.num_sources =
      static_cast<size_t>(cli.GetInt("sources", config.num_sources));
  config.seed = static_cast<uint64_t>(cli.GetInt("seed", config.seed));
  config.ch_threads =
      static_cast<uint32_t>(cli.GetInt("ch-threads", config.ch_threads));
  return config;
}

CHParams BenchConfig::ChParams() const {
  CHParams params;
  params.threads = ch_threads;
  return params;
}

std::string FormatDaysHoursMinutes(double seconds) {
  const int64_t total_seconds = static_cast<int64_t>(std::llround(seconds));
  const int64_t days = total_seconds / (24 * 3600);
  const int64_t hours = total_seconds / 3600 % 24;
  const int64_t minutes = total_seconds / 60 % 60;
  const int64_t secs = total_seconds % 60;
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer),
                "%" PRId64 ":%02" PRId64 ":%02" PRId64 ":%02" PRId64, days,
                hours, minutes, secs);
  return buffer;
}

void PrintRow(const std::vector<std::string>& cells,
              const std::vector<int>& widths) {
  for (size_t i = 0; i < cells.size(); ++i) {
    const int width = i < widths.size() ? widths[i] : 12;
    std::printf("%-*s", width, cells[i].c_str());
  }
  std::printf("\n");
}

// --- structured results -----------------------------------------------------

namespace {

std::string EscapeJsonString(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += "\"";
  return out;
}

void AppendObject(
    std::string& out,
    const std::vector<std::pair<std::string, std::string>>& fields) {
  out += "{";
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += ", ";
    out += EscapeJsonString(fields[i].first) + ": " + fields[i].second;
  }
  out += "}";
}

}  // namespace

JsonValue::JsonValue(const char* s) : encoded(EscapeJsonString(s)) {}
JsonValue::JsonValue(const std::string& s) : encoded(EscapeJsonString(s)) {}
JsonValue::JsonValue(bool v) : encoded(v ? "true" : "false") {}

JsonValue::JsonValue(double v) {
  if (!std::isfinite(v)) {
    encoded = "null";  // JSON has no Inf/NaN
    return;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", v);
  encoded = buffer;
}

BenchReport::Row& BenchReport::Row::Add(const std::string& key,
                                        JsonValue value) {
  fields_.emplace_back(key, std::move(value.encoded));
  return *this;
}

void BenchReport::AddConfig(const std::string& key, JsonValue value) {
  config_.emplace_back(key, std::move(value.encoded));
}

BenchReport::Row& BenchReport::AddRow(const std::string& label) {
  rows_.emplace_back(label, Row{});
  return rows_.back().second;
}

void BenchReport::AddSection(const std::string& key, std::string raw_json) {
  sections_.emplace_back(key, std::move(raw_json));
}

std::string BenchReport::ToJson() const {
  std::string out = "{\"schema\": \"phast-bench-v1\", \"bench\": ";
  out += EscapeJsonString(name_);
  out += ", \"config\": ";
  AppendObject(out, config_);
  out += ", \"rows\": [";
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (i > 0) out += ", ";
    std::vector<std::pair<std::string, std::string>> fields;
    fields.emplace_back("label", EscapeJsonString(rows_[i].first));
    fields.insert(fields.end(), rows_[i].second.fields_.begin(),
                  rows_[i].second.fields_.end());
    AppendObject(out, fields);
  }
  out += "], \"sections\": ";
  AppendObject(out, sections_);
  out += "}\n";
  return out;
}

bool BenchReport::WriteJsonIfRequested(const CommandLine& cli) const {
  const std::string path = cli.GetString("json-out", "");
  if (path.empty()) return false;
  std::FILE* file = std::fopen(path.c_str(), "w");
  Require(file != nullptr, "cannot open --json-out file: " + path);
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool closed = std::fclose(file) == 0;
  Require(written == json.size() && closed,
          "short write to --json-out file: " + path);
  std::fprintf(stderr, "bench results written to %s\n", path.c_str());
  return true;
}

}  // namespace phast::bench

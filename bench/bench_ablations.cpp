// Ablations of the design choices DESIGN.md calls out:
//   (1) implicit vs explicit label initialization (§IV-C — the paper saves
//       a ~10 ms O(n) fill per tree on Europe);
//   (2) eager vs lazy CH neighbor priority updates (our preprocessing
//       speed/quality knob);
//   (3) multi-GPU fleet scaling (§VIII-F: two cards, twice the speed).
#include <cstdio>
#include <vector>

#include "common.h"
#include "gpusim/fleet.h"
#include "phast/phast.h"
#include "util/timer.h"

using namespace phast;
using namespace phast::bench;

namespace {

double MsPerTree(const Phast& engine, const std::vector<VertexId>& sources,
                 Phast::Workspace& ws) {
  Timer timer;
  for (const VertexId s : sources) engine.ComputeTree(s, ws);
  return timer.ElapsedMs() / static_cast<double>(sources.size());
}

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const BenchConfig config = BenchConfig::FromCommandLine(cli);

  std::printf("=== Ablations ===\n");
  const Instance instance = MakeCountryInstance(
      "country-time", config.width, config.height, Metric::kTravelTime,
      config.seed);
  const Graph& g = instance.graph;
  const std::vector<VertexId> sources =
      SampleSources(g.NumVertices(), config.num_sources, config.seed + 2);

  // --- (1) implicit vs explicit initialization ----------------------------
  {
    Phast::Options implicit_options;  // default: implicit
    Phast::Options explicit_options;
    explicit_options.implicit_init = false;
    const Phast implicit_engine(instance.ch, implicit_options);
    const Phast explicit_engine(instance.ch, explicit_options);
    Phast::Workspace ws_imp = implicit_engine.MakeWorkspace();
    Phast::Workspace ws_exp = explicit_engine.MakeWorkspace();
    const double imp = MsPerTree(implicit_engine, sources, ws_imp);
    const double exp = MsPerTree(explicit_engine, sources, ws_exp);
    std::printf(
        "\n(1) initialization (§IV-C):\n"
        "    implicit (visit marks): %8.3f ms/tree\n"
        "    explicit (O(n) fill):   %8.3f ms/tree  (+%.0f%%)\n",
        imp, exp, 100.0 * (exp - imp) / imp);
  }

  // --- (2) eager vs lazy CH neighbor updates -------------------------------
  {
    CHParams lazy;
    lazy.eager_neighbor_updates = false;
    CHStats lazy_stats;
    const CHData lazy_ch =
        BuildContractionHierarchy(g, lazy, &lazy_stats);
    const Phast lazy_engine(lazy_ch);
    Phast::Workspace ws = lazy_engine.MakeWorkspace();
    const double lazy_ms = MsPerTree(lazy_engine, sources, ws);

    const Phast eager_engine(instance.ch);
    Phast::Workspace ws2 = eager_engine.MakeWorkspace();
    const double eager_ms = MsPerTree(eager_engine, sources, ws2);

    std::printf(
        "\n(2) CH neighbor updates:\n"
        "    eager (paper): %7.2fs prep, %8zu shortcuts, %6.3f ms/tree\n"
        "    lazy:          %7.2fs prep, %8zu shortcuts, %6.3f ms/tree\n",
        instance.ch_stats.seconds, instance.ch.num_shortcuts, eager_ms,
        lazy_stats.seconds, lazy_ch.num_shortcuts, lazy_ms);
  }

  // --- (3) multi-GPU fleet (§VIII-F) ---------------------------------------
  {
    const Phast engine(instance.ch);
    const uint64_t n_trees = g.NumVertices();  // APSP workload
    for (const size_t cards : {size_t{1}, size_t{2}, size_t{4}}) {
      GphastFleet fleet(engine, std::vector<DeviceSpec>(
                                    cards, DeviceSpec::Gtx580()));
      const GphastFleet::Estimate estimate =
          fleet.EstimateWorkload(n_trees, 16);
      std::printf(
          "%s(3) fleet: %zu x GTX580 -> APSP device %.3fs, host %.3fs "
          "(%.4f ms/tree aggregate)\n",
          cards == 1 ? "\n" : "", cards, estimate.wall_seconds,
          estimate.host_seconds_total, estimate.ms_per_tree_aggregate);
    }
    // Heterogeneous pairing: a 580 plus a 480.
    GphastFleet mixed(engine, {DeviceSpec::Gtx580(), DeviceSpec::Gtx480()});
    const GphastFleet::Estimate estimate = mixed.EstimateWorkload(n_trees, 16);
    std::printf(
        "    fleet: GTX580 + GTX480 -> APSP device %.3fs (shares: %llu / "
        "%llu trees)\n",
        estimate.wall_seconds,
        static_cast<unsigned long long>(estimate.trees_per_device[0]),
        static_cast<unsigned long long>(estimate.trees_per_device[1]));
  }
  return 0;
}

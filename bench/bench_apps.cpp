// §VII-B applications: arc flags, diameter, reach, betweenness — each
// computed with Dijkstra trees (the prior state of the art) and with PHAST
// trees, reporting the preprocessing speedup PHAST delivers.
//
// Paper headline: arc-flags preprocessing drops from 10.5 hours (Dijkstra,
// 4 cores) to <3 minutes (GPHAST); here we reproduce the ratio at container
// scale. The apps run on a smaller instance than the tables because the
// Dijkstra baselines are O(n) trees.
#include <cstdio>
#include <numeric>
#include <vector>

#include "apps/arcflags.h"
#include "apps/betweenness.h"
#include "apps/diameter.h"
#include "apps/partition.h"
#include "apps/reach.h"
#include "common.h"
#include "dijkstra/dijkstra.h"
#include "phast/phast.h"
#include "pq/dary_heap.h"
#include "util/timer.h"

using namespace phast;
using namespace phast::bench;

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  BenchConfig config = BenchConfig::FromCommandLine(cli);
  if (!cli.Has("width")) config.width = config.height = 56;

  std::printf("=== Applications (paper section VII-B) ===\n");
  const Instance instance = MakeCountryInstance(
      "country-apps", config.width, config.height, Metric::kTravelTime,
      config.seed);
  const Graph& g = instance.graph;
  const VertexId n = g.NumVertices();
  const Phast engine(instance.ch);

  std::vector<VertexId> all(n);
  std::iota(all.begin(), all.end(), VertexId{0});

  // --- arc flags -----------------------------------------------------------
  {
    const Graph rev = g.Reversed();
    const PartitionResult partition =
        PartitionBfs(g, rev, std::max<uint32_t>(32, n / 48));
    ArcFlags flags(g, partition);
    std::printf("\narc flags: %u cells, %zu boundary vertices, %.1f KB flags\n",
                partition.num_cells, flags.NumBoundaryVertices(),
                static_cast<double>(flags.FlagBytes()) / 1024.0);

    Timer timer;
    flags.PreprocessWithDijkstra();
    const double dijkstra_s = timer.ElapsedSec();

    const CHData rev_ch = BuildContractionHierarchy(rev);
    const Phast rev_engine(rev_ch);
    timer.Reset();
    flags.PreprocessWithPhast(rev_engine, 16);
    const double phast_s = timer.ElapsedSec();

    std::printf("  preprocessing: Dijkstra %.2fs, PHAST %.2fs -> %.1fx "
                "(paper: 10.5h -> minutes)\n",
                dijkstra_s, phast_s, dijkstra_s / phast_s);

    // Query speedup vs plain Dijkstra (scan counts).
    const std::vector<VertexId> qs = SampleSources(n, 50, 4);
    const std::vector<VertexId> qt = SampleSources(n, 50, 5);
    size_t flagged = 0, plain = 0;
    BinaryHeap queue(n);
    std::vector<Weight> dist(n);
    for (size_t i = 0; i < qs.size(); ++i) {
      flagged += flags.Query(qs[i], qt[i]).scanned;
      size_t scans = 0;
      DijkstraInto(g, qs[i], queue, dist, {}, &scans);
      plain += scans;
    }
    std::printf("  query scans: flagged %.0f vs Dijkstra %.0f -> %.1fx\n",
                static_cast<double>(flagged) / 50.0,
                static_cast<double>(plain) / 50.0,
                static_cast<double>(plain) / static_cast<double>(flagged));
  }

  // --- diameter ------------------------------------------------------------
  {
    Timer timer;
    const DiameterResult d = ComputeDiameter(engine, all, 16);
    std::printf("\ndiameter: %u (PHAST, %zu trees, %.2fs)\n", d.diameter,
                d.trees_built, timer.ElapsedSec());
    timer.Reset();
    const DiameterResult d2 = ComputeDiameterMaxArray(engine, all, 16);
    std::printf("  max-array variant (GPU bookkeeping): %u (%.2fs)\n",
                d2.diameter, timer.ElapsedSec());
  }

  // --- reach ---------------------------------------------------------------
  {
    Timer timer;
    const std::vector<Weight> via_phast = ComputeReaches(g, engine, all, 16);
    const double phast_s = timer.ElapsedSec();
    timer.Reset();
    const std::vector<Weight> via_dij = ComputeReachesDijkstra(g, all);
    const double dij_s = timer.ElapsedSec();
    const bool equal = via_phast == via_dij;
    std::printf("\nexact reaches: PHAST %.2fs vs Dijkstra %.2fs (%.1fx), "
                "results %s\n",
                phast_s, dij_s, dij_s / phast_s,
                equal ? "identical" : "DIFFER (BUG)");
  }

  // --- betweenness ----------------------------------------------------------
  {
    Timer timer;
    const std::vector<double> via_phast = ComputeBetweenness(g, engine, all, 16);
    const double phast_s = timer.ElapsedSec();
    timer.Reset();
    const std::vector<double> via_dij = ComputeBetweennessDijkstra(g, all);
    const double dij_s = timer.ElapsedSec();
    double max_delta = 0;
    for (VertexId v = 0; v < n; ++v) {
      max_delta = std::max(max_delta, std::abs(via_phast[v] - via_dij[v]));
    }
    std::printf("exact betweenness: PHAST %.2fs vs Dijkstra %.2fs (%.1fx), "
                "max delta %.2e\n",
                phast_s, dij_s, dij_s / phast_s, max_delta);
  }
  return 0;
}

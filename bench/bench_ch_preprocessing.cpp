// Preprocessing scaling study (DESIGN.md §9): build time of the batched
// parallel contraction engine as a function of thread count.
//
// The engine's guarantee is that parallelism is free of observable effect:
// ranks, levels, shortcut sets, and serialized bytes are bit-identical for
// every thread count. This bench measures what parallelism buys (wall-time,
// per the paper's multi-core preprocessing numbers) and *asserts* what it
// must not cost — every run is serialized and compared byte-for-byte
// against the threads=1 reference before its timing is reported.
//
// Note the speedup column is only meaningful on a multi-core host; with a
// single hardware thread the extra teams are pure overhead and the column
// hovers near (or below) 1.0x.
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "ch/ch_io.h"
#include "common.h"
#include "graph/connectivity.h"
#include "graph/reorder.h"
#include "util/error.h"
#include "util/omp_env.h"

using namespace phast;
using namespace phast::bench;

namespace {

/// Parses "1,2,4,8" into thread counts (0 = auto is allowed).
std::vector<uint32_t> ParseThreadsList(const std::string& list) {
  std::vector<uint32_t> threads;
  std::stringstream in(list);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    threads.push_back(static_cast<uint32_t>(std::stoul(item)));
  }
  Require(!threads.empty(), "--threads-list must name at least one count");
  return threads;
}

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const BenchConfig config = BenchConfig::FromCommandLine(cli);
  const std::vector<uint32_t> threads_list =
      ParseThreadsList(cli.GetString("threads-list", "1,2,4,8"));
  const uint32_t neighborhood =
      static_cast<uint32_t>(cli.GetInt("neighborhood", 1));

  // The instance is built by hand rather than via MakeCountryInstance: that
  // helper runs a default preprocessing pass we would immediately discard.
  CountryParams country;
  country.width = config.width;
  country.height = config.height;
  country.seed = config.seed;
  const GeneratedGraph raw = GenerateCountry(country);
  const SubgraphResult scc = LargestStronglyConnectedComponent(raw.edges);
  const Graph unordered = Graph::FromEdgeList(scc.edges);
  const Permutation dfs = DfsPermutation(unordered, 0);
  const Graph g = Graph::FromEdgeList(ApplyPermutation(scc.edges, dfs));

  std::printf("=== CH preprocessing: batched parallel contraction ===\n\n");
  std::printf("instance country-%ux%u  n=%u  m=%zu  neighborhood=%u-hop\n\n",
              config.width, config.height, g.NumVertices(), g.NumArcs(),
              neighborhood);
  std::printf("%8s%12s%10s%8s%12s%10s%12s%14s\n", "threads", "seconds",
              "speedup", "rounds", "avg batch", "max batch", "shortcuts",
              "witnesses");

  BenchReport report("ch_preprocessing");
  report.AddConfig("width", config.width);
  report.AddConfig("height", config.height);
  report.AddConfig("seed", config.seed);
  report.AddConfig("neighborhood", neighborhood);
  report.AddConfig("vertices", g.NumVertices());
  report.AddConfig("arcs", g.NumArcs());
  report.AddConfig("hardware_threads", HardwareThreads());

  std::string reference_bytes;   // serialized threads=1 hierarchy
  double reference_seconds = 0;  // threads=1 wall time, for the speedup col
  for (const uint32_t threads : threads_list) {
    CHParams params;
    params.threads = threads;
    params.batch_neighborhood = neighborhood;
    CHStats stats;
    const CHData ch = BuildContractionHierarchy(g, params, &stats);

    std::ostringstream serialized;
    WriteCH(ch, serialized);
    std::string bytes = std::move(serialized).str();
    if (reference_bytes.empty()) {
      // First row doubles as the reference; when the list does not start at
      // 1 the comparison is still across-thread-count, just rebased.
      reference_bytes = std::move(bytes);
      reference_seconds = stats.seconds;
    } else {
      Require(bytes == reference_bytes,
              "determinism violation: threads=" + std::to_string(threads) +
                  " serialized to different bytes than the reference run");
    }

    const double speedup =
        stats.seconds > 0 ? reference_seconds / stats.seconds : 0.0;
    std::printf("%8u%11.3fs%9.2fx%8u%12.1f%10u%12zu%14zu\n", threads,
                stats.seconds, speedup, stats.rounds,
                stats.profile.AvgBatch(), stats.profile.MaxBatch(),
                stats.shortcuts_added, stats.witness_searches);

    BenchReport::Row& row =
        report.AddRow("threads=" + std::to_string(threads));
    row.Add("threads", threads)
        .Add("resolved_threads", stats.profile.threads)
        .Add("seconds", stats.seconds)
        .Add("speedup", speedup)
        .Add("rounds", stats.rounds)
        .Add("avg_batch", stats.profile.AvgBatch())
        .Add("max_batch", stats.profile.MaxBatch())
        .Add("shortcuts", stats.shortcuts_added)
        .Add("witness_searches", stats.witness_searches)
        .Add("witness_settled", stats.profile.TotalWitnessSettled())
        .Add("identical_bytes", true);
    if (threads == threads_list.back()) {
      report.AddSection("profile", stats.profile.ToJson());
    }
  }

  std::printf(
      "\nevery row serialized to identical bytes — the engine's output is "
      "independent of the thread count by construction (DESIGN.md §9).\n");
  report.WriteJsonIfRequested(cli);
  return 0;
}

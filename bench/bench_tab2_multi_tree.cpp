// Table II: average running time per tree when computing multiple trees,
// varying k (sources per sweep), the number of cores, and SSE on/off.
//
// Paper shape (Europe, 4-core Core-i7): larger k lowers ms/tree; SIMD adds
// ~2.6x at k=16 on one core; multi-core scales almost perfectly without
// SIMD and sublinearly with it (memory bandwidth saturates). This container
// exposes a single core, so the threads dimension collapses to ~1x here —
// the code path is still exercised.
#include <cstdio>
#include <vector>

#include "common.h"
#include "phast/batch.h"
#include "phast/phast.h"
#include "util/omp_env.h"
#include "util/timer.h"

using namespace phast;
using namespace phast::bench;

namespace {

/// ms/tree computing `sources` with k trees per sweep spread over
/// `threads` OpenMP threads.
double MsPerTree(const Phast& engine, const std::vector<VertexId>& sources,
                 uint32_t k, int threads) {
  ScopedNumThreads scope(threads);
  BatchOptions options;
  options.trees_per_sweep = k;
  Timer timer;
  ComputeManyTrees(engine, sources, options,
                   [](size_t, const Phast::Workspace&, uint32_t) {});
  return timer.ElapsedMs() / static_cast<double>(sources.size());
}

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const BenchConfig config = BenchConfig::FromCommandLine(cli);

  std::printf("=== Table II: multiple trees per sweep ===\n");
  const Instance instance = MakeCountryInstance(
      "country-time", config.width, config.height, Metric::kTravelTime,
      config.seed);

  Phast::Options scalar_options;
  scalar_options.simd = SimdMode::kScalar;
  Phast::Options simd_options;
  simd_options.simd = SimdMode::kAuto;
  const Phast scalar_engine(instance.ch, scalar_options);
  const Phast simd_engine(instance.ch, simd_options);

  const int max_threads = MaxThreads();
  const std::vector<int> thread_counts =
      max_threads >= 4 ? std::vector<int>{1, 2, 4} : std::vector<int>{1};
  const std::vector<uint32_t> ks = {1, 4, 8, 16};
  // Enough sources that every (k, threads) cell runs several full sweeps.
  const size_t per_cell = std::max<size_t>(config.num_sources, 16);
  const std::vector<VertexId> sources =
      SampleSources(instance.graph.NumVertices(), per_cell, config.seed + 3);

  std::printf("\ntime per tree [ms]; parentheses = SIMD kernel (%s)\n",
              simd_engine.KernelNameFor(16));
  std::printf("%-14s", "sources/sweep");
  for (const int t : thread_counts) std::printf("%7d core%s      ", t, t > 1 ? "s" : " ");
  std::printf("\n");

  for (const uint32_t k : ks) {
    std::printf("%-14u", k);
    for (const int t : thread_counts) {
      const double scalar_ms = MsPerTree(scalar_engine, sources, k, t);
      const double simd_ms = MsPerTree(simd_engine, sources, k, t);
      std::printf("%7.2f (%6.2f) ", scalar_ms, simd_ms);
    }
    std::printf("\n");
  }

  const double base = MsPerTree(scalar_engine, sources, 1, 1);
  const double best =
      MsPerTree(simd_engine, sources, 16, thread_counts.back());
  std::printf(
      "\nk=16 + SIMD + %d core(s) vs k=1 scalar 1 core: %.1fx "
      "(paper: >9x on 4 cores)\n",
      thread_counts.back(), base / best);
  return 0;
}

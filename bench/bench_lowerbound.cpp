// §VIII-B lower-bound experiments: how close is PHAST to the memory
// bandwidth of the machine?
//
//  (1) "bandwidth" — sequentially read the first/arclist/label arrays and
//      write every label once (the paper's 65.6 ms bound; PHAST was 2.6x).
//  (2) "traversal" — iterate the graph exactly like PHAST (outer loop over
//      vertices, inner over incident arcs) but store the sum of arc lengths
//      instead of relaxing (the paper's 153 ms vs PHAST's 172 ms).
#include <cstdio>

#include "common.h"
#include "phast/phast.h"
#include "util/timer.h"

using namespace phast;
using namespace phast::bench;

namespace {

// Prevents the optimizer from discarding the scans.
volatile uint64_t g_sink;

double BandwidthScanMs(const SweepArgs& args, int repetitions) {
  const VertexId n = args.num_vertices;
  const size_t m = args.down_first[n];
  Timer timer;
  for (int rep = 0; rep < repetitions; ++rep) {
    uint64_t sum = 0;
    for (VertexId v = 0; v <= n; ++v) sum += args.down_first[v];
    for (size_t a = 0; a < m; ++a) {
      sum += args.down_arcs[a].tail + args.down_arcs[a].weight;
    }
    for (VertexId v = 0; v < n; ++v) {
      sum += args.labels[v];
      args.labels[v] = static_cast<Weight>(sum);
    }
    g_sink = sum;
  }
  return timer.ElapsedMs() / repetitions;
}

double TraversalScanMs(const SweepArgs& args, int repetitions) {
  const VertexId n = args.num_vertices;
  Timer timer;
  for (int rep = 0; rep < repetitions; ++rep) {
    for (VertexId v = 0; v < n; ++v) {
      Weight total = 0;
      const ArcId end = args.down_first[v + 1];
      for (ArcId a = args.down_first[v]; a < end; ++a) {
        total += args.down_arcs[a].weight;  // same arcs, same order as PHAST
      }
      args.labels[v] = total;
    }
    g_sink = args.labels[n / 2];
  }
  return timer.ElapsedMs() / repetitions;
}

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const BenchConfig config = BenchConfig::FromCommandLine(cli);

  std::printf("=== Lower-bound test (paper section VIII-B) ===\n");
  const Instance instance = MakeCountryInstance(
      "country-time", config.width, config.height, Metric::kTravelTime,
      config.seed);
  const Phast engine(instance.ch);
  Phast::Workspace ws = engine.MakeWorkspace();
  const SweepArgs args = engine.MakeSweepArgs(ws);

  const int reps = 10;
  const double bandwidth_ms = BandwidthScanMs(args, reps);
  const double traversal_ms = TraversalScanMs(args, reps);

  const std::vector<VertexId> sources =
      SampleSources(engine.NumVertices(), config.num_sources, config.seed);
  Timer timer;
  for (const VertexId s : sources) engine.ComputeTree(s, ws);
  const double phast_ms =
      timer.ElapsedMs() / static_cast<double>(sources.size());

  std::printf("\n%-34s%10s\n", "experiment", "ms");
  std::printf("%-34s%10.2f\n", "sequential array scan (bound)", bandwidth_ms);
  std::printf("%-34s%10.2f\n", "PHAST-shaped traversal (sum)", traversal_ms);
  std::printf("%-34s%10.2f\n", "PHAST (one tree)", phast_ms);
  std::printf("\nPHAST / scan bound:      %5.2fx   (paper: 2.6x)\n",
              phast_ms / bandwidth_ms);
  std::printf("PHAST - traversal delta: %5.2f ms (paper: 19 ms)\n",
              phast_ms - traversal_ms);
  return 0;
}

// Metric customization vs full rebuild (DESIGN.md §10): on a witness-free
// hierarchy the shortcut topology is metric-independent, so swapping the
// cost function is a CustomizeWeights pass over the fixed structure instead
// of a from-scratch contraction. This bench measures the gap the serving
// path relies on (snapshot swaps customize, they never re-contract) and
// *asserts* the equivalence that makes the shortcut legal: every customized
// hierarchy is serialized and compared byte-for-byte against a fresh
// witness-free rebuild on the same metric before its timing is reported.
//
// --min-speedup=X turns the bench into a gate: exit 1 if the mean
// customize-vs-rebuild speedup falls below X (0, the default, never fails).

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "ch/ch_io.h"
#include "ch/customize.h"
#include "common.h"
#include "graph/connectivity.h"
#include "graph/reorder.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace phast;
using namespace phast::bench;

namespace {

std::string SerializeCH(const CHData& ch) {
  std::ostringstream out;
  WriteCH(ch, out);
  return out.str();
}

/// Same topology as `base`, every arc re-weighted from `rng` (uniform in
/// [1, 100'000], the range phast_reweight drives at the server).
Graph Reweight(const Graph& base, Rng& rng) {
  std::vector<Arc> arcs = base.ArcArray();
  for (Arc& arc : arcs) {
    arc.weight = static_cast<Weight>(rng.NextInRange(1, 100'000));
  }
  return Graph::FromCsrArrays(base.FirstArray(), std::move(arcs));
}

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const BenchConfig config = BenchConfig::FromCommandLine(cli);
  const int rounds = static_cast<int>(cli.GetInt("rounds", 3));
  const double min_speedup = cli.GetDouble("min-speedup", 0.0);
  Require(rounds >= 1, "--rounds must be at least 1");

  // Built by hand (like bench_ch_preprocessing): MakeCountryInstance runs a
  // witness-pruned preprocessing pass we cannot customize.
  CountryParams country;
  country.width = config.width;
  country.height = config.height;
  country.seed = config.seed;
  const GeneratedGraph raw = GenerateCountry(country);
  const SubgraphResult scc = LargestStronglyConnectedComponent(raw.edges);
  const Graph unordered = Graph::FromEdgeList(scc.edges);
  const Permutation dfs = DfsPermutation(unordered, 0);
  const Graph g = Graph::FromEdgeList(ApplyPermutation(scc.edges, dfs));

  CHParams params = config.ChParams();
  params.witness_pruning = false;  // customizable mode: topology is metric-free

  std::printf("=== metric customization vs witness-free rebuild ===\n\n");
  std::printf("instance country-%ux%u  n=%u  m=%zu  threads=%u\n\n",
              config.width, config.height, g.NumVertices(), g.NumArcs(),
              params.threads);

  CHStats base_stats;
  Timer base_timer;
  const CHData base = BuildContractionHierarchy(g, params, &base_stats);
  const double base_build_ms = base_timer.ElapsedMs();
  std::printf("base build: %.1f ms  (%zu shortcuts, %u levels)\n\n",
              base_build_ms, base.num_shortcuts, base.NumLevels());
  std::printf("%8s%16s%14s%10s%14s\n", "round", "customize ms", "rebuild ms",
              "speedup", "identical");

  BenchReport report("customization");
  report.AddConfig("width", config.width);
  report.AddConfig("height", config.height);
  report.AddConfig("seed", config.seed);
  report.AddConfig("rounds", rounds);
  report.AddConfig("vertices", g.NumVertices());
  report.AddConfig("arcs", g.NumArcs());
  report.AddConfig("gplus_arcs", base.up_arcs.size() + base.down_arcs.size());
  report.AddConfig("base_build_ms", base_build_ms);

  CustomizeOptions customize_options;
  customize_options.threads = params.threads;

  Rng rng(config.seed ^ 0x9E3779B97F4A7C15ULL);
  double speedup_sum = 0.0;
  double worst_speedup = 0.0;
  for (int round = 0; round < rounds; ++round) {
    const Graph metric = Reweight(g, rng);

    CHData customized = base;  // swap input: the served hierarchy, old metric
    CustomizeStats customize_stats;
    Timer customize_timer;
    CustomizeWeights(customized, metric, customize_options, &customize_stats);
    const double customize_ms = customize_timer.ElapsedMs();

    Timer rebuild_timer;
    const CHData rebuilt = BuildContractionHierarchy(metric, params);
    const double rebuild_ms = rebuild_timer.ElapsedMs();

    Require(SerializeCH(customized) == SerializeCH(rebuilt),
            "customized hierarchy diverged from the fresh rebuild");

    const double speedup = rebuild_ms / customize_ms;
    speedup_sum += speedup;
    worst_speedup = round == 0 ? speedup : std::min(worst_speedup, speedup);
    std::printf("%8d%16.1f%14.1f%9.1fx%14s\n", round, customize_ms, rebuild_ms,
                speedup, "yes");

    BenchReport::Row& row = report.AddRow("round " + std::to_string(round));
    row.Add("round", round)
        .Add("customize_ms", customize_ms)
        .Add("rebuild_ms", rebuild_ms)
        .Add("speedup", speedup)
        .Add("triangles_relaxed", customize_stats.triangles_relaxed)
        .Add("byte_identical", true);
  }

  const double mean_speedup = speedup_sum / rounds;
  std::printf("\nmean speedup %.1fx  worst %.1fx\n", mean_speedup,
              worst_speedup);
  BenchReport::Row& summary = report.AddRow("summary");
  summary.Add("mean_speedup", mean_speedup).Add("worst_speedup", worst_speedup);
  report.WriteJsonIfRequested(cli);

  if (min_speedup > 0.0 && mean_speedup < min_speedup) {
    std::fprintf(stderr,
                 "bench_customization: mean speedup %.2fx below the "
                 "--min-speedup=%.2f gate\n",
                 mean_speedup, min_speedup);
    return 1;
  }
  return 0;
}

// Batch workloads: the M x N one-to-many distance table through every
// MatrixMode, and k-nearest-POI queries with and without the level-cutoff
// sweep. Emits a "matrix" phast-bench-v1 JSON report for bench_all.sh.
//
// Expected shape: the restricted modes win once N << n (the RPHAST
// restriction amortizes over all M rows), batching adds the usual k-wide
// SIMD win on top, and the POI cutoff sweeps only the level prefix that
// can contain a bucket vertex. Table shapes are capped at 160 x 160 — the
// point is mode comparison, not scale.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/poi.h"
#include "common.h"
#include "dijkstra/dijkstra.h"
#include "phast/matrix.h"
#include "phast/phast.h"
#include "pq/dary_heap.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace phast;
using namespace phast::bench;

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const BenchConfig config = BenchConfig::FromCommandLine(cli);
  BenchReport report("matrix");

  std::printf("=== batch workloads: distance tables & k-nearest POI ===\n");
  const Instance instance = MakeCountryInstance(
      "country-time", config.width, config.height, Metric::kTravelTime,
      config.seed, config.ChParams());
  const Graph& g = instance.graph;
  const VertexId n = g.NumVertices();
  const Phast engine(instance.ch);
  std::printf("instance: synthetic country, n=%u m=%zu\n\n", n, g.NumArcs());
  report.AddConfig("width", config.width);
  report.AddConfig("height", config.height);
  report.AddConfig("seed", config.seed);
  report.AddConfig("n", n);
  report.AddConfig("m", g.NumArcs());

  constexpr MatrixMode kModes[] = {
      MatrixMode::kSingleTree, MatrixMode::kBatched, MatrixMode::kRestricted,
      MatrixMode::kRestrictedBatched};
  // Square table shapes, capped at 160 x 160.
  const uint32_t kShapes[] = {16, 64, 160};

  Rng rng(config.seed + 5);
  const std::vector<int> widths = {22, 10, 12, 14, 14};
  PrintRow({"mode", "MxN", "table [ms]", "ms/row", "Dijkstra/row"}, widths);
  for (const uint32_t dim : kShapes) {
    const uint32_t m = std::min<uint32_t>(dim, n);
    std::vector<VertexId> sources, targets;
    for (uint32_t i = 0; i < m; ++i) {
      sources.push_back(static_cast<VertexId>(rng.NextBounded(n)));
      targets.push_back(static_cast<VertexId>(rng.NextBounded(n)));
    }

    // Per-row Dijkstra baseline (full tree per row; the table reads off
    // its target cells).
    double dijkstra_row_ms;
    {
      Timer timer;
      for (const VertexId s : sources) {
        (void)Dijkstra<BinaryHeap>(g, s);
      }
      dijkstra_row_ms = timer.ElapsedMs() / static_cast<double>(m);
    }

    for (const MatrixMode mode : kModes) {
      MatrixOptions options;
      options.mode = mode;
      Timer timer;
      const std::vector<Weight> table =
          ComputeDistanceTable(engine, sources, targets, options);
      const double table_ms = timer.ElapsedMs();
      const double row_ms = table_ms / static_cast<double>(m);
      char shape[24], total[24], per_row[24], base[24];
      std::snprintf(shape, sizeof(shape), "%ux%u", m, m);
      std::snprintf(total, sizeof(total), "%.2f", table_ms);
      std::snprintf(per_row, sizeof(per_row), "%.3f", row_ms);
      std::snprintf(base, sizeof(base), "%.3f", dijkstra_row_ms);
      PrintRow({ToString(mode), shape, total, per_row, base}, widths);

      report.AddRow(std::string(ToString(mode)) + " " + shape)
          .Add("mode", ToString(mode))
          .Add("rows", m)
          .Add("cols", m)
          .Add("table_ms", table_ms)
          .Add("ms_per_row", row_ms)
          .Add("dijkstra_ms_per_row", dijkstra_row_ms)
          .Add("cells", table.size());
    }
  }

  // k-nearest POI: cutoff vs full sweep over the same bucket index.
  std::printf("\nk-nearest POI (k=8, 64 POIs/category)\n");
  const PoiIndex index =
      PoiIndex::GenerateRandom(n, /*categories=*/4, /*per_category=*/64,
                               config.seed + 11);
  const std::vector<VertexId> poi_sources =
      SampleSources(n, std::max<size_t>(config.num_sources * 8, 32),
                    config.seed + 13);
  const std::vector<int> poi_widths = {14, 10, 16, 14};
  PrintRow({"sweep", "category", "sweep length", "ms/query"}, poi_widths);
  for (const bool use_cutoff : {false, true}) {
    for (uint32_t category = 0; category < index.NumCategories();
         ++category) {
      const KnnSweeper sweeper(engine, index, category, use_cutoff);
      Phast::Workspace ws = engine.MakeWorkspace();
      Timer timer;
      for (const VertexId s : poi_sources) {
        (void)sweeper.Query(s, /*k=*/8, ws);
      }
      const double query_ms =
          timer.ElapsedMs() / static_cast<double>(poi_sources.size());
      char len[24], per_query[24];
      std::snprintf(len, sizeof(len), "%u", sweeper.SweepLength());
      std::snprintf(per_query, sizeof(per_query), "%.3f", query_ms);
      PrintRow({use_cutoff ? "cutoff" : "full",
                std::to_string(category), len, per_query},
               poi_widths);
      report
          .AddRow(std::string(use_cutoff ? "poi_cutoff" : "poi_full") +
                  " cat" + std::to_string(category))
          .Add("cutoff", use_cutoff)
          .Add("category", category)
          .Add("sweep_length", sweeper.SweepLength())
          .Add("ms_per_query", query_ms)
          .Add("bucket_size", sweeper.BucketSize());
    }
  }
  std::printf(
      "\nexpected: restricted+batched fastest per row for N << n; the POI "
      "cutoff sweeping a fraction of the %u positions.\n", n);
  report.WriteJsonIfRequested(cli);
  return 0;
}

#pragma once

// Shared workload setup for the per-table benchmark drivers. Every bench
// binary reproduces one table or figure of the paper (see DESIGN.md §4 and
// EXPERIMENTS.md); they all run on the same synthetic instances built here.

#include <cstdint>
#include <string>
#include <vector>

#include "ch/ch_data.h"
#include "ch/contraction.h"
#include "graph/csr.h"
#include "graph/generators.h"
#include "graph/reorder.h"
#include "util/cli.h"

namespace phast::bench {

/// A fully prepared benchmark instance: the largest SCC of a generated
/// road network, DFS-relabeled (the paper's default layout), plus its
/// contraction hierarchy.
struct Instance {
  std::string name;
  Graph graph;        // DFS layout
  EdgeList edges;     // same graph as edge list (for relabeling studies)
  CHData ch;          // hierarchy of `graph`
  CHStats ch_stats;
  Metric metric = Metric::kTravelTime;
};

/// Builds the standard instance: synthetic country of width x height cells.
/// The default 160x160 (~25k vertices after SCC extraction) keeps every
/// bench under a minute on a laptop; pass --width/--height to scale up.
Instance MakeCountryInstance(const std::string& name, uint32_t width,
                             uint32_t height, Metric metric, uint64_t seed);

/// Standard source sample for per-tree timing averages.
std::vector<VertexId> SampleSources(VertexId n, size_t count, uint64_t seed);

/// Reads the common --width/--height/--sources/--seed flags.
struct BenchConfig {
  uint32_t width = 160;
  uint32_t height = 160;
  size_t num_sources = 8;
  uint64_t seed = 1;

  static BenchConfig FromCommandLine(const CommandLine& cli);
};

/// Formats "d:hh:mm" like the paper's Table VI n-trees column.
std::string FormatDaysHoursMinutes(double seconds);

/// Prints an aligned row of columns (simple fixed-width table output).
void PrintRow(const std::vector<std::string>& cells,
              const std::vector<int>& widths);

}  // namespace phast::bench

#pragma once

// Shared workload setup for the per-table benchmark drivers. Every bench
// binary reproduces one table or figure of the paper (see DESIGN.md §4 and
// EXPERIMENTS.md); they all run on the same synthetic instances built here.

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "ch/ch_data.h"
#include "ch/contraction.h"
#include "graph/csr.h"
#include "graph/generators.h"
#include "graph/reorder.h"
#include "util/cli.h"

namespace phast::bench {

/// A fully prepared benchmark instance: the largest SCC of a generated
/// road network, DFS-relabeled (the paper's default layout), plus its
/// contraction hierarchy.
struct Instance {
  std::string name;
  Graph graph;        // DFS layout
  EdgeList edges;     // same graph as edge list (for relabeling studies)
  CHData ch;          // hierarchy of `graph`
  CHStats ch_stats;
  Metric metric = Metric::kTravelTime;
};

/// Builds the standard instance: synthetic country of width x height cells.
/// The default 160x160 (~25k vertices after SCC extraction) keeps every
/// bench under a minute on a laptop; pass --width/--height to scale up.
/// `ch_params` tunes the preprocessing run (e.g. --ch-threads); it cannot
/// change the hierarchy itself — contraction output is thread-count
/// independent (DESIGN.md §9).
Instance MakeCountryInstance(const std::string& name, uint32_t width,
                             uint32_t height, Metric metric, uint64_t seed,
                             const CHParams& ch_params = {});

/// Standard source sample for per-tree timing averages.
std::vector<VertexId> SampleSources(VertexId n, size_t count, uint64_t seed);

/// Reads the common --width/--height/--sources/--seed/--ch-threads flags.
struct BenchConfig {
  uint32_t width = 160;
  uint32_t height = 160;
  size_t num_sources = 8;
  uint64_t seed = 1;
  /// Contraction threads for instance preprocessing (0 = all available).
  uint32_t ch_threads = 0;

  static BenchConfig FromCommandLine(const CommandLine& cli);
  /// CHParams carrying the config's preprocessing knobs.
  [[nodiscard]] CHParams ChParams() const;
};

/// Formats "d:hh:mm" like the paper's Table VI n-trees column.
std::string FormatDaysHoursMinutes(double seconds);

// --- structured results (DESIGN.md §8) --------------------------------------

/// One JSON scalar, pre-encoded. Implicit constructors cover the types the
/// benches emit; integers stay integers in the output (no float drift in
/// counters).
struct JsonValue {
  std::string encoded;

  JsonValue(const char* s);
  JsonValue(const std::string& s);
  JsonValue(double v);
  JsonValue(bool v);
  template <typename T,
            typename = std::enable_if_t<std::is_integral_v<T> &&
                                        !std::is_same_v<T, bool>>>
  JsonValue(T v) : encoded(std::to_string(v)) {}
};

/// Machine-readable bench results (schema "phast-bench-v1"): a config
/// object, labeled result rows, and optional raw-JSON sections (e.g. an
/// obs::SweepProfile::ToJson() profile). Every bench keeps its human table
/// on stdout and additionally writes this JSON when --json-out=FILE is
/// passed; tools/bench_all.sh aggregates the files into BENCH_PHAST.json.
class BenchReport {
 public:
  class Row {
   public:
    Row& Add(const std::string& key, JsonValue value);

   private:
    friend class BenchReport;
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  void AddConfig(const std::string& key, JsonValue value);
  /// Appends a result row; the returned reference stays valid until the
  /// next AddRow (it points into the report's row list).
  Row& AddRow(const std::string& label);
  /// Attaches an already-encoded JSON value under `key` (profiles, nested
  /// tables). The caller guarantees `raw_json` is valid JSON.
  void AddSection(const std::string& key, std::string raw_json);

  [[nodiscard]] std::string ToJson() const;
  /// Writes ToJson() to the file named by --json-out, when present.
  /// Returns true if a file was written.
  bool WriteJsonIfRequested(const CommandLine& cli) const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<std::pair<std::string, Row>> rows_;
  std::vector<std::pair<std::string, std::string>> sections_;
};

/// Prints an aligned row of columns (simple fixed-width table output).
void PrintRow(const std::vector<std::string>& cells,
              const std::vector<int>& widths);

}  // namespace phast::bench

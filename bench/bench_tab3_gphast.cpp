// Table III: GPHAST performance and GPU memory utilization per k (trees per
// sweep).
//
// The GPU is the modeled GTX 580 of src/gpusim (no physical GPU in this
// environment — see DESIGN.md substitutions). Functional results are
// checked against CPU PHAST by the test suite; here we report the modeled
// per-tree time and the device memory footprint, expecting the paper's
// trend: memory grows linearly with k while ms/tree shrinks (5.53 ms at
// k=1 down to 2.21 ms at k=16 on Europe).
#include <cstdio>
#include <vector>

#include "common.h"
#include "gpusim/gphast.h"
#include "util/timer.h"

using namespace phast;
using namespace phast::bench;

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const BenchConfig config = BenchConfig::FromCommandLine(cli);

  std::printf("=== Table III: GPHAST (modeled %s) ===\n",
              DeviceSpec::Gtx580().name.c_str());
  const Instance instance = MakeCountryInstance(
      "country-time", config.width, config.height, Metric::kTravelTime,
      config.seed);
  const Phast engine(instance.ch);
  Gphast gpu(engine);

  const std::vector<uint32_t> ks = {1, 2, 4, 8, 16};
  std::printf("\n%-14s%-14s%-16s%-16s%s\n", "trees/sweep", "memory [MB]",
              "device [ms]", "host CH [ms]", "kernels");

  for (const uint32_t k : ks) {
    const size_t batches = std::max<size_t>(1, config.num_sources / k + 1);
    Phast::Workspace ws = engine.MakeWorkspace(k);
    const std::vector<VertexId> sources = SampleSources(
        engine.NumVertices(), batches * k, config.seed + k);

    double device_seconds = 0.0;
    double host_seconds = 0.0;
    uint64_t kernels = 0;
    for (size_t b = 0; b < batches; ++b) {
      const Gphast::Result r = gpu.ComputeTrees(
          {sources.data() + b * k, k}, ws);
      device_seconds += r.modeled_device_seconds;
      host_seconds += r.host_seconds;
      kernels = r.kernels_launched;
    }
    const double trees = static_cast<double>(batches * k);
    std::printf("%-14u%-14.1f%-16.3f%-16.3f%llu\n", k,
                static_cast<double>(gpu.DeviceMemoryBytes(k)) / (1 << 20),
                device_seconds * 1e3 / trees, host_seconds * 1e3 / trees,
                static_cast<unsigned long long>(kernels));
  }

  const SimtDevice::Stats& stats = gpu.Device().TotalStats();
  std::printf(
      "\ndevice totals: %llu kernels, %llu DRAM transactions, %.1f MB "
      "traffic, %.1f KB copied\n",
      static_cast<unsigned long long>(stats.kernels),
      static_cast<unsigned long long>(stats.dram_transactions),
      static_cast<double>(stats.dram_bytes) / (1 << 20),
      static_cast<double>(stats.copied_bytes) / 1024.0);
  return 0;
}

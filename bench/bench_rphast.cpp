// RPHAST extension (one-to-many): sweep restricted to the vertices that can
// reach the target set. For localized target sets the restricted subgraph
// is a sliver of the full downward graph, so per-source cost drops well
// below a full PHAST sweep — the effect the RPHAST follow-up paper builds
// on. Baselines: full PHAST sweep and Dijkstra stopped once all targets
// are settled.
#include <cstdio>
#include <vector>

#include "common.h"
#include "dijkstra/dijkstra.h"
#include "phast/phast.h"
#include "phast/rphast.h"
#include "pq/dary_heap.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace phast;
using namespace phast::bench;

namespace {

/// Dijkstra that stops after settling all marked targets.
double DijkstraToTargetsMs(const Graph& g,
                           const std::vector<VertexId>& sources,
                           const std::vector<VertexId>& targets) {
  const VertexId n = g.NumVertices();
  std::vector<bool> is_target(n, false);
  for (const VertexId t : targets) is_target[t] = true;
  BinaryHeap queue(n);
  std::vector<Weight> dist(n);
  Timer timer;
  for (const VertexId s : sources) {
    std::fill(dist.begin(), dist.end(), kInfWeight);
    queue.Clear();
    dist[s] = 0;
    queue.Update(s, 0);
    size_t remaining = targets.size();
    while (!queue.Empty() && remaining > 0) {
      const auto [v, key] = queue.ExtractMin();
      if (is_target[v]) --remaining;
      for (const Arc& arc : g.ArcsOf(v)) {
        const Weight cand = SaturatingAdd(key, arc.weight);
        if (cand < dist[arc.other]) {
          dist[arc.other] = cand;
          queue.Update(arc.other, cand);
        }
      }
    }
  }
  return timer.ElapsedMs() / static_cast<double>(sources.size());
}

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const BenchConfig config = BenchConfig::FromCommandLine(cli);

  std::printf("=== RPHAST: one-to-many with restricted sweeps ===\n");
  const Instance instance = MakeCountryInstance(
      "country-time", config.width, config.height, Metric::kTravelTime,
      config.seed);
  const Graph& g = instance.graph;
  const VertexId n = g.NumVertices();
  const Phast engine(instance.ch);

  const std::vector<VertexId> sources =
      SampleSources(n, std::max<size_t>(config.num_sources, 8), 31);

  // Full-sweep baseline.
  double full_ms;
  {
    Phast::Workspace ws = engine.MakeWorkspace();
    Timer timer;
    for (const VertexId s : sources) engine.ComputeTree(s, ws);
    full_ms = timer.ElapsedMs() / static_cast<double>(sources.size());
  }
  std::printf("\nfull PHAST sweep: %.3f ms/tree (n=%u)\n\n", full_ms, n);

  std::printf("%10s%14s%14s%14s%16s%16s\n", "|targets|", "restricted n",
              "restrict [ms]", "RPHAST [ms]", "PHAST full[ms]",
              "Dijkstra [ms]");
  Rng rng(17);
  for (size_t t = 16; t <= std::min<size_t>(4096, n / 2); t *= 4) {
    // Localized targets: a random vertex's neighborhood by id proximity
    // (DFS layout keeps nearby ids spatially close).
    const VertexId center =
        static_cast<VertexId>(rng.NextBounded(n - static_cast<VertexId>(t)));
    std::vector<VertexId> targets(t);
    for (size_t i = 0; i < t; ++i) {
      targets[i] = center + static_cast<VertexId>(i);
    }

    Timer restrict_timer;
    const RPhast rphast(engine, targets);
    const double restrict_ms = restrict_timer.ElapsedMs();

    RPhast::Workspace ws = rphast.MakeWorkspace();
    Timer timer;
    for (const VertexId s : sources) rphast.ComputeTree(s, ws);
    const double rphast_ms =
        timer.ElapsedMs() / static_cast<double>(sources.size());

    const double dijkstra_ms = DijkstraToTargetsMs(g, sources, targets);

    std::printf("%10zu%14zu%14.2f%14.3f%16.3f%16.3f\n", t,
                rphast.RestrictedVertices(), restrict_ms, rphast_ms, full_ms,
                dijkstra_ms);
  }
  std::printf(
      "\nexpected: restricted n << n for small target sets, RPHAST beating "
      "both the full sweep and target-stopped Dijkstra.\n");
  return 0;
}

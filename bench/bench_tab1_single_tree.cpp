// Table I: single-tree performance of Dijkstra (binary heap / Dial / smart
// queue), BFS, and PHAST (original rank order / reordered by level /
// reordered + all cores), each under three vertex layouts (random, input,
// DFS).
//
// Paper shape to preserve (Europe, travel times): layouts matter for every
// algorithm; DFS is the best layout; level reordering is PHAST's biggest
// single win (1286 ms -> 172 ms on DFS layout); reordered PHAST beats the
// best Dijkstra by >10x on one core.
#include <cstdio>
#include <functional>
#include <string>

#include "common.h"
#include "dijkstra/bfs.h"
#include "dijkstra/dijkstra.h"
#include "graph/connectivity.h"
#include "phast/phast.h"
#include "pq/dary_heap.h"
#include "pq/dial_buckets.h"
#include "pq/multilevel_buckets.h"
#include "pq/radix_heap.h"
#include "util/omp_env.h"
#include "util/timer.h"

using namespace phast;
using namespace phast::bench;

namespace {

double MsPerTree(const std::function<void(VertexId)>& run,
                 const std::vector<VertexId>& sources) {
  Timer timer;
  for (const VertexId s : sources) run(s);
  return timer.ElapsedMs() / static_cast<double>(sources.size());
}

struct LayoutResults {
  double dijkstra_binary, dijkstra_dial, dijkstra_smart, dijkstra_radix, bfs;
  double phast_rank, phast_reordered, phast_parallel;
};

LayoutResults RunLayout(const EdgeList& edges,
                        const std::vector<VertexId>& sources,
                        const CHParams& ch_params) {
  const Graph graph = Graph::FromEdgeList(edges);
  const VertexId n = graph.NumVertices();
  const Weight c = MaxArcWeight(graph);
  LayoutResults r{};

  {
    BinaryHeap queue(n);
    std::vector<Weight> dist(n);
    r.dijkstra_binary = MsPerTree(
        [&](VertexId s) { DijkstraInto(graph, s, queue, dist, {}); }, sources);
  }
  {
    DialBuckets queue(n, c);
    std::vector<Weight> dist(n);
    r.dijkstra_dial = MsPerTree(
        [&](VertexId s) { DijkstraInto(graph, s, queue, dist, {}); }, sources);
  }
  {
    SmartQueue queue(n);
    std::vector<Weight> dist(n);
    r.dijkstra_smart = MsPerTree(
        [&](VertexId s) { DijkstraInto(graph, s, queue, dist, {}); }, sources);
  }
  {
    RadixHeap queue(n);
    std::vector<Weight> dist(n);
    r.dijkstra_radix = MsPerTree(
        [&](VertexId s) { DijkstraInto(graph, s, queue, dist, {}); }, sources);
  }
  r.bfs = MsPerTree([&](VertexId s) { (void)Bfs(graph, s); }, sources);

  const CHData ch = BuildContractionHierarchy(graph, ch_params);
  {
    Phast::Options options;
    options.order = SweepOrder::kRankDescending;
    const Phast engine(ch, options);
    Phast::Workspace ws = engine.MakeWorkspace();
    r.phast_rank =
        MsPerTree([&](VertexId s) { engine.ComputeTree(s, ws); }, sources);
  }
  {
    const Phast engine(ch);  // kLevelReordered
    Phast::Workspace ws = engine.MakeWorkspace();
    r.phast_reordered =
        MsPerTree([&](VertexId s) { engine.ComputeTree(s, ws); }, sources);
    r.phast_parallel = MsPerTree(
        [&](VertexId s) { engine.ComputeTreesParallel({&s, 1}, ws); },
        sources);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const BenchConfig config = BenchConfig::FromCommandLine(cli);
  BenchReport report("tab1_single_tree");

  std::printf("=== Table I: single-tree, by algorithm and layout ===\n");

  // Build the raw instance once; the three layouts are relabelings of it.
  CountryParams params;
  params.width = config.width;
  params.height = config.height;
  params.seed = config.seed;
  const GeneratedGraph raw = GenerateCountry(params);
  const SubgraphResult scc = LargestStronglyConnectedComponent(raw.edges);
  const VertexId n = scc.edges.NumVertices();
  std::printf("instance: synthetic country, n=%u m=%zu, %d thread(s)\n\n", n,
              scc.edges.NumArcs(), MaxThreads());
  report.AddConfig("width", config.width);
  report.AddConfig("height", config.height);
  report.AddConfig("seed", config.seed);
  report.AddConfig("sources", config.num_sources);
  report.AddConfig("n", n);
  report.AddConfig("m", scc.edges.NumArcs());
  report.AddConfig("threads", MaxThreads());

  const std::vector<VertexId> sources =
      SampleSources(n, config.num_sources, config.seed + 7);

  const EdgeList input_layout = scc.edges;
  const EdgeList random_layout =
      ApplyPermutation(scc.edges, RandomPermutation(n, config.seed + 1));
  const Graph for_dfs = Graph::FromEdgeList(scc.edges);
  const EdgeList dfs_layout =
      ApplyPermutation(scc.edges, DfsPermutation(for_dfs, 0));

  // Sources must denote the same physical vertices across layouts for a
  // fair comparison; since we sample uniformly, resampling per layout is
  // equivalent — we keep the same indices for simplicity.
  const CHParams ch_params = config.ChParams();
  const LayoutResults random_r = RunLayout(random_layout, sources, ch_params);
  const LayoutResults input_r = RunLayout(input_layout, sources, ch_params);
  const LayoutResults dfs_r = RunLayout(dfs_layout, sources, ch_params);

  const std::vector<int> widths = {26, 12, 12, 12};
  std::printf("time per tree [ms]\n");
  PrintRow({"algorithm", "random", "input", "DFS"}, widths);
  const auto row = [&](const char* name, double a, double b, double c) {
    char x[32], y[32], z[32];
    std::snprintf(x, sizeof(x), "%.2f", a);
    std::snprintf(y, sizeof(y), "%.2f", b);
    std::snprintf(z, sizeof(z), "%.2f", c);
    PrintRow({name, x, y, z}, widths);
    report.AddRow(name)
        .Add("random_ms", a)
        .Add("input_ms", b)
        .Add("dfs_ms", c);
  };
  row("Dijkstra (binary heap)", random_r.dijkstra_binary,
      input_r.dijkstra_binary, dfs_r.dijkstra_binary);
  row("Dijkstra (Dial)", random_r.dijkstra_dial, input_r.dijkstra_dial,
      dfs_r.dijkstra_dial);
  row("Dijkstra (smart queue)", random_r.dijkstra_smart,
      input_r.dijkstra_smart, dfs_r.dijkstra_smart);
  row("Dijkstra (radix heap)", random_r.dijkstra_radix,
      input_r.dijkstra_radix, dfs_r.dijkstra_radix);
  row("BFS", random_r.bfs, input_r.bfs, dfs_r.bfs);
  row("PHAST (rank order)", random_r.phast_rank, input_r.phast_rank,
      dfs_r.phast_rank);
  row("PHAST (level reordered)", random_r.phast_reordered,
      input_r.phast_reordered, dfs_r.phast_reordered);
  row("PHAST (reordered+cores)", random_r.phast_parallel,
      input_r.phast_parallel, dfs_r.phast_parallel);

  const double speedup = std::min({dfs_r.dijkstra_binary, dfs_r.dijkstra_dial,
                                   dfs_r.dijkstra_smart}) /
                         dfs_r.phast_reordered;
  std::printf(
      "\nspeedup, reordered PHAST vs best Dijkstra (DFS layout): %.1fx\n",
      speedup);
  report.AddConfig("speedup_vs_best_dijkstra", speedup);
  report.WriteJsonIfRequested(cli);
  return 0;
}

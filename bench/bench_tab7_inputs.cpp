// Table VII: performance on other inputs — a second, larger network
// ("usa-like") and the travel-distance metric for both.
//
// Paper shape: the USA graph (more vertices) is slower for everything;
// travel distances weaken the hierarchy (41 vs 10 minutes preprocessing,
// 410 vs 140 levels on Europe) and slow PHAST more than Dijkstra.
#include <cstdio>
#include <vector>

#include "common.h"
#include "dijkstra/dijkstra.h"
#include "gpusim/gphast.h"
#include "phast/batch.h"
#include "phast/phast.h"
#include "pq/dial_buckets.h"
#include "util/timer.h"

using namespace phast;
using namespace phast::bench;

namespace {

struct InputResult {
  double dijkstra_ms;
  double phast_ms;
  double gphast_ms;
  uint32_t levels;
  double prep_seconds;
};

InputResult RunInput(const Instance& instance, size_t num_sources,
                     uint64_t seed) {
  const Graph& g = instance.graph;
  const VertexId n = g.NumVertices();
  const std::vector<VertexId> sources = SampleSources(n, num_sources, seed);
  InputResult r{};
  r.levels = instance.ch.NumLevels();
  r.prep_seconds = instance.ch_stats.seconds;

  {
    DialBuckets queue(n, MaxArcWeight(g));
    std::vector<Weight> dist(n);
    Timer timer;
    for (const VertexId s : sources) DijkstraInto(g, s, queue, dist, {});
    r.dijkstra_ms = timer.ElapsedMs() / static_cast<double>(sources.size());
  }

  const Phast engine(instance.ch);
  {
    Phast::Workspace ws = engine.MakeWorkspace();
    Timer timer;
    for (const VertexId s : sources) engine.ComputeTree(s, ws);
    r.phast_ms = timer.ElapsedMs() / static_cast<double>(sources.size());
  }
  {
    Gphast gpu(engine);
    constexpr uint32_t k = 16;
    Phast::Workspace ws = engine.MakeWorkspace(k);
    const std::vector<VertexId> batch = SampleSources(n, k, seed + 1);
    const Gphast::Result res = gpu.ComputeTrees(batch, ws);
    r.gphast_ms = (res.modeled_device_seconds + res.host_seconds) * 1e3 / k;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const BenchConfig config = BenchConfig::FromCommandLine(cli);

  std::printf("=== Table VII: other inputs ===\n");
  // "eur" is the standard size; "usa" is ~1.33x the vertices, mirroring
  // the paper's 18M-vs-24M ratio.
  const uint32_t usa_width = config.width * 4 / 3;

  struct Spec {
    const char* name;
    uint32_t width, height;
    Metric metric;
    uint64_t seed;
  };
  const Spec specs[] = {
      {"eur-time", config.width, config.height, Metric::kTravelTime, 1},
      {"eur-dist", config.width, config.height, Metric::kTravelDistance, 1},
      {"usa-time", usa_width, usa_width, Metric::kTravelTime, 2},
      {"usa-dist", usa_width, usa_width, Metric::kTravelDistance, 2},
  };

  std::printf("\n%-10s%10s%10s%12s%12s%12s%12s\n", "input", "levels",
              "prep [s]", "Dij [ms]", "PHAST [ms]", "GPHAST[ms]", "speedup");
  for (const Spec& spec : specs) {
    const Instance instance = MakeCountryInstance(
        spec.name, spec.width, spec.height, spec.metric, spec.seed);
    const InputResult r = RunInput(instance, config.num_sources, spec.seed);
    std::printf("%-10s%10u%10.2f%12.2f%12.2f%12.3f%11.1fx\n", spec.name,
                r.levels, r.prep_seconds, r.dijkstra_ms, r.phast_ms,
                r.gphast_ms, r.dijkstra_ms / r.phast_ms);
  }
  std::printf(
      "\nexpected shape: usa-* slower than eur-*; *-dist has more levels, "
      "longer preprocessing, and slower PHAST than *-time.\n");
  return 0;
}

#include <gtest/gtest.h>

#include <vector>

#include "dijkstra/bfs.h"
#include "dijkstra/bidirectional.h"
#include "dijkstra/dijkstra.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "pq/dary_heap.h"
#include "pq/dial_buckets.h"
#include "pq/multilevel_buckets.h"
#include "pq/radix_heap.h"
#include "util/rng.h"

namespace phast {
namespace {

Graph DiamondGraph() {
  // 0 -> 1 -> 3 and 0 -> 2 -> 3, with 0->2 cheaper overall.
  EdgeList edges(4);
  edges.AddArc(0, 1, 10);
  edges.AddArc(1, 3, 10);
  edges.AddArc(0, 2, 3);
  edges.AddArc(2, 3, 4);
  return Graph::FromEdgeList(edges);
}

TEST(Dijkstra, DiamondDistances) {
  const SsspResult r = Dijkstra<BinaryHeap>(DiamondGraph(), 0);
  EXPECT_EQ(r.dist, (std::vector<Weight>{0, 10, 3, 7}));
  EXPECT_EQ(r.parent[3], 2u);
  EXPECT_EQ(r.parent[0], kInvalidVertex);
}

TEST(Dijkstra, UnreachableStaysInfinite) {
  EdgeList edges(3);
  edges.AddArc(0, 1, 1);  // vertex 2 unreachable
  const SsspResult r = Dijkstra<BinaryHeap>(Graph::FromEdgeList(edges), 0);
  EXPECT_EQ(r.dist[2], kInfWeight);
  EXPECT_EQ(r.parent[2], kInvalidVertex);
}

TEST(Dijkstra, ZeroWeightArcs) {
  EdgeList edges(3);
  edges.AddArc(0, 1, 0);
  edges.AddArc(1, 2, 0);
  const SsspResult r = Dijkstra<BinaryHeap>(Graph::FromEdgeList(edges), 0);
  EXPECT_EQ(r.dist, (std::vector<Weight>{0, 0, 0}));
}

TEST(Dijkstra, SingleVertex) {
  EdgeList edges(1);
  const SsspResult r = Dijkstra<BinaryHeap>(Graph::FromEdgeList(edges), 0);
  EXPECT_EQ(r.dist, (std::vector<Weight>{0}));
  EXPECT_EQ(r.scanned, 1u);
}

TEST(Dijkstra, SourceOutOfRangeThrows) {
  EXPECT_THROW(Dijkstra<BinaryHeap>(DiamondGraph(), 9), InputError);
}

TEST(Dijkstra, HugeWeightsSaturateNotWrap) {
  EdgeList edges(3);
  edges.AddArc(0, 1, kInfWeight - 2);
  edges.AddArc(1, 2, kInfWeight - 2);
  const SsspResult r = Dijkstra<BinaryHeap>(Graph::FromEdgeList(edges), 0);
  EXPECT_EQ(r.dist[1], kInfWeight - 2);
  // 2's true distance exceeds the label range; it must clamp at infinity,
  // never wrap to a small value.
  EXPECT_EQ(r.dist[2], kInfWeight);
}

// All queue implementations must agree with the binary-heap reference on
// random graphs — this is the paper's Table I queue comparison, as a
// correctness property.
class QueueAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueueAgreement, AllQueuesSameDistances) {
  const uint64_t seed = GetParam();
  const EdgeList edges = GenerateGnm(200, 800, 1000, seed);
  const Graph g = Graph::FromEdgeList(edges);
  const Weight c = MaxArcWeight(g);
  Rng rng(seed);
  for (int i = 0; i < 5; ++i) {
    const VertexId s = static_cast<VertexId>(rng.NextBounded(200));
    const SsspResult binary = Dijkstra<BinaryHeap>(g, s);
    const SsspResult four = Dijkstra<FourHeap>(g, s);
    const SsspResult dial = Dijkstra<DialBuckets>(g, s, c);
    const SsspResult radix = Dijkstra<RadixHeap>(g, s);
    const SsspResult mlb = Dijkstra<MultiLevelBuckets>(g, s);
    EXPECT_EQ(binary.dist, four.dist);
    EXPECT_EQ(binary.dist, dial.dist);
    EXPECT_EQ(binary.dist, radix.dist);
    EXPECT_EQ(binary.dist, mlb.dist);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueAgreement,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Dijkstra, GridDistancesAreManhattan) {
  const Graph g = Graph::FromEdgeList(GenerateGrid(6, 6, 1));
  const SsspResult r = Dijkstra<BinaryHeap>(g, 0);
  for (uint32_t y = 0; y < 6; ++y) {
    for (uint32_t x = 0; x < 6; ++x) {
      EXPECT_EQ(r.dist[y * 6 + x], x + y);
    }
  }
}

TEST(Dijkstra, ScannedCountsSettledVertices) {
  const Graph g = Graph::FromEdgeList(GeneratePath(10));
  const SsspResult r = Dijkstra<BinaryHeap>(g, 0);
  EXPECT_EQ(r.scanned, 10u);
}

// --------------------------- BFS -------------------------------------------

TEST(Bfs, HopCountsOnGrid) {
  const Graph g = Graph::FromEdgeList(GenerateGrid(5, 5, 7));
  const BfsResult r = Bfs(g, 0);
  for (uint32_t y = 0; y < 5; ++y) {
    for (uint32_t x = 0; x < 5; ++x) {
      EXPECT_EQ(r.hops[y * 5 + x], x + y);  // hops ignore weights
    }
  }
  EXPECT_EQ(r.visited, 25u);
}

TEST(Bfs, UnreachableMarked) {
  EdgeList edges(3);
  edges.AddArc(0, 1, 1);
  const BfsResult r = Bfs(Graph::FromEdgeList(edges), 0);
  EXPECT_EQ(r.hops[2], BfsResult::kUnreachedHops);
  EXPECT_EQ(r.visited, 2u);
}

TEST(Bfs, ParentsFormTree) {
  const Graph g = Graph::FromEdgeList(GenerateGrid(4, 4));
  const BfsResult r = Bfs(g, 5);
  EXPECT_EQ(r.parent[5], kInvalidVertex);
  for (VertexId v = 0; v < 16; ++v) {
    if (v == 5) continue;
    ASSERT_NE(r.parent[v], kInvalidVertex);
    EXPECT_EQ(r.hops[v], r.hops[r.parent[v]] + 1);
  }
}

// --------------------------- Bidirectional ---------------------------------

TEST(Bidirectional, MatchesDijkstraOnRandomPairs) {
  const EdgeList edges = GenerateGnm(150, 600, 100, 3);
  const Graph fw = Graph::FromEdgeList(edges);
  const Graph bw = fw.Reversed();
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    const VertexId s = static_cast<VertexId>(rng.NextBounded(150));
    const VertexId t = static_cast<VertexId>(rng.NextBounded(150));
    const SsspResult ref = Dijkstra<BinaryHeap>(fw, s);
    const PointToPointResult r = BidirectionalDijkstra(fw, bw, s, t);
    EXPECT_EQ(r.dist, ref.dist[t]) << "s=" << s << " t=" << t;
  }
}

TEST(Bidirectional, PathIsValid) {
  const EdgeList edges = GenerateGrid(8, 8, 2);
  const Graph fw = Graph::FromEdgeList(edges);
  const Graph bw = fw.Reversed();
  const PointToPointResult r = BidirectionalDijkstra(fw, bw, 0, 63);
  ASSERT_FALSE(r.path.empty());
  EXPECT_EQ(r.path.front(), 0u);
  EXPECT_EQ(r.path.back(), 63u);
  // Path length must add up to the reported distance.
  Weight total = 0;
  for (size_t i = 0; i + 1 < r.path.size(); ++i) {
    bool found = false;
    for (const Arc& a : fw.ArcsOf(r.path[i])) {
      if (a.other == r.path[i + 1]) {
        total += a.weight;
        found = true;
        break;
      }
    }
    ASSERT_TRUE(found);
  }
  EXPECT_EQ(total, r.dist);
}

TEST(Bidirectional, SameSourceTarget) {
  const Graph fw = DiamondGraph();
  const Graph bw = fw.Reversed();
  const PointToPointResult r = BidirectionalDijkstra(fw, bw, 2, 2);
  EXPECT_EQ(r.dist, 0u);
  EXPECT_EQ(r.path, (std::vector<VertexId>{2}));
}

TEST(Bidirectional, UnreachableReportsInfinity) {
  EdgeList edges(3);
  edges.AddArc(0, 1, 1);
  const Graph fw = Graph::FromEdgeList(edges);
  const Graph bw = fw.Reversed();
  const PointToPointResult r = BidirectionalDijkstra(fw, bw, 0, 2);
  EXPECT_EQ(r.dist, kInfWeight);
  EXPECT_TRUE(r.path.empty());
}

TEST(Bidirectional, ScansFewerThanFullDijkstra) {
  const GeneratedGraph country = GenerateCountry({.width = 30, .height = 30});
  const SubgraphResult sub = LargestStronglyConnectedComponent(country.edges);
  const Graph fw = Graph::FromEdgeList(sub.edges);
  const Graph bw = fw.Reversed();
  const VertexId n = fw.NumVertices();
  size_t scanned_full = 0;
  BinaryHeap queue(n);
  std::vector<Weight> dist(n);
  DijkstraInto(fw, 0, queue, dist, {}, &scanned_full);
  const PointToPointResult r = BidirectionalDijkstra(fw, bw, 0, n / 2, false);
  EXPECT_LT(r.scanned, scanned_full);
}

}  // namespace
}  // namespace phast

#include <gtest/gtest.h>

#include <numeric>

#include "graph/csr.h"
#include "graph/generators.h"
#include "graph/reorder.h"
#include "util/error.h"

namespace phast {
namespace {

TEST(Permutation, IdentityIsPermutation) {
  const Permutation p = IdentityPermutation(10);
  EXPECT_TRUE(IsPermutation(p));
  for (VertexId v = 0; v < 10; ++v) EXPECT_EQ(p[v], v);
}

TEST(Permutation, RandomIsPermutation) {
  const Permutation p = RandomPermutation(100, 42);
  EXPECT_TRUE(IsPermutation(p));
  EXPECT_NE(p, IdentityPermutation(100));  // astronomically unlikely
}

TEST(Permutation, RandomDeterministicBySeed) {
  EXPECT_EQ(RandomPermutation(50, 1), RandomPermutation(50, 1));
  EXPECT_NE(RandomPermutation(50, 1), RandomPermutation(50, 2));
}

TEST(Permutation, DetectsNonPermutations) {
  EXPECT_FALSE(IsPermutation(Permutation{0, 0, 1}));
  EXPECT_FALSE(IsPermutation(Permutation{0, 3, 1}));
  EXPECT_TRUE(IsPermutation(Permutation{}));
  EXPECT_TRUE(IsPermutation(Permutation{2, 0, 1}));
}

TEST(Permutation, InverseComposesToIdentity) {
  const Permutation p = RandomPermutation(64, 9);
  const Permutation inv = InvertPermutation(p);
  for (VertexId v = 0; v < 64; ++v) EXPECT_EQ(inv[p[v]], v);
}

TEST(Dfs, PreorderOnPath) {
  const Graph g = Graph::FromEdgeList(GeneratePath(5));
  const Permutation p = DfsPermutation(g, 0);
  // From vertex 0 the only DFS order on a path is 0,1,2,3,4.
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(p[v], v);
}

TEST(Dfs, CoversDisconnectedGraph) {
  EdgeList edges(6);
  edges.AddBidirectional(0, 1, 1);
  edges.AddBidirectional(3, 4, 1);  // 2 and 5 isolated
  const Graph g = Graph::FromEdgeList(edges);
  const Permutation p = DfsPermutation(g, 3);
  EXPECT_TRUE(IsPermutation(p));
  EXPECT_EQ(p[3], 0u);  // root numbered first
  EXPECT_EQ(p[4], 1u);
}

TEST(Dfs, NeighborsGetNearbyIds) {
  const Graph g = Graph::FromEdgeList(GenerateGrid(10, 10));
  const Permutation p = DfsPermutation(g, 0);
  EXPECT_TRUE(IsPermutation(p));
  // DFS locality: average |id(u) - id(v)| over edges far below random (~n/3).
  uint64_t total_gap = 0;
  uint64_t arcs = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (const Arc& a : g.ArcsOf(v)) {
      total_gap += p[v] > p[a.other] ? p[v] - p[a.other] : p[a.other] - p[v];
      ++arcs;
    }
  }
  EXPECT_LT(total_gap / arcs, 20u);
}

TEST(Dfs, RejectsBadRoot) {
  const Graph g = Graph::FromEdgeList(GeneratePath(3));
  EXPECT_THROW(DfsPermutation(g, 10), InputError);
}

TEST(LevelPerm, SortsDescendingByLevel) {
  const std::vector<uint32_t> levels = {0, 2, 1, 2, 0};
  const Permutation p = LevelPermutation(levels);
  EXPECT_TRUE(IsPermutation(p));
  // New ids: level-2 vertices first (1 then 3), then level 1 (2), then
  // level 0 (0, 4).
  EXPECT_EQ(p[1], 0u);
  EXPECT_EQ(p[3], 1u);
  EXPECT_EQ(p[2], 2u);
  EXPECT_EQ(p[0], 3u);
  EXPECT_EQ(p[4], 4u);
}

TEST(LevelPerm, StableWithinLevel) {
  const std::vector<uint32_t> levels(8, 3);  // all same level
  const Permutation p = LevelPermutation(levels);
  EXPECT_EQ(p, IdentityPermutation(8));
}

TEST(ApplyPerm, RelabelsEndpoints) {
  EdgeList edges(3);
  edges.AddArc(0, 1, 7);
  edges.AddArc(1, 2, 8);
  const Permutation p = {2, 0, 1};
  const EdgeList out = ApplyPermutation(edges, p);
  ASSERT_EQ(out.NumArcs(), 2u);
  EXPECT_EQ(out.Edges()[0], (Edge{2, 0, 7}));
  EXPECT_EQ(out.Edges()[1], (Edge{0, 1, 8}));
}

TEST(ApplyPerm, SizeMismatchThrows) {
  EdgeList edges(3);
  edges.AddArc(0, 1, 7);
  EXPECT_THROW(ApplyPermutation(edges, {0, 1}), InputError);
}

TEST(ApplyPerm, ValuesFollowVertices) {
  const std::vector<int> values = {10, 20, 30};
  const Permutation p = {2, 0, 1};
  const std::vector<int> out = ApplyPermutationToValues(values, p);
  EXPECT_EQ(out, (std::vector<int>{20, 30, 10}));
}

TEST(ApplyPerm, GraphStructurePreserved) {
  // Relabeling must preserve degrees and arc multiset up to renaming.
  const EdgeList edges = GenerateGrid(5, 5);
  const Permutation p = RandomPermutation(25, 3);
  const Graph original = Graph::FromEdgeList(edges);
  const Graph relabeled = Graph::FromEdgeList(ApplyPermutation(edges, p));
  for (VertexId v = 0; v < 25; ++v) {
    EXPECT_EQ(original.Degree(v), relabeled.Degree(p[v]));
  }
  EXPECT_EQ(original.NumArcs(), relabeled.NumArcs());
}

}  // namespace
}  // namespace phast

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "dijkstra/dijkstra.h"
#include "phast/phast.h"
#include "phast/rphast.h"
#include "pq/dary_heap.h"
#include "test_support.h"
#include "util/rng.h"

namespace phast {
namespace {

using phast::testing::CachedCountry;
using phast::testing::CachedCountryCH;

TEST(RPhast, DistancesMatchDijkstraForRandomTargets) {
  const Graph& g = CachedCountry(14);
  const Phast engine(CachedCountryCH(14));
  Rng rng(3);
  for (int round = 0; round < 5; ++round) {
    std::vector<VertexId> targets(20);
    for (auto& t : targets) {
      t = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    }
    const RPhast rphast(engine, targets);
    RPhast::Workspace ws = rphast.MakeWorkspace();
    for (int q = 0; q < 4; ++q) {
      const VertexId s =
          static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
      rphast.ComputeTree(s, ws);
      const SsspResult ref = Dijkstra<BinaryHeap>(g, s);
      for (size_t i = 0; i < targets.size(); ++i) {
        ASSERT_EQ(rphast.DistanceToTarget(ws, i), ref.dist[targets[i]])
            << "s=" << s << " target=" << targets[i];
      }
    }
  }
}

TEST(RPhast, SingleTarget) {
  const Graph& g = CachedCountry(10);
  const Phast engine(CachedCountryCH(10));
  const std::vector<VertexId> targets = {g.NumVertices() / 2};
  const RPhast rphast(engine, targets);
  RPhast::Workspace ws = rphast.MakeWorkspace();
  rphast.ComputeTree(0, ws);
  const SsspResult ref = Dijkstra<BinaryHeap>(g, 0);
  EXPECT_EQ(rphast.DistanceToTarget(ws, 0), ref.dist[targets[0]]);
  // One target restricts the sweep to a fraction of the graph.
  EXPECT_LT(rphast.RestrictedVertices(), g.NumVertices());
}

TEST(RPhast, AllVerticesAsTargetsEqualsFullPhast) {
  const Graph& g = CachedCountry(8);
  const Phast engine(CachedCountryCH(8));
  std::vector<VertexId> all(g.NumVertices());
  std::iota(all.begin(), all.end(), VertexId{0});
  const RPhast rphast(engine, all);
  EXPECT_EQ(rphast.RestrictedVertices(), g.NumVertices());

  RPhast::Workspace rws = rphast.MakeWorkspace();
  Phast::Workspace pws = engine.MakeWorkspace();
  rphast.ComputeTree(5, rws);
  engine.ComputeTree(5, pws);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    ASSERT_EQ(rphast.DistanceToTarget(rws, v), engine.Distance(pws, v));
  }
}

TEST(RPhast, RepeatedQueriesFromSameWorkspace) {
  const Graph& g = CachedCountry(10);
  const Phast engine(CachedCountryCH(10));
  const std::vector<VertexId> targets = {1, 7, g.NumVertices() - 1};
  const RPhast rphast(engine, targets);
  RPhast::Workspace ws = rphast.MakeWorkspace();
  for (const VertexId s : {VertexId{0}, VertexId{50}, VertexId{0}}) {
    rphast.ComputeTree(s, ws);
    const SsspResult ref = Dijkstra<BinaryHeap>(g, s);
    for (size_t i = 0; i < targets.size(); ++i) {
      ASSERT_EQ(rphast.DistanceToTarget(ws, i), ref.dist[targets[i]]);
    }
  }
}

TEST(RPhast, RestrictionShrinksWithLocalizedTargets) {
  const Graph& g = CachedCountry(20);
  const Phast engine(CachedCountryCH(20));
  // A clustered target set (consecutive ids are spatially close after DFS
  // numbering of the generator's grid order).
  std::vector<VertexId> cluster(16);
  std::iota(cluster.begin(), cluster.end(), VertexId{10});
  const RPhast small(engine, cluster);

  std::vector<VertexId> spread;
  for (VertexId v = 0; v < g.NumVertices(); v += g.NumVertices() / 64) {
    spread.push_back(v);
  }
  const RPhast large(engine, spread);

  EXPECT_LT(small.RestrictedVertices(), g.NumVertices() / 2);
  EXPECT_LE(small.RestrictedVertices(), large.RestrictedVertices());
}

TEST(RPhast, UnreachableTargetsGiveInfinity) {
  // Two disconnected components; targets in the other one.
  EdgeList edges(6);
  edges.AddBidirectional(0, 1, 2);
  edges.AddBidirectional(1, 2, 3);
  edges.AddBidirectional(3, 4, 1);
  edges.AddBidirectional(4, 5, 1);
  const Graph g = Graph::FromEdgeList(edges);
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);
  const std::vector<VertexId> targets = {4, 5};
  const RPhast rphast(engine, targets);
  RPhast::Workspace ws = rphast.MakeWorkspace();
  rphast.ComputeTree(0, ws);
  EXPECT_EQ(rphast.DistanceToTarget(ws, 0), kInfWeight);
  EXPECT_EQ(rphast.DistanceToTarget(ws, 1), kInfWeight);
  rphast.ComputeTree(3, ws);
  EXPECT_EQ(rphast.DistanceToTarget(ws, 0), 1u);
  EXPECT_EQ(rphast.DistanceToTarget(ws, 1), 2u);
}

TEST(RPhast, RejectsBadConfigurations) {
  const Phast engine(CachedCountryCH(8));
  EXPECT_THROW(RPhast(engine, {}), InputError);
  const std::vector<VertexId> bad = {engine.NumVertices() + 5};
  EXPECT_THROW(RPhast(engine, bad), InputError);

  Phast::Options no_marks;
  no_marks.implicit_init = false;
  const Phast explicit_engine(CachedCountryCH(8), no_marks);
  const std::vector<VertexId> ok = {0};
  EXPECT_THROW(RPhast(explicit_engine, ok), InputError);
}

TEST(RPhast, DuplicateTargetsAllowed) {
  const Graph& g = CachedCountry(8);
  const Phast engine(CachedCountryCH(8));
  const std::vector<VertexId> targets = {3, 3, 3};
  const RPhast rphast(engine, targets);
  RPhast::Workspace ws = rphast.MakeWorkspace();
  rphast.ComputeTree(1, ws);
  const SsspResult ref = Dijkstra<BinaryHeap>(g, 1);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(rphast.DistanceToTarget(ws, i), ref.dist[3]);
  }
}

}  // namespace
}  // namespace phast

// ThreadSanitizer stress test for the batched parallel contraction engine
// (DESIGN.md §9): contract mid-size graphs with every available thread so
// TSan gets real cross-thread interleavings of the refresh/select/witness
// phases to inspect. Built and run under PHAST_SANITIZE=thread in CI; the
// structural checks are deliberately light — the point of this binary is
// the instrumented execution, not the assertions (test_ch_parallel pins
// determinism, test_ch pins correctness).
#include <gtest/gtest.h>

#include "ch/ch_data.h"
#include "ch/contraction.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "util/omp_env.h"

namespace phast {
namespace {

Graph CountryGraph(uint32_t side, uint64_t seed) {
  CountryParams params;
  params.width = side;
  params.height = side;
  params.seed = seed;
  const GeneratedGraph g = GenerateCountry(params);
  return Graph::FromEdgeList(LargestStronglyConnectedComponent(g.edges).edges);
}

void ExpectWellFormed(const Graph& g, const CHData& ch, const CHStats& stats) {
  EXPECT_EQ(ch.num_vertices, g.NumVertices());
  EXPECT_GT(stats.rounds, 0u);
  EXPECT_EQ(stats.profile.TotalContracted(), ch.num_vertices);
  std::vector<bool> seen(ch.num_vertices, false);
  for (const uint32_t r : ch.rank) {
    ASSERT_LT(r, ch.num_vertices);
    EXPECT_FALSE(seen[r]);
    seen[r] = true;
  }
}

TEST(ChStress, MaxThreadsOnCountryGraph) {
  const Graph g = CountryGraph(40, 1);
  CHParams params;
  params.threads = 0;  // all available
  CHStats stats;
  const CHData ch = BuildContractionHierarchy(g, params, &stats);
  ExpectWellFormed(g, ch, stats);
  EXPECT_EQ(stats.profile.threads,
            static_cast<uint32_t>(std::max(1, MaxThreads())));
}

TEST(ChStress, MaxThreadsOnAdversarialGnm) {
  // G(n, m) has no hierarchy to exploit: large dense batches early, tiny
  // high-degree batches late — a different interleaving profile than the
  // road-like case above.
  // Kept small: contracting a structureless G(n, m) densifies the core and
  // the run goes superlinear fast, and TSan multiplies that by ~15x.
  const Graph g = Graph::FromEdgeList(
      LargestStronglyConnectedComponent(GenerateGnm(500, 2000, 1000, 2))
          .edges);
  CHParams params;
  params.threads = 0;
  CHStats stats;
  const CHData ch = BuildContractionHierarchy(g, params, &stats);
  ExpectWellFormed(g, ch, stats);
}

TEST(ChStress, MaxThreadsTwoHopLazyCombination) {
  const Graph g = CountryGraph(24, 3);
  CHParams params;
  params.threads = 0;
  params.batch_neighborhood = 2;
  params.eager_neighbor_updates = false;
  CHStats stats;
  const CHData ch = BuildContractionHierarchy(g, params, &stats);
  ExpectWellFormed(g, ch, stats);
}

}  // namespace
}  // namespace phast

#include <gtest/gtest.h>

#include <vector>

#include "dijkstra/dijkstra.h"
#include "gpusim/fleet.h"
#include "graph/generators.h"
#include "phast/phast.h"
#include "phast/prepare.h"
#include "pq/dary_heap.h"
#include "util/affinity.h"
#include "util/rng.h"

namespace phast {
namespace {

TEST(Prepare, MappingsAreConsistent) {
  const GeneratedGraph raw = GenerateCountry({.width = 12, .height = 12});
  const PreparedNetwork net = PrepareNetwork(raw.edges);
  ASSERT_GT(net.NumVertices(), 0u);
  ASSERT_EQ(net.to_prepared.size(), raw.edges.NumVertices());
  ASSERT_EQ(net.to_original.size(), net.NumVertices());
  for (VertexId p = 0; p < net.NumVertices(); ++p) {
    EXPECT_EQ(net.to_prepared[net.to_original[p]], p);
  }
  size_t kept = 0;
  for (const VertexId p : net.to_prepared) {
    if (p != kInvalidVertex) {
      EXPECT_LT(p, net.NumVertices());
      ++kept;
    }
  }
  EXPECT_EQ(kept, net.NumVertices());
}

TEST(Prepare, DistancesMatchUnpreparedGraph) {
  // Distances between surviving vertices are invariant under the pipeline.
  const GeneratedGraph raw = GenerateCountry({.width = 10, .height = 10});
  const PreparedNetwork net = PrepareNetwork(raw.edges);
  const Graph original = Graph::FromEdgeList(raw.edges);

  const Phast engine(net.ch);
  Phast::Workspace ws = engine.MakeWorkspace();
  Rng rng(5);
  for (int i = 0; i < 5; ++i) {
    const VertexId s_prepared =
        static_cast<VertexId>(rng.NextBounded(net.NumVertices()));
    const VertexId s_original = net.to_original[s_prepared];
    engine.ComputeTree(s_prepared, ws);
    const SsspResult ref = Dijkstra<BinaryHeap>(original, s_original);
    for (VertexId p = 0; p < net.NumVertices(); ++p) {
      ASSERT_EQ(engine.Distance(ws, p), ref.dist[net.to_original[p]]);
    }
  }
}

TEST(Prepare, OptionsAreHonored) {
  const GeneratedGraph raw = GenerateCountry({.width = 10, .height = 10});
  PrepareOptions options;
  options.restrict_to_largest_scc = false;
  options.dfs_relabel = false;
  const PreparedNetwork net = PrepareNetwork(raw.edges, options);
  EXPECT_EQ(net.NumVertices(), raw.edges.NumVertices());
  // Identity mapping in this configuration.
  for (VertexId v = 0; v < net.NumVertices(); ++v) {
    EXPECT_EQ(net.to_prepared[v], v);
    EXPECT_EQ(net.to_original[v], v);
  }
}

TEST(Prepare, StatsPopulated) {
  const GeneratedGraph raw = GenerateCountry({.width = 8, .height = 8});
  const PreparedNetwork net = PrepareNetwork(raw.edges);
  EXPECT_EQ(net.ch_stats.shortcuts_added, net.ch.num_shortcuts);
  EXPECT_GT(net.ch_stats.num_levels, 0u);
}

TEST(Prepare, EmptyGraphThrows) {
  EXPECT_THROW(PrepareNetwork(EdgeList{}), InputError);
}

// --------------------------- fleet ------------------------------------------

TEST(Fleet, TwoIdenticalCardsHalveWallTime) {
  const GeneratedGraph raw = GenerateCountry({.width = 12, .height = 12});
  const PreparedNetwork net = PrepareNetwork(raw.edges);
  const Phast engine(net.ch);

  GphastFleet one(engine, {DeviceSpec::Gtx580()});
  GphastFleet two(engine, {DeviceSpec::Gtx580(), DeviceSpec::Gtx580()});
  const auto est1 = one.EstimateWorkload(10000, 16);
  const auto est2 = two.EstimateWorkload(10000, 16);
  EXPECT_NEAR(est2.wall_seconds, est1.wall_seconds / 2.0,
              est1.wall_seconds * 0.1);
  EXPECT_EQ(est2.trees_per_device[0] + est2.trees_per_device[1], 10000u);
}

TEST(Fleet, HeterogeneousSplitFavorsFasterCard) {
  const GeneratedGraph raw = GenerateCountry({.width = 12, .height = 12});
  const PreparedNetwork net = PrepareNetwork(raw.edges);
  const Phast engine(net.ch);
  GphastFleet mixed(engine, {DeviceSpec::Gtx580(), DeviceSpec::Gtx480()});
  const auto est = mixed.EstimateWorkload(10000, 16);
  EXPECT_GE(est.trees_per_device[0], est.trees_per_device[1]);
  // Proportional split keeps devices balanced: busy times within 20%.
  EXPECT_NEAR(est.seconds_per_device[0], est.seconds_per_device[1],
              0.2 * est.seconds_per_device[0]);
}

TEST(Fleet, RepeatEstimatesServeFromCalibrationCache) {
  // EstimateWorkload calibrates per k and caches the result under the
  // fleet's mutex; a repeat estimate for the same k must reproduce the
  // modeled split exactly (the modeled device time is deterministic, and
  // the cached host time is reused verbatim).
  const GeneratedGraph raw = GenerateCountry({.width = 10, .height = 10});
  const PreparedNetwork net = PrepareNetwork(raw.edges);
  const Phast engine(net.ch);
  GphastFleet fleet(engine, {DeviceSpec::Gtx580(), DeviceSpec::Gtx480()});
  const auto first = fleet.EstimateWorkload(5000, 16);
  const auto second = fleet.EstimateWorkload(5000, 16);
  EXPECT_EQ(first.trees_per_device, second.trees_per_device);
  EXPECT_EQ(first.wall_seconds, second.wall_seconds);
  EXPECT_EQ(first.host_seconds_total, second.host_seconds_total);
  // A different k re-calibrates rather than reusing the k=16 sample.
  const auto other_k = fleet.EstimateWorkload(5000, 8);
  EXPECT_EQ(other_k.trees_per_device[0] + other_k.trees_per_device[1], 5000u);
}

TEST(Fleet, RejectsEmptyAndZeroWork) {
  const GeneratedGraph raw = GenerateCountry({.width = 8, .height = 8});
  const PreparedNetwork net = PrepareNetwork(raw.edges);
  const Phast engine(net.ch);
  EXPECT_THROW(GphastFleet(engine, {}), InputError);
  GphastFleet fleet(engine, {DeviceSpec::Gtx580()});
  EXPECT_THROW(fleet.EstimateWorkload(0, 16), InputError);
}

// --------------------------- affinity ---------------------------------------

TEST(Affinity, PinAndUnpinSucceedOnLinux) {
#if defined(__linux__)
  EXPECT_TRUE(PinCurrentThreadToCore(0));
  EXPECT_TRUE(UnpinCurrentThread(1));
#else
  GTEST_SKIP() << "affinity is Linux-only";
#endif
}

TEST(Affinity, RejectsInvalidCore) {
  EXPECT_FALSE(PinCurrentThreadToCore(-1));
}

}  // namespace
}  // namespace phast

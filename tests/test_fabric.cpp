// Serving-fabric tests (DESIGN.md §12): the PHSNAP02 mmap path serves
// bit-identical distances to the PHSNAP01 copy-load, integrity violations
// (truncation, bit flips, misaligned sections) are rejected, the kernel
// enforces the mapping's read-only protection, cold start under
// --verify=off reads zero payload bytes (span-verified), and the
// consistent-hash ring moves only the dead replica's keys.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "dijkstra/dijkstra.h"
#include "fabric/mapping.h"
#include "fabric/router.h"
#include "obs/trace.h"
#include "phast/phast.h"
#include "pq/dary_heap.h"
#include "server/snapshot.h"
#include "test_support.h"
#include "util/error.h"
#include "util/rng.h"

namespace phast::fabric {
namespace {

using phast::testing::CachedCountry;
using phast::testing::CachedCountryCH;

constexpr uint32_t kSide = 20;

const Phast& Engine() {
  static const Phast engine(CachedCountryCH(kSide));
  return engine;
}

std::string SnapshotBytes(server::SnapshotFormat format) {
  std::ostringstream out;
  server::WriteSnapshot(
      server::MakeSnapshot(Engine(), &CachedCountry(kSide)), out, format);
  return out.str();
}

/// Writes `bytes` to a fresh temp file and returns its path.
std::string WriteTemp(const std::string& bytes, const std::string& tag) {
  const std::string path = ::testing::TempDir() + "phast_fabric_" + tag +
                           "_" + std::to_string(::getpid()) + ".snap";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  return path;
}

/// The v2 header checksum covers header + TOC with the checksum field
/// zeroed; tests that tamper with the TOC re-derive it so only the
/// tampered property (not the hash) trips the reader.
void RestampHeaderChecksum(std::string& bytes) {
  uint32_t sections = 0;
  std::memcpy(&sections, bytes.data() + 12, sizeof(sections));
  const size_t toc_end = 48 + size_t{sections} * sizeof(server::SnapshotSection);
  uint64_t hash = server::kFnv1a64Seed;
  hash = server::Fnv1a64Continue(hash, bytes.data(), 24);
  const char zeros[8] = {};
  hash = server::Fnv1a64Continue(hash, zeros, sizeof(zeros));
  hash = server::Fnv1a64Continue(hash, bytes.data() + 32, toc_end - 32);
  std::memcpy(bytes.data() + 24, &hash, sizeof(hash));
}

class TempSnapshot {
 public:
  TempSnapshot(const std::string& bytes, const std::string& tag)
      : path_(WriteTemp(bytes, tag)) {}
  ~TempSnapshot() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& Path() const { return path_; }

 private:
  std::string path_;
};

// --- zero-copy fidelity -----------------------------------------------------

TEST(Mapping, V2ViewServesBitIdenticalDistancesToV1CopyLoad) {
  const TempSnapshot v2(SnapshotBytes(server::SnapshotFormat::kPhsnap02),
                        "fidelity");
  const MappedSnapshot mapped(v2.Path(), VerifyMode::kSections);
  ASSERT_TRUE(mapped.IsZeroCopy());
  const Phast view_engine(mapped.LayoutView(), mapped.Validation());

  std::istringstream v1(SnapshotBytes(server::SnapshotFormat::kPhsnap01));
  server::Snapshot copy_loaded = server::ReadSnapshot(v1);
  const Phast copy_engine(std::move(copy_loaded.layout));

  ASSERT_EQ(view_engine.NumVertices(), copy_engine.NumVertices());
  Phast::Workspace ws_a = view_engine.MakeWorkspace();
  Phast::Workspace ws_b = copy_engine.MakeWorkspace();
  Rng rng(11);
  const Graph& graph = CachedCountry(kSide);
  for (int trial = 0; trial < 5; ++trial) {
    const VertexId source =
        static_cast<VertexId>(rng.NextBounded(view_engine.NumVertices()));
    view_engine.ComputeTree(source, ws_a);
    copy_engine.ComputeTree(source, ws_b);
    const SsspResult ref = Dijkstra<BinaryHeap>(graph, source);
    for (VertexId v = 0; v < view_engine.NumVertices(); ++v) {
      ASSERT_EQ(view_engine.Distance(ws_a, v), copy_engine.Distance(ws_b, v))
          << "source " << source << " vertex " << v;
      ASSERT_EQ(view_engine.Distance(ws_a, v), ref.dist[v]);
    }
  }
}

TEST(Mapping, V1MapsButIsNotZeroCopy) {
  const TempSnapshot v1(SnapshotBytes(server::SnapshotFormat::kPhsnap01),
                        "v1fallback");
  const MappedSnapshot mapped(v1.Path(), VerifyMode::kFull);
  EXPECT_FALSE(mapped.IsZeroCopy());
  EXPECT_THROW((void)mapped.LayoutView(), InputError);
  // The copy-decode fallback still works straight out of the mapping.
  const server::Snapshot snapshot = mapped.CopyDecode();
  EXPECT_EQ(snapshot.layout.num_vertices, Engine().NumVertices());
}

// --- integrity rejection ----------------------------------------------------

TEST(Mapping, TruncatedFileIsRejectedInEveryVerifyMode) {
  const std::string bytes = SnapshotBytes(server::SnapshotFormat::kPhsnap02);
  const TempSnapshot cut(bytes.substr(0, bytes.size() - 1), "truncated");
  for (const VerifyMode mode :
       {VerifyMode::kFull, VerifyMode::kSections, VerifyMode::kOff}) {
    EXPECT_THROW((void)MappedSnapshot(cut.Path(), mode), InputError);
  }
}

TEST(Mapping, HeaderBitFlipIsRejectedEvenUnderVerifyOff) {
  std::string bytes = SnapshotBytes(server::SnapshotFormat::kPhsnap02);
  bytes[50] ^= 0x01;  // inside the first TOC entry
  const TempSnapshot bad(bytes, "tocflip");
  // The header/TOC hash is O(TOC) and unconditionally verified — structure
  // is authenticated even in the instant-start mode.
  EXPECT_THROW((void)MappedSnapshot(bad.Path(), VerifyMode::kOff),
               InputError);
}

TEST(Mapping, PayloadBitFlipIsCaughtByCheckingModesAndDeferredByOff) {
  std::string bytes = SnapshotBytes(server::SnapshotFormat::kPhsnap02);
  // Flip one bit in the PERM payload (first page-aligned section).
  const server::SnapshotImage clean(bytes.data(), bytes.size(),
                                    server::SnapshotVerify::kOff);
  const server::SnapshotSection perm = clean.Section(server::kSecPerm);
  bytes[perm.offset + perm.size / 2] ^= 0x40;
  const TempSnapshot bad(bytes, "payloadflip");

  EXPECT_THROW((void)MappedSnapshot(bad.Path(), VerifyMode::kFull),
               InputError);
  EXPECT_THROW((void)MappedSnapshot(bad.Path(), VerifyMode::kSections),
               InputError);
  // kOff opens (no payload byte is read)…
  const MappedSnapshot lazy(bad.Path(), VerifyMode::kOff);
  // …and the lazy per-section primitive still localizes the damage.
  EXPECT_FALSE(lazy.Image().SectionChecksumOk(
      lazy.Image().Section(server::kSecPerm)));
  EXPECT_TRUE(lazy.Image().SectionChecksumOk(
      lazy.Image().Section(server::kSecMeta)));
}

TEST(Mapping, MisalignedSectionIsRejected) {
  std::string bytes = SnapshotBytes(server::SnapshotFormat::kPhsnap02);
  // Nudge the PERM section off its page boundary (keeping it in bounds)
  // and restamp the header hash so alignment is the only violation.
  const server::SnapshotImage clean(bytes.data(), bytes.size(),
                                    server::SnapshotVerify::kOff);
  for (size_t i = 0; i < clean.Sections().size(); ++i) {
    if (clean.Sections()[i].id != server::kSecPerm) continue;
    const size_t entry = 48 + i * sizeof(server::SnapshotSection);
    uint64_t offset = 0;
    std::memcpy(&offset, bytes.data() + entry + 8, sizeof(offset));
    offset += 4;
    std::memcpy(bytes.data() + entry + 8, &offset, sizeof(offset));
  }
  RestampHeaderChecksum(bytes);
  const TempSnapshot bad(bytes, "misaligned");
  EXPECT_THROW((void)MappedSnapshot(bad.Path(), VerifyMode::kOff),
               InputError);
}

// --- read-only enforcement --------------------------------------------------

TEST(MappingDeathTest, WritingThroughTheViewFaults) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const TempSnapshot v2(SnapshotBytes(server::SnapshotFormat::kPhsnap02),
                        "readonly");
  const MappedSnapshot mapped(v2.Path(), VerifyMode::kOff);
  const PhastLayoutView view = mapped.LayoutView();
  ASSERT_FALSE(view.perm.empty());
  // PROT_READ means engine immutability is a kernel guarantee, not a
  // convention: the write must die, not corrupt a shared page.
  EXPECT_DEATH(
      { const_cast<VertexId*>(view.perm.data())[0] = 1; }, "");
}

// --- cold start reads no payload --------------------------------------------

TEST(Mapping, ColdStartUnderVerifyOffHashesZeroPayloadBytes) {
  const TempSnapshot v2(SnapshotBytes(server::SnapshotFormat::kPhsnap02),
                        "coldstart");
  obs::ClearSpans();
  obs::EnableTracing(true);
  const MappedSnapshot mapped(v2.Path(), VerifyMode::kOff);
  obs::EnableTracing(false);

  EXPECT_EQ(mapped.PayloadBytesVerified(), 0u);
  // The span stream is the externally visible witness (phast_serve's
  // --trace-out shows the same record): a fabric.map span with arg 0.
  bool found = false;
  for (const obs::SpanRecord& span : obs::CollectSpans()) {
    if (std::strcmp(span.name, "fabric.map") == 0) {
      found = true;
      EXPECT_EQ(span.arg, 0u);
    }
  }
  EXPECT_TRUE(found) << "no fabric.map span recorded";

  // Shallow validation builds a serving engine without touching array
  // content either; the answers are still right.
  const Phast engine(mapped.LayoutView(), mapped.Validation());
  Phast::Workspace ws = engine.MakeWorkspace();
  engine.ComputeTree(0, ws);
  const SsspResult ref = Dijkstra<BinaryHeap>(CachedCountry(kSide), 0);
  for (VertexId v = 0; v < engine.NumVertices(); ++v) {
    ASSERT_EQ(engine.Distance(ws, v), ref.dist[v]);
  }
}

TEST(Mapping, CheckingModesReportVerifiedPayloadBytes) {
  const TempSnapshot v2(SnapshotBytes(server::SnapshotFormat::kPhsnap02),
                        "verifiedbytes");
  const MappedSnapshot sections(v2.Path(), VerifyMode::kSections);
  uint64_t payload_total = 0;
  for (const server::SnapshotSection& s : sections.Image().Sections()) {
    payload_total += s.size;
  }
  EXPECT_EQ(sections.PayloadBytesVerified(), payload_total);
  EXPECT_GT(payload_total, 0u);
}

// --- consistent-hash ring ---------------------------------------------------

TEST(HashRing, PickIsDeterministicAndInRange) {
  const ConsistentHashRing ring(4);
  for (uint64_t key = 0; key < 1000; ++key) {
    const size_t a = ring.Pick(key);
    EXPECT_LT(a, 4u);
    EXPECT_EQ(a, ring.Pick(key));
  }
}

TEST(HashRing, EveryReplicaOwnsSomeKeys) {
  const ConsistentHashRing ring(4);
  std::set<size_t> owners;
  for (uint64_t key = 0; key < 4096; ++key) owners.insert(ring.Pick(key));
  EXPECT_EQ(owners.size(), 4u);
}

TEST(HashRing, DeathMovesOnlyTheDeadReplicasKeys) {
  ConsistentHashRing ring(4);
  std::vector<size_t> before;
  for (uint64_t key = 0; key < 4096; ++key) before.push_back(ring.Pick(key));
  ring.SetAlive(2, false);
  for (uint64_t key = 0; key < 4096; ++key) {
    const size_t now = ring.Pick(key);
    EXPECT_NE(now, 2u);
    if (before[key] != 2) {
      // The cache-locality contract: survivors keep their working sets.
      EXPECT_EQ(now, before[key]) << "key " << key;
    }
  }
  ring.SetAlive(2, true);
  for (uint64_t key = 0; key < 4096; ++key) {
    EXPECT_EQ(ring.Pick(key), before[key]) << "key " << key;
  }
}

TEST(HashRing, PickExcludingAvoidsTheOwner) {
  const ConsistentHashRing ring(3);
  for (uint64_t key = 0; key < 512; ++key) {
    const size_t owner = ring.Pick(key);
    const size_t fallback = ring.PickExcluding(key, owner);
    EXPECT_NE(fallback, owner);
    EXPECT_LT(fallback, 3u);
  }
}

TEST(HashRing, NoAliveReplicaThrows) {
  ConsistentHashRing ring(2);
  ring.SetAlive(0, false);
  ring.SetAlive(1, false);
  EXPECT_EQ(ring.NumAlive(), 0u);
  EXPECT_THROW((void)ring.Pick(7), InputError);
  ring.SetAlive(0, true);
  EXPECT_THROW((void)ring.PickExcluding(7, 0), InputError);
  EXPECT_EQ(ring.Pick(7), 0u);
}

// --- matrix row partitioning and merge --------------------------------------

TEST(MatrixPartition, EveryRowAppearsExactlyOnceOnItsOwner) {
  const ConsistentHashRing ring(3);
  Rng rng(41);
  std::vector<uint32_t> sources;
  for (int i = 0; i < 40; ++i) {
    sources.push_back(rng.NextBounded(500));
  }
  sources.push_back(sources.front());  // duplicate source, two rows

  const std::vector<MatrixPartition> partitions =
      PartitionMatrixSources(ring, sources);
  std::vector<int> seen(sources.size(), 0);
  std::set<size_t> replicas;
  for (const MatrixPartition& p : partitions) {
    EXPECT_TRUE(replicas.insert(p.replica).second)
        << "replica " << p.replica << " owns two partitions";
    EXPECT_FALSE(p.rows.empty());
    EXPECT_TRUE(std::is_sorted(p.rows.begin(), p.rows.end()));
    for (const uint32_t row : p.rows) {
      ASSERT_LT(row, sources.size());
      ++seen[row];
      // Row placement is exactly the ring's single-query routing, so a
      // matrix row and a kQuery for the same source hit the same cache.
      EXPECT_EQ(p.replica, ring.Pick(sources[row])) << "row " << row;
    }
  }
  for (size_t row = 0; row < sources.size(); ++row) {
    EXPECT_EQ(seen[row], 1) << "row " << row;
  }
}

TEST(MatrixPartition, SingleReplicaGetsOnePartitionInRowOrder) {
  const ConsistentHashRing ring(1);
  const std::vector<uint32_t> sources = {9, 3, 9, 7};
  const std::vector<MatrixPartition> partitions =
      PartitionMatrixSources(ring, sources);
  ASSERT_EQ(partitions.size(), 1u);
  EXPECT_EQ(partitions[0].replica, 0u);
  EXPECT_EQ(partitions[0].rows, (std::vector<uint32_t>{0, 1, 2, 3}));
}

TEST(MatrixPartition, MergeScattersSubTablesIntoClientRowOrder) {
  // 4 x 2 client table assembled from two sub-tables with interleaved rows.
  const size_t cols = 2;
  std::vector<uint32_t> table(4 * cols, 0);
  MergeMatrixRows({0, 2}, cols, {10, 11, 30, 31}, table);
  MergeMatrixRows({3, 1}, cols, {40, 41, 20, 21}, table);
  EXPECT_EQ(table,
            (std::vector<uint32_t>{10, 11, 20, 21, 30, 31, 40, 41}));
}

TEST(MatrixPartition, MergeRejectsMismatchedSubTableOrOverflow) {
  std::vector<uint32_t> table(4, 0);
  std::vector<uint32_t> sub = {1, 2};
  EXPECT_THROW(MergeMatrixRows({0, 1}, 2, sub, table), InputError);
  EXPECT_THROW(MergeMatrixRows({2}, 2, sub, table), InputError);  // past end
  MergeMatrixRows({1}, 2, sub, table);  // last row fits exactly
  EXPECT_EQ(table, (std::vector<uint32_t>{0, 0, 1, 2}));
}

TEST(MatrixPartition, PartitionRoundTripsThroughMerge) {
  // Partition, compute each sub-table from a reference function, merge, and
  // require the merged table to equal the direct computation.
  const ConsistentHashRing ring(4);
  Rng rng(53);
  std::vector<uint32_t> sources;
  for (int i = 0; i < 23; ++i) sources.push_back(rng.NextBounded(100));
  const size_t cols = 3;
  const auto cell = [](uint32_t source, size_t j) {
    return source * 10 + static_cast<uint32_t>(j);
  };

  std::vector<uint32_t> merged(sources.size() * cols, 0xdead);
  for (const MatrixPartition& p : PartitionMatrixSources(ring, sources)) {
    std::vector<uint32_t> sub;
    for (const uint32_t row : p.rows) {
      for (size_t j = 0; j < cols; ++j) sub.push_back(cell(sources[row], j));
    }
    MergeMatrixRows(p.rows, cols, sub, merged);
  }
  for (size_t row = 0; row < sources.size(); ++row) {
    for (size_t j = 0; j < cols; ++j) {
      EXPECT_EQ(merged[row * cols + j], cell(sources[row], j));
    }
  }
}

}  // namespace
}  // namespace phast::fabric

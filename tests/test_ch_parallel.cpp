// Determinism suite for the batched parallel contraction engine
// (DESIGN.md §9): the whole point of the select-then-merge round design is
// that ranks, levels, shortcut arc sets, and even serialized bytes are
// bit-identical for every thread count. These tests pin that contract
// across several seeded graph families and parameter corners, plus the
// max_witness_settled=1 regression (a batch whose every witness search hits
// the settle cap must still terminate and stay witness-sound).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "ch/ch_data.h"
#include "ch/ch_io.h"
#include "ch/contraction.h"
#include "ch/query.h"
#include "dijkstra/dijkstra.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "pq/dary_heap.h"
#include "util/rng.h"

namespace phast {
namespace {

Graph CountryGraph(uint32_t side, uint64_t seed) {
  CountryParams params;
  params.width = side;
  params.height = side;
  params.seed = seed;
  const GeneratedGraph g = GenerateCountry(params);
  return Graph::FromEdgeList(LargestStronglyConnectedComponent(g.edges).edges);
}

Graph GeometricGraph(uint32_t n, uint64_t seed) {
  const GeneratedGraph g = GenerateRandomGeometric(n, 0.08, seed);
  return Graph::FromEdgeList(LargestStronglyConnectedComponent(g.edges).edges);
}

Graph GnmGraph(uint32_t n, uint64_t m, uint64_t seed) {
  return Graph::FromEdgeList(
      LargestStronglyConnectedComponent(GenerateGnm(n, m, 1000, seed)).edges);
}

std::string SerializedBytes(const CHData& ch) {
  std::ostringstream out;
  WriteCH(ch, out);
  return out.str();
}

/// Builds the hierarchy once per thread count and asserts every output
/// field (and the serialized ch_io byte stream) is identical to the
/// threads=1 reference.
void ExpectIdenticalAcrossThreads(const Graph& g, CHParams params) {
  params.threads = 1;
  CHStats ref_stats;
  const CHData reference = BuildContractionHierarchy(g, params, &ref_stats);
  const std::string ref_bytes = SerializedBytes(reference);
  for (const uint32_t threads : {2u, 8u}) {
    params.threads = threads;
    CHStats stats;
    const CHData ch = BuildContractionHierarchy(g, params, &stats);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(ch.rank, reference.rank);
    EXPECT_EQ(ch.level, reference.level);
    EXPECT_EQ(ch.up_arcs, reference.up_arcs);
    EXPECT_EQ(ch.down_arcs, reference.down_arcs);
    EXPECT_EQ(ch.num_shortcuts, reference.num_shortcuts);
    EXPECT_EQ(SerializedBytes(ch), ref_bytes);
    // The round structure itself is thread-count-independent too.
    EXPECT_EQ(stats.rounds, ref_stats.rounds);
    EXPECT_EQ(stats.shortcuts_added, ref_stats.shortcuts_added);
    EXPECT_EQ(stats.witness_searches, ref_stats.witness_searches);
  }
}

class ChDeterminism : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChDeterminism, CountryGraphBitIdentical) {
  ExpectIdenticalAcrossThreads(CountryGraph(10, GetParam()), CHParams{});
}

TEST_P(ChDeterminism, RandomGeometricBitIdentical) {
  ExpectIdenticalAcrossThreads(GeometricGraph(400, GetParam()), CHParams{});
}

TEST_P(ChDeterminism, GnmBitIdentical) {
  ExpectIdenticalAcrossThreads(GnmGraph(300, 1200, GetParam()), CHParams{});
}

TEST_P(ChDeterminism, TwoHopNeighborhoodBitIdentical) {
  CHParams params;
  params.batch_neighborhood = 2;
  ExpectIdenticalAcrossThreads(CountryGraph(10, GetParam()), params);
}

TEST_P(ChDeterminism, LazyUpdatesBitIdentical) {
  CHParams params;
  params.eager_neighbor_updates = false;
  ExpectIdenticalAcrossThreads(CountryGraph(10, GetParam()), params);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChDeterminism, ::testing::Values(1, 7, 42));

TEST(ChParallel, AutoThreadsMatchesSerialReference) {
  const Graph g = CountryGraph(12, 3);
  CHParams params;
  params.threads = 1;
  const CHData reference = BuildContractionHierarchy(g, params);
  params.threads = 0;  // auto: all available
  const CHData ch = BuildContractionHierarchy(g, params);
  EXPECT_EQ(SerializedBytes(ch), SerializedBytes(reference));
}

TEST(ChParallel, RepeatedRunsAreIdentical) {
  const Graph g = GeometricGraph(300, 11);
  CHParams params;
  params.threads = 4;
  const std::string first = SerializedBytes(BuildContractionHierarchy(g, params));
  const std::string second =
      SerializedBytes(BuildContractionHierarchy(g, params));
  EXPECT_EQ(first, second);
}

TEST(ChParallel, ParallelBuildAnswersDijkstraExactDistances) {
  const Graph g = CountryGraph(9, 5);
  CHParams params;
  params.threads = 8;
  const CHData ch = BuildContractionHierarchy(g, params);
  CHQuery query(ch);
  Rng rng(5);
  for (int i = 0; i < 6; ++i) {
    const VertexId s = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    const SsspResult ref = Dijkstra<BinaryHeap>(g, s);
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      ASSERT_EQ(query.Distance(s, t), ref.dist[t]) << "s=" << s << " t=" << t;
    }
  }
}

TEST(ChParallel, ProfileAccountsForEveryVertex) {
  const Graph g = CountryGraph(10, 2);
  CHParams params;
  params.threads = 4;
  CHStats stats;
  const CHData ch = BuildContractionHierarchy(g, params, &stats);
  EXPECT_EQ(stats.profile.TotalContracted(), ch.num_vertices);
  EXPECT_EQ(stats.profile.NumRounds(), stats.rounds);
  EXPECT_GT(stats.rounds, 0u);
  EXPECT_EQ(stats.profile.threads, 4u);
  EXPECT_EQ(stats.profile.batch_neighborhood, 1u);
  EXPECT_GT(stats.profile.MaxBatch(), 0u);
  uint64_t batch_sum = 0;
  for (const obs::ContractionRound& r : stats.profile.rounds) {
    EXPECT_EQ(r.round, &r - stats.profile.rounds.data() + 1u);
    EXPECT_GT(r.batch, 0u);  // progress guarantee: every round contracts
    batch_sum += r.batch;
  }
  EXPECT_EQ(batch_sum, ch.num_vertices);
  EXPECT_FALSE(stats.profile.ToJson().empty());
}

TEST(ChParallel, BatchingBeatsOneVertexPerRound) {
  // The independent-set rule must actually batch on road-like graphs —
  // otherwise the parallel engine degenerates to serial contraction.
  const Graph g = CountryGraph(14, 1);
  CHStats stats;
  const CHData ch = BuildContractionHierarchy(g, CHParams{}, &stats);
  EXPECT_EQ(ch.num_vertices, g.NumVertices());
  EXPECT_LT(stats.rounds, g.NumVertices() / 4);
  EXPECT_GT(stats.profile.MaxBatch(), 8u);
}

// Regression: a settle cap of 1 starves every witness search (each one
// gives up after a single settled vertex), so whole batches find no
// witnesses at all. The engine must still terminate — selection does not
// depend on witness results, so the global key minimum is contracted every
// round — and stay witness-sound (capped searches only add shortcuts).
class ChSettleCap : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChSettleCap, SettleCapOfOneTerminatesAndStaysExact) {
  const Graph g = CountryGraph(8, GetParam());
  CHParams params;
  params.max_witness_settled = 1;
  ExpectIdenticalAcrossThreads(g, params);

  params.threads = 8;
  const CHData ch = BuildContractionHierarchy(g, params);
  CHQuery query(ch);
  Rng rng(GetParam());
  for (int i = 0; i < 4; ++i) {
    const VertexId s = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    const SsspResult ref = Dijkstra<BinaryHeap>(g, s);
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      ASSERT_EQ(query.Distance(s, t), ref.dist[t]) << "s=" << s << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChSettleCap, ::testing::Values(1, 9));

}  // namespace
}  // namespace phast

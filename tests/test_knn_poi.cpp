// k-nearest-POI property tests: KnnSweeper against a brute-force bucket
// scan under reference Dijkstra, the (dist, vertex id) tie-break, k larger
// than the category, level-cutoff sweeps bit-identical to full sweeps, and
// the PHPOI01 sidecar round-trip with integrity checking.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "apps/poi.h"
#include "ch/contraction.h"
#include "dijkstra/dijkstra.h"
#include "graph/csr.h"
#include "graph/edge_list.h"
#include "phast/phast.h"
#include "pq/dary_heap.h"
#include "test_support.h"
#include "util/error.h"
#include "util/rng.h"

namespace phast {
namespace {

using phast::testing::CachedCountry;
using phast::testing::CachedCountryCH;

constexpr uint32_t kSide = 20;

const Phast& Engine() {
  static const Phast engine(CachedCountryCH(kSide));
  return engine;
}

/// What Query must return: scan the whole bucket under Dijkstra distances,
/// drop unreachable, sort by (dist, vertex id), keep the first k.
std::vector<PoiResult> BruteForce(const Graph& graph, const PoiIndex& index,
                                  uint32_t category, VertexId source,
                                  uint32_t k) {
  const SsspResult ref = Dijkstra<BinaryHeap>(graph, source);
  std::vector<PoiResult> all;
  for (const VertexId v : index.Bucket(category)) {
    if (ref.dist[v] == kInfWeight) continue;
    all.push_back(PoiResult{ref.dist[v], v});
  }
  std::sort(all.begin(), all.end(),
            [](const PoiResult& a, const PoiResult& b) {
              return a.dist < b.dist ||
                     (a.dist == b.dist && a.vertex < b.vertex);
            });
  if (all.size() > k) all.resize(k);
  return all;
}

// --- correctness vs brute force ---------------------------------------------

TEST(KnnPoi, QueriesMatchBruteForceAcrossCategoriesAndK) {
  const PoiIndex index =
      PoiIndex::GenerateRandom(Engine().NumVertices(), 3, 12, 99);
  Phast::Workspace ws = Engine().MakeWorkspace();
  Rng rng(5);
  for (uint32_t category = 0; category < index.NumCategories(); ++category) {
    const KnnSweeper sweeper(Engine(), index, category);
    for (int trial = 0; trial < 4; ++trial) {
      const VertexId source =
          static_cast<VertexId>(rng.NextBounded(Engine().NumVertices()));
      const uint32_t k = 1 + rng.NextBounded(6);
      EXPECT_EQ(sweeper.Query(source, k, ws),
                BruteForce(CachedCountry(kSide), index, category, source, k))
          << "category " << category << " source " << source << " k " << k;
    }
  }
}

TEST(KnnPoi, CutoffSweepIsBitIdenticalToFullSweep) {
  const PoiIndex index =
      PoiIndex::GenerateRandom(Engine().NumVertices(), 2, 8, 17);
  Phast::Workspace ws_cut = Engine().MakeWorkspace();
  Phast::Workspace ws_full = Engine().MakeWorkspace();
  Rng rng(23);
  for (uint32_t category = 0; category < index.NumCategories(); ++category) {
    const KnnSweeper cutoff(Engine(), index, category, /*use_cutoff=*/true);
    const KnnSweeper full(Engine(), index, category, /*use_cutoff=*/false);
    EXPECT_LE(cutoff.SweepLength(), full.SweepLength());
    EXPECT_EQ(full.SweepLength(), Engine().NumVertices());
    for (int trial = 0; trial < 6; ++trial) {
      const VertexId source =
          static_cast<VertexId>(rng.NextBounded(Engine().NumVertices()));
      const uint32_t k = 1 + rng.NextBounded(8);
      EXPECT_EQ(cutoff.Query(source, k, ws_cut),
                full.Query(source, k, ws_full))
          << "category " << category << " source " << source << " k " << k;
    }
  }
}

TEST(KnnPoi, KLargerThanCategoryReturnsTheWholeReachableBucket) {
  const PoiIndex index =
      PoiIndex::GenerateRandom(Engine().NumVertices(), 1, 5, 7);
  const KnnSweeper sweeper(Engine(), index, 0);
  Phast::Workspace ws = Engine().MakeWorkspace();
  const std::vector<PoiResult> got = sweeper.Query(0, 1000, ws);
  // The test country is strongly connected, so all 5 POIs are reachable.
  EXPECT_EQ(got.size(), index.Bucket(0).size());
  EXPECT_EQ(got, BruteForce(CachedCountry(kSide), index, 0, 0, 1000));
}

TEST(KnnPoi, EquidistantPoisTieBreakByVertexId) {
  // A star: center 0, spokes 1..6 all at distance 5. Ties must come back
  // ordered by vertex id regardless of bucket order.
  EdgeList edges(7);
  for (VertexId v = 1; v < 7; ++v) edges.AddBidirectional(0, v, 5);
  const Graph graph = Graph::FromEdgeList(edges);
  const CHData ch = BuildContractionHierarchy(graph);
  const Phast engine(ch);

  const PoiIndex index(7, {{5, 2, 6, 3}});
  const KnnSweeper sweeper(engine, index, 0);
  Phast::Workspace ws = engine.MakeWorkspace();

  const std::vector<PoiResult> top2 = sweeper.Query(0, 2, ws);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0], (PoiResult{5, 2}));
  EXPECT_EQ(top2[1], (PoiResult{5, 3}));

  const std::vector<PoiResult> all = sweeper.Query(0, 10, ws);
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].vertex, 2u);
  EXPECT_EQ(all[1].vertex, 3u);
  EXPECT_EQ(all[2].vertex, 5u);
  EXPECT_EQ(all[3].vertex, 6u);
}

TEST(KnnPoi, UnreachablePoisAreDropped) {
  // Components {0,1} and {2,3}: from source 0 only POI 1 is reachable.
  EdgeList edges(4);
  edges.AddBidirectional(0, 1, 3);
  edges.AddBidirectional(2, 3, 4);
  const Graph graph = Graph::FromEdgeList(edges);
  const CHData ch = BuildContractionHierarchy(graph);
  const Phast engine(ch);

  const PoiIndex index(4, {{1, 3}});
  Phast::Workspace ws = engine.MakeWorkspace();
  for (const bool use_cutoff : {true, false}) {
    const KnnSweeper sweeper(engine, index, 0, use_cutoff);
    const std::vector<PoiResult> got = sweeper.Query(0, 8, ws);
    ASSERT_EQ(got.size(), 1u) << "use_cutoff " << use_cutoff;
    EXPECT_EQ(got[0], (PoiResult{3, 1}));
  }
}

TEST(KnnPoi, EmptyBucketAndZeroKReturnNothing) {
  const PoiIndex index(Engine().NumVertices(), {{}, {1, 2}});
  Phast::Workspace ws = Engine().MakeWorkspace();
  const KnnSweeper empty_bucket(Engine(), index, 0);
  EXPECT_TRUE(empty_bucket.Query(0, 4, ws).empty());
  const KnnSweeper zero_k(Engine(), index, 1);
  EXPECT_TRUE(zero_k.Query(0, 0, ws).empty());
}

// --- index construction -----------------------------------------------------

TEST(PoiIndex, GenerateRandomIsDeterministicAndInRange) {
  const PoiIndex a = PoiIndex::GenerateRandom(100, 4, 16, 42);
  const PoiIndex b = PoiIndex::GenerateRandom(100, 4, 16, 42);
  ASSERT_EQ(a.NumCategories(), 4u);
  ASSERT_EQ(a.TotalPois(), b.TotalPois());
  for (uint32_t c = 0; c < 4; ++c) {
    const std::span<const VertexId> bucket = a.Bucket(c);
    EXPECT_EQ(bucket.size(), 16u);
    EXPECT_TRUE(std::is_sorted(bucket.begin(), bucket.end()));
    EXPECT_EQ(std::adjacent_find(bucket.begin(), bucket.end()), bucket.end());
    for (const VertexId v : bucket) EXPECT_LT(v, 100u);
    const std::span<const VertexId> other = b.Bucket(c);
    EXPECT_TRUE(std::equal(bucket.begin(), bucket.end(), other.begin(),
                           other.end()));
  }
}

TEST(PoiIndex, PerCategoryLargerThanVertexSetSaturates) {
  const PoiIndex index = PoiIndex::GenerateRandom(6, 2, 50, 1);
  EXPECT_EQ(index.Bucket(0).size(), 6u);  // every vertex, no duplicates
  EXPECT_EQ(index.Bucket(1).size(), 6u);
}

TEST(PoiIndex, RejectsDuplicatesAndOutOfRangeVertices) {
  EXPECT_THROW((void)PoiIndex(10, {{3, 3}}), InputError);
  EXPECT_THROW((void)PoiIndex(10, {{10}}), InputError);
  EXPECT_THROW((void)PoiIndex::GenerateRandom(0, 2, 4, 1), InputError);
}

// --- PHPOI01 sidecar --------------------------------------------------------

std::string TempPoiPath(const char* tag) {
  return ::testing::TempDir() + "phast_poi_" + tag + "_" +
         std::to_string(::getpid()) + ".poi";
}

TEST(PoiIndex, SidecarRoundTripPreservesEveryBucket) {
  const PoiIndex index(50, {{1, 4, 9}, {}, {0, 49}});
  const std::string path = TempPoiPath("roundtrip");
  WritePoiFile(path, index);
  const PoiIndex loaded = ReadPoiFile(path);
  std::remove(path.c_str());

  ASSERT_EQ(loaded.NumVertices(), 50u);
  ASSERT_EQ(loaded.NumCategories(), 3u);
  EXPECT_EQ(loaded.TotalPois(), 5u);
  for (uint32_t c = 0; c < 3; ++c) {
    const std::span<const VertexId> a = index.Bucket(c);
    const std::span<const VertexId> b = loaded.Bucket(c);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

TEST(PoiIndex, SidecarRejectsCorruptionAndBadMagic) {
  const PoiIndex index(20, {{2, 7}});
  const std::string path = TempPoiPath("corrupt");
  WritePoiFile(path, index);

  // Flip one payload byte: the FNV-1a trailer must catch it.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(12);
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(12);
    byte = static_cast<char>(byte ^ 0x40);
    f.write(&byte, 1);
  }
  EXPECT_THROW((void)ReadPoiFile(path), InputError);

  // Wrong magic is rejected before any hash work.
  WritePoiFile(path, index);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.write("XX", 2);
  }
  EXPECT_THROW((void)ReadPoiFile(path), InputError);
  std::remove(path.c_str());

  EXPECT_THROW((void)ReadPoiFile(path + ".does-not-exist"), InputError);
}

}  // namespace
}  // namespace phast

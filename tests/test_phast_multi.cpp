#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "ch/contraction.h"
#include "graph/edge_list.h"
#include "util/error.h"
#include "dijkstra/dijkstra.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "phast/batch.h"
#include "phast/kernels.h"
#include "phast/phast.h"
#include "pq/dary_heap.h"
#include "util/rng.h"

namespace phast {
namespace {

Graph CountryGraph(uint32_t side, uint64_t seed = 1) {
  CountryParams params;
  params.width = side;
  params.height = side;
  params.seed = seed;
  const GeneratedGraph g = GenerateCountry(params);
  return Graph::FromEdgeList(LargestStronglyConnectedComponent(g.edges).edges);
}

std::vector<VertexId> RandomSources(VertexId n, size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<VertexId> sources(count);
  for (auto& s : sources) s = static_cast<VertexId>(rng.NextBounded(n));
  return sources;
}

// Every (simd kernel, k) combination must agree with Dijkstra.
struct MultiCase {
  SimdMode simd;
  uint32_t k;
  const char* name;
};

class MultiTree : public ::testing::TestWithParam<MultiCase> {};

TEST_P(MultiTree, AllTreesMatchDijkstra) {
  const auto [simd, k, name] = GetParam();
  if (!SimdModeAvailable(simd)) GTEST_SKIP() << "CPU lacks " << name;
  const Graph g = CountryGraph(10);
  const CHData ch = BuildContractionHierarchy(g);
  Phast::Options options;
  options.simd = simd;
  const Phast engine(ch, options);
  Phast::Workspace ws = engine.MakeWorkspace(k);
  const std::vector<VertexId> sources = RandomSources(g.NumVertices(), k, 17);
  engine.ComputeTrees(sources, ws);
  for (uint32_t i = 0; i < k; ++i) {
    const SsspResult ref = Dijkstra<BinaryHeap>(g, sources[i]);
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      ASSERT_EQ(engine.Distance(ws, v, i), ref.dist[v])
          << name << " tree " << i << " vertex " << v;
    }
  }
}

TEST_P(MultiTree, ParentsValidPerTree) {
  const auto [simd, k, name] = GetParam();
  if (!SimdModeAvailable(simd)) GTEST_SKIP() << "CPU lacks " << name;
  const Graph g = CountryGraph(8);
  const CHData ch = BuildContractionHierarchy(g);
  Phast::Options options;
  options.simd = simd;
  const Phast engine(ch, options);
  Phast::Workspace ws = engine.MakeWorkspace(k, /*want_parents=*/true);
  const std::vector<VertexId> sources = RandomSources(g.NumVertices(), k, 23);
  engine.ComputeTrees(sources, ws);
  for (uint32_t i = 0; i < k; ++i) {
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      if (engine.Distance(ws, v, i) == kInfWeight || v == sources[i]) continue;
      VertexId cur = v;
      size_t steps = 0;
      while (cur != sources[i]) {
        cur = engine.ParentInGPlus(ws, cur, i);
        ASSERT_NE(cur, kInvalidVertex);
        ASSERT_LE(++steps, static_cast<size_t>(g.NumVertices()));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, MultiTree,
    ::testing::Values(MultiCase{SimdMode::kScalar, 1, "scalar_k1"},
                      MultiCase{SimdMode::kScalar, 3, "scalar_k3"},
                      MultiCase{SimdMode::kScalar, 4, "scalar_k4"},
                      MultiCase{SimdMode::kScalar, 16, "scalar_k16"},
                      MultiCase{SimdMode::kSse, 4, "sse_k4"},
                      MultiCase{SimdMode::kSse, 8, "sse_k8"},
                      MultiCase{SimdMode::kSse, 16, "sse_k16"},
                      MultiCase{SimdMode::kAvx2, 8, "avx2_k8"},
                      MultiCase{SimdMode::kAvx2, 16, "avx2_k16"},
                      MultiCase{SimdMode::kAuto, 4, "auto_k4"},
                      MultiCase{SimdMode::kAuto, 32, "auto_k32"}),
    [](const ::testing::TestParamInfo<MultiCase>& param_info) {
      return param_info.param.name;
    });

TEST(MultiTreeMisc, DuplicateSourcesGiveIdenticalTrees) {
  const Graph g = CountryGraph(8);
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);
  Phast::Workspace ws = engine.MakeWorkspace(4);
  const std::vector<VertexId> sources = {5, 5, 9, 5};
  engine.ComputeTrees(sources, ws);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(engine.Distance(ws, v, 0), engine.Distance(ws, v, 1));
    EXPECT_EQ(engine.Distance(ws, v, 0), engine.Distance(ws, v, 3));
  }
}

TEST(MultiTreeMisc, SimdFallbackWhenKNotMultiple) {
  // SSE requires k % 4 == 0; k=3 silently falls back to scalar but must
  // stay correct.
  const Graph g = CountryGraph(8);
  const CHData ch = BuildContractionHierarchy(g);
  Phast::Options options;
  options.simd = SimdMode::kSse;
  const Phast engine(ch, options);
  EXPECT_STREQ(engine.KernelNameFor(3), "scalar");
  Phast::Workspace ws = engine.MakeWorkspace(3);
  const std::vector<VertexId> sources = {1, 2, 3};
  engine.ComputeTrees(sources, ws);
  const SsspResult ref = Dijkstra<BinaryHeap>(g, 2);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(engine.Distance(ws, v, 1), ref.dist[v]);
  }
}

TEST(MultiTreeMisc, KernelSelectionNames) {
  if (SimdModeAvailable(SimdMode::kSse)) {
    EXPECT_STREQ(SweepKernelName(SimdMode::kSse, 4), "sse");
    EXPECT_STREQ(SweepKernelName(SimdMode::kSse, 5), "scalar");
  }
  if (SimdModeAvailable(SimdMode::kAvx2)) {
    EXPECT_STREQ(SweepKernelName(SimdMode::kAvx2, 8), "avx2");
    EXPECT_STREQ(SweepKernelName(SimdMode::kAuto, 8), "avx2");
    EXPECT_STREQ(SweepKernelName(SimdMode::kAvx2, 4), "scalar");
  }
  EXPECT_STREQ(SweepKernelName(SimdMode::kScalar, 64), "scalar");
}

TEST(MultiTreeMisc, ParallelMultiTreeMatches) {
  const Graph g = CountryGraph(10);
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);
  Phast::Workspace ws_a = engine.MakeWorkspace(4);
  Phast::Workspace ws_b = engine.MakeWorkspace(4);
  const std::vector<VertexId> sources = RandomSources(g.NumVertices(), 4, 3);
  engine.ComputeTrees(sources, ws_a);
  engine.ComputeTreesParallel(sources, ws_b);
  for (uint32_t i = 0; i < 4; ++i) {
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      ASSERT_EQ(engine.Distance(ws_a, v, i), engine.Distance(ws_b, v, i));
    }
  }
}

// --------------------------- batch driver ----------------------------------

TEST(Batch, VisitsEverySourceExactlyOnce) {
  const Graph g = CountryGraph(8);
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);
  const std::vector<VertexId> sources = RandomSources(g.NumVertices(), 10, 9);
  std::vector<int> visits(10, 0);
  BatchOptions options;
  options.trees_per_sweep = 4;  // 10 sources -> 3 batches with padding
  ComputeManyTrees(engine, sources, options,
                   [&](size_t idx, const Phast::Workspace&, uint32_t) {
#pragma omp critical(test_batch_visit)
                     ++visits[idx];
                   });
  for (const int count : visits) EXPECT_EQ(count, 1);
}

TEST(Batch, DistancesCorrectThroughDriver) {
  const Graph g = CountryGraph(8);
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);
  const std::vector<VertexId> sources = RandomSources(g.NumVertices(), 7, 2);
  std::vector<std::vector<Weight>> all(7);
  BatchOptions options;
  options.trees_per_sweep = 4;
  ComputeManyTrees(engine, sources, options,
                   [&](size_t idx, const Phast::Workspace& ws, uint32_t slot) {
                     std::vector<Weight> dist(g.NumVertices());
                     for (VertexId v = 0; v < g.NumVertices(); ++v) {
                       dist[v] = engine.Distance(ws, v, slot);
                     }
#pragma omp critical(test_batch_store)
                     all[idx] = std::move(dist);
                   });
  for (size_t i = 0; i < sources.size(); ++i) {
    const SsspResult ref = Dijkstra<BinaryHeap>(g, sources[i]);
    EXPECT_EQ(all[i], ref.dist) << "source index " << i;
  }
}

TEST(Batch, RejectsZeroTreesPerSweep) {
  // Regression: trees_per_sweep == 0 divided by zero computing the batch
  // count before any workspace was made.
  const Graph g = CountryGraph(4);
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);
  const std::vector<VertexId> sources = {0, 1, 2};
  BatchOptions options;
  options.trees_per_sweep = 0;
  EXPECT_THROW(ComputeManyTrees(engine, sources, options,
                                [](size_t, const Phast::Workspace&, uint32_t) {
                                }),
               InputError);
}

TEST(Batch, OutOfRangeSourceThrowsInsteadOfTerminating) {
  // The engine's source validation throws inside the OpenMP parallel
  // region; without the OmpExceptionGuard in ComputeManyTrees that would be
  // std::terminate (exceptions may not escape a parallel region). The guard
  // captures the first error and rethrows it after the team joins.
  const Graph g = CountryGraph(4);
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);
  const std::vector<VertexId> sources = {0, g.NumVertices() + 7, 1};
  BatchOptions options;
  options.trees_per_sweep = 1;
  EXPECT_THROW(ComputeManyTrees(engine, sources, options,
                                [](size_t, const Phast::Workspace&, uint32_t) {
                                }),
               InputError);
}

TEST(Batch, VisitorExceptionPropagates) {
  const Graph g = CountryGraph(4);
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);
  const std::vector<VertexId> sources = {0, 1, 2, 3};
  BatchOptions options;
  options.trees_per_sweep = 2;
  EXPECT_THROW(
      ComputeManyTrees(engine, sources, options,
                       [](size_t index, const Phast::Workspace&, uint32_t) {
                         Require(index != 2, "visitor rejects source #2");
                       }),
      InputError);
}

TEST(Batch, EmptySourcesIsANoOp) {
  // Regression: an empty span produced sources.size() - begin underflow in
  // the final-batch padding (and a visitor call for a nonexistent source).
  const Graph g = CountryGraph(4);
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);
  int visits = 0;
  BatchOptions options;
  options.trees_per_sweep = 4;
  ComputeManyTrees(engine, std::span<const VertexId>{}, options,
                   [&](size_t, const Phast::Workspace&, uint32_t) {
#pragma omp critical(test_batch_empty)
                     ++visits;
                   });
  EXPECT_EQ(visits, 0);
}

TEST(Batch, ShortFinalBatchPaddingIsCorrectAndUnseen) {
  // 5 sources with k=4: the final batch holds one live source padded by
  // three repeats; the visitor must see exactly indices 0..4 once, and the
  // padded trees must still be exact for the repeated source.
  const Graph g = CountryGraph(8);
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);
  const std::vector<VertexId> sources = RandomSources(g.NumVertices(), 5, 31);
  std::vector<int> visits(5, 0);
  std::vector<std::vector<Weight>> all(5);
  BatchOptions options;
  options.trees_per_sweep = 4;
  ComputeManyTrees(engine, sources, options,
                   [&](size_t idx, const Phast::Workspace& ws, uint32_t slot) {
                     std::vector<Weight> dist(g.NumVertices());
                     for (VertexId v = 0; v < g.NumVertices(); ++v) {
                       dist[v] = engine.Distance(ws, v, slot);
                     }
#pragma omp critical(test_batch_padding)
                     {
                       ++visits[idx];
                       all[idx] = std::move(dist);
                     }
                   });
  for (const int count : visits) EXPECT_EQ(count, 1);
  for (size_t i = 0; i < sources.size(); ++i) {
    const SsspResult ref = Dijkstra<BinaryHeap>(g, sources[i]);
    EXPECT_EQ(all[i], ref.dist) << "source index " << i;
  }
}

// ------------------- duplicate-source coalescing ---------------------------

TEST(Batch, DuplicateSourcesShareLanesWithinABatch) {
  // Regression for lane waste: duplicate sources in one batch used to each
  // occupy a SIMD lane, so [a,b,a,b,c,d,c,a] with k=4 cost two sweeps of
  // which half the lanes recomputed identical trees. With coalescing the
  // eight indices pack into ONE batch of four distinct lanes, and every
  // index still gets exact distances.
  const Graph g = CountryGraph(8);
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);
  const std::vector<VertexId> distinct = RandomSources(g.NumVertices(), 4, 5);
  const VertexId a = distinct[0], b = distinct[1], c = distinct[2],
                 d = distinct[3];
  const std::vector<VertexId> sources = {a, b, a, b, c, d, c, a};
  std::vector<std::vector<Weight>> all(sources.size());
  std::vector<int> visits(sources.size(), 0);
  BatchOptions options;
  options.trees_per_sweep = 4;
  const BatchStats stats = ComputeManyTrees(
      engine, sources, options,
      [&](size_t idx, const Phast::Workspace& ws, uint32_t slot) {
        std::vector<Weight> dist(g.NumVertices());
        for (VertexId v = 0; v < g.NumVertices(); ++v) {
          dist[v] = engine.Distance(ws, v, slot);
        }
#pragma omp critical(test_batch_dedup)
        {
          ++visits[idx];
          all[idx] = std::move(dist);
        }
      });
  EXPECT_EQ(stats.num_batches, 1u);
  EXPECT_EQ(stats.duplicates_coalesced, 4u);
  for (const int count : visits) EXPECT_EQ(count, 1);
  for (size_t i = 0; i < sources.size(); ++i) {
    const SsspResult ref = Dijkstra<BinaryHeap>(g, sources[i]);
    EXPECT_EQ(all[i], ref.dist) << "source index " << i;
  }
}

TEST(Batch, AllIdenticalSourcesCollapseToOneLane) {
  const Graph g = CountryGraph(8);
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);
  const VertexId s = RandomSources(g.NumVertices(), 1, 23)[0];
  const std::vector<VertexId> sources(16, s);
  const SsspResult ref = Dijkstra<BinaryHeap>(g, s);
  std::vector<int> visits(sources.size(), 0);
  BatchOptions options;
  options.trees_per_sweep = 4;
  const BatchStats stats = ComputeManyTrees(
      engine, sources, options,
      [&](size_t idx, const Phast::Workspace& ws, uint32_t slot) {
        EXPECT_EQ(slot, 0u);  // everyone shares the first occurrence's lane
        EXPECT_EQ(engine.Distance(ws, sources[idx], slot), 0u);
        bool match = true;
        for (VertexId v = 0; v < g.NumVertices(); ++v) {
          match = match && engine.Distance(ws, v, slot) == ref.dist[v];
        }
        EXPECT_TRUE(match);
#pragma omp critical(test_batch_identical)
        ++visits[idx];
      });
  EXPECT_EQ(stats.num_batches, 1u);
  EXPECT_EQ(stats.duplicates_coalesced, 15u);
  for (const int count : visits) EXPECT_EQ(count, 1);
}

TEST(Batch, CoalescingKeepsDistinctRunsInSeparateBatches) {
  // 6 distinct sources with k=4 still need two sweeps; the stats must say
  // so and no index may be dropped or double-visited.
  const Graph g = CountryGraph(8);
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);
  std::vector<VertexId> sources = RandomSources(g.NumVertices(), 6, 41);
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
  if (sources.size() < 5) GTEST_SKIP() << "seed collision";
  std::vector<int> visits(sources.size(), 0);
  BatchOptions options;
  options.trees_per_sweep = 4;
  const BatchStats stats = ComputeManyTrees(
      engine, sources, options,
      [&](size_t idx, const Phast::Workspace&, uint32_t) {
#pragma omp critical(test_batch_runs)
        ++visits[idx];
      });
  EXPECT_EQ(stats.num_batches, 2u);
  EXPECT_EQ(stats.duplicates_coalesced, 0u);
  for (const int count : visits) EXPECT_EQ(count, 1);
}

// ------------------- stale parents across batches --------------------------

/// Two disjoint components: whichever one the batch's source lives in, the
/// other component's vertices stay unreached.
EdgeList TwoComponentGraph() {
  EdgeList edges;
  for (VertexId v = 0; v + 1 < 8; ++v) {
    edges.AddBidirectional(v, v + 1, v + 1);       // component A: 0..7
    edges.AddBidirectional(8 + v, 8 + v + 1, 2);   // component B: 8..15
  }
  return edges;
}

TEST(MultiBatchParents, NoStaleParentsAcrossDisjointBatches) {
  // Implicit-init sweeps reset the *labels* of unmarked vertices but not
  // their parent slots (see the invariant note in phast/kernels.h), so a
  // workspace reused across batches with disjoint reachable sets carries
  // stale parent values in memory. ParentInGPlus must never surface them:
  // the labels_[slot] == kInfWeight guard is load-bearing, and this test
  // fails if it is ever removed.
  const Graph g = Graph::FromEdgeList(TwoComponentGraph());
  const CHData ch = BuildContractionHierarchy(g);
  for (const SweepOrder order :
       {SweepOrder::kRankDescending, SweepOrder::kLevelNoReorder,
        SweepOrder::kLevelReordered}) {
    Phast::Options options;
    options.order = order;
    options.implicit_init = true;
    const Phast engine(ch, options);
    Phast::Workspace ws = engine.MakeWorkspace(1, /*want_parents=*/true);

    // Batch 1 reaches only component A and populates parent slots there.
    engine.ComputeTree(/*source=*/0, ws);
    for (VertexId v = 8; v < 16; ++v) {
      ASSERT_EQ(engine.Distance(ws, v), kInfWeight);
      ASSERT_EQ(engine.ParentInGPlus(ws, v), kInvalidVertex);
    }
    ASSERT_NE(engine.ParentInGPlus(ws, 5), kInvalidVertex);

    // Batch 2 through the same workspace reaches only component B; every
    // component-A vertex now holds a stale parent slot in memory.
    engine.ComputeTree(/*source=*/8, ws);
    const SsspResult ref = Dijkstra<BinaryHeap>(g, 8);
    for (VertexId v = 0; v < 8; ++v) {
      ASSERT_EQ(engine.Distance(ws, v), kInfWeight);
      ASSERT_EQ(engine.ParentInGPlus(ws, v), kInvalidVertex)
          << "stale parent leaked for unreached vertex " << v;
    }
    // Reached vertices have exact distances and parent paths to the source.
    for (VertexId v = 9; v < 16; ++v) {
      ASSERT_EQ(engine.Distance(ws, v), ref.dist[v]);
      VertexId cur = v;
      size_t steps = 0;
      while (cur != 8) {
        cur = engine.ParentInGPlus(ws, cur);
        ASSERT_NE(cur, kInvalidVertex);
        ASSERT_LE(++steps, static_cast<size_t>(g.NumVertices()));
      }
    }
  }
}

TEST(MultiBatchParents, StaleParentsStayHiddenForMultiTreeKernels) {
  // Same hazard, k=8 so the SSE/AVX2 kernels run their unmarked-vertex
  // label-reset path (which intentionally skips parent slots).
  const Graph g = Graph::FromEdgeList(TwoComponentGraph());
  const CHData ch = BuildContractionHierarchy(g);
  for (const SimdMode simd :
       {SimdMode::kScalar, SimdMode::kSse, SimdMode::kAvx2}) {
    if (!SimdModeAvailable(simd)) continue;
    Phast::Options options;
    options.simd = simd;
    options.implicit_init = true;
    const Phast engine(ch, options);
    Phast::Workspace ws = engine.MakeWorkspace(8, /*want_parents=*/true);

    const std::vector<VertexId> batch_a = {0, 1, 2, 3, 4, 5, 6, 7};
    engine.ComputeTrees(batch_a, ws);
    const std::vector<VertexId> batch_b = {8, 9, 10, 11, 12, 13, 14, 15};
    engine.ComputeTrees(batch_b, ws);
    for (uint32_t tree = 0; tree < 8; ++tree) {
      for (VertexId v = 0; v < 8; ++v) {
        ASSERT_EQ(engine.Distance(ws, v, tree), kInfWeight);
        ASSERT_EQ(engine.ParentInGPlus(ws, v, tree), kInvalidVertex)
            << "simd kernel leaked a stale parent for vertex " << v;
      }
    }
  }
}

}  // namespace
}  // namespace phast

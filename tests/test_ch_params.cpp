// CH preprocessing parameter sweeps. The paper: "Although any order gives a
// correct algorithm, query times and the size of A+ may vary" (§II-B) and
// "the priority term has limited influence on the performance of PHAST ...
// it works well with any function that produces a good contraction
// hierarchy" (§VIII-A). So: correctness must hold for *every* priority
// function and witness-search budget; quality may differ.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ch/contraction.h"
#include "ch/query.h"
#include "dijkstra/dijkstra.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "phast/phast.h"
#include "pq/dary_heap.h"
#include "test_support.h"
#include "util/rng.h"

namespace phast {
namespace {

struct ParamCase {
  const char* name;
  CHParams params;
};

std::vector<ParamCase> AllParamCases() {
  std::vector<ParamCase> cases;

  cases.push_back({"paper_default", CHParams{}});

  {
    // Constant priority: vertices contract in input order — the paper's
    // "any order is correct" statement at its most extreme.
    CHParams p;
    p.ed_coefficient = 0;
    p.cn_coefficient = 0;
    p.h_coefficient = 0;
    p.level_coefficient = 0;
    cases.push_back({"constant_priority_input_order", p});
  }
  {
    // Pure edge difference (the classic simple heuristic).
    CHParams p;
    p.cn_coefficient = 0;
    p.h_coefficient = 0;
    p.level_coefficient = 0;
    cases.push_back({"pure_edge_difference", p});
  }
  {
    // Level-dominated: forces flat, breadth-first-ish contraction.
    CHParams p;
    p.level_coefficient = 1000;
    cases.push_back({"level_dominated", p});
  }
  {
    // Crippled witness searches: 1 hop, 2 settled vertices — maximum
    // redundant shortcuts, still correct.
    CHParams p;
    p.hop_limit_low = 1;
    p.hop_limit_mid = 1;
    p.max_witness_settled = 2;
    cases.push_back({"crippled_witness_search", p});
  }
  {
    // Unlimited witness searches from the start.
    CHParams p;
    p.hop_limit_low = 0;
    p.hop_limit_mid = 0;
    p.degree_threshold_low = 0.0;
    p.degree_threshold_mid = 0.0;
    cases.push_back({"unlimited_witness_search", p});
  }
  {
    // Lazy neighbor updates (our preprocessing-speed knob).
    CHParams p;
    p.eager_neighbor_updates = false;
    cases.push_back({"lazy_updates", p});
  }
  {
    // Uncapped H term.
    CHParams p;
    p.h_per_arc_cap = 1000000;
    cases.push_back({"uncapped_hops", p});
  }
  return cases;
}

class ChParams : public ::testing::TestWithParam<ParamCase> {};

TEST_P(ChParams, PhastAndQueriesStayExact) {
  const Graph& g = phast::testing::CachedCountry(9);
  const CHData ch = BuildContractionHierarchy(g, GetParam().params);

  const Phast engine(ch);
  Phast::Workspace ws = engine.MakeWorkspace();
  CHQuery query(ch);
  Rng rng(13);
  for (int i = 0; i < 6; ++i) {
    const VertexId s = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    engine.ComputeTree(s, ws);
    const SsspResult ref = Dijkstra<BinaryHeap>(g, s);
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      ASSERT_EQ(engine.Distance(ws, v), ref.dist[v])
          << GetParam().name << " s=" << s << " v=" << v;
    }
    const VertexId t = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    ASSERT_EQ(query.Distance(s, t), ref.dist[t]) << GetParam().name;
  }
}

TEST_P(ChParams, StructuralInvariantsHold) {
  const Graph& g = phast::testing::CachedCountry(9);
  const CHData ch = BuildContractionHierarchy(g, GetParam().params);
  for (const CHArc& a : ch.up_arcs) {
    ASSERT_LT(ch.rank[a.tail], ch.rank[a.head]) << GetParam().name;
  }
  for (const CHArc& a : ch.down_arcs) {
    ASSERT_GT(ch.rank[a.tail], ch.rank[a.head]) << GetParam().name;
  }
}

INSTANTIATE_TEST_SUITE_P(Params, ChParams,
                         ::testing::ValuesIn(AllParamCases()),
                         [](const auto& param_info) {
                           return std::string(param_info.param.name);
                         });

TEST(ChParamsQuality, BetterWitnessSearchesMeanFewerShortcuts) {
  const Graph& g = phast::testing::CachedCountry(12);
  CHParams crippled;
  crippled.hop_limit_low = 1;
  crippled.hop_limit_mid = 1;
  crippled.max_witness_settled = 2;
  const CHData bad = BuildContractionHierarchy(g, crippled);
  const CHData good = BuildContractionHierarchy(g, CHParams{});
  EXPECT_LT(good.num_shortcuts, bad.num_shortcuts);
}

TEST(ChParamsQuality, DefaultPriorityBeatsInputOrder) {
  // The heuristic order should yield a flatter hierarchy (fewer levels or
  // fewer shortcuts) than contracting in plain input order.
  const Graph& g = phast::testing::CachedCountry(12);
  CHParams constant;
  constant.ed_coefficient = 0;
  constant.cn_coefficient = 0;
  constant.h_coefficient = 0;
  constant.level_coefficient = 0;
  const CHData naive = BuildContractionHierarchy(g, constant);
  const CHData smart = BuildContractionHierarchy(g, CHParams{});
  EXPECT_LT(smart.num_shortcuts, naive.num_shortcuts);
}

}  // namespace
}  // namespace phast

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/validation.h"

namespace phast {
namespace {

TEST(Validation, CleanGeneratedGraph) {
  const GeneratedGraph g = GenerateCountry({.width = 10, .height = 10});
  const GraphDiagnostics d = DiagnoseGraph(g.edges);
  EXPECT_EQ(d.num_vertices, 100u);
  EXPECT_EQ(d.num_arcs, g.edges.NumArcs());
  EXPECT_EQ(d.self_loops, 0u);
  EXPECT_EQ(d.parallel_arcs, 0u);
  EXPECT_EQ(d.zero_weight_arcs, 0u);
  EXPECT_EQ(d.asymmetric_arcs, 0u);  // generator emits symmetric arcs
  EXPECT_TRUE(d.CleanForPipeline());
  EXPECT_NE(d.Summary().find("[clean]"), std::string::npos);
}

TEST(Validation, DetectsSelfLoops) {
  EdgeList edges(3);
  edges.AddArc(1, 1, 5);
  edges.AddArc(0, 2, 3);
  const GraphDiagnostics d = DiagnoseGraph(edges);
  EXPECT_EQ(d.self_loops, 1u);
  EXPECT_FALSE(d.CleanForPipeline());
}

TEST(Validation, DetectsParallelArcs) {
  EdgeList edges(2);
  edges.AddArc(0, 1, 5);
  edges.AddArc(0, 1, 7);
  const GraphDiagnostics d = DiagnoseGraph(edges);
  EXPECT_EQ(d.parallel_arcs, 1u);
  EXPECT_FALSE(d.CleanForPipeline());
}

TEST(Validation, DetectsZeroWeightsAndAsymmetry) {
  EdgeList edges(3);
  edges.AddArc(0, 1, 0);  // zero weight, no reverse
  edges.AddBidirectional(1, 2, 4);
  const GraphDiagnostics d = DiagnoseGraph(edges);
  EXPECT_EQ(d.zero_weight_arcs, 1u);
  EXPECT_EQ(d.asymmetric_arcs, 1u);
  EXPECT_EQ(d.max_weight, 4u);
}

TEST(Validation, CountsIsolatedAndDegrees) {
  EdgeList edges(5);
  edges.AddArc(0, 1, 2);
  edges.AddArc(0, 2, 2);
  edges.AddArc(0, 3, 2);
  const GraphDiagnostics d = DiagnoseGraph(edges);
  EXPECT_EQ(d.max_out_degree, 3u);
  EXPECT_EQ(d.isolated_vertices, 1u);  // vertex 4
}

TEST(Validation, NormalizeProducesCleanGraph) {
  EdgeList edges(3);
  edges.AddArc(0, 0, 1);
  edges.AddArc(0, 1, 5);
  edges.AddArc(0, 1, 3);
  edges.AddArc(1, 0, 3);
  edges.Normalize();
  const GraphDiagnostics d = DiagnoseGraph(edges);
  EXPECT_EQ(d.self_loops, 0u);
  EXPECT_EQ(d.parallel_arcs, 0u);
  EXPECT_TRUE(d.CleanForPipeline());
  EXPECT_EQ(d.asymmetric_arcs, 0u);  // kept 0->1 (3) and 1->0 (3)
}

TEST(Validation, EmptyGraph) {
  const GraphDiagnostics d = DiagnoseGraph(EdgeList{});
  EXPECT_EQ(d.num_vertices, 0u);
  EXPECT_TRUE(d.CleanForPipeline());
}

}  // namespace
}  // namespace phast

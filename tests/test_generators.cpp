#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <utility>

#include "graph/connectivity.h"
#include "graph/csr.h"
#include "graph/generators.h"
#include "util/error.h"

namespace phast {
namespace {

TEST(Deterministic, PathHasChainStructure) {
  const EdgeList edges = GeneratePath(5, 3);
  EXPECT_EQ(edges.NumVertices(), 5u);
  EXPECT_EQ(edges.NumArcs(), 8u);  // 4 undirected edges
  const Graph g = Graph::FromEdgeList(edges);
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(2), 2u);
  EXPECT_EQ(g.Degree(4), 1u);
}

TEST(Deterministic, CycleIsRegular) {
  const Graph g = Graph::FromEdgeList(GenerateCycle(6));
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(g.Degree(v), 2u);
}

TEST(Deterministic, StarShape) {
  const Graph g = Graph::FromEdgeList(GenerateStar(9));
  EXPECT_EQ(g.NumVertices(), 10u);
  EXPECT_EQ(g.Degree(0), 9u);
  for (VertexId v = 1; v < 10; ++v) EXPECT_EQ(g.Degree(v), 1u);
}

TEST(Deterministic, GridCounts) {
  const EdgeList edges = GenerateGrid(4, 3);
  EXPECT_EQ(edges.NumVertices(), 12u);
  // Undirected edges: 3*3 horizontal + 4*2 vertical = 17, doubled.
  EXPECT_EQ(edges.NumArcs(), 34u);
}

TEST(Deterministic, CompleteGraph) {
  const EdgeList edges = GenerateComplete(5, 2);
  EXPECT_EQ(edges.NumArcs(), 20u);
  for (const Edge& e : edges.Edges()) EXPECT_EQ(e.weight, 2u);
}

TEST(Gnm, RespectsBoundsAndNoSelfLoops) {
  const EdgeList edges = GenerateGnm(50, 300, 100, 1);
  EXPECT_EQ(edges.NumVertices(), 50u);
  EXPECT_LE(edges.NumArcs(), 300u);  // Normalize may dedup
  for (const Edge& e : edges.Edges()) {
    EXPECT_NE(e.tail, e.head);
    EXPECT_GE(e.weight, 1u);
    EXPECT_LE(e.weight, 100u);
  }
}

TEST(Gnm, DeterministicBySeed) {
  const EdgeList a = GenerateGnm(30, 100, 50, 7);
  const EdgeList b = GenerateGnm(30, 100, 50, 7);
  EXPECT_EQ(a.Edges(), b.Edges());
  const EdgeList c = GenerateGnm(30, 100, 50, 8);
  EXPECT_NE(a.Edges(), c.Edges());
}

TEST(Country, BasicShape) {
  CountryParams params;
  params.width = 16;
  params.height = 16;
  const GeneratedGraph g = GenerateCountry(params);
  EXPECT_EQ(g.edges.NumVertices(), 256u);
  EXPECT_EQ(g.coords.Size(), 256u);
  EXPECT_GT(g.edges.NumArcs(), 256u);  // local grid alone gives ~2n arcs
}

TEST(Country, SymmetricWeights) {
  CountryParams params;
  params.width = 12;
  params.height = 12;
  const GeneratedGraph g = GenerateCountry(params);
  // Every arc has its reverse with the same weight.
  std::map<std::pair<VertexId, VertexId>, Weight> arcs;
  for (const Edge& e : g.edges.Edges()) arcs[{e.tail, e.head}] = e.weight;
  for (const Edge& e : g.edges.Edges()) {
    const auto it = arcs.find({e.head, e.tail});
    ASSERT_NE(it, arcs.end());
    EXPECT_EQ(it->second, e.weight);
  }
}

TEST(Country, MostlyConnected) {
  CountryParams params;
  params.width = 24;
  params.height = 24;
  const GeneratedGraph g = GenerateCountry(params);
  const SubgraphResult scc = LargestStronglyConnectedComponent(g.edges);
  // Random deletions strand only a small fraction of vertices.
  EXPECT_GT(scc.edges.NumVertices(), g.edges.NumVertices() * 9 / 10);
}

TEST(Country, TimeMetricShortcutsLongRange) {
  // With travel times, crossing the map along highways must be much faster
  // than the distance metric's best (which gains nothing from highways).
  CountryParams params;
  params.width = 32;
  params.height = 32;
  params.deletion_prob = 0.0;
  params.metric = Metric::kTravelTime;
  const GeneratedGraph time_graph = GenerateCountry(params);
  params.metric = Metric::kTravelDistance;
  const GeneratedGraph dist_graph = GenerateCountry(params);
  // Same topology, different weights.
  EXPECT_EQ(time_graph.edges.NumArcs(), dist_graph.edges.NumArcs());
  uint64_t time_total = 0, dist_total = 0;
  for (const Edge& e : time_graph.edges.Edges()) time_total += e.weight;
  for (const Edge& e : dist_graph.edges.Edges()) dist_total += e.weight;
  EXPECT_LT(time_total, dist_total);  // highways shrink travel times
}

TEST(Country, DeterministicBySeed) {
  CountryParams params;
  params.width = 10;
  params.height = 10;
  params.seed = 3;
  const GeneratedGraph a = GenerateCountry(params);
  const GeneratedGraph b = GenerateCountry(params);
  EXPECT_EQ(a.edges.Edges(), b.edges.Edges());
}

TEST(Country, RejectsDegenerateParams) {
  CountryParams params;
  params.width = 1;
  EXPECT_THROW(GenerateCountry(params), InputError);
  params.width = 8;
  params.highway_stride = 1;
  EXPECT_THROW(GenerateCountry(params), InputError);
}

TEST(RandomGeometric, ArcsRespectRadius) {
  const GeneratedGraph g = GenerateRandomGeometric(200, 0.15, 5);
  EXPECT_EQ(g.edges.NumVertices(), 200u);
  for (const Edge& e : g.edges.Edges()) {
    const double dx = static_cast<double>(g.coords.x[e.tail] -
                                          g.coords.x[e.head]) / 1e6;
    const double dy = static_cast<double>(g.coords.y[e.tail] -
                                          g.coords.y[e.head]) / 1e6;
    EXPECT_LE(std::sqrt(dx * dx + dy * dy), 0.15 + 1e-6);
  }
}

TEST(RandomGeometric, SymmetricArcs) {
  const GeneratedGraph g = GenerateRandomGeometric(100, 0.2, 9);
  std::set<std::pair<VertexId, VertexId>> arcs;
  for (const Edge& e : g.edges.Edges()) arcs.insert({e.tail, e.head});
  for (const Edge& e : g.edges.Edges()) {
    EXPECT_TRUE(arcs.count({e.head, e.tail}));
  }
}

}  // namespace
}  // namespace phast

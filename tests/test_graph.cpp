#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "graph/csr.h"
#include "graph/dimacs.h"
#include "graph/edge_list.h"
#include "graph/generators.h"
#include "util/error.h"

namespace phast {
namespace {

// --------------------------- EdgeList --------------------------------------

TEST(EdgeList, AddArcGrowsVertexCount) {
  EdgeList edges;
  edges.AddArc(3, 7, 10);
  EXPECT_EQ(edges.NumVertices(), 8u);
  EXPECT_EQ(edges.NumArcs(), 1u);
}

TEST(EdgeList, BidirectionalAddsBoth) {
  EdgeList edges;
  edges.AddBidirectional(0, 1, 5);
  ASSERT_EQ(edges.NumArcs(), 2u);
  EXPECT_EQ(edges.Edges()[0], (Edge{0, 1, 5}));
  EXPECT_EQ(edges.Edges()[1], (Edge{1, 0, 5}));
}

TEST(EdgeList, NormalizeRemovesSelfLoops) {
  EdgeList edges(3);
  edges.AddArc(1, 1, 4);
  edges.AddArc(0, 1, 2);
  edges.Normalize();
  ASSERT_EQ(edges.NumArcs(), 1u);
  EXPECT_EQ(edges.Edges()[0], (Edge{0, 1, 2}));
}

TEST(EdgeList, NormalizeKeepsCheapestParallelArc) {
  EdgeList edges(2);
  edges.AddArc(0, 1, 9);
  edges.AddArc(0, 1, 3);
  edges.AddArc(0, 1, 6);
  edges.Normalize();
  ASSERT_EQ(edges.NumArcs(), 1u);
  EXPECT_EQ(edges.Edges()[0].weight, 3u);
}

TEST(EdgeList, NormalizeSortsByTailThenHead) {
  EdgeList edges(3);
  edges.AddArc(2, 0, 1);
  edges.AddArc(0, 2, 1);
  edges.AddArc(0, 1, 1);
  edges.Normalize();
  ASSERT_EQ(edges.NumArcs(), 3u);
  EXPECT_EQ(edges.Edges()[0].head, 1u);
  EXPECT_EQ(edges.Edges()[1].head, 2u);
  EXPECT_EQ(edges.Edges()[2].tail, 2u);
}

TEST(EdgeList, EnsureVerticesNeverShrinks) {
  EdgeList edges(10);
  edges.EnsureVertices(5);
  EXPECT_EQ(edges.NumVertices(), 10u);
  edges.EnsureVertices(20);
  EXPECT_EQ(edges.NumVertices(), 20u);
}

// --------------------------- Graph (CSR) -----------------------------------

EdgeList Triangle() {
  EdgeList edges(3);
  edges.AddArc(0, 1, 1);
  edges.AddArc(1, 2, 2);
  edges.AddArc(2, 0, 3);
  return edges;
}

TEST(Graph, ForwardAdjacency) {
  const Graph g = Graph::FromEdgeList(Triangle());
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumArcs(), 3u);
  ASSERT_EQ(g.ArcsOf(0).size(), 1u);
  EXPECT_EQ(g.ArcsOf(0)[0], (Arc{1, 1}));
  EXPECT_EQ(g.ArcsOf(1)[0], (Arc{2, 2}));
  EXPECT_EQ(g.ArcsOf(2)[0], (Arc{0, 3}));
}

TEST(Graph, ReverseAdjacency) {
  const Graph g = Graph::ReverseFromEdgeList(Triangle());
  // Arcs of v are incoming arcs; other = tail.
  ASSERT_EQ(g.ArcsOf(1).size(), 1u);
  EXPECT_EQ(g.ArcsOf(1)[0], (Arc{0, 1}));
  EXPECT_EQ(g.ArcsOf(2)[0], (Arc{1, 2}));
  EXPECT_EQ(g.ArcsOf(0)[0], (Arc{2, 3}));
}

TEST(Graph, ReversedTwiceIsIdentity) {
  const Graph g = Graph::FromEdgeList(Triangle());
  EXPECT_EQ(g.Reversed().Reversed(), g);
}

TEST(Graph, ArcsSortedWithinVertex) {
  EdgeList edges(4);
  edges.AddArc(0, 3, 1);
  edges.AddArc(0, 1, 1);
  edges.AddArc(0, 2, 1);
  const Graph g = Graph::FromEdgeList(edges);
  const auto arcs = g.ArcsOf(0);
  ASSERT_EQ(arcs.size(), 3u);
  EXPECT_EQ(arcs[0].other, 1u);
  EXPECT_EQ(arcs[1].other, 2u);
  EXPECT_EQ(arcs[2].other, 3u);
}

TEST(Graph, IsolatedVerticesHaveNoArcs) {
  EdgeList edges(5);
  edges.AddArc(0, 4, 1);
  const Graph g = Graph::FromEdgeList(edges);
  EXPECT_EQ(g.Degree(1), 0u);
  EXPECT_EQ(g.Degree(2), 0u);
  EXPECT_TRUE(g.ArcsOf(3).empty());
}

TEST(Graph, EmptyGraph) {
  const Graph g = Graph::FromEdgeList(EdgeList{});
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumArcs(), 0u);
}

TEST(Graph, SentinelFirstArray) {
  const Graph g = Graph::FromEdgeList(Triangle());
  EXPECT_EQ(g.FirstArray().size(), 4u);
  EXPECT_EQ(g.FirstArray().back(), 3u);
}

TEST(Graph, RoundTripThroughEdgeList) {
  const Graph g = Graph::FromEdgeList(Triangle());
  const Graph g2 = Graph::FromEdgeList(g.ToEdgeList());
  EXPECT_EQ(g, g2);
}

TEST(Graph, RandomGraphCsrProperties) {
  // CSR invariants on random inputs: first[] is monotone with sentinel m;
  // degrees sum to m; forward and reverse hold the same arc multiset.
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const EdgeList edges = GenerateGnm(60, 240, 50, seed);
    const Graph fw = Graph::FromEdgeList(edges);
    const Graph bw = Graph::ReverseFromEdgeList(edges);
    ASSERT_EQ(fw.NumArcs(), edges.NumArcs());
    ASSERT_EQ(bw.NumArcs(), edges.NumArcs());
    size_t degree_sum = 0;
    for (VertexId v = 0; v < fw.NumVertices(); ++v) {
      ASSERT_LE(fw.FirstArray()[v], fw.FirstArray()[v + 1]);
      degree_sum += fw.Degree(v);
    }
    ASSERT_EQ(degree_sum, fw.NumArcs());
    // Multiset equality via sorted (tail, head, weight) triples.
    std::vector<Edge> from_fw, from_bw;
    for (VertexId v = 0; v < fw.NumVertices(); ++v) {
      for (const Arc& a : fw.ArcsOf(v)) from_fw.push_back({v, a.other, a.weight});
      for (const Arc& a : bw.ArcsOf(v)) from_bw.push_back({a.other, v, a.weight});
    }
    const auto by_all = [](const Edge& a, const Edge& b) {
      if (a.tail != b.tail) return a.tail < b.tail;
      if (a.head != b.head) return a.head < b.head;
      return a.weight < b.weight;
    };
    std::sort(from_fw.begin(), from_fw.end(), by_all);
    std::sort(from_bw.begin(), from_bw.end(), by_all);
    ASSERT_EQ(from_fw, from_bw);
  }
}

TEST(Graph, ReversedOfReversedOnRandomGraphs) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const EdgeList edges = GenerateGnm(40, 160, 30, seed);
    const Graph g = Graph::FromEdgeList(edges);
    EXPECT_EQ(g.Reversed().Reversed(), g);
    // ReverseFromEdgeList must equal FromEdgeList + Reversed.
    EXPECT_EQ(Graph::ReverseFromEdgeList(edges), g.Reversed());
  }
}

// --------------------------- DIMACS I/O -------------------------------------

TEST(Dimacs, RoundTrip) {
  EdgeList edges(4);
  edges.AddArc(0, 1, 10);
  edges.AddArc(1, 2, 20);
  edges.AddArc(3, 0, 30);
  std::stringstream buffer;
  WriteDimacsGraph(edges, buffer);
  const EdgeList read = ReadDimacsGraph(buffer);
  EXPECT_EQ(read.NumVertices(), 4u);
  ASSERT_EQ(read.NumArcs(), 3u);
  EXPECT_EQ(read.Edges()[0], (Edge{0, 1, 10}));
  EXPECT_EQ(read.Edges()[2], (Edge{3, 0, 30}));
}

TEST(Dimacs, ParsesCommentsAndBlankLines) {
  std::stringstream in(
      "c a comment\n\np sp 2 1\nc mid comment\na 1 2 5\n");
  const EdgeList g = ReadDimacsGraph(in);
  EXPECT_EQ(g.NumVertices(), 2u);
  ASSERT_EQ(g.NumArcs(), 1u);
  EXPECT_EQ(g.Edges()[0], (Edge{0, 1, 5}));
}

TEST(Dimacs, RejectsMissingProblemLine) {
  std::stringstream in("a 1 2 5\n");
  EXPECT_THROW(ReadDimacsGraph(in), InputError);
}

TEST(Dimacs, RejectsArcCountMismatch) {
  std::stringstream in("p sp 2 2\na 1 2 5\n");
  EXPECT_THROW(ReadDimacsGraph(in), InputError);
}

TEST(Dimacs, RejectsOutOfRangeVertex) {
  std::stringstream in("p sp 2 1\na 1 3 5\n");
  EXPECT_THROW(ReadDimacsGraph(in), InputError);
}

TEST(Dimacs, RejectsNegativeWeight) {
  std::stringstream in("p sp 2 1\na 1 2 -5\n");
  EXPECT_THROW(ReadDimacsGraph(in), InputError);
}

TEST(Dimacs, RejectsOversizedWeight) {
  // Regression: 2^32 used to be silently truncated to 0 by the
  // static_cast<Weight>, turning an absurd weight into a zero-length arc.
  std::stringstream in("p sp 2 1\na 1 2 4294967296\n");
  try {
    ReadDimacsGraph(in);
    FAIL() << "weight 2^32 must be rejected";
  } catch (const InputError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("4294967296"), std::string::npos) << what;
  }
}

TEST(Dimacs, AcceptsMaximumRepresentableWeight) {
  std::stringstream in("p sp 2 1\na 1 2 4294967295\n");
  const EdgeList g = ReadDimacsGraph(in);
  ASSERT_EQ(g.NumArcs(), 1u);
  EXPECT_EQ(g.Edges()[0].weight, kInfWeight);
}

TEST(Dimacs, RejectsCoordinateHeaderWithWrongSpToken) {
  // Regression: the header check validated "aux" and "co" but skipped the
  // middle "sp" token, so "p aux XX co 2" parsed as a valid header.
  std::stringstream in("p aux XX co 2\nv 1 5 6\n");
  EXPECT_THROW(ReadDimacsCoordinates(in), InputError);
}

TEST(Dimacs, RejectsCoordinateLineBeforeHeader) {
  std::stringstream in("v 1 5 6\np aux sp co 2\n");
  try {
    ReadDimacsCoordinates(in);
    FAIL() << "'v' line before the header must be rejected";
  } catch (const InputError& e) {
    EXPECT_NE(std::string(e.what()).find("before"), std::string::npos)
        << e.what();
  }
}

TEST(Dimacs, RejectsDuplicateCoordinateHeader) {
  std::stringstream in("p aux sp co 1\np aux sp co 1\nv 1 5 6\n");
  EXPECT_THROW(ReadDimacsCoordinates(in), InputError);
}

TEST(Dimacs, CoordinatesRoundTrip) {
  Coordinates coords;
  coords.x = {10, -20, 30};
  coords.y = {1, 2, -3};
  std::stringstream buffer;
  WriteDimacsCoordinates(coords, buffer);
  const Coordinates read = ReadDimacsCoordinates(buffer);
  ASSERT_EQ(read.Size(), 3u);
  EXPECT_EQ(read.x[1], -20);
  EXPECT_EQ(read.y[2], -3);
}

}  // namespace
}  // namespace phast

// Serving-subsystem tests: the batching scheduler against the Dijkstra
// oracle under concurrent clients, backpressure and shutdown shedding, the
// LRU tree cache, the metrics registry, the bounded queue, and the wire
// protocol over a socketpair.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "dijkstra/dijkstra.h"
#include "phast/phast.h"
#include "pq/dary_heap.h"
#include "server/metrics.h"
#include "server/protocol.h"
#include "server/queue.h"
#include "server/service.h"
#include "test_support.h"
#include "util/error.h"
#include "util/rng.h"

namespace phast::server {
namespace {

using phast::testing::CachedCountry;
using phast::testing::CachedCountryCH;

constexpr uint32_t kSide = 20;

const Phast& Engine() {
  static const Phast engine(CachedCountryCH(kSide));
  return engine;
}

void ExpectMatchesDijkstra(const Request& request, const Response& response) {
  ASSERT_EQ(response.status, ResponseStatus::kOk);
  const SsspResult ref =
      Dijkstra<BinaryHeap>(CachedCountry(kSide), request.source);
  if (request.targets.empty()) {
    ASSERT_EQ(response.distances.size(), ref.dist.size());
    for (size_t v = 0; v < ref.dist.size(); ++v) {
      ASSERT_EQ(response.distances[v], ref.dist[v])
          << "source " << request.source << " vertex " << v;
    }
  } else {
    ASSERT_EQ(response.distances.size(), request.targets.size());
    for (size_t i = 0; i < request.targets.size(); ++i) {
      ASSERT_EQ(response.distances[i], ref.dist[request.targets[i]])
          << "source " << request.source << " target " << request.targets[i];
    }
  }
}

Request RandomRequest(Rng& rng, double full_tree_prob = 0.3) {
  const VertexId n = Engine().NumVertices();
  Request request;
  request.source = static_cast<VertexId>(rng.NextBounded(n));
  if (!rng.NextBool(full_tree_prob)) {
    const int64_t count = rng.NextInRange(1, 8);
    for (int64_t i = 0; i < count; ++i) {
      request.targets.push_back(static_cast<VertexId>(rng.NextBounded(n)));
    }
  }
  return request;
}

// --- scheduler vs oracle under concurrency ---------------------------------

TEST(OracleService, ConcurrentClientsMatchDijkstra) {
  MetricsRegistry metrics;
  ServiceOptions options;
  options.num_workers = 3;
  options.max_batch = 8;
  options.cache_capacity = 4;
  OracleService service(Engine(), options, metrics);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&service, &failures, t] {
      Rng rng(100 + static_cast<uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        const Request request = RandomRequest(rng);
        const Response response = service.Call(request);
        if (response.status != ResponseStatus::kOk) {
          ++failures;
          continue;
        }
        ExpectMatchesDijkstra(request, response);
        if (::testing::Test::HasFatalFailure()) {
          ++failures;
          return;
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);

  const ServiceCounters c = service.Counters();
  EXPECT_EQ(c.admitted, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(c.admitted, c.completed + c.Shed());
}

TEST(OracleService, PipelinedClientsCoalesceIntoWideBatches) {
  MetricsRegistry metrics;
  ServiceOptions options;
  options.num_workers = 1;  // one worker => everything queued coalesces
  options.max_batch = 16;
  options.cache_capacity = 0;
  OracleService service(Engine(), options, metrics);

  Rng rng(42);
  std::vector<Request> requests;
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 64; ++i) {
    requests.push_back(RandomRequest(rng, /*full_tree_prob=*/0.0));
    futures.push_back(service.Submit(requests.back()));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    const Response response = futures[i].get();
    ExpectMatchesDijkstra(requests[i], response);
  }
  const ServiceCounters c = service.Counters();
  EXPECT_EQ(c.admitted, 64u);
  EXPECT_EQ(c.completed, 64u);
  // 64 pipelined requests on one worker must need far fewer sweeps.
  EXPECT_LT(c.batches, 64u);
}

TEST(OracleService, RestrictedBatchesMatchFullResults) {
  MetricsRegistry metrics;
  ServiceOptions options;
  options.num_workers = 1;
  options.cache_capacity = 0;
  options.rphast_max_targets = 64;  // every small target batch restricts
  OracleService service(Engine(), options, metrics);

  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    const Request request = RandomRequest(rng, /*full_tree_prob=*/0.0);
    const Response response = service.Call(request);
    ExpectMatchesDijkstra(request, response);
  }
  EXPECT_GE(service.Counters().rphast_batches, 1u);
}

// --- cache ------------------------------------------------------------------

TEST(OracleService, RepeatedSourceServedFromCache) {
  MetricsRegistry metrics;
  ServiceOptions options;
  options.num_workers = 1;
  options.cache_capacity = 2;
  OracleService service(Engine(), options, metrics);

  Request request;
  request.source = 5;
  const Response first = service.Call(request);
  EXPECT_FALSE(first.from_cache);
  const Response second = service.Call(request);
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(first.distances, second.distances);
  ExpectMatchesDijkstra(request, second);

  const ServiceCounters c = service.Counters();
  EXPECT_GE(c.cache_hits, 1u);
  EXPECT_GE(c.cache_misses, 1u);
}

TEST(OracleService, CacheEvictsLeastRecentlyUsed) {
  MetricsRegistry metrics;
  ServiceOptions options;
  options.num_workers = 1;
  options.cache_capacity = 1;
  OracleService service(Engine(), options, metrics);

  Request a, b;
  a.source = 1;
  b.source = 2;
  (void)service.Call(a);                         // cache: {1}
  (void)service.Call(b);                         // evicts 1, cache: {2}
  const Response again = service.Call(a);        // miss again
  EXPECT_FALSE(again.from_cache);
  const ServiceCounters c = service.Counters();
  EXPECT_GE(c.cache_evictions, 1u);
}

// --- backpressure, deadlines, shutdown --------------------------------------

TEST(OracleService, QueueFullShedsInsteadOfBlocking) {
  MetricsRegistry metrics;
  ServiceOptions options;
  options.num_workers = 0;  // nothing drains the queue
  options.queue_capacity = 2;
  OracleService service(Engine(), options, metrics);

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 5; ++i) {
    Request request;
    request.source = static_cast<VertexId>(i);
    futures.push_back(service.Submit(request));
  }
  // The three rejects resolve immediately, without Stop.
  int shed_queue_full = 0;
  for (auto& f : futures) {
    if (f.wait_for(std::chrono::seconds(0)) == std::future_status::ready &&
        f.get().status == ResponseStatus::kShedQueueFull) {
      ++shed_queue_full;
    }
  }
  EXPECT_EQ(shed_queue_full, 3);

  service.Stop();  // the two queued requests are shed, not lost
  const ServiceCounters c = service.Counters();
  EXPECT_EQ(c.admitted, 5u);
  EXPECT_EQ(c.shed_queue_full, 3u);
  EXPECT_EQ(c.shed_shutdown, 2u);
  EXPECT_EQ(c.admitted, c.completed + c.Shed());
}

TEST(OracleService, StopShedsQueuedRequestsAndNeverDeadlocks) {
  MetricsRegistry metrics;
  ServiceOptions options;
  options.num_workers = 0;
  options.queue_capacity = 16;
  OracleService service(Engine(), options, metrics);

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(service.Submit(Request{}));
  }
  service.Stop();
  for (auto& f : futures) {
    EXPECT_EQ(f.get().status, ResponseStatus::kShedShutdown);
  }
  const ServiceCounters c = service.Counters();
  EXPECT_EQ(c.admitted, 10u);
  EXPECT_EQ(c.shed_shutdown, 10u);
  EXPECT_EQ(c.admitted, c.completed + c.Shed());

  // Submitting after Stop sheds immediately instead of hanging.
  EXPECT_EQ(service.Call(Request{}).status, ResponseStatus::kShedShutdown);
}

TEST(OracleService, ExpiredDeadlineIsShedAtProcessingTime) {
  MetricsRegistry metrics;
  ServiceOptions options;
  options.num_workers = 1;
  OracleService service(Engine(), options, metrics);

  // A deadline of 1 nanosecond has always expired by the time the worker
  // pops the job, regardless of scheduling.
  Request request;
  request.deadline_ms = 1e-6;
  const Response response = service.Call(request);
  EXPECT_EQ(response.status, ResponseStatus::kShedDeadline);
  EXPECT_TRUE(response.distances.empty());

  const ServiceCounters c = service.Counters();
  EXPECT_EQ(c.shed_deadline, 1u);
  EXPECT_EQ(c.admitted, c.completed + c.Shed());
}

TEST(OracleService, InvalidRequestsAreAnsweredAndCounted) {
  MetricsRegistry metrics;
  OracleService service(Engine(), ServiceOptions{}, metrics);

  Request bad_source;
  bad_source.source = Engine().NumVertices();  // one past the end
  EXPECT_EQ(service.Call(bad_source).status, ResponseStatus::kInvalidRequest);

  Request bad_target;
  bad_target.targets = {Engine().NumVertices() + 5};
  EXPECT_EQ(service.Call(bad_target).status, ResponseStatus::kInvalidRequest);

  const ServiceCounters c = service.Counters();
  EXPECT_EQ(c.admitted, 2u);
  EXPECT_EQ(c.completed, 2u);  // answered, not shed
  EXPECT_EQ(c.Shed(), 0u);
}

// --- bounded queue ----------------------------------------------------------

TEST(BoundedQueue, TryPushRejectsWhenFull) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));
  EXPECT_EQ(queue.Size(), 2u);
}

TEST(BoundedQueue, PopBatchCoalescesEverythingQueued) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.TryPush(std::move(i)));
  const std::vector<int> batch = queue.PopBatch(4);
  EXPECT_EQ(batch, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(queue.Size(), 1u);
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  BoundedQueue<int> queue(2);
  std::thread consumer([&queue] {
    EXPECT_EQ(queue.Pop(), std::nullopt);  // blocks until Close
  });
  queue.Close();
  consumer.join();
  EXPECT_FALSE(queue.TryPush(1));
}

TEST(BoundedQueue, DrainReturnsUnconsumedTailAfterClose) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.TryPush(7));
  EXPECT_TRUE(queue.TryPush(8));
  queue.Close();
  EXPECT_EQ(queue.Drain(), (std::vector<int>{7, 8}));
  EXPECT_EQ(queue.Size(), 0u);
}

TEST(BoundedQueue, BlockingPushWaitsForSpace) {
  BoundedQueue<int> queue(1);
  EXPECT_TRUE(queue.TryPush(1));
  std::thread producer([&queue] {
    EXPECT_TRUE(queue.Push(2));  // blocks until the consumer pops
  });
  EXPECT_EQ(queue.Pop(), std::optional<int>(1));
  producer.join();
  EXPECT_EQ(queue.Pop(), std::optional<int>(2));
}

// --- metrics ----------------------------------------------------------------

TEST(Metrics, HistogramQuantilesAndCounts) {
  Histogram h({1.0, 10.0, 100.0});
  for (int i = 0; i < 90; ++i) h.Observe(0.5);
  for (int i = 0; i < 10; ++i) h.Observe(50.0);
  EXPECT_EQ(h.Count(), 100u);
  EXPECT_NEAR(h.Sum(), 90 * 0.5 + 10 * 50.0, 1e-6);
  EXPECT_LE(h.Quantile(0.5), 1.0);
  EXPECT_GT(h.Quantile(0.95), 10.0);
}

TEST(Metrics, HistogramRejectsUnsortedBounds) {
  EXPECT_THROW((void)Histogram({5.0, 1.0}), InputError);
  EXPECT_THROW((void)Histogram({1.0, 1.0}), InputError);
}

TEST(Metrics, EmptyHistogramQuantileIsZero) {
  const Histogram h({1.0, 10.0});
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Quantile(0.0), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.Quantile(1.0), 0.0);
}

TEST(Metrics, AllOverflowSamplesReportLargestBound) {
  // Every sample beyond the last finite bound: the histogram cannot resolve
  // past it, so all quantiles saturate at bounds.back() rather than NaN or
  // a divide-by-zero artifact.
  Histogram h({1.0, 10.0});
  for (int i = 0; i < 5; ++i) h.Observe(1e6);
  EXPECT_EQ(h.Quantile(0.01), 10.0);
  EXPECT_EQ(h.Quantile(0.5), 10.0);
  EXPECT_EQ(h.Quantile(0.99), 10.0);
  EXPECT_EQ(h.BucketCount(2), 5u);  // all in +Inf
}

TEST(Metrics, SingleBucketHistogramInterpolates) {
  Histogram h({10.0});
  for (int i = 0; i < 10; ++i) h.Observe(3.0);
  // All mass in [0, 10]: the median interpolates to the middle of the
  // bucket, and extreme quantiles stay within it.
  EXPECT_NEAR(h.Quantile(0.5), 5.0, 1e-9);
  EXPECT_GE(h.Quantile(0.0), 0.0);
  EXPECT_LE(h.Quantile(1.0), 10.0);
}

TEST(Metrics, NonFiniteObservationsLandInOverflowBucket) {
  Histogram h({1.0, 10.0});
  h.Observe(std::numeric_limits<double>::quiet_NaN());
  h.Observe(std::numeric_limits<double>::infinity());
  h.Observe(-std::numeric_limits<double>::infinity());
  h.Observe(2.0);  // one honest sample
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_EQ(h.BucketCount(2), 3u);  // the three non-finite ones
  // The sum must stay finite: llround on a non-finite double is UB and a
  // NaN sum would poison the exposition forever.
  EXPECT_TRUE(std::isfinite(h.Sum()));
  EXPECT_NEAR(h.Sum(), 2.0, 1e-6);
}

TEST(Metrics, HugeFiniteObservationDoesNotOverflowSum) {
  Histogram h({1.0});
  h.Observe(1e300);  // would overflow int64 microunits without the clamp
  EXPECT_TRUE(std::isfinite(h.Sum()));
  EXPECT_EQ(h.BucketCount(1), 1u);
}

TEST(Metrics, RegistryRendersPrometheusExposition) {
  MetricsRegistry registry;
  registry.GetCounter("requests_total", "All requests").Inc();
  registry.GetGauge("depth", "Queue depth").Set(3);
  registry.GetHistogram("latency", "Latency", {1.0, 10.0}).Observe(2.5);

  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("requests_total 1"), std::string::npos);
  EXPECT_NE(text.find("depth 3"), std::string::npos);
  EXPECT_NE(text.find("latency_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("latency_count 1"), std::string::npos);
}

TEST(Metrics, RegistryRejectsKindConflicts) {
  MetricsRegistry registry;
  (void)registry.GetCounter("x", "a counter");
  EXPECT_THROW((void)registry.GetGauge("x", "now a gauge?"), InputError);
}

TEST(Metrics, SameNameReturnsSameInstance) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("hits", "h");
  Counter& b = registry.GetCounter("hits", "h");
  a.Inc();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.Value(), 1u);
}

// --- wire protocol over a socketpair ----------------------------------------

TEST(Protocol, QueryFrameRoundTrip) {
  Request request;
  request.source = 17;
  request.targets = {3, 1, 4};
  request.deadline_ms = 2.5;
  const QueryFrame decoded = DecodeQuery(EncodeQuery(9, request));
  EXPECT_EQ(decoded.id, 9u);
  EXPECT_EQ(decoded.request.source, 17u);
  EXPECT_EQ(decoded.request.targets, request.targets);
  EXPECT_DOUBLE_EQ(decoded.request.deadline_ms, 2.5);
}

TEST(Protocol, ResponseFrameRoundTrip) {
  Response response;
  response.status = ResponseStatus::kOk;
  response.from_cache = true;
  response.latency_ms = 1.25;
  response.distances = {0, 7, kInfWeight};
  const ResponseFrame decoded = DecodeResponse(EncodeResponse(3, response));
  EXPECT_EQ(decoded.id, 3u);
  EXPECT_EQ(decoded.response.status, ResponseStatus::kOk);
  EXPECT_TRUE(decoded.response.from_cache);
  EXPECT_EQ(decoded.response.distances, response.distances);
}

TEST(Protocol, TruncatedPayloadIsRejected) {
  std::vector<uint8_t> bytes = EncodeQuery(1, Request{});
  bytes.pop_back();
  EXPECT_THROW((void)DecodeQuery(bytes), InputError);
  EXPECT_THROW((void)PeekType({}), InputError);
}

TEST(Protocol, ServeConnectionAnswersQueriesMetricsAndShutdown) {
  MetricsRegistry metrics;
  ServiceOptions options;
  options.num_workers = 2;
  OracleService service(Engine(), options, metrics);

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::thread server([&service, &metrics, server_fd = fds[1]] {
    const bool got_shutdown =
        ServeConnection(server_fd, server_fd, service, metrics);
    EXPECT_TRUE(got_shutdown);
    ::close(server_fd);
  });

  {
    Client client(fds[0]);  // owns and closes fds[0]
    Rng rng(11);
    for (int i = 0; i < 10; ++i) {
      const Request request = RandomRequest(rng);
      const Response response = client.Call(request);
      ExpectMatchesDijkstra(request, response);
    }
    const std::string text = client.FetchMetrics();
    EXPECT_NE(text.find("phast_server_requests_admitted_total 10"),
              std::string::npos);
    client.Shutdown();
  }
  server.join();

  const ServiceCounters c = service.Counters();
  EXPECT_EQ(c.admitted, 10u);
  EXPECT_EQ(c.admitted, c.completed + c.Shed());
}

TEST(Protocol, PipelinedQueriesComeBackInOrder) {
  MetricsRegistry metrics;
  OracleService service(Engine(), ServiceOptions{}, metrics);

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::thread server([&service, &metrics, server_fd = fds[1]] {
    (void)ServeConnection(server_fd, server_fd, service, metrics);
    ::close(server_fd);
  });

  {
    Client client(fds[0]);
    std::vector<uint64_t> sent_ids;
    std::vector<Request> requests;
    Rng rng(13);
    for (int i = 0; i < 16; ++i) {
      requests.push_back(RandomRequest(rng, /*full_tree_prob=*/0.0));
      sent_ids.push_back(client.SendQuery(requests.back()));
    }
    for (size_t i = 0; i < sent_ids.size(); ++i) {
      const ResponseFrame frame = client.ReceiveResponse();
      EXPECT_EQ(frame.id, sent_ids[i]);  // responses in request order
      ExpectMatchesDijkstra(requests[i], frame.response);
    }
    client.Shutdown();
  }
  server.join();
}

}  // namespace
}  // namespace phast::server

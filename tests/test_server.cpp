// Serving-subsystem tests: the batching scheduler against the Dijkstra
// oracle under concurrent clients, backpressure and shutdown shedding, the
// LRU tree cache, the metrics registry, the bounded queue, and the wire
// protocol over a socketpair.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "apps/poi.h"

#include "dijkstra/dijkstra.h"
#include "graph/generators.h"
#include "phast/phast.h"
#include "phast/prepare.h"
#include "pq/dary_heap.h"
#include "server/metrics.h"
#include "server/protocol.h"
#include "server/queue.h"
#include "server/service.h"
#include "server/snapshot.h"
#include "server/snapshot_manager.h"
#include "test_support.h"
#include "util/error.h"
#include "util/rng.h"

namespace phast::server {
namespace {

using phast::testing::CachedCountry;
using phast::testing::CachedCountryCH;

constexpr uint32_t kSide = 20;

const Phast& Engine() {
  static const Phast engine(CachedCountryCH(kSide));
  return engine;
}

void ExpectMatchesDijkstra(const Request& request, const Response& response) {
  ASSERT_EQ(response.status, ResponseStatus::kOk);
  const SsspResult ref =
      Dijkstra<BinaryHeap>(CachedCountry(kSide), request.source);
  if (request.targets.empty()) {
    ASSERT_EQ(response.distances.size(), ref.dist.size());
    for (size_t v = 0; v < ref.dist.size(); ++v) {
      ASSERT_EQ(response.distances[v], ref.dist[v])
          << "source " << request.source << " vertex " << v;
    }
  } else {
    ASSERT_EQ(response.distances.size(), request.targets.size());
    for (size_t i = 0; i < request.targets.size(); ++i) {
      ASSERT_EQ(response.distances[i], ref.dist[request.targets[i]])
          << "source " << request.source << " target " << request.targets[i];
    }
  }
}

Request RandomRequest(Rng& rng, double full_tree_prob = 0.3) {
  const VertexId n = Engine().NumVertices();
  Request request;
  request.source = static_cast<VertexId>(rng.NextBounded(n));
  if (!rng.NextBool(full_tree_prob)) {
    const int64_t count = rng.NextInRange(1, 8);
    for (int64_t i = 0; i < count; ++i) {
      request.targets.push_back(static_cast<VertexId>(rng.NextBounded(n)));
    }
  }
  return request;
}

// --- scheduler vs oracle under concurrency ---------------------------------

TEST(OracleService, ConcurrentClientsMatchDijkstra) {
  MetricsRegistry metrics;
  ServiceOptions options;
  options.num_workers = 3;
  options.max_batch = 8;
  options.cache_capacity = 4;
  OracleService service(Engine(), options, metrics);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&service, &failures, t] {
      Rng rng(100 + static_cast<uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        const Request request = RandomRequest(rng);
        const Response response = service.Call(request);
        if (response.status != ResponseStatus::kOk) {
          ++failures;
          continue;
        }
        ExpectMatchesDijkstra(request, response);
        if (::testing::Test::HasFatalFailure()) {
          ++failures;
          return;
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);

  const ServiceCounters c = service.Counters();
  EXPECT_EQ(c.admitted, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(c.admitted, c.completed + c.Shed());
}

TEST(OracleService, PipelinedClientsCoalesceIntoWideBatches) {
  MetricsRegistry metrics;
  ServiceOptions options;
  options.num_workers = 1;  // one worker => everything queued coalesces
  options.max_batch = 16;
  options.cache_capacity = 0;
  OracleService service(Engine(), options, metrics);

  Rng rng(42);
  std::vector<Request> requests;
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 64; ++i) {
    requests.push_back(RandomRequest(rng, /*full_tree_prob=*/0.0));
    futures.push_back(service.Submit(requests.back()));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    const Response response = futures[i].get();
    ExpectMatchesDijkstra(requests[i], response);
  }
  const ServiceCounters c = service.Counters();
  EXPECT_EQ(c.admitted, 64u);
  EXPECT_EQ(c.completed, 64u);
  // 64 pipelined requests on one worker must need far fewer sweeps.
  EXPECT_LT(c.batches, 64u);
}

TEST(OracleService, RestrictedBatchesMatchFullResults) {
  MetricsRegistry metrics;
  ServiceOptions options;
  options.num_workers = 1;
  options.cache_capacity = 0;
  options.rphast_max_targets = 64;  // every small target batch restricts
  OracleService service(Engine(), options, metrics);

  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    const Request request = RandomRequest(rng, /*full_tree_prob=*/0.0);
    const Response response = service.Call(request);
    ExpectMatchesDijkstra(request, response);
  }
  EXPECT_GE(service.Counters().rphast_batches, 1u);
}

// --- cache ------------------------------------------------------------------

TEST(OracleService, RepeatedSourceServedFromCache) {
  MetricsRegistry metrics;
  ServiceOptions options;
  options.num_workers = 1;
  options.cache_capacity = 2;
  OracleService service(Engine(), options, metrics);

  Request request;
  request.source = 5;
  const Response first = service.Call(request);
  EXPECT_FALSE(first.from_cache);
  const Response second = service.Call(request);
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(first.distances, second.distances);
  ExpectMatchesDijkstra(request, second);

  const ServiceCounters c = service.Counters();
  EXPECT_GE(c.cache_hits, 1u);
  EXPECT_GE(c.cache_misses, 1u);
}

TEST(OracleService, CacheEvictsLeastRecentlyUsed) {
  MetricsRegistry metrics;
  ServiceOptions options;
  options.num_workers = 1;
  options.cache_capacity = 1;
  OracleService service(Engine(), options, metrics);

  Request a, b;
  a.source = 1;
  b.source = 2;
  (void)service.Call(a);                         // cache: {1}
  (void)service.Call(b);                         // evicts 1, cache: {2}
  const Response again = service.Call(a);        // miss again
  EXPECT_FALSE(again.from_cache);
  const ServiceCounters c = service.Counters();
  EXPECT_GE(c.cache_evictions, 1u);
}

// --- backpressure, deadlines, shutdown --------------------------------------

TEST(OracleService, QueueFullShedsInsteadOfBlocking) {
  MetricsRegistry metrics;
  ServiceOptions options;
  options.num_workers = 0;  // nothing drains the queue
  options.queue_capacity = 2;
  OracleService service(Engine(), options, metrics);

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 5; ++i) {
    Request request;
    request.source = static_cast<VertexId>(i);
    futures.push_back(service.Submit(request));
  }
  // The three rejects resolve immediately, without Stop.
  int shed_queue_full = 0;
  for (auto& f : futures) {
    if (f.wait_for(std::chrono::seconds(0)) == std::future_status::ready &&
        f.get().status == ResponseStatus::kShedQueueFull) {
      ++shed_queue_full;
    }
  }
  EXPECT_EQ(shed_queue_full, 3);

  service.Stop();  // the two queued requests are shed, not lost
  const ServiceCounters c = service.Counters();
  EXPECT_EQ(c.admitted, 5u);
  EXPECT_EQ(c.shed_queue_full, 3u);
  EXPECT_EQ(c.shed_shutdown, 2u);
  EXPECT_EQ(c.admitted, c.completed + c.Shed());
}

TEST(OracleService, StopShedsQueuedRequestsAndNeverDeadlocks) {
  MetricsRegistry metrics;
  ServiceOptions options;
  options.num_workers = 0;
  options.queue_capacity = 16;
  OracleService service(Engine(), options, metrics);

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(service.Submit(Request{}));
  }
  service.Stop();
  for (auto& f : futures) {
    EXPECT_EQ(f.get().status, ResponseStatus::kShedShutdown);
  }
  const ServiceCounters c = service.Counters();
  EXPECT_EQ(c.admitted, 10u);
  EXPECT_EQ(c.shed_shutdown, 10u);
  EXPECT_EQ(c.admitted, c.completed + c.Shed());

  // Submitting after Stop sheds immediately instead of hanging.
  EXPECT_EQ(service.Call(Request{}).status, ResponseStatus::kShedShutdown);
}

TEST(OracleService, ExpiredDeadlineIsShedAtProcessingTime) {
  MetricsRegistry metrics;
  ServiceOptions options;
  options.num_workers = 1;
  OracleService service(Engine(), options, metrics);

  // A deadline of 1 nanosecond has always expired by the time the worker
  // pops the job, regardless of scheduling.
  Request request;
  request.deadline_ms = 1e-6;
  const Response response = service.Call(request);
  EXPECT_EQ(response.status, ResponseStatus::kShedDeadline);
  EXPECT_TRUE(response.distances.empty());

  const ServiceCounters c = service.Counters();
  EXPECT_EQ(c.shed_deadline, 1u);
  EXPECT_EQ(c.admitted, c.completed + c.Shed());
}

TEST(OracleService, InvalidRequestsAreAnsweredAndCounted) {
  MetricsRegistry metrics;
  OracleService service(Engine(), ServiceOptions{}, metrics);

  Request bad_source;
  bad_source.source = Engine().NumVertices();  // one past the end
  EXPECT_EQ(service.Call(bad_source).status, ResponseStatus::kInvalidRequest);

  Request bad_target;
  bad_target.targets = {Engine().NumVertices() + 5};
  EXPECT_EQ(service.Call(bad_target).status, ResponseStatus::kInvalidRequest);

  const ServiceCounters c = service.Counters();
  EXPECT_EQ(c.admitted, 2u);
  EXPECT_EQ(c.completed, 2u);  // answered, not shed
  EXPECT_EQ(c.Shed(), 0u);
}

// --- snapshot manager & hot swap --------------------------------------------

/// A witness-free preparation of the test country: its hierarchy topology is
/// metric-independent, which is what makes the snapshot customizable.
const PreparedNetwork& CustomizablePrepared() {
  static const PreparedNetwork prepared = [] {
    CountryParams params;
    params.width = kSide;
    params.height = kSide;
    params.seed = 1;
    PrepareOptions options;
    options.ch_params.witness_pruning = false;
    return PrepareNetwork(GenerateCountry(params).edges, options);
  }();
  return prepared;
}

Snapshot MakeCustomizableSnapshot() {
  const PreparedNetwork& prepared = CustomizablePrepared();
  static const Phast engine(prepared.ch);
  return MakeSnapshot(engine, &prepared.graph, &prepared.ch);
}

/// One update per arc, doubling its weight: every finite nonzero distance
/// changes, so a pre-swap tree can never pass for a post-swap one.
std::vector<WeightUpdate> DoubleEveryWeight(const Graph& graph) {
  std::vector<WeightUpdate> updates;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    for (const Arc& a : graph.ArcsOf(v)) {
      updates.push_back({v, a.other, a.weight * 2});
    }
  }
  return updates;
}

Graph ApplyUpdates(const Graph& base,
                   const std::vector<WeightUpdate>& updates) {
  std::vector<ArcId> first(base.FirstArray().begin(), base.FirstArray().end());
  std::vector<Arc> arcs(base.ArcArray().begin(), base.ArcArray().end());
  for (const WeightUpdate& u : updates) {
    for (ArcId i = first[u.tail]; i < first[u.tail + 1]; ++i) {
      if (arcs[i].other == u.head) {
        arcs[i].weight = u.weight;
        break;
      }
    }
  }
  return Graph::FromCsrArrays(std::move(first), std::move(arcs));
}

TEST(SnapshotManager, OverlayKeepsLastWritePerArcAndDiscardsBySeq) {
  WeightOverlay overlay;
  EXPECT_EQ(overlay.Add(std::vector<WeightUpdate>{{1, 2, 10}, {3, 4, 20}}),
            2u);
  EXPECT_EQ(overlay.Add(std::vector<WeightUpdate>{{1, 2, 30}}), 3u);

  WeightOverlay::Pending pending = overlay.Snapshot();
  EXPECT_EQ(pending.last_seq, 3u);
  ASSERT_EQ(pending.updates.size(), 2u);  // (1,2) collapsed to its last write
  for (const WeightUpdate& u : pending.updates) {
    if (u.tail == 1) {
      EXPECT_EQ(u.weight, 30u);
    }
  }

  // An update that races in during a build (after Snapshot, before Discard)
  // survives the discard and is pending for the next swap.
  EXPECT_EQ(overlay.Add(std::vector<WeightUpdate>{{5, 6, 40}}), 4u);
  overlay.DiscardUpTo(pending.last_seq);
  pending = overlay.Snapshot();
  ASSERT_EQ(pending.updates.size(), 1u);
  EXPECT_EQ(pending.updates[0].tail, 5u);
  EXPECT_EQ(pending.last_seq, 4u);
}

// The stale-cache regression: before the epoch went into the cache key, a
// source queried under the old metric could be answered from the cache
// after a swap, silently serving pre-swap distances.
TEST(SnapshotManager, SwapNeverServesPreSwapCachedTree) {
  MetricsRegistry metrics;
  SnapshotManager manager(MakeCustomizableSnapshot(), metrics);
  ServiceOptions options;
  options.num_workers = 1;
  options.cache_capacity = 4;
  OracleService service(manager, options, metrics);

  const Graph& base = CustomizablePrepared().graph;
  Request request;
  request.source = 5;

  const Response before = service.Call(request);
  EXPECT_EQ(before.epoch, 1u);
  const Response cached = service.Call(request);
  EXPECT_TRUE(cached.from_cache);  // the tree is definitely in the cache

  const std::vector<WeightUpdate> updates = DoubleEveryWeight(base);
  const Graph updated = ApplyUpdates(base, updates);
  manager.UpdateWeights(updates);
  EXPECT_EQ(manager.PendingUpdates(), updates.size());
  EXPECT_EQ(manager.CustomizeAndSwap(/*customize_threads=*/1), 2u);
  EXPECT_EQ(manager.Epoch(), 2u);
  EXPECT_EQ(manager.PendingUpdates(), 0u);

  const Response after = service.Call(request);
  EXPECT_EQ(after.epoch, 2u);
  EXPECT_FALSE(after.from_cache);  // the old tree must be unreachable
  EXPECT_NE(after.distances, before.distances);
  const SsspResult ref = Dijkstra<BinaryHeap>(updated, request.source);
  EXPECT_EQ(after.distances, ref.dist);

  // The new metric's tree is cached under the new epoch.
  const Response cached_after = service.Call(request);
  EXPECT_TRUE(cached_after.from_cache);
  EXPECT_EQ(cached_after.epoch, 2u);
  EXPECT_EQ(cached_after.distances, after.distances);
  EXPECT_GE(service.Counters().cache_swap_flushes, 1u);
}

TEST(SnapshotManager, SwapsUnderLoadDropNothingAndEveryEpochIsConsistent) {
  MetricsRegistry metrics;
  SnapshotManager manager(MakeCustomizableSnapshot(), metrics);
  ServiceOptions options;
  options.num_workers = 2;
  options.max_batch = 8;
  options.cache_capacity = 4;
  options.queue_capacity = 1024;
  OracleService service(manager, options, metrics);

  // Precompute the metric of every epoch: epoch e serves graphs[e - 1].
  constexpr int kSwaps = 3;
  const Graph& base = CustomizablePrepared().graph;
  std::vector<std::vector<WeightUpdate>> rounds;
  std::vector<Graph> graphs = {base};
  Rng setup_rng(77);
  for (int i = 0; i < kSwaps; ++i) {
    std::vector<WeightUpdate> updates;
    for (int u = 0; u < 48; ++u) {
      VertexId tail;
      do {
        tail = static_cast<VertexId>(setup_rng.NextBounded(base.NumVertices()));
      } while (base.Degree(tail) == 0);
      const Arc& arc = base.ArcsOf(
          tail)[setup_rng.NextBounded(static_cast<uint32_t>(base.Degree(tail)))];
      updates.push_back(
          {tail, arc.other,
           static_cast<Weight>(setup_rng.NextInRange(1, 100'000))});
    }
    graphs.push_back(ApplyUpdates(graphs.back(), updates));
    rounds.push_back(std::move(updates));
  }

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  constexpr int kClients = 3;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(500 + static_cast<uint64_t>(t));
      while (!done.load(std::memory_order_relaxed)) {
        Request request;
        request.source =
            static_cast<VertexId>(rng.NextBounded(base.NumVertices()));
        const Response response = service.Call(request);
        if (response.status != ResponseStatus::kOk ||
            response.epoch < 1 || response.epoch > kSwaps + 1) {
          ++failures;
          continue;
        }
        // Whatever epoch answered, it must be internally consistent: the
        // distances are exactly that epoch's metric, never a mixture.
        const SsspResult ref = Dijkstra<BinaryHeap>(
            graphs[response.epoch - 1], request.source);
        if (response.distances != ref.dist) ++failures;
      }
    });
  }

  for (int i = 0; i < kSwaps; ++i) {
    manager.UpdateWeights(rounds[i]);
    EXPECT_EQ(manager.CustomizeAndSwap(/*customize_threads=*/1),
              static_cast<uint64_t>(i + 2));
  }
  done.store(true, std::memory_order_relaxed);
  for (std::thread& c : clients) c.join();

  EXPECT_EQ(failures.load(), 0);
  const ServiceCounters c = service.Counters();
  EXPECT_EQ(c.Shed(), 0u);  // zero dropped requests across all swaps
  EXPECT_EQ(c.admitted, c.completed);
}

TEST(SnapshotManager, RequiresGraphAndHierarchySections) {
  MetricsRegistry metrics;
  Snapshot no_graph = MakeCustomizableSnapshot();
  no_graph.has_graph = false;
  EXPECT_THROW(SnapshotManager(std::move(no_graph), metrics), InputError);

  Snapshot no_ch = MakeCustomizableSnapshot();
  no_ch.has_ch = false;
  EXPECT_THROW(SnapshotManager(std::move(no_ch), metrics), InputError);
}

TEST(SnapshotManager, RejectsUpdateForMissingArcAtSwapTime) {
  MetricsRegistry metrics;
  SnapshotManager manager(MakeCustomizableSnapshot(), metrics);
  manager.UpdateWeights(
      std::vector<WeightUpdate>{{0, 0, 1}});  // no self-loop in the graph
  EXPECT_THROW((void)manager.CustomizeAndSwap(1), InputError);
}

// --- bounded queue ----------------------------------------------------------

TEST(BoundedQueue, TryPushRejectsWhenFull) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));
  EXPECT_EQ(queue.Size(), 2u);
}

TEST(BoundedQueue, PopBatchCoalescesEverythingQueued) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.TryPush(std::move(i)));
  const std::vector<int> batch = queue.PopBatch(4);
  EXPECT_EQ(batch, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(queue.Size(), 1u);
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  BoundedQueue<int> queue(2);
  std::thread consumer([&queue] {
    EXPECT_EQ(queue.Pop(), std::nullopt);  // blocks until Close
  });
  queue.Close();
  consumer.join();
  EXPECT_FALSE(queue.TryPush(1));
}

TEST(BoundedQueue, DrainReturnsUnconsumedTailAfterClose) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.TryPush(7));
  EXPECT_TRUE(queue.TryPush(8));
  queue.Close();
  EXPECT_EQ(queue.Drain(), (std::vector<int>{7, 8}));
  EXPECT_EQ(queue.Size(), 0u);
}

TEST(BoundedQueue, BlockingPushWaitsForSpace) {
  BoundedQueue<int> queue(1);
  EXPECT_TRUE(queue.TryPush(1));
  std::thread producer([&queue] {
    EXPECT_TRUE(queue.Push(2));  // blocks until the consumer pops
  });
  EXPECT_EQ(queue.Pop(), std::optional<int>(1));
  producer.join();
  EXPECT_EQ(queue.Pop(), std::optional<int>(2));
}

// --- metrics ----------------------------------------------------------------

TEST(Metrics, HistogramQuantilesAndCounts) {
  Histogram h({1.0, 10.0, 100.0});
  for (int i = 0; i < 90; ++i) h.Observe(0.5);
  for (int i = 0; i < 10; ++i) h.Observe(50.0);
  EXPECT_EQ(h.Count(), 100u);
  EXPECT_NEAR(h.Sum(), 90 * 0.5 + 10 * 50.0, 1e-6);
  EXPECT_LE(h.Quantile(0.5), 1.0);
  EXPECT_GT(h.Quantile(0.95), 10.0);
}

TEST(Metrics, HistogramRejectsUnsortedBounds) {
  EXPECT_THROW((void)Histogram({5.0, 1.0}), InputError);
  EXPECT_THROW((void)Histogram({1.0, 1.0}), InputError);
}

TEST(Metrics, EmptyHistogramQuantileIsZero) {
  const Histogram h({1.0, 10.0});
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Quantile(0.0), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.Quantile(1.0), 0.0);
}

TEST(Metrics, AllOverflowSamplesReportLargestBound) {
  // Every sample beyond the last finite bound: the histogram cannot resolve
  // past it, so all quantiles saturate at bounds.back() rather than NaN or
  // a divide-by-zero artifact.
  Histogram h({1.0, 10.0});
  for (int i = 0; i < 5; ++i) h.Observe(1e6);
  EXPECT_EQ(h.Quantile(0.01), 10.0);
  EXPECT_EQ(h.Quantile(0.5), 10.0);
  EXPECT_EQ(h.Quantile(0.99), 10.0);
  EXPECT_EQ(h.BucketCount(2), 5u);  // all in +Inf
}

TEST(Metrics, SingleBucketHistogramInterpolates) {
  Histogram h({10.0});
  for (int i = 0; i < 10; ++i) h.Observe(3.0);
  // All mass in [0, 10]: the median interpolates to the middle of the
  // bucket, and extreme quantiles stay within it.
  EXPECT_NEAR(h.Quantile(0.5), 5.0, 1e-9);
  EXPECT_GE(h.Quantile(0.0), 0.0);
  EXPECT_LE(h.Quantile(1.0), 10.0);
}

TEST(Metrics, NonFiniteObservationsLandInOverflowBucket) {
  Histogram h({1.0, 10.0});
  h.Observe(std::numeric_limits<double>::quiet_NaN());
  h.Observe(std::numeric_limits<double>::infinity());
  h.Observe(-std::numeric_limits<double>::infinity());
  h.Observe(2.0);  // one honest sample
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_EQ(h.BucketCount(2), 3u);  // the three non-finite ones
  // The sum must stay finite: llround on a non-finite double is UB and a
  // NaN sum would poison the exposition forever.
  EXPECT_TRUE(std::isfinite(h.Sum()));
  EXPECT_NEAR(h.Sum(), 2.0, 1e-6);
}

TEST(Metrics, HugeFiniteObservationDoesNotOverflowSum) {
  Histogram h({1.0});
  h.Observe(1e300);  // would overflow int64 microunits without the clamp
  EXPECT_TRUE(std::isfinite(h.Sum()));
  EXPECT_EQ(h.BucketCount(1), 1u);
}

TEST(Metrics, RegistryRendersPrometheusExposition) {
  MetricsRegistry registry;
  registry.GetCounter("requests_total", "All requests").Inc();
  registry.GetGauge("depth", "Queue depth").Set(3);
  registry.GetHistogram("latency", "Latency", {1.0, 10.0}).Observe(2.5);

  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("requests_total 1"), std::string::npos);
  EXPECT_NE(text.find("depth 3"), std::string::npos);
  EXPECT_NE(text.find("latency_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("latency_count 1"), std::string::npos);
}

TEST(Metrics, RegistryRejectsKindConflicts) {
  MetricsRegistry registry;
  (void)registry.GetCounter("x", "a counter");
  EXPECT_THROW((void)registry.GetGauge("x", "now a gauge?"), InputError);
}

TEST(Metrics, SameNameReturnsSameInstance) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("hits", "h");
  Counter& b = registry.GetCounter("hits", "h");
  a.Inc();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.Value(), 1u);
}

// --- wire protocol over a socketpair ----------------------------------------

TEST(Protocol, QueryFrameRoundTrip) {
  Request request;
  request.source = 17;
  request.targets = {3, 1, 4};
  request.deadline_ms = 2.5;
  const QueryFrame decoded = DecodeQuery(EncodeQuery(9, request));
  EXPECT_EQ(decoded.id, 9u);
  EXPECT_EQ(decoded.request.source, 17u);
  EXPECT_EQ(decoded.request.targets, request.targets);
  EXPECT_DOUBLE_EQ(decoded.request.deadline_ms, 2.5);
}

TEST(Protocol, ResponseFrameRoundTrip) {
  Response response;
  response.status = ResponseStatus::kOk;
  response.from_cache = true;
  response.latency_ms = 1.25;
  response.epoch = 42;
  response.distances = {0, 7, kInfWeight};
  const ResponseFrame decoded = DecodeResponse(EncodeResponse(3, response));
  EXPECT_EQ(decoded.id, 3u);
  EXPECT_EQ(decoded.response.status, ResponseStatus::kOk);
  EXPECT_TRUE(decoded.response.from_cache);
  EXPECT_EQ(decoded.response.epoch, 42u);
  EXPECT_EQ(decoded.response.distances, response.distances);
}

TEST(Protocol, WeightUpdateFrameRoundTrip) {
  const std::vector<WeightUpdate> updates = {{1, 2, 3}, {4, 5, kInfWeight}};
  const std::vector<WeightUpdate> decoded =
      DecodeWeightUpdates(EncodeWeightUpdates(9, updates));
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].tail, 1u);
  EXPECT_EQ(decoded[0].head, 2u);
  EXPECT_EQ(decoded[0].weight, 3u);
  EXPECT_EQ(decoded[1].weight, kInfWeight);
}

TEST(Protocol, ValueReplyRoundTripChecksItsType) {
  const std::vector<uint8_t> bytes =
      EncodeValueReply(MessageType::kSwap, 7, 12345);
  EXPECT_EQ(DecodeValueReply(MessageType::kSwap, bytes), 12345u);
  EXPECT_THROW((void)DecodeValueReply(MessageType::kEpoch, bytes), InputError);
}

TEST(Protocol, TruncatedPayloadIsRejected) {
  std::vector<uint8_t> bytes = EncodeQuery(1, Request{});
  bytes.pop_back();
  EXPECT_THROW((void)DecodeQuery(bytes), InputError);
  EXPECT_THROW((void)PeekType({}), InputError);
}

TEST(Protocol, ServeConnectionAnswersQueriesMetricsAndShutdown) {
  MetricsRegistry metrics;
  ServiceOptions options;
  options.num_workers = 2;
  OracleService service(Engine(), options, metrics);

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::thread server([&service, &metrics, server_fd = fds[1]] {
    const bool got_shutdown =
        ServeConnection(server_fd, server_fd, service, metrics);
    EXPECT_TRUE(got_shutdown);
    ::close(server_fd);
  });

  {
    Client client(fds[0]);  // owns and closes fds[0]
    Rng rng(11);
    for (int i = 0; i < 10; ++i) {
      const Request request = RandomRequest(rng);
      const Response response = client.Call(request);
      ExpectMatchesDijkstra(request, response);
    }
    const std::string text = client.FetchMetrics();
    EXPECT_NE(text.find("phast_server_requests_admitted_total 10"),
              std::string::npos);
    client.Shutdown();
  }
  server.join();

  const ServiceCounters c = service.Counters();
  EXPECT_EQ(c.admitted, 10u);
  EXPECT_EQ(c.admitted, c.completed + c.Shed());
}

TEST(Protocol, PipelinedQueriesComeBackInOrder) {
  MetricsRegistry metrics;
  OracleService service(Engine(), ServiceOptions{}, metrics);

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::thread server([&service, &metrics, server_fd = fds[1]] {
    (void)ServeConnection(server_fd, server_fd, service, metrics);
    ::close(server_fd);
  });

  {
    Client client(fds[0]);
    std::vector<uint64_t> sent_ids;
    std::vector<Request> requests;
    Rng rng(13);
    for (int i = 0; i < 16; ++i) {
      requests.push_back(RandomRequest(rng, /*full_tree_prob=*/0.0));
      sent_ids.push_back(client.SendQuery(requests.back()));
    }
    for (size_t i = 0; i < sent_ids.size(); ++i) {
      const ResponseFrame frame = client.ReceiveResponse();
      EXPECT_EQ(frame.id, sent_ids[i]);  // responses in request order
      ExpectMatchesDijkstra(requests[i], frame.response);
    }
    client.Shutdown();
  }
  server.join();
}

TEST(Protocol, ServeConnectionHandlesMetricMessages) {
  MetricsRegistry metrics;
  SnapshotManager manager(MakeCustomizableSnapshot(), metrics);
  ServiceOptions options;
  options.num_workers = 1;
  OracleService service(manager, options, metrics);
  ConnectionOptions conn_options;
  conn_options.manager = &manager;
  conn_options.customize_threads = 1;

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::thread server([&, server_fd = fds[1]] {
    (void)ServeConnection(server_fd, server_fd, service, metrics,
                          conn_options);
    ::close(server_fd);
  });

  {
    Client client(fds[0]);
    EXPECT_EQ(client.FetchEpoch(), 1u);
    const Graph& base = CustomizablePrepared().graph;
    const std::vector<WeightUpdate> updates = DoubleEveryWeight(base);
    EXPECT_EQ(client.UpdateWeights(updates), updates.size());
    EXPECT_EQ(client.TriggerSwap(), 2u);
    EXPECT_EQ(client.FetchEpoch(), 2u);

    Request request;
    request.source = 3;
    const Response response = client.Call(request);
    EXPECT_EQ(response.epoch, 2u);
    const SsspResult ref = Dijkstra<BinaryHeap>(
        ApplyUpdates(base, updates), request.source);
    EXPECT_EQ(response.distances, ref.dist);
    client.Shutdown();
  }
  server.join();
}

TEST(Protocol, MetricMessagesWithoutManagerFailTheConnection) {
  MetricsRegistry metrics;
  OracleService service(Engine(), ServiceOptions{}, metrics);

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::thread server([&service, &metrics, server_fd = fds[1]] {
    const bool got_shutdown =
        ServeConnection(server_fd, server_fd, service, metrics);
    EXPECT_FALSE(got_shutdown);  // protocol error, not a clean shutdown
    ::close(server_fd);
  });

  {
    Client client(fds[0]);
    // A pinned-engine server answers kEpoch with 0 but treats mutation
    // attempts as a protocol error and closes the connection.
    EXPECT_EQ(client.FetchEpoch(), 0u);
    EXPECT_THROW((void)client.TriggerSwap(), InputError);
  }
  server.join();
}

// --- v2 workload frames and the batch workloads -----------------------------

/// Brute-force k-nearest reference: scan the bucket under Dijkstra
/// distances, drop unreachable, order by (dist, vertex id), keep k.
std::vector<std::pair<Weight, VertexId>> PoiBruteForce(
    const Graph& graph, const PoiIndex& index, uint32_t category,
    VertexId source, uint32_t k) {
  const SsspResult ref = Dijkstra<BinaryHeap>(graph, source);
  std::vector<std::pair<Weight, VertexId>> all;
  for (const VertexId v : index.Bucket(category)) {
    if (ref.dist[v] != kInfWeight) all.emplace_back(ref.dist[v], v);
  }
  std::sort(all.begin(), all.end());
  if (all.size() > k) all.resize(k);
  return all;
}

void ExpectMatrixMatchesDijkstra(const Graph& graph, const Request& request,
                                 const Response& response) {
  ASSERT_EQ(response.status, ResponseStatus::kOk);
  ASSERT_EQ(response.rows, request.sources.size());
  ASSERT_EQ(response.cols, request.targets.size());
  ASSERT_EQ(response.distances.size(),
            static_cast<size_t>(response.rows) * response.cols);
  for (uint32_t i = 0; i < response.rows; ++i) {
    const SsspResult ref = Dijkstra<BinaryHeap>(graph, request.sources[i]);
    for (uint32_t j = 0; j < response.cols; ++j) {
      ASSERT_EQ(response.distances[size_t{i} * response.cols + j],
                ref.dist[request.targets[j]])
          << "cell (" << i << ", " << j << ")";
    }
  }
}

void ExpectPoiMatchesBruteForce(const Graph& graph, const PoiIndex& index,
                                const Request& request,
                                const Response& response) {
  ASSERT_EQ(response.status, ResponseStatus::kOk);
  const std::vector<std::pair<Weight, VertexId>> want = PoiBruteForce(
      graph, index, request.poi_category, request.source, request.poi_k);
  ASSERT_EQ(response.poi_vertices.size(), want.size());
  ASSERT_EQ(response.distances.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(response.distances[i], want[i].first) << "rank " << i;
    EXPECT_EQ(response.poi_vertices[i], want[i].second) << "rank " << i;
  }
}

Request RandomMatrixRequest(Rng& rng, uint32_t max_dim = 5) {
  const VertexId n = Engine().NumVertices();
  Request request;
  request.kind = RequestKind::kMatrix;
  const uint32_t rows = 1 + rng.NextBounded(max_dim);
  const uint32_t cols = 1 + rng.NextBounded(max_dim);
  for (uint32_t i = 0; i < rows; ++i) {
    request.sources.push_back(static_cast<VertexId>(rng.NextBounded(n)));
  }
  for (uint32_t j = 0; j < cols; ++j) {
    request.targets.push_back(static_cast<VertexId>(rng.NextBounded(n)));
  }
  return request;
}

TEST(Protocol, MatrixFrameRoundTrip) {
  Request request;
  request.kind = RequestKind::kMatrix;
  request.sources = {4, 4, 9};
  request.targets = {1, 0};
  request.deadline_ms = 7.5;
  const QueryFrame q = DecodeMatrixQuery(EncodeMatrixQuery(21, request));
  EXPECT_EQ(q.id, 21u);
  EXPECT_EQ(q.request.kind, RequestKind::kMatrix);
  EXPECT_EQ(q.request.sources, request.sources);
  EXPECT_EQ(q.request.targets, request.targets);
  EXPECT_DOUBLE_EQ(q.request.deadline_ms, 7.5);

  Response response;
  response.status = ResponseStatus::kOk;
  response.rows = 3;
  response.cols = 2;
  response.distances = {0, 1, 2, kInfWeight, 4, 5};
  response.epoch = 9;
  response.latency_ms = 0.5;
  const ResponseFrame r =
      DecodeMatrixResponse(EncodeMatrixResponse(21, response));
  EXPECT_EQ(r.id, 21u);
  EXPECT_EQ(r.response.rows, 3u);
  EXPECT_EQ(r.response.cols, 2u);
  EXPECT_EQ(r.response.distances, response.distances);
  EXPECT_EQ(r.response.epoch, 9u);
}

TEST(Protocol, PoiFrameRoundTrip) {
  Request request;
  request.kind = RequestKind::kNearestPoi;
  request.source = 33;
  request.poi_category = 2;
  request.poi_k = 4;
  request.deadline_ms = 1.25;
  const QueryFrame q = DecodePoiQuery(EncodePoiQuery(5, request));
  EXPECT_EQ(q.id, 5u);
  EXPECT_EQ(q.request.kind, RequestKind::kNearestPoi);
  EXPECT_EQ(q.request.source, 33u);
  EXPECT_EQ(q.request.poi_category, 2u);
  EXPECT_EQ(q.request.poi_k, 4u);

  Response response;
  response.status = ResponseStatus::kOk;
  response.poi_vertices = {7, 2};
  response.distances = {10, 10};
  response.epoch = 3;
  const ResponseFrame r = DecodePoiResponse(EncodePoiResponse(5, response));
  EXPECT_EQ(r.id, 5u);
  EXPECT_EQ(r.response.poi_vertices, response.poi_vertices);
  EXPECT_EQ(r.response.distances, response.distances);
  EXPECT_EQ(r.response.epoch, 3u);
}

TEST(Protocol, WorkloadFramesKeepIdAtByteOffsetOne) {
  // The router rewrites bytes [1, 9) of every frame in place; the v2
  // version byte must come after, never before.
  Request matrix;
  matrix.kind = RequestKind::kMatrix;
  matrix.sources = {1};
  matrix.targets = {2};
  Request poi;
  poi.kind = RequestKind::kNearestPoi;
  for (std::vector<uint8_t> bytes :
       {EncodeMatrixQuery(0x1122334455667788ull, matrix),
        EncodePoiQuery(0x1122334455667788ull, poi),
        EncodeMatrixResponse(0x1122334455667788ull, Response{}),
        EncodePoiResponse(0x1122334455667788ull, Response{})}) {
    EXPECT_EQ(PeekId(bytes), 0x1122334455667788ull);
    EXPECT_EQ(bytes[9], kProtocolVersion);
  }
}

TEST(Protocol, WorkloadFramesRejectBadVersionAndTruncation) {
  Request matrix;
  matrix.kind = RequestKind::kMatrix;
  matrix.sources = {1, 2};
  matrix.targets = {3};
  Request poi;
  poi.kind = RequestKind::kNearestPoi;
  poi.poi_k = 1;

  std::vector<uint8_t> bad_version = EncodeMatrixQuery(1, matrix);
  bad_version[9] = kProtocolVersion + 1;  // version sits after the u64 id
  EXPECT_THROW((void)DecodeMatrixQuery(bad_version), InputError);
  bad_version = EncodePoiQuery(1, poi);
  bad_version[9] = 0;
  EXPECT_THROW((void)DecodePoiQuery(bad_version), InputError);

  std::vector<uint8_t> truncated = EncodeMatrixQuery(1, matrix);
  truncated.pop_back();
  EXPECT_THROW((void)DecodeMatrixQuery(truncated), InputError);
  truncated = EncodePoiQuery(1, poi);
  truncated.pop_back();
  EXPECT_THROW((void)DecodePoiQuery(truncated), InputError);
  Response response;
  response.rows = 1;
  response.cols = 1;
  response.distances = {4};
  truncated = EncodeMatrixResponse(1, response);
  truncated.pop_back();
  EXPECT_THROW((void)DecodeMatrixResponse(truncated), InputError);
}

TEST(Protocol, OversizedOrEmptyMatrixIsRejectedAtDecode) {
  Request request;
  request.kind = RequestKind::kMatrix;
  request.targets = {1};
  request.sources.assign(kMaxMatrixDim + 1, 0);  // one over the dim cap
  EXPECT_THROW((void)DecodeMatrixQuery(EncodeMatrixQuery(1, request)),
               InputError);

  // Both dims legal but the product exceeds the cell cap.
  request.sources.assign(2048, 0);
  request.targets.assign(2049, 0);
  EXPECT_THROW((void)DecodeMatrixQuery(EncodeMatrixQuery(1, request)),
               InputError);

  // Zero-dimension tables are rejected rather than answered empty.
  request.sources.clear();
  request.targets.assign(1, 0);
  EXPECT_THROW((void)DecodeMatrixQuery(EncodeMatrixQuery(1, request)),
               InputError);
}

TEST(OracleService, MatrixRequestsMatchDijkstra) {
  MetricsRegistry metrics;
  ServiceOptions options;
  options.num_workers = 2;
  OracleService service(Engine(), options, metrics);

  Rng rng(61);
  for (int i = 0; i < 8; ++i) {
    const Request request = RandomMatrixRequest(rng);
    const Response response = service.Call(request);
    ExpectMatrixMatchesDijkstra(CachedCountry(kSide), request, response);
    EXPECT_EQ(response.epoch, 0u);  // pinned engine
  }
  const ServiceCounters c = service.Counters();
  EXPECT_EQ(c.matrix_requests, 8u);
  EXPECT_EQ(c.admitted, c.completed);
}

TEST(OracleService, PoiRequestsMatchBruteForce) {
  const PoiIndex index =
      PoiIndex::GenerateRandom(Engine().NumVertices(), 3, 10, 13);
  MetricsRegistry metrics;
  ServiceOptions options;
  options.num_workers = 1;
  options.poi = &index;
  OracleService service(Engine(), options, metrics);

  Rng rng(29);
  for (int i = 0; i < 12; ++i) {
    Request request;
    request.kind = RequestKind::kNearestPoi;
    request.source =
        static_cast<VertexId>(rng.NextBounded(Engine().NumVertices()));
    request.poi_category = rng.NextBounded(index.NumCategories());
    request.poi_k = 1 + rng.NextBounded(12);  // sometimes > bucket size
    const Response response = service.Call(request);
    ExpectPoiMatchesBruteForce(CachedCountry(kSide), index, request, response);
  }
  EXPECT_EQ(service.Counters().poi_requests, 12u);
}

TEST(OracleService, WorkloadValidationRejectsBadRequests) {
  const PoiIndex index =
      PoiIndex::GenerateRandom(Engine().NumVertices(), 2, 4, 3);
  MetricsRegistry metrics;
  ServiceOptions options;
  options.poi = &index;
  OracleService service(Engine(), options, metrics);

  Request empty_rows;
  empty_rows.kind = RequestKind::kMatrix;
  empty_rows.targets = {1};
  EXPECT_EQ(service.Call(empty_rows).status, ResponseStatus::kInvalidRequest);

  Request bad_source;
  bad_source.kind = RequestKind::kMatrix;
  bad_source.sources = {Engine().NumVertices()};
  bad_source.targets = {1};
  EXPECT_EQ(service.Call(bad_source).status, ResponseStatus::kInvalidRequest);

  Request bad_category;
  bad_category.kind = RequestKind::kNearestPoi;
  bad_category.poi_category = index.NumCategories();
  bad_category.poi_k = 1;
  EXPECT_EQ(service.Call(bad_category).status,
            ResponseStatus::kInvalidRequest);

  // A service without a POI index rejects every kNearestPoi request.
  MetricsRegistry no_poi_metrics;
  OracleService no_poi(Engine(), ServiceOptions{}, no_poi_metrics);
  Request poi;
  poi.kind = RequestKind::kNearestPoi;
  poi.poi_k = 1;
  EXPECT_EQ(no_poi.Call(poi).status, ResponseStatus::kInvalidRequest);
}

TEST(SnapshotManager, WorkloadResponsesAreEpochStampedAcrossSwap) {
  const Graph& base = CustomizablePrepared().graph;
  const PoiIndex index = PoiIndex::GenerateRandom(base.NumVertices(), 2, 6, 9);
  MetricsRegistry metrics;
  SnapshotManager manager(MakeCustomizableSnapshot(), metrics);
  ServiceOptions options;
  options.num_workers = 1;
  options.poi = &index;
  OracleService service(manager, options, metrics);

  Rng rng(71);
  const Request matrix = RandomMatrixRequest(rng, 3);
  Request poi;
  poi.kind = RequestKind::kNearestPoi;
  poi.source = 4;
  poi.poi_category = 1;
  poi.poi_k = 3;

  const Response matrix_before = service.Call(matrix);
  EXPECT_EQ(matrix_before.epoch, 1u);
  ExpectMatrixMatchesDijkstra(base, matrix, matrix_before);
  const Response poi_before = service.Call(poi);
  EXPECT_EQ(poi_before.epoch, 1u);
  ExpectPoiMatchesBruteForce(base, index, poi, poi_before);

  const std::vector<WeightUpdate> updates = DoubleEveryWeight(base);
  manager.UpdateWeights(updates);
  ASSERT_EQ(manager.CustomizeAndSwap(/*customize_threads=*/1), 2u);
  const Graph updated = ApplyUpdates(base, updates);

  const Response matrix_after = service.Call(matrix);
  EXPECT_EQ(matrix_after.epoch, 2u);
  ExpectMatrixMatchesDijkstra(updated, matrix, matrix_after);
  EXPECT_NE(matrix_after.distances, matrix_before.distances);
  const Response poi_after = service.Call(poi);
  EXPECT_EQ(poi_after.epoch, 2u);
  ExpectPoiMatchesBruteForce(updated, index, poi, poi_after);
}

TEST(Protocol, ServeConnectionAnswersMixedV1AndV2Frames) {
  const PoiIndex index =
      PoiIndex::GenerateRandom(Engine().NumVertices(), 2, 8, 19);
  MetricsRegistry metrics;
  ServiceOptions options;
  options.num_workers = 2;
  options.poi = &index;
  OracleService service(Engine(), options, metrics);

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::thread server([&service, &metrics, server_fd = fds[1]] {
    (void)ServeConnection(server_fd, server_fd, service, metrics);
    ::close(server_fd);
  });

  {
    Client client(fds[0]);
    Rng rng(37);
    std::vector<Request> requests;
    std::vector<uint64_t> ids;
    for (int i = 0; i < 12; ++i) {
      Request request;
      switch (i % 3) {
        case 0:
          request = RandomRequest(rng);
          break;
        case 1:
          request = RandomMatrixRequest(rng);
          break;
        default:
          request.kind = RequestKind::kNearestPoi;
          request.source =
              static_cast<VertexId>(rng.NextBounded(Engine().NumVertices()));
          request.poi_category = rng.NextBounded(index.NumCategories());
          request.poi_k = 1 + rng.NextBounded(6);
      }
      requests.push_back(request);
      ids.push_back(client.SendQuery(request));
    }
    for (size_t i = 0; i < requests.size(); ++i) {
      const ResponseFrame frame = client.ReceiveResponse();
      EXPECT_EQ(frame.id, ids[i]);  // responses in request order
      switch (requests[i].kind) {
        case RequestKind::kTree:
          ExpectMatchesDijkstra(requests[i], frame.response);
          break;
        case RequestKind::kMatrix:
          ExpectMatrixMatchesDijkstra(CachedCountry(kSide), requests[i],
                                      frame.response);
          break;
        case RequestKind::kNearestPoi:
          ExpectPoiMatchesBruteForce(CachedCountry(kSide), index, requests[i],
                                     frame.response);
          break;
      }
    }
    client.Shutdown();
  }
  server.join();

  const ServiceCounters c = service.Counters();
  EXPECT_EQ(c.admitted, 12u);
  EXPECT_EQ(c.matrix_requests, 4u);
  EXPECT_EQ(c.poi_requests, 4u);
}

}  // namespace
}  // namespace phast::server

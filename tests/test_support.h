#pragma once

// Shared fixtures for the heavier test binaries: generated road networks
// and their contraction hierarchies are cached per process so that many
// TESTs can reuse one preprocessing run.

#include <map>
#include <memory>
#include <tuple>

#include "ch/ch_data.h"
#include "ch/contraction.h"
#include "graph/connectivity.h"
#include "graph/csr.h"
#include "graph/generators.h"

namespace phast::testing {

/// Largest SCC of a synthetic country, cached by (side, seed, metric).
inline const Graph& CachedCountry(uint32_t side, uint64_t seed = 1,
                                  Metric metric = Metric::kTravelTime) {
  using Key = std::tuple<uint32_t, uint64_t, Metric>;
  static std::map<Key, std::unique_ptr<Graph>> cache;
  auto& slot = cache[{side, seed, metric}];
  if (!slot) {
    CountryParams params;
    params.width = side;
    params.height = side;
    params.seed = seed;
    params.metric = metric;
    const GeneratedGraph raw = GenerateCountry(params);
    slot = std::make_unique<Graph>(Graph::FromEdgeList(
        LargestStronglyConnectedComponent(raw.edges).edges));
  }
  return *slot;
}

/// Contraction hierarchy of CachedCountry, cached alongside it.
inline const CHData& CachedCountryCH(uint32_t side, uint64_t seed = 1,
                                     Metric metric = Metric::kTravelTime) {
  using Key = std::tuple<uint32_t, uint64_t, Metric>;
  static std::map<Key, std::unique_ptr<CHData>> cache;
  auto& slot = cache[{side, seed, metric}];
  if (!slot) {
    slot = std::make_unique<CHData>(
        BuildContractionHierarchy(CachedCountry(side, seed, metric)));
  }
  return *slot;
}

}  // namespace phast::testing

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include "graph/types.h"
#include "util/aligned.h"
#include "util/bit_vector.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/omp_env.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/timer.h"

namespace phast {
namespace {

// --------------------------- Rng ------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 20; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 15);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(13), 13u);
  }
}

TEST(Rng, BoundedCoversAllValues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, InRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t x = rng.NextInRange(-2, 2);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 2);
    saw_lo |= x == -2;
    saw_hi |= x == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  Rng rng(11);
  Shuffle(v.begin(), v.end(), rng);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sorted[i], i);
}

// --------------------------- BitVector ------------------------------------

TEST(BitVector, StartsCleared) {
  BitVector bits(100);
  for (size_t i = 0; i < 100; ++i) EXPECT_FALSE(bits.Get(i));
  EXPECT_EQ(bits.Count(), 0u);
  EXPECT_FALSE(bits.AnySet());
}

TEST(BitVector, SetAndClear) {
  BitVector bits(130);
  bits.Set(0);
  bits.Set(63);
  bits.Set(64);
  bits.Set(129);
  EXPECT_TRUE(bits.Get(0));
  EXPECT_TRUE(bits.Get(63));
  EXPECT_TRUE(bits.Get(64));
  EXPECT_TRUE(bits.Get(129));
  EXPECT_EQ(bits.Count(), 4u);
  bits.Clear(63);
  EXPECT_FALSE(bits.Get(63));
  EXPECT_EQ(bits.Count(), 3u);
}

TEST(BitVector, SetAllRespectsSize) {
  BitVector bits(70);
  bits.SetAll();
  EXPECT_EQ(bits.Count(), 70u);
}

TEST(BitVector, ClearAll) {
  BitVector bits(200, true);
  EXPECT_EQ(bits.Count(), 200u);
  bits.ClearAll();
  EXPECT_EQ(bits.Count(), 0u);
}

TEST(BitVector, AssignDispatches) {
  BitVector bits(10);
  bits.Assign(3, true);
  EXPECT_TRUE(bits.Get(3));
  bits.Assign(3, false);
  EXPECT_FALSE(bits.Get(3));
}

TEST(BitVector, ResizePreservesNothingButSize) {
  BitVector bits(10, true);
  bits.Resize(64 * 3 + 5);
  EXPECT_EQ(bits.Size(), 64u * 3 + 5);
  EXPECT_EQ(bits.Count(), 0u);
}

// --------------------------- AlignedVector --------------------------------

TEST(AlignedVector, DataIs64ByteAligned) {
  AlignedVector<uint32_t> v(1000, 7);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(v.data()) % 64, 0u);
  EXPECT_EQ(v[999], 7u);
}

TEST(AlignedVector, GrowKeepsAlignment) {
  AlignedVector<uint32_t> v;
  for (int i = 0; i < 10000; ++i) v.push_back(static_cast<uint32_t>(i));
  EXPECT_EQ(reinterpret_cast<uintptr_t>(v.data()) % 64, 0u);
  EXPECT_EQ(v[9999], 9999u);
}

// --------------------------- Stats ----------------------------------------

TEST(Stats, BasicMoments) {
  StatsAccumulator acc;
  for (double x : {1.0, 2.0, 3.0, 4.0}) acc.Add(x);
  EXPECT_DOUBLE_EQ(acc.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.Min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.Max(), 4.0);
  EXPECT_DOUBLE_EQ(acc.Sum(), 10.0);
  EXPECT_NEAR(acc.StdDev(), 1.118, 1e-3);
}

TEST(Stats, MedianAndPercentiles) {
  StatsAccumulator acc;
  for (int i = 1; i <= 100; ++i) acc.Add(i);
  EXPECT_NEAR(acc.Median(), 50.5, 1e-9);
  EXPECT_NEAR(acc.Percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(acc.Percentile(100), 100.0, 1e-9);
}

TEST(Stats, SingleSample) {
  StatsAccumulator acc;
  acc.Add(42.0);
  EXPECT_DOUBLE_EQ(acc.Median(), 42.0);
  EXPECT_DOUBLE_EQ(acc.StdDev(), 0.0);
}

TEST(Stats, ThrowsOnEmpty) {
  // Empty accumulators fail through the canonical Require(cond, msg) path
  // with a message naming the accessor (regression: the old private
  // Require(bool) threw a generic logic_error and depended on a transitive
  // include of <stdexcept>).
  StatsAccumulator acc;
  EXPECT_THROW((void)acc.Mean(), InputError);
  EXPECT_THROW((void)acc.Min(), InputError);
  EXPECT_THROW((void)acc.Max(), InputError);
  EXPECT_THROW((void)acc.StdDev(), InputError);
  try {
    (void)acc.Percentile(50);
    FAIL() << "Percentile on empty accumulator must throw";
  } catch (const InputError& e) {
    EXPECT_NE(std::string(e.what()).find("Percentile"), std::string::npos);
  }
}

TEST(Stats, PercentileCacheInvalidatedByAdd) {
  // Percentile caches the sorted copy; an Add in between must invalidate
  // it, including adds that land below the current minimum.
  StatsAccumulator acc;
  for (double x : {30.0, 10.0, 20.0}) acc.Add(x);
  EXPECT_DOUBLE_EQ(acc.Percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(acc.Percentile(100), 30.0);
  acc.Add(1.0);
  EXPECT_DOUBLE_EQ(acc.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(acc.Median(), 15.0);
  acc.Clear();
  acc.Add(7.0);
  EXPECT_DOUBLE_EQ(acc.Percentile(50), 7.0);
}

TEST(Stats, RepeatedPercentilesStaySorted) {
  // Many queries between adds must agree with a from-scratch sort each time
  // (exercises the cache-reuse path rather than the rebuild path).
  StatsAccumulator acc;
  Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    acc.Add(static_cast<double>(rng.NextBounded(1000)));
    std::vector<double> sorted = acc.Samples();
    std::sort(sorted.begin(), sorted.end());
    EXPECT_DOUBLE_EQ(acc.Percentile(0), sorted.front());
    EXPECT_DOUBLE_EQ(acc.Percentile(100), sorted.back());
    EXPECT_DOUBLE_EQ(acc.Min(), sorted.front());
    EXPECT_DOUBLE_EQ(acc.Max(), sorted.back());
  }
}

// --------------------------- Timer ----------------------------------------

TEST(Timer, MonotoneNonNegative) {
  Timer t;
  const double a = t.ElapsedSec();
  const double b = t.ElapsedSec();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(StopWatch, AccumulatesIntervals) {
  StopWatch w;
  w.Start();
  w.Stop();
  const double first = w.TotalSec();
  w.Start();
  w.Stop();
  EXPECT_GE(w.TotalSec(), first);
  w.Reset();
  EXPECT_EQ(w.TotalSec(), 0.0);
}

TEST(StopWatch, ReportsRunningState) {
  StopWatch w;
  EXPECT_FALSE(w.Running());
  w.Start();
  EXPECT_TRUE(w.Running());
  w.Stop();
  EXPECT_FALSE(w.Running());
  w.Start();
  w.Reset();
  EXPECT_FALSE(w.Running());
}

TEST(StopWatch, StartWhileRunningKeepsInterval) {
  // A redundant Start() must not restart the in-flight interval — the time
  // already accumulated before the second Start() has to survive into the
  // total, so the total is at least the spin below.
  StopWatch w;
  w.Start();
  const Timer spin;
  while (spin.ElapsedUs() < 200.0) {
  }
  w.Start();  // no-op: interval keeps running
  EXPECT_TRUE(w.Running());
  w.Stop();
  EXPECT_GE(w.TotalSec(), 200.0 * 1e-6);
}

TEST(StopWatch, StopWithoutStartIsNoOp) {
  StopWatch w;
  w.Stop();
  EXPECT_EQ(w.TotalSec(), 0.0);
  EXPECT_FALSE(w.Running());
}

// --------------------------- CommandLine ----------------------------------

TEST(CommandLine, ParsesOptionsAndPositionals) {
  const char* argv[] = {"prog", "--n=100", "--verbose", "input.gr",
                        "--ratio=0.5"};
  CommandLine cli(5, argv);
  EXPECT_EQ(cli.GetInt("n", 0), 100);
  EXPECT_TRUE(cli.GetBool("verbose", false));
  EXPECT_DOUBLE_EQ(cli.GetDouble("ratio", 0.0), 0.5);
  ASSERT_EQ(cli.Positional().size(), 1u);
  EXPECT_EQ(cli.Positional()[0], "input.gr");
}

TEST(CommandLine, FallbacksApply) {
  const char* argv[] = {"prog"};
  CommandLine cli(1, argv);
  EXPECT_EQ(cli.GetInt("missing", 7), 7);
  EXPECT_EQ(cli.GetString("missing", "x"), "x");
  EXPECT_FALSE(cli.Has("missing"));
}

TEST(CommandLine, RejectsMalformedNumbers) {
  const char* argv[] = {"prog", "--n=abc"};
  CommandLine cli(2, argv);
  EXPECT_THROW((void)cli.GetInt("n", 0), InputError);
}

TEST(CommandLine, BooleanSpellings) {
  const char* argv[] = {"prog", "--a=yes", "--b=off", "--c=1", "--d=false"};
  CommandLine cli(5, argv);
  EXPECT_TRUE(cli.GetBool("a", false));
  EXPECT_FALSE(cli.GetBool("b", true));
  EXPECT_TRUE(cli.GetBool("c", false));
  EXPECT_FALSE(cli.GetBool("d", true));
}

// --------------------------- SaturatingAdd --------------------------------

TEST(SaturatingAdd, NormalAndSaturated) {
  EXPECT_EQ(SaturatingAdd(1, 2), 3u);
  EXPECT_EQ(SaturatingAdd(kInfWeight, 0), kInfWeight);
  EXPECT_EQ(SaturatingAdd(kInfWeight, 5), kInfWeight);
  EXPECT_EQ(SaturatingAdd(kInfWeight - 1, 1), kInfWeight);
  EXPECT_EQ(SaturatingAdd(kInfWeight - 1, kInfWeight - 1), kInfWeight);
  EXPECT_EQ(SaturatingAdd(0, 0), 0u);
}

// --------------------------- OpenMP env ------------------------------------

TEST(OmpEnv, ScopedNumThreadsRestores) {
  const int before = MaxThreads();
  {
    ScopedNumThreads scope(1);
    EXPECT_EQ(MaxThreads(), 1);
  }
  EXPECT_EQ(MaxThreads(), before);
}

TEST(OmpEnv, ExceptionGuardCapturesFirstAndCancels) {
  OmpExceptionGuard guard;
  int ran = 0;
  guard.Run([&] { ++ran; });
  EXPECT_FALSE(guard.Cancelled());
  guard.Run([&] { throw InputError("first"); });
  EXPECT_TRUE(guard.Cancelled());
  // Later work is skipped and later exceptions are dropped: the first
  // failure is what Rethrow() surfaces.
  guard.Run([&] {
    ++ran;
    throw InputError("second");
  });
  EXPECT_EQ(ran, 1);
  try {
    guard.Rethrow();
    FAIL() << "Rethrow() should have thrown";
  } catch (const InputError& e) {
    EXPECT_STREQ(e.what(), "first");
  }
}

TEST(OmpEnv, ExceptionGuardRethrowIsANoOpWhenClean) {
  OmpExceptionGuard guard;
  guard.Run([] {});
  guard.Rethrow();  // nothing captured: must not throw
  EXPECT_FALSE(guard.Cancelled());
}

}  // namespace
}  // namespace phast

// End-to-end tests exercising the full pipeline the benchmarks use:
// generate -> extract SCC -> DFS relabel -> CH preprocessing -> PHAST /
// GPHAST -> applications, validated against Dijkstra at every step.
#include <gtest/gtest.h>

#include <numeric>
#include <sstream>
#include <vector>

#include "ch/contraction.h"
#include "ch/query.h"
#include "dijkstra/dijkstra.h"
#include "gpusim/gphast.h"
#include "graph/connectivity.h"
#include "graph/dimacs.h"
#include "graph/generators.h"
#include "graph/reorder.h"
#include "phast/phast.h"
#include "pq/dary_heap.h"
#include "pq/dial_buckets.h"
#include "pq/radix_heap.h"
#include "util/rng.h"

namespace phast {
namespace {

/// The exact preparation pipeline of the benchmark harness.
struct Pipeline {
  Graph graph;          // DFS-relabeled largest SCC
  CHData ch;
  explicit Pipeline(const EdgeList& raw, uint64_t dfs_root = 0) {
    const SubgraphResult scc = LargestStronglyConnectedComponent(raw);
    const Graph unordered = Graph::FromEdgeList(scc.edges);
    const Permutation dfs =
        DfsPermutation(unordered, static_cast<VertexId>(
                                      dfs_root % unordered.NumVertices()));
    graph = Graph::FromEdgeList(ApplyPermutation(scc.edges, dfs));
    ch = BuildContractionHierarchy(graph);
  }
};

TEST(Integration, FullPipelineAllSourcesCountry) {
  CountryParams params;
  params.width = 9;
  params.height = 9;
  const GeneratedGraph raw = GenerateCountry(params);
  Pipeline pipe(raw.edges);
  const Phast engine(pipe.ch);
  Phast::Workspace ws = engine.MakeWorkspace();
  // Every source, full agreement with Dijkstra.
  for (VertexId s = 0; s < pipe.graph.NumVertices(); ++s) {
    engine.ComputeTree(s, ws);
    const SsspResult ref = Dijkstra<BinaryHeap>(pipe.graph, s);
    for (VertexId v = 0; v < pipe.graph.NumVertices(); ++v) {
      ASSERT_EQ(engine.Distance(ws, v), ref.dist[v])
          << "s=" << s << " v=" << v;
    }
  }
}

TEST(Integration, GeometricGraphPipeline) {
  const GeneratedGraph raw = GenerateRandomGeometric(400, 0.08, 11);
  Pipeline pipe(raw.edges);
  const Phast engine(pipe.ch);
  Phast::Workspace ws = engine.MakeWorkspace();
  Rng rng(11);
  for (int i = 0; i < 10; ++i) {
    const VertexId s =
        static_cast<VertexId>(rng.NextBounded(pipe.graph.NumVertices()));
    engine.ComputeTree(s, ws);
    const SsspResult ref = Dijkstra<BinaryHeap>(pipe.graph, s);
    for (VertexId v = 0; v < pipe.graph.NumVertices(); ++v) {
      ASSERT_EQ(engine.Distance(ws, v), ref.dist[v]);
    }
  }
}

TEST(Integration, DistanceMetricPipeline) {
  CountryParams params;
  params.width = 10;
  params.height = 10;
  params.metric = Metric::kTravelDistance;
  const GeneratedGraph raw = GenerateCountry(params);
  Pipeline pipe(raw.edges);
  const Phast engine(pipe.ch);
  Phast::Workspace ws = engine.MakeWorkspace();
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    const VertexId s =
        static_cast<VertexId>(rng.NextBounded(pipe.graph.NumVertices()));
    engine.ComputeTree(s, ws);
    const SsspResult ref = Dijkstra<BinaryHeap>(pipe.graph, s);
    for (VertexId v = 0; v < pipe.graph.NumVertices(); ++v) {
      ASSERT_EQ(engine.Distance(ws, v), ref.dist[v]);
    }
  }
}

TEST(Integration, DimacsRoundTripThroughPipeline) {
  // Write the generated instance in DIMACS format, read it back, and run
  // the pipeline on the parsed copy — file I/O must not perturb results.
  CountryParams params;
  params.width = 8;
  params.height = 8;
  const GeneratedGraph raw = GenerateCountry(params);
  std::stringstream buffer;
  WriteDimacsGraph(raw.edges, buffer);
  const EdgeList parsed = ReadDimacsGraph(buffer);

  Pipeline direct(raw.edges);
  Pipeline via_file(parsed);
  ASSERT_EQ(direct.graph.NumVertices(), via_file.graph.NumVertices());

  const Phast engine_a(direct.ch);
  const Phast engine_b(via_file.ch);
  Phast::Workspace ws_a = engine_a.MakeWorkspace();
  Phast::Workspace ws_b = engine_b.MakeWorkspace();
  engine_a.ComputeTree(0, ws_a);
  engine_b.ComputeTree(0, ws_b);
  for (VertexId v = 0; v < direct.graph.NumVertices(); ++v) {
    ASSERT_EQ(engine_a.Distance(ws_a, v), engine_b.Distance(ws_b, v));
  }
}

TEST(Integration, AllEnginesAgreeEverywhere) {
  // Dijkstra (3 queues), CH point-to-point, PHAST (3 orders), GPHAST: one
  // matrix of distances, ten sources, every implementation identical.
  CountryParams params;
  params.width = 9;
  params.height = 9;
  params.seed = 21;
  const GeneratedGraph raw = GenerateCountry(params);
  Pipeline pipe(raw.edges);
  const VertexId n = pipe.graph.NumVertices();
  const Weight c = MaxArcWeight(pipe.graph);

  Phast::Options reordered;
  Phast::Options rank_order;
  rank_order.order = SweepOrder::kRankDescending;
  const Phast engine(pipe.ch, reordered);
  const Phast engine_rank(pipe.ch, rank_order);
  Gphast gpu(engine);
  CHQuery query(pipe.ch);

  Phast::Workspace ws = engine.MakeWorkspace();
  Phast::Workspace ws_rank = engine_rank.MakeWorkspace();
  Phast::Workspace ws_gpu = engine.MakeWorkspace();

  Rng rng(21);
  for (int i = 0; i < 10; ++i) {
    const VertexId s = static_cast<VertexId>(rng.NextBounded(n));
    const SsspResult binary = Dijkstra<BinaryHeap>(pipe.graph, s);
    const SsspResult dial = Dijkstra<DialBuckets>(pipe.graph, s, c);
    const SsspResult radix = Dijkstra<RadixHeap>(pipe.graph, s);
    engine.ComputeTree(s, ws);
    engine_rank.ComputeTree(s, ws_rank);
    const VertexId src[] = {s};
    gpu.ComputeTrees(src, ws_gpu);

    ASSERT_EQ(binary.dist, dial.dist);
    ASSERT_EQ(binary.dist, radix.dist);
    for (VertexId v = 0; v < n; ++v) {
      ASSERT_EQ(engine.Distance(ws, v), binary.dist[v]);
      ASSERT_EQ(engine_rank.Distance(ws_rank, v), binary.dist[v]);
      ASSERT_EQ(engine.Distance(ws_gpu, v), binary.dist[v]);
    }
    for (int j = 0; j < 5; ++j) {
      const VertexId t = static_cast<VertexId>(rng.NextBounded(n));
      ASSERT_EQ(query.Distance(s, t), binary.dist[t]);
    }
  }
}

TEST(Integration, ReusedWorkspaceAcrossEngineVariants) {
  // A workspace belongs to one engine, but many trees through the same
  // workspace must stay exact after thousands of label writes.
  CountryParams params;
  params.width = 10;
  params.height = 10;
  const GeneratedGraph raw = GenerateCountry(params);
  Pipeline pipe(raw.edges);
  const Phast engine(pipe.ch);
  Phast::Workspace ws = engine.MakeWorkspace();
  Rng rng(8);
  for (int round = 0; round < 50; ++round) {
    const VertexId s =
        static_cast<VertexId>(rng.NextBounded(pipe.graph.NumVertices()));
    engine.ComputeTree(s, ws);
    // Spot-check five labels per round.
    const SsspResult ref = Dijkstra<BinaryHeap>(pipe.graph, s);
    for (int j = 0; j < 5; ++j) {
      const VertexId v =
          static_cast<VertexId>(rng.NextBounded(pipe.graph.NumVertices()));
      ASSERT_EQ(engine.Distance(ws, v), ref.dist[v]);
    }
  }
}

}  // namespace
}  // namespace phast

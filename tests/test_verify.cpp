#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "ch/contraction.h"
#include "graph/csr.h"
#include "graph/edge_list.h"
#include "graph/generators.h"
#include "verify/fuzzer.h"
#include "verify/invariants.h"
#include "verify/mutator.h"
#include "verify/oracle.h"

namespace phast::verify {
namespace {

// ----------------------------- mutator -------------------------------------

TEST(Mutator, BaseGraphIsDeterministic) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const EdgeList a = MakeBaseGraph(seed);
    const EdgeList b = MakeBaseGraph(seed);
    EXPECT_EQ(a.NumVertices(), b.NumVertices());
    EXPECT_EQ(a.Edges(), b.Edges());
    EXPECT_GT(a.NumVertices(), 0u);
  }
}

TEST(Mutator, MutationIsDeterministic) {
  const EdgeList base = MakeBaseGraph(3);
  MutationSummary sa, sb;
  const EdgeList a = MutateGraph(base, 42, 20, &sa);
  const EdgeList b = MutateGraph(base, 42, 20, &sb);
  EXPECT_EQ(a.Edges(), b.Edges());
  EXPECT_EQ(sa.ToString(), sb.ToString());
}

TEST(Mutator, MutationPrefixProperty) {
  // Minimization relies on this: the first m mutations of an n-mutation run
  // produce exactly the m-mutation run. Each mutation must consume a fixed
  // amount of randomness regardless of how many follow it.
  const EdgeList base = MakeBaseGraph(5);
  const EdgeList full = MutateGraph(base, 7, 16);
  for (uint32_t m : {0u, 1u, 5u, 16u}) {
    const EdgeList prefix = MutateGraph(base, 7, m);
    if (m == 16) {
      EXPECT_EQ(prefix.Edges(), full.Edges());
    }
    // Re-running the same prefix must be stable.
    EXPECT_EQ(prefix.Edges(), MutateGraph(base, 7, m).Edges());
  }
  EXPECT_EQ(MutateGraph(base, 7, 0).Edges(), base.Edges());
}

TEST(Mutator, SummaryCountsMatchMutationCount) {
  const EdgeList base = MakeBaseGraph(2);
  MutationSummary s;
  (void)MutateGraph(base, 11, 30, &s);
  const uint32_t total = s.arcs_added + s.zero_weight_arcs + s.parallel_arcs +
                         s.huge_weight_arcs + s.self_loops + s.arcs_removed +
                         s.vertices_isolated;
  EXPECT_EQ(total, 30u);
  EXPECT_FALSE(s.ToString().empty());
}

TEST(Mutator, DifferentSeedsDiverge) {
  const EdgeList base = MakeBaseGraph(1);
  const EdgeList a = MutateGraph(base, 100, 12);
  const EdgeList b = MutateGraph(base, 101, 12);
  EXPECT_NE(a.Edges(), b.Edges());
}

// ------------------------- config name round-trip ---------------------------

TEST(OracleConfigName, RoundTripsEveryCrossProductEntry) {
  const std::vector<OracleConfig> configs = FullConfigCrossProduct();
  ASSERT_FALSE(configs.empty());
  std::set<std::string> names;
  for (const OracleConfig& c : configs) {
    const std::string name = ConfigName(c);
    EXPECT_TRUE(names.insert(name).second) << "duplicate config " << name;
    OracleConfig parsed;
    ASSERT_TRUE(ParseConfigName(name, &parsed)) << name;
    EXPECT_EQ(ConfigName(parsed), name);
    EXPECT_EQ(parsed.order, c.order);
    EXPECT_EQ(parsed.simd, c.simd);
    EXPECT_EQ(parsed.implicit_init, c.implicit_init);
    EXPECT_EQ(parsed.want_parents, c.want_parents);
    EXPECT_EQ(parsed.parallel_sweep, c.parallel_sweep);
    EXPECT_EQ(parsed.k, c.k);
  }
}

TEST(OracleConfigName, RejectsMalformedNames) {
  OracleConfig c;
  EXPECT_FALSE(ParseConfigName("", &c));
  EXPECT_FALSE(ParseConfigName("order=reordered", &c));
  EXPECT_FALSE(ParseConfigName(
      "order=bogus,simd=scalar,init=implicit,parents=on,sweep=serial,k=1",
      &c));
  EXPECT_FALSE(ParseConfigName(
      "order=rank,simd=scalar,init=implicit,parents=on,sweep=serial,k=zero",
      &c));
}

TEST(OracleConfigName, CrossProductCoversEveryAxis) {
  const std::vector<OracleConfig> configs = FullConfigCrossProduct();
  std::set<SweepOrder> orders;
  std::set<uint32_t> ks;
  bool any_parents = false, any_no_parents = false;
  bool any_implicit = false, any_explicit = false;
  bool any_parallel = false;
  for (const OracleConfig& c : configs) {
    orders.insert(c.order);
    ks.insert(c.k);
    (c.want_parents ? any_parents : any_no_parents) = true;
    (c.implicit_init ? any_implicit : any_explicit) = true;
    any_parallel |= c.parallel_sweep;
    // Parallel sweeps need level groups; rank order has none.
    EXPECT_FALSE(c.parallel_sweep && c.order == SweepOrder::kRankDescending);
  }
  EXPECT_EQ(orders.size(), 3u);
  EXPECT_GE(ks.size(), 3u);
  EXPECT_TRUE(any_parents && any_no_parents);
  EXPECT_TRUE(any_implicit && any_explicit);
  EXPECT_TRUE(any_parallel);
}

// ------------------------------ invariants ----------------------------------

EdgeList SmallCountry() {
  CountryParams params;
  params.width = 6;
  params.height = 6;
  params.seed = 9;
  return GenerateCountry(params).edges;
}

TEST(Invariants, PassOnWellFormedPipeline) {
  EdgeList edges = SmallCountry();
  edges.Normalize();
  const Graph g = Graph::FromEdgeList(edges);
  EXPECT_EQ(CheckCsrWellFormed(g), "");
  const CHData ch = BuildContractionHierarchy(g);
  for (const SweepOrder order :
       {SweepOrder::kRankDescending, SweepOrder::kLevelNoReorder,
        SweepOrder::kLevelReordered}) {
    Phast::Options options;
    options.order = order;
    const Phast engine(ch, options);
    EXPECT_EQ(CheckEngineTopology(engine, &ch), "");
    Phast::Workspace ws = engine.MakeWorkspace(1);
    engine.ComputeTree(0, ws);
    EXPECT_EQ(CheckMarksClean(engine, ws), "");
  }
}

TEST(Invariants, HeapCheckerPassesOnRealHeap) {
  EXPECT_EQ(CheckHeapInvariants(/*seed=*/123, /*num_ops=*/600), "");
  EXPECT_EQ(CheckHeapInvariants(/*seed=*/7, /*num_ops=*/100), "");
}

// -------------------------------- oracle ------------------------------------

TEST(Oracle, CleanOnUnmutatedGraph) {
  const Oracle oracle(SmallCountry());
  std::string failing;
  const std::string diagnosis = oracle.RunAll(/*seed=*/1, &failing);
  EXPECT_EQ(diagnosis, "") << "config: " << failing;
}

TEST(Oracle, CleanOnHostileMutant) {
  // Zero weights, parallel arcs, near-2^32 weights, isolated vertices — the
  // exact instance features each satellite bug class lives in.
  const EdgeList mutant = MutateGraph(MakeBaseGraph(4), /*seed=*/4, 24);
  const Oracle oracle(mutant);
  std::string failing;
  const std::string diagnosis = oracle.RunAll(/*seed=*/4, &failing);
  EXPECT_EQ(diagnosis, "") << "config: " << failing;
}

TEST(Oracle, SingleConfigRunAgreesWithDijkstra) {
  const Oracle oracle(SmallCountry());
  const std::vector<VertexId> sources =
      OracleSources(oracle.GetGraph().NumVertices(), /*seed=*/2);
  OracleConfig config;
  config.k = 4;
  config.want_parents = true;
  EXPECT_EQ(oracle.RunConfig(config, sources), "");
}

TEST(Oracle, SourcesAreDeterministicAndInRange) {
  const std::vector<VertexId> a = OracleSources(50, 9);
  const std::vector<VertexId> b = OracleSources(50, 9);
  EXPECT_EQ(a, b);
  ASSERT_GE(a.size(), 16u);
  for (const VertexId s : a) EXPECT_LT(s, 50u);
  EXPECT_NE(a, OracleSources(50, 10));
}

// -------------------------------- fuzzer ------------------------------------

TEST(Fuzzer, ShortRunIsClean) {
  FuzzOptions options;
  options.master_seed = 1;
  options.iterations = 3;
  options.max_mutations = 12;
  const FuzzReport report = RunFuzz(options);
  EXPECT_EQ(report.iterations_run, 3u);
  EXPECT_TRUE(report.Clean())
      << report.failures.front().ReplayLine() << "\n"
      << report.failures.front().message;
}

TEST(Fuzzer, ReplayOfCleanCaseDoesNotReproduce) {
  std::string message;
  EXPECT_FALSE(ReplayCase(/*seed=*/1, /*mutations=*/8, "", &message))
      << message;
  // Single-config replay of a clean case is also clean.
  EXPECT_FALSE(ReplayCase(
      /*seed=*/1, /*mutations=*/8,
      "order=reordered,simd=scalar,init=implicit,parents=on,sweep=serial,k=4",
      &message))
      << message;
}

TEST(Fuzzer, ReplayLineIsWellFormed) {
  FuzzFailure failure;
  failure.seed = 77;
  failure.mutations = 5;
  failure.config = "invariants";
  const std::string line = failure.ReplayLine();
  EXPECT_NE(line.find("--replay"), std::string::npos);
  EXPECT_NE(line.find("--seed=77"), std::string::npos);
  EXPECT_NE(line.find("--mutations=5"), std::string::npos);
  EXPECT_NE(line.find("--config=invariants"), std::string::npos);
}

}  // namespace
}  // namespace phast::verify

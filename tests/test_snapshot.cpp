// Snapshot artifact tests: round-trip fidelity (bit-identical distances
// after save/load) and integrity rejection (truncation, bit flips, version
// and magic mismatches all fail with InputError, never a broken engine).

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "ch/ch_io.h"
#include "dijkstra/dijkstra.h"
#include "phast/phast.h"
#include "pq/dary_heap.h"
#include "server/snapshot.h"
#include "test_support.h"
#include "util/error.h"
#include "util/rng.h"

namespace phast::server {
namespace {

using phast::testing::CachedCountry;
using phast::testing::CachedCountryCH;

constexpr uint32_t kSide = 20;

const Phast& Engine() {
  static const Phast engine(CachedCountryCH(kSide));
  return engine;
}

std::string Serialize(const Snapshot& snapshot) {
  std::ostringstream out;
  WriteSnapshot(snapshot, out);
  return out.str();
}

Snapshot Deserialize(const std::string& bytes) {
  std::istringstream in(bytes);
  return ReadSnapshot(in);
}

TEST(Snapshot, RoundTripProducesBitIdenticalDistances) {
  const Graph& graph = CachedCountry(kSide);
  const Phast& original = Engine();
  Snapshot loaded = Deserialize(Serialize(MakeSnapshot(original, &graph)));
  ASSERT_TRUE(loaded.has_graph);
  EXPECT_EQ(loaded.graph.NumVertices(), graph.NumVertices());
  EXPECT_EQ(loaded.graph.NumArcs(), graph.NumArcs());

  const Phast restored(std::move(loaded.layout));
  ASSERT_EQ(restored.NumVertices(), original.NumVertices());
  EXPECT_EQ(restored.NumLevels(), original.NumLevels());

  Phast::Workspace ws_a = original.MakeWorkspace();
  Phast::Workspace ws_b = restored.MakeWorkspace();
  Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    const VertexId source =
        static_cast<VertexId>(rng.NextBounded(original.NumVertices()));
    original.ComputeTree(source, ws_a);
    restored.ComputeTree(source, ws_b);
    const SsspResult ref = Dijkstra<BinaryHeap>(graph, source);
    for (VertexId v = 0; v < original.NumVertices(); ++v) {
      ASSERT_EQ(original.Distance(ws_a, v), restored.Distance(ws_b, v))
          << "source " << source << " vertex " << v;
      ASSERT_EQ(restored.Distance(ws_b, v), ref.dist[v]);
    }
  }
}

TEST(Snapshot, ExportLayoutRoundTripsThroughAdoptingConstructor) {
  const Phast& original = Engine();
  const Phast rebuilt(original.ExportLayout());
  Phast::Workspace ws_a = original.MakeWorkspace();
  Phast::Workspace ws_b = rebuilt.MakeWorkspace();
  original.ComputeTree(0, ws_a);
  rebuilt.ComputeTree(0, ws_b);
  for (VertexId v = 0; v < original.NumVertices(); ++v) {
    ASSERT_EQ(original.Distance(ws_a, v), rebuilt.Distance(ws_b, v));
  }
}

TEST(Snapshot, GraphSectionIsOptional) {
  const Snapshot loaded = Deserialize(Serialize(MakeSnapshot(Engine())));
  EXPECT_FALSE(loaded.has_graph);
  EXPECT_EQ(loaded.graph.NumVertices(), 0u);
  // A snapshot without the CH section (every pre-customization snapshot)
  // decodes as non-customizable.
  EXPECT_FALSE(loaded.has_ch);
}

TEST(Snapshot, HierarchySectionRoundTripsByteForByte) {
  const CHData& ch = CachedCountryCH(kSide);
  const Snapshot loaded = Deserialize(
      Serialize(MakeSnapshot(Engine(), &CachedCountry(kSide), &ch)));
  ASSERT_TRUE(loaded.has_ch);

  const auto serialize_ch = [](const CHData& data) {
    std::ostringstream out;
    WriteCH(data, out);
    return out.str();
  };
  EXPECT_EQ(serialize_ch(loaded.ch), serialize_ch(ch));
}

TEST(Snapshot, MismatchedHierarchyIsRejectedAtCapture) {
  const CHData& other = CachedCountryCH(kSide + 2);
  EXPECT_THROW((void)MakeSnapshot(Engine(), &CachedCountry(kSide), &other),
               InputError);
}

TEST(Snapshot, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "phast_snapshot_test.snap";
  WriteSnapshotFile(MakeSnapshot(Engine(), &CachedCountry(kSide)), path);
  const Snapshot loaded = ReadSnapshotFile(path);
  EXPECT_TRUE(loaded.has_graph);
  EXPECT_EQ(loaded.layout.num_vertices, Engine().NumVertices());
  std::remove(path.c_str());
}

TEST(Snapshot, MissingFileIsRejected) {
  EXPECT_THROW((void)ReadSnapshotFile("/nonexistent/phast.snap"), InputError);
}

TEST(Snapshot, TruncationAtAnyPointIsRejected) {
  const std::string bytes = Serialize(MakeSnapshot(Engine(), &CachedCountry(kSide)));
  // Cut in the header, the TOC, a payload, and one byte short of the end.
  for (const size_t keep :
       {size_t{0}, size_t{7}, size_t{24}, size_t{60}, bytes.size() / 3,
        bytes.size() / 2, bytes.size() - 1}) {
    ASSERT_LT(keep, bytes.size());
    EXPECT_THROW((void)Deserialize(bytes.substr(0, keep)), InputError)
        << "kept " << keep << " of " << bytes.size() << " bytes";
  }
}

TEST(Snapshot, TrailingGarbageIsRejected) {
  std::string bytes = Serialize(MakeSnapshot(Engine()));
  bytes.push_back('\0');
  EXPECT_THROW((void)Deserialize(bytes), InputError);
}

TEST(Snapshot, AnySingleBitFlipIsRejected) {
  const std::string bytes = Serialize(MakeSnapshot(Engine(), &CachedCountry(kSide)));
  // Sample offsets across the header (incl. the checksum field itself), the
  // TOC, and every payload region; a uniform stride keeps the test fast.
  const size_t stride = std::max<size_t>(1, bytes.size() / 97);
  size_t flipped = 0;
  for (size_t offset = 0; offset < bytes.size(); offset += stride) {
    for (const uint8_t mask : {uint8_t{0x01}, uint8_t{0x80}}) {
      std::string corrupted = bytes;
      corrupted[offset] = static_cast<char>(corrupted[offset] ^ mask);
      EXPECT_THROW((void)Deserialize(corrupted), InputError)
          << "bit flip at offset " << offset << " mask " << int(mask)
          << " went undetected";
      ++flipped;
    }
  }
  EXPECT_GE(flipped, 150u);  // sanity: the loop actually ran
}

TEST(Snapshot, WrongMagicIsRejected) {
  std::string bytes = Serialize(MakeSnapshot(Engine()));
  bytes[0] = 'X';
  EXPECT_THROW((void)Deserialize(bytes), InputError);
}

TEST(Snapshot, WrongVersionIsRejected) {
  std::string bytes = Serialize(MakeSnapshot(Engine()));
  bytes[8] = static_cast<char>(kSnapshotVersion + 1);  // version u32 LE at 8
  EXPECT_THROW((void)Deserialize(bytes), InputError);
}

TEST(Snapshot, StructurallyBrokenLayoutIsRejectedAtLoad) {
  // Integrity checks pass (the file is internally consistent) but the
  // permutation is not a permutation; the Phast adopting constructor must
  // reject it during ReadSnapshot.
  Snapshot snapshot = MakeSnapshot(Engine());
  ASSERT_GE(snapshot.layout.perm.size(), 2u);
  snapshot.layout.perm[1] = snapshot.layout.perm[0];  // duplicate entry
  EXPECT_THROW((void)Deserialize(Serialize(snapshot)), InputError);
}

TEST(Snapshot, MismatchedGraphIsRejectedAtCapture) {
  const Graph& other = CachedCountry(12);  // different vertex count
  EXPECT_THROW((void)MakeSnapshot(Engine(), &other), InputError);
}

TEST(Snapshot, Fnv1a64MatchesReferenceVectors) {
  // Reference values for the canonical FNV-1a 64-bit test strings.
  EXPECT_EQ(Fnv1a64("", 0), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a", 1), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(Fnv1a64("foobar", 6), 0x85944171f73967e8ULL);
}

}  // namespace
}  // namespace phast::server

// One-to-many distance-table tests: ComputeDistanceTable against
// per-source Dijkstra over the full engine cross-product — every
// MatrixMode on scalar and SIMD engines, single-tree vs k-batched, with
// duplicate sources/targets, padded tail chunks, empty sides, and a
// disconnected instance whose cross-component cells must stay +inf.

#include <gtest/gtest.h>

#include <vector>

#include "ch/contraction.h"
#include "dijkstra/dijkstra.h"
#include "graph/csr.h"
#include "graph/edge_list.h"
#include "phast/matrix.h"
#include "phast/phast.h"
#include "pq/dary_heap.h"
#include "test_support.h"
#include "util/rng.h"

namespace phast {
namespace {

using phast::testing::CachedCountry;
using phast::testing::CachedCountryCH;

constexpr uint32_t kSide = 20;

const Phast& ScalarEngine() {
  static const Phast engine = [] {
    Phast::Options options;
    options.simd = SimdMode::kScalar;
    return Phast(CachedCountryCH(kSide), options);
  }();
  return engine;
}

const Phast& SimdEngine() {
  static const Phast engine(CachedCountryCH(kSide));  // simd = kAuto
  return engine;
}

constexpr MatrixMode kAllModes[] = {
    MatrixMode::kSingleTree, MatrixMode::kBatched, MatrixMode::kRestricted,
    MatrixMode::kRestrictedBatched};

std::vector<VertexId> RandomVertices(Rng& rng, size_t count) {
  const VertexId n = SimdEngine().NumVertices();
  std::vector<VertexId> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(static_cast<VertexId>(rng.NextBounded(n)));
  }
  return out;
}

/// The ground truth: one Dijkstra per distinct row source.
std::vector<Weight> ReferenceTable(const Graph& graph,
                                   const std::vector<VertexId>& sources,
                                   const std::vector<VertexId>& targets) {
  std::vector<Weight> table;
  table.reserve(sources.size() * targets.size());
  for (const VertexId s : sources) {
    const SsspResult ref = Dijkstra<BinaryHeap>(graph, s);
    for (const VertexId t : targets) table.push_back(ref.dist[t]);
  }
  return table;
}

void ExpectTableMatches(const std::vector<Weight>& got,
                        const std::vector<Weight>& want, size_t cols,
                        const char* label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << label << " cell (" << i / cols << ", "
                               << i % cols << ")";
  }
}

// --- full cross-product vs Dijkstra -----------------------------------------

TEST(Matrix, EveryModeMatchesDijkstraOnScalarAndSimdEngines) {
  Rng rng(31);
  std::vector<VertexId> sources = RandomVertices(rng, 6);
  sources.push_back(sources.front());  // duplicate row
  std::vector<VertexId> targets = RandomVertices(rng, 9);
  targets.push_back(targets.back());  // duplicate column

  const std::vector<Weight> want =
      ReferenceTable(CachedCountry(kSide), sources, targets);

  for (const Phast* engine : {&ScalarEngine(), &SimdEngine()}) {
    for (const MatrixMode mode : kAllModes) {
      for (const uint32_t k : {1u, 3u, 8u}) {
        MatrixOptions options;
        options.mode = mode;
        options.trees_per_sweep = k;
        const std::vector<Weight> got =
            ComputeDistanceTable(*engine, sources, targets, options);
        ExpectTableMatches(
            got, want, targets.size(),
            (std::string(ToString(mode)) + " k=" + std::to_string(k)).c_str());
      }
    }
  }
}

TEST(Matrix, AllModesAreBitIdenticalToEachOther) {
  Rng rng(57);
  const std::vector<VertexId> sources = RandomVertices(rng, 5);
  const std::vector<VertexId> targets = RandomVertices(rng, 7);

  MatrixOptions base;
  base.mode = MatrixMode::kSingleTree;
  const std::vector<Weight> reference =
      ComputeDistanceTable(ScalarEngine(), sources, targets, base);

  for (const Phast* engine : {&ScalarEngine(), &SimdEngine()}) {
    for (const MatrixMode mode : kAllModes) {
      MatrixOptions options;
      options.mode = mode;
      EXPECT_EQ(ComputeDistanceTable(*engine, sources, targets, options),
                reference)
          << ToString(mode);
    }
  }
}

// --- edge cases -------------------------------------------------------------

TEST(Matrix, EmptySourcesOrTargetsYieldEmptyTable) {
  Rng rng(3);
  const std::vector<VertexId> some = RandomVertices(rng, 4);
  const std::vector<VertexId> none;
  for (const MatrixMode mode : kAllModes) {
    MatrixOptions options;
    options.mode = mode;
    EXPECT_TRUE(
        ComputeDistanceTable(SimdEngine(), none, some, options).empty())
        << ToString(mode);
    EXPECT_TRUE(
        ComputeDistanceTable(SimdEngine(), some, none, options).empty())
        << ToString(mode);
    EXPECT_TRUE(
        ComputeDistanceTable(SimdEngine(), none, none, options).empty())
        << ToString(mode);
  }
}

TEST(Matrix, DuplicateSourcesRepeatTheirRowsExactly) {
  Rng rng(19);
  const std::vector<VertexId> base = RandomVertices(rng, 3);
  const std::vector<VertexId> targets = RandomVertices(rng, 5);
  // Every row twice: [s0, s0, s1, s1, s2, s2].
  std::vector<VertexId> doubled;
  for (const VertexId s : base) {
    doubled.push_back(s);
    doubled.push_back(s);
  }
  const std::vector<Weight> table =
      ComputeDistanceTable(SimdEngine(), doubled, targets);
  const size_t cols = targets.size();
  ASSERT_EQ(table.size(), doubled.size() * cols);
  for (size_t pair = 0; pair < base.size(); ++pair) {
    for (size_t j = 0; j < cols; ++j) {
      EXPECT_EQ(table[(2 * pair) * cols + j], table[(2 * pair + 1) * cols + j])
          << "row pair " << pair << " col " << j;
    }
  }
}

TEST(Matrix, BatchedTailNarrowerThanSweepWidthIsCorrect) {
  Rng rng(83);
  // 5 rows with trees_per_sweep=8: the only chunk is a padded tail.
  const std::vector<VertexId> sources = RandomVertices(rng, 5);
  const std::vector<VertexId> targets = RandomVertices(rng, 6);
  const std::vector<Weight> want =
      ReferenceTable(CachedCountry(kSide), sources, targets);
  for (const MatrixMode mode :
       {MatrixMode::kBatched, MatrixMode::kRestrictedBatched}) {
    MatrixOptions options;
    options.mode = mode;
    options.trees_per_sweep = 8;
    ExpectTableMatches(
        ComputeDistanceTable(SimdEngine(), sources, targets, options), want,
        targets.size(), ToString(mode));
  }
}

TEST(Matrix, DisconnectedPairsStayAtInfinity) {
  // Two components: {0,1,2} cyclic and {3,4} back-and-forth. Cells that
  // cross between them must be kInfWeight in every mode.
  EdgeList edges(5);
  edges.AddArc(0, 1, 10);
  edges.AddArc(1, 2, 20);
  edges.AddArc(2, 0, 30);
  edges.AddBidirectional(3, 4, 7);
  const Graph graph = Graph::FromEdgeList(edges);
  const CHData ch = BuildContractionHierarchy(graph);
  const Phast engine(ch);

  const std::vector<VertexId> sources = {0, 3, 2};
  const std::vector<VertexId> targets = {4, 1, 0, 3};
  const std::vector<Weight> want = ReferenceTable(graph, sources, targets);
  for (const MatrixMode mode : kAllModes) {
    MatrixOptions options;
    options.mode = mode;
    options.trees_per_sweep = 4;
    const std::vector<Weight> got =
        ComputeDistanceTable(engine, sources, targets, options);
    ExpectTableMatches(got, want, targets.size(), ToString(mode));
  }
  // Spot-check the cross-component cells really are +inf.
  EXPECT_EQ(want[0], kInfWeight);  // 0 -> 4
  EXPECT_EQ(want[1 * targets.size() + 1], kInfWeight);  // 3 -> 1
}

}  // namespace
}  // namespace phast

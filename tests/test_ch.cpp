#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "ch/ch_data.h"
#include "ch/contraction.h"
#include "ch/query.h"
#include "dijkstra/dijkstra.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "pq/dary_heap.h"
#include "util/rng.h"

namespace phast {
namespace {

Graph CountryGraph(uint32_t side, Metric metric = Metric::kTravelTime,
                   uint64_t seed = 1) {
  CountryParams params;
  params.width = side;
  params.height = side;
  params.metric = metric;
  params.seed = seed;
  const GeneratedGraph g = GenerateCountry(params);
  return Graph::FromEdgeList(LargestStronglyConnectedComponent(g.edges).edges);
}

TEST(Contraction, RanksAreAPermutation) {
  const Graph g = CountryGraph(12);
  const CHData ch = BuildContractionHierarchy(g);
  std::vector<bool> seen(ch.num_vertices, false);
  for (const uint32_t r : ch.rank) {
    ASSERT_LT(r, ch.num_vertices);
    EXPECT_FALSE(seen[r]);
    seen[r] = true;
  }
}

TEST(Contraction, ArcDirectionSetsRespectRanks) {
  const Graph g = CountryGraph(12);
  const CHData ch = BuildContractionHierarchy(g);
  for (const CHArc& a : ch.up_arcs) {
    EXPECT_LT(ch.rank[a.tail], ch.rank[a.head]);
  }
  for (const CHArc& a : ch.down_arcs) {
    EXPECT_GT(ch.rank[a.tail], ch.rank[a.head]);
  }
}

TEST(Contraction, Lemma41LevelsDecreaseAlongDownArcs) {
  const Graph g = CountryGraph(14);
  const CHData ch = BuildContractionHierarchy(g);
  for (const CHArc& a : ch.down_arcs) {
    EXPECT_GT(ch.level[a.tail], ch.level[a.head]);
  }
  for (const CHArc& a : ch.up_arcs) {
    EXPECT_LT(ch.level[a.tail], ch.level[a.head]);
  }
}

TEST(Contraction, EveryOriginalArcPresent) {
  // Each original arc must appear (possibly improved by a parallel
  // shortcut) in exactly one of the two direction sets.
  const Graph g = CountryGraph(10);
  const CHData ch = BuildContractionHierarchy(g);
  std::map<std::pair<VertexId, VertexId>, Weight> ch_arcs;
  for (const CHArc& a : ch.up_arcs) ch_arcs[{a.tail, a.head}] = a.weight;
  for (const CHArc& a : ch.down_arcs) ch_arcs[{a.tail, a.head}] = a.weight;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (const Arc& arc : g.ArcsOf(v)) {
      const auto it = ch_arcs.find({v, arc.other});
      ASSERT_NE(it, ch_arcs.end());
      EXPECT_LE(it->second, arc.weight);
    }
  }
}

TEST(Contraction, ShortcutWeightsAreRealPathLengths) {
  // A shortcut (u,w) via v must never undercut the true distance.
  const Graph g = CountryGraph(10);
  const CHData ch = BuildContractionHierarchy(g);
  BinaryHeap queue(g.NumVertices());
  std::vector<Weight> dist(g.NumVertices());
  int checked = 0;
  for (const CHArc& a : ch.up_arcs) {
    if (!a.IsShortcut() || checked >= 25) continue;
    ++checked;
    DijkstraInto(g, a.tail, queue, dist, {});
    EXPECT_GE(a.weight, dist[a.head]);
  }
}

TEST(Contraction, StatsReported) {
  const Graph g = CountryGraph(12);
  CHStats stats;
  const CHData ch = BuildContractionHierarchy(g, CHParams{}, &stats);
  EXPECT_EQ(stats.shortcuts_added, ch.num_shortcuts);
  EXPECT_GT(stats.witness_searches, 0u);
  EXPECT_EQ(stats.num_levels, ch.NumLevels());
  EXPECT_GE(stats.seconds, 0.0);
}

TEST(Contraction, LevelHistogramSumsToN) {
  const Graph g = CountryGraph(12);
  const CHData ch = BuildContractionHierarchy(g);
  const std::vector<uint64_t> hist = ch.LevelHistogram();
  uint64_t total = 0;
  for (const uint64_t c : hist) total += c;
  EXPECT_EQ(total, ch.num_vertices);
  // Road-like graphs put the bulk of vertices in the lowest levels (Fig 1).
  EXPECT_GT(hist[0], ch.num_vertices / 4);
}

TEST(Contraction, FewLevelsOnRoadNetworks) {
  const Graph g = CountryGraph(20);
  const CHData ch = BuildContractionHierarchy(g);
  // Orders of magnitude fewer levels than vertices (paper: ~140 for 18M).
  EXPECT_LT(ch.NumLevels(), g.NumVertices() / 4);
}

TEST(Contraction, PathGraph) {
  const Graph g = Graph::FromEdgeList(GeneratePath(10, 2));
  const CHData ch = BuildContractionHierarchy(g);
  CHQuery query(ch);
  EXPECT_EQ(query.Distance(0, 9), 18u);
  EXPECT_EQ(query.Distance(9, 0), 18u);
  EXPECT_EQ(query.Distance(3, 7), 8u);
}

TEST(Contraction, SingleVertexGraph) {
  EdgeList edges(1);
  const CHData ch = BuildContractionHierarchy(Graph::FromEdgeList(edges));
  EXPECT_EQ(ch.num_vertices, 1u);
  EXPECT_TRUE(ch.up_arcs.empty());
  CHQuery query(ch);
  EXPECT_EQ(query.Distance(0, 0), 0u);
}

TEST(Contraction, StarGraph) {
  const Graph g = Graph::FromEdgeList(GenerateStar(8, 3));
  const CHData ch = BuildContractionHierarchy(g);
  CHQuery query(ch);
  EXPECT_EQ(query.Distance(1, 2), 6u);
  EXPECT_EQ(query.Distance(0, 5), 3u);
}

TEST(Contraction, DisconnectedGraph) {
  EdgeList edges(4);
  edges.AddBidirectional(0, 1, 5);
  edges.AddBidirectional(2, 3, 7);
  const CHData ch = BuildContractionHierarchy(Graph::FromEdgeList(edges));
  CHQuery query(ch);
  EXPECT_EQ(query.Distance(0, 1), 5u);
  EXPECT_EQ(query.Distance(0, 2), kInfWeight);
}

TEST(Contraction, ZeroWeightArcsSupported) {
  EdgeList edges(4);
  edges.AddBidirectional(0, 1, 0);
  edges.AddBidirectional(1, 2, 3);
  edges.AddBidirectional(2, 3, 0);
  const CHData ch = BuildContractionHierarchy(Graph::FromEdgeList(edges));
  CHQuery query(ch);
  EXPECT_EQ(query.Distance(0, 3), 3u);
}

// Exhaustive distance agreement with Dijkstra over many graph families.
class ChCorrectness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChCorrectness, AllPairsMatchDijkstraOnCountry) {
  const Graph g = CountryGraph(8, Metric::kTravelTime, GetParam());
  const CHData ch = BuildContractionHierarchy(g);
  CHQuery query(ch);
  Rng rng(GetParam());
  for (int i = 0; i < 8; ++i) {
    const VertexId s = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    const SsspResult ref = Dijkstra<BinaryHeap>(g, s);
    for (int j = 0; j < 20; ++j) {
      const VertexId t =
          static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
      EXPECT_EQ(query.Distance(s, t), ref.dist[t]) << "s=" << s << " t=" << t;
    }
  }
}

TEST_P(ChCorrectness, MatchesDijkstraOnRandomGnm) {
  // G(n,m) is hostile to CH (no hierarchy) but must stay correct.
  const EdgeList edges = GenerateGnm(80, 320, 50, GetParam());
  const Graph g = Graph::FromEdgeList(edges);
  const CHData ch = BuildContractionHierarchy(g);
  CHQuery query(ch);
  Rng rng(GetParam() + 99);
  for (int i = 0; i < 5; ++i) {
    const VertexId s = static_cast<VertexId>(rng.NextBounded(80));
    const SsspResult ref = Dijkstra<BinaryHeap>(g, s);
    for (VertexId t = 0; t < 80; ++t) {
      EXPECT_EQ(query.Distance(s, t), ref.dist[t]) << "s=" << s << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChCorrectness,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(ChQuery, UnpackedPathIsRealAndShortest) {
  const Graph g = CountryGraph(10);
  const CHData ch = BuildContractionHierarchy(g);
  CHQuery query(ch);
  Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    const VertexId s = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    const VertexId t = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    const PointToPointResult r = query.Query(s, t, /*want_path=*/true);
    if (r.dist == kInfWeight) continue;
    ASSERT_FALSE(r.path.empty());
    EXPECT_EQ(r.path.front(), s);
    EXPECT_EQ(r.path.back(), t);
    Weight total = 0;
    for (size_t j = 0; j + 1 < r.path.size(); ++j) {
      Weight arc_weight = kInfWeight;
      for (const Arc& a : g.ArcsOf(r.path[j])) {
        if (a.other == r.path[j + 1]) {
          arc_weight = std::min(arc_weight, a.weight);
        }
      }
      ASSERT_NE(arc_weight, kInfWeight)
          << "unpacked path uses a non-existent arc";
      total += arc_weight;
    }
    EXPECT_EQ(total, r.dist);
  }
}

TEST(ChQuery, UpwardSearchLabelsAreUpperBounds) {
  const Graph g = CountryGraph(10);
  const CHData ch = BuildContractionHierarchy(g);
  CHQuery query(ch);
  const SsspResult ref = Dijkstra<BinaryHeap>(g, 0);
  std::vector<std::pair<VertexId, Weight>> space;
  query.UpwardSearch(0, &space);
  EXPECT_FALSE(space.empty());
  for (const auto& [v, label] : space) {
    EXPECT_GE(label, ref.dist[v]);  // upper bound, §II-B
  }
}

TEST(ChQuery, UpwardSearchSpaceIsSmall) {
  const Graph g = CountryGraph(24);
  const CHData ch = BuildContractionHierarchy(g);
  CHQuery query(ch);
  std::vector<VertexId> sources;
  Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    sources.push_back(static_cast<VertexId>(rng.NextBounded(g.NumVertices())));
  }
  const double avg = query.AverageUpwardSearchSpace(sources);
  // The whole point of CH: the upward search space is a sliver of n.
  EXPECT_LT(avg, g.NumVertices() / 5.0);
}

TEST(ChQuery, FewerShortcutsThanOriginalArcsOnRoads) {
  const Graph g = CountryGraph(20);
  const CHData ch = BuildContractionHierarchy(g);
  EXPECT_LT(ch.num_shortcuts, g.NumArcs());  // paper §II-B for Europe
}

TEST(ChQuery, DistanceMetricYieldsMoreLevels) {
  const Graph time_graph = CountryGraph(16, Metric::kTravelTime, 7);
  const Graph dist_graph = CountryGraph(16, Metric::kTravelDistance, 7);
  const CHData ch_time = BuildContractionHierarchy(time_graph);
  const CHData ch_dist = BuildContractionHierarchy(dist_graph);
  // §VIII-G: travel distances weaken the hierarchy: at least as many levels.
  EXPECT_GE(ch_dist.NumLevels() + 2, ch_time.NumLevels());
}

}  // namespace
}  // namespace phast

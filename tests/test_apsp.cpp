#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "apps/apsp.h"
#include "dijkstra/dijkstra.h"
#include "phast/phast.h"
#include "pq/dary_heap.h"
#include "test_support.h"
#include "util/rng.h"

namespace phast {
namespace {

using phast::testing::CachedCountry;
using phast::testing::CachedCountryCH;

std::vector<VertexId> RandomVertices(VertexId n, size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<VertexId> out(count);
  for (auto& v : out) v = static_cast<VertexId>(rng.NextBounded(n));
  return out;
}

TEST(DistanceTable, AccessorsAndLayout) {
  DistanceTable table(2, 3);
  EXPECT_EQ(table.NumSources(), 2u);
  EXPECT_EQ(table.NumTargets(), 3u);
  EXPECT_EQ(table.At(1, 2), kInfWeight);  // starts at infinity
  table.Set(1, 2, 42);
  EXPECT_EQ(table.At(1, 2), 42u);
  EXPECT_EQ(table.At(0, 2), kInfWeight);
  EXPECT_EQ(table.SizeBytes(), 24u);
}

class TableStrategies : public ::testing::TestWithParam<TableStrategy> {};

TEST_P(TableStrategies, MatchesDijkstra) {
  const Graph& g = CachedCountry(10);
  const Phast engine(CachedCountryCH(10));
  const std::vector<VertexId> sources = RandomVertices(g.NumVertices(), 6, 1);
  const std::vector<VertexId> targets = RandomVertices(g.NumVertices(), 9, 2);

  TableOptions options;
  options.strategy = GetParam();
  options.trees_per_sweep = 4;
  const DistanceTable table =
      ComputeDistanceTable(engine, sources, targets, options);

  for (size_t s = 0; s < sources.size(); ++s) {
    const SsspResult ref = Dijkstra<BinaryHeap>(g, sources[s]);
    for (size_t t = 0; t < targets.size(); ++t) {
      EXPECT_EQ(table.At(s, t), ref.dist[targets[t]])
          << "s=" << sources[s] << " t=" << targets[t];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, TableStrategies,
                         ::testing::Values(TableStrategy::kFullSweep,
                                           TableStrategy::kRestrictedSweep,
                                           TableStrategy::kAuto),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case TableStrategy::kFullSweep:
                               return "full";
                             case TableStrategy::kRestrictedSweep:
                               return "restricted";
                             default:
                               return "auto";
                           }
                         });

TEST(DistanceTableCompute, StrategiesAgreeExactly) {
  const Graph& g = CachedCountry(12);
  const Phast engine(CachedCountryCH(12));
  const std::vector<VertexId> sources = RandomVertices(g.NumVertices(), 8, 5);
  const std::vector<VertexId> targets = RandomVertices(g.NumVertices(), 15, 6);
  TableOptions full;
  full.strategy = TableStrategy::kFullSweep;
  TableOptions restricted;
  restricted.strategy = TableStrategy::kRestrictedSweep;
  EXPECT_EQ(ComputeDistanceTable(engine, sources, targets, full),
            ComputeDistanceTable(engine, sources, targets, restricted));
}

TEST(DistanceTableCompute, FullApspOnSmallGraph) {
  const Graph& g = CachedCountry(7);
  const Phast engine(CachedCountryCH(7));
  std::vector<VertexId> all(g.NumVertices());
  std::iota(all.begin(), all.end(), VertexId{0});
  const DistanceTable apsp = ComputeDistanceTable(engine, all, all);
  // Spot-check symmetry: the generator's arcs are symmetric, so d(u,v) ==
  // d(v,u) on this instance.
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    const size_t u = rng.NextBounded(g.NumVertices());
    const size_t v = rng.NextBounded(g.NumVertices());
    EXPECT_EQ(apsp.At(u, v), apsp.At(v, u));
  }
  // Diagonal is zero.
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(apsp.At(v, v), 0u);
  }
}

TEST(DistanceTableCompute, DuplicateSourcesAndTargets) {
  const Phast engine(CachedCountryCH(8));
  const std::vector<VertexId> sources = {5, 5};
  const std::vector<VertexId> targets = {9, 9, 5};
  const DistanceTable table = ComputeDistanceTable(engine, sources, targets);
  EXPECT_EQ(table.At(0, 0), table.At(1, 1));
  EXPECT_EQ(table.At(0, 2), 0u);
}

TEST(DistanceTableCompute, RejectsEmptyInputs) {
  const Phast engine(CachedCountryCH(8));
  const std::vector<VertexId> some = {1};
  EXPECT_THROW(ComputeDistanceTable(engine, {}, some), InputError);
  EXPECT_THROW(ComputeDistanceTable(engine, some, {}), InputError);
}

}  // namespace
}  // namespace phast

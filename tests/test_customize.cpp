// Metric customization (DESIGN.md §10): re-deriving every G+ arc weight for
// a new metric over a fixed witness-free topology must reproduce, byte for
// byte, the hierarchy a fresh contraction of the re-weighted graph would
// emit — and therefore exact distances. These tests pin that contract, the
// thread-count determinism of the per-level relaxation, the saturating
// weight arithmetic near kInfWeight (the overflow bugfix), the engine-side
// weight re-export, and every topology-mismatch error path.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "ch/ch_data.h"
#include "ch/ch_io.h"
#include "ch/contraction.h"
#include "ch/customize.h"
#include "ch/query.h"
#include "dijkstra/dijkstra.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "phast/phast.h"
#include "pq/dary_heap.h"
#include "util/error.h"
#include "util/rng.h"

namespace phast {
namespace {

EdgeList CountryEdges(uint32_t side, uint64_t seed) {
  CountryParams params;
  params.width = side;
  params.height = side;
  params.seed = seed;
  const GeneratedGraph g = GenerateCountry(params);
  EdgeList edges = LargestStronglyConnectedComponent(g.edges).edges;
  edges.Normalize();
  return edges;
}

/// Same topology, seeded fresh weights — the "new metric" of every test.
EdgeList ReweightEdges(const EdgeList& edges, uint64_t seed) {
  EdgeList out = edges;
  Rng rng(seed);
  for (Edge& e : out.MutableEdges()) {
    e.weight = static_cast<Weight>(rng.NextInRange(1, 100'000));
  }
  return out;
}

CHParams CustomizableParams(uint32_t threads = 1) {
  CHParams params;
  params.witness_pruning = false;
  params.threads = threads;
  return params;
}

std::string SerializedBytes(const CHData& ch) {
  std::ostringstream out;
  WriteCH(ch, out);
  return out.str();
}

void ExpectDistancesMatchDijkstra(const CHData& ch, const Graph& g,
                                  uint64_t seed, int num_sources = 4) {
  CHQuery query(ch);
  Rng rng(seed);
  for (int i = 0; i < num_sources; ++i) {
    const VertexId s = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    const SsspResult ref = Dijkstra<BinaryHeap>(g, s);
    for (VertexId t = 0; t < g.NumVertices(); ++t) {
      ASSERT_EQ(query.Distance(s, t), ref.dist[t]) << "s=" << s << " t=" << t;
    }
  }
}

// --- correctness of the witness-free build mode itself -------------------

TEST(WitnessFreeContraction, AnswersDijkstraExactDistances) {
  const EdgeList edges = CountryEdges(9, 1);
  const Graph g = Graph::FromEdgeList(edges);
  const CHData ch = BuildContractionHierarchy(g, CustomizableParams());
  ExpectDistancesMatchDijkstra(ch, g, 17);
}

TEST(WitnessFreeContraction, TopologyIsMetricIndependent) {
  // The whole premise: contraction order, ranks, levels, and arc sets of a
  // witness-free build depend only on the structure, never on the weights.
  const EdgeList base = CountryEdges(8, 2);
  const CHData a =
      BuildContractionHierarchy(Graph::FromEdgeList(base), CustomizableParams());
  const CHData b = BuildContractionHierarchy(
      Graph::FromEdgeList(ReweightEdges(base, 99)), CustomizableParams());
  EXPECT_EQ(a.rank, b.rank);
  EXPECT_EQ(a.level, b.level);
  ASSERT_EQ(a.up_arcs.size(), b.up_arcs.size());
  ASSERT_EQ(a.down_arcs.size(), b.down_arcs.size());
  for (size_t i = 0; i < a.up_arcs.size(); ++i) {
    EXPECT_EQ(a.up_arcs[i].tail, b.up_arcs[i].tail);
    EXPECT_EQ(a.up_arcs[i].head, b.up_arcs[i].head);
  }
}

// --- the tentpole contract: customize == rebuild, byte for byte ----------

TEST(Customize, MatchesFreshRebuildByteForByte) {
  const EdgeList base = CountryEdges(10, 3);
  const Graph g = Graph::FromEdgeList(base);
  CHData ch = BuildContractionHierarchy(g, CustomizableParams());

  for (const uint64_t metric_seed : {11u, 12u, 13u}) {
    SCOPED_TRACE("metric_seed=" + std::to_string(metric_seed));
    const Graph reweighted =
        Graph::FromEdgeList(ReweightEdges(base, metric_seed));
    CustomizeStats stats;
    CustomizeWeights(ch, reweighted, {}, &stats);
    const CHData rebuilt =
        BuildContractionHierarchy(reweighted, CustomizableParams());
    EXPECT_EQ(ch.up_arcs, rebuilt.up_arcs);
    EXPECT_EQ(ch.down_arcs, rebuilt.down_arcs);
    EXPECT_EQ(SerializedBytes(ch), SerializedBytes(rebuilt));
    EXPECT_EQ(stats.arcs, ch.up_arcs.size() + ch.down_arcs.size());
    EXPECT_EQ(stats.original_arcs, base.NumArcs());
    EXPECT_EQ(stats.levels, ch.NumLevels());
    EXPECT_GT(stats.triangles_relaxed, 0u);
    EXPECT_FALSE(stats.profile.ToJson().empty());
  }
}

TEST(Customize, RoundTripToOriginalMetricRestoresOriginalBytes) {
  const EdgeList base = CountryEdges(9, 4);
  const Graph g = Graph::FromEdgeList(base);
  CHData ch = BuildContractionHierarchy(g, CustomizableParams());
  const std::string original = SerializedBytes(ch);
  CustomizeWeights(ch, Graph::FromEdgeList(ReweightEdges(base, 5)));
  EXPECT_NE(SerializedBytes(ch), original);  // the metric actually moved
  CustomizeWeights(ch, g);
  EXPECT_EQ(SerializedBytes(ch), original);
}

TEST(Customize, CustomizedDistancesMatchDijkstraOnReweightedGraph) {
  const EdgeList base = CountryEdges(10, 6);
  CHData ch =
      BuildContractionHierarchy(Graph::FromEdgeList(base), CustomizableParams());
  const Graph reweighted = Graph::FromEdgeList(ReweightEdges(base, 21));
  CustomizeWeights(ch, reweighted);
  ExpectDistancesMatchDijkstra(ch, reweighted, 22);
}

TEST(Customize, BitIdenticalForEveryThreadCount) {
  const EdgeList base = CountryEdges(12, 7);
  const Graph g = Graph::FromEdgeList(base);
  const CHData pristine = BuildContractionHierarchy(g, CustomizableParams());
  const Graph reweighted = Graph::FromEdgeList(ReweightEdges(base, 31));

  CHData reference = pristine;
  CustomizeOptions options;
  options.threads = 1;
  CustomizeWeights(reference, reweighted, options);
  const std::string ref_bytes = SerializedBytes(reference);

  for (const uint32_t threads : {2u, 8u, 0u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    CHData ch = pristine;
    options.threads = threads;
    CustomizeStats stats;
    CustomizeWeights(ch, reweighted, options, &stats);
    EXPECT_EQ(SerializedBytes(ch), ref_bytes);
    EXPECT_GE(stats.profile.threads, 1u);
  }
}

// --- overflow saturation (the weight-overflow bugfix) --------------------

TEST(Customize, ShortcutWeightsSaturateAtInfinity) {
  // Directed cycle with weights near kInfWeight: whichever vertex contracts
  // first spans a shortcut whose triangle sum overflows 32 bits. It must
  // clamp to kInfWeight (unreachable), not wrap to a tiny reachable weight.
  const Weight huge = kInfWeight - 16;
  EdgeList edges(4);
  edges.AddArc(0, 1, huge);
  edges.AddArc(1, 2, huge);
  edges.AddArc(2, 3, huge);
  edges.AddArc(3, 0, huge);
  edges.Normalize();
  const Graph g = Graph::FromEdgeList(edges);
  CHData ch = BuildContractionHierarchy(g, CustomizableParams());
  CustomizeWeights(ch, g);

  bool found_shortcut = false;
  for (const CHArc& a : ch.up_arcs) {
    if (a.IsShortcut()) {
      found_shortcut = true;
      EXPECT_EQ(a.weight, kInfWeight);
    }
  }
  for (const CHArc& a : ch.down_arcs) {
    if (a.IsShortcut()) {
      found_shortcut = true;
      EXPECT_EQ(a.weight, kInfWeight);
    }
  }
  ASSERT_TRUE(found_shortcut);

  // And the saturated hierarchy still byte-matches a fresh rebuild.
  const CHData rebuilt = BuildContractionHierarchy(g, CustomizableParams());
  EXPECT_EQ(SerializedBytes(ch), SerializedBytes(rebuilt));
}

TEST(Customize, SaturatedShortcutNeverBeatsAFiniteOriginalArc) {
  // Diamond with a direct arc: 0 -> 2 costs 7 while 0 -> 1 -> 2 overflows.
  // The customized (0, 2) weight must stay 7 — a wrapped sum would replace
  // it with a bogus small weight and corrupt every query through the pair.
  EdgeList edges(3);
  edges.AddArc(0, 1, kInfWeight - 2);
  edges.AddArc(1, 2, kInfWeight - 2);
  edges.AddArc(0, 2, 7);
  edges.Normalize();
  const Graph g = Graph::FromEdgeList(edges);
  CHData ch = BuildContractionHierarchy(g, CustomizableParams());
  CustomizeWeights(ch, g);
  CHQuery query(ch);
  EXPECT_EQ(query.Distance(0, 2), 7u);
}

// --- engine-side weight re-export ---------------------------------------

TEST(Customize, ReweightedLayoutMatchesFreshEngine) {
  const EdgeList base = CountryEdges(10, 8);
  const Graph g = Graph::FromEdgeList(base);
  CHData ch = BuildContractionHierarchy(g, CustomizableParams());

  for (const SweepOrder order :
       {SweepOrder::kLevelReordered, SweepOrder::kLevelNoReorder,
        SweepOrder::kRankDescending}) {
    SCOPED_TRACE("order=" + std::to_string(static_cast<int>(order)));
    PhastOptions options;
    options.order = order;
    const Phast engine(ch, options);

    const Graph reweighted = Graph::FromEdgeList(ReweightEdges(base, 41));
    CHData customized = ch;
    CustomizeWeights(customized, reweighted);
    const PhastLayout layout = engine.ExportReweightedLayout(customized);

    // Identical to exporting a fresh engine built on the customized data.
    const PhastLayout fresh = Phast(customized, options).ExportLayout();
    EXPECT_EQ(layout.perm, fresh.perm);
    EXPECT_EQ(layout.order, fresh.order);
    EXPECT_EQ(layout.down_first, fresh.down_first);
    EXPECT_EQ(layout.down_arcs, fresh.down_arcs);
    EXPECT_EQ(layout.up_first, fresh.up_first);
    EXPECT_EQ(layout.up_arcs, fresh.up_arcs);
    EXPECT_EQ(layout.level_begin, fresh.level_begin);

    // And the adopted engine answers the new metric exactly.
    const Phast swapped((PhastLayout(layout)));
    auto ws = swapped.MakeWorkspace();
    Rng rng(43);
    for (int i = 0; i < 3; ++i) {
      const VertexId s =
          static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
      const SsspResult ref = Dijkstra<BinaryHeap>(reweighted, s);
      swapped.ComputeTree(s, ws);
      for (VertexId t = 0; t < g.NumVertices(); ++t) {
        ASSERT_EQ(swapped.Distance(ws, t), ref.dist[t])
            << "s=" << s << " t=" << t;
      }
    }
  }
}

// --- error paths ---------------------------------------------------------

TEST(Customize, RejectsVertexCountMismatch) {
  const EdgeList base = CountryEdges(8, 9);
  CHData ch =
      BuildContractionHierarchy(Graph::FromEdgeList(base), CustomizableParams());
  EdgeList bigger = base;
  bigger.EnsureVertices(base.NumVertices() + 1);
  EXPECT_THROW(CustomizeWeights(ch, Graph::FromEdgeList(bigger)), InputError);
}

TEST(Customize, RejectsArcTheHierarchyLacks) {
  const EdgeList base = CountryEdges(8, 9);
  CHData ch =
      BuildContractionHierarchy(Graph::FromEdgeList(base), CustomizableParams());
  // An arc between two far-apart grid corners does not exist in the build
  // graph, so no G+ slot can hold its weight.
  EdgeList extra = base;
  extra.AddArc(0, base.NumVertices() - 1, 1);
  extra.Normalize();
  EXPECT_THROW(CustomizeWeights(ch, Graph::FromEdgeList(extra)), InputError);
}

TEST(Customize, RejectsParallelArcs) {
  const EdgeList base = CountryEdges(8, 9);
  CHData ch =
      BuildContractionHierarchy(Graph::FromEdgeList(base), CustomizableParams());
  EdgeList dup = base;
  const Edge first = dup.Edges().front();
  dup.AddArc(first.tail, first.head, first.weight + 1);  // not normalized
  EXPECT_THROW(CustomizeWeights(ch, Graph::FromEdgeList(dup)), InputError);
}

TEST(Customize, RejectsMissingBuildGraphArc) {
  const EdgeList base = CountryEdges(8, 9);
  CHData ch =
      BuildContractionHierarchy(Graph::FromEdgeList(base), CustomizableParams());
  EdgeList fewer(base.NumVertices());
  for (size_t i = 1; i < base.Edges().size(); ++i) {
    const Edge& e = base.Edges()[i];
    fewer.AddArc(e.tail, e.head, e.weight);
  }
  EXPECT_THROW(CustomizeWeights(ch, Graph::FromEdgeList(fewer)), InputError);
}

TEST(Customize, RejectsWitnessPrunedHierarchy) {
  // A default (witness-pruned) build of a road-like graph is not
  // triangle-closed; customizing over it would silently corrupt distances,
  // so it must be refused with a pointer at witness_pruning = false.
  const EdgeList base = CountryEdges(10, 10);
  const Graph g = Graph::FromEdgeList(base);
  CHData pruned = BuildContractionHierarchy(g);
  EXPECT_THROW(CustomizeWeights(pruned, g), InputError);
}

}  // namespace
}  // namespace phast

// Randomized property tests: for every graph family x seed combination, the
// whole algorithm stack must agree with reference Dijkstra and satisfy its
// structural invariants. These are the repository's broadest correctness
// sweep; each case builds its own (small) instance.
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "ch/ch_data.h"
#include "ch/contraction.h"
#include "ch/query.h"
#include "dijkstra/dijkstra.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "graph/reorder.h"
#include "phast/phast.h"
#include "phast/tree.h"
#include "pq/dary_heap.h"
#include "pq/dial_buckets.h"
#include "pq/multilevel_buckets.h"
#include "pq/radix_heap.h"
#include "util/rng.h"

namespace phast {
namespace {

enum class Family { kCountryTime, kCountryDist, kGeometric, kGnm, kGnmZero };

struct PropertyCase {
  Family family;
  uint64_t seed;
};

std::string CaseName(const ::testing::TestParamInfo<PropertyCase>& param_info) {
  const char* family = "";
  switch (param_info.param.family) {
    case Family::kCountryTime:
      family = "country_time";
      break;
    case Family::kCountryDist:
      family = "country_dist";
      break;
    case Family::kGeometric:
      family = "geometric";
      break;
    case Family::kGnm:
      family = "gnm";
      break;
    case Family::kGnmZero:
      family = "gnm_zero_weights";
      break;
  }
  return std::string(family) + "_seed" + std::to_string(param_info.param.seed);
}

EdgeList MakeFamily(const PropertyCase& c) {
  switch (c.family) {
    case Family::kCountryTime:
    case Family::kCountryDist: {
      CountryParams params;
      params.width = 9;
      params.height = 9;
      params.seed = c.seed;
      params.metric = c.family == Family::kCountryTime
                          ? Metric::kTravelTime
                          : Metric::kTravelDistance;
      return GenerateCountry(params).edges;
    }
    case Family::kGeometric:
      return GenerateRandomGeometric(120, 0.15, c.seed).edges;
    case Family::kGnm:
      return GenerateGnm(90, 360, 70, c.seed);
    case Family::kGnmZero: {
      // Includes zero-weight arcs: exercises the saturating arithmetic and
      // bucket queues at the boundary.
      EdgeList edges = GenerateGnm(60, 240, 5, c.seed);
      for (Edge& e : edges.MutableEdges()) {
        e.weight = e.weight <= 1 ? 0 : e.weight;
      }
      return edges;
    }
  }
  return {};
}

class StackProperties : public ::testing::TestWithParam<PropertyCase> {
 protected:
  void SetUp() override {
    graph_ = Graph::FromEdgeList(MakeFamily(GetParam()));
    ch_ = BuildContractionHierarchy(graph_);
  }

  Graph graph_;
  CHData ch_;
};

TEST_P(StackProperties, PhastEqualsDijkstraEverySource) {
  const Phast engine(ch_);
  Phast::Workspace ws = engine.MakeWorkspace();
  // Every ~7th source keeps the sweep fast while covering the graph.
  for (VertexId s = 0; s < graph_.NumVertices(); s += 7) {
    engine.ComputeTree(s, ws);
    const SsspResult ref = Dijkstra<BinaryHeap>(graph_, s);
    for (VertexId v = 0; v < graph_.NumVertices(); ++v) {
      ASSERT_EQ(engine.Distance(ws, v), ref.dist[v])
          << "s=" << s << " v=" << v;
    }
  }
}

TEST_P(StackProperties, AllQueuesAgree) {
  const Weight c = MaxArcWeight(graph_);
  Rng rng(GetParam().seed);
  for (int i = 0; i < 3; ++i) {
    const VertexId s =
        static_cast<VertexId>(rng.NextBounded(graph_.NumVertices()));
    const SsspResult binary = Dijkstra<BinaryHeap>(graph_, s);
    EXPECT_EQ(binary.dist, Dijkstra<FourHeap>(graph_, s).dist);
    EXPECT_EQ(binary.dist, (Dijkstra<DialBuckets>(graph_, s, c).dist));
    EXPECT_EQ(binary.dist, Dijkstra<RadixHeap>(graph_, s).dist);
    EXPECT_EQ(binary.dist, Dijkstra<MultiLevelBuckets>(graph_, s).dist);
  }
}

TEST_P(StackProperties, ChQueryMatchesAndUnpacksValidPaths) {
  CHQuery query(ch_);
  Rng rng(GetParam().seed + 1);
  for (int i = 0; i < 10; ++i) {
    const VertexId s =
        static_cast<VertexId>(rng.NextBounded(graph_.NumVertices()));
    const SsspResult ref = Dijkstra<BinaryHeap>(graph_, s);
    const VertexId t =
        static_cast<VertexId>(rng.NextBounded(graph_.NumVertices()));
    const PointToPointResult r = query.Query(s, t, /*want_path=*/true);
    ASSERT_EQ(r.dist, ref.dist[t]) << "s=" << s << " t=" << t;
    if (r.dist == kInfWeight) continue;
    // The unpacked path must consist of real arcs summing to the distance.
    Weight total = 0;
    for (size_t j = 0; j + 1 < r.path.size(); ++j) {
      Weight best = kInfWeight;
      for (const Arc& a : graph_.ArcsOf(r.path[j])) {
        if (a.other == r.path[j + 1]) best = std::min(best, a.weight);
      }
      ASSERT_NE(best, kInfWeight);
      total += best;
    }
    ASSERT_EQ(total, r.dist);
  }
}

TEST_P(StackProperties, HierarchyInvariants) {
  // Rank bijection.
  std::vector<bool> seen(ch_.num_vertices, false);
  for (const uint32_t r : ch_.rank) {
    ASSERT_LT(r, ch_.num_vertices);
    ASSERT_FALSE(seen[r]);
    seen[r] = true;
  }
  // Direction sets respect ranks and levels (Lemma 4.1).
  for (const CHArc& a : ch_.up_arcs) {
    ASSERT_LT(ch_.rank[a.tail], ch_.rank[a.head]);
    ASSERT_LT(ch_.level[a.tail], ch_.level[a.head]);
  }
  for (const CHArc& a : ch_.down_arcs) {
    ASSERT_GT(ch_.rank[a.tail], ch_.rank[a.head]);
    ASSERT_GT(ch_.level[a.tail], ch_.level[a.head]);
  }
  // Shortcut `via` vertices rank below both endpoints (unpacking relies on
  // this).
  for (const CHArc& a : ch_.up_arcs) {
    if (a.IsShortcut()) {
      ASSERT_LT(ch_.rank[a.via], ch_.rank[a.tail]);
      ASSERT_LT(ch_.rank[a.via], ch_.rank[a.head]);
    }
  }
}

TEST_P(StackProperties, MultiTreeKernelsAgreeWithSingle) {
  Phast::Options simd;
  simd.simd = SimdMode::kAuto;
  const Phast engine(ch_, simd);
  constexpr uint32_t k = 8;
  Phast::Workspace multi = engine.MakeWorkspace(k);
  Phast::Workspace single = engine.MakeWorkspace(1);
  Rng rng(GetParam().seed + 2);
  std::vector<VertexId> sources(k);
  for (auto& s : sources) {
    s = static_cast<VertexId>(rng.NextBounded(graph_.NumVertices()));
  }
  engine.ComputeTrees(sources, multi);
  for (uint32_t i = 0; i < k; ++i) {
    engine.ComputeTree(sources[i], single);
    for (VertexId v = 0; v < graph_.NumVertices(); ++v) {
      ASSERT_EQ(engine.Distance(multi, v, i), engine.Distance(single, v));
    }
  }
}

TEST_P(StackProperties, RelabelingInvariance) {
  // Distances are invariant under any vertex relabeling.
  const EdgeList edges = graph_.ToEdgeList();
  const Permutation perm =
      RandomPermutation(graph_.NumVertices(), GetParam().seed + 3);
  const Graph relabeled = Graph::FromEdgeList(ApplyPermutation(edges, perm));
  const CHData relabeled_ch = BuildContractionHierarchy(relabeled);
  const Phast engine(ch_);
  const Phast relabeled_engine(relabeled_ch);
  Phast::Workspace ws = engine.MakeWorkspace();
  Phast::Workspace rws = relabeled_engine.MakeWorkspace();
  Rng rng(GetParam().seed + 4);
  for (int i = 0; i < 3; ++i) {
    const VertexId s =
        static_cast<VertexId>(rng.NextBounded(graph_.NumVertices()));
    engine.ComputeTree(s, ws);
    relabeled_engine.ComputeTree(perm[s], rws);
    for (VertexId v = 0; v < graph_.NumVertices(); ++v) {
      ASSERT_EQ(engine.Distance(ws, v), relabeled_engine.Distance(rws, perm[v]));
    }
  }
}

std::vector<PropertyCase> AllCases() {
  std::vector<PropertyCase> cases;
  for (const Family family :
       {Family::kCountryTime, Family::kCountryDist, Family::kGeometric,
        Family::kGnm, Family::kGnmZero}) {
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      cases.push_back({family, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Families, StackProperties,
                         ::testing::ValuesIn(AllCases()), CaseName);

}  // namespace
}  // namespace phast

// Direct unit tests of the sweep kernels on hand-built topologies — the
// engine-level tests in test_phast*.cpp cover end-to-end behaviour; these
// pin down kernel semantics (saturation, marks, parents, ranges) in
// isolation, for every available instruction set.
#include <gtest/gtest.h>

#include <vector>

#include "phast/kernels.h"
#include "util/aligned.h"
#include "util/bit_vector.h"

namespace phast {
namespace {

/// A tiny fixed sweep: 4 positions; position p's vertex is p (identity
/// order). Arcs: 2 <- {0 (w=3), 1 (w=1)}, 3 <- {2 (w=2)}.
struct TinySweep {
  std::vector<ArcId> first = {0, 0, 0, 2, 3};
  std::vector<DownArc> arcs = {{0, 3}, {1, 1}, {2, 2}};
  AlignedVector<Weight> labels;
  std::vector<VertexId> parents;
  BitVector marks;
  uint32_t k;

  explicit TinySweep(uint32_t k_in) : k(k_in) {
    labels.assign(4 * k, kInfWeight);
    parents.assign(4 * k, kInvalidVertex);
    marks.Resize(4);
  }

  SweepArgs Args(bool use_marks, bool use_parents) {
    SweepArgs args;
    args.down_first = first.data();
    args.down_arcs = arcs.data();
    args.order = nullptr;
    args.num_vertices = 4;
    args.k = k;
    args.labels = labels.data();
    args.marks = use_marks ? marks.Words() : nullptr;
    args.parents = use_parents ? parents.data() : nullptr;
    return args;
  }
};

struct KernelCase {
  SimdMode mode;
  uint32_t k;
  const char* name;
};

class KernelSemantics : public ::testing::TestWithParam<KernelCase> {
 protected:
  void SetUp() override {
    if (!SimdModeAvailable(GetParam().mode)) {
      GTEST_SKIP() << "CPU lacks " << GetParam().name;
    }
  }
};

TEST_P(KernelSemantics, BasicRelaxation) {
  const auto [mode, k, name] = GetParam();
  TinySweep sweep(k);
  // Tree i: source labels 0 at vertex 0 with offset i (distinct trees).
  for (uint32_t i = 0; i < k; ++i) {
    sweep.labels[0 * k + i] = i;      // d(0) = i
    sweep.labels[1 * k + i] = 10 + i; // d(1) = 10 + i
  }
  const SweepKernelFn kernel = SelectSweepKernel(mode, k, false, false);
  kernel(sweep.Args(false, false), 0, 4);
  for (uint32_t i = 0; i < k; ++i) {
    // d(2) = min(d(0)+3, d(1)+1) = min(i+3, 11+i) = i+3.
    EXPECT_EQ(sweep.labels[2 * k + i], i + 3) << name << " tree " << i;
    // d(3) = d(2)+2.
    EXPECT_EQ(sweep.labels[3 * k + i], i + 5) << name << " tree " << i;
  }
}

TEST_P(KernelSemantics, SaturationAtInfinity) {
  const auto [mode, k, name] = GetParam();
  TinySweep sweep(k);
  // All sources at infinity: everything must stay exactly kInfWeight —
  // never wrap around to a small value.
  const SweepKernelFn kernel = SelectSweepKernel(mode, k, false, false);
  kernel(sweep.Args(false, false), 0, 4);
  for (size_t i = 0; i < sweep.labels.size(); ++i) {
    EXPECT_EQ(sweep.labels[i], kInfWeight) << name << " slot " << i;
  }
}

TEST_P(KernelSemantics, NearInfinitySaturates) {
  const auto [mode, k, name] = GetParam();
  TinySweep sweep(k);
  for (uint32_t i = 0; i < k; ++i) {
    sweep.labels[0 * k + i] = kInfWeight - 2;
    sweep.labels[1 * k + i] = kInfWeight - 1;
  }
  const SweepKernelFn kernel = SelectSweepKernel(mode, k, false, false);
  kernel(sweep.Args(false, false), 0, 4);
  for (uint32_t i = 0; i < k; ++i) {
    // d(0)+3 and d(1)+1 both exceed the label range: clamp to infinity.
    EXPECT_EQ(sweep.labels[2 * k + i], kInfWeight) << name;
    EXPECT_EQ(sweep.labels[3 * k + i], kInfWeight) << name;
  }
}

TEST_P(KernelSemantics, MarksGateStaleLabels) {
  const auto [mode, k, name] = GetParam();
  TinySweep sweep(k);
  // Vertex 0 marked with a real label; vertex 1 unmarked with stale
  // garbage that must be ignored.
  for (uint32_t i = 0; i < k; ++i) {
    sweep.labels[0 * k + i] = 5;
    sweep.labels[1 * k + i] = 0;  // stale!
    sweep.labels[2 * k + i] = 7;  // stale!
    sweep.labels[3 * k + i] = 0;  // stale!
  }
  sweep.marks.Set(0);
  const SweepKernelFn kernel = SelectSweepKernel(mode, k, false, true);
  kernel(sweep.Args(true, false), 0, 4);
  for (uint32_t i = 0; i < k; ++i) {
    EXPECT_EQ(sweep.labels[1 * k + i], kInfWeight) << name;  // reset to inf
    EXPECT_EQ(sweep.labels[2 * k + i], 8u) << name;          // 5 + 3 via 0
    EXPECT_EQ(sweep.labels[3 * k + i], 10u) << name;         // 8 + 2
  }
}

TEST_P(KernelSemantics, ParentsTrackWinningArc) {
  const auto [mode, k, name] = GetParam();
  TinySweep sweep(k);
  for (uint32_t i = 0; i < k; ++i) {
    sweep.labels[0 * k + i] = 0;
    sweep.labels[1 * k + i] = 1;
  }
  const SweepKernelFn kernel = SelectSweepKernel(mode, k, true, false);
  kernel(sweep.Args(false, true), 0, 4);
  for (uint32_t i = 0; i < k; ++i) {
    // d(2) = min(0+3, 1+1) = 2 via vertex 1.
    EXPECT_EQ(sweep.labels[2 * k + i], 2u) << name;
    EXPECT_EQ(sweep.parents[2 * k + i], 1u) << name;
    EXPECT_EQ(sweep.parents[3 * k + i], 2u) << name;
    // Sources were never improved: parents untouched.
    EXPECT_EQ(sweep.parents[0 * k + i], kInvalidVertex) << name;
  }
}

TEST_P(KernelSemantics, RangeRestriction) {
  const auto [mode, k, name] = GetParam();
  TinySweep sweep(k);
  for (uint32_t i = 0; i < k; ++i) sweep.labels[0 * k + i] = 0;
  const SweepKernelFn kernel = SelectSweepKernel(mode, k, false, false);
  kernel(sweep.Args(false, false), 0, 3);  // exclude position 3
  for (uint32_t i = 0; i < k; ++i) {
    EXPECT_EQ(sweep.labels[2 * k + i], 3u) << name;
    EXPECT_EQ(sweep.labels[3 * k + i], kInfWeight) << name;  // untouched
  }
  kernel(sweep.Args(false, false), 3, 4);  // now just position 3
  for (uint32_t i = 0; i < k; ++i) {
    EXPECT_EQ(sweep.labels[3 * k + i], 5u) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, KernelSemantics,
    ::testing::Values(KernelCase{SimdMode::kScalar, 1, "scalar1"},
                      KernelCase{SimdMode::kScalar, 2, "scalar2"},
                      KernelCase{SimdMode::kScalar, 5, "scalar5"},
                      KernelCase{SimdMode::kSse, 4, "sse4"},
                      KernelCase{SimdMode::kSse, 8, "sse8"},
                      KernelCase{SimdMode::kAvx2, 8, "avx8"},
                      KernelCase{SimdMode::kAvx2, 16, "avx16"}),
    [](const ::testing::TestParamInfo<KernelCase>& param_info) {
      return param_info.param.name;
    });

TEST(KernelOrderArray, NonIdentityOrderFollowed) {
  // Two vertices, swapped sweep order via the order array; the arc
  // (label-space tail 1) must be read correctly.
  std::vector<ArcId> first = {0, 0, 1};
  std::vector<DownArc> arcs = {{1, 4}};  // position 1's vertex gets 1 -> v
  std::vector<VertexId> order = {1, 0};  // position 0 = vertex 1, pos 1 = v0
  AlignedVector<Weight> labels = {kInfWeight, 2};  // d(v1) = 2
  SweepArgs args;
  args.down_first = first.data();
  args.down_arcs = arcs.data();
  args.order = order.data();
  args.num_vertices = 2;
  args.k = 1;
  args.labels = labels.data();
  const SweepKernelFn kernel =
      SelectSweepKernel(SimdMode::kScalar, 1, false, false);
  kernel(args, 0, 2);
  EXPECT_EQ(labels[0], 6u);  // vertex 0 improved via arc from vertex 1
  EXPECT_EQ(labels[1], 2u);
}

}  // namespace
}  // namespace phast

#include <gtest/gtest.h>

#include <set>

#include "graph/connectivity.h"
#include "graph/csr.h"
#include "graph/generators.h"

namespace phast {
namespace {

TEST(Scc, SingleCycleIsOneComponent) {
  const Graph g = Graph::FromEdgeList(GenerateCycle(5));
  const SccResult scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 1u);
}

TEST(Scc, DirectedPathIsAllSingletons) {
  EdgeList edges(4);
  edges.AddArc(0, 1, 1);
  edges.AddArc(1, 2, 1);
  edges.AddArc(2, 3, 1);
  const SccResult scc =
      StronglyConnectedComponents(Graph::FromEdgeList(edges));
  EXPECT_EQ(scc.num_components, 4u);
  std::set<uint32_t> distinct(scc.component.begin(), scc.component.end());
  EXPECT_EQ(distinct.size(), 4u);
}

TEST(Scc, TwoCyclesBridgedOneWay) {
  EdgeList edges(6);
  // Cycle A: 0->1->2->0, cycle B: 3->4->5->3, bridge 2->3.
  edges.AddArc(0, 1, 1);
  edges.AddArc(1, 2, 1);
  edges.AddArc(2, 0, 1);
  edges.AddArc(3, 4, 1);
  edges.AddArc(4, 5, 1);
  edges.AddArc(5, 3, 1);
  edges.AddArc(2, 3, 1);
  const SccResult scc =
      StronglyConnectedComponents(Graph::FromEdgeList(edges));
  EXPECT_EQ(scc.num_components, 2u);
  EXPECT_EQ(scc.component[0], scc.component[1]);
  EXPECT_EQ(scc.component[0], scc.component[2]);
  EXPECT_EQ(scc.component[3], scc.component[4]);
  EXPECT_NE(scc.component[0], scc.component[3]);
}

TEST(Scc, IsolatedVerticesAreSingletons) {
  EdgeList edges(3);
  edges.AddBidirectional(0, 1, 1);
  const SccResult scc =
      StronglyConnectedComponents(Graph::FromEdgeList(edges));
  EXPECT_EQ(scc.num_components, 2u);
}

TEST(Scc, EmptyGraph) {
  const SccResult scc =
      StronglyConnectedComponents(Graph::FromEdgeList(EdgeList{}));
  EXPECT_EQ(scc.num_components, 0u);
  EXPECT_TRUE(scc.component.empty());
}

TEST(Scc, DeepChainDoesNotOverflowStack) {
  // 200k-vertex bidirectional path: recursion would overflow here.
  const Graph g = Graph::FromEdgeList(GeneratePath(200000));
  const SccResult scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 1u);
}

TEST(LargestScc, ExtractsAndRelabels) {
  EdgeList edges(5);
  edges.AddBidirectional(0, 1, 3);
  edges.AddBidirectional(1, 2, 4);
  edges.AddArc(3, 4, 1);  // one-way appendix
  const SubgraphResult sub = LargestStronglyConnectedComponent(edges);
  EXPECT_EQ(sub.edges.NumVertices(), 3u);
  EXPECT_EQ(sub.edges.NumArcs(), 4u);
  EXPECT_EQ(sub.new_to_old.size(), 3u);
  EXPECT_EQ(sub.old_to_new[3], kInvalidVertex);
  EXPECT_EQ(sub.old_to_new[4], kInvalidVertex);
  // Weights survive relabeling.
  for (const Edge& e : sub.edges.Edges()) {
    EXPECT_TRUE(e.weight == 3 || e.weight == 4);
  }
}

TEST(LargestScc, MappingsAreConsistent) {
  const GeneratedGraph g = GenerateCountry({.width = 20, .height = 20});
  const SubgraphResult sub = LargestStronglyConnectedComponent(g.edges);
  for (VertexId nv = 0; nv < sub.new_to_old.size(); ++nv) {
    EXPECT_EQ(sub.old_to_new[sub.new_to_old[nv]], nv);
  }
}

TEST(LargestScc, ResultIsStronglyConnected) {
  const GeneratedGraph g = GenerateCountry({.width = 20, .height = 20});
  const SubgraphResult sub = LargestStronglyConnectedComponent(g.edges);
  const SccResult scc =
      StronglyConnectedComponents(Graph::FromEdgeList(sub.edges));
  EXPECT_EQ(scc.num_components, 1u);
}

TEST(RestrictCoords, FollowsMapping) {
  GeneratedGraph g = GenerateCountry({.width = 8, .height = 8});
  const SubgraphResult sub = LargestStronglyConnectedComponent(g.edges);
  const Coordinates coords = RestrictCoordinates(g.coords, sub);
  ASSERT_EQ(coords.Size(), sub.new_to_old.size());
  for (VertexId nv = 0; nv < sub.new_to_old.size(); ++nv) {
    EXPECT_EQ(coords.x[nv], g.coords.x[sub.new_to_old[nv]]);
    EXPECT_EQ(coords.y[nv], g.coords.y[sub.new_to_old[nv]]);
  }
}

}  // namespace
}  // namespace phast

#include <gtest/gtest.h>

#include <vector>

#include "ch/ch_data.h"
#include "ch/search_graph.h"
#include "test_support.h"

namespace phast {
namespace {

std::vector<CHArc> SampleArcs() {
  return {
      CHArc{0, 2, 5, kInvalidVertex},
      CHArc{0, 3, 7, 1},  // shortcut via 1
      CHArc{2, 3, 4, kInvalidVertex},
      CHArc{1, 3, 9, kInvalidVertex},
  };
}

TEST(SearchGraph, ForwardKeysByTail) {
  const SearchGraph g = SearchGraph::Forward(4, SampleArcs());
  EXPECT_EQ(g.NumVertices(), 4u);
  EXPECT_EQ(g.NumArcs(), 4u);
  ASSERT_EQ(g.ArcsOf(0).size(), 2u);
  EXPECT_EQ(g.ArcsOf(0)[0], (Arc{2, 5}));
  EXPECT_EQ(g.ArcsOf(0)[1], (Arc{3, 7}));
  EXPECT_TRUE(g.ArcsOf(3).empty());
}

TEST(SearchGraph, ReverseKeysByHead) {
  const SearchGraph g = SearchGraph::Reverse(4, SampleArcs());
  ASSERT_EQ(g.ArcsOf(3).size(), 3u);  // three arcs end at 3
  // Sorted by the far endpoint (the tail).
  EXPECT_EQ(g.ArcsOf(3)[0].other, 0u);
  EXPECT_EQ(g.ArcsOf(3)[1].other, 1u);
  EXPECT_EQ(g.ArcsOf(3)[2].other, 2u);
  EXPECT_TRUE(g.ArcsOf(0).empty());
}

TEST(SearchGraph, ViaTravelsWithArc) {
  const SearchGraph g = SearchGraph::Forward(4, SampleArcs());
  Weight weight = 0;
  VertexId via = 0;
  ASSERT_TRUE(g.FindArc(0, 3, &weight, &via));
  EXPECT_EQ(weight, 7u);
  EXPECT_EQ(via, 1u);
  ASSERT_TRUE(g.FindArc(0, 2, &weight, &via));
  EXPECT_EQ(via, kInvalidVertex);
}

TEST(SearchGraph, FindArcMissesCleanly) {
  const SearchGraph g = SearchGraph::Forward(4, SampleArcs());
  Weight weight = 0;
  VertexId via = 0;
  EXPECT_FALSE(g.FindArc(3, 0, &weight, &via));
  EXPECT_FALSE(g.FindArc(0, 1, &weight, &via));
  EXPECT_FALSE(g.FindArc(1, 2, &weight, &via));
}

TEST(SearchGraph, FindArcPicksCheapestParallel) {
  std::vector<CHArc> arcs = {
      CHArc{0, 1, 9, kInvalidVertex},
      CHArc{0, 1, 3, 2},
      CHArc{0, 1, 6, kInvalidVertex},
  };
  const SearchGraph g = SearchGraph::Forward(2, arcs);
  Weight weight = 0;
  VertexId via = 0;
  ASSERT_TRUE(g.FindArc(0, 1, &weight, &via));
  EXPECT_EQ(weight, 3u);
  EXPECT_EQ(via, 2u);
}

TEST(SearchGraph, EmptyGraph) {
  const SearchGraph g = SearchGraph::Forward(3, {});
  EXPECT_EQ(g.NumArcs(), 0u);
  Weight weight = 0;
  VertexId via = 0;
  EXPECT_FALSE(g.FindArc(0, 1, &weight, &via));
}

TEST(SearchGraph, LargeBinarySearchConsistency) {
  // Dense fan-out stresses the per-vertex binary search.
  std::vector<CHArc> arcs;
  for (VertexId head = 1; head < 200; head += 2) {
    arcs.push_back(CHArc{0, head, head, kInvalidVertex});
  }
  const SearchGraph g = SearchGraph::Forward(200, arcs);
  Weight weight = 0;
  VertexId via = 0;
  for (VertexId head = 1; head < 200; ++head) {
    const bool expected = head % 2 == 1;
    EXPECT_EQ(g.FindArc(0, head, &weight, &via), expected) << head;
    if (expected) {
      EXPECT_EQ(weight, head);
    }
  }
}

TEST(SearchGraph, MatchesChDataOnRealHierarchy) {
  const CHData& ch = phast::testing::CachedCountryCH(10);
  const SearchGraph up = SearchGraph::Forward(ch.num_vertices, ch.up_arcs);
  const SearchGraph down_rev =
      SearchGraph::Reverse(ch.num_vertices, ch.down_arcs);
  EXPECT_EQ(up.NumArcs(), ch.up_arcs.size());
  EXPECT_EQ(down_rev.NumArcs(), ch.down_arcs.size());
  // Every up arc must be findable with its exact weight or cheaper.
  for (size_t i = 0; i < std::min<size_t>(ch.up_arcs.size(), 500); ++i) {
    const CHArc& a = ch.up_arcs[i];
    Weight weight = 0;
    VertexId via = 0;
    ASSERT_TRUE(up.FindArc(a.tail, a.head, &weight, &via));
    EXPECT_LE(weight, a.weight);
  }
}

}  // namespace
}  // namespace phast

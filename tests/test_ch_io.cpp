#include <gtest/gtest.h>

#include <sstream>

#include "ch/ch_io.h"
#include "ch/query.h"
#include "dijkstra/dijkstra.h"
#include "phast/phast.h"
#include "pq/dary_heap.h"
#include "test_support.h"
#include "util/rng.h"

namespace phast {
namespace {

using phast::testing::CachedCountry;
using phast::testing::CachedCountryCH;

TEST(ChIo, RoundTripPreservesEverything) {
  const CHData& ch = CachedCountryCH(10);
  std::stringstream buffer;
  WriteCH(ch, buffer);
  const CHData read = ReadCH(buffer);
  EXPECT_EQ(read.num_vertices, ch.num_vertices);
  EXPECT_EQ(read.num_shortcuts, ch.num_shortcuts);
  EXPECT_EQ(read.rank, ch.rank);
  EXPECT_EQ(read.level, ch.level);
  EXPECT_EQ(read.up_arcs, ch.up_arcs);
  EXPECT_EQ(read.down_arcs, ch.down_arcs);
}

TEST(ChIo, DeserializedHierarchyAnswersQueries) {
  const Graph& g = CachedCountry(10);
  std::stringstream buffer;
  WriteCH(CachedCountryCH(10), buffer);
  const CHData read = ReadCH(buffer);

  const Phast engine(read);
  Phast::Workspace ws = engine.MakeWorkspace();
  CHQuery query(read);
  Rng rng(4);
  for (int i = 0; i < 5; ++i) {
    const VertexId s = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    engine.ComputeTree(s, ws);
    const SsspResult ref = Dijkstra<BinaryHeap>(g, s);
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      ASSERT_EQ(engine.Distance(ws, v), ref.dist[v]);
    }
    const VertexId t = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    EXPECT_EQ(query.Distance(s, t), ref.dist[t]);
  }
}

TEST(ChIo, RejectsBadMagic) {
  std::stringstream buffer("definitely not a CH file");
  EXPECT_THROW((void)ReadCH(buffer), InputError);
}

TEST(ChIo, RejectsTruncation) {
  std::stringstream buffer;
  WriteCH(CachedCountryCH(8), buffer);
  const std::string full = buffer.str();
  // Cut at several points: header, mid-array, last byte.
  for (const size_t cut :
       {size_t{4}, size_t{16}, full.size() / 2, full.size() - 1}) {
    std::stringstream truncated(full.substr(0, cut));
    EXPECT_THROW((void)ReadCH(truncated), InputError) << "cut at " << cut;
  }
}

TEST(ChIo, RejectsCorruptedRankOrder) {
  std::stringstream buffer;
  CHData ch = CachedCountryCH(8);
  // Corrupt: swap an up arc's endpoints so rank order is violated.
  ASSERT_FALSE(ch.up_arcs.empty());
  std::swap(ch.up_arcs[0].tail, ch.up_arcs[0].head);
  WriteCH(ch, buffer);
  EXPECT_THROW((void)ReadCH(buffer), InputError);
}

TEST(ChIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/phast_test.ch";
  WriteCHFile(CachedCountryCH(8), path);
  const CHData read = ReadCHFile(path);
  EXPECT_EQ(read.num_vertices, CachedCountryCH(8).num_vertices);
  EXPECT_THROW((void)ReadCHFile("/nonexistent/path.ch"), InputError);
}

}  // namespace
}  // namespace phast

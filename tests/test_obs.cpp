// Tests for the observability layer (src/obs/, DESIGN.md §8): scoped-span
// tracing, the per-level sweep profiler, the Chrome trace exporter, and the
// perf-counter wrapper's graceful degradation.
//
// The acceptance anchor lives here: a profiled sweep on the default
// 160x160 country must produce a per-level profile whose level count and
// per-level vertex/arc totals exactly match the prepared G↓ metadata.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "obs/perf_counters.h"
#include "obs/sweep_profile.h"
#include "obs/trace.h"
#include "phast/phast.h"
#include "test_support.h"
#include "util/error.h"

namespace phast {
namespace {

// --------------------------- sweep profiler --------------------------------

/// Profile-enabled engine over the cached instance.
Phast MakeProfiledEngine(uint32_t side) {
  PhastOptions options;
  options.collect_profile = true;
  return Phast(testing::CachedCountryCH(side), options);
}

TEST(SweepProfile, MatchesPreparedMetadataOn160Country) {
  // The paper-default instance (bench_server's 160x160 country). Level
  // count and per-level vertex/arc totals must match the prepared G↓
  // exactly — the profiler reads the same boundaries the sweep scans, so
  // any drift here means the profile lies about the sweep.
  const CHData& ch = testing::CachedCountryCH(160);
  const Phast engine = MakeProfiledEngine(160);
  const VertexId n = engine.NumVertices();

  Phast::Workspace ws = engine.MakeWorkspace(4);
  const std::vector<VertexId> sources = {0, n / 3, n / 2, n - 1};
  engine.ComputeTrees(sources, ws);
  const obs::SweepProfile& profile = ws.Profile();

  ASSERT_EQ(engine.NumLevels(), ch.NumLevels());
  ASSERT_EQ(profile.levels.size(), engine.NumLevels());
  EXPECT_EQ(profile.k, 4u);

  // Exact per-group match against the engine's own layout (level
  // boundaries and the G↓ CSR offsets).
  const PhastLayout layout = engine.ExportLayout();
  ASSERT_EQ(layout.level_begin.size(), engine.NumLevels() + 1);
  for (size_t g = 0; g < profile.levels.size(); ++g) {
    const VertexId begin = layout.level_begin[g];
    const VertexId end = layout.level_begin[g + 1];
    EXPECT_EQ(profile.levels[g].level,
              engine.NumLevels() - 1 - static_cast<uint32_t>(g));
    EXPECT_EQ(profile.levels[g].vertices, end - begin);
    EXPECT_EQ(profile.levels[g].arcs,
              layout.down_first[end] - layout.down_first[begin]);
  }

  // Exact match against the CH's independent view of the same structure:
  // vertices per level from the level array, arcs per level from where the
  // sweep stores them (an incoming downward arc lives at its head).
  const std::vector<uint64_t> vertex_hist = ch.LevelHistogram();
  std::vector<uint64_t> arc_hist(ch.NumLevels(), 0);
  for (const CHArc& a : ch.down_arcs) ++arc_hist[ch.level[a.head]];
  for (const obs::LevelProfile& lp : profile.levels) {
    EXPECT_EQ(lp.vertices, vertex_hist[lp.level]) << "level " << lp.level;
    EXPECT_EQ(lp.arcs, arc_hist[lp.level]) << "level " << lp.level;
  }

  EXPECT_EQ(profile.TotalVertices(), n);
  EXPECT_EQ(profile.TotalArcs(), ch.down_arcs.size());
  EXPECT_GT(profile.TotalBytes(), 0u);
  EXPECT_GT(profile.upward.queue_pops, 0u);
  EXPECT_GT(profile.upward.arcs_relaxed, 0u);
  EXPECT_GT(ws.LastSweepNanos(), 0u);
}

TEST(SweepProfile, ProfiledDistancesMatchUnprofiled) {
  // Profiling must be observation-only: the level-by-level kernel
  // invocation computes exactly the same trees as the single sweep call.
  const CHData& ch = testing::CachedCountryCH(12);
  const Phast profiled = MakeProfiledEngine(12);
  const Phast plain(ch);
  const VertexId n = plain.NumVertices();

  Phast::Workspace ws_profiled = profiled.MakeWorkspace(2);
  Phast::Workspace ws_plain = plain.MakeWorkspace(2);
  const std::vector<VertexId> sources = {1, n - 2};
  profiled.ComputeTrees(sources, ws_profiled);
  plain.ComputeTrees(sources, ws_plain);
  for (VertexId v = 0; v < n; ++v) {
    for (uint32_t t = 0; t < 2; ++t) {
      ASSERT_EQ(profiled.Distance(ws_profiled, v, t),
                plain.Distance(ws_plain, v, t))
          << "vertex " << v << " tree " << t;
    }
  }
}

TEST(SweepProfile, ParallelSweepProfilesIdenticalStructure) {
  const Phast engine = MakeProfiledEngine(12);
  const VertexId n = engine.NumVertices();

  Phast::Workspace serial_ws = engine.MakeWorkspace(1);
  engine.ComputeTree(0, serial_ws);
  const obs::SweepProfile serial = serial_ws.Profile();

  Phast::Workspace parallel_ws = engine.MakeWorkspace(1);
  const std::vector<VertexId> sources = {0};
  engine.ComputeTreesParallel(sources, parallel_ws);
  const obs::SweepProfile& parallel = parallel_ws.Profile();

  ASSERT_EQ(parallel.levels.size(), serial.levels.size());
  for (size_t g = 0; g < serial.levels.size(); ++g) {
    EXPECT_EQ(parallel.levels[g].level, serial.levels[g].level);
    EXPECT_EQ(parallel.levels[g].vertices, serial.levels[g].vertices);
    EXPECT_EQ(parallel.levels[g].arcs, serial.levels[g].arcs);
  }
  EXPECT_EQ(parallel.TotalVertices(), n);
}

TEST(SweepProfile, ResetsBetweenBatches) {
  // A second batch replaces the profile instead of appending to it.
  const Phast engine = MakeProfiledEngine(12);
  Phast::Workspace ws = engine.MakeWorkspace(1);
  engine.ComputeTree(0, ws);
  const size_t levels_first = ws.Profile().levels.size();
  engine.ComputeTree(1, ws);
  EXPECT_EQ(ws.Profile().levels.size(), levels_first);
}

TEST(SweepProfile, RequiresLevelOrderedSweep) {
  // kRankDescending has no level boundaries, so there is nothing for the
  // profiler to group by; asking for both must fail loudly.
  PhastOptions options;
  options.order = SweepOrder::kRankDescending;
  options.collect_profile = true;
  const Phast engine(testing::CachedCountryCH(8), options);
  EXPECT_THROW((void)engine.MakeWorkspace(1), InputError);
}

TEST(SweepProfile, DisabledByDefault) {
  const Phast engine(testing::CachedCountryCH(8));
  Phast::Workspace ws = engine.MakeWorkspace(1);
  engine.ComputeTree(0, ws);
  EXPECT_TRUE(ws.Profile().levels.empty());
  // Phase wall times are always recorded, profile or not (the server's
  // phase histograms rely on this).
  EXPECT_GT(ws.LastSweepNanos() + ws.LastUpwardNanos(), 0u);
}

TEST(SweepProfile, ToJsonCarriesSchema) {
  const Phast engine = MakeProfiledEngine(8);
  Phast::Workspace ws = engine.MakeWorkspace(1);
  engine.ComputeTree(0, ws);
  const std::string json = ws.Profile().ToJson();
  EXPECT_NE(json.find("\"k\":"), std::string::npos);
  EXPECT_NE(json.find("\"upward\":"), std::string::npos);
  EXPECT_NE(json.find("\"queue_pops\":"), std::string::npos);
  EXPECT_NE(json.find("\"levels\":"), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":"), std::string::npos);
}

TEST(SweepProfile, ModelBytesMonotoneAndKScaled) {
  using obs::ModelSweepBytes;
  const uint64_t base = ModelSweepBytes(100, 300, 1, false);
  EXPECT_GT(base, 0u);
  EXPECT_GT(ModelSweepBytes(200, 300, 1, false), base);   // more vertices
  EXPECT_GT(ModelSweepBytes(100, 600, 1, false), base);   // more arcs
  EXPECT_GT(ModelSweepBytes(100, 300, 4, false), base);   // wider batch
  // Implicit init adds exactly the visit-mark bitmap.
  EXPECT_EQ(ModelSweepBytes(100, 300, 1, true) - base, (100 + 7) / 8);
}

// --------------------------- scoped spans ----------------------------------

TEST(Trace, DisabledSpansRecordNothing) {
  obs::ClearSpans();
  ASSERT_FALSE(obs::TracingEnabled());
  { PHAST_SPAN("test.disabled"); }
  EXPECT_TRUE(obs::CollectSpans().empty());
}

// The recording tests need the macros compiled in; under PHAST_TRACING=OFF
// they expand to nothing (which DisabledSpansRecordNothing still covers).
#if PHAST_TRACING_ENABLED

TEST(Trace, RecordsNestedSpansInCompletionOrder) {
  obs::ClearSpans();
  obs::EnableTracing(true);
  {
    PHAST_SPAN("test.outer");
    { PHAST_SPAN_ARG("test.inner", 7); }
  }
  obs::EnableTracing(false);
  const std::vector<obs::SpanRecord> spans = obs::CollectSpans();
  ASSERT_EQ(spans.size(), 2u);
  // The inner span closes first, so it is recorded first.
  EXPECT_STREQ(spans[0].name, "test.inner");
  EXPECT_EQ(spans[0].arg, 7u);
  EXPECT_STREQ(spans[1].name, "test.outer");
  EXPECT_LE(spans[1].start_ns, spans[0].start_ns);
  EXPECT_GE(spans[1].end_ns, spans[0].end_ns);
  EXPECT_LE(spans[0].start_ns, spans[0].end_ns);
  obs::ClearSpans();
}

TEST(Trace, ClockIsMonotone) {
  const uint64_t a = obs::TraceClockNs();
  const uint64_t b = obs::TraceClockNs();
  EXPECT_LE(a, b);
}

TEST(Trace, EnableMidSpanRecordsNothingForThatSpan) {
  // ScopedSpan samples the switch at open; flipping it later must not
  // produce a half-timed record.
  obs::ClearSpans();
  {
    PHAST_SPAN("test.flipped");
    obs::EnableTracing(true);
  }
  obs::EnableTracing(false);
  EXPECT_TRUE(obs::CollectSpans().empty());
  obs::ClearSpans();
}

TEST(Trace, ChromeExportIsBalanced) {
  obs::ClearSpans();
  obs::EnableTracing(true);
  {
    PHAST_SPAN("test.parent");
    { PHAST_SPAN("test.child_a"); }
    { PHAST_SPAN_ARG("test.child_b", 42); }
  }
  obs::EnableTracing(false);

  const std::string json = obs::RenderChromeTrace();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("test.parent"), std::string::npos);
  EXPECT_NE(json.find("test.child_a"), std::string::npos);

  // Every B has a matching E.
  size_t begins = 0, ends = 0, pos = 0;
  while ((pos = json.find("\"ph\":\"B\"", pos)) != std::string::npos) {
    ++begins;
    pos += 1;
  }
  pos = 0;
  while ((pos = json.find("\"ph\":\"E\"", pos)) != std::string::npos) {
    ++ends;
    pos += 1;
  }
  EXPECT_EQ(begins, 3u);
  EXPECT_EQ(begins, ends);
  obs::ClearSpans();
}

TEST(Trace, DropsInsteadOfOverwritingWhenFull) {
  obs::ClearSpans();
  obs::EnableTracing(true);
  // Overflow one thread buffer (capacity 1<<14); the excess is counted,
  // not wrapped over history.
  for (int i = 0; i < (1 << 14) + 100; ++i) {
    PHAST_SPAN("test.flood");
  }
  obs::EnableTracing(false);
  EXPECT_EQ(obs::CollectSpans().size(), static_cast<size_t>(1) << 14);
  EXPECT_GE(obs::DroppedSpanCount(), 100u);
  obs::ClearSpans();
  EXPECT_TRUE(obs::CollectSpans().empty());
  EXPECT_EQ(obs::DroppedSpanCount(), 0u);
}

#endif  // PHAST_TRACING_ENABLED

// --------------------------- perf counters ---------------------------------

TEST(PerfCounters, GracefulWhenUnavailable) {
  obs::PerfCounterGroup group;
  obs::PerfSample sample;
  {
    const obs::ScopedPerfSample scoped(group, sample);
    // A little arithmetic so an available group has something to count.
    volatile uint64_t sink = 1;
    for (int i = 0; i < 1000; ++i) sink = sink * 3 + 1;
  }
  if (group.Available()) {
    EXPECT_GT(sample.cycles, 0u);
    EXPECT_GT(sample.instructions, 0u);
  } else {
    // The CI/container path: everything reads zero, nothing throws.
    EXPECT_EQ(sample.cycles, 0u);
    EXPECT_EQ(sample.instructions, 0u);
    EXPECT_EQ(sample.Ipc(), 0.0);
  }
  EXPECT_FALSE(obs::FormatPerfSample(sample, group.Available()).empty());
}

}  // namespace
}  // namespace phast

#include <gtest/gtest.h>

#include <vector>

#include "ch/contraction.h"
#include "dijkstra/dijkstra.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "phast/phast.h"
#include "phast/tree.h"
#include "pq/dary_heap.h"
#include "util/rng.h"

namespace phast {
namespace {

Graph CountryGraph(uint32_t side, uint64_t seed = 1,
                   Metric metric = Metric::kTravelTime) {
  CountryParams params;
  params.width = side;
  params.height = side;
  params.seed = seed;
  params.metric = metric;
  const GeneratedGraph g = GenerateCountry(params);
  return Graph::FromEdgeList(LargestStronglyConnectedComponent(g.edges).edges);
}

std::vector<Weight> PhastDistances(const Phast& engine,
                                   const Phast::Workspace& ws, VertexId n,
                                   uint32_t tree = 0) {
  std::vector<Weight> dist(n);
  for (VertexId v = 0; v < n; ++v) dist[v] = engine.Distance(ws, v, tree);
  return dist;
}

// PHAST must equal Dijkstra for every sweep order, on every graph family.
struct ModeCase {
  SweepOrder order;
  const char* name;
};

class PhastModes : public ::testing::TestWithParam<ModeCase> {};

TEST_P(PhastModes, MatchesDijkstraOnCountry) {
  const Graph g = CountryGraph(12);
  const CHData ch = BuildContractionHierarchy(g);
  Phast::Options options;
  options.order = GetParam().order;
  const Phast engine(ch, options);
  Phast::Workspace ws = engine.MakeWorkspace();
  Rng rng(11);
  for (int i = 0; i < 10; ++i) {
    const VertexId s = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    engine.ComputeTree(s, ws);
    const SsspResult ref = Dijkstra<BinaryHeap>(g, s);
    EXPECT_EQ(PhastDistances(engine, ws, g.NumVertices()), ref.dist)
        << "mode=" << GetParam().name << " source=" << s;
  }
}

TEST_P(PhastModes, MatchesDijkstraOnGnm) {
  const EdgeList edges = GenerateGnm(100, 400, 60, 5);
  const Graph g = Graph::FromEdgeList(edges);
  const CHData ch = BuildContractionHierarchy(g);
  Phast::Options options;
  options.order = GetParam().order;
  const Phast engine(ch, options);
  Phast::Workspace ws = engine.MakeWorkspace();
  for (VertexId s = 0; s < 20; ++s) {
    engine.ComputeTree(s, ws);
    const SsspResult ref = Dijkstra<BinaryHeap>(g, s);
    EXPECT_EQ(PhastDistances(engine, ws, g.NumVertices()), ref.dist);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Orders, PhastModes,
    ::testing::Values(ModeCase{SweepOrder::kRankDescending, "rank"},
                      ModeCase{SweepOrder::kLevelNoReorder, "level"},
                      ModeCase{SweepOrder::kLevelReordered, "reordered"}),
    [](const ::testing::TestParamInfo<ModeCase>& param_info) {
      return param_info.param.name;
    });

TEST(Phast, RepeatedTreesFromSameWorkspace) {
  // Implicit initialization (§IV-C): back-to-back trees must not leak
  // labels from the previous source.
  const Graph g = CountryGraph(10);
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);
  Phast::Workspace ws = engine.MakeWorkspace();
  for (VertexId s : {VertexId{0}, VertexId{17}, VertexId{0}, VertexId{42}}) {
    engine.ComputeTree(s, ws);
    const SsspResult ref = Dijkstra<BinaryHeap>(g, s);
    EXPECT_EQ(PhastDistances(engine, ws, g.NumVertices()), ref.dist);
  }
}

TEST(Phast, ExplicitInitMatchesImplicit) {
  const Graph g = CountryGraph(10);
  const CHData ch = BuildContractionHierarchy(g);
  Phast::Options explicit_options;
  explicit_options.implicit_init = false;
  const Phast implicit_engine(ch);
  const Phast explicit_engine(ch, explicit_options);
  Phast::Workspace ws_a = implicit_engine.MakeWorkspace();
  Phast::Workspace ws_b = explicit_engine.MakeWorkspace();
  for (VertexId s : {VertexId{3}, VertexId{50}}) {
    implicit_engine.ComputeTree(s, ws_a);
    explicit_engine.ComputeTree(s, ws_b);
    EXPECT_EQ(PhastDistances(implicit_engine, ws_a, g.NumVertices()),
              PhastDistances(explicit_engine, ws_b, g.NumVertices()));
  }
}

TEST(Phast, DisconnectedGraphGivesInfinity) {
  EdgeList edges(5);
  edges.AddBidirectional(0, 1, 2);
  edges.AddBidirectional(2, 3, 4);
  const Graph g = Graph::FromEdgeList(edges);
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);
  Phast::Workspace ws = engine.MakeWorkspace();
  engine.ComputeTree(0, ws);
  EXPECT_EQ(engine.Distance(ws, 1), 2u);
  EXPECT_EQ(engine.Distance(ws, 2), kInfWeight);
  EXPECT_EQ(engine.Distance(ws, 4), kInfWeight);
}

TEST(Phast, SingleVertex) {
  EdgeList edges(1);
  const CHData ch = BuildContractionHierarchy(Graph::FromEdgeList(edges));
  const Phast engine(ch);
  Phast::Workspace ws = engine.MakeWorkspace();
  engine.ComputeTree(0, ws);
  EXPECT_EQ(engine.Distance(ws, 0), 0u);
}

TEST(Phast, SourceOutOfRangeThrows) {
  const Graph g = CountryGraph(8);
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);
  Phast::Workspace ws = engine.MakeWorkspace();
  EXPECT_THROW(engine.ComputeTree(g.NumVertices(), ws), InputError);
}

TEST(Phast, WorkspaceTreeCountMustMatch) {
  const Graph g = CountryGraph(8);
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);
  Phast::Workspace ws = engine.MakeWorkspace(4);
  const VertexId s = 0;
  EXPECT_THROW(engine.ComputeTrees({&s, 1}, ws), InputError);
}

TEST(Phast, LevelBoundariesPartitionTheSweep) {
  const Graph g = CountryGraph(12);
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);
  const std::span<const VertexId> bounds = engine.LevelBoundaries();
  ASSERT_EQ(bounds.size(), engine.NumLevels() + 1);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), engine.NumVertices());
  for (size_t i = 0; i + 1 < bounds.size(); ++i) {
    EXPECT_LE(bounds[i], bounds[i + 1]);
  }
}

TEST(Phast, PermutationRoundTrips) {
  const Graph g = CountryGraph(10);
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(engine.OriginalOf(engine.LabelIndexOf(v)), v);
  }
}

TEST(Phast, UpwardSearchSpaceTracked) {
  const Graph g = CountryGraph(16);
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);
  Phast::Workspace ws = engine.MakeWorkspace();
  engine.ComputeTree(5, ws);
  EXPECT_GT(ws.UpwardSearchSpace(), 0u);
  EXPECT_LT(ws.UpwardSearchSpace(), g.NumVertices() / 2);
}

// --------------------------- parents / trees -------------------------------

TEST(PhastTree, ParentsInGPlusReachSource) {
  const Graph g = CountryGraph(10);
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);
  Phast::Workspace ws = engine.MakeWorkspace(1, /*want_parents=*/true);
  const VertexId s = 7;
  engine.ComputeTree(s, ws);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (engine.Distance(ws, v) == kInfWeight) continue;
    VertexId cur = v;
    size_t steps = 0;
    while (cur != s) {
      cur = engine.ParentInGPlus(ws, cur);
      ASSERT_NE(cur, kInvalidVertex) << "chain broken at v=" << v;
      ASSERT_LE(++steps, static_cast<size_t>(g.NumVertices()));
    }
  }
}

TEST(PhastTree, OriginalTreeIsValid) {
  const Graph g = CountryGraph(10);
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);
  Phast::Workspace ws = engine.MakeWorkspace();
  const VertexId s = 3;
  engine.ComputeTree(s, ws);
  const std::vector<Weight> dist = PhastDistances(engine, ws, g.NumVertices());
  const std::vector<VertexId> parent = BuildTreeInOriginalGraph(g, engine, ws);
  EXPECT_TRUE(ValidateTree(g, s, dist, parent));
}

TEST(PhastTree, ParentDistancesConsistent) {
  const Graph g = CountryGraph(12);
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);
  Phast::Workspace ws = engine.MakeWorkspace(1, /*want_parents=*/true);
  const VertexId s = 0;
  engine.ComputeTree(s, ws);
  // In G+, d(parent) <= d(v) along every tree arc.
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const VertexId p = engine.ParentInGPlus(ws, v);
    if (p == kInvalidVertex) continue;
    EXPECT_LE(engine.Distance(ws, p), engine.Distance(ws, v));
  }
}

// --------------------------- parallel sweep --------------------------------

TEST(PhastParallel, MatchesSerial) {
  const Graph g = CountryGraph(14);
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);
  Phast::Workspace ws_serial = engine.MakeWorkspace();
  Phast::Workspace ws_parallel = engine.MakeWorkspace();
  Rng rng(4);
  for (int i = 0; i < 5; ++i) {
    const VertexId s = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    engine.ComputeTree(s, ws_serial);
    const VertexId src[] = {s};
    engine.ComputeTreesParallel(src, ws_parallel);
    EXPECT_EQ(PhastDistances(engine, ws_serial, g.NumVertices()),
              PhastDistances(engine, ws_parallel, g.NumVertices()));
  }
}

TEST(PhastParallel, RankOrderRejectsParallelSweep) {
  const Graph g = CountryGraph(8);
  const CHData ch = BuildContractionHierarchy(g);
  Phast::Options options;
  options.order = SweepOrder::kRankDescending;
  const Phast engine(ch, options);
  Phast::Workspace ws = engine.MakeWorkspace();
  const VertexId s = 0;
  EXPECT_THROW(engine.ComputeTreesParallel({&s, 1}, ws), InputError);
}

}  // namespace
}  // namespace phast

#include <gtest/gtest.h>

#include <vector>

#include "ch/contraction.h"
#include "dijkstra/dijkstra.h"
#include "gpusim/device.h"
#include "gpusim/gphast.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "pq/dary_heap.h"
#include "util/error.h"
#include "util/rng.h"

namespace phast {
namespace {

Graph CountryGraph(uint32_t side, uint64_t seed = 1) {
  CountryParams params;
  params.width = side;
  params.height = side;
  params.seed = seed;
  const GeneratedGraph g = GenerateCountry(params);
  return Graph::FromEdgeList(LargestStronglyConnectedComponent(g.edges).edges);
}

// --------------------------- device model ----------------------------------

TEST(SimtDevice, CoalescedAccessIsOneTransaction) {
  SimtDevice device(DeviceSpec::Gtx580());
  device.BeginKernel();
  std::vector<uint64_t> addrs;
  for (uint64_t i = 0; i < 32; ++i) addrs.push_back(i * 4);  // 128B window
  device.WarpMemoryAccess(addrs, 4);
  device.EndKernel();
  EXPECT_EQ(device.TotalStats().dram_transactions, 1u);
}

TEST(SimtDevice, ScatteredAccessCostsPerLane) {
  SimtDevice device(DeviceSpec::Gtx580());
  device.BeginKernel();
  std::vector<uint64_t> addrs;
  for (uint64_t i = 0; i < 32; ++i) addrs.push_back(i * 4096);  // all distinct
  device.WarpMemoryAccess(addrs, 4);
  device.EndKernel();
  EXPECT_EQ(device.TotalStats().dram_transactions, 32u);
}

TEST(SimtDevice, TimeScalesWithTransactions) {
  SimtDevice device(DeviceSpec::Gtx580());
  device.BeginKernel();
  std::vector<uint64_t> addrs{0};
  for (int i = 0; i < 1000; ++i) {
    addrs[0] = static_cast<uint64_t>(i) * 4096;
    device.WarpMemoryAccess(addrs, 4);
  }
  device.EndKernel();
  const double small = device.TotalStats().modeled_seconds;

  SimtDevice device2(DeviceSpec::Gtx580());
  device2.BeginKernel();
  for (int i = 0; i < 100000; ++i) {
    addrs[0] = static_cast<uint64_t>(i) * 4096;
    device2.WarpMemoryAccess(addrs, 4);
  }
  device2.EndKernel();
  EXPECT_GT(device2.TotalStats().modeled_seconds, small);
}

TEST(SimtDevice, Gtx480IsSlower) {
  const DeviceSpec a = DeviceSpec::Gtx580();
  const DeviceSpec b = DeviceSpec::Gtx480();
  EXPECT_LT(b.mem_bandwidth_gb_per_s, a.mem_bandwidth_gb_per_s);
  EXPECT_LT(b.num_sms, a.num_sms);
}

TEST(SimtDevice, CopyAccountsBytes) {
  SimtDevice device(DeviceSpec::Gtx580());
  device.HostToDeviceCopy(1 << 20);
  EXPECT_EQ(device.TotalStats().copied_bytes, 1u << 20);
  EXPECT_GT(device.TotalStats().modeled_seconds, 0.0);
}

TEST(SimtDevice, LaunchOverheadPerKernel) {
  // An empty kernel still costs the launch overhead.
  DeviceSpec spec = DeviceSpec::Gtx580();
  SimtDevice device(spec);
  for (int i = 0; i < 10; ++i) {
    device.BeginKernel();
    device.EndKernel();
  }
  EXPECT_EQ(device.TotalStats().kernels, 10u);
  EXPECT_NEAR(device.TotalStats().modeled_seconds,
              10 * spec.kernel_launch_overhead_us * 1e-6, 1e-9);
}

TEST(SimtDevice, ComputeBoundKernelUsesClockTerm) {
  // With no memory traffic, time = instructions / (SMs * clock).
  DeviceSpec spec = DeviceSpec::Gtx580();
  spec.kernel_launch_overhead_us = 0.0;
  SimtDevice device(spec);
  device.BeginKernel();
  device.WarpCompute(1000000);
  device.EndKernel();
  const double expected =
      1e6 / (static_cast<double>(spec.num_sms) * spec.core_clock_ghz * 1e9);
  EXPECT_NEAR(device.TotalStats().modeled_seconds, expected, expected * 1e-9);
}

TEST(SimtDevice, PartialCoalescingCountsSegments) {
  // 32 lanes spread over exactly 4 distinct 128-byte segments.
  SimtDevice device(DeviceSpec::Gtx580());
  device.BeginKernel();
  std::vector<uint64_t> addrs;
  for (uint64_t lane = 0; lane < 32; ++lane) {
    addrs.push_back((lane % 4) * 128 + lane);  // 4 segments
  }
  device.WarpMemoryAccess(addrs, 4);
  device.EndKernel();
  EXPECT_EQ(device.TotalStats().dram_transactions, 4u);
  EXPECT_EQ(device.TotalStats().dram_bytes, 4u * 128);
}

TEST(SimtDevice, AccessOutsideKernelThrows) {
  SimtDevice device(DeviceSpec::Gtx580());
  std::vector<uint64_t> addrs{0};
  EXPECT_THROW(device.WarpMemoryAccess(addrs, 4), InputError);
  EXPECT_THROW(device.EndKernel(), InputError);
}

// --------------------------- GPHAST -----------------------------------------

TEST(Gphast, SingleTreeMatchesDijkstra) {
  const Graph g = CountryGraph(12);
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);
  Gphast gpu(engine);
  Phast::Workspace ws = engine.MakeWorkspace();
  Rng rng(8);
  for (int i = 0; i < 5; ++i) {
    const VertexId s = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    const VertexId src[] = {s};
    const Gphast::Result r = gpu.ComputeTrees(src, ws);
    EXPECT_GT(r.modeled_device_seconds, 0.0);
    EXPECT_GT(r.kernels_launched, 0u);
    const SsspResult ref = Dijkstra<BinaryHeap>(g, s);
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      ASSERT_EQ(engine.Distance(ws, v), ref.dist[v]) << "v=" << v;
    }
  }
}

TEST(Gphast, MultiTreeMatchesCpuPhast) {
  const Graph g = CountryGraph(10);
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);
  Gphast gpu(engine);
  constexpr uint32_t k = 8;
  Phast::Workspace ws_gpu = engine.MakeWorkspace(k);
  Phast::Workspace ws_cpu = engine.MakeWorkspace(k);
  Rng rng(5);
  std::vector<VertexId> sources(k);
  for (auto& s : sources) {
    s = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
  }
  gpu.ComputeTrees(sources, ws_gpu);
  engine.ComputeTrees(sources, ws_cpu);
  for (uint32_t i = 0; i < k; ++i) {
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      ASSERT_EQ(engine.Distance(ws_gpu, v, i), engine.Distance(ws_cpu, v, i));
    }
  }
}

TEST(Gphast, ParentsMatchSemantics) {
  const Graph g = CountryGraph(8);
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);
  Gphast gpu(engine);
  Phast::Workspace ws = engine.MakeWorkspace(1, /*want_parents=*/true);
  const VertexId src[] = {4};
  gpu.ComputeTrees(src, ws);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (engine.Distance(ws, v) == kInfWeight || v == 4) continue;
    VertexId cur = v;
    size_t steps = 0;
    while (cur != 4) {
      cur = engine.ParentInGPlus(ws, cur);
      ASSERT_NE(cur, kInvalidVertex);
      ASSERT_LE(++steps, static_cast<size_t>(g.NumVertices()));
    }
  }
}

TEST(Gphast, KernelPerNonEmptyLevel) {
  const Graph g = CountryGraph(10);
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);
  Gphast gpu(engine);
  Phast::Workspace ws = engine.MakeWorkspace();
  const VertexId src[] = {0};
  const Gphast::Result r = gpu.ComputeTrees(src, ws);
  EXPECT_LE(r.kernels_launched, engine.NumLevels());
  EXPECT_GE(r.kernels_launched, 1u);
}

TEST(Gphast, DeviceMemoryGrowsWithK) {
  const Graph g = CountryGraph(10);
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);
  Gphast gpu(engine);
  const uint64_t m1 = gpu.DeviceMemoryBytes(1);
  const uint64_t m16 = gpu.DeviceMemoryBytes(16);
  EXPECT_GT(m16, m1);
  // Label arrays dominate the growth: +15 * n * 4 bytes.
  EXPECT_EQ(m16 - m1, 15ull * engine.NumVertices() * sizeof(Weight));
}

TEST(Gphast, RejectsOversizedK) {
  const Graph g = CountryGraph(8);
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);
  DeviceSpec tiny = DeviceSpec::Gtx580();
  tiny.device_memory_bytes = 1024;  // absurd on purpose
  Gphast gpu(engine, tiny);
  Phast::Workspace ws = engine.MakeWorkspace(4);
  const std::vector<VertexId> sources = {0, 1, 2, 3};
  EXPECT_THROW(gpu.ComputeTrees(sources, ws), InputError);
}

TEST(Gphast, RequiresLevelOrderedEngine) {
  const Graph g = CountryGraph(8);
  const CHData ch = BuildContractionHierarchy(g);
  Phast::Options options;
  options.order = SweepOrder::kRankDescending;
  const Phast engine(ch, options);
  EXPECT_THROW(Gphast gpu(engine), InputError);
}

TEST(Gphast, MultiTreeImprovesPerTreeTime) {
  // The paper's Table III trend: amortizing the sweep over k trees reduces
  // modeled time per tree.
  const Graph g = CountryGraph(16);
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);
  Gphast gpu(engine);

  Phast::Workspace ws1 = engine.MakeWorkspace(1);
  const VertexId one[] = {3};
  const double t1 = gpu.ComputeTrees(one, ws1).modeled_device_seconds;

  constexpr uint32_t k = 16;
  Phast::Workspace wsk = engine.MakeWorkspace(k);
  std::vector<VertexId> sources(k);
  Rng rng(1);
  for (auto& s : sources) {
    s = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
  }
  const double tk =
      gpu.ComputeTrees(sources, wsk).modeled_device_seconds / k;
  EXPECT_LT(tk, t1);
}

}  // namespace
}  // namespace phast

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "pq/dary_heap.h"
#include "pq/dial_buckets.h"
#include "pq/multilevel_buckets.h"
#include "pq/radix_heap.h"
#include "util/rng.h"

namespace phast {
namespace {

// Factory adapting the different queue constructors to a common signature.
template <typename Queue>
Queue MakeQueue(VertexId n, Weight max_key);

template <>
BinaryHeap MakeQueue<BinaryHeap>(VertexId n, Weight) {
  return BinaryHeap(n);
}
template <>
FourHeap MakeQueue<FourHeap>(VertexId n, Weight) {
  return FourHeap(n);
}
template <>
DialBuckets MakeQueue<DialBuckets>(VertexId n, Weight max_key) {
  return DialBuckets(n, max_key);
}
template <>
RadixHeap MakeQueue<RadixHeap>(VertexId n, Weight) {
  return RadixHeap(n);
}
template <>
MultiLevelBuckets MakeQueue<MultiLevelBuckets>(VertexId n, Weight) {
  return MultiLevelBuckets(n);
}

template <typename Queue>
class QueueTest : public ::testing::Test {};

using QueueTypes = ::testing::Types<BinaryHeap, FourHeap, DialBuckets,
                                    RadixHeap, MultiLevelBuckets>;
TYPED_TEST_SUITE(QueueTest, QueueTypes);

TYPED_TEST(QueueTest, StartsEmpty) {
  TypeParam q = MakeQueue<TypeParam>(10, 100);
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.Size(), 0u);
}

TYPED_TEST(QueueTest, SingleInsertExtract) {
  TypeParam q = MakeQueue<TypeParam>(10, 100);
  q.Insert(3, 42);
  EXPECT_FALSE(q.Empty());
  const auto [v, key] = q.ExtractMin();
  EXPECT_EQ(v, 3u);
  EXPECT_EQ(key, 42u);
  EXPECT_TRUE(q.Empty());
}

TYPED_TEST(QueueTest, ExtractsInKeyOrder) {
  TypeParam q = MakeQueue<TypeParam>(10, 100);
  q.Insert(0, 30);
  q.Insert(1, 10);
  q.Insert(2, 20);
  q.Insert(3, 5);
  Weight last = 0;
  for (int i = 0; i < 4; ++i) {
    const auto [v, key] = q.ExtractMin();
    EXPECT_GE(key, last);
    last = key;
  }
  EXPECT_EQ(last, 30u);
}

TYPED_TEST(QueueTest, MonotoneWorkload) {
  // Dijkstra-like usage: inserted keys never fall below the last minimum
  // (the contract of the monotone bucket queues).
  TypeParam q = MakeQueue<TypeParam>(1000, 50);
  Rng rng(1);
  q.Insert(0, 0);
  Weight last = 0;
  VertexId next_vertex = 1;
  std::vector<Weight> extracted;
  for (int round = 0; round < 500; ++round) {
    const auto [v, key] = q.ExtractMin();
    EXPECT_GE(key, last);
    last = key;
    extracted.push_back(key);
    // Insert a few children with keys in [key, key + 50].
    for (int c = 0; c < 2 && next_vertex < 1000; ++c) {
      q.Insert(next_vertex++, key + static_cast<Weight>(rng.NextBounded(51)));
    }
    if (q.Empty()) break;
  }
  EXPECT_TRUE(std::is_sorted(extracted.begin(), extracted.end()));
}

TYPED_TEST(QueueTest, ClearResets) {
  TypeParam q = MakeQueue<TypeParam>(10, 100);
  q.Insert(1, 10);
  q.Insert(2, 20);
  q.Clear();
  EXPECT_TRUE(q.Empty());
  q.Insert(3, 7);
  const auto [v, key] = q.ExtractMin();
  EXPECT_EQ(v, 3u);
  EXPECT_EQ(key, 7u);
}

TYPED_TEST(QueueTest, EqualKeysAllCome) {
  TypeParam q = MakeQueue<TypeParam>(10, 100);
  for (VertexId v = 0; v < 5; ++v) q.Insert(v, 9);
  std::vector<bool> seen(5, false);
  for (int i = 0; i < 5; ++i) {
    const auto [v, key] = q.ExtractMin();
    EXPECT_EQ(key, 9u);
    seen[v] = true;
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TYPED_TEST(QueueTest, ZeroKeysWork) {
  TypeParam q = MakeQueue<TypeParam>(4, 10);
  q.Insert(0, 0);
  q.Insert(1, 0);
  EXPECT_EQ(q.ExtractMin().second, 0u);
  EXPECT_EQ(q.ExtractMin().second, 0u);
}

// --------------------------- decrease-key queues ---------------------------

template <typename Queue>
class DecreaseKeyTest : public ::testing::Test {};

using DecreaseKeyTypes = ::testing::Types<BinaryHeap, FourHeap>;
TYPED_TEST_SUITE(DecreaseKeyTest, DecreaseKeyTypes);

TYPED_TEST(DecreaseKeyTest, UpdateInsertsWhenAbsent) {
  TypeParam q(10);
  q.Update(4, 12);
  EXPECT_TRUE(q.Contains(4));
  EXPECT_EQ(q.ExtractMin(), (std::pair<VertexId, Weight>{4, 12}));
}

TYPED_TEST(DecreaseKeyTest, UpdateDecreases) {
  TypeParam q(10);
  q.Update(1, 50);
  q.Update(2, 40);
  q.Update(1, 10);  // decrease 1 below 2
  EXPECT_EQ(q.ExtractMin().first, 1u);
  EXPECT_EQ(q.ExtractMin().first, 2u);
}

TYPED_TEST(DecreaseKeyTest, UpdateIgnoresIncrease) {
  TypeParam q(10);
  q.Update(1, 10);
  q.Update(1, 99);  // must not increase
  EXPECT_EQ(q.ExtractMin().second, 10u);
}

TYPED_TEST(DecreaseKeyTest, MinKeyPeeks) {
  TypeParam q(10);
  q.Update(1, 30);
  q.Update(2, 20);
  EXPECT_EQ(q.MinKey(), 20u);
  EXPECT_EQ(q.Size(), 2u);  // peeking does not remove
}

TYPED_TEST(DecreaseKeyTest, RandomizedAgainstSortedReference) {
  TypeParam q(500);
  Rng rng(77);
  std::vector<Weight> keys(500);
  for (VertexId v = 0; v < 500; ++v) {
    keys[v] = static_cast<Weight>(rng.NextBounded(10000));
    q.Update(v, keys[v]);
  }
  // Random decreases.
  for (int i = 0; i < 300; ++i) {
    const VertexId v = static_cast<VertexId>(rng.NextBounded(500));
    const Weight nk = static_cast<Weight>(rng.NextBounded(keys[v] + 1));
    q.Update(v, nk);
    keys[v] = std::min(keys[v], nk);
  }
  std::vector<Weight> expected = keys;
  std::sort(expected.begin(), expected.end());
  for (const Weight want : expected) {
    EXPECT_EQ(q.ExtractMin().second, want);
  }
  EXPECT_TRUE(q.Empty());
}

// --------------------------- bucket queue specifics ------------------------

TEST(DialBuckets, WindowWrapsAround) {
  DialBuckets q(10, 5);  // span of 6 buckets
  q.Insert(0, 0);
  EXPECT_EQ(q.ExtractMin().second, 0u);
  q.Insert(1, 4);
  q.Insert(2, 3);
  EXPECT_EQ(q.ExtractMin().second, 3u);
  q.Insert(3, 8);  // wraps modulo 6 into bucket 2
  EXPECT_EQ(q.ExtractMin().second, 4u);
  EXPECT_EQ(q.ExtractMin().second, 8u);
}

TEST(DialBuckets, ReAnchorsWhenEmptied) {
  DialBuckets q(10, 3);
  q.Insert(0, 2);
  EXPECT_EQ(q.ExtractMin().second, 2u);
  EXPECT_TRUE(q.Empty());
  q.Insert(1, 100);  // far ahead: re-anchors the window
  EXPECT_EQ(q.ExtractMin().second, 100u);
}

TEST(RadixHeap, LargeKeySpread) {
  RadixHeap q(10);
  q.Insert(0, 0);
  q.Insert(1, 1u << 30);
  q.Insert(2, 12345);
  EXPECT_EQ(q.ExtractMin().second, 0u);
  EXPECT_EQ(q.ExtractMin().second, 12345u);
  EXPECT_EQ(q.ExtractMin().second, 1u << 30);
}

TEST(RadixHeap, MaxKeySupported) {
  RadixHeap q(4);
  q.Insert(0, 0);
  q.Insert(1, kInfWeight - 1);
  EXPECT_EQ(q.ExtractMin().second, 0u);
  q.Insert(2, 5);
  EXPECT_EQ(q.ExtractMin().second, 5u);
  EXPECT_EQ(q.ExtractMin().second, kInfWeight - 1);
}

TEST(MultiLevelBuckets, CrossesChunkBoundaries) {
  // Keys straddling several 8-bit chunk boundaries force expansions at
  // every level.
  MultiLevelBuckets q(8);
  const Weight keys[] = {0, 255, 256, 65535, 65536, 1u << 24, kInfWeight - 1};
  for (VertexId v = 0; v < 7; ++v) q.Insert(v, keys[v]);
  Weight last = 0;
  for (int i = 0; i < 7; ++i) {
    const Weight k = q.ExtractMin().second;
    EXPECT_GE(k, last);
    last = k;
  }
  EXPECT_EQ(last, kInfWeight - 1);
  EXPECT_TRUE(q.Empty());
}

TEST(MultiLevelBuckets, RandomizedMonotoneAgainstReference) {
  // Dijkstra-shaped workload checked against a sorted multiset reference.
  MultiLevelBuckets q(1);
  Rng rng(99);
  std::multiset<Weight> reference;
  Weight mu = 0;
  q.Insert(0, 0);
  reference.insert(0);
  for (int step = 0; step < 3000; ++step) {
    if (!q.Empty() && (reference.size() > 64 || rng.NextBool(0.45))) {
      const Weight got = q.ExtractMin().second;
      const Weight want = *reference.begin();
      ASSERT_EQ(got, want);
      reference.erase(reference.begin());
      mu = got;
    } else {
      // Monotone insert with occasionally huge jumps.
      const Weight key =
          mu + static_cast<Weight>(rng.NextBounded(
                   rng.NextBool(0.1) ? (1u << 20) : 300u));
      q.Insert(0, key);
      reference.insert(key);
    }
    if (q.Empty() && reference.empty()) {
      q.Insert(0, mu);
      reference.insert(mu);
    }
  }
}

TEST(RadixHeap, DuplicateVerticesAllowed) {
  // Lazy-deletion usage: the same vertex queued with several keys.
  RadixHeap q(4);
  q.Insert(1, 10);
  q.Insert(1, 7);
  q.Insert(1, 12);
  EXPECT_EQ(q.ExtractMin().second, 7u);
  EXPECT_EQ(q.ExtractMin().second, 10u);
  EXPECT_EQ(q.ExtractMin().second, 12u);
}

}  // namespace
}  // namespace phast

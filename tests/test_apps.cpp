#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <set>
#include <vector>

#include "apps/arcflags.h"
#include "apps/betweenness.h"
#include "apps/diameter.h"
#include "apps/partition.h"
#include "apps/reach.h"
#include "ch/contraction.h"
#include "dijkstra/dijkstra.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "pq/dary_heap.h"
#include "util/rng.h"

namespace phast {
namespace {

Graph CountryGraph(uint32_t side, uint64_t seed = 1) {
  CountryParams params;
  params.width = side;
  params.height = side;
  params.seed = seed;
  const GeneratedGraph g = GenerateCountry(params);
  return Graph::FromEdgeList(LargestStronglyConnectedComponent(g.edges).edges);
}

std::vector<VertexId> AllVertices(VertexId n) {
  std::vector<VertexId> all(n);
  std::iota(all.begin(), all.end(), VertexId{0});
  return all;
}

// --------------------------- partition --------------------------------------

TEST(Partition, CoversAllVerticesWithinSizeBound) {
  const Graph g = CountryGraph(12);
  const Graph rev = g.Reversed();
  const PartitionResult p = PartitionBfs(g, rev, 20);
  ASSERT_EQ(p.cell.size(), g.NumVertices());
  std::vector<uint32_t> size(p.num_cells, 0);
  for (const uint32_t c : p.cell) {
    ASSERT_LT(c, p.num_cells);
    ++size[c];
  }
  for (const uint32_t s : size) {
    EXPECT_GE(s, 1u);
    EXPECT_LE(s, 20u);
  }
}

TEST(Partition, SingleCellWhenBoundHuge) {
  const Graph g = CountryGraph(8);
  const Graph rev = g.Reversed();
  const PartitionResult p = PartitionBfs(g, rev, g.NumVertices());
  EXPECT_EQ(p.num_cells, 1u);
  EXPECT_TRUE(BoundaryVertices(g, p).empty());
}

TEST(Partition, BoundaryVerticesTouchOtherCells) {
  const Graph g = CountryGraph(12);
  const Graph rev = g.Reversed();
  const PartitionResult p = PartitionBfs(g, rev, 25);
  const std::vector<VertexId> boundary = BoundaryVertices(g, p);
  EXPECT_FALSE(boundary.empty());
  const std::set<VertexId> bset(boundary.begin(), boundary.end());
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (const Arc& a : g.ArcsOf(u)) {
      if (p.cell[u] != p.cell[a.other]) {
        EXPECT_TRUE(bset.count(u));
        EXPECT_TRUE(bset.count(a.other));
      }
    }
  }
}

// --------------------------- arc flags ---------------------------------------

class ArcFlagsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = std::make_unique<Graph>(CountryGraph(10));
    const Graph rev = graph_->Reversed();
    partition_ = PartitionBfs(*graph_, rev, 16);
  }

  std::unique_ptr<Graph> graph_;
  PartitionResult partition_;
};

TEST_F(ArcFlagsTest, DijkstraPreprocessingGivesExactQueries) {
  ArcFlags flags(*graph_, partition_);
  flags.PreprocessWithDijkstra();
  Rng rng(2);
  const VertexId n = graph_->NumVertices();
  for (int i = 0; i < 25; ++i) {
    const VertexId s = static_cast<VertexId>(rng.NextBounded(n));
    const VertexId t = static_cast<VertexId>(rng.NextBounded(n));
    const SsspResult ref = Dijkstra<BinaryHeap>(*graph_, s);
    EXPECT_EQ(flags.Query(s, t).dist, ref.dist[t]) << "s=" << s << " t=" << t;
  }
}

TEST_F(ArcFlagsTest, PhastPreprocessingMatchesDijkstraPreprocessing) {
  ArcFlags via_dijkstra(*graph_, partition_);
  via_dijkstra.PreprocessWithDijkstra();

  const Graph rev = graph_->Reversed();
  const CHData rev_ch = BuildContractionHierarchy(rev);
  const Phast rev_engine(rev_ch);
  ArcFlags via_phast(*graph_, partition_);
  via_phast.PreprocessWithPhast(rev_engine, 4);

  // Identical flag bits, not merely identical query answers.
  ArcId arc = 0;
  for (VertexId u = 0; u < graph_->NumVertices(); ++u) {
    for ([[maybe_unused]] const Arc& a : graph_->ArcsOf(u)) {
      for (uint32_t c = 0; c < partition_.num_cells; ++c) {
        ASSERT_EQ(via_dijkstra.GetFlag(arc, c), via_phast.GetFlag(arc, c))
            << "arc " << arc << " cell " << c;
      }
      ++arc;
    }
  }
}

TEST_F(ArcFlagsTest, QueriesScanFewerVerticesThanDijkstra) {
  ArcFlags flags(*graph_, partition_);
  flags.PreprocessWithDijkstra();
  Rng rng(4);
  const VertexId n = graph_->NumVertices();
  size_t flagged = 0, plain = 0;
  for (int i = 0; i < 15; ++i) {
    const VertexId s = static_cast<VertexId>(rng.NextBounded(n));
    const VertexId t = static_cast<VertexId>(rng.NextBounded(n));
    flagged += flags.Query(s, t).scanned;
    const SsspResult ref = Dijkstra<BinaryHeap>(*graph_, s);
    plain += ref.scanned;
  }
  EXPECT_LT(flagged, plain);
}

TEST_F(ArcFlagsTest, FlagDensityBelowOne) {
  ArcFlags flags(*graph_, partition_);
  flags.PreprocessWithDijkstra();
  EXPECT_GT(flags.FlagDensity(), 0.0);
  EXPECT_LT(flags.FlagDensity(), 0.9);
}

TEST_F(ArcFlagsTest, QueryBeforePreprocessThrows) {
  ArcFlags flags(*graph_, partition_);
  EXPECT_THROW(flags.Query(0, 1), InputError);
  EXPECT_THROW(flags.QueryBidirectional(0, 1), InputError);
}

TEST_F(ArcFlagsTest, BidirectionalQueriesAreExact) {
  ArcFlags flags(*graph_, partition_);
  flags.PreprocessWithDijkstra();
  flags.PreprocessSourceFlagsWithDijkstra();
  Rng rng(6);
  const VertexId n = graph_->NumVertices();
  for (int i = 0; i < 30; ++i) {
    const VertexId s = static_cast<VertexId>(rng.NextBounded(n));
    const VertexId t = static_cast<VertexId>(rng.NextBounded(n));
    const SsspResult ref = Dijkstra<BinaryHeap>(*graph_, s);
    const PointToPointResult r = flags.QueryBidirectional(s, t);
    ASSERT_EQ(r.dist, ref.dist[t]) << "s=" << s << " t=" << t;
    if (r.dist != kInfWeight) {
      ASSERT_FALSE(r.path.empty());
      EXPECT_EQ(r.path.front(), s);
      EXPECT_EQ(r.path.back(), t);
    }
  }
}

TEST_F(ArcFlagsTest, SourceFlagsViaPhastMatchDijkstra) {
  ArcFlags via_dijkstra(*graph_, partition_);
  via_dijkstra.PreprocessWithDijkstra();
  via_dijkstra.PreprocessSourceFlagsWithDijkstra();

  const CHData fwd_ch = BuildContractionHierarchy(*graph_);
  const Phast fwd_engine(fwd_ch);
  ArcFlags via_phast(*graph_, partition_);
  via_phast.PreprocessWithDijkstra();
  via_phast.PreprocessSourceFlagsWithPhast(fwd_engine, 4);

  Rng rng(8);
  const VertexId n = graph_->NumVertices();
  for (int i = 0; i < 20; ++i) {
    const VertexId s = static_cast<VertexId>(rng.NextBounded(n));
    const VertexId t = static_cast<VertexId>(rng.NextBounded(n));
    const PointToPointResult a = via_dijkstra.QueryBidirectional(s, t);
    const PointToPointResult b = via_phast.QueryBidirectional(s, t);
    ASSERT_EQ(a.dist, b.dist);
    ASSERT_EQ(a.scanned, b.scanned);  // identical flags => identical search
  }
}

TEST_F(ArcFlagsTest, BidirectionalScansNoMoreThanUnidirectional) {
  ArcFlags flags(*graph_, partition_);
  flags.PreprocessWithDijkstra();
  flags.PreprocessSourceFlagsWithDijkstra();
  Rng rng(10);
  const VertexId n = graph_->NumVertices();
  size_t uni = 0, bi = 0;
  for (int i = 0; i < 25; ++i) {
    const VertexId s = static_cast<VertexId>(rng.NextBounded(n));
    const VertexId t = static_cast<VertexId>(rng.NextBounded(n));
    uni += flags.Query(s, t).scanned;
    bi += flags.QueryBidirectional(s, t).scanned;
  }
  EXPECT_LE(bi, uni);
}

// --------------------------- diameter ----------------------------------------

TEST(Diameter, MatchesBruteForceOnSmallGraph) {
  const Graph g = CountryGraph(7);
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);

  Weight brute = 0;
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    const SsspResult r = Dijkstra<BinaryHeap>(g, s);
    for (const Weight d : r.dist) {
      if (d != kInfWeight) brute = std::max(brute, d);
    }
  }

  const std::vector<VertexId> all = AllVertices(g.NumVertices());
  const DiameterResult result = ComputeDiameter(engine, all, 4);
  EXPECT_EQ(result.diameter, brute);
  EXPECT_EQ(result.trees_built, g.NumVertices());
  // The endpoint pair must realize the diameter.
  const SsspResult check = Dijkstra<BinaryHeap>(g, result.source);
  EXPECT_EQ(check.dist[result.target], result.diameter);
}

TEST(Diameter, MaxArrayVariantAgrees) {
  const Graph g = CountryGraph(7, 3);
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);
  const std::vector<VertexId> all = AllVertices(g.NumVertices());
  const DiameterResult a = ComputeDiameter(engine, all, 1);
  const DiameterResult b = ComputeDiameterMaxArray(engine, all, 4);
  EXPECT_EQ(a.diameter, b.diameter);
}

TEST(Diameter, PathGraphDiameterIsLength) {
  const Graph g = Graph::FromEdgeList(GeneratePath(20, 3));
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);
  const std::vector<VertexId> all = AllVertices(20);
  EXPECT_EQ(ComputeDiameter(engine, all).diameter, 19u * 3);
}

// --------------------------- reach -------------------------------------------

TEST(Reach, PhastMatchesDijkstraReference) {
  const Graph g = CountryGraph(7, 5);
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);
  const std::vector<VertexId> all = AllVertices(g.NumVertices());
  const std::vector<Weight> via_phast = ComputeReaches(g, engine, all, 4);
  const std::vector<Weight> via_dijkstra = ComputeReachesDijkstra(g, all);
  EXPECT_EQ(via_phast, via_dijkstra);
}

TEST(Reach, PathGraphReaches) {
  // On a path 0-1-2-3-4 (unit weights), the middle vertex has the largest
  // reach, the endpoints reach 0.
  const Graph g = Graph::FromEdgeList(GeneratePath(5, 1));
  const std::vector<VertexId> all = AllVertices(5);
  const std::vector<Weight> reach = ComputeReachesDijkstra(g, all);
  EXPECT_EQ(reach[0], 0u);
  EXPECT_EQ(reach[4], 0u);
  EXPECT_EQ(reach[2], 2u);
  EXPECT_GT(reach[2], reach[1]);
}

TEST(Reach, HighwayVerticesHaveHighReach) {
  const Graph g = CountryGraph(10, 2);
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);
  const std::vector<VertexId> all = AllVertices(g.NumVertices());
  const std::vector<Weight> reach = ComputeReaches(g, engine, all, 1);
  // Reach must vary: a road network has both local and transit vertices.
  const Weight max_reach = *std::max_element(reach.begin(), reach.end());
  const Weight min_reach = *std::min_element(reach.begin(), reach.end());
  EXPECT_GT(max_reach, 4 * std::max<Weight>(min_reach, 1));
}

// --------------------------- betweenness --------------------------------------

TEST(Betweenness, PhastMatchesDijkstraReference) {
  const Graph g = CountryGraph(7, 9);
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);
  const std::vector<VertexId> all = AllVertices(g.NumVertices());
  const std::vector<double> a = ComputeBetweenness(g, engine, all, 4);
  const std::vector<double> b = ComputeBetweennessDijkstra(g, all);
  ASSERT_EQ(a.size(), b.size());
  for (size_t v = 0; v < a.size(); ++v) {
    EXPECT_NEAR(a[v], b[v], 1e-6) << "vertex " << v;
  }
}

TEST(Betweenness, PathGraphClosedForm) {
  // Directed both ways: c_B(v) for a path of n vertices is 2 * i * (n-1-i)
  // (pairs (s,t) with s<v<t, both directions, unique shortest paths).
  const Graph g = Graph::FromEdgeList(GeneratePath(6, 2));
  const std::vector<VertexId> all = AllVertices(6);
  const std::vector<double> bc = ComputeBetweennessDijkstra(g, all);
  for (VertexId v = 0; v < 6; ++v) {
    EXPECT_NEAR(bc[v], 2.0 * v * (5 - v), 1e-9) << "vertex " << v;
  }
}

TEST(Betweenness, StarCenterDominates) {
  const Graph g = Graph::FromEdgeList(GenerateStar(6, 1));
  const std::vector<VertexId> all = AllVertices(7);
  const std::vector<double> bc = ComputeBetweennessDijkstra(g, all);
  // Center lies on every leaf-to-leaf shortest path: 6*5 ordered pairs.
  EXPECT_NEAR(bc[0], 30.0, 1e-9);
  for (VertexId v = 1; v < 7; ++v) EXPECT_NEAR(bc[v], 0.0, 1e-9);
}

TEST(Betweenness, SamplingAllPivotsEqualsExact) {
  // With num_samples == n and every vertex hit exactly once, the estimator
  // scales by n/n == 1 and must equal the exact computation — verify on a
  // custom pivot set via the scale identity instead: sampling with a fixed
  // seed is an unbiased estimator; here we check the mechanical property
  // that scaling works (num_samples pivots, scale n/num_samples).
  const Graph g = CountryGraph(6, 4);
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);
  const std::vector<double> estimate =
      EstimateBetweenness(g, engine, 2 * g.NumVertices(), 7, 4);
  const std::vector<VertexId> all = AllVertices(g.NumVertices());
  const std::vector<double> exact = ComputeBetweenness(g, engine, all, 4);
  // Oversampled estimate correlates strongly with the exact values: the
  // vertex ranking agrees on the top element and the total mass is close.
  double est_total = 0, exact_total = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    est_total += estimate[v];
    exact_total += exact[v];
  }
  EXPECT_NEAR(est_total, exact_total, 0.35 * exact_total);
}

TEST(Betweenness, SamplingIsDeterministicBySeed) {
  const Graph g = CountryGraph(6, 4);
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);
  EXPECT_EQ(EstimateBetweenness(g, engine, 10, 3),
            EstimateBetweenness(g, engine, 10, 3));
}

TEST(Betweenness, SamplingRejectsZeroSamples) {
  const Graph g = CountryGraph(6, 4);
  const CHData ch = BuildContractionHierarchy(g);
  const Phast engine(ch);
  EXPECT_THROW(EstimateBetweenness(g, engine, 0, 1), InputError);
}

TEST(Betweenness, CountsMultipleShortestPaths) {
  // Diamond with two equal shortest paths: each middle vertex gets 1/2 per
  // direction with unit contributions.
  EdgeList edges(4);
  edges.AddArc(0, 1, 1);
  edges.AddArc(0, 2, 1);
  edges.AddArc(1, 3, 1);
  edges.AddArc(2, 3, 1);
  const Graph g = Graph::FromEdgeList(edges);
  const std::vector<VertexId> all = AllVertices(4);
  const std::vector<double> bc = ComputeBetweennessDijkstra(g, all);
  EXPECT_NEAR(bc[1], 0.5, 1e-9);
  EXPECT_NEAR(bc[2], 0.5, 1e-9);
  EXPECT_NEAR(bc[0], 0.0, 1e-9);
}

}  // namespace
}  // namespace phast

#!/usr/bin/env python3
"""phast_analyze.py -- semantic whole-program analyzer for the PHAST tree.

Division of labour with tools/phast_lint.py (documented in both tools):
  * phast_lint.py owns TOKEN-LOCAL rules: anything decidable from a single
    logical line after comment/string stripping (omp-default-none spelling,
    naked throw, wall-clock reads, intrinsics includes, doc comments, ...).
  * phast_analyze.py (this tool) owns SEMANTIC rules: anything that needs
    scopes, whole-function context, or whole-program context spanning
    translation units.  It is driven by the exported compile_commands.json
    and a real C++ lexer + brace/scope tracker -- no regexes over raw text.

Passes (rule ids):
  PA-LOCK-ORDER    MutexLock/AnnotatedMutex acquisition nesting per function,
                   merged into a global acquired-while-held graph (with
                   transitive acquisition summaries through the call graph);
                   cycles and recursive self-acquisitions are reported as
                   potential deadlocks.
  PA-GUARDED      fields declared GUARDED_BY(m) accessed in functions that
                   neither hold a MutexLock(m) scope nor declare REQUIRES(m).
                   This covers GCC builds where Clang's -Wthread-safety is
                   silent.  Constructors/destructors of the owning class are
                   exempt (no concurrent access before/after lifetime).
  PA-LAYERING     include-graph enforcement of the module order
                   util < graph/pq < dijkstra < ch < phast < obs < gpusim
                   < apps < verify < server < fabric, plus include-cycle
                   detection and explicit forbidden edges (the serving
                   fabric may depend on server but never on verify — the
                   offline harness must not ride into the daemon).
                   A small allowlist of obs interface headers (std-only
                   include closure, verified by the pass itself) may be
                   included from lower layers.
  PA-INCLUDE      include hygiene: std:: symbols used without a direct
                   include of their canonical header (curated symbol map;
                   a foo.cpp may rely on its primary header foo.h).
  PA-OMP-SHARING  identifiers referenced inside an `omp ... default(none)`
                   region body that are alive locals/params of the enclosing
                   function but absent from the region's
                   shared/firstprivate/private/reduction/lastprivate lists.
  PA-EPOCH        protocol invariant (PR 6): any src/server/ function that
                   writes a `.distances` payload must stamp `.epoch` on the
                   same response object in the same function.
  PA-HEADER       (only under --check-headers) header self-sufficiency:
                   every src/ header must compile standalone.

Suppression: append `// phast-analyze: allow(PA-RULE)` on (or on the line
directly above) the offending line.  Persistent exceptions go into the
checked-in baseline (tools/phast_analyze_baseline.json, regenerate with
--write-baseline and justify entries by hand).

Exit codes: 0 clean, 1 findings (after baseline), 2 usage/internal error.
"""

import hashlib
import json
import os
import subprocess
import sys
import tempfile

TOOL_NAME = "phast_analyze"
TOOL_VERSION = "1.0.0"

RULES = {
    "PA-LOCK-ORDER": "lock-order cycle / recursive acquisition (potential deadlock)",
    "PA-GUARDED": "GUARDED_BY field accessed without holding its mutex",
    "PA-LAYERING": "module layering violation or include cycle",
    "PA-INCLUDE": "std symbol used without direct include",
    "PA-OMP-SHARING": "identifier missing from default(none) sharing clauses",
    "PA-EPOCH": "distance-bearing response built without stamping snapshot epoch",
    "PA-HEADER": "header is not self-sufficient (fails standalone compile)",
}

# Module layering ranks: an includer may only depend on strictly-lower or
# equal-rank modules.  graph and pq share a rank (both sit just above util).
MODULE_RANK = {
    "util": 0,
    "graph": 1,
    "pq": 1,
    "dijkstra": 2,
    "ch": 3,
    "phast": 4,
    "obs": 5,
    "gpusim": 6,
    "apps": 7,
    "verify": 8,
    "server": 9,
    "fabric": 10,
}

# Rank order alone allows any downward edge; these specific edges are
# forbidden regardless.  fabric -> verify would link the offline
# verification harness (and its Dijkstra re-runs) into the serving daemon;
# fabric sees ground truth only through the wire-level checkers
# (phast_loadgen, phast_reweight), which live in server as tools.
FORBIDDEN_EDGES = {
    ("fabric", "verify"),
}

# obs interface headers that lower layers (graph/ch/phast/...) may include.
# The exemption is only valid while their include closure is std-only; the
# layering pass re-verifies that on every run.
LAYERING_INTERFACE_ALLOWLIST = {
    "obs/trace.h",
    "obs/sweep_profile.h",
    "obs/contraction_profile.h",
    "obs/customize_profile.h",
}

# Curated std symbol -> canonical header map for PA-INCLUDE.  Deliberately
# small: entries are added only for symbols whose transitive availability has
# actually bitten us (keeps the pass high-precision).
STD_SYMBOL_HEADER = {
    "vector": "vector",
    "string": "string",
    "atomic": "atomic",
    "optional": "optional",
    "future": "future",
    "promise": "future",
    "shared_future": "future",
}

THREAD_ANNOTATIONS = {
    "CAPABILITY", "SCOPED_CAPABILITY", "GUARDED_BY", "PT_GUARDED_BY",
    "REQUIRES", "REQUIRES_SHARED", "ACQUIRE", "ACQUIRE_SHARED", "RELEASE",
    "RELEASE_SHARED", "EXCLUDES", "RETURN_CAPABILITY",
    "NO_THREAD_SAFETY_ANALYSIS", "ASSERT_CAPABILITY",
}

CPP_KEYWORDS = {
    "if", "else", "for", "while", "do", "switch", "case", "default", "break",
    "continue", "return", "goto", "try", "catch", "throw", "new", "delete",
    "sizeof", "alignof", "alignas", "static_assert", "using", "typedef",
    "template", "typename", "class", "struct", "union", "enum", "namespace",
    "public", "private", "protected", "friend", "virtual", "override",
    "final", "const", "constexpr", "consteval", "constinit", "mutable",
    "static", "inline", "extern", "explicit", "noexcept", "operator", "this",
    "nullptr", "true", "false", "auto", "void", "bool", "char", "int",
    "short", "long", "float", "double", "signed", "unsigned", "wchar_t",
    "decltype", "co_return", "co_await", "co_yield", "requires", "concept",
    "volatile", "thread_local", "and", "or", "not", "reinterpret_cast",
    "static_cast", "dynamic_cast", "const_cast",
}

CONTROL_KEYWORDS = {
    "if", "else", "for", "while", "do", "switch", "return", "case", "catch",
    "try", "throw", "goto", "delete", "new",
}


class Finding:
    __slots__ = ("rule", "path", "line", "message", "fp_extra")

    def __init__(self, rule, path, line, message, fp_extra=""):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message
        # Line-independent context for the fingerprint so baselines survive
        # unrelated edits above the finding.
        self.fp_extra = fp_extra or message

    def fingerprint(self, occurrence=0):
        blob = "|".join([self.rule, self.path, self.fp_extra, str(occurrence)])
        return hashlib.sha1(blob.encode("utf-8")).hexdigest()[:16]

    def text(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule, self.message)


class Tok:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self):
        return "Tok(%s,%r,%d)" % (self.kind, self.text, self.line)


def _scan_allow(comment, line, allow):
    """Record `phast-analyze: allow(RULE[, RULE])` suppressions in a comment."""
    key = "phast-analyze:"
    pos = comment.find(key)
    if pos < 0:
        return
    rest = comment[pos + len(key):]
    apos = rest.find("allow(")
    if apos < 0:
        return
    end = rest.find(")", apos)
    if end < 0:
        return
    rules = [r.strip() for r in rest[apos + len("allow("):end].split(",")]
    allow.setdefault(line, set()).update(r for r in rules if r)


def lex(text):
    """Hand-written C++ lexer.  Returns (tokens, allow_map).

    Token kinds: 'id', 'num', 'str', 'chr', 'punct', 'pp' (whole preprocessor
    directive with continuations folded, text excludes the leading '#').
    Comments are consumed (scanned for allow() suppressions); '->' and '::'
    are single punct tokens.
    """
    toks = []
    allow = {}
    i, n, line = 0, len(text), 1
    bol = True
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            bol = True
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "#" and bol:
            start = line
            buf = []
            i += 1
            while i < n:
                c = text[i]
                if c == "\\" and i + 1 < n and text[i + 1] == "\n":
                    buf.append(" ")
                    i += 2
                    line += 1
                    continue
                if c == "\n":
                    break
                if c == "/" and i + 1 < n and text[i + 1] == "/":
                    j = text.find("\n", i)
                    j = n if j < 0 else j
                    _scan_allow(text[i:j], line, allow)
                    i = j
                    break
                if c == "/" and i + 1 < n and text[i + 1] == "*":
                    j = text.find("*/", i + 2)
                    if j < 0:
                        i = n
                        break
                    seg = text[i:j + 2]
                    _scan_allow(seg, line, allow)
                    line += seg.count("\n")
                    buf.append(" ")
                    i = j + 2
                    continue
                buf.append(c)
                i += 1
            toks.append(Tok("pp", "".join(buf).strip(), start))
            continue
        bol = False
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            _scan_allow(text[i:j], line, allow)
            i = j
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            if j < 0:
                break
            seg = text[i:j + 2]
            _scan_allow(seg, line, allow)
            line += seg.count("\n")
            i = j + 2
            continue
        if c == '"':
            j = i + 1
            while j < n and text[j] != '"':
                if text[j] == "\\":
                    j += 1
                j += 1
            toks.append(Tok("str", text[i:j + 1], line))
            i = j + 1
            continue
        if c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                if text[j] == "\\":
                    j += 1
                j += 1
            toks.append(Tok("chr", text[i:j + 1], line))
            i = j + 1
            continue
        if c.isalpha() or c == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            if word == "R" and j < n and text[j] == '"':
                k = text.find("(", j)
                if k >= 0:
                    delim = text[j + 1:k]
                    close = ")" + delim + '"'
                    e = text.find(close, k)
                    e = n if e < 0 else e + len(close)
                    seg = text[i:e]
                    toks.append(Tok("str", seg, line))
                    line += seg.count("\n")
                    i = e
                    continue
            toks.append(Tok("id", word, line))
            i = j
            continue
        if c.isdigit():
            j = i
            while j < n and (text[j].isalnum() or text[j] in "._'"):
                if text[j] in "eEpP" and j + 1 < n and text[j + 1] in "+-":
                    j += 1
                j += 1
            toks.append(Tok("num", text[i:j], line))
            i = j
            continue
        if c == "-" and i + 1 < n and text[i + 1] == ">":
            toks.append(Tok("punct", "->", line))
            i += 2
            continue
        if c == ":" and i + 1 < n and text[i + 1] == ":":
            toks.append(Tok("punct", "::", line))
            i += 2
            continue
        toks.append(Tok("punct", c, line))
        i += 1
    return toks, allow


# ---------------------------------------------------------------------------
# Phase A: per-file structural parse (namespaces, classes, function bodies).
# ---------------------------------------------------------------------------

class ClassInfo:
    __slots__ = ("name", "file", "line", "fields", "guards", "mutex_fields",
                 "method_requires")

    def __init__(self, name, file, line):
        self.name = name
        self.file = file
        self.line = line
        self.fields = {}          # field name -> type text
        self.guards = {}          # field name -> guard expression text
        self.mutex_fields = set() # fields whose type is AnnotatedMutex
        self.method_requires = {} # method name -> [mutex expr text, ...]


class FuncInfo:
    __slots__ = ("name", "cls", "file", "line", "requires", "params", "body",
                 "is_ctor_dtor")

    def __init__(self, name, cls, file, line, requires, params, body,
                 is_ctor_dtor):
        self.name = name
        self.cls = cls            # owning class name or None
        self.file = file
        self.line = line
        self.requires = requires  # mutex expr texts from REQUIRES(...)
        self.params = params      # param name -> type text
        self.body = body          # (first body token index, closing '}' index)
        self.is_ctor_dtor = is_ctor_dtor

    @property
    def qual(self):
        return (self.cls + "::" + self.name) if self.cls else self.name


class FileModel:
    __slots__ = ("path", "toks", "allow", "includes", "classes", "funcs",
                 "pragmas")

    def __init__(self, path):
        self.path = path
        self.toks = []
        self.allow = {}
        self.includes = []  # (header text, quoted bool, line)
        self.classes = []
        self.funcs = []
        self.pragmas = []   # (directive text, line, next-token index)


def _toks_text(toks, idxs):
    return " ".join(toks[k].text for k in idxs)


def _norm_expr(parts):
    """Normalize a member chain: drop this->, '->' becomes '.'."""
    out = []
    for p in parts:
        if p in ("->",):
            out.append(".")
        else:
            out.append(p)
    s = "".join(out)
    if s.startswith("this."):
        s = s[len("this."):]
    return s


def _split_top_level(toks, idxs, sep):
    """Split token index list on `sep` at paren/angle/bracket depth 0."""
    parts = []
    cur = []
    depth = 0
    angle = 0
    for k in idxs:
        t = toks[k].text
        if t in ("(", "[", "{"):
            depth += 1
        elif t in (")", "]", "}"):
            depth -= 1
        elif t == "<":
            angle += 1
        elif t == ">" and angle > 0:
            angle -= 1
        if t == sep and depth == 0 and angle == 0:
            parts.append(cur)
            cur = []
        else:
            cur.append(k)
    parts.append(cur)
    return parts


def _find_paren_group(toks, idxs):
    """First top-level (...) group in `idxs` whose preceding token is an id.

    Returns (name_idx, open_idx, close_idx) or None.  Used to recognize
    function signatures and extract their parameter lists.
    """
    depth = 0
    angle = 0
    for pos, k in enumerate(idxs):
        t = toks[k].text
        if t == "<":
            angle += 1
        elif t == ">" and angle > 0:
            angle -= 1
        elif t == "(" and depth == 0 and angle == 0:
            if pos == 0:
                return None
            prev = toks[idxs[pos - 1]]
            if prev.kind != "id" or prev.text in CONTROL_KEYWORDS:
                # keep scanning past this group
                d = 1
                pos2 = pos + 1
                while pos2 < len(idxs) and d > 0:
                    tt = toks[idxs[pos2]].text
                    if tt == "(":
                        d += 1
                    elif tt == ")":
                        d -= 1
                    pos2 += 1
                continue
            if prev.text in THREAD_ANNOTATIONS:
                continue
            d = 1
            pos2 = pos + 1
            while pos2 < len(idxs) and d > 0:
                tt = toks[idxs[pos2]].text
                if tt == "(":
                    d += 1
                elif tt == ")":
                    d -= 1
                pos2 += 1
            if d == 0:
                return (pos - 1, pos, pos2 - 1)
            return None
        elif t in ("(", "["):
            depth += 1
        elif t in (")", "]"):
            depth -= 1
    return None


def _top_level_has(toks, idxs, text, stop_at_paren=False):
    depth = 0
    angle = 0
    for k in idxs:
        t = toks[k].text
        if t == "<":
            angle += 1
        elif t == ">" and angle > 0:
            angle -= 1
        elif t in ("(", "[", "{"):
            if stop_at_paren and t == "(" and depth == 0 and angle == 0:
                return False
            depth += 1
        elif t in (")", "]", "}"):
            depth -= 1
        if depth == 0 and angle == 0 and t == text:
            return True
    return False


def _parse_annotation_args(toks, idxs, name):
    """Extract expression texts from annotation calls NAME(a, b) in idxs."""
    out = []
    i = 0
    while i < len(idxs):
        if toks[idxs[i]].text == name and i + 1 < len(idxs) and \
                toks[idxs[i + 1]].text == "(":
            depth = 1
            j = i + 2
            group = []
            while j < len(idxs) and depth > 0:
                t = toks[idxs[j]].text
                if t == "(":
                    depth += 1
                elif t == ")":
                    depth -= 1
                    if depth == 0:
                        break
                group.append(idxs[j])
                j += 1
            for part in _split_top_level(toks, group, ","):
                if part:
                    out.append(_norm_expr([toks[k].text for k in part]))
            i = j
        i += 1
    return out


def _parse_params(toks, idxs):
    """Best-effort parameter extraction: name -> type text."""
    params = {}
    for part in _split_top_level(toks, idxs, ","):
        if not part:
            continue
        texts = [toks[k].text for k in part]
        if texts == ["void"]:
            continue
        # name = id before '=' (default arg) else last id token
        stop = len(part)
        for pos, k in enumerate(part):
            if toks[k].text == "=":
                stop = pos
                break
        name_pos = None
        for pos in range(stop - 1, -1, -1):
            tk = toks[part[pos]]
            if tk.kind == "id" and tk.text not in CPP_KEYWORDS:
                name_pos = pos
                break
            if tk.kind == "id" or tk.text in (")", ">"):
                break
        if name_pos is None or name_pos == 0:
            continue
        name = toks[part[name_pos]].text
        type_text = " ".join(texts[:name_pos])
        params[name] = type_text
    return params


def _skip_balanced(toks, i, n, open_t="{", close_t="}"):
    """toks[i] is `open_t`; return index just past its matching close."""
    depth = 0
    while i < n:
        t = toks[i].text if toks[i].kind != "pp" else ""
        if t == open_t:
            depth += 1
        elif t == close_t:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def parse_file(path, text):
    toks, allow = lex(text)
    fm = FileModel(path)
    fm.toks = toks
    fm.allow = allow
    n = len(toks)
    # Record preprocessor directives up front: the structural loop skips
    # function bodies wholesale, but omp pragmas live inside them.
    for idx, t in enumerate(toks):
        if t.kind == "pp":
            _record_pp(fm, t, idx)
    scope = []   # stack of ('ns', name) / ('class', ClassInfo)
    head = []    # token indices of the current declaration head
    i = 0
    while i < n:
        t = toks[i]
        if t.kind == "pp":
            i += 1
            continue
        txt = t.text
        if txt == "{":
            i = _classify_open_brace(fm, toks, i, n, scope, head)
            head = []
            continue
        if txt == "}":
            if scope:
                scope.pop()
            i += 1
            # consume optional trailing ';'
            if i < n and toks[i].kind == "punct" and toks[i].text == ";":
                i += 1
            head = []
            continue
        if txt == ";":
            _process_decl_statement(fm, toks, head, scope)
            head = []
            i += 1
            continue
        if txt == ":" and len(head) == 1 and \
                toks[head[0]].text in ("public", "private", "protected"):
            head = []
            i += 1
            continue
        head.append(i)
        i += 1
    return fm


def _record_pp(fm, t, idx):
    body = t.text
    if body.startswith("include"):
        rest = body[len("include"):].strip()
        if rest.startswith('"'):
            end = rest.find('"', 1)
            if end > 0:
                fm.includes.append((rest[1:end], True, t.line))
        elif rest.startswith("<"):
            end = rest.find(">", 1)
            if end > 0:
                fm.includes.append((rest[1:end], False, t.line))
    elif body.startswith("pragma"):
        rest = body[len("pragma"):].strip()
        if rest.startswith("omp"):
            fm.pragmas.append((rest, t.line, idx + 1))


def _enclosing_class(scope):
    for e in reversed(scope):
        if e[0] == "class":
            return e[1]
    return None


def _classify_open_brace(fm, toks, i, n, scope, head):
    """toks[i] == '{' at namespace/class level.  Push scope or skip body.

    Returns the next token index to resume structural parsing at.
    """
    texts = [toks[k].text for k in head]
    # namespace
    if texts and texts[0] == "namespace" or \
            (len(texts) >= 2 and texts[0] == "inline" and texts[1] == "namespace"):
        name = ""
        for k in head:
            if toks[k].kind == "id" and toks[k].text not in ("namespace", "inline"):
                name = toks[k].text
                break
        scope.append(("ns", name))
        return i + 1
    # enum (incl. enum class): skip enumerator list entirely
    if "enum" in texts[:2]:
        return _skip_balanced(toks, i, n)
    # class/struct/union definition: class-key at top level (not in <> or ())
    cls_kw_pos = None
    depth = angle = 0
    for pos, k in enumerate(head):
        tt = toks[k].text
        if tt == "<":
            angle += 1
        elif tt == ">" and angle > 0:
            angle -= 1
        elif tt in ("(", "["):
            depth += 1
        elif tt in (")", "]"):
            depth -= 1
        elif depth == 0 and angle == 0 and tt in ("class", "struct", "union"):
            cls_kw_pos = pos
            break
    sig = _find_paren_group(toks, head)
    if cls_kw_pos is not None and sig is None:
        name = ""
        for pos in range(cls_kw_pos + 1, len(head)):
            tk = toks[head[pos]]
            if tk.kind == "id" and tk.text not in CPP_KEYWORDS and \
                    tk.text not in THREAD_ANNOTATIONS:
                name = tk.text
                break
        ci = ClassInfo(name or "<anon>", fm.path, toks[i].line)
        fm.classes.append(ci)
        scope.append(("class", ci))
        return i + 1
    # function definition?
    if sig is not None and texts and texts[0] not in CONTROL_KEYWORDS:
        return _open_function(fm, toks, i, n, scope, head, sig)
    # anything else (brace init at class scope, extern "C", ...): skip
    return _skip_balanced(toks, i, n)


def _open_function(fm, toks, i, n, scope, head, sig):
    name_pos, open_pos, close_pos = sig
    name_tok = toks[head[name_pos]]
    name = name_tok.text
    # qualified name Foo::Bar / dtor ~Foo
    cls = None
    p = name_pos - 1
    if p >= 0 and toks[head[p]].text == "~":
        name = "~" + name
        p -= 1
    if p >= 1 and toks[head[p]].text == "::" and toks[head[p - 1]].kind == "id":
        cls = toks[head[p - 1]].text
    if cls is None:
        ci = _enclosing_class(scope)
        if ci is not None:
            cls = ci.name
    is_ctor_dtor = name.lstrip("~") == (cls or "")
    tail = head[close_pos + 1:]
    requires = _parse_annotation_args(toks, tail, "REQUIRES")
    params = _parse_params(toks, head[open_pos + 1:close_pos])
    # Handle ctor init-list braces between ')' and the real body brace.
    # We are at a '{'; it is an init brace iff the previous token is a plain
    # identifier (member name / base) and the tail contains a top-level ':'.
    j = i
    if _top_level_has(toks, tail, ":"):
        while j < n:
            prev = toks[j - 1]
            if prev.kind == "id" and prev.text not in CPP_KEYWORDS and \
                    prev.text not in THREAD_ANNOTATIONS:
                j = _skip_balanced(toks, j, n)
                # advance to next '{'
                while j < n and not (toks[j].kind == "punct" and toks[j].text == "{"):
                    j += 1
                continue
            break
    if j >= n:
        return n
    body_end = _skip_balanced(toks, j, n) - 1  # index of matching '}'
    fn = FuncInfo(name, cls, fm.path, name_tok.line, requires, params,
                  (j + 1, body_end), is_ctor_dtor)
    fm.funcs.append(fn)
    # Record REQUIRES from an out-of-line definition head onto the class too.
    if cls and requires:
        ci = _enclosing_class(scope)
        if ci is not None and ci.name == cls:
            ci.method_requires.setdefault(name, []).extend(requires)
    return body_end + 1


def _process_decl_statement(fm, toks, head, scope):
    """Handle a ';'-terminated declaration at namespace/class level."""
    if not head:
        return
    ci = _enclosing_class(scope)
    texts = [toks[k].text for k in head]
    sig = _find_paren_group(toks, head)
    # '=' at top level before the paren group means a field with call init.
    eq_first = False
    if sig is not None:
        depth = angle = 0
        for pos, k in enumerate(head):
            tt = toks[k].text
            if tt == "<":
                angle += 1
            elif tt == ">" and angle > 0:
                angle -= 1
            elif tt in ("(", "["):
                if pos == sig[1]:
                    break
                depth += 1
            elif tt in (")", "]"):
                depth -= 1
            elif depth == 0 and angle == 0 and tt == "=":
                eq_first = True
                break
    if sig is not None and not eq_first:
        # method declaration (no body): record REQUIRES annotations
        if ci is not None:
            name = toks[head[sig[0]]].text
            tail = head[sig[2] + 1:]
            req = _parse_annotation_args(toks, tail, "REQUIRES")
            if req:
                ci.method_requires.setdefault(name, []).extend(req)
        return
    if ci is None:
        return
    # field declaration: name = last top-level id before '=', GUARDED_BY, '['
    stop = len(head)
    depth = angle = 0
    for pos, k in enumerate(head):
        tt = toks[k].text
        if tt == "<":
            angle += 1
        elif tt == ">" and angle > 0:
            angle -= 1
        elif tt in ("(", "["):
            depth += 1
        elif tt in (")", "]"):
            depth -= 1
        elif depth == 0 and angle == 0 and tt in ("=", "GUARDED_BY", "PT_GUARDED_BY"):
            stop = pos
            break
    name_pos = None
    for pos in range(stop - 1, -1, -1):
        tk = toks[head[pos]]
        if tk.kind == "id" and tk.text not in CPP_KEYWORDS and \
                tk.text not in THREAD_ANNOTATIONS:
            name_pos = pos
            break
        if tk.text in (">", "]", ")"):
            break
    if name_pos is None or name_pos == 0:
        return
    fname = toks[head[name_pos]].text
    type_text = " ".join(texts[:name_pos])
    ci.fields[fname] = type_text
    if "AnnotatedMutex" in type_text.split():
        ci.mutex_fields.add(fname)
    guards = _parse_annotation_args(toks, head[stop:], "GUARDED_BY")
    if guards:
        ci.guards[fname] = guards[0]


# ---------------------------------------------------------------------------
# Whole-program registry + Phase B: semantic walk of function bodies.
# ---------------------------------------------------------------------------

class Registry:
    def __init__(self, files):
        self.files = files                  # path -> FileModel
        self.classes = {}                   # name -> ClassInfo (merged)
        self.funcs_by_name = {}             # name -> [FuncInfo]
        self.mutex_owner = {}               # mutex field name -> set(cls)
        for fm in files.values():
            for ci in fm.classes:
                have = self.classes.get(ci.name)
                if have is None:
                    self.classes[ci.name] = ci
                else:
                    have.fields.update(ci.fields)
                    have.guards.update(ci.guards)
                    have.mutex_fields.update(ci.mutex_fields)
                    for m, req in ci.method_requires.items():
                        have.method_requires.setdefault(m, []).extend(req)
            for fn in fm.funcs:
                self.funcs_by_name.setdefault(fn.name, []).append(fn)
        for ci in self.classes.values():
            for f in ci.mutex_fields:
                self.mutex_owner.setdefault(f, set()).add(ci.name)

    def class_of_type(self, type_text):
        if not type_text:
            return None
        for word in type_text.replace("<", " ").replace(">", " ").split():
            if word in self.classes:
                return word
        return None

    def resolve_mutex_key(self, expr, fn, locals_map):
        """Canonical global identity for a mutex expression inside `fn`."""
        parts = [p for p in expr.split(".") if p and p[0].isalpha() or
                 (p and p[0] == "_")]
        if not parts:
            return fn.qual + "$" + expr
        if len(parts) == 1:
            name = parts[0]
            if fn.cls and fn.cls in self.classes and \
                    name in self.classes[fn.cls].fields:
                return fn.cls + "::" + name
            ltype = locals_map.get(name) or fn.params.get(name)
            if ltype is not None:
                if "AnnotatedMutex" in ltype:
                    return fn.qual + "$" + name
                # reference to a mutex passed in: unique-owner fallback below
            owners = self.mutex_owner.get(name)
            if owners and len(owners) == 1:
                return next(iter(owners)) + "::" + name
            return fn.qual + "$" + name
        field = parts[-1]
        cls = self._resolve_chain_class(parts[:-1], fn, locals_map)
        if cls and cls in self.classes and field in self.classes[cls].fields:
            return cls + "::" + field
        owners = self.mutex_owner.get(field)
        if owners and len(owners) == 1:
            return next(iter(owners)) + "::" + field
        return fn.qual + "$" + expr

    def _resolve_chain_class(self, chain, fn, locals_map):
        """Resolve the class of a member chain a.b.c (without final field)."""
        base = chain[0]
        type_text = locals_map.get(base) or fn.params.get(base)
        if type_text is None and fn.cls and fn.cls in self.classes:
            type_text = self.classes[fn.cls].fields.get(base)
        cls = self.class_of_type(type_text) if type_text else None
        for mid in chain[1:]:
            if cls is None or cls not in self.classes:
                return None
            cls = self.class_of_type(self.classes[cls].fields.get(mid, ""))
        return cls


class FuncEvents:
    __slots__ = ("fn", "acquisitions", "requires_keys", "calls",
                 "guard_events", "omp_regions", "dist_writes", "epoch_stamps",
                 "order_edges")

    def __init__(self, fn):
        self.fn = fn
        self.acquisitions = []   # (key, line)
        self.requires_keys = []  # [key]
        self.calls = []          # (name, cls_hint, [held keys], line)
        self.guard_events = []   # (field, required_expr, line) -- violations
        self.omp_regions = []    # (pragma, line, alive set, (start, end))
        self.dist_writes = {}    # recv text -> first line
        self.epoch_stamps = set()
        self.order_edges = []    # (held key, acquired key, line)


def _chain_before(toks, i, lo):
    """Member chain ending at toks[i] (an id): returns list of part texts."""
    parts = [toks[i].text]
    j = i - 1
    while j > lo:
        if toks[j].kind == "punct" and toks[j].text in (".", "->"):
            k = j - 1
            # skip a close-paren group: foo().bar -- give up (can't type it)
            if k > lo and toks[k].kind == "id":
                parts.append(toks[k].text)
                j = k - 1
                continue
        break
    parts.reverse()
    return parts


def _stmt_decls(toks, idxs, reg):
    """Best-effort local declarations in one statement: name -> type text."""
    out = {}
    if not idxs:
        return out
    first = toks[idxs[0]].text
    if first in CONTROL_KEYWORDS and first not in ("if", "for", "while", "switch"):
        return out
    if first in ("if", "for", "while", "switch", "catch"):
        # declarations live in the header paren group
        depth = 0
        group = []
        for k in idxs:
            t = toks[k].text
            if t == "(":
                depth += 1
                if depth == 1:
                    continue
            elif t == ")":
                depth -= 1
                if depth == 0:
                    break
            if depth >= 1:
                group.append(k)
        for seg in _split_top_level(toks, group, ";"):
            for part in [p for s in _split_top_level(toks, seg, ":")
                         for p in _split_top_level(toks, s, ",")[:1]]:
                out.update(_plain_decl(toks, part, reg))
        return out
    lhs = []
    depth = angle = 0
    for k in idxs:
        t = toks[k].text
        if t == "<":
            angle += 1
        elif t == ">" and angle > 0:
            angle -= 1
        elif t in ("(", "[", "{"):
            if depth == 0 and angle == 0:
                break
            depth += 1
        elif t in (")", "]", "}"):
            depth -= 1
        elif depth == 0 and angle == 0 and t == "=":
            break
        lhs.append(k)
    # reject obvious non-declarations (member chains on the left-hand side)
    for k in lhs:
        if toks[k].kind == "punct" and toks[k].text in (".", "->"):
            return out
    out.update(_plain_decl(toks, lhs, reg))
    return out


def _plain_decl(toks, lhs, reg):
    """`type-seq name` declaration pattern over token indices `lhs`."""
    if len(lhs) < 2:
        return {}
    # structured binding: auto [a, b] = ...
    if toks[lhs[0]].text == "auto":
        for pos, k in enumerate(lhs):
            if toks[k].text == "[":
                names = {}
                for kk in lhs[pos + 1:]:
                    if toks[kk].text == "]":
                        break
                    if toks[kk].kind == "id":
                        names[toks[kk].text] = "auto"
                if names:
                    return names
                break
    name_pos = None
    for pos in range(len(lhs) - 1, -1, -1):
        tk = toks[lhs[pos]]
        if tk.kind == "id" and tk.text not in CPP_KEYWORDS and \
                tk.text not in THREAD_ANNOTATIONS:
            name_pos = pos
            break
        if tk.kind != "punct" or tk.text not in ("&", "*", "]", "["):
            if tk.kind == "id":
                break
    if name_pos is None or name_pos == 0:
        return {}
    has_type_word = False
    for k in lhs[:name_pos]:
        if toks[k].kind == "id":
            has_type_word = True
            break
    if not has_type_word:
        return {}
    name = toks[lhs[name_pos]].text
    type_text = " ".join(toks[k].text for k in lhs[:name_pos])
    return {name: type_text}


def _skip_stmt(toks, i, hi):
    """Skip one statement starting at toks[i]; returns index past it."""
    if i >= hi:
        return hi
    t = toks[i].text if toks[i].kind != "pp" else ""
    if t == "{":
        return _skip_balanced(toks, i, hi)
    if t in ("for", "while", "if", "switch"):
        j = i + 1
        while j < hi and toks[j].text != "(":
            j += 1
        j = _skip_balanced(toks, j, hi, "(", ")")
        return _skip_stmt(toks, j, hi)
    if t == "do":
        j = _skip_stmt(toks, i + 1, hi)
        while j < hi and toks[j].text != ";":
            j += 1
        return j + 1
    depth = 0
    j = i
    while j < hi:
        tt = toks[j].text if toks[j].kind != "pp" else ""
        if tt in ("(", "[", "{"):
            depth += 1
        elif tt in (")", "]", "}"):
            depth -= 1
        elif tt == ";" and depth == 0:
            return j + 1
        j += 1
    return hi


def walk_function(fm, fn, reg):
    toks = fm.toks
    lo, hi = fn.body
    ev = FuncEvents(fn)
    pragma_at = {idx: (text, line) for (text, line, idx) in fm.pragmas}
    # REQUIRES from the definition head plus any in-class declaration.
    req_exprs = list(fn.requires)
    if fn.cls and fn.cls in reg.classes:
        req_exprs += reg.classes[fn.cls].method_requires.get(fn.name, [])
    frames = [{"locals": dict(fn.params), "locks": []}]

    def all_locals():
        d = {}
        for fr in frames:
            d.update(fr["locals"])
        return d

    def held():
        out = []
        for fr in frames:
            out.extend(fr["locks"])
        return out  # list of (expr, key, line)

    req_keys = [reg.resolve_mutex_key(e, fn, {}) for e in req_exprs]
    ev.requires_keys = req_keys

    def held_exprs_keys():
        h = held()
        exprs = set(req_exprs) | {e for (e, _k, _l) in h}
        keys = set(req_keys) | {k for (_e, k, _l) in h}
        return exprs, keys

    def process_stmt(idxs):
        decls = _stmt_decls(toks, idxs, reg)
        frames[-1]["locals"].update(decls)
        for name, type_text in decls.items():
            if "MutexLock" not in type_text.split():
                continue
            # mutex expr = tokens in the ( ... ) group right after the name
            pos = None
            for p, k in enumerate(idxs):
                if toks[k].kind == "id" and toks[k].text == name:
                    pos = p
            if pos is None or pos + 1 >= len(idxs) or \
                    toks[idxs[pos + 1]].text != "(":
                continue
            depth = 1
            group = []
            p = pos + 2
            while p < len(idxs) and depth > 0:
                t = toks[idxs[p]].text
                if t == "(":
                    depth += 1
                elif t == ")":
                    depth -= 1
                    if depth == 0:
                        break
                group.append(idxs[p])
                p += 1
            expr = _norm_expr([toks[k].text for k in group])
            key = reg.resolve_mutex_key(expr, fn, all_locals())
            line = toks[idxs[pos]].line
            _exprs, hkeys = held_exprs_keys()
            for hk in hkeys:
                ev.order_edges.append((hk, key, line))
            ev.acquisitions.append((key, line))
            frames[-1]["locks"].append((expr, key, line))

    pend = []
    pdepth = 0
    i = lo
    while i < hi:
        t = toks[i]
        if t.kind == "pp":
            hit = pragma_at.get(i + 1)
            if hit is not None and "default" in hit[0] and "none" in hit[0]:
                span_end = _skip_stmt(toks, i + 1, hi)
                ev.omp_regions.append(
                    (hit[0], hit[1], set(all_locals().keys()),
                     (i + 1, span_end)))
            i += 1
            continue
        txt = t.text
        if t.kind == "punct":
            if txt == "(":
                pdepth += 1
            elif txt == ")":
                pdepth = max(0, pdepth - 1)
            elif txt == "{" and pdepth == 0:
                process_stmt(pend)
                new_frame = {"locals": {}, "locks": []}
                if pend and toks[pend[0]].text in ("for", "while", "if",
                                                   "switch", "catch"):
                    new_frame["locals"].update(_stmt_decls(toks, pend, reg))
                frames.append(new_frame)
                pend = []
                i += 1
                continue
            elif txt == "}" and pdepth == 0:
                if len(frames) > 1:
                    frames.pop()
                pend = []
                i += 1
                continue
            elif txt == ";" and pdepth == 0:
                process_stmt(pend)
                pend = []
                i += 1
                continue
        pend.append(i)
        if t.kind == "id":
            _check_id_token(fm, fn, reg, ev, toks, i, lo,
                            all_locals, held_exprs_keys)
        i += 1
    return ev


DIST_WRITERS = {"push_back", "emplace_back", "resize", "assign", "reserve"}


def _check_id_token(fm, fn, reg, ev, toks, i, lo, all_locals, held_exprs_keys):
    t = toks[i]
    name = t.text
    prev = toks[i - 1] if i - 1 >= 0 else None
    nxt = toks[i + 1] if i + 1 < len(toks) else None
    prev_is_member = prev is not None and prev.kind == "punct" and \
        prev.text in (".", "->")
    # -- call events (for the lock-order transitive closure) --
    if nxt is not None and nxt.text == "(" and name not in CPP_KEYWORDS and \
            name not in THREAD_ANNOTATIONS:
        cls_hint = None
        if prev_is_member:
            chain = _chain_before(toks, i, lo - 1)
            if len(chain) > 1:
                cls_hint = reg._resolve_chain_class(chain[:-1], fn,
                                                    all_locals())
        elif fn.cls:
            cls_hint = fn.cls
        _exprs, hkeys = held_exprs_keys()
        ev.calls.append((name, cls_hint, sorted(hkeys), t.line))
    # -- epoch-propagation events --
    if prev_is_member and name == "distances":
        chain = _chain_before(toks, i, lo - 1)
        recv = ".".join(chain[:-1])
        if recv:
            is_write = False
            if nxt is not None and nxt.text == "=" and \
                    (i + 2 >= len(toks) or toks[i + 2].text != "="):
                is_write = True
            elif nxt is not None and nxt.text in (".", "->") and \
                    i + 3 < len(toks) and toks[i + 2].kind == "id" and \
                    toks[i + 2].text in DIST_WRITERS and \
                    toks[i + 3].text == "(":
                is_write = True
            if is_write:
                ev.dist_writes.setdefault(recv, t.line)
    if prev_is_member and name == "epoch":
        if nxt is not None and nxt.text == "=" and \
                (i + 2 >= len(toks) or toks[i + 2].text != "="):
            chain = _chain_before(toks, i, lo - 1)
            recv = ".".join(chain[:-1])
            if recv:
                ev.epoch_stamps.add(recv)
    # -- guarded-state events --
    if fn.is_ctor_dtor:
        return
    locals_map = all_locals()
    if prev_is_member:
        chain = _chain_before(toks, i, lo - 1)
        if len(chain) > 1 and chain[0] != "this":
            cls = reg._resolve_chain_class(chain[:-1], fn, locals_map)
            if cls and cls in reg.classes and name in reg.classes[cls].guards:
                guard = reg.classes[cls].guards[name]
                required = ".".join(chain[:-1] + [guard])
                exprs, keys = held_exprs_keys()
                ok = required in exprs
                if not ok:
                    rkey = reg.resolve_mutex_key(required, fn, locals_map)
                    ok = rkey in keys
                if not ok:
                    ev.guard_events.append((name, required, t.line))
            return
        if chain[0] != "this":
            return
        # this->field falls through to the bare-member check
    else:
        if (prev is not None and prev.text == "::") or \
                (nxt is not None and nxt.text == "::"):
            return
        if name in locals_map:
            return
    if fn.cls and fn.cls in reg.classes and \
            name in reg.classes[fn.cls].guards:
        guard = reg.classes[fn.cls].guards[name]
        exprs, keys = held_exprs_keys()
        ok = guard in exprs or ("this." + guard) in exprs
        if not ok:
            gkey = reg.resolve_mutex_key(guard, fn, locals_map)
            ok = gkey in keys
        if not ok:
            ev.guard_events.append((name, guard, t.line))


# ---------------------------------------------------------------------------
# Whole-program passes.
# ---------------------------------------------------------------------------

def _emit(findings, files, rule, path, line, msg, fp_extra=None):
    fm = files.get(path)
    if fm is not None:
        for l in (line, line - 1):
            rules = fm.allow.get(l)
            if rules and (rule in rules or "*" in rules):
                return
    findings.append(Finding(rule, path, line, msg, fp_extra))


def _tarjan_sccs(adj):
    index = {}
    low = {}
    on_stack = set()
    stack = []
    sccs = []
    counter = [0]
    for root in sorted(adj):
        if root in index:
            continue
        work = [(root, iter(adj.get(root, ())))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            v, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(adj.get(w, ()))))
                    advanced = True
                    break
                if w in on_stack:
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                pv = work[-1][0]
                low[pv] = min(low[pv], low[v])
            if low[v] == index[v]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == v:
                        break
                sccs.append(scc)
    return sccs


def pass_lock_order(prog, findings):
    events = prog.events
    by_name = {}
    for ev in events:
        by_name.setdefault(ev.fn.name, []).append(ev)

    def resolve_call(name, cls_hint):
        cands = by_name.get(name)
        if not cands:
            return None
        if cls_hint is not None:
            same = [c for c in cands if c.fn.cls == cls_hint]
            if len(same) == 1:
                return same[0]
            if same:
                return None
        if len(cands) == 1:
            return cands[0]
        return None

    closure = {id(ev): set(k for k, _l in ev.acquisitions) for ev in events}
    changed = True
    while changed:
        changed = False
        for ev in events:
            mine = closure[id(ev)]
            for (name, cls_hint, _hk, _line) in ev.calls:
                cal = resolve_call(name, cls_hint)
                if cal is None:
                    continue
                extra = closure[id(cal)] - mine
                if extra:
                    mine |= extra
                    changed = True

    edges = {}
    for ev in events:
        for (a, b, line) in ev.order_edges:
            edges.setdefault((a, b), (ev.fn.file, line,
                             "%s acquires '%s' while holding '%s'"
                             % (ev.fn.qual, b, a)))
        for (name, cls_hint, hks, line) in ev.calls:
            cal = resolve_call(name, cls_hint)
            if cal is None:
                continue
            for b in closure[id(cal)]:
                for a in hks:
                    edges.setdefault((a, b), (ev.fn.file, line,
                                     "%s calls %s (which acquires '%s') "
                                     "while holding '%s'"
                                     % (ev.fn.qual, cal.fn.qual, b, a)))
    for (a, b), (path, line, desc) in sorted(edges.items()):
        if a == b:
            _emit(findings, prog.files, "PA-LOCK-ORDER", path, line,
                  "recursive acquisition of '%s': %s (AnnotatedMutex is "
                  "non-reentrant)" % (a, desc),
                  fp_extra="self:" + a)
    adj = {}
    for (a, b) in edges:
        adj.setdefault(a, []).append(b)
        adj.setdefault(b, [])
    for scc in _tarjan_sccs(adj):
        if len(scc) < 2:
            continue
        nodes = sorted(scc)
        examples = []
        loc = None
        for (a, b), (path, line, desc) in sorted(edges.items()):
            if a in scc and b in scc and a != b:
                examples.append(desc)
                if loc is None:
                    loc = (path, line)
        _emit(findings, prog.files, "PA-LOCK-ORDER", loc[0], loc[1],
              "lock-order cycle between {%s}: %s"
              % (", ".join(nodes), "; ".join(examples[:4])),
              fp_extra="cycle:" + ",".join(nodes))


def pass_guarded(prog, findings):
    for ev in prog.events:
        for (field, required, line) in ev.guard_events:
            _emit(findings, prog.files, "PA-GUARDED", ev.fn.file, line,
                  "field '%s' is GUARDED_BY('%s') but %s accesses it without "
                  "a MutexLock scope on it or REQUIRES(%s)"
                  % (field, required, ev.fn.qual, required),
                  fp_extra="guard:%s:%s" % (ev.fn.qual, field))


def _module_of(path):
    parts = path.replace("\\", "/").split("/")
    if "src" in parts:
        k = parts.index("src")
        if k + 1 < len(parts) - 1:
            return parts[k + 1]
    return None


def _resolve_include(prog, inc):
    for p in prog.files:
        if p == inc or p.endswith("/" + inc):
            return p
    return None


def pass_layering(prog, findings):
    # Verify the interface allowlist first: those headers must stay std-only.
    valid_allow = set()
    for inc in sorted(LAYERING_INTERFACE_ALLOWLIST):
        target = _resolve_include(prog, inc)
        if target is None:
            continue
        quoted = [(h, l) for (h, q, l) in prog.files[target].includes if q]
        if quoted:
            _emit(findings, prog.files, "PA-LAYERING", target, quoted[0][1],
                  "'%s' is on the layering interface allowlist (lower layers "
                  "may include it) but includes project header \"%s\" -- its "
                  "include closure must stay std-only" % (inc, quoted[0][0]),
                  fp_extra="allowlist:" + inc)
        else:
            valid_allow.add(inc)
    resolved_edges = {}
    for path, fm in sorted(prog.files.items()):
        mod = _module_of(path)
        for (inc, q, line) in fm.includes:
            if not q:
                continue
            target = _resolve_include(prog, inc)
            if target is not None:
                resolved_edges.setdefault(path, []).append((target, line))
            imod = inc.split("/")[0] if "/" in inc else _module_of(target or "")
            if mod in MODULE_RANK and imod in MODULE_RANK and \
                    MODULE_RANK[imod] > MODULE_RANK[mod]:
                if inc in valid_allow:
                    continue
                _emit(findings, prog.files, "PA-LAYERING", path, line,
                      "module '%s' (rank %d) must not include '%s' from "
                      "higher-ranked module '%s' (rank %d); layering order is "
                      "util < graph/pq < dijkstra < ch < phast < obs < gpusim "
                      "< apps < verify < server < fabric"
                      % (mod, MODULE_RANK[mod], inc, imod, MODULE_RANK[imod]),
                      fp_extra="layer:%s->%s" % (path, inc))
            if (mod, imod) in FORBIDDEN_EDGES:
                _emit(findings, prog.files, "PA-LAYERING", path, line,
                      "module '%s' must not include '%s': the %s -> %s edge "
                      "is forbidden (the offline verification harness stays "
                      "out of the serving daemon)" % (mod, inc, mod, imod),
                      fp_extra="forbidden:%s->%s" % (mod, imod))
    # include cycles
    color = {}
    onpath = []

    def dfs(p):
        color[p] = 1
        onpath.append(p)
        for (q, line) in resolved_edges.get(p, ()):
            if color.get(q, 0) == 0:
                dfs(q)
            elif color.get(q) == 1:
                cyc = onpath[onpath.index(q):] + [q]
                _emit(findings, prog.files, "PA-LAYERING", p, line,
                      "include cycle: %s" % " -> ".join(cyc),
                      fp_extra="cycle:" + ",".join(sorted(set(cyc))))
        onpath.pop()
        color[p] = 2

    for p in sorted(prog.files):
        if color.get(p, 0) == 0:
            dfs(p)


def _primary_header(prog, path):
    stem = os.path.splitext(os.path.basename(path))[0]
    fm = prog.files[path]
    for (inc, q, _line) in fm.includes:
        if q and os.path.splitext(os.path.basename(inc))[0] == stem:
            return _resolve_include(prog, inc)
    return None


def _std_uses(fm):
    """(symbol, line) pairs for `std::<symbol>` uses with a curated header."""
    toks = fm.toks
    out = []
    for i in range(len(toks) - 2):
        if toks[i].kind == "id" and toks[i].text == "std" and \
                toks[i + 1].text == "::" and toks[i + 2].kind == "id":
            sym = toks[i + 2].text
            if sym in STD_SYMBOL_HEADER:
                out.append((sym, toks[i + 2].line))
    return out


def pass_include_hygiene(prog, findings):
    for path, fm in sorted(prog.files.items()):
        if _module_of(path) is None:
            continue
        direct = {inc for (inc, q, _l) in fm.includes if not q}
        if path.endswith(".cpp"):
            ph = _primary_header(prog, path)
            if ph is not None:
                phm = prog.files[ph]
                direct |= {inc for (inc, q, _l) in phm.includes if not q}
                # the primary header will itself be made self-sufficient, so
                # symbols it uses are covered for the .cpp as well
                direct |= {STD_SYMBOL_HEADER[s] for (s, _l) in _std_uses(phm)}
        needed = {}
        for (sym, line) in _std_uses(fm):
            hdr = STD_SYMBOL_HEADER[sym]
            if hdr not in direct and hdr not in needed:
                needed[hdr] = (sym, line)
        for hdr in sorted(needed):
            sym, line = needed[hdr]
            _emit(findings, prog.files, "PA-INCLUDE", path, line,
                  "std::%s used but <%s> is not included directly (transitive "
                  "includes are not a contract)" % (sym, hdr),
                  fp_extra="inc:%s:%s" % (path, hdr))


OMP_LIST_CLAUSES = {"shared", "firstprivate", "private", "lastprivate",
                    "reduction", "linear", "copyin", "copyprivate"}
OMP_SKIP_CLAUSES = {"num_threads", "schedule", "if", "default", "collapse",
                    "proc_bind", "ordered", "aligned", "safelen", "simdlen"}


def _omp_clause_names(pragma_text):
    """Identifiers listed in the sharing clauses of an omp directive."""
    toks, _allow = lex(pragma_text)
    listed = set()
    i = 0
    while i < len(toks):
        t = toks[i]
        if t.kind == "id" and i + 1 < len(toks) and toks[i + 1].text == "(":
            depth = 1
            j = i + 2
            group = []
            while j < len(toks) and depth > 0:
                tt = toks[j].text
                if tt == "(":
                    depth += 1
                elif tt == ")":
                    depth -= 1
                    if depth == 0:
                        break
                group.append(toks[j])
                j += 1
            if t.text in OMP_LIST_CLAUSES:
                names = group
                if t.text == "reduction":
                    for pos, g in enumerate(group):
                        if g.text == ":":
                            names = group[pos + 1:]
                            break
                for g in names:
                    if g.kind == "id":
                        listed.add(g.text)
            i = j
        i += 1
    return listed


def _region_decls(toks, lo, hi):
    """Identifiers declared anywhere inside the region token span."""
    declared = set()
    for k in range(lo, hi):
        t = toks[k]
        if t.kind != "id" or t.text in CPP_KEYWORDS:
            continue
        nxt = toks[k + 1] if k + 1 < hi else None
        prv = toks[k - 1] if k - 1 >= lo else None
        if nxt is None or prv is None:
            continue
        if nxt.kind == "punct" and nxt.text in ("=", ";", ":", ")", ",") and \
                (prv.kind == "id" and prv.text not in CONTROL_KEYWORDS or
                 prv.kind == "punct" and prv.text in ("&", "*", ">")):
            if nxt.text == "=" and k + 2 < hi and toks[k + 2].text == "=":
                continue
            declared.add(t.text)
    return declared


def pass_omp_sharing(prog, findings):
    for ev in prog.events:
        fm = prog.files[ev.fn.file]
        toks = fm.toks
        for (pragma, line, alive, (lo, hi)) in ev.omp_regions:
            listed = _omp_clause_names(pragma)
            declared = _region_decls(toks, lo, hi)
            flagged = set()
            for k in range(lo, hi):
                t = toks[k]
                if t.kind != "id" or t.text in CPP_KEYWORDS:
                    continue
                prv = toks[k - 1] if k > 0 else None
                nxt = toks[k + 1] if k + 1 < len(toks) else None
                if prv is not None and prv.kind == "punct" and \
                        prv.text in (".", "->", "::"):
                    continue
                if nxt is not None and nxt.text == "::":
                    continue
                name = t.text
                if name in listed or name in declared or name in flagged:
                    continue
                if name not in alive:
                    continue
                flagged.add(name)
                _emit(findings, prog.files, "PA-OMP-SHARING", ev.fn.file,
                      t.line,
                      "'%s' is referenced inside this default(none) region "
                      "but missing from its shared/firstprivate/private/"
                      "reduction lists (omp region at line %d in %s)"
                      % (name, line, ev.fn.qual),
                      fp_extra="omp:%s:%d:%s" % (ev.fn.qual,
                                                 line - ev.fn.line, name))


def pass_epoch(prog, findings):
    for ev in prog.events:
        if not ev.fn.file.replace("\\", "/").startswith("src/server/"):
            continue
        for recv, line in sorted(ev.dist_writes.items()):
            if recv in ev.epoch_stamps:
                continue
            _emit(findings, prog.files, "PA-EPOCH", ev.fn.file, line,
                  "%s fills '%s.distances' but never stamps '%s.epoch' -- "
                  "every distance-bearing response must carry the snapshot "
                  "epoch (PR 6 protocol invariant)"
                  % (ev.fn.qual, recv, recv),
                  fp_extra="epoch:%s:%s" % (ev.fn.qual, recv))


# ---------------------------------------------------------------------------
# Program loading & driver.
# ---------------------------------------------------------------------------

class Program:
    def __init__(self, files_text):
        self.files = {}
        for path, text in sorted(files_text.items()):
            self.files[path] = parse_file(path, text)
        self.reg = Registry(self.files)
        self.events = []
        for path in sorted(self.files):
            fm = self.files[path]
            for fn in fm.funcs:
                self.events.append(walk_function(fm, fn, self.reg))


def run_passes(prog):
    findings = []
    pass_lock_order(prog, findings)
    pass_guarded(prog, findings)
    pass_layering(prog, findings)
    pass_include_hygiene(prog, findings)
    pass_omp_sharing(prog, findings)
    pass_epoch(prog, findings)
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings


def load_tree(root, compile_commands):
    """File set = src/ TUs from compile_commands + all src/ headers."""
    files = {}
    src_root = os.path.join(root, "src")
    tu_paths = []
    if compile_commands and os.path.exists(compile_commands):
        try:
            with open(compile_commands) as f:
                for entry in json.load(f):
                    p = entry.get("file", "")
                    if not os.path.isabs(p):
                        p = os.path.join(entry.get("directory", root), p)
                    p = os.path.realpath(p)
                    if p.startswith(os.path.realpath(src_root) + os.sep):
                        tu_paths.append(p)
        except (OSError, ValueError) as e:
            raise SystemExit("phast_analyze: bad compile_commands.json: %s" % e)
    for dirpath, _dirs, names in os.walk(src_root):
        for nm in names:
            if nm.endswith((".h", ".hpp", ".cpp", ".cc")):
                tu_paths.append(os.path.join(dirpath, nm))
    for p in tu_paths:
        rel = os.path.relpath(os.path.realpath(p), os.path.realpath(root))
        rel = rel.replace(os.sep, "/")
        if rel in files:
            continue
        try:
            with open(p, encoding="utf-8", errors="replace") as f:
                files[rel] = f.read()
        except OSError:
            continue
    return Program(files)


def check_headers(root, findings):
    """PA-HEADER: every src/ header must compile standalone."""
    src_root = os.path.join(root, "src")
    headers = []
    for dirpath, _dirs, names in os.walk(src_root):
        for nm in sorted(names):
            if nm.endswith((".h", ".hpp")):
                rel = os.path.relpath(os.path.join(dirpath, nm), root)
                headers.append(rel.replace(os.sep, "/"))
    compiler = os.environ.get("CXX", "g++")
    with tempfile.TemporaryDirectory() as tmp:
        for rel in sorted(headers):
            inc = rel[len("src/"):]
            tu = os.path.join(tmp, "standalone.cpp")
            with open(tu, "w") as f:
                f.write('#include "%s"\n' % inc)
            cmd = [compiler, "-std=c++20", "-fsyntax-only", "-I", src_root,
                   "-march=x86-64-v3", "-fopenmp", tu]
            try:
                proc = subprocess.run(cmd, capture_output=True, text=True)
            except OSError as e:
                raise SystemExit("phast_analyze: cannot run %s: %s"
                                 % (compiler, e))
            if proc.returncode != 0:
                first = ""
                for ln in proc.stderr.splitlines():
                    if ": error:" in ln:
                        first = ln.strip()
                        break
                findings.append(Finding(
                    "PA-HEADER", rel, 1,
                    "header does not compile standalone: %s"
                    % (first or "see compiler output"),
                    fp_extra="hdr:" + rel))
    return findings


def assign_fingerprints(findings):
    """Stable per-finding fingerprints (dedup repeated identical contexts)."""
    seen = {}
    out = []
    for f in findings:
        k = (f.rule, f.path, f.fp_extra)
        occ = seen.get(k, 0)
        seen[k] = occ + 1
        out.append((f, f.fingerprint(occ)))
    return out


def load_baseline(path):
    if not path or not os.path.exists(path):
        return {}
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        raise SystemExit("phast_analyze: bad baseline %s: %s" % (path, e))
    return {s["fingerprint"]: s for s in data.get("suppressions", [])}


def write_baseline(path, fps):
    data = {
        "version": 1,
        "tool": TOOL_NAME,
        "comment": "Regenerate with --write-baseline; every entry needs a "
                   "hand-written justification or it should be fixed instead.",
        "suppressions": [
            {"fingerprint": fp, "rule": f.rule, "path": f.path,
             "message": f.message, "justification": "TODO: justify or fix"}
            for (f, fp) in fps
        ],
    }
    with open(path, "w") as f:
        json.dump(data, f, indent=2, sort_keys=True)
        f.write("\n")


def write_sarif(path, fps):
    results = []
    for (f, fp) in fps:
        results.append({
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "partialFingerprints": {"phastAnalyze/v1": fp},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path},
                    "region": {"startLine": max(1, f.line)},
                },
            }],
        })
    sarif = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": TOOL_NAME,
                "version": TOOL_VERSION,
                "informationUri": "tools/phast_analyze.py",
                "rules": [{"id": rid,
                           "shortDescription": {"text": desc}}
                          for rid, desc in sorted(RULES.items())],
            }},
            "results": results,
        }],
    }
    with open(path, "w") as f:
        json.dump(sarif, f, indent=2, sort_keys=True)
        f.write("\n")


def changed_files(root, base):
    cmd = ["git", "-C", root, "diff", "--name-only", base, "--"]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True)
    except OSError:
        return None
    if proc.returncode != 0:
        return None
    return {ln.strip().replace(os.sep, "/")
            for ln in proc.stdout.splitlines() if ln.strip()}


# ---------------------------------------------------------------------------
# Self-test corpus.  Each case: (name, {virtual path: source}, expected rule
# set, optional expected finding count).
# ---------------------------------------------------------------------------

SELF_TEST_CASES = [
    # ---- PA-LOCK-ORDER ----
    ("lock_order_good_consistent", {"src/util/a.h": """
struct S {
  AnnotatedMutex a_;
  AnnotatedMutex b_;
  void F() { MutexLock la(a_); MutexLock lb(b_); }
  void G() { MutexLock la(a_); { MutexLock lb(b_); } }
};
"""}, [], None),
    ("lock_order_bad_cycle", {"src/util/a.h": """
struct S {
  AnnotatedMutex a_;
  AnnotatedMutex b_;
  void F() { MutexLock la(a_); MutexLock lb(b_); }
  void G() { MutexLock lb(b_); MutexLock la(a_); }
};
"""}, ["PA-LOCK-ORDER"], None),
    ("lock_order_bad_recursive_via_requires", {"src/util/a.h": """
struct S {
  AnnotatedMutex m_;
  void F() REQUIRES(m_);
};
void S::F() { MutexLock l(m_); }
"""}, ["PA-LOCK-ORDER"], 1),
    ("lock_order_bad_transitive_call", {"src/util/a.h": """
struct S {
  AnnotatedMutex a_;
  AnnotatedMutex b_;
  void LockB() { MutexLock l(b_); }
  void LockA() { MutexLock l(a_); }
  void F() { MutexLock l(a_); LockB(); }
  void G() { MutexLock l(b_); LockA(); }
};
"""}, ["PA-LOCK-ORDER"], None),
    ("lock_order_good_scoped_release", {"src/util/a.h": """
struct S {
  AnnotatedMutex a_;
  AnnotatedMutex b_;
  void F() { { MutexLock l(a_); } MutexLock l2(b_); }
  void G() { { MutexLock l(b_); } MutexLock l2(a_); }
};
"""}, [], None),
    ("lock_order_good_requires_not_transitive", {"src/util/a.h": """
struct S {
  AnnotatedMutex a_;
  AnnotatedMutex b_;
  void H() REQUIRES(a_) { }
  void F() { MutexLock l(b_); H(); }
  void G() { MutexLock la(a_); MutexLock lb(b_); }
};
"""}, [], None),
    # ---- PA-GUARDED ----
    ("guarded_bad_unlocked", {"src/pq/q.h": """
struct Q {
  AnnotatedMutex mu_;
  int items_ GUARDED_BY(mu_);
  int Peek() { return items_; }
};
"""}, ["PA-GUARDED"], 1),
    ("guarded_good_mutexlock", {"src/pq/q.h": """
struct Q {
  AnnotatedMutex mu_;
  int items_ GUARDED_BY(mu_);
  int Peek() { MutexLock l(mu_); return items_; }
};
"""}, [], None),
    ("guarded_good_requires", {"src/pq/q.h": """
struct Q {
  AnnotatedMutex mu_;
  int items_ GUARDED_BY(mu_);
  int Peek() REQUIRES(mu_) { return items_; }
};
"""}, [], None),
    ("guarded_good_ctor_dtor", {"src/pq/q.h": """
struct Q {
  AnnotatedMutex mu_;
  int items_ GUARDED_BY(mu_);
  Q() { items_ = 0; }
  ~Q() { items_ = -1; }
};
"""}, [], None),
    ("guarded_bad_after_scope_release", {"src/pq/q.h": """
struct Q {
  AnnotatedMutex mu_;
  int items_ GUARDED_BY(mu_);
  void Set() {
    { MutexLock l(mu_); items_ = 1; }
    items_ = 2;
  }
};
"""}, ["PA-GUARDED"], 1),
    ("guarded_good_receiver_chain", {"src/obs/r.cpp": """
struct Registry {
  AnnotatedMutex mu;
  int count GUARDED_BY(mu);
};
Registry& GlobalRegistry();
void Bump() {
  Registry& registry = GlobalRegistry();
  MutexLock lock(registry.mu);
  registry.count = registry.count + 1;
}
"""}, [], None),
    ("guarded_bad_receiver_chain", {"src/obs/r.cpp": """
struct Registry {
  AnnotatedMutex mu;
  int count GUARDED_BY(mu);
};
Registry& GlobalRegistry();
void Bump() {
  Registry& registry = GlobalRegistry();
  registry.count = registry.count + 1;
}
"""}, ["PA-GUARDED"], None),
    ("guarded_good_out_of_line_requires", {"src/gpusim/f.h": """
struct Fleet {
  AnnotatedMutex mu_;
  int cache_ GUARDED_BY(mu_);
  void CalibrateLocked() REQUIRES(mu_);
  void Use() { MutexLock l(mu_); CalibrateLocked(); }
};
void Fleet::CalibrateLocked() { cache_ = 1; }
"""}, [], None),
    ("guarded_bad_through_this", {"src/pq/q.h": """
struct Q {
  AnnotatedMutex mu_;
  int items_ GUARDED_BY(mu_);
  void Set() { this->items_ = 3; }
};
"""}, ["PA-GUARDED"], 1),
    # ---- PA-LAYERING ----
    ("layering_good_downward", {
        "src/server/x.h": "#include \"phast/engine.h\"\nstruct X {};\n",
        "src/phast/engine.h": "struct Engine {};\n",
    }, [], None),
    ("layering_bad_back_edge", {
        "src/util/x.h": "#include \"ch/foo.h\"\nstruct X {};\n",
        "src/ch/foo.h": "struct Foo {};\n",
    }, ["PA-LAYERING"], 1),
    ("layering_good_obs_interface_allowlist", {
        "src/phast/x.cpp": "#include \"obs/trace.h\"\nvoid F() {}\n",
        "src/obs/trace.h": "#include <cstdint>\nstruct Span {};\n",
    }, [], None),
    ("layering_bad_allowlist_poisoned", {
        "src/phast/x.cpp": "#include \"obs/trace.h\"\nvoid F() {}\n",
        "src/obs/trace.h": "#include \"server/service.h\"\nstruct Span {};\n",
        "src/server/service.h": "struct Service {};\n",
    }, ["PA-LAYERING"], None),
    ("layering_bad_include_cycle", {
        "src/ch/a.h": "#include \"ch/b.h\"\nstruct A {};\n",
        "src/ch/b.h": "#include \"ch/a.h\"\nstruct B {};\n",
    }, ["PA-LAYERING"], None),
    ("layering_good_fabric_over_server", {
        "src/fabric/mapping.cpp": "#include \"server/snapshot.h\"\nvoid F() {}\n",
        "src/server/snapshot.h": "struct Snapshot {};\n",
    }, [], None),
    ("layering_bad_server_includes_fabric", {
        "src/server/service.cpp": "#include \"fabric/mapping.h\"\nvoid F() {}\n",
        "src/fabric/mapping.h": "struct MappedSnapshot {};\n",
    }, ["PA-LAYERING"], 1),
    ("layering_bad_fabric_includes_verify", {
        "src/fabric/phast_serve.cpp":
            "#include \"verify/harness.h\"\nvoid F() {}\n",
        "src/verify/harness.h": "struct Harness {};\n",
    }, ["PA-LAYERING"], 1),
    # ---- PA-INCLUDE ----
    ("include_bad_vector", {"src/ch/x.cpp": """
std::vector<int> Make() { return std::vector<int>(); }
"""}, ["PA-INCLUDE"], 1),
    ("include_good_vector", {"src/ch/x.cpp": """
#include <vector>
std::vector<int> Make() { return std::vector<int>(); }
"""}, [], None),
    ("include_good_primary_header_cover", {
        "src/ch/y.cpp": "#include \"ch/y.h\"\n"
                        "std::vector<int> Make() { return {}; }\n",
        "src/ch/y.h": "#include <vector>\nstruct Y {};\n",
    }, [], None),
    ("include_bad_charged_to_header_not_cpp", {
        "src/ch/y.cpp": "#include \"ch/y.h\"\n"
                        "std::vector<int> Make() { return {}; }\n",
        "src/ch/y.h": "struct Y { std::vector<int> v; };\n",
    }, ["PA-INCLUDE"], 1),
    # ---- PA-OMP-SHARING ----
    ("omp_good_all_listed", {"src/phast/k.cpp": """
void F(int n) {
  int acc = 0;
#pragma omp parallel for default(none) shared(acc) firstprivate(n)
  for (int i = 0; i < n; ++i) { acc = acc + i; }
}
"""}, [], None),
    ("omp_bad_missing_local", {"src/phast/k.cpp": """
void F(int n) {
  int k = 3;
#pragma omp parallel for default(none) firstprivate(n)
  for (int i = 0; i < n; ++i) { int x = k + i; (void)x; }
}
"""}, ["PA-OMP-SHARING"], 1),
    ("omp_good_member_via_this", {"src/phast/k.h": """
struct S {
  int total_;
  void F(int n) {
#pragma omp parallel default(none) firstprivate(n)
    { int x = total_ + n; (void)x; }
  }
};
"""}, [], None),
    ("omp_bad_functor_call_position", {"src/phast/k.cpp": """
int Id(int v);
void F(int n) {
  auto work = Id;
#pragma omp parallel for default(none) firstprivate(n)
  for (int i = 0; i < n; ++i) { int y = work(i); (void)y; }
}
"""}, ["PA-OMP-SHARING"], 1),
    ("omp_good_reduction_and_bare_loop", {"src/phast/k.cpp": """
void F(int n) {
  long sum = 0;
#pragma omp parallel for default(none) reduction(+ : sum) firstprivate(n)
  for (int i = 0; i < n; ++i) sum = sum + i;
}
"""}, [], None),
    # ---- PA-EPOCH ----
    ("epoch_bad_unstamped_response", {"src/server/h.cpp": """
struct Response { unsigned long epoch; int distances; };
int ComputeTree();
Response Build() {
  Response r;
  r.distances = ComputeTree();
  return r;
}
"""}, ["PA-EPOCH"], 1),
    ("epoch_good_stamped", {"src/server/h.cpp": """
struct Response { unsigned long epoch; int distances; };
int ComputeTree();
Response Build(unsigned long e) {
  Response r;
  r.distances = ComputeTree();
  r.epoch = e;
  return r;
}
"""}, [], None),
    ("epoch_good_outside_server", {"src/phast/h.cpp": """
struct Response { unsigned long epoch; int distances; };
int ComputeTree();
Response Build() {
  Response r;
  r.distances = ComputeTree();
  return r;
}
"""}, [], None),
    ("epoch_good_suppressed", {"src/server/h.cpp": """
struct Response { unsigned long epoch; int distances; };
int ComputeTree();
Response Build() {
  Response r;
  r.distances = ComputeTree();  // phast-analyze: allow(PA-EPOCH)
  return r;
}
"""}, [], None),
    ("epoch_bad_push_back_writer", {"src/server/h.cpp": """
#include <vector>
struct Response { unsigned long epoch; std::vector<int> distances; };
Response Build() {
  Response r;
  r.distances.push_back(1);
  return r;
}
"""}, ["PA-EPOCH"], 1),
]


def run_self_test():
    failures = 0
    for (name, files, expected_rules, expected_count) in SELF_TEST_CASES:
        prog = Program(files)
        findings = run_passes(prog)
        got = sorted({f.rule for f in findings})
        ok = got == sorted(expected_rules)
        if ok and expected_count is not None:
            ok = len(findings) == expected_count
        if ok:
            print("PASS %s" % name)
        else:
            failures += 1
            print("FAIL %s: expected rules %s (count %s), got %s"
                  % (name, sorted(expected_rules), expected_count, got))
            for f in findings:
                print("    " + f.text())
    total = len(SELF_TEST_CASES)
    print("%d/%d self-test cases passed" % (total - failures, total))
    return 1 if failures else 0


# ---------------------------------------------------------------------------
# main
# ---------------------------------------------------------------------------

def main(argv):
    import argparse
    default_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    ap = argparse.ArgumentParser(
        prog="phast_analyze.py",
        description="Semantic whole-program analyzer for the PHAST tree.")
    ap.add_argument("--root", default=default_root,
                    help="repository root (default: parent of tools/)")
    ap.add_argument("--compile-commands", default=None,
                    help="path to compile_commands.json "
                         "(default: <root>/build/compile_commands.json)")
    ap.add_argument("--baseline", default=None,
                    help="baseline JSON "
                         "(default: <root>/tools/phast_analyze_baseline.json)")
    ap.add_argument("--write-baseline", action="store_true",
                    help="write current findings as the baseline and exit")
    ap.add_argument("--sarif", default=None,
                    help="write non-baselined findings as SARIF 2.1.0")
    ap.add_argument("--strict", action="store_true",
                    help="also fail on stale baseline entries")
    ap.add_argument("--diff", nargs="?", const="HEAD", default=None,
                    metavar="BASE",
                    help="only report findings in files changed vs BASE")
    ap.add_argument("--self-test", action="store_true",
                    help="run the embedded good/bad corpus")
    ap.add_argument("--check-headers", action="store_true",
                    help="run ONLY the header self-sufficiency check "
                         "(compiles every src/ header standalone)")
    args = ap.parse_args(argv)

    if args.self_test:
        return run_self_test()

    root = os.path.abspath(args.root)
    if not os.path.isdir(os.path.join(root, "src")):
        print("phast_analyze: no src/ under --root %s" % root, file=sys.stderr)
        return 2

    if args.check_headers:
        findings = check_headers(root, [])
    else:
        cc = args.compile_commands or os.path.join(root, "build",
                                                   "compile_commands.json")
        prog = load_tree(root, cc)
        findings = run_passes(prog)

    if args.diff is not None:
        changed = changed_files(root, args.diff)
        if changed is None:
            print("phast_analyze: git diff vs %s failed; analyzing all files"
                  % args.diff, file=sys.stderr)
        else:
            findings = [f for f in findings if f.path in changed]

    fps = assign_fingerprints(findings)
    baseline_path = args.baseline or os.path.join(
        root, "tools", "phast_analyze_baseline.json")

    if args.write_baseline:
        write_baseline(baseline_path, fps)
        print("phast_analyze: wrote %d suppression(s) to %s"
              % (len(fps), baseline_path))
        return 0

    baseline = load_baseline(baseline_path)
    new = [(f, fp) for (f, fp) in fps if fp not in baseline]
    current_fps = {fp for (_f, fp) in fps}
    stale = sorted(fp for fp in baseline if fp not in current_fps)

    if args.sarif:
        write_sarif(args.sarif, new)

    for (f, _fp) in new:
        print(f.text())
    suppressed = len(fps) - len(new)
    summary = "phast_analyze: %d finding(s)" % len(new)
    if suppressed:
        summary += ", %d baselined" % suppressed
    if stale:
        summary += ", %d stale baseline entrie(s)" % len(stale)
    print(summary)
    if new:
        return 1
    if args.strict and stale:
        print("phast_analyze: --strict: remove stale baseline entries: %s"
              % ", ".join(stale), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

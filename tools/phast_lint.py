#!/usr/bin/env python3
"""phast_lint: PHAST-specific invariant linter (layer 3 of the static gate).

Division of labour with tools/phast_analyze.py (documented in both tools):
  * phast_lint.py (this tool) owns TOKEN-LOCAL rules: anything decidable
    from a single logical line after comment/string stripping. It never
    tracks scopes or crosses translation units.
  * phast_analyze.py owns SEMANTIC rules: lock-order cycles, GUARDED_BY
    access auditing, module layering, default(none) sharing-clause
    completeness, and the response-epoch protocol invariant — anything that
    needs a scope tracker or whole-program context.
  Concretely at the omp boundary: this linter checks that `default(none)`
  is *spelled* on every parallel pragma; whether the sharing lists are
  *complete* is PA-OMP-SHARING's job in the analyzer. The self-test corpus
  pins that split with boundary cases on both sides.

Enforces project rules that generic tools (clang-tidy, -Wthread-safety)
cannot express:

  omp-default-none      every `#pragma omp parallel` must carry
                        `default(none)` so the sharing of every variable is
                        an explicit, reviewed decision.
  stale-parent          implicit-init sweep kernels reset the *labels* of
                        unmarked vertices but not their *parent slots* (see
                        SweepArgs::parents in src/phast/kernels.h). A parent
                        slot is meaningful only where the label is finite,
                        so any function that reads a parent slot must also
                        check a label (kInfWeight / Distance / Marked) in
                        its body.
  naked-throw           `throw` appears only in src/util/error.h (the
                        centralized error surface); everything else calls
                        Require()/ThrowBadAlloc() or rethrows (`throw;`).
  no-wall-clock-rng     no rand()/srand()/time()-seeded or std:: random
                        sources in src/ — all randomness flows through the
                        deterministic util/rng.h so every run is replayable
                        (the differential fuzzer's minimizer depends on it).
  intrinsics-hygiene    SIMD intrinsics headers (<immintrin.h>, ...) must be
                        wrapped in the matching feature-test conditional
                        (#if defined(__SSE4_1__) / __AVX2__), and _mm_* /
                        _mm256_* tokens may appear only in files that do so
                        — unguarded intrinsics break the scalar fallback
                        build (-DPHAST_ARCH="").
  no-raw-now            no raw clock reads (std::chrono ...::now(),
                        clock_gettime, gettimeofday) in src/ outside
                        util/timer.h and src/obs/ — all timing flows through
                        Timer/StopWatch or scoped spans, so there is exactly
                        one clock discipline to audit (DESIGN.md §8).
  server-no-prepare     serving-path code (src/server/ and src/fabric/)
                        never runs preprocessing — PrepareNetwork() and
                        BuildContractionHierarchy() are offline-only. The
                        serving contract is "load a snapshot, start
                        answering"; contraction at request time would stall
                        the daemon for minutes. phast_prepare.cpp, the
                        offline snapshot builder, is the single exemption.
  fabric-mmap-only      raw mmap/munmap/mremap calls appear only in
                        src/fabric/mapping.* — every mapping flows through
                        fabric::MappedSnapshot, so there is exactly one
                        place that owns PROT_READ enforcement, unmap
                        lifetimes, and the fabric.map cold-start span.
  broken-doc-comment    a `///` doc run must not degrade mid-run: a line
                        that lost slashes (`/ text` next to a comment, or a
                        plain `//` sandwiched between `///` lines) silently
                        drops out of the rendered documentation — or worse,
                        `/ text` is parsed as a division expression.

Suppression: append `// phast-lint: allow(<rule>)` to the offending line.

Usage:
  phast_lint.py --root <repo>          lint src/, bench/, tests/, examples/
  phast_lint.py --self-test            run the embedded good/bad corpus
  phast_lint.py file.cpp ...           lint specific files (e.g. a diff)

Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SOURCE_DIRS = ("src", "bench", "tests", "examples")
SOURCE_SUFFIXES = {".h", ".hpp", ".cpp", ".cc"}

ALLOW_RE = re.compile(r"//\s*phast-lint:\s*allow\(([a-z0-9-]+)\)")


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving line
    structure, so token rules do not fire inside documentation or logs."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            chunk = text[i : j + 2]
            out.append("".join("\n" if ch == "\n" else " " for ch in chunk))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(quote + " " * (j - i - 1) + quote)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_allows(raw_lines: list[str], lineno: int, rule: str) -> bool:
    if 1 <= lineno <= len(raw_lines):
        m = ALLOW_RE.search(raw_lines[lineno - 1])
        if m and m.group(1) == rule:
            return True
    return False


def logical_lines(code: str):
    """Yields (start_lineno, text) with backslash continuations joined —
    OpenMP pragmas span lines."""
    lines = code.split("\n")
    i = 0
    while i < len(lines):
        start = i
        buf = lines[i]
        while buf.rstrip().endswith("\\") and i + 1 < len(lines):
            buf = buf.rstrip()[:-1] + " " + lines[i + 1]
            i += 1
        yield start + 1, buf
        i += 1


# --- rule: omp-default-none -------------------------------------------------

OMP_PARALLEL_RE = re.compile(r"#\s*pragma\s+omp\s+parallel\b")


def check_omp_default_none(path, code, raw_lines, findings):
    for lineno, text in logical_lines(code):
        if OMP_PARALLEL_RE.search(text) and "default(none)" not in text.replace(
            " ", ""
        ).replace("default (", "default("):
            if not line_allows(raw_lines, lineno, "omp-default-none"):
                findings.append(
                    Finding(
                        path,
                        lineno,
                        "omp-default-none",
                        "omp parallel without default(none); declare every "
                        "shared/firstprivate variable explicitly",
                    )
                )


# --- rule: stale-parent -----------------------------------------------------

# A *read* of a parent slot: parents[...] / parents_[...] / RawParents(...)
# not immediately assigned to. Writes (slot = value) are the kernels' job.
PARENT_READ_RE = re.compile(r"\b(?:parents_?\s*\[|RawParents\s*\()")
LABEL_CHECK_RE = re.compile(
    r"kInfWeight|\bMarked\s*\(|\bDistance\s*\(|\blabels_?\s*\["
)
FUNC_OPEN_RE = re.compile(r"\)[^;{}]*\{")


def function_spans(code: str):
    """Rough function extents: from each ') ... {' to its matching brace.
    Good enough for rule scoping; the linter is a heuristic gate."""
    spans = []
    for m in FUNC_OPEN_RE.finditer(code):
        open_idx = m.end() - 1
        depth = 0
        for i in range(open_idx, len(code)):
            if code[i] == "{":
                depth += 1
            elif code[i] == "}":
                depth -= 1
                if depth == 0:
                    spans.append((open_idx, i + 1))
                    break
    return spans


def check_stale_parent(path, code, raw_lines, findings):
    # The kernels themselves maintain the invariant; their writes and the
    # unmarked-vertex fast path are exactly the asymmetry being protected.
    if path.endswith(("phast/kernels.cpp", "phast/kernels.h")):
        return
    spans = function_spans(code)
    for m in PARENT_READ_RE.finditer(code):
        # Skip writes: parents[...] = value (but not ==).
        tail = code[m.start() :]
        bracket = re.match(r"\bparents_?\s*\[", tail)
        if bracket:
            depth, i = 0, m.start()
            while i < len(code):
                if code[i] == "[":
                    depth += 1
                elif code[i] == "]":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            rest = code[i + 1 :].lstrip()
            if rest.startswith("=") and not rest.startswith("=="):
                continue
        lineno = code.count("\n", 0, m.start()) + 1
        if line_allows(raw_lines, lineno, "stale-parent"):
            continue
        enclosing = [s for s in spans if s[0] <= m.start() < s[1]]
        body = code[enclosing[-1][0] : enclosing[-1][1]] if enclosing else code
        if not LABEL_CHECK_RE.search(body):
            findings.append(
                Finding(
                    path,
                    lineno,
                    "stale-parent",
                    "parent slot read without a label check in the same "
                    "function; unmarked vertices keep stale parents "
                    "(see SweepArgs::parents)",
                )
            )


# --- rule: naked-throw ------------------------------------------------------

THROW_RE = re.compile(r"\bthrow\b(?!\s*;)")


def check_naked_throw(path, code, raw_lines, findings):
    if path.endswith("util/error.h"):
        return
    if not path.startswith("src") and "/src/" not in path:
        return  # tests/benches may use gtest's EXPECT_THROW machinery freely
    for m in THROW_RE.finditer(code):
        lineno = code.count("\n", 0, m.start()) + 1
        if line_allows(raw_lines, lineno, "naked-throw"):
            continue
        findings.append(
            Finding(
                path,
                lineno,
                "naked-throw",
                "throw outside src/util/error.h; use Require()/"
                "ThrowBadAlloc() or add a typed helper to error.h",
            )
        )


# --- rule: no-wall-clock-rng ------------------------------------------------

RNG_RE = re.compile(
    r"(?<![\w:])(?:rand|srand)\s*\(|(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
    r"|std\s*::\s*(?:random_device|mt19937(?:_64)?|default_random_engine)"
)


def check_rng(path, code, raw_lines, findings):
    if not path.startswith("src") and "/src/" not in path:
        return
    for m in RNG_RE.finditer(code):
        lineno = code.count("\n", 0, m.start()) + 1
        if line_allows(raw_lines, lineno, "no-wall-clock-rng"):
            continue
        findings.append(
            Finding(
                path,
                lineno,
                "no-wall-clock-rng",
                "non-deterministic randomness/time seed in src/; use the "
                "seeded util/rng.h Rng so runs stay replayable",
            )
        )


# --- rule: no-raw-now -------------------------------------------------------

# A raw clock read: any `X::now()` (the std::chrono clock idiom) or the
# POSIX clock calls. Timer wraps steady_clock; spans wrap TraceClockNs.
RAW_NOW_RE = re.compile(
    r"::\s*now\s*\(\s*\)|\bclock_gettime\s*\(|\bgettimeofday\s*\("
)


def check_raw_now(path, code, raw_lines, findings):
    if not path.startswith("src") and "/src/" not in path:
        return
    normalized = path.replace("\\", "/")
    # The two sanctioned clock owners: Timer/StopWatch and the trace clock.
    if normalized.endswith("util/timer.h"):
        return
    if "src/obs/" in normalized or normalized.startswith("obs/"):
        return
    for m in RAW_NOW_RE.finditer(code):
        lineno = code.count("\n", 0, m.start()) + 1
        if line_allows(raw_lines, lineno, "no-raw-now"):
            continue
        findings.append(
            Finding(
                path,
                lineno,
                "no-raw-now",
                "raw clock read outside util/timer.h and src/obs/; use "
                "Timer/StopWatch (or a PHAST_SPAN) so timing stays "
                "centralized and mockable",
            )
        )


# --- rule: intrinsics-hygiene -----------------------------------------------

INTRIN_HEADERS = {
    "immintrin.h": "__AVX2__",
    "smmintrin.h": "__SSE4_1__",
    "emmintrin.h": "__SSE2__",
    "nmmintrin.h": "__SSE4_2__",
    "tmmintrin.h": "__SSSE3__",
    "xmmintrin.h": "__SSE__",
}
INTRIN_INCLUDE_RE = re.compile(r"#\s*include\s*<(\w+intrin\.h)>")
INTRIN_TOKEN_RE = re.compile(r"\b(_mm256_\w+|_mm_\w+)\s*\(")
COND_PUSH_RE = re.compile(r"#\s*(?:if|ifdef|ifndef)\b(.*)")
COND_POP_RE = re.compile(r"#\s*endif\b")


def conditional_stack_at(code: str):
    """Returns per-line list of the preprocessor-conditional texts active at
    that line (heuristic: #else/#elif keep the original condition text)."""
    stacks, stack = [], []
    for _, text in ((i, l) for i, l in enumerate(code.split("\n"))):
        stacks.append(list(stack))
        push = COND_PUSH_RE.match(text.strip())
        if push:
            stack.append(text.strip())
        elif COND_POP_RE.match(text.strip()):
            if stack:
                stack.pop()
    return stacks


def check_intrinsics(path, code, raw_lines, findings):
    stacks = conditional_stack_at(code)
    lines = code.split("\n")
    for idx, text in enumerate(lines):
        m = INTRIN_INCLUDE_RE.search(text)
        if not m:
            continue
        header = m.group(1)
        macro = INTRIN_HEADERS.get(header)
        lineno = idx + 1
        if line_allows(raw_lines, lineno, "intrinsics-hygiene"):
            continue
        guard_text = " ".join(stacks[idx])
        if macro is None or macro not in guard_text:
            findings.append(
                Finding(
                    path,
                    lineno,
                    "intrinsics-hygiene",
                    f"<{header}> must be guarded by #if defined"
                    f"({macro or '__SSE/__AVX feature macro'}) so the scalar "
                    "fallback build stays intrinsic-free",
                )
            )
    has_guarded_include = any(
        INTRIN_INCLUDE_RE.search(l) for l in lines
    )
    for m in INTRIN_TOKEN_RE.finditer(code):
        lineno = code.count("\n", 0, m.start()) + 1
        if line_allows(raw_lines, lineno, "intrinsics-hygiene"):
            continue
        if not has_guarded_include:
            findings.append(
                Finding(
                    path,
                    lineno,
                    "intrinsics-hygiene",
                    f"{m.group(1)} used without including an intrinsics "
                    "header in this file (include what you use, guarded)",
                )
            )
            break  # one finding per file is enough for this rule


# --- rule: server-no-prepare ------------------------------------------------

PREPARE_CALL_RE = re.compile(
    r"\b(PrepareNetwork|BuildContractionHierarchy)\s*\("
)


def check_server_no_prepare(path, code, raw_lines, findings):
    normalized = path.replace("\\", "/")
    serving = (
        "src/server/" in normalized
        or "src/fabric/" in normalized
        or normalized.startswith(("server/", "fabric/"))
    )
    if not serving:
        return
    if normalized.endswith("phast_prepare.cpp"):
        return  # the offline snapshot builder is the one sanctioned caller
    for m in PREPARE_CALL_RE.finditer(code):
        lineno = code.count("\n", 0, m.start()) + 1
        if line_allows(raw_lines, lineno, "server-no-prepare"):
            continue
        findings.append(
            Finding(
                path,
                lineno,
                "server-no-prepare",
                f"{m.group(1)}() in serving-path code; preprocessing is "
                "offline-only (phast_prepare) — servers load snapshots",
            )
        )


# --- rule: fabric-mmap-only -------------------------------------------------

MMAP_CALL_RE = re.compile(r"(?<![\w.])(?:::\s*)?(mmap|munmap|mremap)\s*\(")


def check_fabric_mmap_only(path, code, raw_lines, findings):
    normalized = path.replace("\\", "/")
    stem = normalized.rsplit("/", 1)[-1]
    in_mapping = (
        "src/fabric/" in normalized or normalized.startswith("fabric/")
    ) and stem.split(".")[0] == "mapping"
    if in_mapping:
        return
    for m in MMAP_CALL_RE.finditer(code):
        lineno = code.count("\n", 0, m.start()) + 1
        if line_allows(raw_lines, lineno, "fabric-mmap-only"):
            continue
        findings.append(
            Finding(
                path,
                lineno,
                "fabric-mmap-only",
                f"raw {m.group(1)}() outside src/fabric/mapping.*; map "
                "snapshots through fabric::MappedSnapshot so read-only "
                "protection, unmap lifetime, and the cold-start span live "
                "in one place",
            )
        )


# --- rule: broken-doc-comment -----------------------------------------------

# A `///` doc line (not `////` banners); a plain `//` comment line; a lone
# `/` followed by prose (the classic lost-slashes typo).
DOC_LINE_RE = re.compile(r"^\s*///(?:$|[^/])")
PLAIN_COMMENT_RE = re.compile(r"^\s*//(?:$|[^/])")
LOST_SLASHES_RE = re.compile(r"^/\s+\S")


def check_broken_doc_comment(path, code, raw_lines, findings):
    def is_doc(idx: int) -> bool:
        return 0 <= idx < len(raw_lines) and bool(
            DOC_LINE_RE.match(raw_lines[idx])
        )

    def is_comment(idx: int) -> bool:
        return 0 <= idx < len(raw_lines) and bool(
            DOC_LINE_RE.match(raw_lines[idx])
            or PLAIN_COMMENT_RE.match(raw_lines[idx])
        )

    for idx, line in enumerate(raw_lines):
        lineno = idx + 1
        if line_allows(raw_lines, lineno, "broken-doc-comment"):
            continue
        stripped = line.strip()
        if stripped.startswith(("///", "/*", "*")):
            continue
        if stripped.startswith("//"):
            # A two-slash line sandwiched between `///` lines is a doc line
            # that lost its third slash (an adjacent plain `//` note is
            # legitimate, so both neighbors must be doc lines).
            if is_doc(idx - 1) and is_doc(idx + 1):
                findings.append(
                    Finding(
                        path,
                        lineno,
                        "broken-doc-comment",
                        "`//` line inside a `///` doc run; restore the third "
                        "slash or move the note out of the run",
                    )
                )
        elif stripped.startswith("/"):
            # `/ text` next to a comment line: a comment that lost slashes
            # and now parses as a division expression (or not at all).
            if LOST_SLASHES_RE.match(stripped) and (
                is_comment(idx - 1) or is_comment(idx + 1)
            ):
                findings.append(
                    Finding(
                        path,
                        lineno,
                        "broken-doc-comment",
                        "line starts with a single `/` next to a comment; "
                        "a comment line lost its slashes",
                    )
                )


RULES = (
    check_omp_default_none,
    check_stale_parent,
    check_naked_throw,
    check_rng,
    check_raw_now,
    check_intrinsics,
    check_server_no_prepare,
    check_fabric_mmap_only,
    check_broken_doc_comment,
)


def lint_text(path: str, raw: str) -> list:
    findings: list[Finding] = []
    raw_lines = raw.split("\n")
    code = strip_comments_and_strings(raw)
    for rule in RULES:
        rule(path, code, raw_lines, findings)
    return findings


def lint_file(path: Path, display: str | None = None) -> list:
    try:
        raw = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        return [Finding(str(path), 0, "io", str(e))]
    return lint_text(display or str(path), raw)


def collect_files(root: Path):
    for d in SOURCE_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for p in sorted(base.rglob("*")):
            if p.suffix in SOURCE_SUFFIXES and p.is_file():
                yield p


# --- self-test corpus -------------------------------------------------------
# One known-good and one known-bad snippet per rule. Paths matter: rules are
# scoped to src/.

SELF_TEST_CASES = [
    # (name, virtual path, snippet, expected rule or None)
    (
        "omp-default-none/bad",
        "src/x/a.cpp",
        "void f() {\n#pragma omp parallel\n  { work(); }\n}\n",
        "omp-default-none",
    ),
    (
        "omp-default-none/good",
        "src/x/a.cpp",
        "void f() {\n#pragma omp parallel default(none) shared(x)\n"
        "  { work(); }\n}\n",
        None,
    ),
    (
        "omp-default-none/multiline-bad",
        "src/x/a.cpp",
        "void f() {\n#pragma omp parallel \\\n    shared(x)\n  { work(); }\n}\n",
        "omp-default-none",
    ),
    (
        "omp-default-none/suppressed",
        "src/x/a.cpp",
        "void f() {\n"
        "#pragma omp parallel  // phast-lint: allow(omp-default-none)\n"
        "  { work(); }\n}\n",
        None,
    ),
    # --- lint/analyzer boundary regressions (see the module docstring) ---
    # The linter checks that default(none) is SPELLED; an incomplete sharing
    # list is phast_analyze's PA-OMP-SHARING finding, not a lint finding.
    (
        "omp-default-none/boundary-incomplete-list-is-analyzer-turf",
        "src/x/a.cpp",
        "void f(int n) {\n  int k = 3;\n"
        "#pragma omp parallel for default(none) firstprivate(n)\n"
        "  for (int i = 0; i < n; ++i) use(k + i);\n}\n",
        None,
    ),
    # A GUARDED_BY field accessed without its mutex is phast_analyze's
    # PA-GUARDED finding (needs a scope tracker); the linter must stay quiet.
    (
        "boundary/guarded-access-is-analyzer-turf",
        "src/x/a.h",
        "struct Q {\n  AnnotatedMutex mu_;\n  int items_ GUARDED_BY(mu_);\n"
        "  int Peek() { return items_; }\n};\n",
        None,
    ),
    # A server response filled without an epoch stamp is phast_analyze's
    # PA-EPOCH finding (whole-function dataflow); server-no-prepare and the
    # other token-local server rules must not fire on it.
    (
        "boundary/unstamped-response-is-analyzer-turf",
        "src/server/a.cpp",
        "Response Build(const std::vector<Weight>& tree) {\n"
        "  Response response;\n  response.distances = tree;\n"
        "  return response;\n}\n",
        None,
    ),
    # Inconsistent MutexLock nesting across functions is phast_analyze's
    # PA-LOCK-ORDER finding (whole-program graph); no token-local rule fires.
    (
        "boundary/lock-order-is-analyzer-turf",
        "src/x/a.h",
        "struct S {\n  AnnotatedMutex a_;\n  AnnotatedMutex b_;\n"
        "  void F() { MutexLock la(a_); MutexLock lb(b_); }\n"
        "  void G() { MutexLock lb(b_); MutexLock la(a_); }\n};\n",
        None,
    ),
    # The batched contraction engine's region shape: num_threads + a
    # multi-line shared() list — the continuation must not hide a missing
    # default(none).
    (
        "omp-default-none/batched-contraction-good",
        "src/ch/a.cpp",
        "void f() {\n"
        "#pragma omp parallel for schedule(dynamic, 4) \\\n"
        "    num_threads(threads_) default(none) \\\n"
        "    shared(batch, pool, sims, guard)\n"
        "  for (size_t i = 0; i < batch.size(); ++i) work(i);\n}\n",
        None,
    ),
    (
        "omp-default-none/batched-contraction-bad",
        "src/ch/a.cpp",
        "void f() {\n"
        "#pragma omp parallel for schedule(dynamic, 4) \\\n"
        "    num_threads(threads_) \\\n"
        "    shared(batch, pool, sims, guard)\n"
        "  for (size_t i = 0; i < batch.size(); ++i) work(i);\n}\n",
        "omp-default-none",
    ),
    (
        "stale-parent/bad",
        "src/x/a.cpp",
        "VertexId f(const W& ws, size_t slot) {\n"
        "  return ws.parents_[slot];\n}\n",
        "stale-parent",
    ),
    (
        "stale-parent/good",
        "src/x/a.cpp",
        "VertexId f(const W& ws, size_t slot) {\n"
        "  if (ws.labels_[slot] == kInfWeight) return kInvalidVertex;\n"
        "  return ws.parents_[slot];\n}\n",
        None,
    ),
    (
        "stale-parent/write-ok",
        "src/x/a.cpp",
        "void f(W& ws, size_t slot) {\n"
        "  ws.parents_[slot] = kInvalidVertex;\n}\n",
        None,
    ),
    (
        "naked-throw/bad",
        "src/x/a.cpp",
        'void f() { throw std::runtime_error("boom"); }\n',
        "naked-throw",
    ),
    (
        "naked-throw/rethrow-ok",
        "src/x/a.cpp",
        "void f() { try { g(); } catch (...) { throw; } }\n",
        None,
    ),
    (
        "naked-throw/error-header-ok",
        "src/util/error.h",
        'void f() { throw InputError("bad"); }\n',
        None,
    ),
    (
        "no-wall-clock-rng/bad-rand",
        "src/x/a.cpp",
        "int f() { return rand() % 10; }\n",
        "no-wall-clock-rng",
    ),
    (
        "no-wall-clock-rng/bad-time-seed",
        "src/x/a.cpp",
        "void f() { srand(time(nullptr)); }\n",
        "no-wall-clock-rng",
    ),
    (
        "no-wall-clock-rng/bad-random-device",
        "src/x/a.cpp",
        "void f() { std::random_device rd; use(rd()); }\n",
        "no-wall-clock-rng",
    ),
    (
        "no-wall-clock-rng/good",
        "src/x/a.cpp",
        "uint64_t f() { Rng rng(42); return rng.Next(); }\n",
        None,
    ),
    (
        "no-wall-clock-rng/member-time-ok",
        "src/x/a.cpp",
        "double f(const Timer& t) { return t.time(); }\n",
        None,
    ),
    (
        "no-raw-now/bad-chrono-now",
        "src/x/a.cpp",
        "void f() { auto t = std::chrono::steady_clock::now(); }\n",
        "no-raw-now",
    ),
    (
        "no-raw-now/bad-clock-gettime",
        "src/x/a.cpp",
        "void f() { timespec ts; clock_gettime(CLOCK_MONOTONIC, &ts); }\n",
        "no-raw-now",
    ),
    (
        "no-raw-now/bad-gettimeofday",
        "src/x/a.cpp",
        "void f() { timeval tv; gettimeofday(&tv, nullptr); }\n",
        "no-raw-now",
    ),
    (
        "no-raw-now/timer-header-exempt",
        "src/util/timer.h",
        "void f() { auto t = Clock::now(); }\n",
        None,
    ),
    (
        "no-raw-now/obs-exempt",
        "src/obs/trace.cpp",
        "uint64_t f() { return ns(std::chrono::steady_clock::now()); }\n",
        None,
    ),
    (
        "no-raw-now/tests-exempt",
        "tests/test_x.cpp",
        "void f() { auto t = std::chrono::steady_clock::now(); }\n",
        None,
    ),
    (
        "no-raw-now/timer-wrapper-ok",
        "src/x/a.cpp",
        "double f() { const Timer t; return t.ElapsedMs(); }\n",
        None,
    ),
    (
        "no-raw-now/suppressed",
        "src/x/a.cpp",
        "void f() {\n"
        "  auto t = Clock::now();  // phast-lint: allow(no-raw-now)\n"
        "}\n",
        None,
    ),
    (
        "intrinsics-hygiene/bad-unguarded-include",
        "src/x/a.cpp",
        "#include <immintrin.h>\nvoid f() {}\n",
        "intrinsics-hygiene",
    ),
    (
        "intrinsics-hygiene/good-guarded",
        "src/x/a.cpp",
        "#if defined(__AVX2__)\n#include <immintrin.h>\n#endif\n"
        "#if defined(__AVX2__)\nvoid f() { auto v = _mm256_set1_epi32(1); }\n"
        "#endif\n",
        None,
    ),
    (
        "intrinsics-hygiene/bad-token-without-include",
        "src/x/a.cpp",
        "void f() { auto v = _mm_set1_epi32(1); (void)v; }\n",
        "intrinsics-hygiene",
    ),
    (
        "server-no-prepare/bad-prepare",
        "src/server/service.cpp",
        "void f(const EdgeList& e) { auto p = PrepareNetwork(e); }\n",
        "server-no-prepare",
    ),
    (
        "server-no-prepare/bad-contraction",
        "src/server/phast_serve.cpp",
        "void f(const Graph& g) { auto ch = BuildContractionHierarchy(g); }\n",
        "server-no-prepare",
    ),
    (
        "server-no-prepare/prepare-tool-exempt",
        "src/server/phast_prepare.cpp",
        "void f(const EdgeList& e) { auto p = PrepareNetwork(e); }\n",
        None,
    ),
    (
        "server-no-prepare/outside-server-ok",
        "src/phast/prepare.cpp",
        "void f(const EdgeList& e) { auto p = PrepareNetwork(e); }\n",
        None,
    ),
    (
        "server-no-prepare/suppressed",
        "src/server/service.cpp",
        "void f(const EdgeList& e) {\n"
        "  auto p = PrepareNetwork(e);  // phast-lint: allow(server-no-prepare)\n"
        "}\n",
        None,
    ),
    (
        "server-no-prepare/fabric-is-serving-path",
        "src/fabric/phast_serve.cpp",
        "void f(const Graph& g) { auto ch = BuildContractionHierarchy(g); }\n",
        "server-no-prepare",
    ),
    (
        "fabric-mmap-only/bad-raw-mmap",
        "src/server/snapshot.cpp",
        "void f(int fd, size_t n) { void* p = ::mmap(nullptr, n, 1, 1, fd, 0); }\n",
        "fabric-mmap-only",
    ),
    (
        "fabric-mmap-only/bad-munmap-in-fabric",
        "src/fabric/phast_router.cpp",
        "void f(void* p, size_t n) { ::munmap(p, n); }\n",
        "fabric-mmap-only",
    ),
    (
        "fabric-mmap-only/mapping-exempt",
        "src/fabric/mapping.cpp",
        "void f(int fd, size_t n) { void* p = ::mmap(nullptr, n, 1, 1, fd, 0); }\n"
        "void g(void* p, size_t n) { ::munmap(p, n); }\n",
        None,
    ),
    (
        "fabric-mmap-only/suppressed",
        "bench/bench_server.cpp",
        "void f(void* p, size_t n) {\n"
        "  ::munmap(p, n);  // phast-lint: allow(fabric-mmap-only)\n"
        "}\n",
        None,
    ),
    (
        "comments-are-ignored",
        "src/x/a.cpp",
        "// throw rand() time(0) #pragma omp parallel\n"
        '/* std::random_device; parents_[i] */\nconst char* s = "throw";\n',
        None,
    ),
    # The protocol.cpp-style typo: one line of a /// run lost two slashes.
    (
        "broken-doc-comment/bad-lost-slashes",
        "src/x/a.cpp",
        "/ Reads exactly `size` bytes. Returns bytes read: `size` on\n"
        "/// success, 0 on EOF before the first byte.\n"
        "size_t ReadFull(int fd, void* data, size_t size);\n",
        "broken-doc-comment",
    ),
    (
        "broken-doc-comment/bad-two-slash-mid-run",
        "src/x/a.cpp",
        "/// Reads exactly `size` bytes.\n"
        "// Returns bytes read: `size` on success,\n"
        "/// 0 on EOF before the first byte.\n"
        "size_t ReadFull(int fd, void* data, size_t size);\n",
        "broken-doc-comment",
    ),
    (
        "broken-doc-comment/plain-note-after-doc-ok",
        "src/x/a.cpp",
        "/// Reads exactly `size` bytes.\n"
        "// TODO: retry on EAGAIN too.\n"
        "size_t ReadFull(int fd, void* data, size_t size);\n",
        None,
    ),
    (
        "broken-doc-comment/wrapped-division-ok",
        "src/x/a.cpp",
        "int f(int a, int b) {\n  return (a + b)\n/ b;\n}\n",
        None,
    ),
    (
        "broken-doc-comment/block-comment-ok",
        "src/x/a.cpp",
        "/* A block comment\n * with a starred body\n */\nvoid f();\n",
        None,
    ),
    (
        "broken-doc-comment/suppressed",
        "src/x/a.cpp",
        "/// Divides the accumulators:\n"
        "/ 2  // phast-lint: allow(broken-doc-comment)\n",
        None,
    ),
]


def run_self_test() -> int:
    failures = 0
    for name, vpath, snippet, expected in SELF_TEST_CASES:
        found = lint_text(vpath, snippet)
        rules = {f.rule for f in found}
        if expected is None:
            if found:
                failures += 1
                print(f"FAIL {name}: expected clean, got {[str(f) for f in found]}")
        else:
            if expected not in rules:
                failures += 1
                print(f"FAIL {name}: expected {expected}, got {sorted(rules)}")
            elif rules - {expected}:
                failures += 1
                print(f"FAIL {name}: extra findings {sorted(rules - {expected})}")
    total = len(SELF_TEST_CASES)
    print(f"phast_lint self-test: {total - failures}/{total} cases passed")
    return 1 if failures else 0


def main(argv) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", type=Path, help="repository root to lint")
    ap.add_argument("--self-test", action="store_true")
    ap.add_argument("files", nargs="*", type=Path)
    args = ap.parse_args(argv)

    if args.self_test:
        return run_self_test()

    targets = []
    if args.root:
        targets = [(p, str(p.relative_to(args.root))) for p in collect_files(args.root)]
    for f in args.files:
        targets.append((f, str(f)))
    if not targets:
        ap.print_usage()
        return 2

    findings = []
    for path, display in targets:
        findings.extend(lint_file(path, display))
    for f in findings:
        print(f)
    print(
        f"phast_lint: {len(targets)} files, {len(findings)} finding(s)",
        file=sys.stderr,
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

#!/usr/bin/env bash
# run_tidy.sh — layer 1 of the static-analysis gate (see DESIGN.md).
#
# Runs clang-tidy (config: .clang-tidy at the repo root) over the project
# sources using the compile commands exported by CMake.
#
#   tools/run_tidy.sh                 full tree (src/ bench/ tests/ examples/)
#   tools/run_tidy.sh --diff [REF]    only files changed vs REF (default:
#                                     origin/main, falling back to HEAD~1)
#   tools/run_tidy.sh --build DIR     build dir with compile_commands.json
#                                     (default: ./build; configured on the
#                                     fly if missing)
#   tools/run_tidy.sh --strict        missing clang-tidy is an error instead
#                                     of a skip (CI sets this)
#
# Exit codes: 0 clean (or tool missing without --strict), 1 findings,
# 2 environment error.

set -u -o pipefail

cd "$(dirname "$0")/.." || exit 2
ROOT=$(pwd)

BUILD_DIR="$ROOT/build"
MODE=full
DIFF_REF=""
STRICT=0

while [ $# -gt 0 ]; do
  case "$1" in
    --diff)
      MODE=diff
      if [ $# -gt 1 ] && [ "${2#-}" = "$2" ]; then DIFF_REF="$2"; shift; fi
      ;;
    --build)
      BUILD_DIR="$2"; shift
      ;;
    --strict)
      STRICT=1
      ;;
    -h|--help)
      sed -n '2,20p' "$0"; exit 0
      ;;
    *)
      echo "run_tidy.sh: unknown argument '$1'" >&2; exit 2
      ;;
  esac
  shift
done

TIDY=""
for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                 clang-tidy-15 clang-tidy-14; do
  if command -v "$candidate" > /dev/null 2>&1; then
    TIDY=$candidate
    break
  fi
done

if [ -z "$TIDY" ]; then
  if [ "$STRICT" = 1 ]; then
    echo "run_tidy.sh: clang-tidy not found and --strict given" >&2
    exit 2
  fi
  echo "run_tidy.sh: SKIPPED — clang-tidy not installed on this machine." >&2
  echo "run_tidy.sh: the static-analysis CI job runs the gate with --strict." >&2
  exit 0
fi

# compile_commands.json: every configure exports it
# (CMAKE_EXPORT_COMPILE_COMMANDS ON in the top-level CMakeLists).
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_tidy.sh: configuring $BUILD_DIR to export compile commands" >&2
  cmake -B "$BUILD_DIR" -S "$ROOT" > /dev/null || exit 2
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_tidy.sh: no compile_commands.json in $BUILD_DIR" >&2
  exit 2
fi

# File list: translation units only; headers are covered through
# HeaderFilterRegex when their includers are checked.
if [ "$MODE" = diff ]; then
  if [ -z "$DIFF_REF" ]; then
    if git rev-parse --verify -q origin/main > /dev/null; then
      DIFF_REF=origin/main
    else
      DIFF_REF=HEAD~1
    fi
  fi
  FILES=$(git diff --name-only "$DIFF_REF" -- \
            'src/*.cpp' 'src/*.cc' 'bench/*.cpp' 'tests/*.cpp' \
            'examples/*.cpp' | while read -r f; do
            [ -f "$f" ] && echo "$f"; done)
else
  FILES=$(find src bench tests examples -name '*.cpp' -o -name '*.cc' | sort)
fi

if [ -z "$FILES" ]; then
  echo "run_tidy.sh: nothing to check" >&2
  exit 0
fi

COUNT=$(echo "$FILES" | wc -l)
echo "run_tidy.sh: $TIDY over $COUNT file(s), build dir $BUILD_DIR" >&2

STATUS=0
# xargs -P parallelizes across cores; clang-tidy exits non-zero on findings
# because .clang-tidy sets WarningsAsErrors: '*'.
echo "$FILES" | xargs -P "$(nproc)" -n 4 \
  "$TIDY" -p "$BUILD_DIR" --quiet || STATUS=1

if [ "$STATUS" = 0 ]; then
  echo "run_tidy.sh: clean" >&2
else
  echo "run_tidy.sh: findings above — fix them or add a NOLINT with a reason" >&2
fi
exit $STATUS

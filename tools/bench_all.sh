#!/usr/bin/env bash
# bench_all.sh — run the structured benches and aggregate their JSON into
# one BENCH_PHAST.json (schema "phast-bench-v1"), seeding the performance
# trajectory across PRs (DESIGN.md §8).
#
# Usage:
#   tools/bench_all.sh [BUILD_DIR] [OUTPUT]
#
# Defaults: BUILD_DIR=build, OUTPUT=BENCH_PHAST.json. Knobs (env):
#   BENCH_WIDTH / BENCH_HEIGHT   instance size        (default 96x96)
#   BENCH_SOURCES                sources per average  (default 4)
#   BENCH_REQUESTS               bench_server load    (default 2000)
#   BENCH_REPLICAS_LIST          bench_server fabric  (default 1,2,4)
#   BENCH_THREADS_LIST           ch_preprocessing     (default 1,2,4,8)
#   BENCH_KERNELS_FILTER         --benchmark_filter   (default all)
#   BENCH_CUSTOMIZE_ROUNDS       customization rounds (default 2)
#
# Aggregated benches: tab1_single_tree, fig1_levels (with a profiled-sweep
# section), server (including the fabric replica sweep and the
# cold-start-vs-copy-load row), ch_preprocessing (build-time scaling with a
# per-round contraction profile), customization (metric swap vs witness-free
# rebuild, byte-identity asserted), matrix (distance tables through every
# MatrixMode plus k-nearest-POI cutoff sweeps), and the google-benchmark
# kernels microbenches.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUTPUT="${2:-BENCH_PHAST.json}"
WIDTH="${BENCH_WIDTH:-96}"
HEIGHT="${BENCH_HEIGHT:-96}"
SOURCES="${BENCH_SOURCES:-4}"
REQUESTS="${BENCH_REQUESTS:-2000}"
REPLICAS_LIST="${BENCH_REPLICAS_LIST:-1,2,4}"
THREADS_LIST="${BENCH_THREADS_LIST:-1,2,4,8}"
KERNELS_FILTER="${BENCH_KERNELS_FILTER:-.*}"
CUSTOMIZE_ROUNDS="${BENCH_CUSTOMIZE_ROUNDS:-2}"

for binary in bench/bench_tab1_single_tree bench/bench_fig1_levels \
              bench/bench_server bench/bench_ch_preprocessing \
              bench/bench_customization bench/bench_kernels \
              bench/bench_matrix; do
  if [[ ! -x "$BUILD_DIR/$binary" ]]; then
    echo "bench_all: $BUILD_DIR/$binary not built" >&2
    exit 2
  fi
done

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

echo "=== bench_all: tab1_single_tree ===" >&2
"$BUILD_DIR/bench/bench_tab1_single_tree" \
  --width="$WIDTH" --height="$HEIGHT" --sources="$SOURCES" \
  --json-out="$TMP/tab1_single_tree.json"

echo "=== bench_all: fig1_levels ===" >&2
"$BUILD_DIR/bench/bench_fig1_levels" \
  --width="$WIDTH" --height="$HEIGHT" \
  --json-out="$TMP/fig1_levels.json"

echo "=== bench_all: server ===" >&2
"$BUILD_DIR/bench/bench_server" \
  --width="$WIDTH" --height="$HEIGHT" --requests="$REQUESTS" \
  --replicas-list="$REPLICAS_LIST" \
  --json-out="$TMP/server.json"

echo "=== bench_all: ch_preprocessing ===" >&2
"$BUILD_DIR/bench/bench_ch_preprocessing" \
  --width="$WIDTH" --height="$HEIGHT" --threads-list="$THREADS_LIST" \
  --json-out="$TMP/ch_preprocessing.json"

echo "=== bench_all: customization ===" >&2
"$BUILD_DIR/bench/bench_customization" \
  --width="$WIDTH" --height="$HEIGHT" --rounds="$CUSTOMIZE_ROUNDS" \
  --json-out="$TMP/customization.json"

echo "=== bench_all: matrix ===" >&2
"$BUILD_DIR/bench/bench_matrix" \
  --width="$WIDTH" --height="$HEIGHT" --sources="$SOURCES" \
  --json-out="$TMP/matrix.json"

echo "=== bench_all: kernels ===" >&2
"$BUILD_DIR/bench/bench_kernels" \
  --benchmark_filter="$KERNELS_FILTER" \
  --benchmark_out="$TMP/kernels.json" --benchmark_out_format=json

python3 - "$TMP" "$OUTPUT" <<'EOF'
import json
import sys

tmp, output = sys.argv[1], sys.argv[2]
doc = {"schema": "phast-bench-v1", "benches": {}}
for name in ("tab1_single_tree", "fig1_levels", "server", "ch_preprocessing",
              "customization", "matrix", "kernels"):
    with open(f"{tmp}/{name}.json", encoding="utf-8") as f:
        doc["benches"][name] = json.load(f)
with open(output, "w", encoding="utf-8") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
names = ", ".join(doc["benches"])
print(f"bench_all: wrote {output} ({names})")
EOF

#!/usr/bin/env bash
# run_csa.sh — Clang Static Analyzer leg of the static-analysis gate.
#
# Replays every src/ translation unit from the exported compile_commands.json
# through `clang++ --analyze` (path-sensitive checks: null derefs, use-after-
# move/free, uninitialized reads, leaks) and fails on any warning that is not
# matched by the justified suppression baseline tools/csa_baseline.txt.
#
#   tools/run_csa.sh                  full src/ tree
#   tools/run_csa.sh --build DIR      build dir with compile_commands.json
#                                     (default: ./build; configured on the
#                                     fly if missing)
#   tools/run_csa.sh --strict         missing clang is an error instead of a
#                                     skip (CI sets this)
#
# Baseline format (tools/csa_baseline.txt): one substring pattern per line,
# '#' starts a comment; a warning line is suppressed when it contains any
# pattern. Every pattern must carry a justification comment.
#
# Exit codes: 0 clean (or clang missing without --strict), 1 findings,
# 2 environment error.

set -u -o pipefail

cd "$(dirname "$0")/.." || exit 2
ROOT=$(pwd)

BUILD_DIR="$ROOT/build"
STRICT=0

while [ $# -gt 0 ]; do
  case "$1" in
    --build)
      BUILD_DIR="$2"; shift
      ;;
    --strict)
      STRICT=1
      ;;
    -h|--help)
      sed -n '2,20p' "$0"; exit 0
      ;;
    *)
      echo "run_csa.sh: unknown argument '$1'" >&2; exit 2
      ;;
  esac
  shift
done

CLANG=""
for candidate in clang++ clang++-18 clang++-17 clang++-16 clang++-15; do
  if command -v "$candidate" > /dev/null 2>&1; then
    CLANG=$candidate
    break
  fi
done

if [ -z "$CLANG" ]; then
  if [ "$STRICT" = 1 ]; then
    echo "run_csa.sh: clang++ not found and --strict given" >&2
    exit 2
  fi
  echo "run_csa.sh: SKIPPED — clang++ not installed on this machine." >&2
  echo "run_csa.sh: the static-analysis CI job runs the gate with --strict." >&2
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_csa.sh: configuring $BUILD_DIR to export compile commands" >&2
  cmake -B "$BUILD_DIR" -S "$ROOT" > /dev/null || exit 2
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_csa.sh: no compile_commands.json in $BUILD_DIR" >&2
  exit 2
fi

CLANG_BIN="$CLANG" BUILD_DIR="$BUILD_DIR" ROOT="$ROOT" python3 - <<'PY'
import concurrent.futures
import json
import os
import shlex
import subprocess
import sys

root = os.environ["ROOT"]
clang = os.environ["CLANG_BIN"]
build = os.environ["BUILD_DIR"]

with open(os.path.join(build, "compile_commands.json")) as f:
    entries = json.load(f)

src_root = os.path.realpath(os.path.join(root, "src")) + os.sep
tus = []
for e in entries:
    path = e.get("file", "")
    if not os.path.isabs(path):
        path = os.path.join(e.get("directory", root), path)
    path = os.path.realpath(path)
    if not path.startswith(src_root):
        continue
    args = e.get("arguments") or shlex.split(e.get("command", ""))
    kept = []
    skip_next = False
    for a in args[1:]:
        if skip_next:
            skip_next = False
            continue
        if a in ("-c", path) or a == e.get("file"):
            continue
        if a == "-o":
            skip_next = True
            continue
        if a.startswith("-o") and len(a) > 2 and not a.startswith("-openmp"):
            continue
        kept.append(a)
    tus.append((path, kept, e.get("directory", root)))

patterns = []
baseline_path = os.path.join(root, "tools", "csa_baseline.txt")
if os.path.exists(baseline_path):
    with open(baseline_path) as f:
        for line in f:
            line = line.split("#", 1)[0].strip()
            if line:
                patterns.append(line)

def analyze(tu):
    path, kept, cwd = tu
    cmd = [clang, "--analyze", "-Xclang", "-analyzer-output=text"] + kept + [path]
    proc = subprocess.run(cmd, capture_output=True, text=True, cwd=cwd)
    out = []
    for line in proc.stderr.splitlines():
        if ": warning:" not in line:
            continue
        if any(p in line for p in patterns):
            continue
        out.append(line)
    if proc.returncode != 0 and not out:
        out.append("%s: clang --analyze failed rc=%d: %s"
                   % (path, proc.returncode,
                      proc.stderr.strip().splitlines()[-1]
                      if proc.stderr.strip() else ""))
    return out

workers = os.cpu_count() or 2
findings = []
with concurrent.futures.ThreadPoolExecutor(max_workers=workers) as ex:
    for out in ex.map(analyze, tus):
        findings.extend(out)

print("run_csa.sh: %s over %d translation unit(s), %d suppression pattern(s)"
      % (clang, len(tus), len(patterns)), file=sys.stderr)
for line in findings:
    print(line)
if findings:
    print("run_csa.sh: %d finding(s) — fix them or add a justified pattern "
          "to tools/csa_baseline.txt" % len(findings), file=sys.stderr)
    sys.exit(1)
print("run_csa.sh: clean", file=sys.stderr)
PY
exit $?

#!/usr/bin/env python3
"""check_trace: validator for exported Chrome trace-event JSON (DESIGN.md §8).

Checks the invariants the exporter (src/obs/trace.cpp) guarantees, so CI
catches a regression before anyone loads a broken trace in chrome://tracing:

  - the file is valid JSON with a non-empty "traceEvents" array
  - every event is a B or E duration event with name/ts/pid/tid
  - per (pid, tid), timestamps are nondecreasing
  - per (pid, tid), B/E events are stack-balanced and an E always closes
    the most recently opened B of the same name

Usage:
  check_trace.py trace.json [--require-span NAME[:MIN]] ...

--require-span asserts NAME occurs at least MIN times (default 1) — e.g.
`--require-span sweep.level:10` pins that a profiled sweep actually emitted
per-level spans. Repeatable.

Exit status: 0 valid, 1 invalid, 2 usage error.
"""

from __future__ import annotations

import argparse
import collections
import json
import sys


def validate(doc, require: list[tuple[str, int]]) -> list[str]:
    errors: list[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ['missing or non-array "traceEvents"']
    if not events:
        return ["trace contains no events"]

    last_ts: dict = {}
    stacks: dict = collections.defaultdict(list)
    name_counts: collections.Counter = collections.Counter()

    for i, ev in enumerate(events):
        where = f"event {i}"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("B", "E"):
            errors.append(f"{where}: unexpected ph {ph!r} (exporter emits only B/E)")
            continue
        missing = [k for k in ("name", "ts", "pid", "tid") if k not in ev]
        if missing:
            errors.append(f"{where}: missing field(s) {missing}")
            continue
        ts = ev["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: bad ts {ts!r}")
            continue

        key = (ev["pid"], ev["tid"])
        if key in last_ts and ts < last_ts[key]:
            errors.append(
                f"{where}: ts goes backwards on pid/tid {key}: "
                f"{last_ts[key]} -> {ts}"
            )
        last_ts[key] = ts

        if ph == "B":
            stacks[key].append(ev["name"])
            name_counts[ev["name"]] += 1
        else:
            if not stacks[key]:
                errors.append(f"{where}: E with empty span stack on {key}")
            else:
                opened = stacks[key].pop()
                if opened != ev["name"]:
                    errors.append(
                        f"{where}: E for {ev['name']!r} closes span "
                        f"{opened!r} on {key}"
                    )

    for key, stack in stacks.items():
        if stack:
            errors.append(f"unclosed span(s) on pid/tid {key}: {stack}")

    for name, minimum in require:
        if name_counts[name] < minimum:
            errors.append(
                f"required span {name!r}: {name_counts[name]} occurrence(s), "
                f"need >= {minimum}"
            )

    return errors


def parse_requirement(spec: str) -> tuple[str, int]:
    name, _, minimum = spec.partition(":")
    if not name:
        raise argparse.ArgumentTypeError(f"empty span name in {spec!r}")
    try:
        count = int(minimum) if minimum else 1
    except ValueError as e:
        raise argparse.ArgumentTypeError(f"bad count in {spec!r}") from e
    if count < 1:
        raise argparse.ArgumentTypeError(f"count must be >= 1 in {spec!r}")
    return name, count


def main(argv) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="Chrome trace-event JSON file")
    ap.add_argument(
        "--require-span",
        action="append",
        type=parse_requirement,
        default=[],
        metavar="NAME[:MIN]",
        help="assert NAME occurs at least MIN times (default 1); repeatable",
    )
    args = ap.parse_args(argv)

    try:
        with open(args.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_trace: {args.trace}: {e}", file=sys.stderr)
        return 1

    errors = validate(doc, args.require_span)
    for e in errors:
        print(f"check_trace: {args.trace}: {e}", file=sys.stderr)
    if not errors:
        n = len(doc["traceEvents"])
        print(f"check_trace: {args.trace}: OK ({n} events, {n // 2} spans)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

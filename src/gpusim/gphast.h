#pragma once

#include <span>

#include "gpusim/device.h"
#include "graph/types.h"
#include "phast/phast.h"

namespace phast {

/// GPHAST (§VI): PHAST with the linear sweep outsourced to the GPU. The
/// CPU runs the upward CH searches, copies the (tiny) search spaces to the
/// device, and launches one kernel per level; each kernel thread computes
/// the distance label of exactly one (vertex, tree) pair, and threads of a
/// warp are assigned so that they work on the same vertices (§VI "Multiple
/// Trees": k = 32 would put a whole warp on one vertex).
///
/// Because no GPU is present, the kernels execute *functionally* on the
/// host — lane by lane, with the exact SIMT predication and warp-level
/// memory-coalescing behavior traced through SimtDevice — and report
/// *modeled* GPU time. Labels produced are bit-identical to CPU PHAST
/// (tests enforce this).
class Gphast {
 public:
  Gphast(const Phast& engine, const DeviceSpec& spec = DeviceSpec::Gtx580());

  struct Result {
    /// Modeled device time for the batch: level kernels + search-space
    /// copies (graph upload is a one-time cost, excluded as in the paper).
    double modeled_device_seconds = 0.0;
    /// Measured host time for phase one (upward CH searches).
    double host_seconds = 0.0;
    uint64_t kernels_launched = 0;
  };

  /// Computes ws.NumTrees() trees, one per source. Labels land in `ws`
  /// exactly as with Phast::ComputeTrees.
  Result ComputeTrees(std::span<const VertexId> sources,
                      Phast::Workspace& ws);

  /// Device memory footprint for k simultaneous trees (Table III column
  /// "memory [MB]"): sweep topology + labels + marks.
  [[nodiscard]] uint64_t DeviceMemoryBytes(uint32_t k) const;

  /// True when k trees fit into the modeled device memory.
  [[nodiscard]] bool FitsInDeviceMemory(uint32_t k) const {
    return DeviceMemoryBytes(k) <= device_.Spec().device_memory_bytes;
  }

  [[nodiscard]] const SimtDevice& Device() const { return device_; }
  void ResetDeviceStats() { device_.ResetStats(); }

 private:
  void SimulateLevelKernel(const SweepArgs& args, VertexId begin,
                           VertexId end);

  const Phast& engine_;
  SimtDevice device_;
};

}  // namespace phast

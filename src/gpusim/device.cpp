#include "gpusim/device.h"

#include <algorithm>

#include "util/error.h"

namespace phast {

DeviceSpec DeviceSpec::Gtx580() { return DeviceSpec{}; }

DeviceSpec DeviceSpec::Gtx480() {
  DeviceSpec spec;
  spec.name = "sim-gtx480";
  spec.num_sms = 15;
  spec.core_clock_ghz = 0.701;
  // 1848 MHz DDR5 vs the 580's 2004 MHz: scale bandwidth accordingly.
  spec.mem_bandwidth_gb_per_s = 192.4 * 1848.0 / 2004.0;
  return spec;
}

void SimtDevice::WarpMemoryAccess(std::span<const uint64_t> addresses,
                                  uint32_t bytes) {
  Require(pending_kernels_ > 0, "memory access outside a kernel");
  // Coalescing: distinct DRAM segments across the warp's lanes, assuming
  // each lane access fits one segment (true for the 4- and 8-byte accesses
  // PHAST performs; segment size is 128 bytes).
  uint64_t segments[64];
  size_t count = 0;
  for (const uint64_t addr : addresses) {
    const uint64_t seg = addr / spec_.dram_segment_bytes;
    bool seen = false;
    for (size_t i = 0; i < count; ++i) {
      if (segments[i] == seg) {
        seen = true;
        break;
      }
    }
    if (!seen && count < 64) segments[count++] = seg;
  }
  dram_transactions_ += count;
  warp_instructions_ += 1;
  (void)bytes;
}

void SimtDevice::HostToDeviceCopy(uint64_t bytes) {
  stats_.copied_bytes += bytes;
  stats_.modeled_seconds += spec_.pcie_latency_us * 1e-6 +
                            static_cast<double>(bytes) /
                                (spec_.pcie_bandwidth_gb_per_s * 1e9);
}

void SimtDevice::EndKernel() {
  Require(pending_kernels_ > 0, "EndKernel without BeginKernel");
  --pending_kernels_;

  const uint64_t bytes = dram_transactions_ * spec_.dram_segment_bytes;
  const double dram_seconds =
      static_cast<double>(bytes) / (spec_.mem_bandwidth_gb_per_s * 1e9);
  // One warp instruction step retires per SM cycle; the SMs share the work.
  const double compute_seconds =
      static_cast<double>(warp_instructions_) /
      (static_cast<double>(spec_.num_sms) * spec_.core_clock_ghz * 1e9);

  stats_.kernels += 1;
  stats_.dram_transactions += dram_transactions_;
  stats_.dram_bytes += bytes;
  stats_.warp_instructions += warp_instructions_;
  stats_.modeled_seconds += std::max(dram_seconds, compute_seconds) +
                            spec_.kernel_launch_overhead_us * 1e-6;

  dram_transactions_ = 0;
  warp_instructions_ = 0;
}

}  // namespace phast

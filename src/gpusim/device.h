#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace phast {

/// Parameters of the modeled GPU. Defaults approximate the NVIDIA GTX 580
/// (Fermi) the paper benchmarks (§VI, §VIII-D): 16 SMs x 32-lane warps,
/// 772 MHz cores, 192.4 GB/s DRAM. No GPU is present in this environment,
/// so GPHAST runs against this analytic device model while computing
/// functionally correct results on the host (see DESIGN.md substitutions).
struct DeviceSpec {
  std::string name = "sim-gtx580";
  uint32_t num_sms = 16;
  uint32_t warp_size = 32;
  double core_clock_ghz = 0.772;
  double mem_bandwidth_gb_per_s = 192.4;
  /// DRAM coalescing granularity: accesses of a warp falling into the same
  /// segment merge into one transaction.
  uint32_t dram_segment_bytes = 128;
  double kernel_launch_overhead_us = 5.0;
  /// Host-to-device copy channel (PCIe 2.0 x16-ish).
  double pcie_bandwidth_gb_per_s = 6.0;
  double pcie_latency_us = 10.0;
  uint64_t device_memory_bytes = 1536ull << 20;  // 1.5 GB

  [[nodiscard]] static DeviceSpec Gtx580();
  [[nodiscard]] static DeviceSpec Gtx480();
};

/// Accounting core of the SIMT model. Kernels report, warp by warp and
/// instruction step by instruction step, the addresses their active lanes
/// touch; the device coalesces them into DRAM segment transactions and
/// converts totals into modeled time:
///
///   kernel time = max(compute term, DRAM term) + launch overhead
///
/// where the DRAM term is bytes/bandwidth and the compute term counts one
/// cycle per warp instruction step spread over the SMs. PHAST's sweep is
/// strongly bandwidth-bound (§VI), so the DRAM term dominates.
class SimtDevice {
 public:
  explicit SimtDevice(const DeviceSpec& spec) : spec_(spec) {}

  [[nodiscard]] const DeviceSpec& Spec() const { return spec_; }

  void BeginKernel() {
    ++pending_kernels_;
  }

  /// One warp-wide memory instruction: every element of `addresses` is the
  /// byte address touched by one active lane (inactive lanes are simply
  /// omitted). `bytes` is the access width per lane.
  void WarpMemoryAccess(std::span<const uint64_t> addresses, uint32_t bytes);

  /// `count` warp-wide ALU instruction steps (predicated execution: a
  /// diverged warp still spends a step for every lane path).
  void WarpCompute(uint64_t count) { warp_instructions_ += count; }

  /// Host-to-device copy of `bytes` over PCIe.
  void HostToDeviceCopy(uint64_t bytes);

  void EndKernel();

  struct Stats {
    uint64_t kernels = 0;
    uint64_t dram_transactions = 0;
    uint64_t dram_bytes = 0;
    uint64_t warp_instructions = 0;
    uint64_t copied_bytes = 0;
    double modeled_seconds = 0.0;
  };

  [[nodiscard]] const Stats& TotalStats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }

 private:
  DeviceSpec spec_;
  Stats stats_;

  // Per-kernel accumulators, folded into stats_ at EndKernel().
  uint32_t pending_kernels_ = 0;
  uint64_t dram_transactions_ = 0;
  uint64_t warp_instructions_ = 0;
};

}  // namespace phast

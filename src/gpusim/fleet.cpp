#include "gpusim/fleet.h"

#include <algorithm>

#include "util/error.h"
#include "util/rng.h"

namespace phast {

GphastFleet::GphastFleet(const Phast& engine, std::vector<DeviceSpec> specs)
    : engine_(engine) {
  Require(!specs.empty(), "fleet needs at least one device");
  devices_.reserve(specs.size());
  for (DeviceSpec& spec : specs) {
    devices_.emplace_back(engine, spec);
  }
}

const GphastFleet::Calibration& GphastFleet::CalibrateLocked(uint32_t k) {
  const auto cached = calibration_cache_.find(k);
  if (cached != calibration_cache_.end()) return cached->second;

  // Calibration: one k-batch per device from a fixed source sample. Only
  // the *modeled* device time enters the split — it is deterministic,
  // whereas the measured host time of the upward searches is identical
  // across devices and merely adds to every device's per-tree cost.
  Calibration cal;
  cal.ms_per_tree.resize(devices_.size());
  Rng rng(12345);
  std::vector<VertexId> sources(k);
  for (auto& s : sources) {
    s = static_cast<VertexId>(rng.NextBounded(engine_.NumVertices()));
  }
  Phast::Workspace ws = engine_.MakeWorkspace(k);
  for (size_t d = 0; d < devices_.size(); ++d) {
    const Gphast::Result r = devices_[d].ComputeTrees(sources, ws);
    cal.ms_per_tree[d] = r.modeled_device_seconds * 1e3 / k;
    cal.host_ms_per_tree = r.host_seconds * 1e3 / k;  // same CPU for all
  }
  return calibration_cache_.emplace(k, std::move(cal)).first->second;
}

GphastFleet::Estimate GphastFleet::EstimateWorkload(uint64_t num_trees,
                                                    uint32_t k) {
  Require(num_trees > 0 && k > 0, "need a positive workload");

  const MutexLock lock(mu_);
  const Calibration& cal = CalibrateLocked(k);

  // Proportional split: device share ~ 1 / ms_per_tree.
  double total_rate = 0.0;
  for (const double ms : cal.ms_per_tree) total_rate += 1.0 / ms;

  Estimate estimate;
  estimate.trees_per_device.resize(devices_.size());
  estimate.seconds_per_device.resize(devices_.size());
  uint64_t assigned = 0;
  for (size_t d = 0; d < devices_.size(); ++d) {
    const double share = (1.0 / cal.ms_per_tree[d]) / total_rate;
    const uint64_t trees =
        d + 1 == devices_.size()
            ? num_trees - assigned
            : static_cast<uint64_t>(share * static_cast<double>(num_trees));
    assigned += trees;
    estimate.trees_per_device[d] = trees;
    estimate.seconds_per_device[d] =
        static_cast<double>(trees) * cal.ms_per_tree[d] / 1e3;
    estimate.wall_seconds =
        std::max(estimate.wall_seconds, estimate.seconds_per_device[d]);
  }
  estimate.ms_per_tree_aggregate =
      estimate.wall_seconds * 1e3 / static_cast<double>(num_trees);
  estimate.host_seconds_total =
      cal.host_ms_per_tree * static_cast<double>(num_trees) / 1e3;
  return estimate;
}

}  // namespace phast

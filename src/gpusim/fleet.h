#pragma once

#include <cstdint>
#include <vector>

#include "gpusim/device.h"
#include "gpusim/gphast.h"
#include "graph/types.h"
#include "phast/phast.h"

namespace phast {

/// Multi-GPU GPHAST (§VIII-F: "With two cards, GPHAST would be twice as
/// fast, computing all-pairs shortest paths in roughly 5.5 hours ... we can
/// safely assume that the all-pairs computation scales perfectly with the
/// number of GPUs").
///
/// The fleet calibrates a per-tree time on every modeled device from one
/// sample batch, then distributes a tree workload proportionally to device
/// speed; the modeled wall-clock is the slowest device's share. Trees are
/// independent, so this matches the paper's perfect-scaling assumption
/// while still accounting for heterogeneous cards (e.g. one GTX 580 plus
/// one GTX 480).
class GphastFleet {
 public:
  GphastFleet(const Phast& engine, std::vector<DeviceSpec> specs);

  struct Estimate {
    /// Modeled device wall-clock: the busiest card's share. Deterministic.
    double wall_seconds = 0.0;
    /// Trees assigned and modeled busy time per device.
    std::vector<uint64_t> trees_per_device;
    std::vector<double> seconds_per_device;
    double ms_per_tree_aggregate = 0.0;
    /// Measured CPU time for the upward searches of the whole workload.
    /// The CPU is shared by all cards; a pipelined deployment overlaps it
    /// with device sweeps, so the end-to-end estimate is
    /// max(wall_seconds, host_seconds_total).
    double host_seconds_total = 0.0;
  };

  /// Calibrates each device with one k-tree sample batch and projects the
  /// time to compute `num_trees` trees with k trees per sweep.
  [[nodiscard]] Estimate EstimateWorkload(uint64_t num_trees, uint32_t k);

  [[nodiscard]] size_t NumDevices() const { return devices_.size(); }

 private:
  const Phast& engine_;
  std::vector<Gphast> devices_;
};

}  // namespace phast

#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "gpusim/device.h"
#include "gpusim/gphast.h"
#include "graph/types.h"
#include "phast/phast.h"
#include "util/thread_annotations.h"

namespace phast {

/// Multi-GPU GPHAST (§VIII-F: "With two cards, GPHAST would be twice as
/// fast, computing all-pairs shortest paths in roughly 5.5 hours ... we can
/// safely assume that the all-pairs computation scales perfectly with the
/// number of GPUs").
///
/// The fleet calibrates a per-tree time on every modeled device from one
/// sample batch, then distributes a tree workload proportionally to device
/// speed; the modeled wall-clock is the slowest device's share. Trees are
/// independent, so this matches the paper's perfect-scaling assumption
/// while still accounting for heterogeneous cards (e.g. one GTX 580 plus
/// one GTX 480).
class GphastFleet {
 public:
  GphastFleet(const Phast& engine, std::vector<DeviceSpec> specs);

  struct Estimate {
    /// Modeled device wall-clock: the busiest card's share. Deterministic.
    double wall_seconds = 0.0;
    /// Trees assigned and modeled busy time per device.
    std::vector<uint64_t> trees_per_device;
    std::vector<double> seconds_per_device;
    double ms_per_tree_aggregate = 0.0;
    /// Measured CPU time for the upward searches of the whole workload.
    /// The CPU is shared by all cards; a pipelined deployment overlaps it
    /// with device sweeps, so the end-to-end estimate is
    /// max(wall_seconds, host_seconds_total).
    double host_seconds_total = 0.0;
  };

  /// Calibrates each device with one k-tree sample batch and projects the
  /// time to compute `num_trees` trees with k trees per sweep.
  ///
  /// Thread-safe: a fleet is shared by serving threads, so the per-k
  /// calibration (which mutates the modeled devices) is serialized under
  /// mu_ and cached — repeat estimates for the same k reuse it.
  [[nodiscard]] Estimate EstimateWorkload(uint64_t num_trees, uint32_t k)
      EXCLUDES(mu_);

  [[nodiscard]] size_t NumDevices() const EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    return devices_.size();
  }

 private:
  /// Per-device modeled cost for one fixed k, measured once.
  struct Calibration {
    std::vector<double> ms_per_tree;  // modeled device ms, per device
    double host_ms_per_tree = 0.0;    // measured upward-search ms (shared CPU)
  };

  /// Returns the cached calibration for k, running the sample batches on
  /// first use. Callers must hold mu_: calibration drives the modeled
  /// devices, whose stats counters are mutable shared state.
  const Calibration& CalibrateLocked(uint32_t k) REQUIRES(mu_);

  const Phast& engine_;
  mutable AnnotatedMutex mu_;
  std::vector<Gphast> devices_ GUARDED_BY(mu_);
  std::map<uint32_t, Calibration> calibration_cache_ GUARDED_BY(mu_);
};

}  // namespace phast

#include "gpusim/gphast.h"

#include <algorithm>
#include <vector>

#include "obs/trace.h"
#include "util/error.h"
#include "util/timer.h"

namespace phast {

Gphast::Gphast(const Phast& engine, const DeviceSpec& spec)
    : engine_(engine), device_(spec) {
  Require(!engine.LevelBoundaries().empty(),
          "GPHAST requires a level-ordered PHAST engine");
}

uint64_t Gphast::DeviceMemoryBytes(uint32_t k) const {
  const uint64_t n = engine_.NumVertices();
  // Topology: first array + (tail, weight) arc records; labels k-strided;
  // one visit bit per vertex. Matches what ComputeTrees actually touches.
  uint64_t arcs = 0;
  // The engine does not expose the arc count directly; derive it from the
  // sweep view of a throwaway workspace.
  Phast::Workspace probe = engine_.MakeWorkspace(1);
  const SweepArgs args = engine_.MakeSweepArgs(probe);
  arcs = args.down_first[n];
  return (n + 1) * sizeof(ArcId) + arcs * sizeof(DownArc) +
         n * static_cast<uint64_t>(k) * sizeof(Weight) + (n + 7) / 8;
}

Gphast::Result Gphast::ComputeTrees(std::span<const VertexId> sources,
                                    Phast::Workspace& ws) {
  PHAST_SPAN_ARG("gphast.batch", ws.NumTrees());
  Result result;
  Require(FitsInDeviceMemory(ws.NumTrees()),
          "k trees exceed the modeled device memory");

  const double before = device_.TotalStats().modeled_seconds;

  // Phase one on the CPU (measured wall time, like the paper).
  Timer host_timer;
  {
    PHAST_SPAN("gphast.upward");
    engine_.RunUpwardPhase(sources, ws);
  }
  result.host_seconds = host_timer.ElapsedSec();

  // Copy the search spaces to the device: per visited vertex one id plus
  // its k labels ("less than 2 KB" per source on Europe, §VI).
  const uint64_t copy_bytes =
      ws.UpwardSearchSpace() *
      (sizeof(VertexId) + static_cast<uint64_t>(ws.NumTrees()) * sizeof(Weight));
  device_.HostToDeviceCopy(copy_bytes);

  // One kernel per level, highest level first (§VI).
  PHAST_SPAN("gphast.device_sweep");
  const SweepArgs args = engine_.MakeSweepArgs(ws);
  const std::span<const VertexId> levels = engine_.LevelBoundaries();
  for (size_t group = 0; group + 1 < levels.size(); ++group) {
    if (levels[group] == levels[group + 1]) continue;  // empty level
    device_.BeginKernel();
    SimulateLevelKernel(args, levels[group], levels[group + 1]);
    device_.EndKernel();
    ++result.kernels_launched;
  }
  engine_.FinishExternalSweep(ws);

  result.modeled_device_seconds =
      device_.TotalStats().modeled_seconds - before;
  return result;
}

void Gphast::SimulateLevelKernel(const SweepArgs& args, VertexId begin,
                                 VertexId end) {
  const uint32_t k = args.k;
  const uint32_t warp = device_.Spec().warp_size;
  const uint64_t threads = static_cast<uint64_t>(end - begin) * k;

  // Virtual device addresses: reuse the host addresses — the relative
  // layout (and therefore segment coalescing) is identical.
  const auto first_addr = reinterpret_cast<uint64_t>(args.down_first);
  const auto arcs_addr = reinterpret_cast<uint64_t>(args.down_arcs);
  const auto labels_addr = reinterpret_cast<uint64_t>(args.labels);
  const auto marks_addr = reinterpret_cast<uint64_t>(args.marks);

  std::vector<uint64_t> access;   // scratch: addresses of active lanes
  std::vector<Weight> lane_dist;  // per-lane running label
  access.reserve(warp);
  lane_dist.resize(warp);

  for (uint64_t warp_begin = 0; warp_begin < threads; warp_begin += warp) {
    const uint32_t lanes =
        static_cast<uint32_t>(std::min<uint64_t>(warp, threads - warp_begin));

    // Lane -> (sweep position, tree slot). Consecutive threads take
    // consecutive slots of the same vertex, so for k >= warp_size a whole
    // warp shares one vertex (§VI).
    const auto pos_of = [&](uint32_t lane) {
      return begin + static_cast<VertexId>((warp_begin + lane) / k);
    };
    const auto slot_of = [&](uint32_t lane) {
      return static_cast<uint32_t>((warp_begin + lane) % k);
    };
    const auto vertex_of = [&](uint32_t lane) {
      const VertexId pos = pos_of(lane);
      return args.order != nullptr ? args.order[pos] : pos;
    };

    // Step 1: read the arc range (first[pos], first[pos+1]).
    access.clear();
    for (uint32_t l = 0; l < lanes; ++l) {
      access.push_back(first_addr + pos_of(l) * sizeof(ArcId));
    }
    device_.WarpMemoryAccess(access, sizeof(ArcId));

    // Step 2: visit marks (implicit initialization, §IV-C).
    if (args.marks != nullptr) {
      access.clear();
      for (uint32_t l = 0; l < lanes; ++l) {
        access.push_back(marks_addr + (vertex_of(l) >> 6) * sizeof(uint64_t));
      }
      device_.WarpMemoryAccess(access, sizeof(uint64_t));
    }

    // Initialize per-lane labels (register-resident on a real GPU).
    uint32_t max_arcs = 0;
    for (uint32_t l = 0; l < lanes; ++l) {
      const VertexId pos = pos_of(l);
      const VertexId v = vertex_of(l);
      const bool marked = args.marks == nullptr || args.Marked(v);
      lane_dist[l] =
          marked ? args.labels[static_cast<size_t>(v) * k + slot_of(l)]
                 : kInfWeight;
      max_arcs = std::max(max_arcs, args.down_first[pos + 1] -
                                        args.down_first[pos]);
    }

    // Step 3: predicated arc loop — the warp iterates max_arcs times, lanes
    // whose vertex has fewer incoming arcs sit out (§VI SIMT divergence).
    for (uint32_t step = 0; step < max_arcs; ++step) {
      access.clear();
      for (uint32_t l = 0; l < lanes; ++l) {
        const VertexId pos = pos_of(l);
        const ArcId arc = args.down_first[pos] + step;
        if (arc < args.down_first[pos + 1]) {
          access.push_back(arcs_addr + static_cast<uint64_t>(arc) *
                                           sizeof(DownArc));
        }
      }
      if (access.empty()) continue;
      device_.WarpMemoryAccess(access, sizeof(DownArc));

      access.clear();
      for (uint32_t l = 0; l < lanes; ++l) {
        const VertexId pos = pos_of(l);
        const ArcId arc = args.down_first[pos] + step;
        if (arc >= args.down_first[pos + 1]) continue;
        const DownArc& a = args.down_arcs[arc];
        const uint64_t label_index =
            static_cast<uint64_t>(a.tail) * k + slot_of(l);
        access.push_back(labels_addr + label_index * sizeof(Weight));
        // Functional relaxation (what the kernel computes).
        const Weight candidate =
            SaturatingAdd(args.labels[label_index], a.weight);
        if (candidate < lane_dist[l]) {
          lane_dist[l] = candidate;
          if (args.parents != nullptr) {
            args.parents[static_cast<size_t>(vertex_of(l)) * k + slot_of(l)] =
                a.tail;
          }
        }
      }
      device_.WarpMemoryAccess(access, sizeof(Weight));
      device_.WarpCompute(2);  // add + min per step
    }

    // Step 4: write back the final labels.
    access.clear();
    for (uint32_t l = 0; l < lanes; ++l) {
      const uint64_t label_index =
          static_cast<uint64_t>(vertex_of(l)) * k + slot_of(l);
      access.push_back(labels_addr + label_index * sizeof(Weight));
      args.labels[label_index] = lane_dist[l];
    }
    device_.WarpMemoryAccess(access, sizeof(Weight));
  }
}

}  // namespace phast

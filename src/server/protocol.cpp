#include "server/protocol.h"

#include <atomic>
#include <future>
#include <optional>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <thread>

#include "server/queue.h"
#include "util/error.h"

namespace phast::server {

namespace {

// --- fd I/O (EINTR-safe, exact-length) -------------------------------------

/// Reads exactly `size` bytes. Returns bytes read: `size` on success, 0 on
/// EOF before the first byte, and throws on EOF mid-read or I/O error.
size_t ReadFull(int fd, void* data, size_t size) {
  auto* out = static_cast<uint8_t*>(data);
  size_t got = 0;
  while (got < size) {
    const ssize_t r = ::read(fd, out + got, size - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      Require(false, std::string("read failed: ") + std::strerror(errno));
    }
    if (r == 0) {
      Require(got == 0, "connection closed mid-frame");
      return 0;
    }
    got += static_cast<size_t>(r);
  }
  return got;
}

void WriteFull(int fd, const void* data, size_t size) {
  const auto* in = static_cast<const uint8_t*>(data);
  size_t put = 0;
  while (put < size) {
    const ssize_t w = ::write(fd, in + put, size - put);
    if (w < 0) {
      if (errno == EINTR) continue;
      Require(false, std::string("write failed: ") + std::strerror(errno));
    }
    put += static_cast<size_t>(w);
  }
}

// --- little-endian payload packing -----------------------------------------

class ByteWriter {
 public:
  void U8(uint8_t v) { bytes_.push_back(v); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Bytes(const void* data, size_t size) { Raw(data, size); }

  [[nodiscard]] std::vector<uint8_t> Take() { return std::move(bytes_); }

 private:
  void Raw(const void* data, size_t size) {
    const auto* p = static_cast<const uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + size);
  }
  std::vector<uint8_t> bytes_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  uint8_t U8() { return *Raw(1); }
  uint32_t U32() {
    uint32_t v;
    std::memcpy(&v, Raw(sizeof(v)), sizeof(v));
    return v;
  }
  uint64_t U64() {
    uint64_t v;
    std::memcpy(&v, Raw(sizeof(v)), sizeof(v));
    return v;
  }
  double F64() {
    double v;
    std::memcpy(&v, Raw(sizeof(v)), sizeof(v));
    return v;
  }
  [[nodiscard]] size_t Remaining() const { return bytes_.size() - pos_; }
  void ExpectEnd() const {
    Require(pos_ == bytes_.size(), "trailing bytes in protocol payload");
  }

  const uint8_t* Raw(size_t size) {
    Require(pos_ + size <= bytes_.size(), "truncated protocol payload");
    const uint8_t* p = bytes_.data() + pos_;
    pos_ += size;
    return p;
  }

 private:
  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
};

}  // namespace

// --- framing ----------------------------------------------------------------

bool ReadFrame(int fd, std::vector<uint8_t>& payload) {
  uint32_t len;
  if (ReadFull(fd, &len, sizeof(len)) == 0) return false;
  Require(len <= kMaxFrameBytes, "protocol frame exceeds 1 GiB");
  payload.resize(len);
  if (len > 0) {
    Require(ReadFull(fd, payload.data(), len) == len,
            "connection closed mid-frame");
  }
  return true;
}

void WriteFrame(int fd, std::span<const uint8_t> payload) {
  Require(payload.size() <= kMaxFrameBytes, "protocol frame exceeds 1 GiB");
  const uint32_t len = static_cast<uint32_t>(payload.size());
  WriteFull(fd, &len, sizeof(len));
  if (!payload.empty()) WriteFull(fd, payload.data(), payload.size());
}

// --- payload encoding -------------------------------------------------------

MessageType PeekType(std::span<const uint8_t> payload) {
  Require(!payload.empty(), "empty protocol payload");
  const uint8_t type = payload[0];
  Require(type >= static_cast<uint8_t>(MessageType::kQuery) &&
              type <= static_cast<uint8_t>(MessageType::kNearestPoi),
          "unknown protocol message type");
  return static_cast<MessageType>(type);
}

uint64_t PeekId(std::span<const uint8_t> payload) {
  ByteReader reader(payload);
  reader.U8();
  return reader.U64();
}

std::vector<uint8_t> EncodeQuery(uint64_t id, const Request& request) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(MessageType::kQuery));
  w.U64(id);
  w.F64(request.deadline_ms);
  w.U32(request.source);
  w.U32(static_cast<uint32_t>(request.targets.size()));
  w.Bytes(request.targets.data(), request.targets.size() * sizeof(VertexId));
  return w.Take();
}

QueryFrame DecodeQuery(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  Require(r.U8() == static_cast<uint8_t>(MessageType::kQuery),
          "expected a query payload");
  QueryFrame frame;
  frame.id = r.U64();
  frame.request.deadline_ms = r.F64();
  frame.request.source = r.U32();
  const uint32_t num_targets = r.U32();
  Require(r.Remaining() == static_cast<size_t>(num_targets) * sizeof(VertexId),
          "query target count disagrees with payload size");
  frame.request.targets.resize(num_targets);
  if (num_targets > 0) {
    std::memcpy(frame.request.targets.data(),
                r.Raw(static_cast<size_t>(num_targets) * sizeof(VertexId)),
                static_cast<size_t>(num_targets) * sizeof(VertexId));
  }
  r.ExpectEnd();
  return frame;
}

std::vector<uint8_t> EncodeResponse(uint64_t id, const Response& response) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(MessageType::kQuery));
  w.U64(id);
  w.U8(static_cast<uint8_t>(response.status));
  w.U8(response.from_cache ? 1 : 0);
  w.F64(response.latency_ms);
  w.U64(response.epoch);
  w.U32(static_cast<uint32_t>(response.distances.size()));
  w.Bytes(response.distances.data(),
          response.distances.size() * sizeof(Weight));
  return w.Take();
}

ResponseFrame DecodeResponse(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  Require(r.U8() == static_cast<uint8_t>(MessageType::kQuery),
          "expected a query response payload");
  ResponseFrame frame;
  frame.id = r.U64();
  const uint8_t status = r.U8();
  Require(status <= static_cast<uint8_t>(ResponseStatus::kInvalidRequest),
          "unknown response status");
  frame.response.status = static_cast<ResponseStatus>(status);
  frame.response.from_cache = r.U8() != 0;
  frame.response.latency_ms = r.F64();
  frame.response.epoch = r.U64();
  const uint32_t num = r.U32();
  Require(r.Remaining() == static_cast<size_t>(num) * sizeof(Weight),
          "response distance count disagrees with payload size");
  frame.response.distances.resize(num);
  if (num > 0) {
    std::memcpy(frame.response.distances.data(),
                r.Raw(static_cast<size_t>(num) * sizeof(Weight)),
                static_cast<size_t>(num) * sizeof(Weight));
  }
  r.ExpectEnd();
  return frame;
}

namespace {

void RequireVersion(uint8_t version) {
  Require(version == kProtocolVersion,
          "unsupported workload-frame protocol version");
}

/// Reads a u32 array whose length was already validated against
/// Remaining() by the caller's arithmetic.
void ReadU32Array(ByteReader& r, std::vector<uint32_t>& out, size_t count) {
  out.resize(count);
  if (count > 0) {
    std::memcpy(out.data(), r.Raw(count * sizeof(uint32_t)),
                count * sizeof(uint32_t));
  }
}

}  // namespace

std::vector<uint8_t> EncodeMatrixQuery(uint64_t id, const Request& request) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(MessageType::kMatrix));
  w.U64(id);
  w.U8(kProtocolVersion);
  w.F64(request.deadline_ms);
  w.U32(static_cast<uint32_t>(request.sources.size()));
  w.U32(static_cast<uint32_t>(request.targets.size()));
  w.Bytes(request.sources.data(), request.sources.size() * sizeof(VertexId));
  w.Bytes(request.targets.data(), request.targets.size() * sizeof(VertexId));
  return w.Take();
}

QueryFrame DecodeMatrixQuery(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  Require(r.U8() == static_cast<uint8_t>(MessageType::kMatrix),
          "expected a matrix query payload");
  QueryFrame frame;
  frame.request.kind = RequestKind::kMatrix;
  frame.id = r.U64();
  RequireVersion(r.U8());
  frame.request.deadline_ms = r.F64();
  const uint32_t num_sources = r.U32();
  const uint32_t num_targets = r.U32();
  Require(num_sources > 0 && num_sources <= kMaxMatrixDim &&
              num_targets > 0 && num_targets <= kMaxMatrixDim,
          "matrix dimension out of range");
  Require(static_cast<uint64_t>(num_sources) * num_targets <= kMaxMatrixCells,
          "matrix cell count exceeds the protocol limit");
  Require(r.Remaining() == (static_cast<size_t>(num_sources) + num_targets) *
                               sizeof(VertexId),
          "matrix dimensions disagree with payload size");
  ReadU32Array(r, frame.request.sources, num_sources);
  ReadU32Array(r, frame.request.targets, num_targets);
  r.ExpectEnd();
  return frame;
}

std::vector<uint8_t> EncodeMatrixResponse(uint64_t id,
                                          const Response& response) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(MessageType::kMatrix));
  w.U64(id);
  w.U8(kProtocolVersion);
  w.U8(static_cast<uint8_t>(response.status));
  w.F64(response.latency_ms);
  w.U64(response.epoch);
  w.U32(response.rows);
  w.U32(response.cols);
  w.Bytes(response.distances.data(),
          response.distances.size() * sizeof(Weight));
  return w.Take();
}

ResponseFrame DecodeMatrixResponse(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  Require(r.U8() == static_cast<uint8_t>(MessageType::kMatrix),
          "expected a matrix response payload");
  ResponseFrame frame;
  frame.id = r.U64();
  RequireVersion(r.U8());
  const uint8_t status = r.U8();
  Require(status <= static_cast<uint8_t>(ResponseStatus::kInvalidRequest),
          "unknown response status");
  frame.response.status = static_cast<ResponseStatus>(status);
  frame.response.latency_ms = r.F64();
  frame.response.epoch = r.U64();
  frame.response.rows = r.U32();
  frame.response.cols = r.U32();
  const uint64_t cells =
      static_cast<uint64_t>(frame.response.rows) * frame.response.cols;
  Require(cells <= kMaxMatrixCells,
          "matrix cell count exceeds the protocol limit");
  // Sheds answer with an empty table; otherwise the shape must match.
  Require(r.Remaining() == cells * sizeof(Weight) || r.Remaining() == 0,
          "matrix shape disagrees with payload size");
  ReadU32Array(r, frame.response.distances,
               r.Remaining() / sizeof(Weight));
  r.ExpectEnd();
  return frame;
}

std::vector<uint8_t> EncodePoiQuery(uint64_t id, const Request& request) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(MessageType::kNearestPoi));
  w.U64(id);
  w.U8(kProtocolVersion);
  w.F64(request.deadline_ms);
  w.U32(request.source);
  w.U32(request.poi_category);
  w.U32(request.poi_k);
  return w.Take();
}

QueryFrame DecodePoiQuery(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  Require(r.U8() == static_cast<uint8_t>(MessageType::kNearestPoi),
          "expected a k-nearest-POI query payload");
  QueryFrame frame;
  frame.request.kind = RequestKind::kNearestPoi;
  frame.id = r.U64();
  RequireVersion(r.U8());
  frame.request.deadline_ms = r.F64();
  frame.request.source = r.U32();
  frame.request.poi_category = r.U32();
  frame.request.poi_k = r.U32();
  r.ExpectEnd();
  return frame;
}

std::vector<uint8_t> EncodePoiResponse(uint64_t id, const Response& response) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(MessageType::kNearestPoi));
  w.U64(id);
  w.U8(kProtocolVersion);
  w.U8(static_cast<uint8_t>(response.status));
  w.F64(response.latency_ms);
  w.U64(response.epoch);
  w.U32(static_cast<uint32_t>(response.poi_vertices.size()));
  for (size_t i = 0; i < response.poi_vertices.size(); ++i) {
    w.U32(response.poi_vertices[i]);
    w.U32(response.distances[i]);
  }
  return w.Take();
}

ResponseFrame DecodePoiResponse(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  Require(r.U8() == static_cast<uint8_t>(MessageType::kNearestPoi),
          "expected a k-nearest-POI response payload");
  ResponseFrame frame;
  frame.id = r.U64();
  RequireVersion(r.U8());
  const uint8_t status = r.U8();
  Require(status <= static_cast<uint8_t>(ResponseStatus::kInvalidRequest),
          "unknown response status");
  frame.response.status = static_cast<ResponseStatus>(status);
  frame.response.latency_ms = r.F64();
  frame.response.epoch = r.U64();
  const uint32_t count = r.U32();
  Require(r.Remaining() == static_cast<size_t>(count) * 2 * sizeof(uint32_t),
          "POI result count disagrees with payload size");
  frame.response.poi_vertices.resize(count);
  frame.response.distances.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    frame.response.poi_vertices[i] = r.U32();
    frame.response.distances[i] = r.U32();
  }
  r.ExpectEnd();
  return frame;
}

std::vector<uint8_t> EncodeResponseFor(MessageType type, uint64_t id,
                                       const Response& response) {
  switch (type) {
    case MessageType::kMatrix:
      return EncodeMatrixResponse(id, response);
    case MessageType::kNearestPoi:
      return EncodePoiResponse(id, response);
    default:
      return EncodeResponse(id, response);
  }
}

ResponseFrame DecodeAnyResponse(std::span<const uint8_t> payload) {
  switch (PeekType(payload)) {
    case MessageType::kMatrix:
      return DecodeMatrixResponse(payload);
    case MessageType::kNearestPoi:
      return DecodePoiResponse(payload);
    default:
      return DecodeResponse(payload);
  }
}

std::vector<uint8_t> EncodeControl(MessageType type, uint64_t id) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(type));
  w.U64(id);
  return w.Take();
}

std::vector<uint8_t> EncodeMetricsText(uint64_t id, const std::string& text) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(MessageType::kMetrics));
  w.U64(id);
  w.U32(static_cast<uint32_t>(text.size()));
  w.Bytes(text.data(), text.size());
  return w.Take();
}

std::string DecodeMetricsText(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  Require(r.U8() == static_cast<uint8_t>(MessageType::kMetrics),
          "expected a metrics payload");
  r.U64();  // id
  const uint32_t len = r.U32();
  Require(r.Remaining() == len, "metrics length disagrees with payload size");
  std::string text(reinterpret_cast<const char*>(r.Raw(len)), len);
  r.ExpectEnd();
  return text;
}

std::vector<uint8_t> EncodeWeightUpdates(uint64_t id,
                                         std::span<const WeightUpdate> updates) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(MessageType::kUpdateWeights));
  w.U64(id);
  w.U32(static_cast<uint32_t>(updates.size()));
  for (const WeightUpdate& u : updates) {
    w.U32(u.tail);
    w.U32(u.head);
    w.U32(u.weight);
  }
  return w.Take();
}

std::vector<WeightUpdate> DecodeWeightUpdates(
    std::span<const uint8_t> payload) {
  ByteReader r(payload);
  Require(r.U8() == static_cast<uint8_t>(MessageType::kUpdateWeights),
          "expected a weight-update payload");
  r.U64();  // id
  const uint32_t count = r.U32();
  Require(r.Remaining() == static_cast<size_t>(count) * 3 * sizeof(uint32_t),
          "weight-update count disagrees with payload size");
  std::vector<WeightUpdate> updates(count);
  for (WeightUpdate& u : updates) {
    u.tail = r.U32();
    u.head = r.U32();
    u.weight = r.U32();
  }
  r.ExpectEnd();
  return updates;
}

std::vector<uint8_t> EncodeValueReply(MessageType type, uint64_t id,
                                      uint64_t value) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(type));
  w.U64(id);
  w.U64(value);
  return w.Take();
}

uint64_t DecodeValueReply(MessageType type, std::span<const uint8_t> payload) {
  ByteReader r(payload);
  Require(r.U8() == static_cast<uint8_t>(type),
          "value reply carries an unexpected message type");
  r.U64();  // id
  const uint64_t value = r.U64();
  r.ExpectEnd();
  return value;
}

// --- transport helpers ------------------------------------------------------

int ListenUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  Require(path.size() < sizeof(addr.sun_path),
          "unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  Require(fd >= 0, std::string("socket failed: ") + std::strerror(errno));
  ::unlink(path.c_str());  // replace a stale socket file from a dead server
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    Require(false, "bind(" + path + ") failed: " + err);
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    Require(false, "listen(" + path + ") failed: " + err);
  }
  return fd;
}

int ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  Require(path.size() < sizeof(addr.sun_path),
          "unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  Require(fd >= 0, std::string("socket failed: ") + std::strerror(errno));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    Require(false, "connect(" + path + ") failed: " + err);
  }
  return fd;
}

// --- server connection loop -------------------------------------------------

namespace {

/// One frame awaiting the writer: either pre-encoded bytes (control
/// responses) or a pending query future to resolve and encode. `source` is
/// kept for the slow-request log (the response does not echo it); `type`
/// picks the response encoding (kQuery/kMatrix/kNearestPoi).
struct Outgoing {
  std::vector<uint8_t> ready;
  std::future<Response> future;
  uint64_t id = 0;
  VertexId source = 0;
  MessageType type = MessageType::kQuery;
};

}  // namespace

bool ServeConnection(int in_fd, int out_fd, OracleService& service,
                     MetricsRegistry& metrics,
                     const ConnectionOptions& conn_options) {
  // The reader submits queries and hands futures to the writer in request
  // order; the writer blocks on each future in turn, so responses go out in
  // the order requests came in while the scheduler computes them in
  // batches. Blocking Push bounds how far the reader can run ahead.
  BoundedQueue<Outgoing> outbox(1024);
  std::atomic<bool> write_failed{false};

  std::thread writer([&] {
    for (;;) {
      std::optional<Outgoing> item = outbox.Pop();
      if (!item) return;
      if (write_failed.load(std::memory_order_relaxed)) continue;
      try {
        if (item->future.valid()) {
          const Response response = item->future.get();
          if (conn_options.slow_ms > 0.0 &&
              response.latency_ms >= conn_options.slow_ms) {
            std::fprintf(stderr,
                         "phast_serve: slow request trace_id=%llu source=%u "
                         "status=%s latency_ms=%.3f\n",
                         static_cast<unsigned long long>(item->id),
                         item->source, ToString(response.status),
                         response.latency_ms);
          }
          WriteFrame(out_fd, EncodeResponseFor(item->type, item->id, response));
        } else {
          WriteFrame(out_fd, item->ready);
        }
      } catch (const std::exception&) {
        // Client went away mid-write; keep draining so every future is
        // consumed, then let the reader observe EOF.
        write_failed.store(true, std::memory_order_relaxed);
      }
    }
  });

  bool got_shutdown = false;
  std::vector<uint8_t> payload;
  try {
    while (!write_failed.load(std::memory_order_relaxed) &&
           ReadFrame(in_fd, payload)) {
      const MessageType type = PeekType(payload);
      Outgoing out;
      out.id = PeekId(payload);
      if (type == MessageType::kQuery || type == MessageType::kMatrix ||
          type == MessageType::kNearestPoi) {
        QueryFrame query = type == MessageType::kQuery ? DecodeQuery(payload)
                           : type == MessageType::kMatrix
                               ? DecodeMatrixQuery(payload)
                               : DecodePoiQuery(payload);
        // The wire frame id is the request-scoped trace id — no extra wire
        // field, and the client already correlates by it.
        query.request.trace_id = query.id;
        out.source = query.request.source;
        out.type = type;
        out.future = service.Submit(std::move(query.request));
      } else if (type == MessageType::kMetrics) {
        out.ready = EncodeMetricsText(out.id, metrics.RenderPrometheus());
      } else if (type == MessageType::kUpdateWeights) {
        Require(conn_options.manager != nullptr,
                "weight updates need a customizable snapshot "
                "(phast_prepare --customizable)");
        const std::vector<WeightUpdate> updates = DecodeWeightUpdates(payload);
        const uint64_t seq = conn_options.manager->UpdateWeights(updates);
        out.ready = EncodeValueReply(MessageType::kUpdateWeights, out.id, seq);
      } else if (type == MessageType::kSwap) {
        Require(conn_options.manager != nullptr,
                "snapshot swaps need a customizable snapshot "
                "(phast_prepare --customizable)");
        const uint64_t epoch = conn_options.manager->CustomizeAndSwap(
            conn_options.customize_threads);
        out.ready = EncodeValueReply(MessageType::kSwap, out.id, epoch);
      } else if (type == MessageType::kEpoch) {
        const uint64_t epoch =
            conn_options.manager != nullptr ? conn_options.manager->Epoch() : 0;
        out.ready = EncodeValueReply(MessageType::kEpoch, out.id, epoch);
      } else {
        out.ready = EncodeControl(MessageType::kShutdown, out.id);
        got_shutdown = true;
      }
      if (!outbox.Push(std::move(out))) break;
      if (got_shutdown) break;
    }
  } catch (const std::exception&) {
    // Malformed frame or torn connection: stop reading, flush what we have.
  }
  outbox.Close();
  writer.join();
  return got_shutdown;
}

// --- client ----------------------------------------------------------------

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

uint64_t Client::SendQuery(const Request& request) {
  const uint64_t id = next_id_++;
  switch (request.kind) {
    case RequestKind::kMatrix:
      WriteFrame(fd_, EncodeMatrixQuery(id, request));
      break;
    case RequestKind::kNearestPoi:
      WriteFrame(fd_, EncodePoiQuery(id, request));
      break;
    case RequestKind::kTree:
      WriteFrame(fd_, EncodeQuery(id, request));
      break;
  }
  return id;
}

ResponseFrame Client::ReceiveResponse() {
  Require(ReadFrame(fd_, scratch_), "server closed the connection");
  return DecodeAnyResponse(scratch_);
}

Response Client::Call(const Request& request) {
  SendQuery(request);
  return ReceiveResponse().response;
}

std::string Client::FetchMetrics() {
  // Only valid with no query responses outstanding (frames would interleave).
  WriteFrame(fd_, EncodeControl(MessageType::kMetrics, next_id_++));
  Require(ReadFrame(fd_, scratch_), "server closed the connection");
  return DecodeMetricsText(scratch_);
}

uint64_t Client::UpdateWeights(std::span<const WeightUpdate> updates) {
  WriteFrame(fd_, EncodeWeightUpdates(next_id_++, updates));
  Require(ReadFrame(fd_, scratch_), "server closed the connection");
  return DecodeValueReply(MessageType::kUpdateWeights, scratch_);
}

uint64_t Client::TriggerSwap() {
  WriteFrame(fd_, EncodeControl(MessageType::kSwap, next_id_++));
  Require(ReadFrame(fd_, scratch_), "server closed the connection");
  return DecodeValueReply(MessageType::kSwap, scratch_);
}

uint64_t Client::FetchEpoch() {
  WriteFrame(fd_, EncodeControl(MessageType::kEpoch, next_id_++));
  Require(ReadFrame(fd_, scratch_), "server closed the connection");
  return DecodeValueReply(MessageType::kEpoch, scratch_);
}

void Client::Shutdown() {
  WriteFrame(fd_, EncodeControl(MessageType::kShutdown, next_id_++));
  Require(ReadFrame(fd_, scratch_), "server closed the connection");
  Require(PeekType(scratch_) == MessageType::kShutdown,
          "expected shutdown acknowledgement");
}

}  // namespace phast::server

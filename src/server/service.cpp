#include "server/service.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"
#include "phast/matrix.h"
#include "phast/rphast.h"
#include "util/error.h"

namespace phast::server {

const char* ToString(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk:
      return "ok";
    case ResponseStatus::kShedQueueFull:
      return "shed_queue_full";
    case ResponseStatus::kShedDeadline:
      return "shed_deadline";
    case ResponseStatus::kShedShutdown:
      return "shed_shutdown";
    case ResponseStatus::kInvalidRequest:
      return "invalid_request";
  }
  return "unknown";
}

// --- TreeCache -------------------------------------------------------------

std::shared_ptr<const std::vector<Weight>> OracleService::TreeCache::Lookup(
    uint64_t epoch, VertexId source) {
  if (capacity_ == 0) return nullptr;
  const MutexLock lock(mu_);
  const auto it = by_key_.find(Key(epoch, source));
  if (it == by_key_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.tree;
}

size_t OracleService::TreeCache::Insert(
    uint64_t epoch, VertexId source,
    std::shared_ptr<const std::vector<Weight>> tree) {
  if (capacity_ == 0) return 0;
  const MutexLock lock(mu_);
  const uint64_t key = Key(epoch, source);
  const auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    it->second.tree = std::move(tree);
    return 0;
  }
  size_t evicted = 0;
  while (by_key_.size() >= capacity_) {
    by_key_.erase(lru_.back());
    lru_.pop_back();
    ++evicted;
  }
  lru_.push_front(key);
  by_key_[key] = Slot{lru_.begin(), std::move(tree)};
  return evicted;
}

size_t OracleService::TreeCache::FlushBefore(uint64_t epoch) {
  if (capacity_ == 0) return 0;
  const MutexLock lock(mu_);
  size_t flushed = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if ((*it >> 32) < epoch) {
      by_key_.erase(*it);
      it = lru_.erase(it);
      ++flushed;
    } else {
      ++it;
    }
  }
  return flushed;
}

size_t OracleService::TreeCache::Size() const {
  const MutexLock lock(mu_);
  return by_key_.size();
}

// --- OracleService ---------------------------------------------------------

OracleService::OracleService(const Phast& engine, const ServiceOptions& options,
                             MetricsRegistry& metrics)
    : OracleService(&engine, nullptr, options, metrics) {}

OracleService::OracleService(SnapshotManager& manager,
                             const ServiceOptions& options,
                             MetricsRegistry& metrics)
    : OracleService(nullptr, &manager, options, metrics) {}

OracleService::OracleService(const Phast* engine, SnapshotManager* manager,
                             const ServiceOptions& options,
                             MetricsRegistry& metrics)
    : pinned_engine_(engine),
      manager_(manager),
      num_vertices_(manager != nullptr ? manager->Current()->engine.NumVertices()
                                       : engine->NumVertices()),
      options_(options),
      queue_(options.queue_capacity),
      cache_(options.cache_capacity),
      admitted_(metrics.GetCounter("phast_server_requests_admitted_total",
                                   "Requests accepted by Submit")),
      completed_(metrics.GetCounter(
          "phast_server_requests_completed_total",
          "Requests answered with ok or invalid_request")),
      shed_total_(metrics.GetCounter("phast_server_requests_shed_total",
                                     "Requests shed for any reason")),
      shed_queue_full_(
          metrics.GetCounter("phast_server_requests_shed_queue_full_total",
                             "Requests shed because the queue was full")),
      shed_deadline_(metrics.GetCounter(
          "phast_server_requests_shed_deadline_total",
          "Requests shed because their deadline expired while queued")),
      shed_shutdown_(
          metrics.GetCounter("phast_server_requests_shed_shutdown_total",
                             "Requests shed by service shutdown")),
      cache_hits_(metrics.GetCounter("phast_server_tree_cache_hits_total",
                                     "Requests served from the tree cache")),
      cache_misses_(metrics.GetCounter("phast_server_tree_cache_misses_total",
                                       "Requests that missed the tree cache")),
      cache_evictions_(
          metrics.GetCounter("phast_server_tree_cache_evictions_total",
                             "Trees evicted from the LRU cache")),
      cache_swap_flushes_(metrics.GetCounter(
          "phast_server_tree_cache_swap_flushes_total",
          "Stale-epoch trees flushed from the cache after a snapshot swap")),
      batches_(metrics.GetCounter("phast_server_batches_total",
                                  "Coalesced sweep batches executed")),
      rphast_batches_(
          metrics.GetCounter("phast_server_rphast_batches_total",
                             "Batches run with the restricted (RPHAST) sweep")),
      matrix_requests_(
          metrics.GetCounter("phast_server_matrix_requests_total",
                             "kMatrix distance-table requests admitted")),
      poi_requests_(
          metrics.GetCounter("phast_server_poi_requests_total",
                             "kNearestPoi requests admitted")),
      queue_depth_(metrics.GetGauge("phast_server_queue_depth",
                                    "Requests waiting in the admission queue")),
      cached_trees_(metrics.GetGauge("phast_server_cached_trees",
                                     "Trees currently held by the LRU cache")),
      batch_width_(metrics.GetHistogram(
          "phast_server_batch_width",
          "Distinct sources per coalesced batch",
          {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0})),
      latency_ms_(metrics.GetHistogram(
          "phast_server_request_latency_ms",
          "Admission-to-completion latency in milliseconds",
          DefaultLatencyBucketsMs())),
      sweep_ms_(metrics.GetHistogram("phast_server_sweep_ms",
                                     "Batch sweep duration in milliseconds",
                                     DefaultLatencyBucketsMs())),
      upward_ms_(metrics.GetHistogram(
          "phast_server_upward_ms",
          "Batch upward-search (phase one) duration in milliseconds",
          DefaultLatencyBucketsMs())) {
  Require(options_.max_batch >= 1, "max_batch must be at least 1");
  workers_.reserve(options_.num_workers);
  for (uint32_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

OracleService::~OracleService() { Stop(); }

std::future<Response> OracleService::Submit(Request request,
                                            std::function<void()> on_done) {
  admitted_.Inc();
  if (request.kind == RequestKind::kMatrix) {
    matrix_requests_.Inc();
  } else if (request.kind == RequestKind::kNearestPoi) {
    poi_requests_.Inc();
  }
  Job job;
  job.on_done = std::move(on_done);
  job.deadline_ms = request.deadline_ms < 0.0 ? options_.default_deadline_ms
                                              : request.deadline_ms;
  job.request = std::move(request);
  std::future<Response> future = job.promise.get_future();

  const VertexId n = num_vertices_;
  const auto in_range = [n](const std::vector<VertexId>& ids) {
    return std::all_of(ids.begin(), ids.end(),
                       [n](VertexId v) { return v < n; });
  };
  bool valid = false;
  switch (job.request.kind) {
    case RequestKind::kTree:
      valid = job.request.source < n && in_range(job.request.targets);
      break;
    case RequestKind::kMatrix:
      valid = !job.request.sources.empty() && !job.request.targets.empty() &&
              in_range(job.request.sources) && in_range(job.request.targets);
      break;
    case RequestKind::kNearestPoi:
      // A server without a POI index rejects rather than sheds: the client
      // asked for a workload this deployment cannot answer.
      valid = job.request.source < n && options_.poi != nullptr &&
              job.request.poi_category < options_.poi->NumCategories();
      break;
  }
  if (!valid) {
    Response rejected;
    rejected.status = ResponseStatus::kInvalidRequest;
    Fulfill(job, std::move(rejected));
    return future;
  }
  if (stopped_.load(std::memory_order_acquire)) {
    Shed(job, ResponseStatus::kShedShutdown, shed_shutdown_);
    return future;
  }
  if (!queue_.TryPush(std::move(job))) {
    // TryPush only consumes on success; on failure `job` is intact.
    if (queue_.Closed()) {
      Shed(job, ResponseStatus::kShedShutdown, shed_shutdown_);
    } else {
      Shed(job, ResponseStatus::kShedQueueFull, shed_queue_full_);
    }
    return future;
  }
  queue_depth_.Set(static_cast<int64_t>(queue_.Size()));
  return future;
}

void OracleService::Stop() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  queue_.Close();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  // With zero workers (or a worker that exited early) the backlog is still
  // queued; every request still gets an answer.
  std::vector<Job> rest = queue_.Drain();
  for (Job& job : rest) {
    Shed(job, ResponseStatus::kShedShutdown, shed_shutdown_);
  }
  queue_depth_.Set(0);
}

ServiceCounters OracleService::Counters() const {
  ServiceCounters c;
  c.admitted = admitted_.Value();
  c.completed = completed_.Value();
  c.shed_queue_full = shed_queue_full_.Value();
  c.shed_deadline = shed_deadline_.Value();
  c.shed_shutdown = shed_shutdown_.Value();
  c.cache_hits = cache_hits_.Value();
  c.cache_misses = cache_misses_.Value();
  c.cache_evictions = cache_evictions_.Value();
  c.cache_swap_flushes = cache_swap_flushes_.Value();
  c.batches = batches_.Value();
  c.rphast_batches = rphast_batches_.Value();
  c.matrix_requests = matrix_requests_.Value();
  c.poi_requests = poi_requests_.Value();
  return c;
}

void OracleService::WorkerLoop() {
  WorkspacePool pool;
  for (;;) {
    std::vector<Job> jobs = queue_.PopBatch(options_.max_batch);
    if (jobs.empty()) return;  // closed and drained
    queue_depth_.Set(static_cast<int64_t>(queue_.Size()));
    ProcessBatch(jobs, pool);
  }
}

namespace {

/// Gathers the response for one job from a full tree indexed by original id.
/// Takes the serving epoch so every distance-bearing response is stamped at
/// construction; callers must not hand out an unstamped response.
Response FromTree(const std::vector<Weight>& tree, const Request& request,
                  uint64_t epoch, bool from_cache) {
  Response response;
  response.epoch = epoch;
  response.from_cache = from_cache;
  if (request.targets.empty()) {
    response.distances = tree;
  } else {
    response.distances.reserve(request.targets.size());
    for (const VertexId t : request.targets) {
      response.distances.push_back(tree[t]);
    }
  }
  return response;
}

}  // namespace

void OracleService::ProcessBatch(std::vector<Job>& jobs, WorkspacePool& pool) {
  PHAST_SPAN_ARG("server.batch", jobs.front().request.trace_id);

  // One snapshot acquisition per batch: everything below — cache keys,
  // sweeps, response stamps — is consistently under this epoch even if a
  // swap publishes mid-batch (the shared_ptr keeps our engine alive).
  std::shared_ptr<const ServingSnapshot> snapshot;
  if (manager_ != nullptr) snapshot = manager_->Current();
  const Phast& engine = snapshot ? snapshot->engine : *pinned_engine_;
  const uint64_t epoch = snapshot ? snapshot->epoch : 0;

  // Release trees of retired epochs (epoch-keyed entries can no longer be
  // hit, this is purely memory) and workspaces of the retired engine.
  uint64_t flushed = flushed_epoch_.load(std::memory_order_relaxed);
  if (epoch > flushed &&
      flushed_epoch_.compare_exchange_strong(flushed, epoch,
                                             std::memory_order_relaxed)) {
    const size_t dropped = cache_.FlushBefore(epoch);
    cache_swap_flushes_.Inc(dropped);
    cached_trees_.Set(static_cast<int64_t>(cache_.Size()));
  }
  if (pool.engine != &engine) {
    pool.engine = &engine;
    pool.by_k.clear();
    pool.knn_by_category.clear();
  }

  std::vector<Job*> live;
  live.reserve(jobs.size());
  for (Job& job : jobs) {
    if (job.deadline_ms > 0.0 && job.admitted.ElapsedMs() > job.deadline_ms) {
      Shed(job, ResponseStatus::kShedDeadline, shed_deadline_);
    } else {
      live.push_back(&job);
    }
  }
  if (live.empty()) return;

  // Matrix and POI jobs run on their own paths; the tree cache, duplicate
  // coalescing, and restricted-batch machinery below apply to kTree only.
  std::vector<Job*> tree_jobs;
  tree_jobs.reserve(live.size());
  for (Job* job : live) {
    switch (job->request.kind) {
      case RequestKind::kMatrix:
        RunMatrixJob(engine, epoch, *job);
        break;
      case RequestKind::kNearestPoi:
        RunPoiJob(engine, epoch, *job, pool);
        break;
      case RequestKind::kTree:
        tree_jobs.push_back(job);
        break;
    }
  }
  live = std::move(tree_jobs);
  if (live.empty()) return;

  // Serve repeated sources from the LRU cache before forming the sweep.
  if (options_.cache_capacity > 0) {
    std::vector<Job*> missed;
    missed.reserve(live.size());
    for (Job* job : live) {
      if (const auto tree = cache_.Lookup(epoch, job->request.source)) {
        cache_hits_.Inc();
        Response response =
            FromTree(*tree, job->request, epoch, /*from_cache=*/true);
        Fulfill(*job, std::move(response));
      } else {
        cache_misses_.Inc();
        missed.push_back(job);
      }
    }
    live = std::move(missed);
  }
  if (live.empty()) return;

  batches_.Inc();

  // The restricted sweep pays off when the whole batch asks for explicit
  // targets and their union is small; it bypasses the tree cache because no
  // full tree is ever materialized.
  const bool restrictable =
      options_.rphast_max_targets > 0 && !engine.LevelBoundaries().empty() &&
      engine.GetOptions().implicit_init &&
      std::all_of(live.begin(), live.end(),
                  [](const Job* job) { return !job->request.targets.empty(); });
  if (restrictable) {
    size_t union_bound = 0;
    for (const Job* job : live) union_bound += job->request.targets.size();
    if (union_bound <= options_.rphast_max_targets) {
      rphast_batches_.Inc();
      RunRestrictedBatch(engine, epoch, live);
      return;
    }
  }
  RunFullBatch(engine, epoch, live, pool);
}

void OracleService::RunMatrixJob(const Phast& engine, uint64_t epoch,
                                 Job& job) {
  PHAST_SPAN_ARG("server.matrix", job.request.trace_id);
  MatrixOptions options;
  options.trees_per_sweep = std::max(1u, options_.matrix_trees_per_sweep);
  options.mode = !engine.LevelBoundaries().empty() &&
                         engine.GetOptions().implicit_init
                     ? MatrixMode::kRestrictedBatched
                     : MatrixMode::kBatched;
  const Timer sweep;
  std::vector<Weight> table = ComputeDistanceTable(
      engine, job.request.sources, job.request.targets, options);
  sweep_ms_.Observe(sweep.ElapsedMs());
  Response response;
  response.epoch = epoch;
  response.rows = static_cast<uint32_t>(job.request.sources.size());
  response.cols = static_cast<uint32_t>(job.request.targets.size());
  response.distances = std::move(table);
  Fulfill(job, std::move(response));
}

void OracleService::RunPoiJob(const Phast& engine, uint64_t epoch, Job& job,
                              WorkspacePool& pool) {
  PHAST_SPAN_ARG("server.poi", job.request.trace_id);
  const uint32_t category = job.request.poi_category;
  auto it = pool.knn_by_category.find(category);
  if (it == pool.knn_by_category.end()) {
    it = pool.knn_by_category
             .try_emplace(category, engine, *options_.poi, category)
             .first;
  }
  auto ws_it = pool.by_k.find(1);
  if (ws_it == pool.by_k.end()) {
    ws_it = pool.by_k.emplace(1, engine.MakeWorkspace(1)).first;
  }
  const Timer sweep;
  const std::vector<PoiResult> nearest =
      it->second.Query(job.request.source, job.request.poi_k, ws_it->second);
  sweep_ms_.Observe(sweep.ElapsedMs());
  Response response;
  response.epoch = epoch;
  response.poi_vertices.reserve(nearest.size());
  response.distances.reserve(nearest.size());
  for (const PoiResult& poi : nearest) {
    response.poi_vertices.push_back(poi.vertex);
    response.distances.push_back(poi.dist);
  }
  Fulfill(job, std::move(response));
}

void OracleService::RunRestrictedBatch(const Phast& engine, uint64_t epoch,
                                       std::vector<Job*>& jobs) {
  // Union of the batch's targets, deduplicated, with per-target indices.
  std::vector<VertexId> union_targets;
  std::unordered_map<VertexId, size_t> index_of;
  for (const Job* job : jobs) {
    for (const VertexId t : job->request.targets) {
      if (index_of.emplace(t, union_targets.size()).second) {
        union_targets.push_back(t);
      }
    }
  }
  batch_width_.Observe(static_cast<double>(jobs.size()));

  const RPhast rphast(engine, union_targets);
  RPhast::Workspace ws = rphast.MakeWorkspace();

  // One restricted sweep per distinct source, shared by its duplicates.
  std::unordered_map<VertexId, std::vector<Job*>> by_source;
  std::vector<VertexId> source_order;
  for (Job* job : jobs) {
    auto [it, inserted] = by_source.try_emplace(job->request.source);
    if (inserted) source_order.push_back(job->request.source);
    it->second.push_back(job);
  }
  for (const VertexId source : source_order) {
    PHAST_SPAN("server.rphast_sweep");
    const Timer sweep;
    rphast.ComputeTree(source, ws);
    sweep_ms_.Observe(sweep.ElapsedMs());
    for (Job* job : by_source[source]) {
      Response response;
      response.epoch = epoch;
      response.distances.reserve(job->request.targets.size());
      for (const VertexId t : job->request.targets) {
        response.distances.push_back(
            rphast.DistanceToTarget(ws, index_of[t]));
      }
      Fulfill(*job, std::move(response));
    }
  }
}

void OracleService::RunFullBatch(const Phast& engine, uint64_t epoch,
                                 std::vector<Job*>& jobs,
                                 WorkspacePool& pool) {
  // Distinct sources in first-appearance order; duplicates share a lane.
  std::vector<VertexId> lane_sources;
  std::unordered_map<VertexId, uint32_t> lane_of;
  for (const Job* job : jobs) {
    const auto [it, inserted] = lane_of.try_emplace(
        job->request.source, static_cast<uint32_t>(lane_sources.size()));
    if (inserted) lane_sources.push_back(job->request.source);
  }
  const size_t unique = lane_sources.size();
  batch_width_.Observe(static_cast<double>(unique));

  // Round the sweep width up to a SIMD-friendly multiple of 4 (padding
  // lanes repeat the last source, which the kernels handle for free).
  const uint32_t k =
      unique <= 1 ? 1 : static_cast<uint32_t>((unique + 3) / 4 * 4);
  lane_sources.resize(k, lane_sources.back());

  auto it = pool.by_k.find(k);
  if (it == pool.by_k.end()) {
    it = pool.by_k.emplace(k, engine.MakeWorkspace(k)).first;
  }
  Phast::Workspace& ws = it->second;

  engine.ComputeTrees(lane_sources, ws);
  // Phase histograms come from the workspace's always-on phase timings, so
  // upward and sweep are split without re-timing around the engine call.
  upward_ms_.Observe(static_cast<double>(ws.LastUpwardNanos()) * 1e-6);
  sweep_ms_.Observe(static_cast<double>(ws.LastSweepNanos()) * 1e-6);

  const VertexId n = engine.NumVertices();
  const bool cache_enabled = options_.cache_capacity > 0;
  // A full tree is materialized per distinct source when the cache wants it
  // or some duplicate asked for the whole tree; pure target queries read
  // straight from the workspace.
  std::vector<std::shared_ptr<const std::vector<Weight>>> trees(unique);
  for (size_t lane = 0; lane < unique; ++lane) {
    const VertexId source = lane_sources[lane];
    bool want_tree = cache_enabled;
    if (!want_tree) {
      for (const Job* job : jobs) {
        if (job->request.source == source && job->request.targets.empty()) {
          want_tree = true;
          break;
        }
      }
    }
    if (!want_tree) continue;
    auto tree = std::make_shared<std::vector<Weight>>();
    tree->reserve(n);
    for (VertexId v = 0; v < n; ++v) {
      tree->push_back(engine.Distance(ws, v, static_cast<uint32_t>(lane)));
    }
    if (cache_enabled) {
      const size_t evicted = cache_.Insert(epoch, source, tree);
      for (size_t e = 0; e < evicted; ++e) cache_evictions_.Inc();
      cached_trees_.Set(static_cast<int64_t>(cache_.Size()));
    }
    trees[lane] = std::move(tree);
  }

  for (Job* job : jobs) {
    const uint32_t lane = lane_of[job->request.source];
    if (trees[lane]) {
      Response response =
          FromTree(*trees[lane], job->request, epoch, /*from_cache=*/false);
      Fulfill(*job, std::move(response));
      continue;
    }
    Response response;
    response.epoch = epoch;
    response.distances.reserve(job->request.targets.size());
    for (const VertexId t : job->request.targets) {
      response.distances.push_back(engine.Distance(ws, t, lane));
    }
    Fulfill(*job, std::move(response));
  }
}

void OracleService::Fulfill(Job& job, Response response) {
  PHAST_SPAN_ARG("server.fulfill", job.request.trace_id);
  response.latency_ms = job.admitted.ElapsedMs();
  latency_ms_.Observe(response.latency_ms);
  completed_.Inc();
  job.promise.set_value(std::move(response));
  if (job.on_done) job.on_done();
}

void OracleService::Shed(Job& job, ResponseStatus status, Counter& reason) {
  reason.Inc();
  shed_total_.Inc();
  Response response;
  response.status = status;
  response.latency_ms = job.admitted.ElapsedMs();
  job.promise.set_value(std::move(response));
  if (job.on_done) job.on_done();
}

}  // namespace phast::server

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "ch/ch_data.h"
#include "graph/csr.h"
#include "phast/phast.h"
#include "server/metrics.h"
#include "server/snapshot.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace phast::server {

/// Hot metric swap for the serving subsystem (DESIGN.md §10).
///
/// A SnapshotManager owns the *current* serving snapshot — an immutable
/// bundle of engine + base graph + customizable hierarchy, stamped with a
/// monotonically increasing epoch — and builds snapshot N+1 in the
/// background from accumulated weight updates while N keeps serving.
/// Publication is one shared_ptr store: a worker that acquired snapshot N
/// for a batch keeps computing against N's arrays (the shared_ptr keeps
/// them alive) while later batches pick up N+1, so a swap never drops or
/// corrupts an in-flight request.

/// One absolute arc re-weighting: "arc (tail, head) now costs weight".
struct WeightUpdate {
  VertexId tail = 0;
  VertexId head = 0;
  Weight weight = 0;
};

/// Differential weight overlay: point updates accumulated between full
/// customizations and merged into the base graph at the next swap. Keyed by
/// arc, so repeated updates to one arc collapse to the latest; stamped with
/// a sequence number so a swap can discard exactly the updates it consumed
/// while updates racing in behind it survive for the next swap.
class WeightOverlay {
 public:
  /// Records updates; returns the sequence number of the last one.
  uint64_t Add(std::span<const WeightUpdate> updates);

  /// Latest pending weight per arc, with the highest sequence number among
  /// them (0 when empty).
  struct Pending {
    std::vector<WeightUpdate> updates;
    uint64_t last_seq = 0;
  };
  [[nodiscard]] Pending Snapshot() const;

  /// Drops every entry whose latest update has seq <= last_seq (the merge
  /// rule: an arc re-updated after the swap captured it stays pending).
  void DiscardUpTo(uint64_t last_seq);

  [[nodiscard]] size_t Size() const;

 private:
  struct Entry {
    Weight weight = 0;
    uint64_t seq = 0;
  };
  mutable AnnotatedMutex mu_;
  uint64_t next_seq_ GUARDED_BY(mu_) = 1;
  /// Keyed by (tail << 32 | head); ordered so Snapshot() is deterministic.
  std::map<uint64_t, Entry> by_arc_ GUARDED_BY(mu_);
};

/// The immutable unit of publication. Everything a batch needs is behind
/// one shared_ptr acquisition; `graph` and `ch` carry the state the *next*
/// customization starts from.
struct ServingSnapshot {
  uint64_t epoch = 0;
  Phast engine;
  Graph graph;  // base graph under this epoch's metric (original-id space)
  CHData ch;    // customizable hierarchy under this epoch's metric

  ServingSnapshot(uint64_t e, Phast eng, Graph g, CHData c)
      : epoch(e), engine(std::move(eng)), graph(std::move(g)),
        ch(std::move(c)) {}
};

class SnapshotManager {
 public:
  /// Adopts a decoded snapshot artifact. It must carry both the graph and
  /// the (witness-free) hierarchy sections — phast_prepare --customizable
  /// writes them — because customization needs the base metric and the
  /// fixed topology; throws InputError otherwise.
  SnapshotManager(Snapshot snapshot, MetricsRegistry& metrics);

  /// Adopts a pre-built epoch-1 engine with its graph and hierarchy — the
  /// fabric's zero-copy path, where the engine is a view over an mmap-ed
  /// snapshot. The view's backing memory must outlive the manager (epoch 1
  /// serves straight from the mapping; every customized epoch ≥ 2 owns its
  /// arrays via ExportReweightedLayout).
  SnapshotManager(Phast engine, Graph graph, CHData ch,
                  MetricsRegistry& metrics);

  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  /// The current serving snapshot. Callers hold the returned shared_ptr for
  /// the duration of one batch; a concurrent swap retires the old snapshot
  /// only after the last holder releases it. Also refreshes the snapshot
  /// age gauge (milliseconds since the current epoch was published).
  [[nodiscard]] std::shared_ptr<const ServingSnapshot> Current() const;

  [[nodiscard]] uint64_t Epoch() const;

  /// Queues point updates for the next customization; returns the overlay
  /// sequence number of the last one (the handle CustomizeAndSwap reports
  /// having merged).
  uint64_t UpdateWeights(std::span<const WeightUpdate> updates);

  /// Builds snapshot N+1 — base graph with the pending overlay merged,
  /// hierarchy re-customized, engine re-weighted via ExportReweightedLayout
  /// — and atomically publishes it. Returns the new epoch. Serialized
  /// against concurrent swaps by an internal mutex; updates that arrive
  /// during the build are *not* lost, they stay pending for the next swap.
  /// Swapping with an empty overlay is legal and publishes an identical
  /// metric under a new epoch (useful for drills and tests).
  uint64_t CustomizeAndSwap(uint32_t customize_threads = 0);

  [[nodiscard]] size_t PendingUpdates() const { return overlay_.Size(); }

 private:
  WeightOverlay overlay_;

  mutable AnnotatedMutex publish_mu_;
  std::shared_ptr<const ServingSnapshot> current_ GUARDED_BY(publish_mu_);
  /// Since the current epoch was published (drives the age gauge).
  Timer age_ GUARDED_BY(publish_mu_);
  /// Serializes CustomizeAndSwap runs (held across the whole build, which
  /// is why it is distinct from the cheap publish lock).
  AnnotatedMutex build_mu_;

  Counter& swaps_;
  Counter& updates_applied_;
  Gauge& epoch_gauge_;
  Gauge& pending_updates_;
  Gauge& age_ms_;
  Histogram& customize_ms_;
};

}  // namespace phast::server

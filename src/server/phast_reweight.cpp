// phast_reweight — streams metric updates at a running phast_serve and
// verifies the customize/hot-swap path end to end.
//
// Loads the snapshot the server is serving (for its graph section), then
// runs seeded rounds of: sample arcs and draw new weights, queue them with
// kUpdateWeights, trigger a kSwap, and assert that (a) the serving epoch
// strictly increases, (b) full-tree responses after the swap carry the new
// epoch, and (c) their distances agree with Dijkstra on the locally tracked
// reweighted graph — i.e. the server really serves the new metric, not a
// stale cache or a half-swapped engine.
//
//   phast_reweight --socket=/tmp/phast.sock --snapshot=country.snap
//                  --rounds=3 --updates-per-round=64 --verify-sources=4
//
// Assumes the server still serves the snapshot's base metric: this driver
// is the only source of weight updates, and only one instance runs per
// server lifetime (a second instance would track from the pristine graph
// while the server already carries the first one's updates).
//
// Exit code 0 = every swap verified, 1 = a check failed, 2 = usage error.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "dijkstra/dijkstra.h"
#include "graph/csr.h"
#include "pq/dary_heap.h"
#include "server/protocol.h"
#include "server/snapshot.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace phast;
using namespace phast::server;

/// Applies point re-weights to a copy of the graph's CSR arrays — the
/// client-side mirror of the server overlay merge, so both sides track the
/// same metric.
Graph ApplyUpdates(const Graph& base, const std::vector<WeightUpdate>& updates) {
  std::vector<ArcId> first(base.FirstArray().begin(), base.FirstArray().end());
  std::vector<Arc> arcs(base.ArcArray().begin(), base.ArcArray().end());
  for (const WeightUpdate& u : updates) {
    bool found = false;
    for (ArcId i = first[u.tail]; i < first[u.tail + 1]; ++i) {
      if (arcs[i].other == u.head) {
        arcs[i].weight = u.weight;
        found = true;
        break;
      }
    }
    Require(found, "sampled an arc the snapshot graph does not have");
  }
  return Graph::FromCsrArrays(std::move(first), std::move(arcs));
}

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  if (cli.Has("help") || !cli.Has("socket") || !cli.Has("snapshot")) {
    std::fprintf(
        stderr,
        "usage: %s --socket=SOCKPATH --snapshot=PATH\n"
        "          [--rounds=R] [--updates-per-round=U]\n"
        "          [--verify-sources=V] [--seed=S]\n",
        cli.ProgramName().c_str());
    return cli.Has("help") ? 0 : 2;
  }

  const uint64_t rounds = static_cast<uint64_t>(cli.GetInt("rounds", 3));
  const uint64_t updates_per_round =
      static_cast<uint64_t>(cli.GetInt("updates-per-round", 64));
  const uint64_t verify_sources =
      static_cast<uint64_t>(cli.GetInt("verify-sources", 4));

  const Snapshot snapshot = ReadSnapshotFile(cli.GetString("snapshot", ""));
  Require(snapshot.has_graph,
          "snapshot carries no graph section (produced with --no-graph?)");
  const uint32_t n = snapshot.graph.NumVertices();
  const size_t num_arcs = snapshot.graph.NumArcs();
  Require(num_arcs > 0, "snapshot graph has no arcs to reweight");

  // Tail of every arc index, for uniform arc sampling.
  std::vector<VertexId> arc_tail(num_arcs);
  for (VertexId v = 0; v < n; ++v) {
    for (ArcId i = snapshot.graph.FirstArray()[v];
         i < snapshot.graph.FirstArray()[v + 1]; ++i) {
      arc_tail[i] = v;
    }
  }

  Client client(ConnectUnix(cli.GetString("socket", "")));
  Rng rng(static_cast<uint64_t>(cli.GetInt("seed", 1)));

  Graph current = snapshot.graph;
  uint64_t epoch = client.FetchEpoch();
  Require(epoch >= 1, "server reports epoch 0: not a customizable snapshot "
                      "(phast_prepare --customizable)");

  uint64_t verified = 0;
  uint64_t mismatches = 0;
  const Timer wall;
  for (uint64_t round = 0; round < rounds; ++round) {
    std::vector<WeightUpdate> updates(updates_per_round);
    for (WeightUpdate& u : updates) {
      const size_t arc = static_cast<size_t>(
          rng.NextInRange(0, static_cast<uint64_t>(num_arcs - 1)));
      u.tail = arc_tail[arc];
      u.head = snapshot.graph.ArcArray()[arc].other;
      u.weight = static_cast<Weight>(rng.NextInRange(1, 100'000));
    }
    current = ApplyUpdates(current, updates);
    (void)client.UpdateWeights(updates);

    const Timer swap;
    const uint64_t new_epoch = client.TriggerSwap();
    if (new_epoch <= epoch) {
      std::fprintf(stderr,
                   "phast_reweight: epoch did not advance (%llu -> %llu)\n",
                   static_cast<unsigned long long>(epoch),
                   static_cast<unsigned long long>(new_epoch));
      return 1;
    }
    epoch = new_epoch;

    for (uint64_t s = 0; s < verify_sources; ++s) {
      Request request;
      request.source =
          static_cast<VertexId>(rng.NextInRange(0, uint64_t{n} - 1));
      const Response response = client.Call(request);
      ++verified;
      bool ok = response.status == ResponseStatus::kOk &&
                response.epoch == epoch && response.distances.size() == n;
      if (ok) {
        const SsspResult ref = Dijkstra<BinaryHeap>(current, request.source);
        ok = std::equal(response.distances.begin(), response.distances.end(),
                        ref.dist.begin());
      }
      if (!ok) {
        ++mismatches;
        std::fprintf(stderr,
                     "phast_reweight: round %llu source %u disagrees "
                     "(status=%s epoch=%llu want %llu)\n",
                     static_cast<unsigned long long>(round), request.source,
                     ToString(response.status),
                     static_cast<unsigned long long>(response.epoch),
                     static_cast<unsigned long long>(epoch));
      }
    }
    std::fprintf(stderr,
                 "phast_reweight: round %llu: %llu updates, swap -> epoch "
                 "%llu in %.1f ms\n",
                 static_cast<unsigned long long>(round),
                 static_cast<unsigned long long>(updates_per_round),
                 static_cast<unsigned long long>(epoch), swap.ElapsedMs());
  }

  std::printf(
      "{\"rounds\": %llu, \"updates_per_round\": %llu, \"final_epoch\": %llu,\n"
      " \"verified\": %llu, \"mismatches\": %llu, \"elapsed_sec\": %.3f}\n",
      static_cast<unsigned long long>(rounds),
      static_cast<unsigned long long>(updates_per_round),
      static_cast<unsigned long long>(epoch),
      static_cast<unsigned long long>(verified),
      static_cast<unsigned long long>(mismatches), wall.ElapsedSec());
  return mismatches == 0 ? 0 : 1;
}

#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <vector>

#include "util/error.h"
#include "util/thread_annotations.h"

namespace phast::server {

/// Bounded multi-producer/multi-consumer queue — the admission point of the
/// serving scheduler. Backpressure is explicit: TryPush never blocks and
/// reports failure when the queue is full, so the caller sheds the request
/// instead of stacking unbounded work behind a slow sweep. (Push, the
/// blocking flavor, exists for in-order writers that must not drop.)
///
/// Closing the queue wakes every blocked producer and consumer; Pop/PopBatch
/// then drain the remaining items and finally report exhaustion, which is
/// the worker pool's shutdown signal. Drain() hands the not-yet-consumed
/// tail back to the closer so every queued item can still be answered
/// (shed), never silently dropped.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    Require(capacity >= 1, "queue capacity must be at least 1");
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues unless the queue is full or closed; never blocks. Takes an
  /// rvalue reference (not by value) so a rejected item is left intact and
  /// the caller can still answer it — e.g. resolve its promise as shed.
  [[nodiscard]] bool TryPush(T&& item) {
    {
      const MutexLock lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.NotifyOne();
    return true;
  }

  /// Blocks until there is space (or the queue closes). Returns false —
  /// leaving the item intact — only when closed.
  [[nodiscard]] bool Push(T&& item) {
    {
      const MutexLock lock(mu_);
      while (items_.size() >= capacity_ && !closed_) space_.Wait(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    ready_.NotifyOne();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and empty.
  [[nodiscard]] std::optional<T> Pop() {
    std::optional<T> item;
    {
      const MutexLock lock(mu_);
      while (items_.empty() && !closed_) ready_.Wait(mu_);
      if (items_.empty()) return std::nullopt;
      item.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    space_.NotifyOne();
    return item;
  }

  /// Blocks for at least one item (or close), then greedily drains up to
  /// `max_items` without further waiting — the scheduler's batch-formation
  /// primitive: whatever queued up behind the previous sweep becomes one
  /// coalesced batch. Returns an empty vector only when closed and empty.
  [[nodiscard]] std::vector<T> PopBatch(size_t max_items) {
    std::vector<T> batch;
    {
      const MutexLock lock(mu_);
      while (items_.empty() && !closed_) ready_.Wait(mu_);
      while (!items_.empty() && batch.size() < max_items) {
        batch.push_back(std::move(items_.front()));
        items_.pop_front();
      }
    }
    if (!batch.empty()) space_.NotifyAll();
    return batch;
  }

  /// Rejects future pushes and wakes all producers and consumers.
  void Close() {
    {
      const MutexLock lock(mu_);
      closed_ = true;
    }
    ready_.NotifyAll();
    space_.NotifyAll();
  }

  /// Removes and returns everything still queued (used after Close to shed
  /// the unprocessed tail).
  [[nodiscard]] std::vector<T> Drain() {
    std::vector<T> rest;
    {
      const MutexLock lock(mu_);
      while (!items_.empty()) {
        rest.push_back(std::move(items_.front()));
        items_.pop_front();
      }
    }
    space_.NotifyAll();
    return rest;
  }

  [[nodiscard]] size_t Size() const {
    const MutexLock lock(mu_);
    return items_.size();
  }

  [[nodiscard]] bool Closed() const {
    const MutexLock lock(mu_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable AnnotatedMutex mu_;
  CondVar ready_;  // signaled on push
  CondVar space_;  // signaled on pop
  std::deque<T> items_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace phast::server

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "server/service.h"

namespace phast::server {

/// Wire protocol of phast_serve (DESIGN.md §7).
///
/// Transport: a byte stream (Unix-domain socket or a stdin/stdout pipe)
/// carrying length-prefixed frames — u32 little-endian payload length, then
/// the payload. The first payload byte is the message type; all integers
/// are little-endian, doubles are IEEE-754 bit patterns.
///
/// Client -> server payloads:
///   kQuery:    u8 type, u64 request id, f64 deadline_ms (<0 = server
///              default, 0 = none), u32 source, u32 num_targets,
///              u32 targets[num_targets]. num_targets == 0 requests the
///              full distance tree.
///   kMetrics:  u8 type, u64 request id.
///   kShutdown: u8 type, u64 request id — asks the daemon to stop after
///              acknowledging.
///   kUpdateWeights: u8 type, u64 request id, u32 count, then count x
///              {u32 tail, u32 head, u32 weight} — queues point re-weights
///              into the server's differential overlay.
///   kSwap:     u8 type, u64 request id — customize the hierarchy to the
///              pending overlay and hot-swap the serving snapshot.
///   kEpoch:    u8 type, u64 request id — asks for the serving epoch.
///   kMatrix:   u8 type, u64 request id, u8 version (kProtocolVersion),
///              f64 deadline_ms, u32 num_sources, u32 num_targets,
///              u32 sources[num_sources], u32 targets[num_targets] — the
///              M x N one-to-many distance table. Both dimensions must be
///              in (0, kMaxMatrixDim] and their product at most
///              kMaxMatrixCells.
///   kNearestPoi: u8 type, u64 request id, u8 version, f64 deadline_ms,
///              u32 source, u32 category, u32 k — the k POIs of `category`
///              nearest to `source`.
///
/// Server -> client payloads:
///   kQuery:    u8 type, u64 request id, u8 status (ResponseStatus),
///              u8 from_cache, f64 latency_ms, u64 epoch, u32 num_distances,
///              u32 distances[num_distances].
///   kMetrics:  u8 type, u64 request id, u32 text_len, bytes (Prometheus
///              exposition).
///   kShutdown: u8 type, u64 request id (the acknowledgement).
///   kUpdateWeights: u8 type, u64 request id, u64 overlay seq of the last
///              queued update.
///   kSwap:     u8 type, u64 request id, u64 new epoch.
///   kEpoch:    u8 type, u64 request id, u64 current epoch.
///   kMatrix:   u8 type, u64 request id, u8 version, u8 status,
///              f64 latency_ms, u64 epoch, u32 rows, u32 cols,
///              u32 distances[rows * cols] (row-major; empty on shed).
///   kNearestPoi: u8 type, u64 request id, u8 version, u8 status,
///              f64 latency_ms, u64 epoch, u32 count, then count x
///              {u32 vertex, u32 dist} ordered by (dist, vertex id).
///
/// Versioning: the v2 workload frames (kMatrix, kNearestPoi) carry an
/// explicit version byte *after* the request id — every frame keeps the id
/// at byte offset 1, which the router's id-rewrite relies on — and both
/// sides reject a version they do not speak. The v1 frames are unchanged.
///
/// The metric-mutation messages require the server to run with a snapshot
/// manager (phast_serve on a --customizable snapshot); otherwise they are
/// answered as a protocol error (connection close), never silently dropped.
///
/// Responses to queries may be computed out of order by the batching
/// scheduler, but each connection writes them back in request order (the
/// request id makes reordering clients possible without relying on it).
enum class MessageType : uint8_t {
  kQuery = 1,
  kMetrics = 2,
  kShutdown = 3,
  kUpdateWeights = 4,
  kSwap = 5,
  kEpoch = 6,
  kMatrix = 7,
  kNearestPoi = 8,
};

inline constexpr uint32_t kMaxFrameBytes = 1u << 30;
/// Version stamped into (and required of) the v2 workload frames.
inline constexpr uint8_t kProtocolVersion = 2;
/// Caps a kMatrix request's source/target list lengths and the response
/// table's cell count (16 MiB of distances) — oversized requests are
/// rejected at decode, before any allocation.
inline constexpr uint32_t kMaxMatrixDim = 4096;
inline constexpr uint64_t kMaxMatrixCells = 1ull << 22;

// --- framing over a POSIX fd ----------------------------------------------

/// Reads one length-prefixed frame. Returns false on clean EOF before the
/// length prefix; throws InputError on truncation mid-frame or oversized
/// frames.
[[nodiscard]] bool ReadFrame(int fd, std::vector<uint8_t>& payload);

/// Writes one length-prefixed frame; throws InputError on short writes.
void WriteFrame(int fd, std::span<const uint8_t> payload);

// --- payload encoding ------------------------------------------------------

struct QueryFrame {
  uint64_t id = 0;
  Request request;
};

struct ResponseFrame {
  uint64_t id = 0;
  Response response;
};

[[nodiscard]] std::vector<uint8_t> EncodeQuery(uint64_t id,
                                               const Request& request);
[[nodiscard]] QueryFrame DecodeQuery(std::span<const uint8_t> payload);

[[nodiscard]] std::vector<uint8_t> EncodeResponse(uint64_t id,
                                                  const Response& response);
[[nodiscard]] ResponseFrame DecodeResponse(std::span<const uint8_t> payload);

// v2 workload frames. The decoders validate the version byte and the
// kMaxMatrixDim/kMaxMatrixCells limits and set Request/Response kind
// context implicitly (DecodeMatrixQuery yields RequestKind::kMatrix, ...).
[[nodiscard]] std::vector<uint8_t> EncodeMatrixQuery(uint64_t id,
                                                     const Request& request);
[[nodiscard]] QueryFrame DecodeMatrixQuery(std::span<const uint8_t> payload);
[[nodiscard]] std::vector<uint8_t> EncodeMatrixResponse(
    uint64_t id, const Response& response);
[[nodiscard]] ResponseFrame DecodeMatrixResponse(
    std::span<const uint8_t> payload);

[[nodiscard]] std::vector<uint8_t> EncodePoiQuery(uint64_t id,
                                                  const Request& request);
[[nodiscard]] QueryFrame DecodePoiQuery(std::span<const uint8_t> payload);
[[nodiscard]] std::vector<uint8_t> EncodePoiResponse(uint64_t id,
                                                     const Response& response);
[[nodiscard]] ResponseFrame DecodePoiResponse(std::span<const uint8_t> payload);

/// Encodes `response` as the response frame matching a request of wire
/// type `type` (kQuery/kMatrix/kNearestPoi) — the dispatch every response
/// writer (ServeConnection, the epoll front end) shares.
[[nodiscard]] std::vector<uint8_t> EncodeResponseFor(MessageType type,
                                                     uint64_t id,
                                                     const Response& response);

/// Decodes a response frame of any query kind (dispatches on PeekType).
[[nodiscard]] ResponseFrame DecodeAnyResponse(std::span<const uint8_t> payload);

[[nodiscard]] std::vector<uint8_t> EncodeControl(MessageType type,
                                                 uint64_t id);
[[nodiscard]] std::vector<uint8_t> EncodeMetricsText(uint64_t id,
                                                     const std::string& text);
[[nodiscard]] std::string DecodeMetricsText(std::span<const uint8_t> payload);

[[nodiscard]] std::vector<uint8_t> EncodeWeightUpdates(
    uint64_t id, std::span<const WeightUpdate> updates);
[[nodiscard]] std::vector<WeightUpdate> DecodeWeightUpdates(
    std::span<const uint8_t> payload);

/// The u64-valued replies (kUpdateWeights ack = overlay seq, kSwap ack =
/// new epoch, kEpoch = current epoch).
[[nodiscard]] std::vector<uint8_t> EncodeValueReply(MessageType type,
                                                    uint64_t id,
                                                    uint64_t value);
[[nodiscard]] uint64_t DecodeValueReply(MessageType type,
                                        std::span<const uint8_t> payload);

/// Type of a decoded payload (its first byte); throws on empty/unknown.
[[nodiscard]] MessageType PeekType(std::span<const uint8_t> payload);
[[nodiscard]] uint64_t PeekId(std::span<const uint8_t> payload);

// --- transport helpers ------------------------------------------------------

/// Binds and listens on a Unix-domain socket, replacing a stale file.
[[nodiscard]] int ListenUnix(const std::string& path);
[[nodiscard]] int ConnectUnix(const std::string& path);

// --- server connection loop -------------------------------------------------

/// Per-connection serving knobs (the phast_serve flags that act at the
/// protocol layer rather than in the scheduler).
struct ConnectionOptions {
  /// Completed queries at or above this latency are logged to stderr with
  /// their trace id, source, status, and latency. 0 disables the log.
  double slow_ms = 0.0;
  /// Snapshot manager backing the metric-mutation messages
  /// (kUpdateWeights/kSwap/kEpoch). Null when the server pins one engine;
  /// those messages then fail the connection.
  SnapshotManager* manager = nullptr;
  /// Customization threads for connection-triggered swaps (0 = all).
  uint32_t customize_threads = 0;
};

/// Serves one connection: reads frames from `in_fd`, submits queries to the
/// service, and writes responses (in request order) to `out_fd` until EOF
/// or a shutdown frame. Returns true if a shutdown frame was received.
/// Internally runs a writer thread so slow sweeps overlap with frame
/// reading; safe to call from several threads with distinct fds. Each
/// query's wire id doubles as its request-scoped trace id (Request
/// trace_id), tying protocol frames to server.batch/server.fulfill spans.
bool ServeConnection(int in_fd, int out_fd, OracleService& service,
                     MetricsRegistry& metrics,
                     const ConnectionOptions& conn_options = {});

// --- client ----------------------------------------------------------------

/// Blocking protocol client over a connected fd (owns and closes it).
class Client {
 public:
  explicit Client(int fd) : fd_(fd) {}
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends a query, encoding the frame matching request.kind (kQuery,
  /// kMatrix, or kNearestPoi); returns its request id.
  uint64_t SendQuery(const Request& request);
  /// Receives the next response frame of any query kind.
  [[nodiscard]] ResponseFrame ReceiveResponse();
  /// Round-trip convenience: one query, one response (any kind).
  [[nodiscard]] Response Call(const Request& request);

  [[nodiscard]] std::string FetchMetrics();

  /// Queues weight updates into the server's overlay; returns the overlay
  /// sequence number of the last one.
  uint64_t UpdateWeights(std::span<const WeightUpdate> updates);
  /// Customizes to the pending overlay and swaps; returns the new epoch.
  uint64_t TriggerSwap();
  /// Current serving epoch.
  [[nodiscard]] uint64_t FetchEpoch();

  /// Sends shutdown and waits for the acknowledgement.
  void Shutdown();

 private:
  int fd_;
  uint64_t next_id_ = 1;
  std::vector<uint8_t> scratch_;
};

}  // namespace phast::server

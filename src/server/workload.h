#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "server/service.h"
#include "util/error.h"
#include "util/rng.h"

namespace phast::server {

/// Seeded workload generation for phast_loadgen and the server benchmark.
/// Everything is driven by util/rng.h so a run is reproducible from its
/// --seed alone.

/// Zipf-distributed sampler over [0, n): rank r is drawn with probability
/// proportional to 1/(r+1)^s. s = 0 degenerates to uniform. Skew is what
/// makes the LRU tree cache earn its keep — a handful of hot sources
/// dominate real distance-oracle traffic.
class ZipfSampler {
 public:
  ZipfSampler(uint32_t n, double skew) {
    Require(n > 0, "Zipf sampler needs a non-empty domain");
    cumulative_.reserve(n);
    double total = 0.0;
    for (uint32_t r = 0; r < n; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r) + 1.0, skew);
      cumulative_.push_back(total);
    }
  }

  [[nodiscard]] uint32_t Sample(Rng& rng) const {
    const double u = rng.NextDouble() * cumulative_.back();
    const auto it =
        std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
    const size_t rank = static_cast<size_t>(it - cumulative_.begin());
    return static_cast<uint32_t>(std::min(rank, cumulative_.size() - 1));
  }

 private:
  std::vector<double> cumulative_;  // unnormalized CDF over ranks
};

struct WorkloadOptions {
  uint64_t seed = 1;
  /// Zipf skew of the source distribution; 0 = uniform.
  double zipf_skew = 0.99;
  /// Fraction of requests that ask for the full tree (the rest draw
  /// uniform random target lists).
  double full_tree_fraction = 0.1;
  /// Targets per target-list request, in [1, max].
  uint32_t max_targets = 16;
  /// kMatrix requests: sources and targets per table, each in [1, max].
  uint32_t matrix_max_dim = 8;
  /// kNearestPoi requests: k in [1, max].
  uint32_t poi_max_k = 8;
};

/// Draws one request. `rank_to_vertex` maps Zipf rank -> vertex id (shuffled
/// once so the hot set is not just the lowest ids); sized NumVertices().
inline Request DrawRequest(const WorkloadOptions& options,
                           const ZipfSampler& zipf,
                           const std::vector<VertexId>& rank_to_vertex,
                           Rng& rng) {
  Request request;
  request.source = rank_to_vertex[zipf.Sample(rng)];
  if (!rng.NextBool(options.full_tree_fraction)) {
    const uint32_t count = static_cast<uint32_t>(
        rng.NextInRange(1, static_cast<int64_t>(options.max_targets)));
    request.targets.reserve(count);
    const uint32_t n = static_cast<uint32_t>(rank_to_vertex.size());
    for (uint32_t i = 0; i < count; ++i) {
      request.targets.push_back(
          static_cast<VertexId>(rng.NextBounded(n)));
    }
  }
  return request;
}

/// Draws one kMatrix request: Zipf-hot row sources (so replicated runs
/// exercise the router's row partitioning with realistic repeats) and
/// uniform columns. Dimensions are uniform in [1, matrix_max_dim];
/// duplicate sources and targets are allowed on purpose.
inline Request DrawMatrixRequest(const WorkloadOptions& options,
                                 const ZipfSampler& zipf,
                                 const std::vector<VertexId>& rank_to_vertex,
                                 Rng& rng) {
  Request request;
  request.kind = RequestKind::kMatrix;
  const uint32_t n = static_cast<uint32_t>(rank_to_vertex.size());
  const int64_t max_dim = static_cast<int64_t>(options.matrix_max_dim);
  const uint32_t rows = static_cast<uint32_t>(rng.NextInRange(1, max_dim));
  const uint32_t cols = static_cast<uint32_t>(rng.NextInRange(1, max_dim));
  request.sources.reserve(rows);
  for (uint32_t i = 0; i < rows; ++i) {
    request.sources.push_back(rank_to_vertex[zipf.Sample(rng)]);
  }
  request.targets.reserve(cols);
  for (uint32_t i = 0; i < cols; ++i) {
    request.targets.push_back(static_cast<VertexId>(rng.NextBounded(n)));
  }
  return request;
}

/// Draws one kNearestPoi request over `num_categories` POI categories.
inline Request DrawPoiRequest(const WorkloadOptions& options,
                              const ZipfSampler& zipf,
                              const std::vector<VertexId>& rank_to_vertex,
                              uint32_t num_categories, Rng& rng) {
  Require(num_categories > 0, "POI workload needs at least one category");
  Request request;
  request.kind = RequestKind::kNearestPoi;
  request.source = rank_to_vertex[zipf.Sample(rng)];
  request.poi_category = rng.NextBounded(num_categories);
  request.poi_k = static_cast<uint32_t>(
      rng.NextInRange(1, static_cast<int64_t>(options.poi_max_k)));
  return request;
}

/// The shuffled rank -> vertex mapping shared by all client threads.
inline std::vector<VertexId> MakeRankMapping(uint32_t n, uint64_t seed) {
  std::vector<VertexId> mapping(n);
  for (uint32_t v = 0; v < n; ++v) mapping[v] = v;
  Rng rng(seed ^ 0xC0FFEEULL);
  Shuffle(mapping.begin(), mapping.end(), rng);
  return mapping;
}

}  // namespace phast::server

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/thread_annotations.h"

namespace phast::server {

/// Observability for the serving subsystem (DESIGN.md §7): counters, gauges,
/// and fixed-bucket latency histograms, registered by name in a
/// MetricsRegistry and exposed in the Prometheus text format. Hot-path
/// updates are single relaxed atomics — the scheduler increments these per
/// request and per batch, so they must never contend.

/// Monotonically increasing event count.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] uint64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous level (queue depth, cached trees).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] int64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram: cumulative bucket counts in the exposition (the
/// Prometheus `le` convention), quantiles estimated by linear interpolation
/// within the bucket that crosses the requested rank.
class Histogram {
 public:
  /// `bounds` are the inclusive upper bounds of the finite buckets, in
  /// strictly increasing order; an implicit +Inf bucket is appended.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  [[nodiscard]] uint64_t Count() const;
  [[nodiscard]] double Sum() const;
  /// q in [0, 1]; returns 0 when empty. Values in the +Inf bucket report
  /// the largest finite bound (the histogram cannot resolve beyond it).
  [[nodiscard]] double Quantile(double q) const;

  [[nodiscard]] const std::vector<double>& Bounds() const { return bounds_; }
  [[nodiscard]] uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;                    // finite upper bounds
  std::vector<std::atomic<uint64_t>> buckets_;    // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  /// Sum as fixed-point microunits so it can be a lock-free integer atomic.
  std::atomic<int64_t> sum_micros_{0};
};

/// Default latency buckets (milliseconds): 50us .. 10s.
[[nodiscard]] std::vector<double> DefaultLatencyBucketsMs();

/// Named metric registry. Get* registers on first use and returns the same
/// instance for the same name afterwards (pointers are stable for the
/// registry's lifetime); a name may only ever be one metric kind.
class MetricsRegistry {
 public:
  Counter& GetCounter(const std::string& name, const std::string& help);
  Gauge& GetGauge(const std::string& name, const std::string& help);
  Histogram& GetHistogram(const std::string& name, const std::string& help,
                          std::vector<double> bounds);

  /// Prometheus text exposition format 0.0.4: `# HELP` / `# TYPE` preamble
  /// per metric, `_bucket{le=...}`/`_sum`/`_count` series for histograms.
  [[nodiscard]] std::string RenderPrometheus() const;

 private:
  struct Entry {
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& GetEntry(const std::string& name, const std::string& help)
      REQUIRES(mu_);

  mutable AnnotatedMutex mu_;
  std::map<std::string, Entry> metrics_ GUARDED_BY(mu_);
};

}  // namespace phast::server

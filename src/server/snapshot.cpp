#include "server/snapshot.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "ch/ch_io.h"
#include "util/error.h"

namespace phast::server {
namespace {

constexpr char kMagic[8] = {'P', 'H', 'S', 'N', 'A', 'P', '0', '1'};
constexpr size_t kHeaderSize = 48;
constexpr size_t kTocEntrySize = 32;
constexpr size_t kChecksumFieldOffset = 24;
constexpr uint32_t kMaxSections = 64;

// Section ids. META must come first logically (the reader needs the counts
// and option bytes before interpreting the arrays), but the format does not
// constrain TOC order.
enum SectionId : uint32_t {
  kSecMeta = 1,
  kSecPerm = 2,
  kSecInvPerm = 3,
  kSecOrder = 4,
  kSecDownFirst = 5,
  kSecDownArcs = 6,
  kSecUpFirst = 7,
  kSecUpArcs = 8,
  kSecLevelBegin = 9,
  kSecGraphFirst = 10,
  kSecGraphArcs = 11,
  /// Embedded ch_io stream ("PHASTCH1" bytes). Optional; readers that do
  /// not know it skip unknown sections, so adding it kept the version at 1.
  kSecCh = 12,
};

const char* SectionName(uint32_t id) {
  switch (id) {
    case kSecMeta: return "META";
    case kSecPerm: return "PERM";
    case kSecInvPerm: return "INV_PERM";
    case kSecOrder: return "ORDER";
    case kSecDownFirst: return "DOWN_FIRST";
    case kSecDownArcs: return "DOWN_ARCS";
    case kSecUpFirst: return "UP_FIRST";
    case kSecUpArcs: return "UP_ARCS";
    case kSecLevelBegin: return "LEVEL_BEGIN";
    case kSecGraphFirst: return "GRAPH_FIRST";
    case kSecGraphArcs: return "GRAPH_ARCS";
    case kSecCh: return "CH";
    default: return "UNKNOWN";
  }
}

/// Fixed-size metadata section: everything that is not a bulk array.
struct MetaSection {
  uint32_t num_vertices = 0;
  uint32_t num_levels = 0;
  uint8_t sweep_order = 0;
  uint8_t simd_mode = 0;
  uint8_t implicit_init = 0;
  uint8_t has_graph = 0;
  /// Was `reserved` (always written 0) until the CH section was added, so
  /// pre-CH snapshots decode as has_ch == 0.
  uint32_t has_ch = 0;
  uint64_t num_down_arcs = 0;
  uint64_t num_up_arcs = 0;
};
static_assert(sizeof(MetaSection) == 32 &&
                  std::is_trivially_copyable_v<MetaSection>,
              "META is a fixed 32-byte record");

struct TocEntry {
  uint32_t id = 0;
  uint32_t reserved = 0;
  uint64_t offset = 0;
  uint64_t size = 0;
  uint64_t checksum = 0;
};
static_assert(sizeof(TocEntry) == kTocEntrySize &&
                  std::is_trivially_copyable_v<TocEntry>,
              "TOC entries are fixed 32-byte records");

// --- writing ----------------------------------------------------------------

class SnapshotBuilder {
 public:
  template <typename T>
  void AddVectorSection(uint32_t id, const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    AddSection(id, values.data(), values.size() * sizeof(T));
  }

  void AddSection(uint32_t id, const void* data, size_t size) {
    TocEntry entry;
    entry.id = id;
    entry.size = size;
    entry.checksum = Fnv1a64(data, size);
    toc_.push_back(entry);
    payloads_.emplace_back(static_cast<const char*>(data),
                           static_cast<const char*>(data) + size);
  }

  void WriteTo(std::ostream& out) {
    // Lay out: header, TOC, payloads at 8-byte-aligned offsets.
    size_t offset = kHeaderSize + toc_.size() * kTocEntrySize;
    for (size_t i = 0; i < toc_.size(); ++i) {
      offset = (offset + 7) & ~size_t{7};
      toc_[i].offset = offset;
      offset += toc_[i].size;
    }
    const size_t file_size = offset;

    std::string buffer(file_size, '\0');
    std::memcpy(buffer.data(), kMagic, sizeof(kMagic));
    const uint32_t version = kSnapshotVersion;
    const uint32_t section_count = static_cast<uint32_t>(toc_.size());
    const uint64_t file_size64 = file_size;
    std::memcpy(buffer.data() + 8, &version, sizeof(version));
    std::memcpy(buffer.data() + 12, &section_count, sizeof(section_count));
    std::memcpy(buffer.data() + 16, &file_size64, sizeof(file_size64));
    std::memcpy(buffer.data() + kHeaderSize, toc_.data(),
                toc_.size() * kTocEntrySize);
    for (size_t i = 0; i < toc_.size(); ++i) {
      if (payloads_[i].empty()) continue;  // .data() may be null when empty
      std::memcpy(buffer.data() + toc_[i].offset, payloads_[i].data(),
                  payloads_[i].size());
    }
    // Whole-file checksum with its own field zeroed (it is zero right now).
    const uint64_t checksum = Fnv1a64(buffer.data(), buffer.size());
    std::memcpy(buffer.data() + kChecksumFieldOffset, &checksum,
                sizeof(checksum));

    out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  }

 private:
  std::vector<TocEntry> toc_;
  std::vector<std::string> payloads_;
};

// --- reading ----------------------------------------------------------------

/// Parsed, integrity-checked file image; sections become typed vectors.
class SnapshotReader {
 public:
  explicit SnapshotReader(std::string bytes) : bytes_(std::move(bytes)) {
    Require(bytes_.size() >= kHeaderSize,
            "snapshot truncated: " + std::to_string(bytes_.size()) +
                " bytes is smaller than the " + std::to_string(kHeaderSize) +
                "-byte header");
    Require(std::memcmp(bytes_.data(), kMagic, sizeof(kMagic)) == 0,
            "not a PHAST snapshot (bad magic)");
    uint32_t version = 0;
    std::memcpy(&version, bytes_.data() + 8, sizeof(version));
    Require(version == kSnapshotVersion,
            "unsupported snapshot version " + std::to_string(version) +
                " (this build reads version " +
                std::to_string(kSnapshotVersion) + ")");
    uint32_t section_count = 0;
    std::memcpy(&section_count, bytes_.data() + 12, sizeof(section_count));
    Require(section_count <= kMaxSections,
            "snapshot declares an implausible section count");
    uint64_t file_size = 0;
    std::memcpy(&file_size, bytes_.data() + 16, sizeof(file_size));
    Require(file_size == bytes_.size(),
            "snapshot truncated: header declares " +
                std::to_string(file_size) + " bytes, read " +
                std::to_string(bytes_.size()));

    uint64_t declared_checksum = 0;
    std::memcpy(&declared_checksum, bytes_.data() + kChecksumFieldOffset,
                sizeof(declared_checksum));
    std::string zeroed = bytes_;
    std::memset(zeroed.data() + kChecksumFieldOffset, 0,
                sizeof(declared_checksum));
    Require(Fnv1a64(zeroed.data(), zeroed.size()) == declared_checksum,
            "snapshot checksum mismatch (file is corrupted)");

    const size_t toc_end =
        kHeaderSize + static_cast<size_t>(section_count) * kTocEntrySize;
    Require(toc_end <= bytes_.size(),
            "snapshot truncated inside the table of contents");
    toc_.resize(section_count);
    std::memcpy(toc_.data(), bytes_.data() + kHeaderSize,
                section_count * kTocEntrySize);
    for (const TocEntry& entry : toc_) {
      const std::string name = SectionName(entry.id);
      Require(entry.offset % 8 == 0,
              "snapshot section " + name + " is not 8-byte aligned");
      Require(entry.offset >= toc_end &&
                  entry.offset + entry.size <= bytes_.size() &&
                  entry.offset + entry.size >= entry.offset,
              "snapshot section " + name + " is out of bounds");
      Require(Fnv1a64(bytes_.data() + entry.offset, entry.size) ==
                  entry.checksum,
              "snapshot section " + name + " checksum mismatch");
    }
  }

  [[nodiscard]] const TocEntry& Section(uint32_t id) const {
    for (const TocEntry& entry : toc_) {
      if (entry.id == id) return entry;
    }
    Require(false, std::string("snapshot missing section ") +
                       SectionName(id));
    __builtin_unreachable();
  }

  [[nodiscard]] bool HasSection(uint32_t id) const {
    for (const TocEntry& entry : toc_) {
      if (entry.id == id) return true;
    }
    return false;
  }

  template <typename T>
  [[nodiscard]] std::vector<T> ReadVectorSection(uint32_t id) const {
    static_assert(std::is_trivially_copyable_v<T>);
    const TocEntry& entry = Section(id);
    Require(entry.size % sizeof(T) == 0,
            "snapshot section " + std::string(SectionName(id)) + " has " +
                std::to_string(entry.size) +
                " bytes, not a multiple of its element size " +
                std::to_string(sizeof(T)));
    std::vector<T> values(entry.size / sizeof(T));
    if (entry.size > 0) {
      std::memcpy(values.data(), bytes_.data() + entry.offset, entry.size);
    }
    return values;
  }

  [[nodiscard]] std::string ReadStringSection(uint32_t id) const {
    const TocEntry& entry = Section(id);
    return bytes_.substr(entry.offset, entry.size);
  }

  [[nodiscard]] MetaSection ReadMeta() const {
    const TocEntry& entry = Section(kSecMeta);
    Require(entry.size == sizeof(MetaSection),
            "snapshot META section has wrong size");
    MetaSection meta;
    std::memcpy(&meta, bytes_.data() + entry.offset, sizeof(meta));
    return meta;
  }

 private:
  std::string bytes_;
  std::vector<TocEntry> toc_;
};

void RequireElementCount(size_t actual, size_t expected, uint32_t id) {
  Require(actual == expected,
          "snapshot section " + std::string(SectionName(id)) + " holds " +
              std::to_string(actual) + " elements, the header implies " +
              std::to_string(expected));
}

}  // namespace

uint64_t Fnv1a64(const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = 14695981039346656037ULL;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

Snapshot MakeSnapshot(const Phast& engine, const Graph* graph,
                      const CHData* ch) {
  Snapshot snapshot;
  snapshot.layout = engine.ExportLayout();
  if (graph != nullptr) {
    Require(graph->NumVertices() == engine.NumVertices(),
            "snapshot graph does not match the engine's vertex count");
    snapshot.has_graph = true;
    snapshot.graph = *graph;
  }
  if (ch != nullptr) {
    Require(ch->num_vertices == engine.NumVertices(),
            "snapshot hierarchy does not match the engine's vertex count");
    snapshot.has_ch = true;
    snapshot.ch = *ch;
  }
  return snapshot;
}

void WriteSnapshot(const Snapshot& snapshot, std::ostream& out) {
  const PhastLayout& layout = snapshot.layout;
  MetaSection meta;
  meta.num_vertices = layout.num_vertices;
  meta.num_levels = layout.num_levels;
  meta.sweep_order = static_cast<uint8_t>(layout.options.order);
  meta.simd_mode = static_cast<uint8_t>(layout.options.simd);
  meta.implicit_init = layout.options.implicit_init ? 1 : 0;
  meta.has_graph = snapshot.has_graph ? 1 : 0;
  meta.has_ch = snapshot.has_ch ? 1 : 0;
  meta.num_down_arcs = layout.down_arcs.size();
  meta.num_up_arcs = layout.up_arcs.size();

  SnapshotBuilder builder;
  builder.AddSection(kSecMeta, &meta, sizeof(meta));
  builder.AddVectorSection(kSecPerm, layout.perm);
  builder.AddVectorSection(kSecInvPerm, layout.inv_perm);
  builder.AddVectorSection(kSecOrder, layout.order);
  builder.AddVectorSection(kSecDownFirst, layout.down_first);
  builder.AddVectorSection(kSecDownArcs, layout.down_arcs);
  builder.AddVectorSection(kSecUpFirst, layout.up_first);
  builder.AddVectorSection(kSecUpArcs, layout.up_arcs);
  builder.AddVectorSection(kSecLevelBegin, layout.level_begin);
  if (snapshot.has_graph) {
    builder.AddVectorSection(kSecGraphFirst, snapshot.graph.FirstArray());
    builder.AddVectorSection(kSecGraphArcs, snapshot.graph.ArcArray());
  }
  if (snapshot.has_ch) {
    // Embed the ch_io stream verbatim: one serialization format for
    // hierarchies everywhere, and the section inherits its own validation.
    std::ostringstream ch_bytes;
    WriteCH(snapshot.ch, ch_bytes);
    const std::string bytes = std::move(ch_bytes).str();
    builder.AddSection(kSecCh, bytes.data(), bytes.size());
  }
  builder.WriteTo(out);
}

void WriteSnapshotFile(const Snapshot& snapshot, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  Require(out.good(), "cannot open file for writing: " + path);
  WriteSnapshot(snapshot, out);
  Require(out.good(), "error while writing: " + path);
}

Snapshot ReadSnapshot(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const SnapshotReader reader(std::move(buffer).str());

  const MetaSection meta = reader.ReadMeta();
  Require(meta.sweep_order <=
              static_cast<uint8_t>(SweepOrder::kLevelReordered),
          "snapshot META declares an unknown sweep order");
  Require(meta.simd_mode <= static_cast<uint8_t>(SimdMode::kAuto),
          "snapshot META declares an unknown SIMD mode");

  Snapshot snapshot;
  PhastLayout& layout = snapshot.layout;
  layout.options.order = static_cast<SweepOrder>(meta.sweep_order);
  layout.options.simd = static_cast<SimdMode>(meta.simd_mode);
  layout.options.implicit_init = meta.implicit_init != 0;
  layout.num_vertices = meta.num_vertices;
  layout.num_levels = meta.num_levels;
  layout.perm = reader.ReadVectorSection<VertexId>(kSecPerm);
  layout.inv_perm = reader.ReadVectorSection<VertexId>(kSecInvPerm);
  layout.order = reader.ReadVectorSection<VertexId>(kSecOrder);
  layout.down_first = reader.ReadVectorSection<ArcId>(kSecDownFirst);
  layout.down_arcs = reader.ReadVectorSection<DownArc>(kSecDownArcs);
  layout.up_first = reader.ReadVectorSection<ArcId>(kSecUpFirst);
  layout.up_arcs = reader.ReadVectorSection<Arc>(kSecUpArcs);
  layout.level_begin = reader.ReadVectorSection<VertexId>(kSecLevelBegin);

  const size_t n = meta.num_vertices;
  RequireElementCount(layout.perm.size(), n, kSecPerm);
  RequireElementCount(layout.inv_perm.size(), n, kSecInvPerm);
  RequireElementCount(layout.down_first.size(), n + 1, kSecDownFirst);
  RequireElementCount(layout.down_arcs.size(), meta.num_down_arcs,
                      kSecDownArcs);
  RequireElementCount(layout.up_first.size(), n + 1, kSecUpFirst);
  RequireElementCount(layout.up_arcs.size(), meta.num_up_arcs, kSecUpArcs);

  if (meta.has_graph != 0) {
    snapshot.has_graph = true;
    auto first = reader.ReadVectorSection<ArcId>(kSecGraphFirst);
    auto arcs = reader.ReadVectorSection<Arc>(kSecGraphArcs);
    RequireElementCount(first.size(), n + 1, kSecGraphFirst);
    snapshot.graph = Graph::FromCsrArrays(std::move(first), std::move(arcs));
  }

  if (meta.has_ch != 0) {
    snapshot.has_ch = true;
    std::istringstream ch_bytes(reader.ReadStringSection(kSecCh));
    snapshot.ch = ReadCH(ch_bytes);
    Require(snapshot.ch.num_vertices == n,
            "snapshot CH section does not match the engine's vertex count");
  }

  // Deep structural validation (permutation/CSR/level invariants) happens
  // in the Phast(PhastLayout) constructor when the engine is built; run it
  // here so a malformed snapshot is rejected at load time even if the
  // caller only wanted the struct.
  (void)Phast(snapshot.layout);
  return snapshot;
}

Snapshot ReadSnapshotFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  Require(in.good(), "cannot open file for reading: " + path);
  return ReadSnapshot(in);
}

}  // namespace phast::server

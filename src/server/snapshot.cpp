#include "server/snapshot.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "ch/ch_io.h"
#include "util/error.h"

namespace phast::server {
namespace {

constexpr char kMagicV1[8] = {'P', 'H', 'S', 'N', 'A', 'P', '0', '1'};
constexpr char kMagicV2[8] = {'P', 'H', 'S', 'N', 'A', 'P', '0', '2'};
constexpr size_t kHeaderSize = 48;
constexpr size_t kTocEntrySize = sizeof(SnapshotSection);
constexpr size_t kChecksumFieldOffset = 24;
constexpr uint32_t kMaxSections = 64;

/// FNV over [0, size) with the 8 checksum bytes at kChecksumFieldOffset
/// hashed as zeros — without materializing a zeroed copy (FNV-1a is
/// byte-sequential, so the hole is just another chunk).
uint64_t HashWithZeroedChecksumField(const char* data, size_t size) {
  static constexpr char kZeros[8] = {};
  uint64_t hash = kFnv1a64Seed;
  hash = Fnv1a64Continue(hash, data, kChecksumFieldOffset);
  hash = Fnv1a64Continue(hash, kZeros, sizeof(kZeros));
  hash = Fnv1a64Continue(hash, data + kChecksumFieldOffset + 8,
                         size - kChecksumFieldOffset - 8);
  return hash;
}

size_t PayloadAlignment(uint32_t version) {
  return version == kSnapshotVersion2 ? kSnapshotPageAlign : size_t{8};
}

void RequireElementCount(size_t actual, size_t expected, uint32_t id) {
  Require(actual == expected,
          "snapshot section " + std::string(SnapshotSectionName(id)) +
              " holds " + std::to_string(actual) +
              " elements, the header implies " + std::to_string(expected));
}

PhastOptions DecodeEngineOptions(const SnapshotMeta& meta) {
  PhastOptions options;
  options.order = static_cast<SweepOrder>(meta.sweep_order);
  options.simd = static_cast<SimdMode>(meta.simd_mode);
  options.implicit_init = meta.implicit_init != 0;
  return options;
}

// --- writing ----------------------------------------------------------------

class SnapshotBuilder {
 public:
  explicit SnapshotBuilder(SnapshotFormat format) : format_(format) {}

  template <typename T>
  void AddVectorSection(uint32_t id, const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    AddSection(id, values.data(), values.size() * sizeof(T));
  }

  void AddSection(uint32_t id, const void* data, size_t size) {
    SnapshotSection entry;
    entry.id = id;
    entry.size = size;
    entry.checksum = Fnv1a64(data, size);
    toc_.push_back(entry);
    payloads_.emplace_back(static_cast<const char*>(data),
                           static_cast<const char*>(data) + size);
  }

  void WriteTo(std::ostream& out) {
    const bool v2 = format_ == SnapshotFormat::kPhsnap02;
    const size_t align = v2 ? kSnapshotPageAlign : size_t{8};
    // Lay out: header, TOC, payloads at aligned offsets.
    size_t offset = kHeaderSize + toc_.size() * kTocEntrySize;
    for (size_t i = 0; i < toc_.size(); ++i) {
      offset = (offset + align - 1) & ~(align - 1);
      toc_[i].offset = offset;
      offset += toc_[i].size;
    }
    const size_t file_size = offset;
    const size_t toc_end = kHeaderSize + toc_.size() * kTocEntrySize;

    std::string buffer(file_size, '\0');
    std::memcpy(buffer.data(), v2 ? kMagicV2 : kMagicV1, sizeof(kMagicV1));
    const uint32_t version = v2 ? kSnapshotVersion2 : kSnapshotVersion;
    const uint32_t section_count = static_cast<uint32_t>(toc_.size());
    const uint64_t file_size64 = file_size;
    std::memcpy(buffer.data() + 8, &version, sizeof(version));
    std::memcpy(buffer.data() + 12, &section_count, sizeof(section_count));
    std::memcpy(buffer.data() + 16, &file_size64, sizeof(file_size64));
    std::memcpy(buffer.data() + kHeaderSize, toc_.data(),
                toc_.size() * kTocEntrySize);
    for (size_t i = 0; i < toc_.size(); ++i) {
      if (payloads_[i].empty()) continue;  // .data() may be null when empty
      std::memcpy(buffer.data() + toc_[i].offset, payloads_[i].data(),
                  payloads_[i].size());
    }
    // The header checksum field is still zero here, so hashing the raw
    // bytes *is* hashing with the field zeroed. v1 covers the whole file;
    // v2 covers header+TOC only, so readers verify structure in O(TOC).
    const uint64_t checksum =
        v2 ? Fnv1a64(buffer.data(), toc_end)
           : Fnv1a64(buffer.data(), buffer.size());
    std::memcpy(buffer.data() + kChecksumFieldOffset, &checksum,
                sizeof(checksum));

    out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  }

 private:
  SnapshotFormat format_;
  std::vector<SnapshotSection> toc_;
  std::vector<std::string> payloads_;
};

}  // namespace

uint64_t Fnv1a64Continue(uint64_t hash, const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

uint64_t Fnv1a64(const void* data, size_t size) {
  return Fnv1a64Continue(kFnv1a64Seed, data, size);
}

const char* SnapshotSectionName(uint32_t id) {
  switch (id) {
    case kSecMeta: return "META";
    case kSecPerm: return "PERM";
    case kSecInvPerm: return "INV_PERM";
    case kSecOrder: return "ORDER";
    case kSecDownFirst: return "DOWN_FIRST";
    case kSecDownArcs: return "DOWN_ARCS";
    case kSecUpFirst: return "UP_FIRST";
    case kSecUpArcs: return "UP_ARCS";
    case kSecLevelBegin: return "LEVEL_BEGIN";
    case kSecGraphFirst: return "GRAPH_FIRST";
    case kSecGraphArcs: return "GRAPH_ARCS";
    case kSecCh: return "CH";
    default: return "UNKNOWN";
  }
}

// --- SnapshotImage ----------------------------------------------------------

SnapshotImage::SnapshotImage(const char* data, size_t size,
                             SnapshotVerify verify)
    : data_(data), size_(size) {
  Require(size_ >= kHeaderSize,
          "snapshot truncated: " + std::to_string(size_) +
              " bytes is smaller than the " + std::to_string(kHeaderSize) +
              "-byte header");
  if (std::memcmp(data_, kMagicV1, sizeof(kMagicV1)) == 0) {
    version_ = kSnapshotVersion;
  } else if (std::memcmp(data_, kMagicV2, sizeof(kMagicV2)) == 0) {
    version_ = kSnapshotVersion2;
  } else {
    Require(false, "not a PHAST snapshot (bad magic)");
  }
  uint32_t declared_version = 0;
  std::memcpy(&declared_version, data_ + 8, sizeof(declared_version));
  Require(declared_version == version_,
          "snapshot version field " + std::to_string(declared_version) +
              " contradicts its magic");
  uint32_t section_count = 0;
  std::memcpy(&section_count, data_ + 12, sizeof(section_count));
  Require(section_count <= kMaxSections,
          "snapshot declares an implausible section count");
  uint64_t file_size = 0;
  std::memcpy(&file_size, data_ + 16, sizeof(file_size));
  Require(file_size == size_,
          "snapshot truncated: header declares " + std::to_string(file_size) +
              " bytes, have " + std::to_string(size_));

  const size_t toc_end =
      kHeaderSize + static_cast<size_t>(section_count) * kTocEntrySize;
  Require(toc_end <= size_, "snapshot truncated inside the table of contents");

  uint64_t declared_checksum = 0;
  std::memcpy(&declared_checksum, data_ + kChecksumFieldOffset,
              sizeof(declared_checksum));
  if (version_ == kSnapshotVersion2) {
    // Header+TOC hash: O(TOC), so it runs under every verify mode — even
    // kOff authenticates the structure it is about to bounds-check.
    Require(HashWithZeroedChecksumField(data_, toc_end) == declared_checksum,
            "snapshot header/TOC checksum mismatch (file is corrupted)");
  } else if (verify == SnapshotVerify::kFull) {
    Require(HashWithZeroedChecksumField(data_, size_) == declared_checksum,
            "snapshot checksum mismatch (file is corrupted)");
  }

  const size_t align = PayloadAlignment(version_);
  toc_.resize(section_count);
  std::memcpy(toc_.data(), data_ + kHeaderSize,
              section_count * kTocEntrySize);
  for (const SnapshotSection& entry : toc_) {
    const std::string name = SnapshotSectionName(entry.id);
    Require(entry.offset % align == 0,
            "snapshot section " + name + " is not " + std::to_string(align) +
                "-byte aligned");
    Require(entry.offset >= toc_end && entry.offset + entry.size <= size_ &&
                entry.offset + entry.size >= entry.offset,
            "snapshot section " + name + " is out of bounds");
    if (verify != SnapshotVerify::kOff) {
      Require(SectionChecksumOk(entry),
              "snapshot section " + name + " checksum mismatch");
    }
  }
}

bool SnapshotImage::HasSection(uint32_t id) const {
  for (const SnapshotSection& entry : toc_) {
    if (entry.id == id) return true;
  }
  return false;
}

const SnapshotSection& SnapshotImage::Section(uint32_t id) const {
  for (const SnapshotSection& entry : toc_) {
    if (entry.id == id) return entry;
  }
  Require(false,
          std::string("snapshot missing section ") + SnapshotSectionName(id));
  __builtin_unreachable();
}

bool SnapshotImage::SectionChecksumOk(const SnapshotSection& section) const {
  return Fnv1a64(data_ + section.offset, section.size) == section.checksum;
}

void SnapshotImage::RequireTyped(const SnapshotSection& section,
                                 size_t elem_size, size_t elem_align) const {
  const std::string name = SnapshotSectionName(section.id);
  Require(section.size % elem_size == 0,
          "snapshot section " + name + " has " + std::to_string(section.size) +
              " bytes, not a multiple of its element size " +
              std::to_string(elem_size));
  Require(reinterpret_cast<uintptr_t>(data_ + section.offset) % elem_align ==
              0,
          "snapshot section " + name +
              " payload is misaligned for zero-copy access");
}

SnapshotMeta SnapshotImage::Meta() const {
  const SnapshotSection& entry = Section(kSecMeta);
  Require(entry.size == sizeof(SnapshotMeta),
          "snapshot META section has wrong size");
  SnapshotMeta meta;
  std::memcpy(&meta, data_ + entry.offset, sizeof(meta));
  Require(meta.sweep_order <=
              static_cast<uint8_t>(SweepOrder::kLevelReordered),
          "snapshot META declares an unknown sweep order");
  Require(meta.simd_mode <= static_cast<uint8_t>(SimdMode::kAuto),
          "snapshot META declares an unknown SIMD mode");
  return meta;
}

// --- decoding ---------------------------------------------------------------

PhastLayoutView MakeLayoutView(const SnapshotImage& image) {
  const SnapshotMeta meta = image.Meta();
  PhastLayoutView view;
  view.options = DecodeEngineOptions(meta);
  view.num_vertices = meta.num_vertices;
  view.num_levels = meta.num_levels;
  view.perm = image.TypedSection<VertexId>(kSecPerm);
  view.inv_perm = image.TypedSection<VertexId>(kSecInvPerm);
  view.order = image.TypedSection<VertexId>(kSecOrder);
  view.down_first = image.TypedSection<ArcId>(kSecDownFirst);
  view.down_arcs = image.TypedSection<DownArc>(kSecDownArcs);
  view.up_first = image.TypedSection<ArcId>(kSecUpFirst);
  view.up_arcs = image.TypedSection<Arc>(kSecUpArcs);
  view.level_begin = image.TypedSection<VertexId>(kSecLevelBegin);

  const size_t n = meta.num_vertices;
  RequireElementCount(view.perm.size(), n, kSecPerm);
  RequireElementCount(view.inv_perm.size(), n, kSecInvPerm);
  RequireElementCount(view.down_first.size(), n + 1, kSecDownFirst);
  RequireElementCount(view.down_arcs.size(), meta.num_down_arcs, kSecDownArcs);
  RequireElementCount(view.up_first.size(), n + 1, kSecUpFirst);
  RequireElementCount(view.up_arcs.size(), meta.num_up_arcs, kSecUpArcs);
  return view;
}

Graph DecodeSnapshotGraph(const SnapshotImage& image) {
  const SnapshotMeta meta = image.Meta();
  Require(meta.has_graph != 0, "snapshot carries no graph section");
  const auto first_bytes = image.TypedSection<ArcId>(kSecGraphFirst);
  const auto arc_bytes = image.TypedSection<Arc>(kSecGraphArcs);
  RequireElementCount(first_bytes.size(),
                      static_cast<size_t>(meta.num_vertices) + 1,
                      kSecGraphFirst);
  return Graph::FromCsrArrays(
      std::vector<ArcId>(first_bytes.begin(), first_bytes.end()),
      std::vector<Arc>(arc_bytes.begin(), arc_bytes.end()));
}

CHData DecodeSnapshotCH(const SnapshotImage& image) {
  const SnapshotMeta meta = image.Meta();
  Require(meta.has_ch != 0, "snapshot carries no CH section");
  const auto bytes = image.SectionBytes(image.Section(kSecCh));
  std::istringstream ch_bytes(std::string(bytes.data(), bytes.size()));
  CHData ch = ReadCH(ch_bytes);
  Require(ch.num_vertices == meta.num_vertices,
          "snapshot CH section does not match the engine's vertex count");
  return ch;
}

Snapshot DecodeSnapshot(const SnapshotImage& image) {
  const SnapshotMeta meta = image.Meta();
  const PhastLayoutView view = MakeLayoutView(image);

  Snapshot snapshot;
  PhastLayout& layout = snapshot.layout;
  layout.options = view.options;
  layout.num_vertices = view.num_vertices;
  layout.num_levels = view.num_levels;
  layout.perm.assign(view.perm.begin(), view.perm.end());
  layout.inv_perm.assign(view.inv_perm.begin(), view.inv_perm.end());
  layout.order.assign(view.order.begin(), view.order.end());
  layout.down_first.assign(view.down_first.begin(), view.down_first.end());
  layout.down_arcs.assign(view.down_arcs.begin(), view.down_arcs.end());
  layout.up_first.assign(view.up_first.begin(), view.up_first.end());
  layout.up_arcs.assign(view.up_arcs.begin(), view.up_arcs.end());
  layout.level_begin.assign(view.level_begin.begin(), view.level_begin.end());

  if (meta.has_graph != 0) {
    snapshot.has_graph = true;
    snapshot.graph = DecodeSnapshotGraph(image);
  }
  if (meta.has_ch != 0) {
    snapshot.has_ch = true;
    snapshot.ch = DecodeSnapshotCH(image);
  }

  // Deep structural validation (permutation/CSR/level invariants) happens
  // in the Phast(PhastLayout) constructor when the engine is built; run it
  // here so a malformed snapshot is rejected at load time even if the
  // caller only wanted the struct.
  (void)Phast(snapshot.layout);
  return snapshot;
}

// --- top-level read/write ---------------------------------------------------

Snapshot MakeSnapshot(const Phast& engine, const Graph* graph,
                      const CHData* ch) {
  Snapshot snapshot;
  snapshot.layout = engine.ExportLayout();
  if (graph != nullptr) {
    Require(graph->NumVertices() == engine.NumVertices(),
            "snapshot graph does not match the engine's vertex count");
    snapshot.has_graph = true;
    snapshot.graph = *graph;
  }
  if (ch != nullptr) {
    Require(ch->num_vertices == engine.NumVertices(),
            "snapshot hierarchy does not match the engine's vertex count");
    snapshot.has_ch = true;
    snapshot.ch = *ch;
  }
  return snapshot;
}

void WriteSnapshot(const Snapshot& snapshot, std::ostream& out,
                   SnapshotFormat format) {
  const PhastLayout& layout = snapshot.layout;
  SnapshotMeta meta;
  meta.num_vertices = layout.num_vertices;
  meta.num_levels = layout.num_levels;
  meta.sweep_order = static_cast<uint8_t>(layout.options.order);
  meta.simd_mode = static_cast<uint8_t>(layout.options.simd);
  meta.implicit_init = layout.options.implicit_init ? 1 : 0;
  meta.has_graph = snapshot.has_graph ? 1 : 0;
  meta.has_ch = snapshot.has_ch ? 1 : 0;
  meta.num_down_arcs = layout.down_arcs.size();
  meta.num_up_arcs = layout.up_arcs.size();

  SnapshotBuilder builder(format);
  builder.AddSection(kSecMeta, &meta, sizeof(meta));
  builder.AddVectorSection(kSecPerm, layout.perm);
  builder.AddVectorSection(kSecInvPerm, layout.inv_perm);
  builder.AddVectorSection(kSecOrder, layout.order);
  builder.AddVectorSection(kSecDownFirst, layout.down_first);
  builder.AddVectorSection(kSecDownArcs, layout.down_arcs);
  builder.AddVectorSection(kSecUpFirst, layout.up_first);
  builder.AddVectorSection(kSecUpArcs, layout.up_arcs);
  builder.AddVectorSection(kSecLevelBegin, layout.level_begin);
  if (snapshot.has_graph) {
    builder.AddVectorSection(kSecGraphFirst, snapshot.graph.FirstArray());
    builder.AddVectorSection(kSecGraphArcs, snapshot.graph.ArcArray());
  }
  if (snapshot.has_ch) {
    // Embed the ch_io stream verbatim: one serialization format for
    // hierarchies everywhere, and the section inherits its own validation.
    std::ostringstream ch_bytes;
    WriteCH(snapshot.ch, ch_bytes);
    const std::string bytes = std::move(ch_bytes).str();
    builder.AddSection(kSecCh, bytes.data(), bytes.size());
  }
  builder.WriteTo(out);
}

void WriteSnapshotFile(const Snapshot& snapshot, const std::string& path,
                       SnapshotFormat format) {
  std::ofstream out(path, std::ios::binary);
  Require(out.good(), "cannot open file for writing: " + path);
  WriteSnapshot(snapshot, out, format);
  Require(out.good(), "error while writing: " + path);
}

Snapshot ReadSnapshot(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = std::move(buffer).str();
  const SnapshotImage image(bytes.data(), bytes.size(),
                            SnapshotVerify::kFull);
  return DecodeSnapshot(image);
}

Snapshot ReadSnapshotFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  Require(in.good(), "cannot open file for reading: " + path);
  return ReadSnapshot(in);
}

}  // namespace phast::server

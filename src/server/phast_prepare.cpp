// phast_prepare — builds a serving snapshot offline.
//
// Runs the full preparation pipeline (largest SCC -> DFS relabel -> CH ->
// PHAST layout) once and persists the result as a snapshot artifact, so
// phast_serve starts with zero preprocessing. This is deliberately the only
// server-side binary that may call PrepareNetwork — the server-no-prepare
// lint rule (tools/phast_lint.py) keeps contraction out of the serving path.
//
//   phast_prepare --out=country.snap                      # synthetic graph
//   phast_prepare --out=nyc.snap --graph=NY.gr            # DIMACS input
//   phast_prepare --out=big.snap --width=256 --height=256 --seed=7
//
// Exit code 0 = snapshot written, 2 = usage error.
#include <cstdio>
#include <string>

#include "apps/poi.h"
#include "graph/csr.h"
#include "graph/generators.h"
#include "phast/phast.h"
#include "phast/prepare.h"
#include "server/snapshot.h"
#include "util/cli.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace phast;
  const CommandLine cli(argc, argv);
  if (cli.Has("help") || !cli.Has("out")) {
    std::printf(
        "usage: %s --out=PATH [--graph=DIMACS.gr]\n"
        "          [--width=W --height=H --seed=S --metric=time|distance]\n"
        "          [--threads=N]             contraction threads (0 = all)\n"
        "          [--batch-neighborhood=H]  independence rule, 1 or 2 hops\n"
        "          [--no-graph]  (omit the verification graph section)\n"
        "          [--customizable]  build a witness-free CH and embed it so\n"
        "                            phast_serve can re-customize and hot-swap\n"
        "          [--format=phsnap01|phsnap02]  on-disk format (default\n"
        "                            phsnap02: page-aligned, mmap-able)\n"
        "          [--poi=PATH]  also write a PHPOI01 POI bucket sidecar\n"
        "          [--poi-categories=C --poi-per-category=P --poi-seed=S]\n",
        cli.ProgramName().c_str());
    return cli.Has("help") ? 0 : 2;
  }

  const Timer total;
  EdgeList edges;
  if (cli.Has("graph")) {
    edges = ReadDimacsGraphFile(cli.GetString("graph", ""));
  } else {
    CountryParams params;
    params.width = static_cast<uint32_t>(cli.GetInt("width", 96));
    params.height = static_cast<uint32_t>(cli.GetInt("height", 96));
    params.seed = static_cast<uint64_t>(cli.GetInt("seed", 1));
    params.metric = cli.GetString("metric", "time") == "distance"
                        ? Metric::kTravelDistance
                        : Metric::kTravelTime;
    edges = GenerateCountry(params).edges;
  }
  std::printf("input: %u vertices, %zu arcs\n", edges.NumVertices(),
              edges.NumArcs());

  // Snapshot bytes are independent of the thread count (the contraction
  // engine is deterministic, DESIGN.md §9) — these knobs only change how
  // fast the snapshot is produced.
  PrepareOptions options;
  options.ch_params.threads =
      static_cast<uint32_t>(cli.GetInt("threads", 0));
  options.ch_params.batch_neighborhood =
      static_cast<uint32_t>(cli.GetInt("batch-neighborhood", 1));
  // A customizable snapshot embeds a witness-free hierarchy: its topology is
  // metric-independent, which is what lets CustomizeWeights re-derive the
  // shortcut weights for a new metric without re-contracting (DESIGN.md §10).
  const bool customizable = cli.GetBool("customizable", false);
  options.ch_params.witness_pruning = !customizable;
  if (customizable && cli.GetBool("no-graph", false)) {
    std::fprintf(stderr,
                 "--customizable needs the graph section (the customizer "
                 "reads arc weights from it); drop --no-graph\n");
    return 2;
  }

  const PreparedNetwork prepared = PrepareNetwork(edges, options);
  std::printf(
      "prepared: %u vertices (largest SCC), %u CH levels "
      "(%u threads, %u rounds, %.2fs)\n",
      prepared.NumVertices(), prepared.ch.NumLevels(),
      prepared.ch_stats.profile.threads, prepared.ch_stats.rounds,
      prepared.ch_stats.seconds);

  const Phast engine(prepared.ch);
  const server::Snapshot snapshot = server::MakeSnapshot(
      engine, cli.GetBool("no-graph", false) ? nullptr : &prepared.graph,
      customizable ? &prepared.ch : nullptr);

  const std::string format_name = cli.GetString("format", "phsnap02");
  server::SnapshotFormat format;
  if (format_name == "phsnap01") {
    format = server::SnapshotFormat::kPhsnap01;
  } else if (format_name == "phsnap02") {
    format = server::SnapshotFormat::kPhsnap02;
  } else {
    std::fprintf(stderr, "unknown --format=%s (phsnap01 | phsnap02)\n",
                 format_name.c_str());
    return 2;
  }

  const std::string out = cli.GetString("out", "");
  server::WriteSnapshotFile(snapshot, out, format);
  std::printf("%s snapshot written to %s in %.1f ms\n", format_name.c_str(),
              out.c_str(), total.ElapsedMs());

  // The POI sidecar indexes *snapshot* vertex ids, so it is generated after
  // preparation (the prepared network relabels the input graph).
  if (cli.Has("poi")) {
    const uint32_t categories =
        static_cast<uint32_t>(cli.GetInt("poi-categories", 4));
    const uint32_t per_category =
        static_cast<uint32_t>(cli.GetInt("poi-per-category", 32));
    const uint64_t poi_seed =
        static_cast<uint64_t>(cli.GetInt("poi-seed", 1));
    const PoiIndex poi = PoiIndex::GenerateRandom(
        prepared.NumVertices(), categories, per_category, poi_seed);
    const std::string poi_path = cli.GetString("poi", "");
    WritePoiFile(poi_path, poi);
    std::printf("poi index written to %s (%u categories, %zu pois)\n",
                poi_path.c_str(), poi.NumCategories(), poi.TotalPois());
  }
  return 0;
}

// phast_loadgen — seeded workload driver for phast_serve.
//
// Connects C client threads to a running daemon, fires a Zipf-or-uniform
// request stream with bounded pipelining, and reports achieved throughput
// plus client-side latency percentiles as a JSON summary on stdout.
// --scenario picks the workload mix: a comma-separated subset of
//   tree    single-source queries (full tree or target list; the default)
//   matrix  kMatrix M x N distance tables (protocol v2)
//   knn     kNearestPoi queries (protocol v2; needs --poi=PATH so the
//           client knows the category domain and can verify)
// Each request draws its kind uniformly from the listed scenarios.
// Optionally:
//
//   --verify-sample=K   re-check K responses per thread against Dijkstra on
//                       the graph embedded in the snapshot (--snapshot=...).
//                       Matrix tables are checked cell-by-cell (one Dijkstra
//                       per row), k-nearest-POI result sets against a
//                       brute-force scan of the category bucket.
//   --check-metrics     fetch /metrics afterwards and assert the accounting
//                       identity admitted == completed + shed
//   --shutdown          send a shutdown frame when done
//
//   phast_loadgen --socket=/tmp/phast.sock --requests=1000 --clients=4
//                 --snapshot=country.snap --verify-sample=32 --check-metrics
//   phast_loadgen --socket=... --scenario=matrix,knn --poi=country.poi
//                 --snapshot=country.snap --verify-sample=64
//
// Exit code 0 = all requests answered and all checks passed, 1 = a
// verification or metrics check failed, 2 = usage error.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/poi.h"
#include "dijkstra/dijkstra.h"
#include "pq/dary_heap.h"
#include "server/metrics.h"
#include "server/protocol.h"
#include "server/snapshot.h"
#include "server/workload.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/timer.h"

namespace {

using namespace phast;
using namespace phast::server;

struct ThreadReport {
  std::vector<double> latencies_ms;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t invalid = 0;
  uint64_t from_cache = 0;
  uint64_t verified = 0;
  uint64_t mismatches = 0;
};

/// Pulls the value of a plain (un-labeled) sample line out of Prometheus
/// exposition text; returns -1 when absent.
int64_t ParseMetric(const std::string& text, const std::string& name) {
  size_t pos = 0;
  const std::string needle = name + " ";
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    const bool at_line_start = pos == 0 || text[pos - 1] == '\n';
    if (!at_line_start) {
      pos += needle.size();
      continue;
    }
    const size_t value_begin = pos + needle.size();
    const size_t line_end = text.find('\n', value_begin);
    const std::string value =
        text.substr(value_begin, line_end == std::string::npos
                                     ? std::string::npos
                                     : line_end - value_begin);
    return std::strtoll(value.c_str(), nullptr, 10);
  }
  return -1;
}

double Percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// A server-side histogram reconstructed from Prometheus exposition text:
/// finite bucket bounds plus cumulative counts (the `le` convention), with
/// the +Inf bucket last. Distinct from client-side latency samples — this
/// is the service's own view (admission to completion), so load runs are
/// comparable across PRs even when client scheduling noise differs.
struct HistogramSnapshot {
  std::vector<double> bounds;        // finite upper bounds, increasing
  std::vector<uint64_t> cumulative;  // same size + 1 (+Inf last)

  [[nodiscard]] uint64_t Count() const {
    return cumulative.empty() ? 0 : cumulative.back();
  }

  /// Mirrors Histogram::Quantile in server/metrics.cpp: linear
  /// interpolation within the bucket that crosses the rank; values in the
  /// +Inf bucket report the largest finite bound.
  [[nodiscard]] double Quantile(double q) const {
    const uint64_t total = Count();
    if (total == 0 || bounds.empty()) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double rank = q * static_cast<double>(total);
    uint64_t below = 0;
    for (size_t i = 0; i < cumulative.size(); ++i) {
      const uint64_t in_bucket = cumulative[i] - below;
      if (in_bucket == 0) continue;
      if (static_cast<double>(cumulative[i]) >= rank) {
        if (i >= bounds.size()) return bounds.back();  // +Inf bucket
        const double lower = i == 0 ? 0.0 : bounds[i - 1];
        const double upper = bounds[i];
        const double into =
            (rank - static_cast<double>(below)) / static_cast<double>(in_bucket);
        return lower + (upper - lower) * std::clamp(into, 0.0, 1.0);
      }
      below = cumulative[i];
    }
    return bounds.back();
  }
};

/// Pulls `name_bucket{le="..."}` sample lines out of Prometheus exposition
/// text. Returns an empty snapshot when the metric is absent.
HistogramSnapshot ParseHistogram(const std::string& text,
                                 const std::string& name) {
  HistogramSnapshot snap;
  const std::string needle = name + "_bucket{le=\"";
  size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    const bool at_line_start = pos == 0 || text[pos - 1] == '\n';
    const size_t bound_begin = pos + needle.size();
    pos = bound_begin;
    if (!at_line_start) continue;
    const size_t bound_end = text.find("\"} ", bound_begin);
    if (bound_end == std::string::npos) break;
    const std::string bound =
        text.substr(bound_begin, bound_end - bound_begin);
    const uint64_t count = static_cast<uint64_t>(
        std::strtoull(text.c_str() + bound_end + 3, nullptr, 10));
    if (bound == "+Inf") {
      snap.cumulative.push_back(count);
      break;  // +Inf is always the histogram's last bucket line
    }
    snap.bounds.push_back(std::strtod(bound.c_str(), nullptr));
    snap.cumulative.push_back(count);
  }
  // A well-formed exposition has exactly one more bucket than bound (+Inf);
  // anything else means we mis-parsed, so report "absent" instead.
  if (snap.cumulative.size() != snap.bounds.size() + 1) {
    return HistogramSnapshot{};
  }
  return snap;
}

/// Checks one kTree response against a fresh Dijkstra tree.
bool VerifyTreeResponse(const Graph& graph, const Request& request,
                        const Response& response) {
  const SsspResult ref = Dijkstra<BinaryHeap>(graph, request.source);
  if (request.targets.empty()) {
    if (response.distances.size() != ref.dist.size()) return false;
    return std::equal(response.distances.begin(), response.distances.end(),
                      ref.dist.begin());
  }
  if (response.distances.size() != request.targets.size()) return false;
  for (size_t i = 0; i < request.targets.size(); ++i) {
    if (response.distances[i] != ref.dist[request.targets[i]]) return false;
  }
  return true;
}

/// Checks one kMatrix table cell-by-cell: one Dijkstra per row source.
bool VerifyMatrixResponse(const Graph& graph, const Request& request,
                          const Response& response) {
  const size_t rows = request.sources.size();
  const size_t cols = request.targets.size();
  if (response.rows != rows || response.cols != cols) return false;
  if (response.distances.size() != rows * cols) return false;
  for (size_t r = 0; r < rows; ++r) {
    const SsspResult ref = Dijkstra<BinaryHeap>(graph, request.sources[r]);
    for (size_t c = 0; c < cols; ++c) {
      if (response.distances[r * cols + c] !=
          ref.dist[request.targets[c]]) {
        return false;
      }
    }
  }
  return true;
}

/// Checks one kNearestPoi result set against a brute-force scan of the
/// category bucket under a fresh Dijkstra tree: same (dist, vertex id)
/// order, unreachable POIs dropped, at most k results.
bool VerifyPoiResponse(const Graph& graph, const PoiIndex& poi,
                       const Request& request, const Response& response) {
  const SsspResult ref = Dijkstra<BinaryHeap>(graph, request.source);
  std::vector<PoiResult> expected;
  for (const VertexId v : poi.Bucket(request.poi_category)) {
    if (ref.dist[v] == kInfWeight) continue;
    expected.push_back(PoiResult{ref.dist[v], v});
  }
  std::sort(expected.begin(), expected.end(),
            [](const PoiResult& a, const PoiResult& b) {
              return a.dist != b.dist ? a.dist < b.dist : a.vertex < b.vertex;
            });
  if (expected.size() > request.poi_k) expected.resize(request.poi_k);
  if (response.poi_vertices.size() != expected.size() ||
      response.distances.size() != expected.size()) {
    return false;
  }
  for (size_t i = 0; i < expected.size(); ++i) {
    if (response.poi_vertices[i] != expected[i].vertex ||
        response.distances[i] != expected[i].dist) {
      return false;
    }
  }
  return true;
}

bool VerifyResponse(const Graph& graph, const PoiIndex* poi,
                    const Request& request, const Response& response) {
  switch (request.kind) {
    case RequestKind::kMatrix:
      return VerifyMatrixResponse(graph, request, response);
    case RequestKind::kNearestPoi:
      return poi != nullptr &&
             VerifyPoiResponse(graph, *poi, request, response);
    case RequestKind::kTree:
      break;
  }
  return VerifyTreeResponse(graph, request, response);
}

void RunClient(const std::string& socket_path, uint64_t requests,
               uint32_t window, const WorkloadOptions& wl,
               const std::vector<RequestKind>& scenario, uint32_t n,
               const std::vector<VertexId>& rank_to_vertex,
               const Graph* oracle_graph, const PoiIndex* poi,
               uint64_t verify_sample, ThreadReport& report) {
  Client client(ConnectUnix(socket_path));
  Rng rng(wl.seed);
  const ZipfSampler zipf(n, wl.zipf_skew);

  // Bounded pipelining: keep up to `window` queries in flight so the
  // server actually gets something to coalesce into wide batches.
  std::vector<Request> in_flight;
  const uint64_t verify_every =
      verify_sample > 0 ? std::max<uint64_t>(1, requests / verify_sample) : 0;

  uint64_t sent = 0;
  uint64_t received = 0;
  while (received < requests) {
    while (sent < requests && sent - received < window) {
      const RequestKind kind =
          scenario[rng.NextBounded(static_cast<uint32_t>(scenario.size()))];
      Request request =
          kind == RequestKind::kMatrix
              ? DrawMatrixRequest(wl, zipf, rank_to_vertex, rng)
          : kind == RequestKind::kNearestPoi
              ? DrawPoiRequest(wl, zipf, rank_to_vertex,
                               poi->NumCategories(), rng)
              : DrawRequest(wl, zipf, rank_to_vertex, rng);
      client.SendQuery(request);
      in_flight.push_back(std::move(request));
      ++sent;
    }
    const ResponseFrame frame = client.ReceiveResponse();
    const Request request = std::move(in_flight.front());
    in_flight.erase(in_flight.begin());

    const Response& response = frame.response;
    report.latencies_ms.push_back(response.latency_ms);
    if (response.from_cache) ++report.from_cache;
    switch (response.status) {
      case ResponseStatus::kOk: {
        ++report.ok;
        if (oracle_graph != nullptr && verify_every > 0 &&
            received % verify_every == 0) {
          ++report.verified;
          if (!VerifyResponse(*oracle_graph, poi, request, response)) {
            ++report.mismatches;
          }
        }
        break;
      }
      case ResponseStatus::kInvalidRequest:
        ++report.invalid;
        break;
      default:
        ++report.shed;
        break;
    }
    ++received;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  if (cli.Has("help") || !cli.Has("socket")) {
    std::fprintf(
        stderr,
        "usage: %s --socket=SOCKPATH [--requests=N] [--clients=C]\n"
        "          [--window=W] [--seed=S] [--zipf-skew=Z]\n"
        "          [--scenario=tree,matrix,knn]  workload mix (default tree)\n"
        "          [--full-tree-fraction=F] [--max-targets=T]\n"
        "          [--matrix-max-dim=M] [--poi=PATH] [--poi-max-k=K]\n"
        "          [--snapshot=PATH --verify-sample=K] [--check-metrics]\n"
        "          [--shutdown]\n",
        cli.ProgramName().c_str());
    return cli.Has("help") ? 0 : 2;
  }

  const std::string socket_path = cli.GetString("socket", "");
  const uint64_t requests =
      static_cast<uint64_t>(cli.GetInt("requests", 1000));
  const uint32_t clients = static_cast<uint32_t>(cli.GetInt("clients", 4));
  const uint32_t window = static_cast<uint32_t>(cli.GetInt("window", 8));
  const uint64_t verify_sample =
      static_cast<uint64_t>(cli.GetInt("verify-sample", 0));

  WorkloadOptions wl;
  wl.seed = static_cast<uint64_t>(cli.GetInt("seed", 1));
  wl.zipf_skew = cli.GetDouble("zipf-skew", 0.99);
  wl.full_tree_fraction = cli.GetDouble("full-tree-fraction", 0.1);
  wl.max_targets = static_cast<uint32_t>(cli.GetInt("max-targets", 16));
  wl.matrix_max_dim = static_cast<uint32_t>(cli.GetInt("matrix-max-dim", 8));
  wl.poi_max_k = static_cast<uint32_t>(cli.GetInt("poi-max-k", 8));

  std::vector<RequestKind> scenario;
  {
    std::string spec = cli.GetString("scenario", "tree");
    size_t start = 0;
    while (start <= spec.size()) {
      size_t comma = spec.find(',', start);
      if (comma == std::string::npos) comma = spec.size();
      const std::string name = spec.substr(start, comma - start);
      if (name == "tree") {
        scenario.push_back(RequestKind::kTree);
      } else if (name == "matrix") {
        scenario.push_back(RequestKind::kMatrix);
      } else if (name == "knn") {
        scenario.push_back(RequestKind::kNearestPoi);
      } else if (!name.empty()) {
        std::fprintf(stderr, "unknown --scenario part: %s\n", name.c_str());
        return 2;
      }
      start = comma + 1;
    }
    if (scenario.empty()) {
      std::fprintf(stderr, "--scenario lists no workloads\n");
      return 2;
    }
  }
  const bool wants_knn =
      std::find(scenario.begin(), scenario.end(), RequestKind::kNearestPoi) !=
      scenario.end();
  std::unique_ptr<PoiIndex> poi;
  if (wants_knn) {
    if (!cli.Has("poi")) {
      std::fprintf(stderr, "--scenario=knn needs --poi=PATH\n");
      return 2;
    }
    poi = std::make_unique<PoiIndex>(ReadPoiFile(cli.GetString("poi", "")));
  }

  // The oracle graph (for --verify-sample) rides inside the snapshot, so
  // the loadgen checks the very artifact the server is serving from.
  std::unique_ptr<Snapshot> snapshot;
  if (verify_sample > 0) {
    Require(cli.Has("snapshot"), "--verify-sample needs --snapshot=PATH");
    snapshot =
        std::make_unique<Snapshot>(ReadSnapshotFile(cli.GetString("snapshot", "")));
    Require(snapshot->has_graph,
            "snapshot carries no graph section (produced with --no-graph?)");
  }
  const uint32_t n =
      snapshot ? snapshot->graph.NumVertices()
               : static_cast<uint32_t>(cli.GetInt("num-vertices", 0));
  uint32_t domain = n;
  if (domain == 0) {
    // Without a snapshot we still need the vertex-id domain; probe vertex 0.
    domain = 1;
    Client probe(ConnectUnix(socket_path));
    Request request;
    request.source = 0;
    const Response r = probe.Call(request);
    Require(r.status == ResponseStatus::kOk,
            "pass --num-vertices or --snapshot to size the workload");
    domain = static_cast<uint32_t>(r.distances.size());
  }
  const std::vector<VertexId> rank_to_vertex = MakeRankMapping(domain, wl.seed);

  const uint64_t per_client = std::max<uint64_t>(1, requests / clients);
  std::vector<ThreadReport> reports(clients);
  const Timer wall;
  {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (uint32_t c = 0; c < clients; ++c) {
      WorkloadOptions thread_wl = wl;
      thread_wl.seed = wl.seed * 0x9E3779B9ULL + c + 1;  // per-thread stream
      threads.emplace_back([&, c, thread_wl] {
        RunClient(socket_path, per_client, window, thread_wl, scenario,
                  domain, rank_to_vertex,
                  snapshot ? &snapshot->graph : nullptr, poi.get(),
                  verify_sample, reports[c]);
      });
    }
    for (std::thread& t : threads) t.join();
  }
  const double elapsed_sec = wall.ElapsedSec();

  ThreadReport total;
  for (const ThreadReport& r : reports) {
    total.ok += r.ok;
    total.shed += r.shed;
    total.invalid += r.invalid;
    total.from_cache += r.from_cache;
    total.verified += r.verified;
    total.mismatches += r.mismatches;
    total.latencies_ms.insert(total.latencies_ms.end(),
                              r.latencies_ms.begin(), r.latencies_ms.end());
  }
  std::sort(total.latencies_ms.begin(), total.latencies_ms.end());

  // One metrics fetch covers both the accounting check and the service-side
  // latency histogram (the server's own admission-to-completion view, used
  // for the JSON summary below).
  bool metrics_ok = true;
  int64_t admitted = -1, completed = -1, shed = -1;
  HistogramSnapshot service_latency;
  {
    Client client(ConnectUnix(socket_path));
    const std::string text = client.FetchMetrics();
    service_latency = ParseHistogram(text, "phast_server_request_latency_ms");
    if (cli.GetBool("check-metrics", false)) {
      admitted = ParseMetric(text, "phast_server_requests_admitted_total");
      completed = ParseMetric(text, "phast_server_requests_completed_total");
      shed = ParseMetric(text, "phast_server_requests_shed_total");
      metrics_ok = admitted >= 0 && completed >= 0 && shed >= 0 &&
                   admitted == completed + shed;
    }
  }
  if (cli.GetBool("shutdown", false)) {
    Client client(ConnectUnix(socket_path));
    client.Shutdown();
  }

  const uint64_t answered = total.ok + total.shed + total.invalid;
  std::printf(
      "{\"requests\": %llu, \"ok\": %llu, \"shed\": %llu, \"invalid\": %llu,\n"
      " \"from_cache\": %llu, \"throughput_rps\": %.1f,\n"
      " \"latency_ms\": {\"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f},\n"
      " \"service_latency_ms\": {\"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f, "
      "\"count\": %llu},\n"
      " \"verified\": %llu, \"mismatches\": %llu,\n"
      " \"metrics\": {\"admitted\": %lld, \"completed\": %lld, \"shed\": %lld, "
      "\"identity_ok\": %s}}\n",
      static_cast<unsigned long long>(answered),
      static_cast<unsigned long long>(total.ok),
      static_cast<unsigned long long>(total.shed),
      static_cast<unsigned long long>(total.invalid),
      static_cast<unsigned long long>(total.from_cache),
      static_cast<double>(answered) / elapsed_sec,
      Percentile(total.latencies_ms, 0.50),
      Percentile(total.latencies_ms, 0.95),
      Percentile(total.latencies_ms, 0.99),
      service_latency.Quantile(0.50), service_latency.Quantile(0.95),
      service_latency.Quantile(0.99),
      static_cast<unsigned long long>(service_latency.Count()),
      static_cast<unsigned long long>(total.verified),
      static_cast<unsigned long long>(total.mismatches),
      static_cast<long long>(admitted), static_cast<long long>(completed),
      static_cast<long long>(shed), metrics_ok ? "true" : "false");

  if (total.mismatches > 0) {
    std::fprintf(stderr, "loadgen: %llu responses disagreed with Dijkstra\n",
                 static_cast<unsigned long long>(total.mismatches));
    return 1;
  }
  if (!metrics_ok) {
    std::fprintf(stderr,
                 "loadgen: metrics identity violated: admitted=%lld != "
                 "completed=%lld + shed=%lld\n",
                 static_cast<long long>(admitted),
                 static_cast<long long>(completed),
                 static_cast<long long>(shed));
    return 1;
  }
  return 0;
}

#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "ch/ch_data.h"
#include "graph/csr.h"
#include "phast/phast.h"

namespace phast::server {

/// Snapshot artifacts (DESIGN.md §7, §12): a versioned, checksummed binary
/// serialization of a *fully prepared* PHAST engine — CH-derived
/// permutations, the reordered G↓/G↑ CSR arrays, level boundaries — plus
/// (optionally) the prepared source graph for oracle verification. Loading
/// a snapshot rebuilds a serving-ready engine with zero re-preprocessing;
/// the serving path never runs contraction (tools/phast_lint.py enforces
/// this with the server-no-prepare rule).
///
/// Two on-disk formats share one header/TOC shape (little-endian):
///
///   [0..8)    magic "PHSNAP01" or "PHSNAP02"
///   [8..12)   u32 format version (1 or 2)
///   [12..16)  u32 section count
///   [16..24)  u64 total file size
///   [24..32)  u64 FNV-1a checksum (this field zeroed while hashing):
///             v1 hashes the WHOLE FILE; v2 hashes only header+TOC, so a
///             reader can authenticate the file's structure in O(TOC)
///             without touching a single payload byte.
///   [32..48)  reserved (zero)
///   [48..)    table of contents: per section
///             {u32 id, u32 reserved, u64 offset, u64 size, u64 FNV-1a}
///   then the section payloads at aligned offsets (zero-padded gaps):
///   8-byte-aligned in v1, PAGE-aligned (4096) in v2.
///
/// v2 is the mmap format of the serving fabric (src/fabric/): page-aligned
/// payloads mean a mapped file's arrays are directly usable as typed spans
/// (PhastLayoutView), so N server processes over one snapshot share one
/// page-cache copy and cold start costs O(TOC), with per-section checksums
/// verified on whatever schedule the --verify knob chose. v1 remains fully
/// readable via the copy-load path.
inline constexpr uint32_t kSnapshotVersion = 1;
inline constexpr uint32_t kSnapshotVersion2 = 2;

/// v2 payload alignment: one page, the unit of mmap sharing and protection.
inline constexpr size_t kSnapshotPageAlign = 4096;

enum class SnapshotFormat : uint32_t { kPhsnap01 = 1, kPhsnap02 = 2 };

/// Everything a snapshot holds, decoded.
struct Snapshot {
  PhastLayout layout;
  /// Prepared source graph (forward CSR in the engine's original-id space);
  /// carried so servers can spot-check responses against Dijkstra without
  /// re-reading the input. Absent (empty, has_graph=false) when the
  /// producer skipped it.
  bool has_graph = false;
  Graph graph;
  /// Contraction hierarchy (the ch_io byte format embedded as a section);
  /// carried by customizable snapshots (phast_prepare --customizable) so a
  /// server can re-derive arc weights for a new metric without contraction
  /// (server/snapshot_manager.h). Absent (has_ch=false) otherwise.
  bool has_ch = false;
  CHData ch;
};

/// Captures a prepared engine (and optionally its graph and hierarchy) for
/// serialization.
[[nodiscard]] Snapshot MakeSnapshot(const Phast& engine,
                                    const Graph* graph = nullptr,
                                    const CHData* ch = nullptr);

void WriteSnapshot(const Snapshot& snapshot, std::ostream& out,
                   SnapshotFormat format = SnapshotFormat::kPhsnap01);
void WriteSnapshotFile(const Snapshot& snapshot, const std::string& path,
                       SnapshotFormat format = SnapshotFormat::kPhsnap01);

/// Throws InputError on any integrity or structural violation. Reads both
/// formats (copy-load).
[[nodiscard]] Snapshot ReadSnapshot(std::istream& in);
[[nodiscard]] Snapshot ReadSnapshotFile(const std::string& path);

/// FNV-1a 64-bit (the integrity hash of the snapshot format).
[[nodiscard]] uint64_t Fnv1a64(const void* data, size_t size);
/// Incremental FNV-1a: feed chunks with Fnv1a64Continue starting from
/// kFnv1a64Seed. Hashing is byte-sequential, so a region with a hole (the
/// checksum field itself) hashes as chunks + zeros without copying the
/// input — the fix for the v1 whole-file verify, which used to duplicate
/// the entire file just to zero 8 bytes.
inline constexpr uint64_t kFnv1a64Seed = 14695981039346656037ULL;
[[nodiscard]] uint64_t Fnv1a64Continue(uint64_t hash, const void* data,
                                       size_t size);

// --- shared image-parsing layer (used by the fabric's mmap path) ------------

/// One TOC entry, as stored on disk.
struct SnapshotSection {
  uint32_t id = 0;
  uint32_t reserved = 0;
  uint64_t offset = 0;
  uint64_t size = 0;
  uint64_t checksum = 0;
};
static_assert(sizeof(SnapshotSection) == 32, "TOC entries are 32 bytes");

/// Well-known section ids (unknown ids are skipped by readers).
enum SnapshotSectionId : uint32_t {
  kSecMeta = 1,
  kSecPerm = 2,
  kSecInvPerm = 3,
  kSecOrder = 4,
  kSecDownFirst = 5,
  kSecDownArcs = 6,
  kSecUpFirst = 7,
  kSecUpArcs = 8,
  kSecLevelBegin = 9,
  kSecGraphFirst = 10,
  kSecGraphArcs = 11,
  /// Embedded ch_io stream ("PHASTCH1" bytes). Optional; readers that do
  /// not know it skip unknown sections, so adding it kept the version at 1.
  kSecCh = 12,
};

[[nodiscard]] const char* SnapshotSectionName(uint32_t id);

/// Fixed-size metadata section: everything that is not a bulk array.
struct SnapshotMeta {
  uint32_t num_vertices = 0;
  uint32_t num_levels = 0;
  uint8_t sweep_order = 0;
  uint8_t simd_mode = 0;
  uint8_t implicit_init = 0;
  uint8_t has_graph = 0;
  /// Was `reserved` (always written 0) until the CH section was added, so
  /// pre-CH snapshots decode as has_ch == 0.
  uint32_t has_ch = 0;
  uint64_t num_down_arcs = 0;
  uint64_t num_up_arcs = 0;
};
static_assert(sizeof(SnapshotMeta) == 32 &&
                  std::is_trivially_copyable_v<SnapshotMeta>,
              "META is a fixed 32-byte record");

/// How much hashing SnapshotImage does at parse time. Bounds, alignment,
/// and size checks always run — the knob only controls checksum work:
///   kFull     v1: whole-file + per-section. v2: header/TOC + per-section.
///   kSections per-section only (plus the v2 header/TOC hash, which is
///             O(TOC) and always cheap).
///   kOff      v2 header/TOC hash only; no payload byte is ever read.
enum class SnapshotVerify { kFull, kSections, kOff };

/// Parsed, bounds-checked header + TOC over a snapshot byte image the
/// caller owns (a slurped file or an mmap-ed region, which must outlive the
/// image). Understands both formats; this is the shared substrate of the
/// stream loader (ReadSnapshot) and the fabric's zero-copy mapping.
class SnapshotImage {
 public:
  SnapshotImage(const char* data, size_t size, SnapshotVerify verify);

  [[nodiscard]] uint32_t Version() const { return version_; }
  [[nodiscard]] const char* Data() const { return data_; }
  [[nodiscard]] size_t Size() const { return size_; }
  [[nodiscard]] std::span<const SnapshotSection> Sections() const {
    return toc_;
  }

  [[nodiscard]] bool HasSection(uint32_t id) const;
  /// Throws InputError when absent.
  [[nodiscard]] const SnapshotSection& Section(uint32_t id) const;
  [[nodiscard]] std::span<const char> SectionBytes(
      const SnapshotSection& section) const {
    return {data_ + section.offset, section.size};
  }

  /// Recomputes one section's FNV against its TOC entry (the lazy-verify
  /// primitive behind --verify and phast_snap).
  [[nodiscard]] bool SectionChecksumOk(const SnapshotSection& section) const;

  /// The section payload as a typed read-only span, without copying.
  /// Requires the payload to be element-aligned in memory — guaranteed for
  /// v2 images mapped at page granularity, checked here for everything
  /// else.
  template <typename T>
  [[nodiscard]] std::span<const T> TypedSection(uint32_t id) const {
    static_assert(std::is_trivially_copyable_v<T>);
    const SnapshotSection& section = Section(id);
    RequireTyped(section, sizeof(T), alignof(T));
    return {reinterpret_cast<const T*>(data_ + section.offset),
            section.size / sizeof(T)};
  }

  /// Decoded, range-checked META section.
  [[nodiscard]] SnapshotMeta Meta() const;

 private:
  void RequireTyped(const SnapshotSection& section, size_t elem_size,
                    size_t elem_align) const;

  const char* data_ = nullptr;
  size_t size_ = 0;
  uint32_t version_ = 0;
  std::vector<SnapshotSection> toc_;
};

/// Zero-copy layout view whose spans alias the image's payload bytes — the
/// image's backing memory must outlive every engine built from the view.
/// Works on any image whose arrays happen to be element-aligned (always
/// true for v2); size/count consistency against META is checked here,
/// array *content* is not read.
[[nodiscard]] PhastLayoutView MakeLayoutView(const SnapshotImage& image);

/// Copying decode of the full snapshot (either format) — the fallback load
/// path, and the only one for v1.
[[nodiscard]] Snapshot DecodeSnapshot(const SnapshotImage& image);

/// Copying decode of just the graph / CH sections (for zero-copy servers
/// that still need the verification graph or the customization hierarchy —
/// both are mutated per-metric, so they cannot stay mapped read-only).
[[nodiscard]] Graph DecodeSnapshotGraph(const SnapshotImage& image);
[[nodiscard]] CHData DecodeSnapshotCH(const SnapshotImage& image);

}  // namespace phast::server

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "ch/ch_data.h"
#include "graph/csr.h"
#include "phast/phast.h"

namespace phast::server {

/// Snapshot artifacts (DESIGN.md §7): a versioned, checksummed binary
/// serialization of a *fully prepared* PHAST engine — CH-derived
/// permutations, the reordered G↓/G↑ CSR arrays, level boundaries — plus
/// (optionally) the prepared source graph for oracle verification. Loading
/// a snapshot rebuilds a serving-ready engine with zero re-preprocessing;
/// the serving path never runs contraction (tools/phast_lint.py enforces
/// this with the server-no-prepare rule).
///
/// File layout (little-endian, like the CH format in ch/ch_io.h):
///
///   [0..8)    magic "PHSNAP01"
///   [8..12)   u32 format version (kSnapshotVersion)
///   [12..16)  u32 section count
///   [16..24)  u64 total file size
///   [24..32)  u64 FNV-1a checksum of the whole file (this field zeroed)
///   [32..48)  reserved (zero)
///   [48..)    table of contents: per section
///             {u32 id, u32 reserved, u64 offset, u64 size, u64 FNV-1a}
///   then the section payloads, each at an 8-byte-aligned offset
///   (zero-padded gaps), so a loader may mmap the file and bind spans
///   directly to the aligned u32/u64 payloads.
///
/// Every load verifies the magic, version, declared size, the whole-file
/// checksum, and each section's bounds, alignment, and checksum before a
/// single value is interpreted; structural validation (permutation and CSR
/// invariants) then runs in the Phast/Graph adopting constructors. Any
/// violation throws InputError with a message naming the failing check.
inline constexpr uint32_t kSnapshotVersion = 1;

/// Everything a snapshot holds, decoded.
struct Snapshot {
  PhastLayout layout;
  /// Prepared source graph (forward CSR in the engine's original-id space);
  /// carried so servers can spot-check responses against Dijkstra without
  /// re-reading the input. Absent (empty, has_graph=false) when the
  /// producer skipped it.
  bool has_graph = false;
  Graph graph;
  /// Contraction hierarchy (the ch_io byte format embedded as a section);
  /// carried by customizable snapshots (phast_prepare --customizable) so a
  /// server can re-derive arc weights for a new metric without contraction
  /// (server/snapshot_manager.h). Absent (has_ch=false) otherwise.
  bool has_ch = false;
  CHData ch;
};

/// Captures a prepared engine (and optionally its graph and hierarchy) for
/// serialization.
[[nodiscard]] Snapshot MakeSnapshot(const Phast& engine,
                                    const Graph* graph = nullptr,
                                    const CHData* ch = nullptr);

void WriteSnapshot(const Snapshot& snapshot, std::ostream& out);
void WriteSnapshotFile(const Snapshot& snapshot, const std::string& path);

/// Throws InputError on any integrity or structural violation.
[[nodiscard]] Snapshot ReadSnapshot(std::istream& in);
[[nodiscard]] Snapshot ReadSnapshotFile(const std::string& path);

/// FNV-1a 64-bit (the integrity hash of the snapshot format).
[[nodiscard]] uint64_t Fnv1a64(const void* data, size_t size);

}  // namespace phast::server

#include "server/snapshot_manager.h"

#include <algorithm>
#include <iterator>
#include <string>
#include <utility>

#include "ch/customize.h"
#include "obs/trace.h"
#include "util/error.h"

namespace phast::server {

// --- WeightOverlay ----------------------------------------------------------

namespace {

uint64_t ArcKey(VertexId tail, VertexId head) {
  return (static_cast<uint64_t>(tail) << 32) | head;
}

}  // namespace

uint64_t WeightOverlay::Add(std::span<const WeightUpdate> updates) {
  const MutexLock lock(mu_);
  uint64_t seq = next_seq_ - 1;  // last assigned; unchanged if updates empty
  for (const WeightUpdate& u : updates) {
    seq = next_seq_++;
    by_arc_[ArcKey(u.tail, u.head)] = Entry{u.weight, seq};
  }
  return seq;
}

WeightOverlay::Pending WeightOverlay::Snapshot() const {
  const MutexLock lock(mu_);
  Pending pending;
  pending.updates.reserve(by_arc_.size());
  for (const auto& [key, entry] : by_arc_) {
    pending.updates.push_back(WeightUpdate{
        static_cast<VertexId>(key >> 32), static_cast<VertexId>(key),
        entry.weight});
    pending.last_seq = std::max(pending.last_seq, entry.seq);
  }
  return pending;
}

void WeightOverlay::DiscardUpTo(uint64_t last_seq) {
  const MutexLock lock(mu_);
  for (auto it = by_arc_.begin(); it != by_arc_.end();) {
    it = it->second.seq <= last_seq ? by_arc_.erase(it) : std::next(it);
  }
}

size_t WeightOverlay::Size() const {
  const MutexLock lock(mu_);
  return by_arc_.size();
}

// --- SnapshotManager --------------------------------------------------------

namespace {

/// The base graph with the pending overlay merged: same topology, updated
/// arcs re-weighted. Unknown arcs are an input error — accepting them would
/// silently diverge the overlay from the hierarchy's fixed topology.
Graph ApplyOverlay(const Graph& base,
                   const std::vector<WeightUpdate>& updates) {
  if (updates.empty()) return base;
  std::vector<ArcId> first = base.FirstArray();
  std::vector<Arc> arcs = base.ArcArray();
  for (const WeightUpdate& u : updates) {
    Require(u.tail < base.NumVertices(),
            "weight update names tail " + std::to_string(u.tail) +
                ", the graph has " + std::to_string(base.NumVertices()) +
                " vertices");
    bool found = false;
    for (ArcId i = first[u.tail]; i < first[u.tail + 1]; ++i) {
      if (arcs[i].other == u.head) {
        arcs[i].weight = u.weight;
        found = true;
        break;
      }
    }
    Require(found, "weight update names arc (" + std::to_string(u.tail) +
                       ", " + std::to_string(u.head) +
                       ") which the base graph does not have");
  }
  return Graph::FromCsrArrays(std::move(first), std::move(arcs));
}

}  // namespace

namespace {

/// Checks the sections a manager needs, then builds the owning engine (the
/// copy-load path; the fabric passes a view engine to the other
/// constructor instead).
Phast EngineFromSnapshot(Snapshot& snapshot) {
  Require(snapshot.has_graph,
          "snapshot manager needs the graph section (run phast_prepare "
          "without --no-graph)");
  Require(snapshot.has_ch,
          "snapshot manager needs the hierarchy section (run phast_prepare "
          "--customizable)");
  return Phast(std::move(snapshot.layout));
}

}  // namespace

SnapshotManager::SnapshotManager(Snapshot snapshot, MetricsRegistry& metrics)
    : SnapshotManager(EngineFromSnapshot(snapshot),
                      std::move(snapshot.graph), std::move(snapshot.ch),
                      metrics) {}

SnapshotManager::SnapshotManager(Phast engine, Graph graph, CHData ch,
                                 MetricsRegistry& metrics)
    : swaps_(metrics.GetCounter("phast_server_snapshot_swaps_total",
                                "Customized snapshots published")),
      updates_applied_(
          metrics.GetCounter("phast_server_weight_updates_applied_total",
                             "Overlay weight updates merged into a swap")),
      epoch_gauge_(metrics.GetGauge("phast_server_snapshot_epoch",
                                    "Epoch of the serving snapshot")),
      pending_updates_(
          metrics.GetGauge("phast_server_pending_weight_updates",
                           "Overlay updates awaiting the next swap")),
      age_ms_(metrics.GetGauge(
          "phast_server_snapshot_age_ms",
          "Milliseconds since the serving snapshot was published")),
      customize_ms_(metrics.GetHistogram(
          "phast_server_customize_ms",
          "Customize-and-swap build duration in milliseconds",
          DefaultLatencyBucketsMs())) {
  Require(graph.NumVertices() == engine.NumVertices(),
          "snapshot manager graph does not match the engine's vertex count");
  Require(ch.num_vertices == engine.NumVertices(),
          "snapshot manager hierarchy does not match the engine's vertex "
          "count");
  const MutexLock lock(publish_mu_);
  current_ = std::make_shared<const ServingSnapshot>(
      /*epoch=*/1, std::move(engine), std::move(graph), std::move(ch));
  epoch_gauge_.Set(1);
  age_.Reset();
}

std::shared_ptr<const ServingSnapshot> SnapshotManager::Current() const {
  const MutexLock lock(publish_mu_);
  age_ms_.Set(static_cast<int64_t>(age_.ElapsedMs()));
  return current_;
}

uint64_t SnapshotManager::Epoch() const {
  const MutexLock lock(publish_mu_);
  return current_->epoch;
}

uint64_t SnapshotManager::UpdateWeights(
    std::span<const WeightUpdate> updates) {
  const uint64_t seq = overlay_.Add(updates);
  pending_updates_.Set(static_cast<int64_t>(overlay_.Size()));
  return seq;
}

uint64_t SnapshotManager::CustomizeAndSwap(uint32_t customize_threads) {
  PHAST_SPAN("server.customize_swap");
  const MutexLock build_lock(build_mu_);
  const Timer build;

  // Capture the overlay and the snapshot the build starts from. Updates
  // that land after this point stay pending for the next swap.
  const WeightOverlay::Pending pending = overlay_.Snapshot();
  const std::shared_ptr<const ServingSnapshot> base = Current();

  Graph graph = ApplyOverlay(base->graph, pending.updates);
  CHData ch = base->ch;  // fixed topology; weights about to be rewritten
  CustomizeOptions options;
  options.threads = customize_threads;
  CustomizeWeights(ch, graph, options);
  // Project the customized weights into the serving layout and let the
  // adopting constructor re-validate before anything is published.
  Phast engine(base->engine.ExportReweightedLayout(ch));

  auto next = std::make_shared<const ServingSnapshot>(
      base->epoch + 1, std::move(engine), std::move(graph), std::move(ch));

  overlay_.DiscardUpTo(pending.last_seq);
  uint64_t new_epoch = 0;
  {
    const MutexLock lock(publish_mu_);
    current_ = std::move(next);
    new_epoch = current_->epoch;
    age_.Reset();
    epoch_gauge_.Set(static_cast<int64_t>(new_epoch));
  }
  swaps_.Inc();
  updates_applied_.Inc(pending.updates.size());
  pending_updates_.Set(static_cast<int64_t>(overlay_.Size()));
  customize_ms_.Observe(build.ElapsedMs());
  return new_epoch;
}

}  // namespace phast::server

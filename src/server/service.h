#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "apps/poi.h"
#include "graph/types.h"
#include "phast/phast.h"
#include "server/metrics.h"
#include "server/queue.h"
#include "server/snapshot_manager.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace phast::server {

/// The batching scheduler of the serving subsystem (DESIGN.md §7).
///
/// OracleService turns the PHAST batch engine into a request-level
/// distance oracle: clients submit single-source requests (full tree or an
/// explicit target list) into a bounded admission queue; a worker pool
/// coalesces whatever queued up behind the previous sweep into one k-wide
/// SIMD batch of *distinct* sources, picks k and the RPHAST restriction
/// per batch, and fans the results back out through per-request futures.
/// Backpressure is load shedding, never blocking: a full queue rejects at
/// admission, and a request whose deadline passed while queued is shed at
/// processing time instead of wasting a lane. Repeated sources are served
/// from an LRU cache of whole trees.

/// Why a request was answered the way it was. Everything except kOk and
/// kInvalidRequest is a shed: the service chose not to compute.
enum class ResponseStatus : uint8_t {
  kOk = 0,
  kShedQueueFull = 1,  // admission queue at capacity
  kShedDeadline = 2,   // deadline expired while queued
  kShedShutdown = 3,   // service stopped before the request ran
  kInvalidRequest = 4, // source/target out of range
};

[[nodiscard]] const char* ToString(ResponseStatus status);

/// What a request asks for. kTree is the original single-source query;
/// kMatrix and kNearestPoi are the batch workloads behind protocol v2.
enum class RequestKind : uint8_t {
  kTree = 0,
  kMatrix = 1,
  kNearestPoi = 2,
};

struct Request {
  RequestKind kind = RequestKind::kTree;
  /// kTree / kNearestPoi source vertex (kMatrix ignores it).
  VertexId source = 0;
  /// kMatrix row sources, in response row order (other kinds ignore it).
  std::vector<VertexId> sources;
  /// kTree — empty: the response carries the full distance tree (indexed
  /// by original vertex id); non-empty: distances to exactly these
  /// vertices, in order. kMatrix: the table columns, in order.
  std::vector<VertexId> targets;
  /// kNearestPoi: POI category and result-set size.
  uint32_t poi_category = 0;
  uint32_t poi_k = 0;
  /// Per-request deadline; < 0 uses ServiceOptions::default_deadline_ms,
  /// 0 disables.
  double deadline_ms = -1.0;
  /// Request-scoped trace id carried through batching into the span stream
  /// (server.batch/server.fulfill args) and the slow-request log. The wire
  /// front end uses the client's frame id; 0 = untraced.
  uint64_t trace_id = 0;
};

struct Response {
  ResponseStatus status = ResponseStatus::kOk;
  /// kTree: per target, or the full tree for target-less requests
  /// (kInfWeight for unreachable vertices). kMatrix: the row-major
  /// rows x cols table. kNearestPoi: the result distances, parallel to
  /// poi_vertices. Empty on shed.
  std::vector<Weight> distances;
  /// kMatrix: response shape (distances.size() == rows * cols).
  uint32_t rows = 0;
  uint32_t cols = 0;
  /// kNearestPoi: result vertices ordered by (dist, vertex id); at most
  /// poi_k entries, unreachable POIs dropped.
  std::vector<VertexId> poi_vertices;
  bool from_cache = false;
  /// Admission-to-completion latency as measured by the service.
  double latency_ms = 0.0;
  /// Snapshot epoch the answer was computed under (snapshot-manager mode;
  /// 0 for a pinned engine or a shed request). Lets clients detect which
  /// metric a response reflects across hot swaps.
  uint64_t epoch = 0;
};

struct ServiceOptions {
  /// Worker threads running sweeps. 0 is legal (nothing is ever processed
  /// until Stop sheds the backlog) and exists for shutdown/backpressure
  /// tests.
  uint32_t num_workers = 2;
  /// Cap on requests coalesced into one batch; the sweep width k is the
  /// number of *distinct* sources among them, rounded up to a SIMD-friendly
  /// multiple of 4.
  uint32_t max_batch = 8;
  /// Admission queue bound — the backpressure knob.
  size_t queue_capacity = 256;
  /// Full trees kept by the LRU cache; 0 disables caching.
  size_t cache_capacity = 8;
  /// Deadline applied to requests that do not carry their own; 0 = none.
  double default_deadline_ms = 0.0;
  /// When every request of a batch names explicit targets and the union of
  /// their targets is at most this, the batch runs restricted (RPHAST)
  /// sweeps instead of full ones. 0 disables the restricted path.
  size_t rphast_max_targets = 0;
  /// POI bucket index backing kNearestPoi requests (must outlive the
  /// service). Null rejects them as kInvalidRequest.
  const PoiIndex* poi = nullptr;
  /// Trees per sweep for kMatrix tables (the k of the batched modes).
  uint32_t matrix_trees_per_sweep = 8;
};

/// Monotonic totals for the accounting identity the smoke test asserts:
/// admitted == completed + shed (all counts since construction).
struct ServiceCounters {
  uint64_t admitted = 0;
  uint64_t completed = 0;
  uint64_t shed_queue_full = 0;
  uint64_t shed_deadline = 0;
  uint64_t shed_shutdown = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_swap_flushes = 0;
  uint64_t batches = 0;
  uint64_t rphast_batches = 0;
  uint64_t matrix_requests = 0;
  uint64_t poi_requests = 0;

  [[nodiscard]] uint64_t Shed() const {
    return shed_queue_full + shed_deadline + shed_shutdown;
  }
};

class OracleService {
 public:
  /// Serves one pinned engine forever (no hot swaps). The engine (and
  /// registry) must outlive the service. All metrics are registered under
  /// the phast_server_* prefix at construction.
  OracleService(const Phast& engine, const ServiceOptions& options,
                MetricsRegistry& metrics);

  /// Serves whatever the snapshot manager currently publishes: each batch
  /// acquires the serving snapshot once (a shared_ptr, so a concurrent
  /// CustomizeAndSwap never invalidates it mid-sweep) and stamps its
  /// responses with the snapshot's epoch. The manager must outlive the
  /// service.
  OracleService(SnapshotManager& manager, const ServiceOptions& options,
                MetricsRegistry& metrics);

  ~OracleService();

  OracleService(const OracleService&) = delete;
  OracleService& operator=(const OracleService&) = delete;

  /// Never blocks: either admits into the queue or immediately resolves the
  /// future with a shed/invalid status.
  [[nodiscard]] std::future<Response> Submit(Request request) {
    return Submit(std::move(request), nullptr);
  }

  /// Submit with a completion hook: `on_done` runs on whatever thread
  /// resolves the promise (a worker, or this thread for immediate sheds),
  /// strictly *after* the future is ready. The async front end
  /// (src/fabric/) uses it to wake its event loop instead of blocking a
  /// writer thread per connection; the hook must be cheap and non-throwing.
  [[nodiscard]] std::future<Response> Submit(Request request,
                                             std::function<void()> on_done);

  /// Synchronous convenience wrapper.
  [[nodiscard]] Response Call(Request request) {
    return Submit(std::move(request)).get();
  }

  /// Closes admission, lets workers drain the backlog, then sheds whatever
  /// no worker will ever pop. Idempotent; the destructor calls it.
  void Stop();

  [[nodiscard]] ServiceCounters Counters() const;
  [[nodiscard]] const ServiceOptions& Options() const { return options_; }

 private:
  OracleService(const Phast* engine, SnapshotManager* manager,
                const ServiceOptions& options, MetricsRegistry& metrics);
  /// One admitted request: the client's future plus admission timestamp
  /// (for latency and deadline accounting).
  struct Job {
    Request request;
    std::promise<Response> promise;
    /// Completion hook (may be empty); runs after the promise resolves.
    std::function<void()> on_done;
    double deadline_ms = 0.0;  // resolved; 0 = none
    Timer admitted;
  };

  /// LRU over full distance trees keyed by (snapshot epoch, source vertex).
  /// The epoch in the key is the stale-answer fix: after a metric swap a
  /// lookup under the new epoch can never return a tree computed under the
  /// old one, even while the flush of the old generation is still pending.
  /// Trees are shared_ptr so a hit can be fanned out after the cache entry
  /// was evicted by a racing insert.
  class TreeCache {
   public:
    explicit TreeCache(size_t capacity) : capacity_(capacity) {}

    [[nodiscard]] std::shared_ptr<const std::vector<Weight>> Lookup(
        uint64_t epoch, VertexId source);
    /// Inserts (or refreshes) a tree; returns the number of evictions.
    size_t Insert(uint64_t epoch, VertexId source,
                  std::shared_ptr<const std::vector<Weight>> tree);
    /// Drops every tree computed under an epoch older than `epoch`; returns
    /// how many were dropped. Purely a memory release — the epoch-in-key
    /// already makes stale entries unreachable.
    size_t FlushBefore(uint64_t epoch);
    [[nodiscard]] size_t Size() const;

   private:
    /// (epoch << 32) | source — sources are 32-bit VertexIds.
    static uint64_t Key(uint64_t epoch, VertexId source) {
      return (epoch << 32) | source;
    }

    const size_t capacity_;
    mutable AnnotatedMutex mu_;
    /// Most recent at the front.
    std::list<uint64_t> lru_ GUARDED_BY(mu_);
    struct Slot {
      std::list<uint64_t>::iterator lru_pos;
      std::shared_ptr<const std::vector<Weight>> tree;
    };
    std::unordered_map<uint64_t, Slot> by_key_ GUARDED_BY(mu_);
  };

  /// Per-worker workspaces are keyed by k *and* engine identity: a swap
  /// retires the old engine's workspaces (their label arrays are sized for
  /// it, and sharing across engines would leak marks between metrics).
  /// KnnSweeper restrictions are engine-bound the same way, so the pool
  /// retires them together with the workspaces.
  struct WorkspacePool {
    const Phast* engine = nullptr;
    std::unordered_map<uint32_t, Phast::Workspace> by_k;
    std::unordered_map<uint32_t, KnnSweeper> knn_by_category;
  };

  void WorkerLoop();
  void ProcessBatch(std::vector<Job>& jobs, WorkspacePool& pool);
  void RunRestrictedBatch(const Phast& engine, uint64_t epoch,
                          std::vector<Job*>& jobs);
  void RunFullBatch(const Phast& engine, uint64_t epoch,
                    std::vector<Job*>& jobs, WorkspacePool& pool);
  void RunMatrixJob(const Phast& engine, uint64_t epoch, Job& job);
  void RunPoiJob(const Phast& engine, uint64_t epoch, Job& job,
                 WorkspacePool& pool);
  void Fulfill(Job& job, Response response);
  void Shed(Job& job, ResponseStatus status, Counter& reason);

  const Phast* pinned_engine_;     // exactly one of these two is set
  SnapshotManager* manager_;
  const VertexId num_vertices_;    // constant across swaps (fixed topology)
  const ServiceOptions options_;

  BoundedQueue<Job> queue_;
  TreeCache cache_;
  /// Highest epoch whose predecessors were flushed from the cache (benign
  /// races: FlushBefore is idempotent).
  std::atomic<uint64_t> flushed_epoch_{0};
  std::vector<std::thread> workers_;
  std::atomic<bool> stopped_{false};

  Counter& admitted_;
  Counter& completed_;
  Counter& shed_total_;
  Counter& shed_queue_full_;
  Counter& shed_deadline_;
  Counter& shed_shutdown_;
  Counter& cache_hits_;
  Counter& cache_misses_;
  Counter& cache_evictions_;
  Counter& cache_swap_flushes_;
  Counter& batches_;
  Counter& rphast_batches_;
  Counter& matrix_requests_;
  Counter& poi_requests_;
  Gauge& queue_depth_;
  Gauge& cached_trees_;
  Histogram& batch_width_;
  Histogram& latency_ms_;
  Histogram& sweep_ms_;
  Histogram& upward_ms_;
};

}  // namespace phast::server

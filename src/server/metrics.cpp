#include "server/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.h"

namespace phast::server {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  Require(!bounds_.empty(), "histogram needs at least one bucket bound");
  Require(std::is_sorted(bounds_.begin(), bounds_.end()) &&
              std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                  bounds_.end(),
          "histogram bounds must be strictly increasing");
  buckets_ = std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
}

void Histogram::Observe(double value) {
  // Non-finite observations (a NaN latency from a zero-duration division,
  // +Inf from an overflowed ratio) land in the +Inf bucket and contribute
  // nothing to the sum: llround on a non-finite or out-of-range double is
  // undefined behaviour, and one poisoned sample must not turn _sum into
  // NaN for the rest of the process lifetime.
  size_t bucket = bounds_.size();  // +Inf bucket
  int64_t micros = 0;
  if (std::isfinite(value)) {
    bucket = static_cast<size_t>(
        std::upper_bound(bounds_.begin(), bounds_.end(), value) -
        bounds_.begin());
    constexpr double kMaxMicros = 9.2e18;  // stay within int64 for llround
    const double clamped = std::clamp(value * 1e6, -kMaxMicros, kMaxMicros);
    micros = static_cast<int64_t>(std::llround(clamped));
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_micros_.fetch_add(micros, std::memory_order_relaxed);
}

uint64_t Histogram::Count() const {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::Sum() const {
  return static_cast<double>(sum_micros_.load(std::memory_order_relaxed)) *
         1e-6;
}

double Histogram::Quantile(double q) const {
  const uint64_t total = Count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      if (i >= bounds_.size()) return bounds_.back();  // +Inf bucket
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double upper = bounds_[i];
      const double into =
          (rank - static_cast<double>(cumulative)) / in_bucket;
      return lower + (upper - lower) * std::clamp(into, 0.0, 1.0);
    }
    cumulative += in_bucket;
  }
  return bounds_.back();
}

std::vector<double> DefaultLatencyBucketsMs() {
  return {0.05, 0.1, 0.25, 0.5, 1.0,  2.5,   5.0,    10.0,
          25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 10000.0};
}

MetricsRegistry::Entry& MetricsRegistry::GetEntry(const std::string& name,
                                                  const std::string& help) {
  Entry& entry = metrics_[name];
  if (entry.help.empty()) entry.help = help;
  return entry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  const MutexLock lock(mu_);
  Entry& entry = GetEntry(name, help);
  Require(!entry.gauge && !entry.histogram,
          "metric '" + name + "' already registered with a different kind");
  if (!entry.counter) entry.counter = std::make_unique<Counter>();
  return *entry.counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  const MutexLock lock(mu_);
  Entry& entry = GetEntry(name, help);
  Require(!entry.counter && !entry.histogram,
          "metric '" + name + "' already registered with a different kind");
  if (!entry.gauge) entry.gauge = std::make_unique<Gauge>();
  return *entry.gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<double> bounds) {
  const MutexLock lock(mu_);
  Entry& entry = GetEntry(name, help);
  Require(!entry.counter && !entry.gauge,
          "metric '" + name + "' already registered with a different kind");
  if (!entry.histogram) {
    entry.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return *entry.histogram;
}

namespace {

/// Prometheus-style float formatting: plain decimal, no trailing noise.
std::string FormatDouble(double v) {
  std::ostringstream out;
  out.precision(12);
  out << v;
  return out.str();
}

}  // namespace

std::string MetricsRegistry::RenderPrometheus() const {
  const MutexLock lock(mu_);
  std::ostringstream out;
  for (const auto& [name, entry] : metrics_) {
    out << "# HELP " << name << " " << entry.help << "\n";
    if (entry.counter) {
      out << "# TYPE " << name << " counter\n";
      out << name << " " << entry.counter->Value() << "\n";
    } else if (entry.gauge) {
      out << "# TYPE " << name << " gauge\n";
      out << name << " " << entry.gauge->Value() << "\n";
    } else if (entry.histogram) {
      const Histogram& h = *entry.histogram;
      out << "# TYPE " << name << " histogram\n";
      uint64_t cumulative = 0;
      for (size_t i = 0; i < h.Bounds().size(); ++i) {
        cumulative += h.BucketCount(i);
        out << name << "_bucket{le=\"" << FormatDouble(h.Bounds()[i])
            << "\"} " << cumulative << "\n";
      }
      cumulative += h.BucketCount(h.Bounds().size());
      out << name << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
      out << name << "_sum " << FormatDouble(h.Sum()) << "\n";
      out << name << "_count " << h.Count() << "\n";
    }
  }
  return out.str();
}

}  // namespace phast::server

#pragma once

#include <cstdint>
#include <limits>
#include <utility>

namespace phast {

/// Deterministic, fast 64-bit PRNG (xorshift128+ variant).
///
/// Used throughout the library instead of std::mt19937 so that graph
/// generators and benchmark workloads are reproducible across platforms
/// and standard-library versions.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 to expand the seed into two non-zero state words.
    auto next = [&seed]() {
      seed += 0x9E3779B97F4A7C15ULL;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      return z ^ (z >> 31);
    };
    s0_ = next();
    s1_ = next();
    if (s0_ == 0 && s1_ == 0) s0_ = 1;
  }

  /// Uniform 64-bit value.
  [[nodiscard]] uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  [[nodiscard]] uint64_t NextBounded(uint64_t bound) {
    // Rejection-free multiply-shift; bias is negligible for bound << 2^64.
    return static_cast<uint64_t>((static_cast<__uint128_t>(Next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBounded(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform real in [0, 1).
  [[nodiscard]] double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability p.
  [[nodiscard]] bool NextBool(double p = 0.5) { return NextDouble() < p; }

 private:
  uint64_t s0_ = 0;
  uint64_t s1_ = 0;
};

/// Fisher–Yates shuffle using our deterministic RNG.
template <typename RandomIt>
void Shuffle(RandomIt first, RandomIt last, Rng& rng) {
  const auto n = last - first;
  for (auto i = n - 1; i > 0; --i) {
    const auto j = static_cast<decltype(i)>(rng.NextBounded(static_cast<uint64_t>(i) + 1));
    using std::swap;
    swap(first[i], first[j]);
  }
}

}  // namespace phast

#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

#include "util/error.h"

namespace phast {

/// STL-compatible allocator with a fixed alignment.
///
/// The SIMD multi-tree sweep loads/stores distance labels with aligned
/// SSE/AVX instructions; the k labels of each vertex start at a multiple of
/// the vector width, so the backing array must be at least 32-byte aligned.
template <typename T, size_t Alignment = 64>
class AlignedAllocator {
 public:
  using value_type = T;
  static constexpr size_t alignment = Alignment;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(size_t n) {
    if (n == 0) return nullptr;
    void* p = std::aligned_alloc(Alignment, RoundUp(n * sizeof(T)));
    if (p == nullptr) ThrowBadAlloc();
    return static_cast<T*>(p);
  }

  void deallocate(T* p, size_t) noexcept { std::free(p); }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }

 private:
  static size_t RoundUp(size_t bytes) {
    return (bytes + Alignment - 1) / Alignment * Alignment;
  }
};

/// Vector whose data() is 64-byte aligned (cache line / AVX-512 friendly).
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T, 64>>;

}  // namespace phast

#pragma once

#include <atomic>
#include <exception>

#include "util/thread_annotations.h"

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace phast {

/// Thin wrappers over OpenMP runtime queries so that library code compiles
/// and runs correctly when OpenMP is unavailable (serial fallback).

inline int MaxThreads() {
#if defined(_OPENMP)
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Number of threads in the *current* parallel team (1 outside a parallel
/// region or without OpenMP).
inline int TeamSize() {
#if defined(_OPENMP)
  return omp_get_num_threads();
#else
  return 1;
#endif
}

inline int CurrentThread() {
#if defined(_OPENMP)
  return omp_get_thread_num();
#else
  return 0;
#endif
}

inline int HardwareThreads() {
#if defined(_OPENMP)
  return omp_get_num_procs();
#else
  return 1;
#endif
}

/// Captures the first exception thrown inside an OpenMP parallel region and
/// rethrows it after the region joins. OpenMP requires exceptions to be
/// caught in the region that threw them — an escaping exception is
/// std::terminate — so parallel drivers wrap their per-iteration work in
/// Run() and call Rethrow() once the team has joined.
///
/// Threads race to store their exception; the mutex-guarded slot keeps the
/// first one and drops the rest. Once an exception is recorded, Cancelled()
/// lets the remaining iterations bail out early.
class OmpExceptionGuard {
 public:
  /// Runs `fn()`, capturing any exception it throws. Safe to call
  /// concurrently from any number of threads.
  template <typename Fn>
  void Run(Fn&& fn) EXCLUDES(mu_) {
    if (Cancelled()) return;
    try {
      fn();
    } catch (...) {
      const MutexLock lock(mu_);
      if (!first_error_) {
        first_error_ = std::current_exception();
        cancelled_.store(true, std::memory_order_relaxed);
      }
    }
  }

  /// True once any thread has recorded an exception (cheap, lock-free read;
  /// stale "false" only costs one extra iteration).
  [[nodiscard]] bool Cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Rethrows the captured exception, if any. Call after the parallel
  /// region has joined (single-threaded context).
  void Rethrow() EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    if (first_error_) std::rethrow_exception(first_error_);
  }

 private:
  AnnotatedMutex mu_;
  std::exception_ptr first_error_ GUARDED_BY(mu_);
  std::atomic<bool> cancelled_{false};  // monotonic; set under mu_ only
};

/// Scoped override of the OpenMP thread count; restores on destruction.
/// The paper's Tables II and V sweep the number of cores — benchmarks use
/// this to pin each measurement to a thread count.
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(int n) {
#if defined(_OPENMP)
    previous_ = omp_get_max_threads();
    omp_set_num_threads(n);
#else
    (void)n;
#endif
  }

  ~ScopedNumThreads() {
#if defined(_OPENMP)
    omp_set_num_threads(previous_);
#endif
  }

  ScopedNumThreads(const ScopedNumThreads&) = delete;
  ScopedNumThreads& operator=(const ScopedNumThreads&) = delete;

 private:
#if defined(_OPENMP)
  int previous_ = 1;
#endif
};

}  // namespace phast

#pragma once

#include <atomic>
#include <exception>

#include "util/thread_annotations.h"

#if defined(_OPENMP)
#include <omp.h>
#endif

/// Marks a function whose body is (mostly) an OpenMP parallel region shell.
/// Under -fsanitize=thread the shell is left uninstrumented: the
/// compiler-generated block that passes the shared() variables is written
/// by the encountering thread at region entry and read in the outlined
/// function's prologue — before any user statement can order the access —
/// and libgomp's futex-based team start gives TSan no happens-before edge,
/// so every such region reports a false race on that block. Pair with an
/// OmpTeamFence (whose operations stay instrumented, see below) so the
/// region's *payload* accesses keep real, TSan-visible ordering, and keep
/// the shell thin — code inlined into it loses instrumentation.
#define PHAST_OMP_REGION_NO_TSAN __attribute__((no_sanitize_thread))

namespace phast {

/// Thin wrappers over OpenMP runtime queries so that library code compiles
/// and runs correctly when OpenMP is unavailable (serial fallback).

inline int MaxThreads() {
#if defined(_OPENMP)
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Number of threads in the *current* parallel team (1 outside a parallel
/// region or without OpenMP).
inline int TeamSize() {
#if defined(_OPENMP)
  return omp_get_num_threads();
#else
  return 1;
#endif
}

inline int CurrentThread() {
#if defined(_OPENMP)
  return omp_get_thread_num();
#else
  return 0;
#endif
}

inline int HardwareThreads() {
#if defined(_OPENMP)
  return omp_get_num_procs();
#else
  return 1;
#endif
}

/// Captures the first exception thrown inside an OpenMP parallel region and
/// rethrows it after the region joins. OpenMP requires exceptions to be
/// caught in the region that threw them — an escaping exception is
/// std::terminate — so parallel drivers wrap their per-iteration work in
/// Run() and call Rethrow() once the team has joined.
///
/// Threads race to store their exception; the mutex-guarded slot keeps the
/// first one and drops the rest. Once an exception is recorded, Cancelled()
/// lets the remaining iterations bail out early.
class OmpExceptionGuard {
 public:
  /// Runs `fn()`, capturing any exception it throws. Safe to call
  /// concurrently from any number of threads.
  template <typename Fn>
  void Run(Fn&& fn) EXCLUDES(mu_) {
    if (Cancelled()) return;
    try {
      fn();
    } catch (...) {
      const MutexLock lock(mu_);
      if (!first_error_) {
        first_error_ = std::current_exception();
        cancelled_.store(true, std::memory_order_relaxed);
      }
    }
  }

  /// True once any thread has recorded an exception (cheap, lock-free read;
  /// stale "false" only costs one extra iteration).
  [[nodiscard]] bool Cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Rethrows the captured exception, if any. Call after the parallel
  /// region has joined (single-threaded context).
  void Rethrow() EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    if (first_error_) std::rethrow_exception(first_error_);
  }

 private:
  AnnotatedMutex mu_;
  std::exception_ptr first_error_ GUARDED_BY(mu_);
  std::atomic<bool> cancelled_{false};  // monotonic; set under mu_ only
};

/// Explicit acquire/release edges around an OpenMP parallel region.
///
/// libgomp's team barriers synchronize through raw futexes that
/// ThreadSanitizer cannot see, so back-to-back parallel regions look racy
/// to it: a worker's last access in one region appears concurrent with the
/// main thread's next access to the same memory — including the
/// compiler-generated block that passes the shared() variables, which the
/// main thread writes at every region entry. The fence closes the gap with
/// real C++ atomics, a few operations per region, not per iteration:
///
///   fence.Publish();                    // main, right before the pragma
///   #pragma omp parallel ...
///   {
///     const OmpTeamFence::Scope scope(fence);   // Enter() now, Leave() at
///     ...                                       // end of the region body
///   }
///   fence.Collect();                    // main, right after the pragma
///
/// Enter() uses the fact that the encountering thread is team member 0 and
/// writes the argument block *before* it runs the region body: thread 0
/// release-publishes the region's token from inside the body, and the other
/// members spin (briefly — thread 0 enters immediately) until they acquire
/// it, ordering everything the main thread wrote before the body with their
/// reads. Leave()→Collect() orders every worker's writes with the main
/// thread's subsequent accesses — and, transitively through the main
/// thread, with the next region's workers. One fence serves any number of
/// consecutive regions, but the workers must reach it without reading
/// shared state (take it from a function or a global, not from a shared()
/// capture), or the read that fetches the fence is itself unordered.
class OmpTeamFence {
 public:
  // The four edge operations are noinline so they remain standalone,
  // TSan-instrumented functions even when called from a region shell
  // compiled with PHAST_OMP_REGION_NO_TSAN — inlined there, the atomics
  // would lose their instrumentation and the edges would vanish from
  // TSan's view.

  /// Main thread, immediately before the pragma: opens the region's token.
  [[gnu::noinline]] void Publish() {
    token_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Every team member, first statement of the region body, before any
  /// access to shared state.
  [[gnu::noinline]] void Enter() {
    const uint64_t token = token_.load(std::memory_order_relaxed);
    if (CurrentThread() == 0) {
      entry_.store(token, std::memory_order_release);
    } else {
      while (entry_.load(std::memory_order_acquire) < token) {
      }
    }
  }

  /// Every team member, last statement of the region body, after all
  /// shared accesses. Release RMWs form one release sequence, so a single
  /// acquire load in Collect() synchronizes with every member.
  [[gnu::noinline]] void Leave() {
    arrivals_.fetch_add(1, std::memory_order_release);
  }

  /// Main thread, after the region joins: acquires every member's writes.
  [[gnu::noinline]] void Collect() {
    (void)arrivals_.load(std::memory_order_acquire);
  }

  /// Per-thread RAII for the region body: Enter() on construction, Leave()
  /// on destruction. Declare as the first statement of the region body.
  class Scope {
   public:
    explicit Scope(OmpTeamFence& fence) : fence_(fence) { fence_.Enter(); }
    ~Scope() { fence_.Leave(); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    OmpTeamFence& fence_;
  };

 private:
  std::atomic<uint64_t> token_{0};
  std::atomic<uint64_t> entry_{0};
  std::atomic<uint64_t> arrivals_{0};
};

/// Scoped override of the OpenMP thread count; restores on destruction.
/// The paper's Tables II and V sweep the number of cores — benchmarks use
/// this to pin each measurement to a thread count.
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(int n) {
#if defined(_OPENMP)
    previous_ = omp_get_max_threads();
    omp_set_num_threads(n);
#else
    (void)n;
#endif
  }

  ~ScopedNumThreads() {
#if defined(_OPENMP)
    omp_set_num_threads(previous_);
#endif
  }

  ScopedNumThreads(const ScopedNumThreads&) = delete;
  ScopedNumThreads& operator=(const ScopedNumThreads&) = delete;

 private:
#if defined(_OPENMP)
  int previous_ = 1;
#endif
};

}  // namespace phast

#pragma once

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace phast {

/// Thin wrappers over OpenMP runtime queries so that library code compiles
/// and runs correctly when OpenMP is unavailable (serial fallback).

inline int MaxThreads() {
#if defined(_OPENMP)
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Number of threads in the *current* parallel team (1 outside a parallel
/// region or without OpenMP).
inline int TeamSize() {
#if defined(_OPENMP)
  return omp_get_num_threads();
#else
  return 1;
#endif
}

inline int CurrentThread() {
#if defined(_OPENMP)
  return omp_get_thread_num();
#else
  return 0;
#endif
}

inline int HardwareThreads() {
#if defined(_OPENMP)
  return omp_get_num_procs();
#else
  return 1;
#endif
}

/// Scoped override of the OpenMP thread count; restores on destruction.
/// The paper's Tables II and V sweep the number of cores — benchmarks use
/// this to pin each measurement to a thread count.
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(int n) {
#if defined(_OPENMP)
    previous_ = omp_get_max_threads();
    omp_set_num_threads(n);
#else
    (void)n;
#endif
  }

  ~ScopedNumThreads() {
#if defined(_OPENMP)
    omp_set_num_threads(previous_);
#endif
  }

  ScopedNumThreads(const ScopedNumThreads&) = delete;
  ScopedNumThreads& operator=(const ScopedNumThreads&) = delete;

 private:
#if defined(_OPENMP)
  int previous_ = 1;
#endif
};

}  // namespace phast

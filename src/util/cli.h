#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace phast {

/// Minimal command-line parser for the examples and benchmark drivers.
///
/// Accepts --key=value and --flag forms; positional arguments are collected
/// in order. Unknown keys are kept (callers may validate with Has()).
class CommandLine {
 public:
  CommandLine(int argc, const char* const* argv);

  [[nodiscard]] bool Has(const std::string& key) const;

  [[nodiscard]] std::string GetString(const std::string& key,
                                      const std::string& fallback) const;
  [[nodiscard]] int64_t GetInt(const std::string& key, int64_t fallback) const;
  [[nodiscard]] double GetDouble(const std::string& key, double fallback) const;
  [[nodiscard]] bool GetBool(const std::string& key, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& Positional() const {
    return positional_;
  }

  [[nodiscard]] const std::string& ProgramName() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace phast

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace phast {

/// Compact dynamic bitset.
///
/// PHAST uses one visit bit per vertex for implicit distance-label
/// initialization (paper §IV-C): the upward CH search marks the vertices it
/// reaches, and the linear sweep treats unmarked labels as +infinity and
/// clears marks as it goes. std::vector<bool> is avoided because we need
/// word-level access (ClearAll via memset-like fill, popcount).
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(size_t n, bool value = false) { Resize(n, value); }

  void Resize(size_t n, bool value = false) {
    n_ = n;
    words_.assign((n + 63) / 64, value ? ~uint64_t{0} : 0);
    TrimTail();
  }

  [[nodiscard]] size_t Size() const { return n_; }

  void Set(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  void Clear(size_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }
  void Assign(size_t i, bool v) { v ? Set(i) : Clear(i); }

  [[nodiscard]] bool Get(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  [[nodiscard]] bool operator[](size_t i) const { return Get(i); }

  void ClearAll() { std::fill(words_.begin(), words_.end(), uint64_t{0}); }
  void SetAll() {
    std::fill(words_.begin(), words_.end(), ~uint64_t{0});
    TrimTail();
  }

  /// Number of set bits.
  [[nodiscard]] size_t Count() const {
    size_t c = 0;
    for (uint64_t w : words_) c += static_cast<size_t>(__builtin_popcountll(w));
    return c;
  }

  /// Raw word access for kernels that test bits directly.
  [[nodiscard]] const uint64_t* Words() const { return words_.data(); }
  [[nodiscard]] size_t NumWords() const { return words_.size(); }

  [[nodiscard]] bool AnySet() const {
    for (uint64_t w : words_)
      if (w != 0) return true;
    return false;
  }

 private:
  void TrimTail() {
    if (n_ % 64 != 0 && !words_.empty()) {
      words_.back() &= (uint64_t{1} << (n_ % 64)) - 1;
    }
  }

  size_t n_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace phast

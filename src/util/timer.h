#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace phast {

/// Monotonic wall-clock timer with millisecond/microsecond readouts.
///
/// Usage:
///   Timer t;            // starts immediately
///   ... work ...
///   double ms = t.ElapsedMs();
class Timer {
 public:
  using Clock = std::chrono::steady_clock;

  Timer() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction/Reset, in seconds.
  [[nodiscard]] double ElapsedSec() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time since construction/Reset, in milliseconds.
  [[nodiscard]] double ElapsedMs() const { return ElapsedSec() * 1e3; }

  /// Elapsed time since construction/Reset, in microseconds.
  [[nodiscard]] double ElapsedUs() const { return ElapsedSec() * 1e6; }

 private:
  Clock::time_point start_;
};

/// Accumulates elapsed time over multiple start/stop intervals.
class StopWatch {
 public:
  /// Begins an interval. A no-op while already running: the in-flight
  /// interval keeps accumulating rather than being silently discarded
  /// (restarting would under-count every Start/Start/Stop sequence).
  void Start() {
    if (running_) return;
    running_ = true;
    start_ = Timer::Clock::now();
  }

  void Stop() {
    if (!running_) return;
    total_ += std::chrono::duration<double>(Timer::Clock::now() - start_).count();
    running_ = false;
  }

  void Reset() {
    total_ = 0.0;
    running_ = false;
  }

  [[nodiscard]] bool Running() const { return running_; }

  [[nodiscard]] double TotalSec() const { return total_; }
  [[nodiscard]] double TotalMs() const { return total_ * 1e3; }

 private:
  Timer::Clock::time_point start_{};
  double total_ = 0.0;
  bool running_ = false;
};

}  // namespace phast

#include "util/cli.h"

#include <cstdlib>

#include "util/error.h"

namespace phast {

CommandLine::CommandLine(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        options_[arg.substr(2)] = "true";
      } else {
        options_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool CommandLine::Has(const std::string& key) const {
  return options_.count(key) > 0;
}

std::string CommandLine::GetString(const std::string& key,
                                   const std::string& fallback) const {
  const auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

int64_t CommandLine::GetInt(const std::string& key, int64_t fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  char* end = nullptr;
  const int64_t value = std::strtoll(it->second.c_str(), &end, 10);
  Require(end != nullptr && *end == '\0',
          "--" + key + " expects an integer, got '" + it->second + "'");
  return value;
}

double CommandLine::GetDouble(const std::string& key, double fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  Require(end != nullptr && *end == '\0',
          "--" + key + " expects a number, got '" + it->second + "'");
  return value;
}

bool CommandLine::GetBool(const std::string& key, bool fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  Require(false, "--" + key + " expects a boolean, got '" + v + "'");
  return fallback;  // unreachable
}

}  // namespace phast

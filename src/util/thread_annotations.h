#pragma once

#include <condition_variable>
#include <mutex>

/// Clang thread-safety annotations (-Wthread-safety) for the few places in
/// the library that share mutable state across threads. Under GCC (or any
/// compiler without the attributes) every macro expands to nothing, so the
/// annotations are zero-cost documentation there and a compile-time gate
/// under Clang — the `static-analysis` CI job builds with
/// -Werror=thread-safety.
///
/// Conventions (see DESIGN.md "Static analysis"):
///  - every mutex-protected member is declared GUARDED_BY(mu_);
///  - private helpers that assume the lock is held are declared
///    REQUIRES(mu_) instead of re-locking;
///  - public entry points take the lock with MutexLock (RAII) and never
///    expose guarded references.

#if defined(__clang__)
#define PHAST_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define PHAST_THREAD_ANNOTATION__(x)  // no-op outside Clang
#endif

#define CAPABILITY(x) PHAST_THREAD_ANNOTATION__(capability(x))
#define SCOPED_CAPABILITY PHAST_THREAD_ANNOTATION__(scoped_lockable)
#define GUARDED_BY(x) PHAST_THREAD_ANNOTATION__(guarded_by(x))
#define PT_GUARDED_BY(x) PHAST_THREAD_ANNOTATION__(pt_guarded_by(x))
#define REQUIRES(...) \
  PHAST_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define EXCLUDES(...) PHAST_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
#define ACQUIRE(...) PHAST_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define RELEASE(...) PHAST_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  PHAST_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define RETURN_CAPABILITY(x) PHAST_THREAD_ANNOTATION__(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  PHAST_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace phast {

/// std::mutex with capability annotations so that -Wthread-safety can track
/// which members it guards. Same interface shape as the Clang docs' mutex.h.
class CAPABILITY("mutex") AnnotatedMutex {
 public:
  AnnotatedMutex() = default;
  AnnotatedMutex(const AnnotatedMutex&) = delete;
  AnnotatedMutex& operator=(const AnnotatedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Condition variable usable with AnnotatedMutex (the serving subsystem's
/// bounded queue blocks on one). Wait() REQUIRES the mutex: the analysis
/// sees the capability held across the call, which matches the caller's
/// view — the lock is reacquired before Wait returns. Callers loop on
/// their predicate as with any condition variable.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(AnnotatedMutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's scope still owns the mutex
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// RAII lock for AnnotatedMutex; the annotation makes the analysis treat the
/// scope of the guard as "capability held".
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(AnnotatedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  AnnotatedMutex& mu_;
};

}  // namespace phast

#pragma once

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace phast {

/// Pins the calling thread to one CPU core. The paper's Table V shows that
/// on NUMA machines, PHAST without pinning loses most of its multi-core
/// scaling ("the operating system moves threads from core to core ... a
/// significant adverse effect on memory-bound applications"); benchmark
/// drivers call this per OpenMP thread when --pin is set.
///
/// Returns false when unsupported or when the core id is invalid.
inline bool PinCurrentThreadToCore(int core) {
#if defined(__linux__)
  if (core < 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(core), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)core;
  return false;
#endif
}

/// Clears any pinning (allow all cores up to `num_cores`).
inline bool UnpinCurrentThread(int num_cores) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  for (int c = 0; c < num_cores; ++c) CPU_SET(static_cast<unsigned>(c), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)num_cores;
  return false;
#endif
}

}  // namespace phast

#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace phast {

/// Online accumulator for min/max/mean/stddev plus retained samples for
/// percentile queries. Used by the benchmark harness to report per-tree
/// timing distributions.
class StatsAccumulator {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sum_ += x;
    sum_sq_ += x * x;
  }

  [[nodiscard]] size_t Count() const { return samples_.size(); }
  [[nodiscard]] double Sum() const { return sum_; }

  [[nodiscard]] double Mean() const {
    Require(!samples_.empty());
    return sum_ / static_cast<double>(samples_.size());
  }

  [[nodiscard]] double Min() const {
    Require(!samples_.empty());
    return *std::min_element(samples_.begin(), samples_.end());
  }

  [[nodiscard]] double Max() const {
    Require(!samples_.empty());
    return *std::max_element(samples_.begin(), samples_.end());
  }

  /// Population standard deviation.
  [[nodiscard]] double StdDev() const {
    Require(!samples_.empty());
    const double m = Mean();
    const double var = sum_sq_ / static_cast<double>(samples_.size()) - m * m;
    return std::sqrt(std::max(0.0, var));
  }

  /// Percentile in [0, 100] with linear interpolation between samples.
  [[nodiscard]] double Percentile(double p) const {
    Require(!samples_.empty());
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1) return sorted[0];
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
  }

  [[nodiscard]] double Median() const { return Percentile(50.0); }

  void Clear() {
    samples_.clear();
    sum_ = 0.0;
    sum_sq_ = 0.0;
  }

  [[nodiscard]] const std::vector<double>& Samples() const { return samples_; }

 private:
  static void Require(bool ok) {
    if (!ok) throw std::logic_error("StatsAccumulator: no samples");
  }

  std::vector<double> samples_;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

}  // namespace phast

#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "util/error.h"

namespace phast {

/// Online accumulator for min/max/mean/stddev plus retained samples for
/// percentile queries. Used by the benchmark harness to report per-tree
/// timing distributions.
///
/// Percentile queries sort lazily and cache the sorted copy; Add()
/// invalidates the cache. Not thread-safe (the cache mutates under const).
class StatsAccumulator {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sum_ += x;
    sum_sq_ += x * x;
    sorted_valid_ = false;
  }

  [[nodiscard]] size_t Count() const { return samples_.size(); }
  [[nodiscard]] double Sum() const { return sum_; }

  [[nodiscard]] double Mean() const {
    Require(!samples_.empty(), "StatsAccumulator::Mean needs samples");
    return sum_ / static_cast<double>(samples_.size());
  }

  [[nodiscard]] double Min() const {
    Require(!samples_.empty(), "StatsAccumulator::Min needs samples");
    return SortedSamples().front();
  }

  [[nodiscard]] double Max() const {
    Require(!samples_.empty(), "StatsAccumulator::Max needs samples");
    return SortedSamples().back();
  }

  /// Population standard deviation.
  [[nodiscard]] double StdDev() const {
    Require(!samples_.empty(), "StatsAccumulator::StdDev needs samples");
    const double m = Mean();
    const double var = sum_sq_ / static_cast<double>(samples_.size()) - m * m;
    return std::sqrt(std::max(0.0, var));
  }

  /// Percentile in [0, 100] with linear interpolation between samples.
  [[nodiscard]] double Percentile(double p) const {
    Require(!samples_.empty(), "StatsAccumulator::Percentile needs samples");
    const std::vector<double>& sorted = SortedSamples();
    if (sorted.size() == 1) return sorted[0];
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
  }

  [[nodiscard]] double Median() const { return Percentile(50.0); }

  void Clear() {
    samples_.clear();
    sorted_.clear();
    sorted_valid_ = false;
    sum_ = 0.0;
    sum_sq_ = 0.0;
  }

  [[nodiscard]] const std::vector<double>& Samples() const { return samples_; }

 private:
  [[nodiscard]] const std::vector<double>& SortedSamples() const {
    if (!sorted_valid_) {
      sorted_ = samples_;
      std::sort(sorted_.begin(), sorted_.end());
      sorted_valid_ = true;
    }
    return sorted_;
  }

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;  // cache for percentile queries
  mutable bool sorted_valid_ = false;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

}  // namespace phast

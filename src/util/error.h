#pragma once

#include <new>
#include <stdexcept>
#include <string>

namespace phast {

/// Error thrown on invalid user input (malformed files, bad parameters).
class InputError : public std::runtime_error {
 public:
  explicit InputError(const std::string& msg) : std::runtime_error(msg) {}
};

/// Validates user-facing preconditions; throws InputError on failure.
/// For internal invariants use assert() instead — Require() stays active in
/// release builds because it guards data coming from outside the library.
inline void Require(bool condition, const std::string& message) {
  if (!condition) throw InputError(message);
}

/// Centralized allocation-failure throw site. phast_lint forbids naked
/// `throw` outside this header so that every error path is greppable and
/// uniformly typed; allocators call this instead of throwing inline.
[[noreturn]] inline void ThrowBadAlloc() { throw std::bad_alloc(); }

}  // namespace phast

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <unordered_map>

namespace phast::fabric {

/// A minimal level-triggered epoll loop (DESIGN.md §12): the async front
/// end of phast_serve and phast_router. One thread runs Run(); fd handlers
/// fire on readiness; other threads (service workers completing futures)
/// call Wake() — an eventfd write — to have the wake handler run on the
/// loop thread. Level-triggered semantics keep the handlers simple: a
/// handler that does not drain an fd is simply called again.
class EventLoop {
 public:
  using FdHandler = std::function<void(uint32_t epoll_events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` for `events` (EPOLLIN/EPOLLOUT bits). The handler runs
  /// on the loop thread. Loop-thread only.
  void Add(int fd, uint32_t events, FdHandler handler);
  /// Changes the interest set (e.g. pausing EPOLLIN for backpressure,
  /// enabling EPOLLOUT while an outbound buffer drains). Loop-thread only.
  void Modify(int fd, uint32_t events);
  /// Deregisters; the fd itself stays open (the owner closes it).
  /// Loop-thread only, but safe from within any handler: removal during
  /// dispatch is deferred-safe because handlers are looked up per event.
  void Remove(int fd);

  /// Handler for Wake() ticks, run on the loop thread with the eventfd
  /// already drained.
  void OnWake(std::function<void()> handler) { wake_handler_ = std::move(handler); }

  /// Thread-safe: schedules a wake handler run on the loop thread.
  void Wake();

  /// Dispatches until Stop(). Also returns if no fds remain registered
  /// (nothing could ever become ready again).
  void Run();
  /// Thread-safe (wakes the loop if it is blocking in epoll_wait).
  void Stop();

 private:
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stopped_{false};
  std::function<void()> wake_handler_;
  std::unordered_map<int, FdHandler> handlers_;
};

}  // namespace phast::fabric

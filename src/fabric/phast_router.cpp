// phast_router — multi-process replica fan-out for the serving fabric
// (DESIGN.md §12).
//
// One router process fronts N phast_serve replicas that all map the SAME
// PHSNAP02 snapshot (one page-cache copy of the arrays, N schedulers).
// Clients speak the ordinary serving protocol (server/protocol.h) to the
// router's socket; the router:
//
//   - routes each kQuery (and kNearestPoi) to a replica by consistent hash
//     of its *source* (fabric/router.h), keeping every replica's epoch-keyed
//     tree cache hot for the sources it owns;
//   - fans each kMatrix table out by row: the source list is partitioned
//     across replicas by the same source hash
//     (PartitionMatrixSources), the per-replica sub-tables are merged back
//     into the client's row order (MergeMatrixRows), and the response epoch
//     is the max across sub-responses. A sub-table shed by any replica
//     sheds the whole table;
//   - rewrites frame ids to router-scoped ids on the way down and back, and
//     merges responses back in per-client request order;
//   - on replica death (EOF on its connection): marks the ring arc dead,
//     retries each in-flight query once on the surviving owner, and sheds
//     (kShedShutdown) when no retry target exists — so the accounting
//     identity admitted == completed + shed holds across a kill;
//   - broadcasts the epoch-coherence messages (kUpdateWeights, kSwap,
//     kEpoch, kShutdown) to every alive replica and answers the client only
//     after all acks arrive, requiring the replicas to agree on the value —
//     a swap either moves the whole fabric to the new epoch or fails loudly;
//   - serves kMetrics from its own registry, reusing the
//     phast_server_requests_{admitted,completed,shed}_total names so
//     existing load generators (phast_loadgen --check-metrics) audit the
//     fabric unchanged, plus per-replica phast_router_replica_up_<i> health
//     gauges.
//
// Everything runs on one level-triggered epoll loop (fabric/event_loop.h):
// client and replica connections are nonblocking, pipelined, and
// write-buffered with backpressure.
//
//   phast_router --snapshot=g.snap --socket=/tmp/router.sock --replicas=2
//   phast_router --socket=/tmp/router.sock --attach=/tmp/r0.sock,/tmp/r1.sock
//
// With --replicas the router spawns the phast_serve binary next to its own
// executable (override with --serve-bin) and tears the children down at
// shutdown; with --attach it fans out over externally managed replicas.
// Exit code 0 = clean shutdown, 2 = usage error.
#include <fcntl.h>
#include <signal.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "fabric/event_loop.h"
#include "fabric/router.h"
#include "server/metrics.h"
#include "server/protocol.h"
#include "server/service.h"
#include "util/cli.h"
#include "util/error.h"

namespace {

volatile std::sig_atomic_t g_signaled = 0;
void HandleSignal(int) { g_signaled = 1; }

}  // namespace

namespace phast::fabric {
namespace {

using server::MessageType;

constexpr size_t kMaxOutboundBytes = 4u << 20;

/// Byte offset of the u32 source field inside a kQuery payload
/// (u8 type, u64 id, f64 deadline, then the source).
constexpr size_t kQuerySourceOffset = 1 + 8 + 8;

/// Same for a kNearestPoi payload, whose v2 version byte sits between the
/// id and the deadline (u8 type, u64 id, u8 version, f64 deadline).
constexpr size_t kPoiSourceOffset = 1 + 8 + 1 + 8;

void PutFrameId(std::vector<uint8_t>& payload, uint64_t id) {
  Require(payload.size() >= 9, "frame too short for an id rewrite");
  std::memcpy(payload.data() + 1, &id, sizeof(id));  // LE host, as the wire
}

struct ClientSlot {
  bool ready = false;
  std::vector<uint8_t> payload;
};

struct ClientConn {
  int fd = -1;
  std::vector<uint8_t> inbuf;
  size_t in_head = 0;
  std::deque<ClientSlot> slots;  // responses leave in this order
  std::vector<uint8_t> outbuf;
  size_t out_head = 0;
  bool read_closed = false;
  bool read_paused = false;

  [[nodiscard]] size_t OutboundBytes() const {
    return outbuf.size() - out_head;
  }
};

struct Replica {
  int fd = -1;
  pid_t pid = -1;  // -1 when attached rather than spawned
  std::string socket_path;
  std::vector<uint8_t> inbuf;
  size_t in_head = 0;
  std::vector<uint8_t> outbuf;
  size_t out_head = 0;
  server::Gauge* up = nullptr;
};

/// One routed query awaiting its replica's answer. `frame` keeps the
/// forwarded payload (internal id already in place) so a replica death can
/// replay it once on the surviving owner.
struct PendingQuery {
  ClientConn* client = nullptr;  // null: client left; drop the answer
  ClientSlot* slot = nullptr;    // stable (deque) while client is alive
  uint64_t client_id = 0;
  uint32_t source = 0;
  size_t replica = 0;
  bool retried = false;
  /// Wire type of the routed frame (kQuery or kNearestPoi) — a shed must
  /// answer in the same dialect the client spoke.
  MessageType type = MessageType::kQuery;
  std::vector<uint8_t> frame;
};

/// One client kMatrix table being assembled from per-replica sub-tables.
struct MatrixOp {
  ClientConn* client = nullptr;
  ClientSlot* slot = nullptr;
  uint64_t client_id = 0;
  size_t cols = 0;
  size_t outstanding = 0;  // sub-requests still unanswered
  std::vector<uint32_t> table;  // rows x cols, scattered into as subs land
  uint64_t epoch = 0;           // max across sub-responses
  double latency_ms = 0.0;      // max across sub-responses
  server::ResponseStatus status = server::ResponseStatus::kOk;
};

/// One per-replica slice of a MatrixOp, replayable once on replica death.
struct PendingSub {
  std::shared_ptr<MatrixOp> op;
  std::vector<uint32_t> rows;  // partition row indices into the client table
  std::vector<VertexId> sub_sources;  // row sources, for the retry re-pick
  size_t replica = 0;
  bool retried = false;
  std::vector<uint8_t> frame;
};

/// One fan-out control message (kUpdateWeights/kSwap/kEpoch/kShutdown)
/// awaiting every alive replica's ack.
struct Broadcast {
  ClientConn* client = nullptr;
  ClientSlot* slot = nullptr;
  uint64_t client_id = 0;
  MessageType type = MessageType::kEpoch;
  size_t outstanding = 0;
  std::vector<uint64_t> values;  // one per value-carrying ack
};

class Router {
 public:
  Router(int listen_fd, std::vector<Replica> replicas,
         server::MetricsRegistry& metrics, uint32_t vnodes)
      : listen_fd_(listen_fd),
        replicas_(std::move(replicas)),
        ring_(replicas_.size(), vnodes),
        metrics_(metrics),
        admitted_(metrics.GetCounter("phast_server_requests_admitted_total",
                                     "Queries accepted by the router")),
        completed_(
            metrics.GetCounter("phast_server_requests_completed_total",
                               "Queries answered by a replica")),
        shed_(metrics.GetCounter("phast_server_requests_shed_total",
                                 "Queries shed by the router")),
        retries_(metrics.GetCounter(
            "phast_router_retries_total",
            "Queries replayed on another replica after a death")),
        deaths_(metrics.GetCounter("phast_router_replica_deaths_total",
                                   "Replica connections lost")),
        alive_gauge_(metrics.GetGauge("phast_router_replicas_alive",
                                      "Replicas currently serving")) {
    alive_gauge_.Set(static_cast<int64_t>(ring_.NumAlive()));
  }

  /// Returns true on clean (client-initiated) shutdown.
  bool Run() {
    // The accept loop drains until EAGAIN, which needs a nonblocking
    // listener (ListenUnix hands out a blocking one).
    const int flags = ::fcntl(listen_fd_, F_GETFL, 0);
    Require(flags >= 0 &&
                ::fcntl(listen_fd_, F_SETFL, flags | O_NONBLOCK) == 0,
            "cannot make listen socket nonblocking");
    loop_.OnWake([this] {
      if (g_signaled != 0) loop_.Stop();
    });
    loop_.Add(listen_fd_, EPOLLIN, [this](uint32_t) { OnAccept(); });
    for (size_t i = 0; i < replicas_.size(); ++i) {
      loop_.Add(replicas_[i].fd, EPOLLIN, [this, i](uint32_t events) {
        OnReplicaEvent(i, events);
        DrainDeadReplicas();
      });
    }
    loop_.Run();
    for (auto& [fd, client] : clients_) ::close(fd);
    clients_.clear();
    return got_shutdown_;
  }

 private:
  // --- client side ---------------------------------------------------------

  void OnAccept() {
    for (;;) {
      const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) return;
      auto client = std::make_unique<ClientConn>();
      client->fd = fd;
      ClientConn* raw = client.get();
      clients_.emplace(fd, std::move(client));
      loop_.Add(fd, EPOLLIN, [this, raw](uint32_t events) {
        OnClientEvent(*raw, events);
        DrainDeadReplicas();
      });
    }
  }

  void OnClientEvent(ClientConn& client, uint32_t events) {
    if ((events & (EPOLLHUP | EPOLLERR)) != 0) client.read_closed = true;
    if ((events & EPOLLIN) != 0 && !client.read_closed &&
        !client.read_paused) {
      ReadClient(client);
    }
    if (PumpClient(client)) CloseClient(client.fd);
    MaybeStop();
  }

  void ReadClient(ClientConn& client) {
    uint8_t chunk[64 * 1024];
    for (;;) {
      const ssize_t r = ::read(client.fd, chunk, sizeof(chunk));
      if (r < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        client.read_closed = true;
        break;
      }
      if (r == 0) {
        client.read_closed = true;
        break;
      }
      client.inbuf.insert(client.inbuf.end(), chunk, chunk + r);
      if (client.OutboundBytes() > kMaxOutboundBytes) break;
    }
    try {
      for (;;) {
        const size_t available = client.inbuf.size() - client.in_head;
        if (available < sizeof(uint32_t)) break;
        uint32_t len = 0;
        std::memcpy(&len, client.inbuf.data() + client.in_head, sizeof(len));
        Require(len <= server::kMaxFrameBytes,
                "protocol frame exceeds 1 GiB");
        if (available < sizeof(uint32_t) + len) break;
        const std::span<const uint8_t> payload(
            client.inbuf.data() + client.in_head + sizeof(uint32_t), len);
        client.in_head += sizeof(uint32_t) + len;
        DispatchClientFrame(client, payload);
        if (client.read_closed) break;
      }
    } catch (const std::exception&) {
      client.read_closed = true;  // malformed frame: flush what we owe, close
    }
    if (client.in_head > 0 && client.in_head * 2 >= client.inbuf.size()) {
      client.inbuf.erase(client.inbuf.begin(),
                         client.inbuf.begin() +
                             static_cast<ptrdiff_t>(client.in_head));
      client.in_head = 0;
    }
  }

  void DispatchClientFrame(ClientConn& client,
                           std::span<const uint8_t> payload) {
    const MessageType type = server::PeekType(payload);
    const uint64_t client_id = server::PeekId(payload);
    client.slots.emplace_back();
    ClientSlot* slot = &client.slots.back();

    if (type == MessageType::kQuery || type == MessageType::kNearestPoi) {
      admitted_.Inc();
      const size_t source_offset = type == MessageType::kQuery
                                       ? kQuerySourceOffset
                                       : kPoiSourceOffset;
      Require(payload.size() >= source_offset + sizeof(uint32_t),
              "short query frame");
      uint32_t source = 0;
      std::memcpy(&source, payload.data() + source_offset, sizeof(source));
      if (ring_.NumAlive() == 0) {
        ShedInto(*slot, client_id, type);
        return;
      }
      PendingQuery pending;
      pending.client = &client;
      pending.slot = slot;
      pending.client_id = client_id;
      pending.source = source;
      pending.replica = ring_.Pick(source);
      pending.type = type;
      pending.frame.assign(payload.begin(), payload.end());
      const uint64_t iid = next_internal_id_++;
      PutFrameId(pending.frame, iid);
      SendToReplica(pending.replica, pending.frame);
      pending_.emplace(iid, std::move(pending));
    } else if (type == MessageType::kMatrix) {
      admitted_.Inc();
      // Decode (validating version and size limits) so the source list can
      // be partitioned into per-replica sub-tables.
      server::QueryFrame query = server::DecodeMatrixQuery(payload);
      if (ring_.NumAlive() == 0) {
        ShedInto(*slot, client_id, type);
        return;
      }
      auto op = std::make_shared<MatrixOp>();
      op->client = &client;
      op->slot = slot;
      op->client_id = client_id;
      op->cols = query.request.targets.size();
      op->table.assign(query.request.sources.size() * op->cols, 0);
      const std::vector<MatrixPartition> partitions =
          PartitionMatrixSources(ring_, query.request.sources);
      for (const MatrixPartition& part : partitions) {
        PendingSub sub;
        sub.op = op;
        sub.rows = part.rows;
        sub.replica = part.replica;
        server::Request sub_request;
        sub_request.kind = server::RequestKind::kMatrix;
        sub_request.deadline_ms = query.request.deadline_ms;
        sub_request.targets = query.request.targets;
        sub_request.sources.reserve(part.rows.size());
        for (const uint32_t row : part.rows) {
          sub_request.sources.push_back(query.request.sources[row]);
        }
        sub.sub_sources = sub_request.sources;
        const uint64_t iid = next_internal_id_++;
        sub.frame = server::EncodeMatrixQuery(iid, sub_request);
        ++op->outstanding;
        SendToReplica(sub.replica, sub.frame);
        matrix_waits_.emplace(iid, std::move(sub));
      }
    } else if (type == MessageType::kMetrics) {
      slot->payload =
          server::EncodeMetricsText(client_id, metrics_.RenderPrometheus());
      slot->ready = true;
    } else if (type == MessageType::kUpdateWeights ||
               type == MessageType::kSwap || type == MessageType::kEpoch) {
      StartBroadcast(client, slot, client_id, type, payload);
    } else {  // kShutdown: ack only after every replica drained and acked
      got_shutdown_pending_ = true;
      client.read_closed = true;
      StartBroadcast(client, slot, client_id, MessageType::kShutdown,
                     payload);
    }
  }

  /// Fans a control frame out to every alive replica; the client's slot
  /// resolves when all acks are in (immediately when none is alive).
  void StartBroadcast(ClientConn& client, ClientSlot* slot,
                      uint64_t client_id, MessageType type,
                      std::span<const uint8_t> payload) {
    auto op = std::make_shared<Broadcast>();
    op->client = &client;
    op->slot = slot;
    op->client_id = client_id;
    op->type = type;
    for (size_t i = 0; i < replicas_.size(); ++i) {
      if (!ring_.IsAlive(i)) continue;
      std::vector<uint8_t> frame(payload.begin(), payload.end());
      const uint64_t iid = next_internal_id_++;
      PutFrameId(frame, iid);
      broadcast_waits_.emplace(iid, std::make_pair(op, i));
      ++op->outstanding;
      SendToReplica(i, frame);
    }
    if (op->outstanding == 0) CompleteBroadcast(*op);
  }

  void CompleteBroadcast(Broadcast& op) {
    if (op.type == MessageType::kShutdown) got_shutdown_ = true;
    if (op.client == nullptr) return;
    if (op.type == MessageType::kShutdown) {
      op.slot->payload =
          server::EncodeControl(MessageType::kShutdown, op.client_id);
    } else {
      // The epoch-coherence contract: every replica must report the same
      // value (same overlay seq, same epoch). Divergence is a fabric bug —
      // fail the client loudly rather than answer with one replica's view.
      bool coherent = !op.values.empty();
      for (const uint64_t v : op.values) coherent &= v == op.values.front();
      if (!coherent) {
        std::fprintf(stderr,
                     "phast_router: replicas disagree on message type %u "
                     "(%zu acks); failing the connection\n",
                     static_cast<unsigned>(op.type), op.values.size());
        op.client->read_closed = true;
        op.slot->ready = true;  // empty payload: nothing to send
        return;
      }
      op.slot->payload = server::EncodeValueReply(op.type, op.client_id,
                                                  op.values.front());
    }
    op.slot->ready = true;
  }

  void ShedInto(ClientSlot& slot, uint64_t client_id,
                MessageType type = MessageType::kQuery) {
    server::Response response;
    response.status = server::ResponseStatus::kShedShutdown;
    slot.payload = server::EncodeResponseFor(type, client_id, response);
    slot.ready = true;
    shed_.Inc();
  }

  /// Resolves a fully-answered (or shed) matrix fan-out into its client
  /// slot. The merged table leaves only when every sub-table answered ok.
  void CompleteMatrix(MatrixOp& op) {
    const bool ok = op.status == server::ResponseStatus::kOk;
    if (ok) {
      completed_.Inc();
    } else {
      shed_.Inc();
    }
    if (op.client == nullptr) return;
    server::Response response;
    response.status = op.status;
    response.epoch = op.epoch;
    response.latency_ms = op.latency_ms;
    response.rows = static_cast<uint32_t>(op.cols == 0
                                              ? 0
                                              : op.table.size() / op.cols);
    response.cols = static_cast<uint32_t>(op.cols);
    if (ok) response.distances = std::move(op.table);
    op.slot->payload = server::EncodeMatrixResponse(op.client_id, response);
    op.slot->ready = true;
  }

  /// Drains ready head slots, flushes, refreshes epoll interest. True =
  /// close the connection.
  bool PumpClient(ClientConn& client) {
    while (!client.slots.empty() && client.slots.front().ready) {
      if (!client.slots.front().payload.empty()) {
        AppendFrame(client.outbuf, client.slots.front().payload);
      }
      client.slots.pop_front();
    }
    if (!FlushFd(client.fd, client.outbuf, client.out_head)) return true;
    const bool drained = client.OutboundBytes() == 0;
    if (client.read_closed && client.slots.empty() && drained) return true;
    client.read_paused = client.OutboundBytes() > kMaxOutboundBytes;
    uint32_t events = 0;
    if (!client.read_closed && !client.read_paused) events |= EPOLLIN;
    if (!drained) events |= EPOLLOUT;
    loop_.Modify(client.fd, events);
    return false;
  }

  void CloseClient(int fd) {
    const auto it = clients_.find(fd);
    if (it == clients_.end()) return;
    ClientConn* client = it->second.get();
    // Outstanding work keeps running; the answers are dropped on arrival.
    for (auto& [iid, pending] : pending_) {
      if (pending.client == client) {
        pending.client = nullptr;
        pending.slot = nullptr;
      }
    }
    for (auto& [iid, sub] : matrix_waits_) {
      if (sub.op->client == client) {
        sub.op->client = nullptr;
        sub.op->slot = nullptr;
      }
    }
    for (auto& [iid, wait] : broadcast_waits_) {
      if (wait.first->client == client) {
        wait.first->client = nullptr;
        wait.first->slot = nullptr;
      }
    }
    loop_.Remove(fd);
    ::close(fd);
    clients_.erase(it);
    MaybeStop();
  }

  // --- replica side --------------------------------------------------------

  void OnReplicaEvent(size_t idx, uint32_t events) {
    Replica& replica = replicas_[idx];
    if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
      MarkReplicaDead(idx);
      return;
    }
    if ((events & EPOLLOUT) != 0 && !FlushReplica(idx)) {
      MarkReplicaDead(idx);
      return;
    }
    if ((events & EPOLLIN) == 0) return;
    uint8_t chunk[64 * 1024];
    bool dead = false;
    for (;;) {
      const ssize_t r = ::read(replica.fd, chunk, sizeof(chunk));
      if (r < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        dead = true;
        break;
      }
      if (r == 0) {
        dead = true;
        break;
      }
      replica.inbuf.insert(replica.inbuf.end(), chunk, chunk + r);
    }
    try {
      for (;;) {
        const size_t available = replica.inbuf.size() - replica.in_head;
        if (available < sizeof(uint32_t)) break;
        uint32_t len = 0;
        std::memcpy(&len, replica.inbuf.data() + replica.in_head,
                    sizeof(len));
        Require(len <= server::kMaxFrameBytes,
                "protocol frame exceeds 1 GiB");
        if (available < sizeof(uint32_t) + len) break;
        const std::span<const uint8_t> payload(
            replica.inbuf.data() + replica.in_head + sizeof(uint32_t), len);
        replica.in_head += sizeof(uint32_t) + len;
        HandleReplicaFrame(payload);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "phast_router: replica %zu protocol error: %s\n",
                   idx, e.what());
      dead = true;
    }
    if (replica.in_head > 0 && replica.in_head * 2 >= replica.inbuf.size()) {
      replica.inbuf.erase(replica.inbuf.begin(),
                          replica.inbuf.begin() +
                              static_cast<ptrdiff_t>(replica.in_head));
      replica.in_head = 0;
    }
    if (dead) MarkReplicaDead(idx);
    MaybeStop();
  }

  void HandleReplicaFrame(std::span<const uint8_t> payload) {
    const MessageType type = server::PeekType(payload);
    const uint64_t iid = server::PeekId(payload);
    if (type == MessageType::kQuery || type == MessageType::kNearestPoi) {
      const auto it = pending_.find(iid);
      if (it == pending_.end()) return;  // answer for a client that left
      PendingQuery pending = std::move(it->second);
      pending_.erase(it);
      completed_.Inc();
      if (pending.client != nullptr) {
        pending.slot->payload.assign(payload.begin(), payload.end());
        PutFrameId(pending.slot->payload, pending.client_id);
        pending.slot->ready = true;
        if (PumpClient(*pending.client)) CloseClient(pending.client->fd);
      }
      return;
    }
    if (type == MessageType::kMatrix) {
      const auto it = matrix_waits_.find(iid);
      if (it == matrix_waits_.end()) return;
      PendingSub sub = std::move(it->second);
      matrix_waits_.erase(it);
      const server::ResponseFrame frame =
          server::DecodeMatrixResponse(payload);
      MatrixOp& op = *sub.op;
      if (frame.response.status == server::ResponseStatus::kOk) {
        MergeMatrixRows(sub.rows, op.cols, frame.response.distances,
                        op.table);
      } else if (op.status == server::ResponseStatus::kOk) {
        op.status = frame.response.status;
      }
      op.epoch = std::max(op.epoch, frame.response.epoch);
      op.latency_ms = std::max(op.latency_ms, frame.response.latency_ms);
      if (--op.outstanding == 0) {
        CompleteMatrix(op);
        if (op.client != nullptr && PumpClient(*op.client)) {
          CloseClient(op.client->fd);
        }
      }
      return;
    }
    const auto it = broadcast_waits_.find(iid);
    if (it == broadcast_waits_.end()) return;
    const std::shared_ptr<Broadcast> op = it->second.first;
    broadcast_waits_.erase(it);
    if (type != MessageType::kShutdown) {
      op->values.push_back(server::DecodeValueReply(type, payload));
    }
    if (--op->outstanding == 0) {
      CompleteBroadcast(*op);
      if (op->client != nullptr && PumpClient(*op->client)) {
        CloseClient(op->client->fd);
      }
    }
  }

  /// Queues a death for processing outside whatever iteration noticed it
  /// (a retry during death handling may kill another replica; recursing
  /// would mutate the maps being walked).
  void MarkReplicaDead(size_t idx) {
    if (ring_.IsAlive(idx)) dead_queue_.push_back(idx);
  }

  void DrainDeadReplicas() {
    while (!dead_queue_.empty()) {
      const size_t idx = dead_queue_.front();
      dead_queue_.erase(dead_queue_.begin());
      if (!ring_.IsAlive(idx)) continue;  // duplicate notice
      ReplicaDown(idx);
    }
    MaybeStop();
  }

  void ReplicaDown(size_t idx) {
    Replica& replica = replicas_[idx];
    std::fprintf(stderr, "phast_router: replica %zu (%s) is down\n", idx,
                 replica.socket_path.c_str());
    if (replica.fd >= 0) {
      loop_.Remove(replica.fd);
      ::close(replica.fd);
      replica.fd = -1;
    }
    ring_.SetAlive(idx, false);
    replica.up->Set(0);
    alive_gauge_.Set(static_cast<int64_t>(ring_.NumAlive()));
    deaths_.Inc();
    if (replica.pid > 0) ::waitpid(replica.pid, nullptr, WNOHANG);

    // In-flight queries: replay each once on the surviving owner of its
    // source, shed when there is none (or it already had its retry).
    std::vector<uint64_t> affected;
    for (const auto& [iid, pending] : pending_) {
      if (pending.replica == idx) affected.push_back(iid);
    }
    std::vector<ClientConn*> to_pump;
    for (const uint64_t iid : affected) {
      PendingQuery& pending = pending_.at(iid);
      if (!pending.retried && ring_.NumAlive() > 0) {
        pending.retried = true;
        pending.replica = ring_.Pick(pending.source);
        retries_.Inc();
        SendToReplica(pending.replica, pending.frame);
      } else {
        if (pending.client != nullptr) {
          ShedInto(*pending.slot, pending.client_id);
          to_pump.push_back(pending.client);
        } else {
          shed_.Inc();  // client already left; keep the identity honest
        }
        pending_.erase(iid);
      }
    }

    // Matrix sub-tables in flight to the dead replica: replay each slice
    // once, whole, on the surviving owner of its first row source; a slice
    // out of retries sheds the whole table (partial tables never leave).
    std::vector<uint64_t> matrix_affected;
    for (const auto& [iid, sub] : matrix_waits_) {
      if (sub.replica == idx) matrix_affected.push_back(iid);
    }
    for (const uint64_t iid : matrix_affected) {
      PendingSub& sub = matrix_waits_.at(iid);
      if (!sub.retried && ring_.NumAlive() > 0) {
        sub.retried = true;
        sub.replica = ring_.Pick(sub.sub_sources.front());
        retries_.Inc();
        SendToReplica(sub.replica, sub.frame);
      } else {
        const std::shared_ptr<MatrixOp> op = sub.op;
        if (op->status == server::ResponseStatus::kOk) {
          op->status = server::ResponseStatus::kShedShutdown;
        }
        matrix_waits_.erase(iid);
        if (--op->outstanding == 0) {
          CompleteMatrix(*op);
          if (op->client != nullptr) to_pump.push_back(op->client);
        }
      }
    }

    // Broadcast acks this replica will never send: a dead replica cannot
    // veto (or vote in) an epoch move.
    std::vector<uint64_t> orphaned;
    for (const auto& [iid, wait] : broadcast_waits_) {
      if (wait.second == idx) orphaned.push_back(iid);
    }
    for (const uint64_t iid : orphaned) {
      const std::shared_ptr<Broadcast> op = broadcast_waits_.at(iid).first;
      broadcast_waits_.erase(iid);
      if (--op->outstanding == 0) {
        CompleteBroadcast(*op);
        if (op->client != nullptr) to_pump.push_back(op->client);
      }
    }

    for (ClientConn* client : to_pump) {
      if (clients_.count(client->fd) != 0 && PumpClient(*client)) {
        CloseClient(client->fd);
      }
    }
  }

  void SendToReplica(size_t idx, std::span<const uint8_t> payload) {
    Replica& replica = replicas_[idx];
    if (replica.fd < 0) {
      MarkReplicaDead(idx);
      return;
    }
    AppendFrame(replica.outbuf, payload);
    if (!FlushReplica(idx)) {
      MarkReplicaDead(idx);
      return;
    }
    const bool drained = replica.outbuf.size() == replica.out_head;
    loop_.Modify(replica.fd,
                 EPOLLIN | (drained ? 0u : static_cast<uint32_t>(EPOLLOUT)));
  }

  [[nodiscard]] bool FlushReplica(size_t idx) {
    Replica& replica = replicas_[idx];
    return FlushFd(replica.fd, replica.outbuf, replica.out_head);
  }

  // --- shared buffered-write helpers ---------------------------------------

  static void AppendFrame(std::vector<uint8_t>& outbuf,
                          std::span<const uint8_t> payload) {
    const uint32_t len = static_cast<uint32_t>(payload.size());
    const auto* len_bytes = reinterpret_cast<const uint8_t*>(&len);
    outbuf.insert(outbuf.end(), len_bytes, len_bytes + sizeof(len));
    outbuf.insert(outbuf.end(), payload.begin(), payload.end());
  }

  static bool FlushFd(int fd, std::vector<uint8_t>& outbuf, size_t& head) {
    while (head < outbuf.size()) {
      const ssize_t w = ::write(fd, outbuf.data() + head,
                                outbuf.size() - head);
      if (w < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        return false;
      }
      head += static_cast<size_t>(w);
    }
    if (head == outbuf.size()) {
      outbuf.clear();
      head = 0;
    } else if (head >= (1u << 20)) {
      outbuf.erase(outbuf.begin(), outbuf.begin() + static_cast<ptrdiff_t>(head));
      head = 0;
    }
    return true;
  }

  /// A shutdown stops the loop once every replica acked and every client's
  /// buffered bytes left the building.
  void MaybeStop() {
    if (!got_shutdown_pending_) return;
    if (!pending_.empty() || !matrix_waits_.empty() ||
        !broadcast_waits_.empty()) {
      return;
    }
    for (const auto& [fd, client] : clients_) {
      if (!client->slots.empty() || client->OutboundBytes() != 0) return;
    }
    loop_.Stop();
  }

  const int listen_fd_;
  std::vector<Replica> replicas_;
  ConsistentHashRing ring_;
  server::MetricsRegistry& metrics_;

  server::Counter& admitted_;
  server::Counter& completed_;
  server::Counter& shed_;
  server::Counter& retries_;
  server::Counter& deaths_;
  server::Gauge& alive_gauge_;

  EventLoop loop_;
  std::unordered_map<int, std::unique_ptr<ClientConn>> clients_;
  std::unordered_map<uint64_t, PendingQuery> pending_;
  /// internal id -> matrix sub-request awaiting its replica's sub-table.
  std::unordered_map<uint64_t, PendingSub> matrix_waits_;
  /// internal id -> (operation, replica whose ack it awaits).
  std::unordered_map<uint64_t,
                     std::pair<std::shared_ptr<Broadcast>, size_t>>
      broadcast_waits_;
  std::vector<size_t> dead_queue_;
  uint64_t next_internal_id_ = 1;
  bool got_shutdown_pending_ = false;
  bool got_shutdown_ = false;
};

/// The phast_serve binary, resolved next to the router executable unless
/// --serve-bin overrides it.
std::string ResolveServeBin(const CommandLine& cli) {
  if (cli.Has("serve-bin")) return cli.GetString("serve-bin", "");
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  Require(n > 0, "cannot resolve /proc/self/exe; pass --serve-bin");
  buf[n] = '\0';
  std::string path(buf);
  const size_t slash = path.rfind('/');
  Require(slash != std::string::npos, "unexpected executable path");
  return path.substr(0, slash + 1) + "phast_serve";
}

pid_t SpawnReplica(const std::string& serve_bin,
                   const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(serve_bin.c_str()));
  for (const std::string& arg : args) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  Require(pid >= 0, std::string("fork failed: ") + std::strerror(errno));
  if (pid == 0) {
    ::execv(serve_bin.c_str(), argv.data());
    std::fprintf(stderr, "phast_router: execv(%s) failed: %s\n",
                 serve_bin.c_str(), std::strerror(errno));
    ::_exit(127);
  }
  return pid;
}

/// Connects to a replica socket, waiting out its startup (the snapshot map
/// plus validation), and switches the fd to nonblocking.
int ConnectReplica(const std::string& path) {
  for (int attempt = 0; attempt < 400; ++attempt) {
    try {
      const int fd = server::ConnectUnix(path);
      const int flags = ::fcntl(fd, F_GETFL, 0);
      Require(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
              "cannot make replica socket nonblocking");
      return fd;
    } catch (const std::exception&) {
      ::usleep(50 * 1000);
    }
  }
  Require(false, "replica socket never came up: " + path);
  return -1;  // unreachable
}

int RouterMain(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const bool spawning = cli.Has("replicas") && cli.Has("snapshot");
  if (cli.Has("help") || !cli.Has("socket") ||
      (!spawning && !cli.Has("attach"))) {
    std::fprintf(
        stderr,
        "usage: %s --socket=SOCKPATH\n"
        "          (--snapshot=PATH --replicas=N | --attach=SOCK1,SOCK2,...)\n"
        "          [--serve-bin=PATH]         phast_serve to spawn\n"
        "          [--replica-socket-dir=DIR] where spawned replicas listen\n"
        "          [--vnodes=N]               ring points per replica\n"
        "          [--verify=full|sections|off] [--workers=N] [--max-batch=K]\n"
        "          [--queue-capacity=N] [--cache-capacity=N] [--deadline-ms=D]\n"
        "          [--rphast-max-targets=N] [--customize-threads=N]\n"
        "          [--poi=PATH]               POI index for kNearestPoi\n"
        "          (per-replica flags are forwarded to spawned replicas)\n",
        cli.ProgramName().c_str());
    return cli.Has("help") ? 0 : 2;
  }

  std::signal(SIGPIPE, SIG_IGN);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  std::vector<Replica> replicas;
  if (spawning) {
    const std::string serve_bin = ResolveServeBin(cli);
    const std::string dir =
        cli.GetString("replica-socket-dir", "/tmp/phast-fabric");
    ::mkdir(dir.c_str(), 0755);  // best effort; spawn fails loudly below
    const int64_t n = cli.GetInt("replicas", 2);
    Require(n >= 1 && n <= 64, "--replicas must be in [1, 64]");
    std::vector<std::string> forwarded;
    for (const char* flag :
         {"verify", "workers", "max-batch", "queue-capacity",
          "cache-capacity", "deadline-ms", "rphast-max-targets",
          "customize-threads", "slow-ms", "poi"}) {
      if (cli.Has(flag)) {
        forwarded.push_back("--" + std::string(flag) + "=" +
                            cli.GetString(flag, ""));
      }
    }
    for (int64_t i = 0; i < n; ++i) {
      Replica replica;
      replica.socket_path = dir + "/replica-" + std::to_string(i) + ".sock";
      // Drop any stale socket file first: the connect loop below must only
      // ever reach the replica spawned here, never a leftover server still
      // bound to the old inode.
      ::unlink(replica.socket_path.c_str());
      std::vector<std::string> args = forwarded;
      args.push_back("--snapshot=" + cli.GetString("snapshot", ""));
      args.push_back("--socket=" + replica.socket_path);
      replica.pid = SpawnReplica(serve_bin, args);
      replicas.push_back(std::move(replica));
    }
  } else {
    std::string list = cli.GetString("attach", "");
    size_t start = 0;
    while (start <= list.size() && !list.empty()) {
      const size_t comma = list.find(',', start);
      const std::string path =
          list.substr(start, comma == std::string::npos ? std::string::npos
                                                        : comma - start);
      if (!path.empty()) {
        Replica replica;
        replica.socket_path = path;
        replicas.push_back(std::move(replica));
      }
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    Require(!replicas.empty(), "--attach lists no sockets");
  }
  for (Replica& replica : replicas) {
    replica.fd = ConnectReplica(replica.socket_path);
  }

  server::MetricsRegistry metrics;
  for (size_t i = 0; i < replicas.size(); ++i) {
    replicas[i].up = &metrics.GetGauge(
        "phast_router_replica_up_" + std::to_string(i),
        "1 while replica " + std::to_string(i) + " serves");
    replicas[i].up->Set(1);
  }

  const std::string socket_path = cli.GetString("socket", "");
  const int listen_fd = server::ListenUnix(socket_path);
  std::fprintf(stderr, "phast_router: %zu replicas, listening on %s\n",
               replicas.size(), socket_path.c_str());

  // The router owns the replica pids (when spawning); remember them before
  // Router takes the replica table.
  std::vector<pid_t> children;
  for (const Replica& replica : replicas) {
    if (replica.pid > 0) children.push_back(replica.pid);
  }

  Router router(listen_fd, std::move(replicas), metrics,
                static_cast<uint32_t>(cli.GetInt("vnodes", 64)));
  const bool clean = router.Run();

  ::close(listen_fd);
  ::unlink(socket_path.c_str());
  for (const pid_t pid : children) {
    if (!clean) ::kill(pid, SIGTERM);  // interrupted: tear the fabric down
    ::waitpid(pid, nullptr, 0);
  }

  const uint64_t admitted =
      metrics.GetCounter("phast_server_requests_admitted_total", "").Value();
  const uint64_t completed =
      metrics.GetCounter("phast_server_requests_completed_total", "").Value();
  const uint64_t shed =
      metrics.GetCounter("phast_server_requests_shed_total", "").Value();
  std::fprintf(stderr,
               "phast_router: done (admitted=%llu completed=%llu "
               "shed=%llu)\n",
               static_cast<unsigned long long>(admitted),
               static_cast<unsigned long long>(completed),
               static_cast<unsigned long long>(shed));
  return 0;
}

}  // namespace
}  // namespace phast::fabric

int main(int argc, char** argv) {
  return phast::fabric::RouterMain(argc, argv);
}

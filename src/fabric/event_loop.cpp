#include "fabric/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "util/error.h"

namespace phast::fabric {

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  Require(epoll_fd_ >= 0,
          std::string("epoll_create1 failed: ") + std::strerror(errno));
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    const std::string err = std::strerror(errno);
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    Require(false, "eventfd failed: " + err);
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  Require(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0,
          std::string("epoll_ctl(wake) failed: ") + std::strerror(errno));
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::Add(int fd, uint32_t events, FdHandler handler) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  Require(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0,
          std::string("epoll_ctl(add) failed: ") + std::strerror(errno));
  handlers_[fd] = std::move(handler);
}

void EventLoop::Modify(int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  Require(::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0,
          std::string("epoll_ctl(mod) failed: ") + std::strerror(errno));
}

void EventLoop::Remove(int fd) {
  // The fd may already be gone (closed peer); EBADF/ENOENT are benign here.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

void EventLoop::Wake() {
  const uint64_t one = 1;
  // A full eventfd counter still wakes the loop; short writes impossible.
  [[maybe_unused]] const ssize_t w = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::Stop() {
  stopped_.store(true, std::memory_order_release);
  Wake();
}

void EventLoop::Run() {
  epoll_event events[64];
  while (!stopped_.load(std::memory_order_acquire)) {
    if (handlers_.empty()) return;  // nothing can ever become ready
    // Bounded wait so an external stop flag flipped between epoll_wait
    // calls (signal delivered while dispatching) is noticed within half a
    // second even though its EINTR was consumed elsewhere.
    const int n = ::epoll_wait(epoll_fd_, events, 64, /*timeout_ms=*/500);
    if (n == 0) {
      if (wake_handler_) wake_handler_();
      continue;
    }
    if (n < 0) {
      if (errno == EINTR) {
        // A signal interrupted the wait (e.g. SIGTERM): give the wake
        // handler a chance to notice an external stop flag.
        if (wake_handler_) wake_handler_();
        continue;
      }
      Require(false, std::string("epoll_wait failed: ") + std::strerror(errno));
    }
    for (int i = 0; i < n; ++i) {
      if (stopped_.load(std::memory_order_acquire)) return;
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t count = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(wake_fd_, &count, sizeof(count));
        if (wake_handler_) wake_handler_();
        continue;
      }
      // Re-resolve per event: an earlier handler in this batch may have
      // removed this fd (e.g. closed a connection the router shed).
      const auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;
      it->second(events[i].events);
    }
  }
}

}  // namespace phast::fabric

// phast_serve — the distance-oracle replica daemon.
//
// Maps a snapshot artifact (see phast_prepare), rebuilds the PHAST engine
// with zero preprocessing, and serves the length-prefixed protocol
// (server/protocol.h) either over a Unix-domain socket or over the
// stdin/stdout pipe. All scheduling — batching, deadlines, shedding, the
// tree cache — lives in OracleService; this binary is transport + lifecycle.
//
//   phast_serve --snapshot=country.snap --socket=/tmp/phast.sock
//   phast_serve --snapshot=country.snap --stdio   # single pipe connection
//
// A PHSNAP02 snapshot is mmap-ed and served zero-copy: the engine's arrays
// are read-only views straight into the page cache, so N replicas over one
// file share one physical copy and cold start costs O(TOC). --verify picks
// the integrity/start-time tradeoff (full | sections | off; see
// fabric/mapping.h). A PHSNAP01 snapshot falls back to a copy-load out of
// the same mapping.
//
// A customizable snapshot (phast_prepare --customizable) is served through a
// SnapshotManager: clients may stream kUpdateWeights frames and trigger
// kSwap, which customizes the hierarchy to the pending overlay and
// hot-swaps the engine with zero dropped requests (epoch-versioned reads,
// DESIGN.md §10). Epoch 1 still serves zero-copy from the mapping; every
// customized epoch owns its arrays. Other snapshots pin one engine.
//
// Socket connections are multiplexed by one level-triggered epoll loop
// (fabric/serve_loop.h): pipelined requests, ordered responses, write
// backpressure — no thread per connection. --stdio keeps the synchronous
// single-pipe loop for harnesses that drive the daemon over a pipe pair.
//
// Observability (DESIGN.md §8): --trace-out=FILE enables scoped-span
// tracing for the process lifetime and writes a Chrome trace at shutdown
// (including the fabric.map cold-start span); --slow-ms=D logs completed
// requests at or above D ms to stderr; --startup-profile runs one profiled
// sweep and logs its summary at startup.
//
// Runs until a client sends a shutdown frame (or SIGINT/SIGTERM, or EOF in
// --stdio mode). Exit code 0 = clean shutdown, 2 = usage error.
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <optional>
#include <string>

#include "apps/poi.h"
#include "fabric/mapping.h"
#include "fabric/serve_loop.h"
#include "obs/sweep_profile.h"
#include "obs/trace.h"
#include "phast/phast.h"
#include "server/protocol.h"
#include "server/service.h"
#include "server/snapshot.h"
#include "server/snapshot_manager.h"
#include "util/cli.h"
#include "util/timer.h"

namespace {

volatile std::sig_atomic_t g_signaled = 0;
void HandleSignal(int) { g_signaled = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace phast;
  const CommandLine cli(argc, argv);
  if (cli.Has("help") || !cli.Has("snapshot") ||
      (!cli.Has("socket") && !cli.GetBool("stdio", false))) {
    std::fprintf(
        stderr,
        "usage: %s --snapshot=PATH (--socket=SOCKPATH | --stdio)\n"
        "          [--verify=full|sections|off]  integrity work at startup\n"
        "          [--workers=N] [--max-batch=K] [--queue-capacity=N]\n"
        "          [--cache-capacity=N] [--deadline-ms=D]\n"
        "          [--rphast-max-targets=N]\n"
        "          [--poi=PATH]  PHPOI01 bucket index enabling kNearestPoi\n"
        "          [--customize-threads=N]  threads per kSwap customization\n"
        "          [--trace-out=FILE] [--slow-ms=D] [--startup-profile]\n",
        cli.ProgramName().c_str());
    return cli.Has("help") ? 0 : 2;
  }

  std::signal(SIGPIPE, SIG_IGN);  // torn client writes are handled inline
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  const std::string trace_out = cli.GetString("trace-out", "");
  if (!trace_out.empty()) obs::EnableTracing(true);
  const bool startup_profile = cli.GetBool("startup-profile", false);

  const Timer load;
  // The mapping outlives everything below: a zero-copy engine's spans alias
  // it for the whole process lifetime.
  const fabric::MappedSnapshot mapped(
      cli.GetString("snapshot", ""),
      fabric::ParseVerifyMode(cli.GetString("verify", "sections")));

  // A customizable snapshot (hierarchy + graph sections) is served through
  // the hot-swap path; anything else pins a single engine for the process
  // lifetime. Metrics must outlive the manager (it registers gauges).
  server::MetricsRegistry metrics;
  std::optional<server::SnapshotManager> manager;
  std::optional<Phast> pinned;
  if (mapped.IsZeroCopy()) {
    PhastLayoutView view = mapped.LayoutView();
    // collect_profile is runtime-only (never serialized); opting in makes
    // every served batch carry a per-level profile in its workspace.
    view.options.collect_profile = startup_profile;
    const server::SnapshotMeta meta = mapped.Image().Meta();
    if (meta.has_graph != 0 && meta.has_ch != 0) {
      // Graph and hierarchy are mutated per-metric, so they are copied out
      // of the mapping; the epoch-1 engine itself stays a view.
      manager.emplace(Phast(view, mapped.Validation()),
                      server::DecodeSnapshotGraph(mapped.Image()),
                      server::DecodeSnapshotCH(mapped.Image()), metrics);
    } else {
      pinned.emplace(view, mapped.Validation());
    }
  } else {
    server::Snapshot snapshot = mapped.CopyDecode();
    snapshot.layout.options.collect_profile = startup_profile;
    if (snapshot.has_graph && snapshot.has_ch) {
      manager.emplace(std::move(snapshot), metrics);
    } else {
      pinned.emplace(std::move(snapshot.layout));
    }
  }
  const bool customizable = manager.has_value();
  // Valid for the startup log and profile only: after serving starts, a
  // swap may retire this engine.
  const Phast& engine = customizable ? manager->Current()->engine : *pinned;
  std::fprintf(
      stderr,
      "phast_serve: %u vertices, %u levels, %s in %.1f ms "
      "(%llu payload bytes verified)%s\n",
      engine.NumVertices(), engine.NumLevels(),
      mapped.IsZeroCopy() ? "mapped zero-copy" : "copy-loaded",
      load.ElapsedMs(),
      static_cast<unsigned long long>(mapped.PayloadBytesVerified()),
      customizable ? " (customizable)" : "");

  if (startup_profile) {
    // One profiled sweep up front: logs the level structure (Figure 1
    // shape) so a serve log records the instance's sweep character.
    Phast::Workspace ws = engine.MakeWorkspace(1);
    engine.ComputeTree(0, ws);
    const obs::SweepProfile& profile = ws.Profile();
    std::fprintf(stderr,
                 "phast_serve: startup profile: %zu levels, %llu arcs, "
                 "upward %.3f ms (%llu pops), sweep %.3f ms\n",
                 profile.levels.size(),
                 static_cast<unsigned long long>(profile.TotalArcs()),
                 static_cast<double>(profile.upward.nanos) * 1e-6,
                 static_cast<unsigned long long>(profile.upward.queue_pops),
                 static_cast<double>(profile.sweep_nanos) * 1e-6);
  }

  server::ServiceOptions options;
  options.num_workers = static_cast<uint32_t>(cli.GetInt("workers", 2));
  options.max_batch = static_cast<uint32_t>(cli.GetInt("max-batch", 8));
  options.queue_capacity =
      static_cast<size_t>(cli.GetInt("queue-capacity", 256));
  options.cache_capacity =
      static_cast<size_t>(cli.GetInt("cache-capacity", 8));
  options.default_deadline_ms = cli.GetDouble("deadline-ms", 0.0);
  options.rphast_max_targets =
      static_cast<size_t>(cli.GetInt("rphast-max-targets", 0));

  // Without an index kNearestPoi requests are rejected as invalid; the
  // kMatrix workload needs no sidecar.
  std::optional<PoiIndex> poi;
  if (cli.Has("poi")) {
    poi.emplace(ReadPoiFile(cli.GetString("poi", "")));
    Require(poi->NumVertices() == engine.NumVertices(),
            "POI index was built for a different snapshot");
    options.poi = &*poi;
    std::fprintf(stderr, "phast_serve: poi index: %u categories, %zu pois\n",
                 poi->NumCategories(), poi->TotalPois());
  }

  std::optional<server::OracleService> service;
  if (customizable) {
    service.emplace(*manager, options, metrics);
  } else {
    service.emplace(*pinned, options, metrics);
  }
  fabric::FrontEndOptions fe_options;
  fe_options.conn.slow_ms = cli.GetDouble("slow-ms", 0.0);
  fe_options.conn.manager = customizable ? &*manager : nullptr;
  fe_options.conn.customize_threads =
      static_cast<uint32_t>(cli.GetInt("customize-threads", 0));

  const auto dump_trace = [&trace_out] {
    if (trace_out.empty()) return;
    obs::WriteChromeTraceFile(trace_out);
    std::fprintf(stderr, "phast_serve: trace written to %s (%zu spans, %llu "
                 "dropped)\n",
                 trace_out.c_str(), obs::CollectSpans().size(),
                 static_cast<unsigned long long>(obs::DroppedSpanCount()));
  };

  if (cli.GetBool("stdio", false)) {
    server::ServeConnection(STDIN_FILENO, STDOUT_FILENO, *service, metrics,
                            fe_options.conn);
    service->Stop();
    dump_trace();
    std::fprintf(stderr, "phast_serve: pipe closed, exiting\n");
    return 0;
  }

  const std::string socket_path = cli.GetString("socket", "");
  const int listen_fd = server::ListenUnix(socket_path);
  std::fprintf(stderr, "phast_serve: listening on %s\n", socket_path.c_str());

  fabric::RunFrontEnd(listen_fd, *service, metrics, fe_options, &g_signaled);
  ::close(listen_fd);
  ::unlink(socket_path.c_str());
  service->Stop();
  dump_trace();

  const server::ServiceCounters c = service->Counters();
  std::fprintf(stderr,
               "phast_serve: done (admitted=%llu completed=%llu shed=%llu)\n",
               static_cast<unsigned long long>(c.admitted),
               static_cast<unsigned long long>(c.completed),
               static_cast<unsigned long long>(c.Shed()));
  return 0;
}

#include "fabric/serve_loop.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <future>
#include <memory>
#include <unordered_map>
#include <vector>

#include "fabric/event_loop.h"
#include "util/error.h"

namespace phast::fabric {
namespace {

using server::MessageType;
using server::Response;

/// One response slot in a connection's ordered queue: pre-encoded bytes
/// (control replies) or a pending query future. Responses leave in slot
/// order no matter which order the batching scheduler resolves them.
struct Slot {
  std::vector<uint8_t> ready;
  std::future<Response> future;
  uint64_t id = 0;
  VertexId source = 0;
  /// Wire type of the request, so the response re-encodes as its match
  /// (kQuery / kMatrix / kNearestPoi frames differ).
  MessageType type = MessageType::kQuery;
};

struct Connection {
  int fd = -1;
  std::vector<uint8_t> inbuf;
  size_t in_head = 0;  // parse offset into inbuf
  std::deque<Slot> slots;
  std::vector<uint8_t> outbuf;
  size_t out_head = 0;  // flush offset into outbuf
  bool read_paused = false;   // backpressure: outbuf over the cap
  bool read_closed = false;   // EOF, protocol error, or post-shutdown
  bool shutdown_when_flushed = false;

  [[nodiscard]] size_t OutboundBytes() const {
    return outbuf.size() - out_head;
  }
};

class FrontEnd {
 public:
  FrontEnd(int listen_fd, server::OracleService& service,
           server::MetricsRegistry& metrics, const FrontEndOptions& options,
           const volatile std::sig_atomic_t* stop_signal)
      : listen_fd_(listen_fd),
        service_(service),
        metrics_(metrics),
        options_(options),
        stop_signal_(stop_signal),
        connections_gauge_(metrics.GetGauge(
            "phast_server_open_connections",
            "Connections currently registered with the event loop")) {}

  bool Serve() {
    // The accept loop drains until EAGAIN, which needs a nonblocking
    // listener (ListenUnix hands out a blocking one).
    const int flags = ::fcntl(listen_fd_, F_GETFL, 0);
    Require(flags >= 0 &&
                ::fcntl(listen_fd_, F_SETFL, flags | O_NONBLOCK) == 0,
            "cannot make listen socket nonblocking");
    loop_.OnWake([this] { OnWake(); });
    loop_.Add(listen_fd_, EPOLLIN, [this](uint32_t) { OnAccept(); });
    loop_.Run();
    for (auto& [fd, conn] : conns_) ::close(fd);
    conns_.clear();
    connections_gauge_.Set(0);
    return got_shutdown_;
  }

  /// Wake() is async-signal-safe (one eventfd write), so signal handlers
  /// may poke the loop through this.
  EventLoop& Loop() { return loop_; }

 private:
  void OnWake() {
    if (stop_signal_ != nullptr && *stop_signal_ != 0) {
      loop_.Stop();
      return;
    }
    // Completions do not say which connection they belong to — pump them
    // all. Connection counts per process stay small (the fabric scales by
    // replicas, not by fan-in), so this is a handful of head-of-queue
    // future polls.
    std::vector<int> close_list;
    for (auto& [fd, conn] : conns_) {
      if (Pump(*conn)) close_list.push_back(fd);
    }
    for (const int fd : close_list) Close(fd);
  }

  void OnAccept() {
    for (;;) {
      const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) return;  // EAGAIN (drained) or transient error: next tick
      auto conn = std::make_unique<Connection>();
      conn->fd = fd;
      Connection* raw = conn.get();
      conns_.emplace(fd, std::move(conn));
      connections_gauge_.Set(static_cast<int64_t>(conns_.size()));
      loop_.Add(fd, EPOLLIN, [this, raw](uint32_t events) {
        OnConnectionEvent(*raw, events);
      });
    }
  }

  void OnConnectionEvent(Connection& conn, uint32_t events) {
    if ((events & (EPOLLHUP | EPOLLERR)) != 0) conn.read_closed = true;
    if ((events & EPOLLIN) != 0 && !conn.read_closed && !conn.read_paused) {
      ReadAndDispatch(conn);
    }
    if (Pump(conn)) Close(conn.fd);
  }

  void ReadAndDispatch(Connection& conn) {
    uint8_t chunk[64 * 1024];
    for (;;) {
      const ssize_t r = ::read(conn.fd, chunk, sizeof(chunk));
      if (r < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        conn.read_closed = true;
        break;
      }
      if (r == 0) {
        conn.read_closed = true;
        break;
      }
      conn.inbuf.insert(conn.inbuf.end(), chunk, chunk + r);
      // A pipelining client can stuff many frames into one read; stop
      // pulling more once backpressure kicks in mid-buffer.
      if (conn.OutboundBytes() > options_.max_outbound_bytes) break;
    }
    ParseFrames(conn);
  }

  void ParseFrames(Connection& conn) {
    try {
      for (;;) {
        const size_t available = conn.inbuf.size() - conn.in_head;
        if (available < sizeof(uint32_t)) break;
        uint32_t len = 0;
        std::memcpy(&len, conn.inbuf.data() + conn.in_head, sizeof(len));
        Require(len <= server::kMaxFrameBytes,
                "protocol frame exceeds 1 GiB");
        if (available < sizeof(uint32_t) + len) break;
        const std::span<const uint8_t> payload(
            conn.inbuf.data() + conn.in_head + sizeof(uint32_t), len);
        conn.in_head += sizeof(uint32_t) + len;
        Dispatch(conn, payload);
        if (conn.read_closed) break;  // shutdown: later frames are ignored
      }
    } catch (const std::exception&) {
      // Malformed frame: stop reading, flush what we owe, close.
      conn.read_closed = true;
    }
    // Compact once the parsed prefix dominates the buffer.
    if (conn.in_head > 0 && conn.in_head * 2 >= conn.inbuf.size()) {
      conn.inbuf.erase(conn.inbuf.begin(),
                       conn.inbuf.begin() +
                           static_cast<ptrdiff_t>(conn.in_head));
      conn.in_head = 0;
    }
  }

  void Dispatch(Connection& conn, std::span<const uint8_t> payload) {
    const MessageType type = server::PeekType(payload);
    Slot slot;
    slot.id = server::PeekId(payload);
    if (type == MessageType::kQuery || type == MessageType::kMatrix ||
        type == MessageType::kNearestPoi) {
      server::QueryFrame query =
          type == MessageType::kQuery     ? server::DecodeQuery(payload)
          : type == MessageType::kMatrix  ? server::DecodeMatrixQuery(payload)
                                          : server::DecodePoiQuery(payload);
      // The wire frame id is the request-scoped trace id, as in the
      // synchronous front end.
      query.request.trace_id = query.id;
      slot.source = query.request.source;
      slot.type = type;
      slot.future = service_.Submit(std::move(query.request),
                                    [this] { loop_.Wake(); });
    } else if (type == MessageType::kMetrics) {
      slot.ready =
          server::EncodeMetricsText(slot.id, metrics_.RenderPrometheus());
    } else if (type == MessageType::kUpdateWeights) {
      Require(options_.conn.manager != nullptr,
              "weight updates need a customizable snapshot "
              "(phast_prepare --customizable)");
      const std::vector<server::WeightUpdate> updates =
          server::DecodeWeightUpdates(payload);
      const uint64_t seq = options_.conn.manager->UpdateWeights(updates);
      slot.ready =
          server::EncodeValueReply(MessageType::kUpdateWeights, slot.id, seq);
    } else if (type == MessageType::kSwap) {
      Require(options_.conn.manager != nullptr,
              "snapshot swaps need a customizable snapshot "
              "(phast_prepare --customizable)");
      // Blocks the loop for the build; see the header contract.
      const uint64_t epoch = options_.conn.manager->CustomizeAndSwap(
          options_.conn.customize_threads);
      slot.ready =
          server::EncodeValueReply(MessageType::kSwap, slot.id, epoch);
    } else if (type == MessageType::kEpoch) {
      const uint64_t epoch = options_.conn.manager != nullptr
                                 ? options_.conn.manager->Epoch()
                                 : 0;
      slot.ready =
          server::EncodeValueReply(MessageType::kEpoch, slot.id, epoch);
    } else {
      slot.ready = server::EncodeControl(MessageType::kShutdown, slot.id);
      conn.shutdown_when_flushed = true;
      conn.read_closed = true;
    }
    conn.slots.push_back(std::move(slot));
  }

  /// Moves resolved head slots into the outbound buffer, flushes, and
  /// refreshes epoll interest. Returns true when the connection is done
  /// and should be closed.
  bool Pump(Connection& conn) {
    while (!conn.slots.empty()) {
      Slot& head = conn.slots.front();
      if (!head.ready.empty()) {
        AppendFrame(conn, head.ready);
      } else if (head.future.wait_for(std::chrono::seconds(0)) ==
                 std::future_status::ready) {
        const Response response = head.future.get();
        if (options_.conn.slow_ms > 0.0 &&
            response.latency_ms >= options_.conn.slow_ms) {
          std::fprintf(stderr,
                       "phast_serve: slow request trace_id=%llu source=%u "
                       "status=%s latency_ms=%.3f\n",
                       static_cast<unsigned long long>(head.id), head.source,
                       server::ToString(response.status),
                       response.latency_ms);
        }
        AppendFrame(conn,
                    server::EncodeResponseFor(head.type, head.id, response));
      } else {
        break;  // head still computing; later slots must wait their turn
      }
      conn.slots.pop_front();
    }

    if (!Flush(conn)) return true;  // peer is gone

    const bool drained = conn.OutboundBytes() == 0;
    if (conn.shutdown_when_flushed && conn.slots.empty() && drained) {
      got_shutdown_ = true;
      loop_.Stop();
      return false;  // Serve() closes everything after Run returns
    }
    if (conn.read_closed && conn.slots.empty() && drained) return true;

    // Backpressure: pause reads while the peer is behind on draining.
    conn.read_paused = conn.OutboundBytes() > options_.max_outbound_bytes;
    uint32_t events = 0;
    if (!conn.read_closed && !conn.read_paused) events |= EPOLLIN;
    if (!drained) events |= EPOLLOUT;
    loop_.Modify(conn.fd, events);
    return false;
  }

  void AppendFrame(Connection& conn, std::span<const uint8_t> payload) {
    const uint32_t len = static_cast<uint32_t>(payload.size());
    const auto* len_bytes = reinterpret_cast<const uint8_t*>(&len);
    conn.outbuf.insert(conn.outbuf.end(), len_bytes, len_bytes + sizeof(len));
    conn.outbuf.insert(conn.outbuf.end(), payload.begin(), payload.end());
  }

  /// Writes as much outbound as the socket takes. False = fatal write
  /// error (connection must close).
  bool Flush(Connection& conn) {
    while (conn.out_head < conn.outbuf.size()) {
      const ssize_t w = ::write(conn.fd, conn.outbuf.data() + conn.out_head,
                                conn.outbuf.size() - conn.out_head);
      if (w < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        return false;
      }
      conn.out_head += static_cast<size_t>(w);
    }
    if (conn.out_head == conn.outbuf.size()) {
      conn.outbuf.clear();
      conn.out_head = 0;
    } else if (conn.out_head >= (1u << 20)) {
      conn.outbuf.erase(conn.outbuf.begin(),
                        conn.outbuf.begin() +
                            static_cast<ptrdiff_t>(conn.out_head));
      conn.out_head = 0;
    }
    return true;
  }

  void Close(int fd) {
    loop_.Remove(fd);
    ::close(fd);
    conns_.erase(fd);
    connections_gauge_.Set(static_cast<int64_t>(conns_.size()));
  }

  const int listen_fd_;
  server::OracleService& service_;
  server::MetricsRegistry& metrics_;
  const FrontEndOptions options_;
  const volatile std::sig_atomic_t* stop_signal_;
  server::Gauge& connections_gauge_;

  EventLoop loop_;
  std::unordered_map<int, std::unique_ptr<Connection>> conns_;
  bool got_shutdown_ = false;
};

}  // namespace

bool RunFrontEnd(int listen_fd, server::OracleService& service,
                 server::MetricsRegistry& metrics,
                 const FrontEndOptions& options,
                 const volatile std::sig_atomic_t* stop_signal) {
  FrontEnd front_end(listen_fd, service, metrics, options, stop_signal);
  return front_end.Serve();
}

}  // namespace phast::fabric

#include "fabric/router.h"

#include <algorithm>

namespace phast::fabric {

ConsistentHashRing::ConsistentHashRing(size_t num_replicas, uint32_t vnodes)
    : alive_(num_replicas, true), num_alive_(num_replicas) {
  Require(num_replicas > 0, "hash ring needs at least one replica");
  Require(vnodes > 0, "hash ring needs at least one virtual node");
  ring_.reserve(num_replicas * vnodes);
  for (uint32_t replica = 0; replica < num_replicas; ++replica) {
    for (uint32_t v = 0; v < vnodes; ++v) {
      // Derive each point from (replica, vnode) so the placement is stable
      // under any replica count: adding replica N never moves the points of
      // replicas 0..N-1.
      const uint64_t hash =
          HashKey((static_cast<uint64_t>(replica) << 32) | v);
      ring_.push_back(Point{hash, replica});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    return a.hash < b.hash || (a.hash == b.hash && a.replica < b.replica);
  });
}

void ConsistentHashRing::SetAlive(size_t replica, bool alive) {
  Require(replica < alive_.size(), "replica index out of range");
  if (alive_[replica] == alive) return;
  alive_[replica] = alive;
  num_alive_ += alive ? 1 : -1;
}

size_t ConsistentHashRing::Pick(uint64_t key) const {
  return PickFrom(key, alive_.size());  // no exclusion
}

size_t ConsistentHashRing::PickExcluding(uint64_t key, size_t excluded) const {
  return PickFrom(key, excluded);
}

std::vector<MatrixPartition> PartitionMatrixSources(
    const ConsistentHashRing& ring, const std::vector<uint32_t>& sources) {
  std::vector<MatrixPartition> partitions;
  std::vector<size_t> slot_of(ring.NumReplicas(), SIZE_MAX);
  for (uint32_t row = 0; row < sources.size(); ++row) {
    const size_t replica = ring.Pick(sources[row]);
    if (slot_of[replica] == SIZE_MAX) {
      slot_of[replica] = partitions.size();
      partitions.push_back(MatrixPartition{replica, {}});
    }
    partitions[slot_of[replica]].rows.push_back(row);
  }
  return partitions;
}

void MergeMatrixRows(const std::vector<uint32_t>& rows, size_t cols,
                     const std::vector<uint32_t>& sub_table,
                     std::vector<uint32_t>& table) {
  Require(sub_table.size() == rows.size() * cols,
          "matrix sub-table does not match its row partition");
  for (size_t i = 0; i < rows.size(); ++i) {
    const size_t dst = static_cast<size_t>(rows[i]) * cols;
    Require(dst + cols <= table.size(),
            "matrix row partition exceeds the client table");
    std::copy(sub_table.begin() + static_cast<ptrdiff_t>(i * cols),
              sub_table.begin() + static_cast<ptrdiff_t>((i + 1) * cols),
              table.begin() + static_cast<ptrdiff_t>(dst));
  }
}

size_t ConsistentHashRing::PickFrom(uint64_t key, size_t excluded) const {
  Require(num_alive_ > (excluded < alive_.size() && alive_[excluded] ? 1u : 0u),
          "no alive replica to route to");
  const uint64_t h = HashKey(key);
  // First ring point at or after h, wrapping; skip dead/excluded owners.
  const auto start = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const Point& p, uint64_t value) { return p.hash < value; });
  const size_t begin = static_cast<size_t>(start - ring_.begin());
  for (size_t i = 0; i < ring_.size(); ++i) {
    const Point& p = ring_[(begin + i) % ring_.size()];
    if (p.replica == excluded || !alive_[p.replica]) continue;
    return p.replica;
  }
  Require(false, "no alive replica to route to");
  return 0;  // unreachable
}

}  // namespace phast::fabric

// phast_snap — snapshot artifact inspector and converter.
//
//   phast_snap --in=g.snap                      # print header + TOC
//   phast_snap --in=g.snap --check              # also recompute checksums
//   phast_snap --in=v1.snap --convert=v2.snap   # rewrite as PHSNAP02
//   phast_snap --in=v2.snap --convert=v1.snap --format=phsnap01
//
// Inspection maps the file (never slurps it) and prints, per section: id,
// name, offset, size, page alignment, and — under --check — whether the
// stored FNV checksum matches the payload. Conversion is a decode +
// re-encode through the in-memory Snapshot, so it works in both directions
// and re-derives every checksum; the engine arrays are byte-identical
// across the round trip (the formats differ only in placement).
//
// Exit code 0 = ok, 1 = integrity failure under --check, 2 = usage error.
#include <cinttypes>
#include <cstdio>
#include <string>

#include "fabric/mapping.h"
#include "server/snapshot.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace phast;
  const CommandLine cli(argc, argv);
  if (cli.Has("help") || !cli.Has("in")) {
    std::printf(
        "usage: %s --in=SNAPSHOT [--check] [--convert=OUT]\n"
        "          [--format=phsnap01|phsnap02]  target format for --convert\n"
        "                                        (default phsnap02)\n",
        cli.ProgramName().c_str());
    return cli.Has("help") ? 0 : 2;
  }

  const bool check = cli.GetBool("check", false);
  // Structural (bounds/alignment) problems throw right here; checksum work
  // is deferred so --check can report per section instead of aborting on
  // the first bad byte.
  const fabric::MappedSnapshot mapped(cli.GetString("in", ""),
                                      fabric::VerifyMode::kOff);
  const server::SnapshotImage& image = mapped.Image();

  std::printf("%s: PHSNAP%02u, %zu bytes, %zu sections%s\n",
              cli.GetString("in", "").c_str(), image.Version(), image.Size(),
              image.Sections().size(),
              image.Version() == server::kSnapshotVersion2
                  ? " (page-aligned, mmap-able)"
                  : "");
  std::printf("  %-12s %-12s %-12s %-8s %-18s %s\n", "section", "offset",
              "size", "aligned", "checksum", check ? "verified" : "");

  bool all_ok = true;
  for (const server::SnapshotSection& section : image.Sections()) {
    const bool page_aligned =
        section.offset % server::kSnapshotPageAlign == 0;
    std::string verified;
    if (check) {
      const bool ok = image.SectionChecksumOk(section);
      all_ok &= ok;
      verified = ok ? "ok" : "MISMATCH";
    }
    std::printf("  %-12s %-12" PRIu64 " %-12" PRIu64 " %-8s %016" PRIx64
                " %s\n",
                server::SnapshotSectionName(section.id), section.offset,
                section.size, page_aligned ? "page" : "8-byte",
                section.checksum, verified.c_str());
  }
  if (check) {
    std::printf("checksums: %s\n", all_ok ? "all ok" : "MISMATCH");
    if (!all_ok) return 1;
  }

  if (cli.Has("convert")) {
    const std::string format_name = cli.GetString("format", "phsnap02");
    server::SnapshotFormat format;
    if (format_name == "phsnap01") {
      format = server::SnapshotFormat::kPhsnap01;
    } else if (format_name == "phsnap02") {
      format = server::SnapshotFormat::kPhsnap02;
    } else {
      std::fprintf(stderr, "unknown --format=%s (phsnap01 | phsnap02)\n",
                   format_name.c_str());
      return 2;
    }
    // Full decode validates everything (including engine invariants) before
    // any byte is written — a convert never launders a corrupt snapshot.
    const server::Snapshot snapshot = mapped.CopyDecode();
    const std::string out = cli.GetString("convert", "");
    server::WriteSnapshotFile(snapshot, out, format);
    std::printf("converted to %s (%s)\n", out.c_str(), format_name.c_str());
  }
  return 0;
}

#pragma once

#include <cstdint>
#include <vector>

#include "util/error.h"

namespace phast::fabric {

/// Replica selection for phast_router (DESIGN.md §12).
///
/// Queries fan out by a consistent hash of their *source* vertex: the same
/// source always lands on the same replica, which keeps each replica's
/// epoch-keyed tree cache hot (a source's full tree is cached exactly
/// where its repeats arrive). Consistent hashing — virtual nodes on a ring
/// rather than source % N — matters on replica death: only the dead
/// replica's arc of the ring moves, so the other replicas keep their cache
/// working sets instead of reshuffling every source.
class ConsistentHashRing {
 public:
  /// `vnodes` virtual nodes per replica smooth the load split.
  explicit ConsistentHashRing(size_t num_replicas, uint32_t vnodes = 64);

  [[nodiscard]] size_t NumReplicas() const { return alive_.size(); }
  [[nodiscard]] size_t NumAlive() const { return num_alive_; }
  [[nodiscard]] bool IsAlive(size_t replica) const {
    return alive_[replica];
  }

  /// Marks a replica dead (its ring arcs fall through to the next alive
  /// replica) or alive again.
  void SetAlive(size_t replica, bool alive);

  /// The alive replica owning `key` (e.g. a source vertex id). Throws
  /// InputError when no replica is alive.
  [[nodiscard]] size_t Pick(uint64_t key) const;

  /// The alive replica owning `key` with `excluded` treated as dead — the
  /// retry-once target after a send to the owner failed. Throws when no
  /// other replica is alive.
  [[nodiscard]] size_t PickExcluding(uint64_t key, size_t excluded) const;

 private:
  [[nodiscard]] size_t PickFrom(uint64_t key, size_t excluded) const;

  struct Point {
    uint64_t hash = 0;
    uint32_t replica = 0;
  };
  std::vector<Point> ring_;  // sorted by hash
  std::vector<bool> alive_;
  size_t num_alive_ = 0;
};

/// Row partition of a kMatrix request: the table rows (indices into the
/// request's source list) owned by one replica, in ascending row order so
/// the sub-request preserves the client's row order within the replica.
struct MatrixPartition {
  size_t replica = 0;
  std::vector<uint32_t> rows;
};

/// Splits a matrix request's source rows across the ring by the same
/// source-hash rule single queries use (each row lands where its source's
/// tree cache is hot). Partitions come back ordered by first appearance;
/// duplicate sources share a replica, not a row.
[[nodiscard]] std::vector<MatrixPartition> PartitionMatrixSources(
    const ConsistentHashRing& ring, const std::vector<uint32_t>& sources);

/// Scatters one replica's sub-table (rows.size() x cols, row-major) back
/// into the client's full table at the partition's row positions.
void MergeMatrixRows(const std::vector<uint32_t>& rows, size_t cols,
                     const std::vector<uint32_t>& sub_table,
                     std::vector<uint32_t>& table);

/// SplitMix64 — the ring's point/key hash. Public so tests and the bench
/// can reproduce placements.
[[nodiscard]] constexpr uint64_t HashKey(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace phast::fabric

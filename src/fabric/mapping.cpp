#include "fabric/mapping.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/trace.h"
#include "util/error.h"

namespace phast::fabric {

VerifyMode ParseVerifyMode(const std::string& text) {
  if (text == "full") return VerifyMode::kFull;
  if (text == "sections") return VerifyMode::kSections;
  if (text == "off") return VerifyMode::kOff;
  Require(false, "unknown --verify mode '" + text +
                     "' (expected full|sections|off)");
  __builtin_unreachable();
}

namespace {

server::SnapshotVerify ToImageVerify(VerifyMode mode) {
  switch (mode) {
    case VerifyMode::kFull: return server::SnapshotVerify::kFull;
    case VerifyMode::kSections: return server::SnapshotVerify::kSections;
    case VerifyMode::kOff: return server::SnapshotVerify::kOff;
  }
  __builtin_unreachable();
}

}  // namespace

MappedSnapshot::MappedSnapshot(const std::string& path, VerifyMode mode)
    : mode_(mode) {
  fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  Require(fd_ >= 0, "cannot open snapshot " + path + ": " +
                        std::strerror(errno));
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    Require(false, "fstat(" + path + ") failed: " + err);
  }
  size_ = static_cast<size_t>(st.st_size);
  // MAP_SHARED + PROT_READ: replicas of one snapshot share physical pages,
  // and writes through the mapping fault (read-only enforcement is the
  // kernel's, not a convention).
  map_ = ::mmap(nullptr, size_, PROT_READ, MAP_SHARED, fd_, 0);
  if (map_ == MAP_FAILED) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    map_ = nullptr;
    Require(false, "mmap(" + path + ") failed: " + err);
  }

  const auto* data = static_cast<const char*>(map_);
  try {
    image_ = std::make_unique<server::SnapshotImage>(data, size_,
                                                     ToImageVerify(mode));
  } catch (...) {
    ::munmap(map_, size_);
    ::close(fd_);
    map_ = nullptr;
    fd_ = -1;
    throw;
  }

  // Payload bytes hashed at open: the cold-start witness. kOff hashes only
  // header+TOC (which are not payload), so this is 0 and stays 0 until a
  // query faults pages in.
  if (mode != VerifyMode::kOff) {
    if (image_->Version() == server::kSnapshotVersion &&
        mode == VerifyMode::kFull) {
      payload_bytes_verified_ = size_;  // v1 whole-file hash touched it all
    } else {
      for (const server::SnapshotSection& s : image_->Sections()) {
        payload_bytes_verified_ += s.size;
      }
    }
  }
  PHAST_SPAN_ARG("fabric.map", payload_bytes_verified_);
}

MappedSnapshot::~MappedSnapshot() {
  if (map_ != nullptr) ::munmap(map_, size_);
  if (fd_ >= 0) ::close(fd_);
}

bool MappedSnapshot::IsZeroCopy() const {
  return image_->Version() == server::kSnapshotVersion2;
}

PhastLayoutView MappedSnapshot::LayoutView() const {
  Require(IsZeroCopy(),
          "zero-copy views need a PHSNAP02 snapshot (convert with "
          "phast_snap --convert); PHSNAP01 loads via the copy path");
  return server::MakeLayoutView(*image_);
}

server::Snapshot MappedSnapshot::CopyDecode() const {
  return server::DecodeSnapshot(*image_);
}

}  // namespace phast::fabric

#pragma once

#include <csignal>
#include <cstddef>

#include "server/metrics.h"
#include "server/protocol.h"
#include "server/service.h"

namespace phast::fabric {

/// The async front end of phast_serve (DESIGN.md §12): one event-loop
/// thread multiplexes every connection with level-triggered epoll, replacing
/// the thread-per-connection accept loop. Requests pipeline freely — a
/// client may have any number of queries in flight on one connection — and
/// responses still go out in per-connection request order: each connection
/// keeps an ordered slot queue, a slot resolving out of order waits for the
/// head. Sweep completions (worker threads) signal the loop through the
/// OracleService Submit on_done hook + an eventfd, so the loop thread never
/// blocks on a future.
///
/// Write backpressure: when a connection's outbound buffer exceeds
/// max_outbound_bytes, the loop stops *reading* from that connection (drops
/// its EPOLLIN interest) until the buffer drains below the cap — a slow
/// reader throttles itself, not the process.
///
/// Control frames (kMetrics/kUpdateWeights/kSwap/kEpoch) run inline on the
/// loop thread. kSwap blocks the loop for the customization build —
/// milliseconds on the test graphs this repo serves; a truly concurrent
/// swap path stays on the snapshot-manager side (the build could move off
/// the loop with the same completion plumbing as queries if it ever grows).
struct FrontEndOptions {
  server::ConnectionOptions conn;
  /// Per-connection cap on buffered outbound bytes before reads pause.
  size_t max_outbound_bytes = 4u << 20;
};

/// Serves until a client sends kShutdown or `*stop_signal` becomes nonzero
/// (flip it from a signal handler, then Wake/Stop the loop — or rely on any
/// event to notice it). Owns the accepted connections; does not close or
/// unlink `listen_fd`. Returns true if a shutdown frame was received.
bool RunFrontEnd(int listen_fd, server::OracleService& service,
                 server::MetricsRegistry& metrics,
                 const FrontEndOptions& options,
                 const volatile std::sig_atomic_t* stop_signal);

}  // namespace phast::fabric

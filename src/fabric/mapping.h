#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "phast/phast.h"
#include "server/snapshot.h"

namespace phast::fabric {

/// Zero-copy snapshot mapping (DESIGN.md §12): the on-disk PHSNAP02 layout
/// *is* the in-memory layout, so serving N replica processes from one
/// snapshot costs one page-cache copy of the arrays and cold start costs
/// O(TOC), not O(file). This file is the only place in the tree allowed to
/// call mmap/munmap (tools/phast_lint.py, fabric-mmap-only rule).

/// How much of the file is authenticated at open, mirroring the
/// phast_serve/phast_router --verify knob:
///   kFull     every section checksum, plus full structural validation
///             when an engine is built from the view (reads every array
///             once — faults the whole file in).
///   kSections every section checksum; engines then validate shallowly.
///   kOff      header/TOC checksum only (O(TOC)); no payload byte is read
///             until a query faults it in. Integrity rests on the
///             producer; this is the instant-start mode.
enum class VerifyMode { kFull, kSections, kOff };

/// Parses "full" | "sections" | "off" (the --verify flag); throws
/// InputError otherwise.
[[nodiscard]] VerifyMode ParseVerifyMode(const std::string& text);

/// A snapshot file mapped read-only (PROT_READ, MAP_SHARED): replicas
/// mapping the same file share physical pages, and any write through the
/// mapping faults — the kernel enforces the engine's immutability. Emits a
/// "fabric.map" span whose arg is the number of payload bytes hashed at
/// open (0 under kOff — the span-verified witness that cold start read no
/// array bytes).
///
/// Both formats map; only v2's page-aligned sections support zero-copy
/// views (IsZeroCopy). For v1 the mapping still avoids the read()-copy of
/// the stream loader: CopyDecode() parses straight out of the mapping.
class MappedSnapshot {
 public:
  MappedSnapshot(const std::string& path, VerifyMode mode);
  ~MappedSnapshot();

  MappedSnapshot(const MappedSnapshot&) = delete;
  MappedSnapshot& operator=(const MappedSnapshot&) = delete;

  [[nodiscard]] const server::SnapshotImage& Image() const { return *image_; }
  [[nodiscard]] VerifyMode Mode() const { return mode_; }
  [[nodiscard]] size_t MappedBytes() const { return size_; }
  /// Payload bytes hashed at open (the fabric.map span arg).
  [[nodiscard]] uint64_t PayloadBytesVerified() const {
    return payload_bytes_verified_;
  }

  /// True for PHSNAP02: page-aligned sections, LayoutView() available.
  [[nodiscard]] bool IsZeroCopy() const;

  /// Spans straight into the mapping (v2 only; throws for v1). The
  /// returned view — and every engine built from it — is valid only while
  /// this object lives.
  [[nodiscard]] PhastLayoutView LayoutView() const;

  /// Structural validation depth matching the verify mode: kFull re-checks
  /// array contents, anything else trusts the checksummed (or vouched-for)
  /// bytes and checks only sizes.
  [[nodiscard]] LayoutValidation Validation() const {
    return mode_ == VerifyMode::kFull ? LayoutValidation::kFull
                                      : LayoutValidation::kShallow;
  }

  /// Copying decode out of the mapping — the v1 fallback load path (also
  /// legal on v2).
  [[nodiscard]] server::Snapshot CopyDecode() const;

 private:
  VerifyMode mode_;
  int fd_ = -1;
  void* map_ = nullptr;
  size_t size_ = 0;
  uint64_t payload_bytes_verified_ = 0;
  /// Parsed header/TOC over the mapping (indirect so the class stays
  /// movable-free and the image can be built after the map succeeds).
  std::unique_ptr<server::SnapshotImage> image_;
};

}  // namespace phast::fabric

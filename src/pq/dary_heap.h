#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

#include "graph/types.h"

namespace phast {

/// Addressable d-ary min-heap with decrease-key.
///
/// DaryHeap<2> is the binary heap of the paper's Table I and of the CH
/// query phase ("CH queries use a binary heap ... the queue size is small");
/// DaryHeap<4> is the k-heap variant cited in §II-A [18]. Position indices
/// are tracked per vertex, so Update() is O(log_d n).
template <unsigned Arity>
class DaryHeap {
  static_assert(Arity >= 2, "heap arity must be at least 2");

 public:
  static constexpr bool kSupportsDecreaseKey = true;

  explicit DaryHeap(VertexId n) : position_(n, kNotInHeap) {}

  [[nodiscard]] bool Empty() const { return heap_.empty(); }
  [[nodiscard]] size_t Size() const { return heap_.size(); }

  [[nodiscard]] bool Contains(VertexId v) const {
    return position_[v] != kNotInHeap;
  }

  void Insert(VertexId v, Weight key) {
    assert(!Contains(v));
    position_[v] = static_cast<uint32_t>(heap_.size());
    heap_.push_back(Entry{key, v});
    SiftUp(position_[v]);
  }

  /// Inserts v, or decreases its key if already present with a larger key.
  void Update(VertexId v, Weight key) {
    const uint32_t pos = position_[v];
    if (pos == kNotInHeap) {
      Insert(v, key);
    } else if (key < heap_[pos].key) {
      heap_[pos].key = key;
      SiftUp(pos);
    }
  }

  /// Smallest key currently queued (heap must be non-empty).
  [[nodiscard]] Weight MinKey() const {
    assert(!Empty());
    return heap_.front().key;
  }

  [[nodiscard]] std::pair<VertexId, Weight> ExtractMin() {
    assert(!Empty());
    const Entry top = heap_.front();
    position_[top.vertex] = kNotInHeap;
    if (heap_.size() > 1) {
      heap_.front() = heap_.back();
      heap_.pop_back();
      position_[heap_.front().vertex] = 0;
      SiftDown(0);
    } else {
      heap_.pop_back();
    }
    return {top.vertex, top.key};
  }

  /// Empties the heap; O(current size), not O(n).
  void Clear() {
    for (const Entry& e : heap_) position_[e.vertex] = kNotInHeap;
    heap_.clear();
  }

 private:
  struct Entry {
    Weight key;
    VertexId vertex;
  };

  static constexpr uint32_t kNotInHeap = std::numeric_limits<uint32_t>::max();

  void SiftUp(uint32_t pos) {
    const Entry e = heap_[pos];
    while (pos > 0) {
      const uint32_t parent = (pos - 1) / Arity;
      if (heap_[parent].key <= e.key) break;
      heap_[pos] = heap_[parent];
      position_[heap_[pos].vertex] = pos;
      pos = parent;
    }
    heap_[pos] = e;
    position_[e.vertex] = pos;
  }

  void SiftDown(uint32_t pos) {
    const Entry e = heap_[pos];
    const uint32_t n = static_cast<uint32_t>(heap_.size());
    while (true) {
      const uint64_t first_child = static_cast<uint64_t>(pos) * Arity + 1;
      if (first_child >= n) break;
      const uint32_t last_child = static_cast<uint32_t>(
          std::min<uint64_t>(first_child + Arity, n));
      uint32_t best = static_cast<uint32_t>(first_child);
      for (uint32_t c = best + 1; c < last_child; ++c) {
        if (heap_[c].key < heap_[best].key) best = c;
      }
      if (heap_[best].key >= e.key) break;
      heap_[pos] = heap_[best];
      position_[heap_[pos].vertex] = pos;
      pos = best;
    }
    heap_[pos] = e;
    position_[e.vertex] = pos;
  }

  std::vector<Entry> heap_;
  std::vector<uint32_t> position_;
};

using BinaryHeap = DaryHeap<2>;
using FourHeap = DaryHeap<4>;

}  // namespace phast

#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <utility>
#include <vector>

#include "graph/types.h"

namespace phast {

/// Multi-level bucket queue (§II-A, [21], the structure behind the paper's
/// "smart queue" [3] minus the caliber heuristic).
///
/// Keys are 32-bit and split into kLevels chunks of kRadixBits bits. Level
/// l bucket j holds entries that agree with the current minimum µ on all
/// chunks above l and whose chunk l equals j (with j greater than µ's
/// chunk l for l > 0). Extraction scans level 0 from µ's position; when
/// level 0 is exhausted it expands the next non-empty higher-level bucket,
/// re-anchoring µ to its minimum. Each entry is expanded at most kLevels
/// times, giving O(m + n·kLevels + n·2^kRadixBits/…) Dijkstra overall —
/// the O(m + n log C) bound the paper quotes.
///
/// Monotone (Insert keys >= last extracted µ; below-µ inserts trigger a
/// rebuild, as with RadixHeap). Duplicates allowed (lazy deletion).
class MultiLevelBuckets {
 public:
  static constexpr bool kSupportsDecreaseKey = false;
  static constexpr uint32_t kRadixBits = 8;
  static constexpr uint32_t kLevels = 4;  // 4 x 8 = 32 bits
  static constexpr uint32_t kBucketsPerLevel = 1u << kRadixBits;

  explicit MultiLevelBuckets(VertexId n) { (void)n; }

  [[nodiscard]] bool Empty() const { return size_ == 0; }
  [[nodiscard]] size_t Size() const { return size_; }

  void Insert(VertexId v, Weight key) {
    if (size_ == 0) {
      mu_ = key;
    } else if (key < mu_) {
      ReAnchor(key);
    }
    Place(Entry{key, v});
    ++size_;
  }

  [[nodiscard]] std::pair<VertexId, Weight> ExtractMin() {
    assert(!Empty());
    // Fast path: a level-0 bucket at or after µ's chunk. Level-0 buckets
    // hold exactly one key value each, so any entry of the first non-empty
    // bucket is a minimum.
    while (true) {
      const uint32_t start = ChunkOf(mu_, 0);
      const int bucket = FirstNonEmpty(0, start);
      if (bucket >= 0) {
        auto& b = buckets_[0][static_cast<uint32_t>(bucket)];
        const Entry e = b.back();
        b.pop_back();
        if (b.empty()) MarkEmpty(0, static_cast<uint32_t>(bucket));
        --size_;
        mu_ = e.key;
        return {e.vertex, e.key};
      }
      // Level 0 exhausted for this µ window: expand the lowest non-empty
      // higher-level bucket into the levels below it.
      Expand();
    }
  }

  void Clear() {
    if (size_ != 0) {
      for (auto& level : buckets_) {
        for (auto& bucket : level) bucket.clear();
      }
      for (auto& bitmap : occupied_) bitmap.fill(0);
      size_ = 0;
    }
    mu_ = 0;
  }

 private:
  struct Entry {
    Weight key;
    VertexId vertex;
  };

  [[nodiscard]] static uint32_t ChunkOf(Weight key, uint32_t level) {
    return (key >> (level * kRadixBits)) & (kBucketsPerLevel - 1);
  }

  /// Level in which `key` lives relative to µ: the highest chunk where it
  /// differs (0 if equal to µ in all upper chunks).
  [[nodiscard]] uint32_t LevelOf(Weight key) const {
    const Weight diff = key ^ mu_;
    for (uint32_t level = kLevels; level-- > 1;) {
      if (ChunkOf(diff, level) != 0) return level;
    }
    return 0;
  }

  void Place(const Entry& e) {
    const uint32_t level = LevelOf(e.key);
    const uint32_t bucket = ChunkOf(e.key, level);
    if (buckets_[level][bucket].empty()) MarkOccupied(level, bucket);
    buckets_[level][bucket].push_back(e);
  }

  /// First non-empty bucket of `level` with index >= `from`, or -1.
  [[nodiscard]] int FirstNonEmpty(uint32_t level, uint32_t from) const {
    const auto& bitmap = occupied_[level];
    uint32_t word = from >> 6;
    uint64_t bits = bitmap[word] & (~uint64_t{0} << (from & 63));
    while (true) {
      if (bits != 0) {
        return static_cast<int>(word * 64 +
                                static_cast<uint32_t>(__builtin_ctzll(bits)));
      }
      if (++word >= bitmap.size()) return -1;
      bits = bitmap[word];
    }
  }

  void MarkOccupied(uint32_t level, uint32_t bucket) {
    occupied_[level][bucket >> 6] |= uint64_t{1} << (bucket & 63);
  }
  void MarkEmpty(uint32_t level, uint32_t bucket) {
    occupied_[level][bucket >> 6] &= ~(uint64_t{1} << (bucket & 63));
  }

  /// Moves the contents of the lowest non-empty bucket above level 0 down,
  /// re-anchoring µ to its minimum key. All its entries then land strictly
  /// below their old level, so total expansion work is O(kLevels) per
  /// entry over the queue's lifetime.
  void Expand() {
    assert(size_ > 0);
    for (uint32_t level = 1; level < kLevels; ++level) {
      // Entries at `level` have chunk > µ's chunk (strictly), except the
      // bucket equal to µ's chunk which was already drained; scan from µ's
      // chunk anyway — correctness does not depend on it being empty.
      const int bucket = FirstNonEmpty(level, ChunkOf(mu_, level));
      if (bucket < 0) continue;
      auto& b = buckets_[level][static_cast<uint32_t>(bucket)];
      assert(!b.empty());
      std::vector<Entry> entries;
      entries.swap(b);
      MarkEmpty(level, static_cast<uint32_t>(bucket));
      mu_ = std::min_element(entries.begin(), entries.end(),
                             [](const Entry& lhs, const Entry& rhs) {
                               return lhs.key < rhs.key;
                             })
                ->key;
      for (const Entry& e : entries) Place(e);
      return;
    }
    assert(false && "size_ > 0 but no bucket found");
  }

  /// Full rebuild around a lower anchor (general-use escape hatch; never
  /// hit by Dijkstra's monotone insert pattern).
  void ReAnchor(Weight new_min) {
    std::vector<Entry> all;
    all.reserve(size_);
    for (auto& level : buckets_) {
      for (auto& bucket : level) {
        all.insert(all.end(), bucket.begin(), bucket.end());
        bucket.clear();
      }
    }
    for (auto& bitmap : occupied_) bitmap.fill(0);
    mu_ = new_min;
    for (const Entry& e : all) Place(e);
  }

  std::array<std::vector<Entry>, kBucketsPerLevel> buckets_[kLevels];
  std::array<uint64_t, kBucketsPerLevel / 64> occupied_[kLevels] = {};
  size_t size_ = 0;
  Weight mu_ = 0;
};

/// The paper's "smart queue" rows use the multi-level bucket structure
/// (without the caliber heuristic of [3], which only skips heap operations
/// and does not change results).
using SmartQueue = MultiLevelBuckets;

}  // namespace phast

#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

#include "graph/types.h"

namespace phast {

/// Dial's single-level bucket queue (§II-A, [20]).
///
/// A monotone priority queue for Dijkstra with integer arc lengths in
/// [0, C]: at any time all queued keys lie within a window of width C above
/// the last extracted minimum, so C+1 circular buckets suffice. This is the
/// implementation the paper uses for all "Dijkstra" baseline numbers
/// ("Dial's implementation with the DFS layout").
///
/// Duplicates are allowed (lazy deletion); Dijkstra skips stale entries.
class DialBuckets {
 public:
  static constexpr bool kSupportsDecreaseKey = false;

  /// max_arc_weight is C, the largest arc length that will ever be relaxed.
  DialBuckets(VertexId n, Weight max_arc_weight)
      : span_(static_cast<size_t>(max_arc_weight) + 1), buckets_(span_) {
    (void)n;  // sized by key span, not vertex count
  }

  [[nodiscard]] bool Empty() const { return size_ == 0; }
  [[nodiscard]] size_t Size() const { return size_; }

  void Insert(VertexId v, Weight key) {
    // Re-anchor when empty or when a key undershoots the cursor (legal for
    // general use; Dijkstra never triggers the second case).
    if (size_ == 0 || key < last_min_) last_min_ = key;
    assert(key - last_min_ < span_);
    buckets_[key % span_].push_back(Entry{key, v});
    ++size_;
  }

  [[nodiscard]] std::pair<VertexId, Weight> ExtractMin() {
    assert(!Empty());
    // Advance the cursor key until its bucket holds an entry with that exact
    // key. Entries of key `last_min_ + span_ - r` share the bucket of key
    // `last_min_ - r` only transiently; the exact-key check skips them.
    while (true) {
      auto& bucket = buckets_[last_min_ % span_];
      for (size_t i = 0; i < bucket.size(); ++i) {
        if (bucket[i].key == last_min_) {
          const Entry e = bucket[i];
          bucket[i] = bucket.back();
          bucket.pop_back();
          --size_;
          return {e.vertex, e.key};
        }
      }
      ++last_min_;
    }
  }

  void Clear() {
    if (size_ != 0) {
      for (auto& bucket : buckets_) bucket.clear();
      size_ = 0;
    }
    last_min_ = 0;
  }

 private:
  struct Entry {
    Weight key;
    VertexId vertex;
  };

  size_t span_;
  std::vector<std::vector<Entry>> buckets_;
  size_t size_ = 0;
  Weight last_min_ = 0;
};

}  // namespace phast

#pragma once

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

#include "graph/types.h"

namespace phast {

/// Monotone multi-level bucket queue (radix heap) for 32-bit keys.
///
/// This plays the role of the paper's multi-level-bucket "smart queue"
/// (§II-A, [3], [21]): O(m + n log C) Dijkstra with integer lengths in
/// [0, C]. We implement the radix-heap formulation (Ahuja–Mehlhorn–Orlin–
/// Tarjan): bucket index of key x is the position of the most significant
/// bit in which x differs from the last extracted minimum, so an item can
/// only migrate to lower buckets and is touched O(log C) times in total.
///
/// Monotone: Insert() keys must be >= the last ExtractMin() key.
/// Duplicates are allowed (lazy deletion); Dijkstra skips stale entries.
class RadixHeap {
 public:
  static constexpr bool kSupportsDecreaseKey = false;
  static constexpr uint32_t kNumBuckets = 33;  // 32 bit positions + equal

  explicit RadixHeap(VertexId n) { (void)n; }

  [[nodiscard]] bool Empty() const { return size_ == 0; }
  [[nodiscard]] size_t Size() const { return size_; }

  void Insert(VertexId v, Weight key) {
    if (size_ == 0) {
      last_min_ = key;  // re-anchor when empty
    } else if (key < last_min_) {
      // Below-anchor insert: legal for general use but outside the radix
      // invariant, so rebuild around the new minimum. Dijkstra's monotone
      // usage never hits this path.
      ReAnchor(key);
    }
    buckets_[BucketOf(key)].push_back(Entry{key, v});
    ++size_;
  }

  [[nodiscard]] std::pair<VertexId, Weight> ExtractMin() {
    assert(!Empty());
    if (buckets_[0].empty()) Redistribute();
    const Entry e = buckets_[0].back();
    buckets_[0].pop_back();
    --size_;
    return {e.vertex, e.key};
  }

  void Clear() {
    if (size_ != 0) {
      for (auto& bucket : buckets_) bucket.clear();
      size_ = 0;
    }
    last_min_ = 0;
  }

 private:
  struct Entry {
    Weight key;
    VertexId vertex;
  };

  [[nodiscard]] uint32_t BucketOf(Weight key) const {
    if (key == last_min_) return 0;
    return 32 - static_cast<uint32_t>(__builtin_clz(key ^ last_min_));
  }

  /// Full rebuild relative to a new, lower anchor.
  void ReAnchor(Weight new_min) {
    std::vector<Entry> all;
    all.reserve(size_);
    for (auto& bucket : buckets_) {
      all.insert(all.end(), bucket.begin(), bucket.end());
      bucket.clear();
    }
    last_min_ = new_min;
    for (const Entry& e : all) buckets_[BucketOf(e.key)].push_back(e);
  }

  /// Finds the lowest non-empty bucket, re-anchors last_min_ to its minimum
  /// key, and spreads its entries into strictly lower buckets.
  void Redistribute() {
    uint32_t j = 1;
    while (buckets_[j].empty()) ++j;
    auto& src = buckets_[j];
    last_min_ = std::min_element(src.begin(), src.end(),
                                 [](const Entry& a, const Entry& b) {
                                   return a.key < b.key;
                                 })
                    ->key;
    // Every entry in bucket j now agrees with last_min_ on all bits at or
    // above position j-1, so it lands in a bucket < j.
    for (const Entry& e : src) {
      assert(BucketOf(e.key) < j);
      buckets_[BucketOf(e.key)].push_back(e);
    }
    src.clear();
  }

  std::vector<Entry> buckets_[kNumBuckets];
  size_t size_ = 0;
  Weight last_min_ = 0;
};

}  // namespace phast

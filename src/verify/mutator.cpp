#include "verify/mutator.h"

#include <algorithm>
#include <vector>

#include "graph/generators.h"
#include "util/rng.h"

namespace phast::verify {
namespace {

/// Weight in [1, 1000] — comparable to what the generators emit.
Weight SmallWeight(Rng& rng) {
  return static_cast<Weight>(rng.NextBounded(1000) + 1);
}

/// Weight at or next to the saturation boundary: kInfWeight, kInfWeight-1,
/// or kInfWeight-2. An arc of weight kInfWeight can never be relaxed (the
/// saturating add pins the candidate at infinity), which every engine must
/// agree on.
Weight HugeWeight(Rng& rng) {
  return kInfWeight - static_cast<Weight>(rng.NextBounded(3));
}

}  // namespace

std::string MutationSummary::ToString() const {
  return "added=" + std::to_string(arcs_added) +
         " zero=" + std::to_string(zero_weight_arcs) +
         " parallel=" + std::to_string(parallel_arcs) +
         " huge=" + std::to_string(huge_weight_arcs) +
         " self_loops=" + std::to_string(self_loops) +
         " removed=" + std::to_string(arcs_removed) +
         " isolated=" + std::to_string(vertices_isolated);
}

EdgeList MakeBaseGraph(uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);
  switch (rng.NextBounded(4)) {
    case 0: {
      CountryParams params;
      params.width = static_cast<uint32_t>(rng.NextBounded(6) + 4);   // 4..9
      params.height = static_cast<uint32_t>(rng.NextBounded(6) + 4);  // 4..9
      params.seed = rng.Next();
      params.metric = rng.NextBool() ? Metric::kTravelTime
                                     : Metric::kTravelDistance;
      return GenerateCountry(params).edges;
    }
    case 1: {
      const uint32_t n = static_cast<uint32_t>(rng.NextBounded(80) + 30);
      return GenerateRandomGeometric(n, 0.18, rng.Next()).edges;
    }
    case 2: {
      const uint32_t n = static_cast<uint32_t>(rng.NextBounded(70) + 20);
      const uint64_t m = n * (rng.NextBounded(4) + 2);
      return GenerateGnm(n, m, static_cast<Weight>(rng.NextBounded(90) + 1),
                         rng.Next());
    }
    default: {
      // Degenerate shapes: paths, cycles, stars, tiny grids — the graphs
      // where off-by-one bugs live.
      switch (rng.NextBounded(4)) {
        case 0:
          return GeneratePath(static_cast<uint32_t>(rng.NextBounded(30) + 1));
        case 1:
          return GenerateCycle(static_cast<uint32_t>(rng.NextBounded(30) + 3));
        case 2:
          return GenerateStar(static_cast<uint32_t>(rng.NextBounded(30) + 1));
        default:
          return GenerateGrid(static_cast<uint32_t>(rng.NextBounded(6) + 1),
                              static_cast<uint32_t>(rng.NextBounded(6) + 1));
      }
    }
  }
}

EdgeList MutateGraph(const EdgeList& base, uint64_t seed,
                     uint32_t num_mutations, MutationSummary* summary) {
  Rng rng(seed ^ 0xD1B54A32D192ED03ULL);
  EdgeList out = base;
  MutationSummary local;
  const VertexId n = std::max<VertexId>(out.NumVertices(), 1);
  auto random_vertex = [&]() {
    return static_cast<VertexId>(rng.NextBounded(n));
  };

  for (uint32_t step = 0; step < num_mutations; ++step) {
    std::vector<Edge>& edges = out.MutableEdges();
    switch (rng.NextBounded(8)) {
      case 0:
      case 1:
        out.AddArc(random_vertex(), random_vertex(), SmallWeight(rng));
        ++local.arcs_added;
        break;
      case 2:
        out.AddArc(random_vertex(), random_vertex(), 0);
        ++local.zero_weight_arcs;
        break;
      case 3:
        if (!edges.empty()) {
          const Edge& e = edges[rng.NextBounded(edges.size())];
          out.AddArc(e.tail, e.head,
                     rng.NextBool() ? SmallWeight(rng)
                                    : e.weight / 2);  // sometimes cheaper
          ++local.parallel_arcs;
        }
        break;
      case 4: {
        const VertexId v = random_vertex();
        out.AddArc(random_vertex(), v, HugeWeight(rng));
        ++local.huge_weight_arcs;
        break;
      }
      case 5: {
        const VertexId v = random_vertex();
        out.AddArc(v, v, SmallWeight(rng));
        ++local.self_loops;
        break;
      }
      case 6:
        if (!edges.empty()) {
          const size_t victim = rng.NextBounded(edges.size());
          edges[victim] = edges.back();
          edges.pop_back();
          ++local.arcs_removed;
        }
        break;
      default: {
        // Drop every arc touching one vertex: detaches it from its
        // component (often splitting the graph), so sweeps must leave its
        // labels at +infinity in every config.
        const VertexId v = random_vertex();
        std::erase_if(edges,
                      [v](const Edge& e) { return e.tail == v || e.head == v; });
        ++local.vertices_isolated;
        break;
      }
    }
  }
  if (summary != nullptr) *summary = local;
  return out;
}

}  // namespace phast::verify

#pragma once

#include <span>
#include <string>
#include <vector>

#include "ch/ch_data.h"
#include "ch/contraction.h"
#include "graph/csr.h"
#include "graph/edge_list.h"
#include "graph/types.h"
#include "phast/options.h"
#include "phast/phast.h"

namespace phast::verify {

/// One point of the PHAST configuration space the differential oracle
/// sweeps: every independently-switchable code path of the engine.
struct OracleConfig {
  SweepOrder order = SweepOrder::kLevelReordered;
  SimdMode simd = SimdMode::kScalar;
  bool implicit_init = true;
  bool want_parents = false;
  bool parallel_sweep = false;  // ComputeTreesParallel instead of ComputeTrees
  uint32_t k = 1;
};

/// Canonical, parseable name, e.g.
/// "order=reordered,simd=sse,init=implicit,parents=on,sweep=serial,k=8".
[[nodiscard]] std::string ConfigName(const OracleConfig& config);

/// Inverse of ConfigName; returns false on malformed input. Used to replay
/// a minimized failure line.
[[nodiscard]] bool ParseConfigName(const std::string& name,
                                   OracleConfig* config);

/// The full cross-product of runnable configurations on this machine:
/// all three sweep orders x available SIMD kernels x implicit/explicit init
/// x parents on/off x serial/per-level-parallel sweep x k in {1, 4, 8, 16}.
/// Configurations whose kernel resolves to one already listed (e.g. SSE
/// with k=1 falls back to scalar) are dropped, as is the parallel sweep for
/// kRankDescending (no level groups to parallelize over).
[[nodiscard]] std::vector<OracleConfig> FullConfigCrossProduct();

/// The source set Oracle::RunAll derives from an iteration seed (16 seeded
/// sources); exposed so a replay can re-run a single configuration on
/// exactly the same batch.
[[nodiscard]] std::vector<VertexId> OracleSources(VertexId num_vertices,
                                                 uint64_t seed);

/// Differential oracle: owns one normalized instance plus its contraction
/// hierarchy, and checks any PHAST configuration against reference Dijkstra
/// — every distance label of every tree, every reconstructed parent path,
/// and the structural invariants of the engine it builds.
class Oracle {
 public:
  /// Normalizes a copy of `edges` (the documented pipeline step: drop
  /// self-loops, keep cheapest parallel arc) and preprocesses it with
  /// `ch_params`. The graph may be disconnected; unreachable vertices must
  /// stay at +infinity in every configuration. The fuzzer samples
  /// `ch_params` (thread counts, batch neighborhood, witness caps) so the
  /// oracle cross-product also covers parallel preprocessing.
  explicit Oracle(const EdgeList& edges, const CHParams& ch_params = {});

  [[nodiscard]] const Graph& GetGraph() const { return graph_; }
  [[nodiscard]] const CHData& GetCH() const { return ch_; }

  /// Runs one configuration for the given sources (sources.size() must be
  /// >= config.k; the first k are used) and diffs it against Dijkstra.
  /// Returns "" on agreement, else a description of the first divergence.
  [[nodiscard]] std::string RunConfig(const OracleConfig& config,
                                      std::span<const VertexId> sources) const;

  /// One full fuzz-iteration check: seeds a source set, runs the entire
  /// configuration cross-product, the ComputeManyTrees batch driver, the
  /// invariant checkers, the CH determinism cross-check (the hierarchy
  /// rebuilt with a different thread count must serialize to identical
  /// bytes, DESIGN.md §9), a metric-mutation round (customize a
  /// witness-free hierarchy to seeded fresh weights, byte-diff it against a
  /// from-scratch rebuild, and re-run the configuration cross-product on
  /// the customized hierarchy against Dijkstra on the reweighted graph),
  /// a distance-table round (every MatrixMode, with duplicate rows and
  /// columns, diffed cell-by-cell against Dijkstra), and a k-nearest-POI
  /// round (level-cutoff sweeps must be bit-identical to full sweeps and to
  /// a brute-force bucket scan). On failure returns the diagnosis and
  /// stores the canonical name of the failing configuration in
  /// *failing_config ("batch-driver" / "invariants" / "ch-determinism" /
  /// "customize" / "matrix" / "poi" for the non-config checks).
  [[nodiscard]] std::string RunAll(uint64_t seed,
                                   std::string* failing_config = nullptr) const;

 private:
  /// Adopts an already-built hierarchy over a prepared graph (the
  /// customization check reuses the full config sweep on customized data).
  Oracle(Graph graph, const CHParams& ch_params, CHData ch);
  void IndexGPlusArcs();

  [[nodiscard]] std::string RunConfigWithRefs(
      const OracleConfig& config, std::span<const VertexId> sources,
      const std::vector<std::vector<Weight>>& refs) const;
  [[nodiscard]] std::string CheckBatchDriver(
      std::span<const VertexId> sources,
      const std::vector<std::vector<Weight>>& refs) const;
  /// Validates one tree's parent structure: roots and unreached vertices
  /// have no parent, every other parent edge is a real G+ arc whose weight
  /// telescopes the distances, and sampled parent paths reach the source.
  [[nodiscard]] std::string CheckParents(const Phast& engine,
                                         const Phast::Workspace& ws,
                                         VertexId source, uint32_t tree,
                                         const std::vector<Weight>& ref,
                                         uint64_t sample_seed) const;
  [[nodiscard]] bool HasGPlusArc(VertexId tail, VertexId head,
                                 Weight weight) const;
  /// Rebuilds the CH with a different thread count and requires identical
  /// serialized bytes.
  [[nodiscard]] std::string CheckChDeterminism() const;
  /// The metric-mutation round of RunAll (see its doc comment).
  [[nodiscard]] std::string CheckCustomization(uint64_t seed) const;
  /// The distance-table round: seeded sources x targets (duplicates
  /// included) through every MatrixMode on scalar and auto-SIMD engines,
  /// plus the empty-side edge cases.
  [[nodiscard]] std::string CheckMatrix(uint64_t seed) const;
  /// The k-nearest-POI round: seeded bucket index, cutoff vs full sweep vs
  /// brute force, k larger than the bucket included.
  [[nodiscard]] std::string CheckPoi(uint64_t seed) const;

  Graph graph_;
  CHParams ch_params_;
  CHData ch_;
  std::vector<Edge> gplus_arcs_;  // sorted by (tail, head, weight)
};

}  // namespace phast::verify

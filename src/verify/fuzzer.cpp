#include "verify/fuzzer.h"

#include <exception>
#include <iostream>

#include "ch/contraction.h"
#include "util/rng.h"
#include "util/timer.h"
#include "verify/mutator.h"
#include "verify/oracle.h"

namespace phast::verify {
namespace {

/// The mutation budget of one iteration, derived from its seed so that a
/// replay reconstructs the identical case.
uint32_t MutationCountFor(uint64_t seed, uint32_t max_mutations) {
  if (max_mutations == 0) return 0;
  Rng rng(seed + 0x51ED270B4F2CD981ULL);
  return static_cast<uint32_t>(rng.NextBounded(max_mutations + 1));
}

EdgeList BuildCase(uint64_t seed, uint32_t mutations) {
  return MutateGraph(MakeBaseGraph(seed), seed, mutations);
}

/// Preprocessing parameters of one iteration, derived from its seed like
/// the mutation budget so a replay reconstructs the identical case: the
/// cross-product also samples parallel contraction (threads 1-4, both
/// independence rules) and, occasionally, a crippled witness-settle cap —
/// the engine must stay exact and deterministic under all of them
/// (DESIGN.md §9).
CHParams ChParamsFor(uint64_t seed) {
  Rng rng(seed ^ 0xC2B2AE3D27D4EB4FULL);
  CHParams params;
  params.threads = 1 + static_cast<uint32_t>(rng.NextBounded(4));
  params.batch_neighborhood = 1 + static_cast<uint32_t>(rng.NextBounded(2));
  if (rng.NextBounded(8) == 0) {
    params.max_witness_settled = 1 + static_cast<uint32_t>(rng.NextBounded(4));
  }
  return params;
}

/// Full iteration check for (seed, mutations). "" = clean; a pipeline
/// exception (nothing in the library should throw on mutator output) is
/// reported as a failure too.
std::string CheckCase(uint64_t seed, uint32_t mutations,
                      std::string* failing_config) {
  try {
    const Oracle oracle(BuildCase(seed, mutations), ChParamsFor(seed));
    return oracle.RunAll(seed, failing_config);
  } catch (const std::exception& e) {
    if (failing_config != nullptr) *failing_config = "pipeline";
    return std::string("exception escaped the pipeline: ") + e.what();
  }
}

/// Shrinks a failing case to the smallest mutation prefix that still
/// reproduces. MutateGraph consumes randomness per step independently of
/// the total count, so mutation batch m is a prefix of batch M > m — the
/// first failing prefix is the minimal one.
FuzzFailure Minimize(uint64_t seed, uint32_t mutations,
                     const std::string& config, const std::string& message) {
  for (uint32_t m = 0; m < mutations; ++m) {
    std::string small_config;
    const std::string err = CheckCase(seed, m, &small_config);
    if (!err.empty()) return FuzzFailure{seed, m, small_config, err};
  }
  return FuzzFailure{seed, mutations, config, message};
}

}  // namespace

std::string FuzzFailure::ReplayLine() const {
  return "--replay --seed=" + std::to_string(seed) +
         " --mutations=" + std::to_string(mutations) + " --config=" + config;
}

FuzzReport RunFuzz(const FuzzOptions& options) {
  FuzzReport report;
  Timer timer;
  for (uint32_t i = 0; i < options.iterations; ++i) {
    if (options.time_limit_seconds > 0.0 &&
        timer.ElapsedSec() >= options.time_limit_seconds) {
      break;
    }
    const uint64_t seed = options.master_seed + i;
    const uint32_t mutations = MutationCountFor(seed, options.max_mutations);
    std::string config;
    const std::string err = CheckCase(seed, mutations, &config);
    ++report.iterations_run;
    if (options.verbose) {
      std::cerr << "[fuzz] iteration " << i << " seed=" << seed
                << " mutations=" << mutations
                << (err.empty() ? " ok" : " FAILED") << '\n';
    }
    if (!err.empty()) {
      report.failures.push_back(Minimize(seed, mutations, config, err));
      if (options.stop_on_failure) break;
    }
  }
  return report;
}

bool ReplayCase(uint64_t seed, uint32_t mutations, const std::string& config,
                std::string* message) {
  std::string err;
  OracleConfig parsed;
  if (ParseConfigName(config, &parsed)) {
    try {
      const Oracle oracle(BuildCase(seed, mutations), ChParamsFor(seed));
      const std::vector<VertexId> sources =
          OracleSources(oracle.GetGraph().NumVertices(), seed);
      err = oracle.RunConfig(parsed, sources);
    } catch (const std::exception& e) {
      err = std::string("exception escaped the pipeline: ") + e.what();
    }
  } else {
    // Non-config names ("invariants", "batch-driver", "ch-determinism",
    // "customize", "matrix", "poi", "pipeline", or empty): run everything.
    err = CheckCase(seed, mutations, nullptr);
  }
  if (message != nullptr) *message = err;
  return !err.empty();
}

}  // namespace phast::verify

// fuzz_phast — differential correctness fuzzer for the PHAST pipeline.
//
// Fuzz mode (default): per iteration, generate a small seeded graph, layer
// random structural mutations on it (zero-weight / parallel / near-2^32
// arcs, deletions, disconnections), then check every PHAST configuration
// (sweep orders x SIMD kernels x implicit/explicit init x parents x
// serial/parallel sweep x k) plus the batch driver and the structural
// invariants against reference Dijkstra. Failures are minimized to a
// replayable seed line.
//
//   fuzz_phast --iterations=500 --seed=1
//   fuzz_phast --time-limit=30            # bounded smoke run
//   fuzz_phast --replay --seed=7 --mutations=3 --config=<canonical name>
//
// Exit code 0 = clean, 1 = divergence found, 2 = usage error.
#include <cstdio>
#include <string>

#include "util/cli.h"
#include "verify/fuzzer.h"
#include "verify/oracle.h"

int main(int argc, char** argv) {
  const phast::CommandLine cli(argc, argv);
  if (cli.Has("help")) {
    std::printf(
        "usage: %s [--iterations=N] [--seed=S] [--max-mutations=M]\n"
        "          [--time-limit=SECONDS] [--keep-going] [--verbose]\n"
        "       %s --replay --seed=S --mutations=M --config=NAME\n",
        cli.ProgramName().c_str(), cli.ProgramName().c_str());
    return 0;
  }

  if (cli.GetBool("replay", false)) {
    if (!cli.Has("seed") || !cli.Has("mutations")) {
      std::fprintf(stderr, "--replay needs --seed and --mutations\n");
      return 2;
    }
    const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 0));
    const uint32_t mutations =
        static_cast<uint32_t>(cli.GetInt("mutations", 0));
    const std::string config = cli.GetString("config", "");
    if (!config.empty() && config != "invariants" && config != "batch-driver" &&
        config != "pipeline") {
      phast::verify::OracleConfig parsed;
      if (!phast::verify::ParseConfigName(config, &parsed)) {
        std::fprintf(stderr,
                     "note: --config=%s does not name a configuration; "
                     "replaying the full iteration check\n",
                     config.c_str());
      }
    }
    std::string message;
    if (phast::verify::ReplayCase(seed, mutations, config, &message)) {
      std::printf("reproduced: %s\n", message.c_str());
      return 1;
    }
    std::printf("did not reproduce (seed=%llu mutations=%u config=%s)\n",
                static_cast<unsigned long long>(seed), mutations,
                config.c_str());
    return 0;
  }

  phast::verify::FuzzOptions options;
  options.master_seed = static_cast<uint64_t>(cli.GetInt("seed", 1));
  options.iterations =
      static_cast<uint32_t>(cli.GetInt("iterations", 200));
  options.max_mutations =
      static_cast<uint32_t>(cli.GetInt("max-mutations", 24));
  options.time_limit_seconds = cli.GetDouble("time-limit", 0.0);
  options.stop_on_failure = !cli.GetBool("keep-going", false);
  options.verbose = cli.GetBool("verbose", false);

  const phast::verify::FuzzReport report = phast::verify::RunFuzz(options);
  std::printf("fuzz_phast: %u iteration(s), %zu failure(s)\n",
              report.iterations_run, report.failures.size());
  for (const phast::verify::FuzzFailure& f : report.failures) {
    std::printf("FAILURE: %s\n  replay: %s %s\n", f.message.c_str(),
                cli.ProgramName().c_str(), f.ReplayLine().c_str());
  }
  return report.Clean() ? 0 : 1;
}

#include "verify/invariants.h"

#include <map>
#include <vector>

#include "phast/kernels.h"
#include "pq/dary_heap.h"
#include "util/rng.h"

namespace phast::verify {
namespace {

std::string At(const char* what, uint64_t index) {
  return std::string(what) + " at index " + std::to_string(index);
}

template <unsigned Arity>
std::string DriveHeap(uint64_t seed, uint32_t num_ops) {
  const VertexId n = 64;
  DaryHeap<Arity> heap(n);
  std::map<VertexId, Weight> model;  // vertex -> current key
  Rng rng(seed);
  const std::string tag = "DaryHeap<" + std::to_string(Arity) + ">: ";

  for (uint32_t op = 0; op < num_ops; ++op) {
    if (heap.Size() != model.size()) {
      return tag + "size " + std::to_string(heap.Size()) + " != model " +
             std::to_string(model.size());
    }
    switch (rng.NextBounded(8)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // Update: insert or decrease-key
        const VertexId v = static_cast<VertexId>(rng.NextBounded(n));
        const Weight key = static_cast<Weight>(rng.NextBounded(1000));
        heap.Update(v, key);
        auto it = model.find(v);
        if (it == model.end()) {
          model.emplace(v, key);
        } else if (key < it->second) {
          it->second = key;
        }
        if (!heap.Contains(v)) return tag + "Contains false after Update";
        break;
      }
      case 4:
      case 5:
      case 6: {  // ExtractMin
        if (model.empty()) break;
        Weight min_key = kInfWeight;
        for (const auto& [v, key] : model) min_key = std::min(min_key, key);
        if (heap.MinKey() != min_key) {
          return tag + "MinKey " + std::to_string(heap.MinKey()) +
                 " != model min " + std::to_string(min_key);
        }
        const auto [v, key] = heap.ExtractMin();
        if (key != min_key) {
          return tag + "extracted key " + std::to_string(key) +
                 " != model min " + std::to_string(min_key);
        }
        auto it = model.find(v);
        if (it == model.end() || it->second != key) {
          return tag + "extracted vertex/key pair absent from model";
        }
        model.erase(it);
        if (heap.Contains(v)) return tag + "Contains true after ExtractMin";
        break;
      }
      default: {  // occasional Clear
        if (rng.NextBounded(16) == 0) {
          heap.Clear();
          model.clear();
          if (!heap.Empty()) return tag + "non-empty after Clear";
        }
        break;
      }
    }
  }
  // Drain: remaining extractions must come out in non-decreasing key order.
  Weight last = 0;
  while (!heap.Empty()) {
    const auto [v, key] = heap.ExtractMin();
    if (key < last) return tag + "drain order violated";
    last = key;
    if (model.erase(v) != 1) return tag + "drained unknown vertex";
  }
  if (!model.empty()) return tag + "heap drained but model non-empty";
  return "";
}

}  // namespace

std::string CheckCsrWellFormed(const Graph& graph) {
  const std::vector<ArcId>& first = graph.FirstArray();
  const VertexId n = graph.NumVertices();
  if (first.size() != static_cast<size_t>(n) + 1) {
    return "CSR: first array has " + std::to_string(first.size()) +
           " entries for " + std::to_string(n) + " vertices";
  }
  if (first.front() != 0) return "CSR: first[0] != 0";
  for (size_t i = 0; i < n; ++i) {
    if (first[i] > first[i + 1]) return At("CSR: first not monotone", i);
  }
  if (first.back() != graph.NumArcs()) {
    return "CSR: first[n] != NumArcs";
  }
  const std::vector<Arc>& arcs = graph.ArcArray();
  for (size_t i = 0; i < arcs.size(); ++i) {
    if (arcs[i].other >= n) return At("CSR: arc endpoint out of range", i);
  }
  return "";
}

std::string CheckEngineTopology(const Phast& engine, const CHData* ch) {
  const VertexId n = engine.NumVertices();
  Phast::Workspace ws = engine.MakeWorkspace(1);
  const SweepArgs args = engine.MakeSweepArgs(ws);
  if (args.num_vertices != n) return "engine: SweepArgs vertex count mismatch";

  // down_first_: monotone offsets over [0, n].
  if (args.down_first[0] != 0) return "engine: down_first[0] != 0";
  for (VertexId pos = 0; pos < n; ++pos) {
    if (args.down_first[pos] > args.down_first[pos + 1]) {
      return At("engine: down_first not monotone", pos);
    }
  }

  // Sweep position of every label-space vertex (identity when reordered).
  std::vector<VertexId> pos_of_label(n);
  if (args.order == nullptr) {
    for (VertexId p = 0; p < n; ++p) pos_of_label[p] = p;
  } else {
    std::vector<bool> seen(n, false);
    for (VertexId p = 0; p < n; ++p) {
      const VertexId label = args.order[p];
      if (label >= n) return At("engine: order entry out of range", p);
      if (seen[label]) return At("engine: order not a permutation", p);
      seen[label] = true;
      pos_of_label[label] = p;
    }
  }

  // Topological consistency: when the sweep relaxes the incoming arcs of
  // the vertex at position `pos`, every arc tail must already be final,
  // i.e. have been swept at a strictly earlier position.
  for (VertexId pos = 0; pos < n; ++pos) {
    for (ArcId arc = args.down_first[pos]; arc < args.down_first[pos + 1];
         ++arc) {
      const VertexId tail = args.down_arcs[arc].tail;
      if (tail >= n) return At("engine: down arc tail out of range", arc);
      if (pos_of_label[tail] >= pos) {
        return "engine: down arc " + std::to_string(arc) + " into position " +
               std::to_string(pos) + " has tail swept at position " +
               std::to_string(pos_of_label[tail]) +
               " (not strictly earlier) — sweep would read a stale label";
      }
    }
  }

  // Level-group boundaries: a monotone partition of [0, n).
  const std::span<const VertexId> groups = engine.LevelBoundaries();
  if (!groups.empty()) {
    if (groups.size() != static_cast<size_t>(engine.NumLevels()) + 1) {
      return "engine: level boundary count != NumLevels()+1";
    }
    if (groups.front() != 0 || groups.back() != n) {
      return "engine: level boundaries do not span [0, n)";
    }
    for (size_t g = 0; g + 1 < groups.size(); ++g) {
      if (groups[g] > groups[g + 1]) {
        return At("engine: level boundaries not monotone", g);
      }
    }
    if (ch != nullptr) {
      // Every vertex in group g must have level NumLevels()-1-g.
      for (uint32_t g = 0; g < engine.NumLevels(); ++g) {
        const uint32_t expect = engine.NumLevels() - 1 - g;
        for (VertexId pos = groups[g]; pos < groups[g + 1]; ++pos) {
          const VertexId label = args.order ? args.order[pos] : pos;
          const VertexId original = engine.OriginalOf(label);
          if (ch->level[original] != expect) {
            return "engine: vertex at sweep position " + std::to_string(pos) +
                   " has level " + std::to_string(ch->level[original]) +
                   ", expected " + std::to_string(expect) + " for its group";
          }
        }
      }
    }
  }
  return "";
}

std::string CheckMarksClean(const Phast& engine, Phast::Workspace& ws) {
  const SweepArgs args = engine.MakeSweepArgs(ws);
  if (args.marks == nullptr) return "";  // explicit init: trivially clean
  const size_t num_words = (static_cast<size_t>(args.num_vertices) + 63) / 64;
  for (size_t w = 0; w < num_words; ++w) {
    if (args.marks[w] != 0) {
      return "marks: word " + std::to_string(w) +
             " non-zero after FinishBatch (stale visit marks would corrupt "
             "the next batch)";
    }
  }
  return "";
}

std::string CheckHeapInvariants(uint64_t seed, uint32_t num_ops) {
  std::string err = DriveHeap<2>(seed, num_ops);
  if (!err.empty()) return err;
  return DriveHeap<4>(seed + 1, num_ops);
}

}  // namespace phast::verify

#pragma once

#include <cstdint>
#include <string>

#include "graph/edge_list.h"
#include "graph/types.h"

namespace phast::verify {

/// Counts of the structural edits MutateGraph applied, for failure reports.
struct MutationSummary {
  uint32_t arcs_added = 0;
  uint32_t zero_weight_arcs = 0;
  uint32_t parallel_arcs = 0;
  uint32_t huge_weight_arcs = 0;
  uint32_t self_loops = 0;
  uint32_t arcs_removed = 0;
  uint32_t vertices_isolated = 0;

  [[nodiscard]] std::string ToString() const;
};

/// Small deterministic base instance for one fuzz iteration: the seed picks
/// a family (synthetic country / random geometric / G(n,m)) and its size.
/// Kept to O(100) vertices so one iteration can afford the full PHAST
/// configuration cross-product against Dijkstra.
[[nodiscard]] EdgeList MakeBaseGraph(uint64_t seed);

/// Applies `num_mutations` seeded random structural edits on top of `base`:
/// random extra arcs, zero-weight arcs, parallel arcs, self-loops, weights
/// at or near the 2^32 saturation boundary, arc deletions, and full vertex
/// isolation (which disconnects components). Deterministic: (base, seed,
/// num_mutations) fully determine the result, which is what makes fuzz
/// failures replayable from a seed line.
[[nodiscard]] EdgeList MutateGraph(const EdgeList& base, uint64_t seed,
                                   uint32_t num_mutations,
                                   MutationSummary* summary = nullptr);

}  // namespace phast::verify

#include "verify/oracle.h"

#include <algorithm>
#include <mutex>
#include <sstream>

#include "apps/poi.h"
#include "ch/ch_io.h"
#include "ch/contraction.h"
#include "ch/customize.h"
#include "dijkstra/dijkstra.h"
#include "phast/batch.h"
#include "phast/kernels.h"
#include "phast/matrix.h"
#include "pq/dary_heap.h"
#include "util/rng.h"
#include "verify/invariants.h"

namespace phast::verify {
namespace {

const char* OrderName(SweepOrder order) {
  switch (order) {
    case SweepOrder::kRankDescending:
      return "rank";
    case SweepOrder::kLevelNoReorder:
      return "level";
    case SweepOrder::kLevelReordered:
      return "reordered";
  }
  return "?";
}

const char* SimdName(SimdMode mode) {
  switch (mode) {
    case SimdMode::kScalar:
      return "scalar";
    case SimdMode::kSse:
      return "sse";
    case SimdMode::kAvx2:
      return "avx2";
    case SimdMode::kAuto:
      return "auto";
  }
  return "?";
}

bool ParseOrder(const std::string& s, SweepOrder* out) {
  if (s == "rank") *out = SweepOrder::kRankDescending;
  else if (s == "level") *out = SweepOrder::kLevelNoReorder;
  else if (s == "reordered") *out = SweepOrder::kLevelReordered;
  else return false;
  return true;
}

bool ParseSimd(const std::string& s, SimdMode* out) {
  if (s == "scalar") *out = SimdMode::kScalar;
  else if (s == "sse") *out = SimdMode::kSse;
  else if (s == "avx2") *out = SimdMode::kAvx2;
  else if (s == "auto") *out = SimdMode::kAuto;
  else return false;
  return true;
}

}  // namespace

std::vector<VertexId> OracleSources(VertexId num_vertices, uint64_t seed) {
  Rng rng(seed ^ 0xA24BAED4963EE407ULL);
  std::vector<VertexId> sources(16);
  for (auto& s : sources) {
    s = static_cast<VertexId>(rng.NextBounded(num_vertices));
  }
  return sources;
}

std::string ConfigName(const OracleConfig& c) {
  std::ostringstream out;
  out << "order=" << OrderName(c.order) << ",simd=" << SimdName(c.simd)
      << ",init=" << (c.implicit_init ? "implicit" : "explicit")
      << ",parents=" << (c.want_parents ? "on" : "off")
      << ",sweep=" << (c.parallel_sweep ? "parallel" : "serial")
      << ",k=" << c.k;
  return out.str();
}

bool ParseConfigName(const std::string& name, OracleConfig* config) {
  OracleConfig c;
  std::istringstream in(name);
  std::string part;
  int fields = 0;
  while (std::getline(in, part, ',')) {
    const size_t eq = part.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = part.substr(0, eq);
    const std::string value = part.substr(eq + 1);
    if (key == "order") {
      if (!ParseOrder(value, &c.order)) return false;
    } else if (key == "simd") {
      if (!ParseSimd(value, &c.simd)) return false;
    } else if (key == "init") {
      if (value != "implicit" && value != "explicit") return false;
      c.implicit_init = value == "implicit";
    } else if (key == "parents") {
      if (value != "on" && value != "off") return false;
      c.want_parents = value == "on";
    } else if (key == "sweep") {
      if (value != "parallel" && value != "serial") return false;
      c.parallel_sweep = value == "parallel";
    } else if (key == "k") {
      const long long k = std::atoll(value.c_str());
      if (k < 1 || k > 1024) return false;
      c.k = static_cast<uint32_t>(k);
    } else {
      return false;
    }
    ++fields;
  }
  if (fields != 6) return false;
  *config = c;
  return true;
}

std::vector<OracleConfig> FullConfigCrossProduct() {
  std::vector<OracleConfig> configs;
  for (const SweepOrder order :
       {SweepOrder::kRankDescending, SweepOrder::kLevelNoReorder,
        SweepOrder::kLevelReordered}) {
    for (const uint32_t k : {1u, 4u, 8u, 16u}) {
      for (const SimdMode simd :
           {SimdMode::kScalar, SimdMode::kSse, SimdMode::kAvx2}) {
        if (!SimdModeAvailable(simd)) continue;
        // Drop configs whose kernel falls back to one already listed
        // (SweepKernelName reports the resolved kernel).
        if (simd != SimdMode::kScalar &&
            std::string(SweepKernelName(simd, k)) !=
                std::string(SimdName(simd))) {
          continue;
        }
        for (const bool implicit : {true, false}) {
          for (const bool parents : {false, true}) {
            OracleConfig c;
            c.order = order;
            c.simd = simd;
            c.implicit_init = implicit;
            c.want_parents = parents;
            c.k = k;
            c.parallel_sweep = false;
            configs.push_back(c);
            if (order != SweepOrder::kRankDescending) {
              c.parallel_sweep = true;
              configs.push_back(c);
            }
          }
        }
      }
    }
  }
  return configs;
}

Oracle::Oracle(const EdgeList& edges, const CHParams& ch_params)
    : ch_params_(ch_params) {
  EdgeList normalized = edges;
  normalized.Normalize();
  graph_ = Graph::FromEdgeList(normalized);
  ch_ = BuildContractionHierarchy(graph_, ch_params_);
  IndexGPlusArcs();
}

Oracle::Oracle(Graph graph, const CHParams& ch_params, CHData ch)
    : graph_(std::move(graph)), ch_params_(ch_params), ch_(std::move(ch)) {
  IndexGPlusArcs();
}

void Oracle::IndexGPlusArcs() {
  gplus_arcs_.clear();
  gplus_arcs_.reserve(ch_.up_arcs.size() + ch_.down_arcs.size());
  for (const CHArc& a : ch_.up_arcs) {
    gplus_arcs_.push_back(Edge{a.tail, a.head, a.weight});
  }
  for (const CHArc& a : ch_.down_arcs) {
    gplus_arcs_.push_back(Edge{a.tail, a.head, a.weight});
  }
  std::sort(gplus_arcs_.begin(), gplus_arcs_.end(),
            [](const Edge& x, const Edge& y) {
              if (x.tail != y.tail) return x.tail < y.tail;
              if (x.head != y.head) return x.head < y.head;
              return x.weight < y.weight;
            });
}

bool Oracle::HasGPlusArc(VertexId tail, VertexId head, Weight weight) const {
  const Edge probe{tail, head, 0};
  auto it = std::lower_bound(gplus_arcs_.begin(), gplus_arcs_.end(), probe,
                             [](const Edge& x, const Edge& y) {
                               if (x.tail != y.tail) return x.tail < y.tail;
                               return x.head < y.head;
                             });
  for (; it != gplus_arcs_.end() && it->tail == tail && it->head == head;
       ++it) {
    if (it->weight == weight) return true;
  }
  return false;
}

std::string Oracle::CheckParents(const Phast& engine,
                                 const Phast::Workspace& ws, VertexId source,
                                 uint32_t tree, const std::vector<Weight>& ref,
                                 uint64_t sample_seed) const {
  const VertexId n = graph_.NumVertices();
  for (VertexId v = 0; v < n; ++v) {
    const VertexId parent = engine.ParentInGPlus(ws, v, tree);
    if (v == source || ref[v] == kInfWeight) {
      if (parent != kInvalidVertex) {
        return "parent of " + std::string(v == source ? "source " : "unreached ") +
               std::to_string(v) + " is " + std::to_string(parent) +
               ", expected none (stale parent slot leaking through?)";
      }
      continue;
    }
    if (parent == kInvalidVertex) {
      return "reached vertex " + std::to_string(v) + " (d=" +
             std::to_string(ref[v]) + ") has no parent";
    }
    if (ref[parent] == kInfWeight || ref[parent] > ref[v]) {
      return "parent " + std::to_string(parent) + " of " + std::to_string(v) +
             " has non-telescoping distance";
    }
    if (!HasGPlusArc(parent, v, ref[v] - ref[parent])) {
      return "parent edge " + std::to_string(parent) + "->" +
             std::to_string(v) + " with weight " +
             std::to_string(ref[v] - ref[parent]) + " is not an arc of G+";
    }
  }
  // Walk a handful of full parent paths back to the source.
  Rng rng(sample_seed);
  const size_t samples = std::min<size_t>(n, 8);
  for (size_t i = 0; i < samples; ++i) {
    VertexId cur = static_cast<VertexId>(rng.NextBounded(n));
    if (ref[cur] == kInfWeight) continue;
    size_t steps = 0;
    while (cur != source) {
      cur = engine.ParentInGPlus(ws, cur, tree);
      if (cur == kInvalidVertex) return "parent path broke before the source";
      if (++steps > n) return "parent path longer than n (cycle)";
    }
  }
  return "";
}

std::string Oracle::RunConfigWithRefs(
    const OracleConfig& config, std::span<const VertexId> sources,
    const std::vector<std::vector<Weight>>& refs) const {
  if (sources.size() < config.k) return "oracle: not enough sources for k";
  const std::string name = ConfigName(config);
  PhastOptions options;
  options.order = config.order;
  options.simd = config.simd;
  options.implicit_init = config.implicit_init;
  const Phast engine(ch_, options);

  {
    const std::string err = CheckEngineTopology(engine, &ch_);
    if (!err.empty()) return name + ": " + err;
  }

  Phast::Workspace ws = engine.MakeWorkspace(config.k, config.want_parents);
  // Two rounds through one workspace, with the batch rotated by one source
  // in the second. Reuse alone only proves FinishBatch resets what the same
  // sources would overwrite anyway; rotating changes every slot's reachable
  // set, so residue from round one (marks, stale labels, stale parent
  // slots of now-unreachable vertices) has to surface as a divergence.
  std::vector<VertexId> batch(config.k);
  std::vector<size_t> ref_of(config.k);
  for (int round = 0; round < 2; ++round) {
    for (uint32_t t = 0; t < config.k; ++t) {
      ref_of[t] = (t + round) % sources.size();
      batch[t] = sources[ref_of[t]];
    }
    if (config.parallel_sweep) {
      engine.ComputeTreesParallel(batch, ws);
    } else {
      engine.ComputeTrees(batch, ws);
    }
    {
      const std::string err = CheckMarksClean(engine, ws);
      if (!err.empty()) return name + ": " + err;
    }
    for (uint32_t tree = 0; tree < config.k; ++tree) {
      const std::vector<Weight>& ref = refs[ref_of[tree]];
      for (VertexId v = 0; v < graph_.NumVertices(); ++v) {
        const Weight got = engine.Distance(ws, v, tree);
        if (got != ref[v]) {
          return name + ": round " + std::to_string(round) + " tree " +
                 std::to_string(tree) + " (source " +
                 std::to_string(batch[tree]) + "): d(" + std::to_string(v) +
                 ") = " + std::to_string(got) + ", Dijkstra says " +
                 std::to_string(ref[v]);
        }
      }
      if (config.want_parents) {
        const std::string err =
            CheckParents(engine, ws, batch[tree], tree, ref,
                         /*sample_seed=*/tree * 977u + 13u);
        if (!err.empty()) {
          return name + ": round " + std::to_string(round) + " tree " +
                 std::to_string(tree) + ": " + err;
        }
      }
    }
  }
  return "";
}

std::string Oracle::RunConfig(const OracleConfig& config,
                              std::span<const VertexId> sources) const {
  // The rotated second round can draw any of the sources, so reference
  // trees are needed for all of them, not just the first k.
  std::vector<std::vector<Weight>> refs;
  refs.reserve(sources.size());
  for (const VertexId s : sources) {
    refs.push_back(Dijkstra<BinaryHeap>(graph_, s).dist);
  }
  return RunConfigWithRefs(config, sources, refs);
}

std::string Oracle::CheckBatchDriver(
    std::span<const VertexId> sources,
    const std::vector<std::vector<Weight>>& refs) const {
  const Phast engine(ch_);
  // k=3 forces a short, padded final batch for any source count not
  // divisible by 3; k=1 exercises the degenerate single-tree path.
  for (const uint32_t k : {1u, 3u}) {
    BatchOptions options;
    options.trees_per_sweep = k;
    std::string failure;
    std::mutex mutex;  // visitors run on the batch driver's OpenMP threads
    ComputeManyTrees(engine, sources, options,
                     [&](size_t index, const Phast::Workspace& ws,
                         uint32_t slot) {
                       const std::lock_guard<std::mutex> lock(mutex);
                       if (!failure.empty()) return;
                       const std::vector<Weight>& ref = refs[index];
                       for (VertexId v = 0; v < graph_.NumVertices(); ++v) {
                         if (engine.Distance(ws, v, slot) != ref[v]) {
                           failure = "ComputeManyTrees k=" + std::to_string(k) +
                                     " source index " + std::to_string(index) +
                                     ": d(" + std::to_string(v) +
                                     ") diverges from Dijkstra";
                           return;
                         }
                       }
                     });
    if (!failure.empty()) return failure;
  }
  return "";
}

std::string Oracle::RunAll(uint64_t seed, std::string* failing_config) const {
  auto fail = [&](const char* which, std::string message) {
    if (failing_config != nullptr) *failing_config = which;
    return message;
  };

  {
    std::string err = CheckCsrWellFormed(graph_);
    if (err.empty()) err = CheckHeapInvariants(seed, 400);
    if (!err.empty()) return fail("invariants", std::move(err));
  }

  const std::vector<VertexId> sources =
      OracleSources(graph_.NumVertices(), seed);
  std::vector<std::vector<Weight>> refs;
  refs.reserve(sources.size());
  for (const VertexId s : sources) {
    refs.push_back(Dijkstra<BinaryHeap>(graph_, s).dist);
  }

  for (const OracleConfig& config : FullConfigCrossProduct()) {
    std::string err = RunConfigWithRefs(config, sources, refs);
    if (!err.empty()) {
      if (failing_config != nullptr) *failing_config = ConfigName(config);
      return err;
    }
  }

  {
    std::string err = CheckBatchDriver(sources, refs);
    if (!err.empty()) return fail("batch-driver", std::move(err));
  }

  {
    std::string err = CheckChDeterminism();
    if (!err.empty()) return fail("ch-determinism", std::move(err));
  }

  {
    std::string err = CheckCustomization(seed);
    if (!err.empty()) return fail("customize", std::move(err));
  }

  {
    std::string err = CheckMatrix(seed);
    if (!err.empty()) return fail("matrix", std::move(err));
  }

  {
    std::string err = CheckPoi(seed);
    if (!err.empty()) return fail("poi", std::move(err));
  }
  return "";
}

std::string Oracle::CheckMatrix(uint64_t seed) const {
  const VertexId n = graph_.NumVertices();
  Rng rng(seed ^ 0x51AB64FE821D03C7ULL);
  // Seeded rows and columns, each with a deliberate duplicate: duplicate
  // sources must share a lane without corrupting either row, duplicate
  // targets must repeat their column.
  std::vector<VertexId> sources;
  for (int i = 0; i < 5; ++i) {
    sources.push_back(static_cast<VertexId>(rng.NextBounded(n)));
  }
  sources.push_back(sources.front());
  std::vector<VertexId> targets;
  for (int i = 0; i < 7; ++i) {
    targets.push_back(static_cast<VertexId>(rng.NextBounded(n)));
  }
  targets.push_back(targets.back());

  std::vector<std::vector<Weight>> row_refs;
  row_refs.reserve(sources.size());
  for (const VertexId s : sources) {
    row_refs.push_back(Dijkstra<BinaryHeap>(graph_, s).dist);
  }

  for (const SimdMode simd : {SimdMode::kScalar, SimdMode::kAuto}) {
    PhastOptions options;
    options.simd = simd;
    const Phast engine(ch_, options);
    for (const MatrixMode mode :
         {MatrixMode::kSingleTree, MatrixMode::kBatched,
          MatrixMode::kRestricted, MatrixMode::kRestrictedBatched}) {
      MatrixOptions matrix_options;
      matrix_options.mode = mode;
      // 4 forces a padded tail chunk for the 6 rows above.
      matrix_options.trees_per_sweep = 4;
      const std::string name = std::string("matrix mode=") + ToString(mode) +
                               " simd=" + SimdName(simd);
      const std::vector<Weight> table =
          ComputeDistanceTable(engine, sources, targets, matrix_options);
      if (table.size() != sources.size() * targets.size()) {
        return name + ": table has " + std::to_string(table.size()) +
               " cells, expected " +
               std::to_string(sources.size() * targets.size());
      }
      for (size_t r = 0; r < sources.size(); ++r) {
        for (size_t c = 0; c < targets.size(); ++c) {
          const Weight got = table[r * targets.size() + c];
          const Weight want = row_refs[r][targets[c]];
          if (got != want) {
            return name + ": cell (" + std::to_string(r) + "," +
                   std::to_string(c) + ") = " + std::to_string(got) +
                   ", Dijkstra says " + std::to_string(want);
          }
        }
      }
      // The empty-side edge cases: either dimension empty is an empty
      // table, never a throw or a 0 x N allocation.
      if (!ComputeDistanceTable(engine, std::span<const VertexId>(), targets,
                                matrix_options)
               .empty() ||
          !ComputeDistanceTable(engine, sources, std::span<const VertexId>(),
                                matrix_options)
               .empty()) {
        return name + ": empty source/target list produced a non-empty table";
      }
    }
  }
  return "";
}

std::string Oracle::CheckPoi(uint64_t seed) const {
  const VertexId n = graph_.NumVertices();
  Rng rng(seed ^ 0x7C3A1E5B9D2F4680ULL);
  const uint32_t categories = 3;
  const uint32_t per_category = std::min<uint32_t>(6, n);
  const PoiIndex poi = PoiIndex::GenerateRandom(n, categories, per_category,
                                                seed);

  for (const SimdMode simd : {SimdMode::kScalar, SimdMode::kAuto}) {
    PhastOptions options;
    options.simd = simd;
    const Phast engine(ch_, options);
    Phast::Workspace ws = engine.MakeWorkspace(1);
    for (uint32_t category = 0; category < categories; ++category) {
      const KnnSweeper cutoff(engine, poi, category, /*use_cutoff=*/true);
      const KnnSweeper full(engine, poi, category, /*use_cutoff=*/false);
      const std::span<const VertexId> bucket = poi.Bucket(category);
      for (int i = 0; i < 4; ++i) {
        const VertexId source = static_cast<VertexId>(rng.NextBounded(n));
        // Sometimes ask for more than the bucket holds: the full reachable
        // set must come back, never a pad.
        const uint32_t k = 1 + rng.NextBounded(per_category + 2);
        const std::string name = std::string("poi simd=") + SimdName(simd) +
                                 " category=" + std::to_string(category) +
                                 " source=" + std::to_string(source) +
                                 " k=" + std::to_string(k);
        const std::vector<PoiResult> got = cutoff.Query(source, k, ws);
        const std::vector<PoiResult> via_full = full.Query(source, k, ws);
        if (got != via_full) {
          return name + ": level-cutoff result set differs from the full "
                 "sweep (cutoff " + std::to_string(cutoff.SweepLength()) +
                 " of " + std::to_string(full.SweepLength()) + ")";
        }
        const std::vector<Weight> ref =
            Dijkstra<BinaryHeap>(graph_, source).dist;
        std::vector<PoiResult> expected;
        for (const VertexId v : bucket) {
          if (ref[v] != kInfWeight) expected.push_back(PoiResult{ref[v], v});
        }
        std::sort(expected.begin(), expected.end(),
                  [](const PoiResult& a, const PoiResult& b) {
                    return a.dist != b.dist ? a.dist < b.dist
                                            : a.vertex < b.vertex;
                  });
        if (expected.size() > k) expected.resize(k);
        if (got != expected) {
          return name + ": result set disagrees with the brute-force bucket "
                 "scan (got " + std::to_string(got.size()) + " results, "
                 "expected " + std::to_string(expected.size()) + ")";
        }
      }
    }
  }
  return "";
}

std::string Oracle::CheckCustomization(uint64_t seed) const {
  // Customization is only sound on a triangle-closed hierarchy, so this
  // round builds its own witness-free one (same seeded contraction knobs).
  CHParams params = ch_params_;
  params.witness_pruning = false;
  const CHData base = BuildContractionHierarchy(graph_, params);

  // Seeded metric mutation: every arc gets a fresh weight, same topology.
  Rng rng(seed ^ 0xD6E8FEB86659FD93ULL);
  std::vector<ArcId> first(graph_.FirstArray().begin(),
                           graph_.FirstArray().end());
  std::vector<Arc> arcs(graph_.ArcArray().begin(), graph_.ArcArray().end());
  for (Arc& a : arcs) {
    a.weight = static_cast<Weight>(rng.NextInRange(1, 65'536));
  }
  Graph reweighted = Graph::FromCsrArrays(std::move(first), std::move(arcs));

  CHData customized = base;
  CustomizeOptions customize_options;
  customize_options.threads = ch_params_.threads;
  CustomizeWeights(customized, reweighted, customize_options);

  // Byte-diff against a from-scratch witness-free contraction of the
  // reweighted graph: customization must reproduce it exactly.
  {
    const CHData rebuilt = BuildContractionHierarchy(reweighted, params);
    std::ostringstream custom_bytes;
    std::ostringstream rebuilt_bytes;
    WriteCH(customized, custom_bytes);
    WriteCH(rebuilt, rebuilt_bytes);
    if (custom_bytes.str() != rebuilt_bytes.str()) {
      return "customized hierarchy differs from a from-scratch rebuild on "
             "the reweighted graph (" +
             std::to_string(custom_bytes.str().size()) + " vs " +
             std::to_string(rebuilt_bytes.str().size()) + " bytes)";
    }
  }

  // Every engine configuration on the customized hierarchy must agree with
  // Dijkstra on the reweighted graph (the adopting private constructor
  // reuses the full per-config check, parent validation included).
  const Oracle custom(std::move(reweighted), params, std::move(customized));
  const std::vector<VertexId> sources =
      OracleSources(custom.graph_.NumVertices(), seed);
  std::vector<std::vector<Weight>> refs;
  refs.reserve(sources.size());
  for (const VertexId s : sources) {
    refs.push_back(Dijkstra<BinaryHeap>(custom.graph_, s).dist);
  }
  for (const OracleConfig& config : FullConfigCrossProduct()) {
    std::string err = custom.RunConfigWithRefs(config, sources, refs);
    if (!err.empty()) return "customized engine: " + err;
  }
  return "";
}

std::string Oracle::CheckChDeterminism() const {
  // Rebuild the hierarchy with a different thread count: the batched
  // engine's output must be bit-identical (DESIGN.md §9). Serialized bytes
  // compare ranks, levels, and both arc sets in one shot.
  CHParams other = ch_params_;
  other.threads = ch_params_.threads == 1 ? 3 : 1;
  const CHData rebuilt = BuildContractionHierarchy(graph_, other);
  std::ostringstream expected;
  std::ostringstream actual;
  WriteCH(ch_, expected);
  WriteCH(rebuilt, actual);
  if (expected.str() != actual.str()) {
    std::ostringstream out;
    out << "CH not deterministic across thread counts: threads="
        << ch_params_.threads << " vs threads=" << other.threads
        << " serialize to different bytes (" << expected.str().size() << " vs "
        << actual.str().size() << ")";
    return out.str();
  }
  return "";
}

}  // namespace phast::verify

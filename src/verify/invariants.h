#pragma once

#include <cstdint>
#include <string>

#include "ch/ch_data.h"
#include "graph/csr.h"
#include "phast/phast.h"

namespace phast::verify {

/// Structural invariant checkers for the PHAST pipeline. Each returns an
/// empty string when the invariant holds, else a human-readable description
/// of the first violation — string results compose into fuzzer reports
/// without aborting the surrounding sweep.

/// CSR well-formedness: `first` has n+1 entries starting at 0, is monotone
/// non-decreasing, ends at the arc count, and every arc endpoint is < n.
[[nodiscard]] std::string CheckCsrWellFormed(const Graph& graph);

/// Engine sweep-topology consistency: the `down_first_` offset array is
/// monotone and spans all downward arcs, every arc tail is a valid label,
/// and each tail was swept strictly *before* the position whose incoming
/// arcs it feeds (the property the one-pass sweep is built on). Also checks
/// the level-group boundaries (monotone partition of [0, n)) and, when the
/// CHData is supplied, that each downward arc descends in level exactly as
/// Lemma 4.1 promises.
[[nodiscard]] std::string CheckEngineTopology(const Phast& engine,
                                              const CHData* ch = nullptr);

/// Mark-word cleanliness: after FinishBatch every visit-mark word must be
/// zero again, otherwise the next batch would inherit phantom visits and
/// read stale labels as finite. Call right after a ComputeTree(s) /
/// ComputeTreesParallel round on an implicit-init workspace; workspaces of
/// explicit-init engines pass trivially.
[[nodiscard]] std::string CheckMarksClean(const Phast& engine,
                                          Phast::Workspace& ws);

/// Black-box heap invariant check: drives DaryHeap<2> and DaryHeap<4>
/// through `num_ops` seeded Update/ExtractMin/Clear operations against a
/// reference model, verifying extraction order, Contains, Size, and MinKey
/// at every step.
[[nodiscard]] std::string CheckHeapInvariants(uint64_t seed, uint32_t num_ops);

}  // namespace phast::verify

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace phast::verify {

/// Knobs of the differential fuzz loop.
struct FuzzOptions {
  uint64_t master_seed = 1;
  uint32_t iterations = 100;
  /// Upper bound on mutations layered onto each base graph.
  uint32_t max_mutations = 24;
  /// Stop early once this much wall-clock has elapsed (0 = no limit).
  double time_limit_seconds = 0.0;
  /// Stop at the first failure instead of collecting them all.
  bool stop_on_failure = true;
  /// Print one line per iteration to stderr.
  bool verbose = false;
};

/// One minimized failure: everything needed to reproduce it.
struct FuzzFailure {
  uint64_t seed = 0;           // iteration seed (graph + sources derive from it)
  uint32_t mutations = 0;      // minimized mutation count
  std::string config;          // canonical config name, or "invariants"/"batch-driver"
  std::string message;         // first divergence found

  /// The replay line: paste as arguments to fuzz_phast.
  [[nodiscard]] std::string ReplayLine() const;
};

/// Outcome of a fuzz run.
struct FuzzReport {
  uint32_t iterations_run = 0;
  std::vector<FuzzFailure> failures;

  [[nodiscard]] bool Clean() const { return failures.empty(); }
};

/// Runs the differential fuzz loop: per iteration, derive a base graph and
/// mutation batch from the seed, then check the full PHAST configuration
/// cross-product plus invariants against Dijkstra (Oracle::RunAll). On
/// failure the case is minimized — the mutation count is shrunk to the
/// smallest count that still reproduces, re-diagnosing the failing config
/// each time — and reported as a replayable seed + config line.
[[nodiscard]] FuzzReport RunFuzz(const FuzzOptions& options);

/// Replays one minimized case. Returns true when the failure still
/// reproduces; *message (optional) receives the diagnosis. A `config` that
/// names a specific configuration re-runs only it; "invariants",
/// "batch-driver", or an empty string re-run the full iteration check.
[[nodiscard]] bool ReplayCase(uint64_t seed, uint32_t mutations,
                              const std::string& config,
                              std::string* message = nullptr);

}  // namespace phast::verify

#pragma once

#include <vector>

#include "dijkstra/dijkstra.h"
#include "graph/csr.h"
#include "graph/types.h"
#include "pq/dary_heap.h"

namespace phast {

/// A point-to-point answer: distance plus the s-t path (empty when
/// unreachable or when path reconstruction was not requested).
struct PointToPointResult {
  Weight dist = kInfWeight;
  std::vector<VertexId> path;  // s ... t inclusive when found
  size_t scanned = 0;
};

/// Bidirectional Dijkstra: a forward search from s on `forward` and a
/// backward search from t on `reverse` (the reversed graph), expanding the
/// side with the smaller queue minimum. Stops once min_f + min_b can no
/// longer beat the best meeting candidate. This is the query baseline the
/// arc-flags experiment (§VII-B.b) accelerates.
[[nodiscard]] inline PointToPointResult BidirectionalDijkstra(
    const Graph& forward, const Graph& reverse, VertexId s, VertexId t,
    bool want_path = true) {
  const VertexId n = forward.NumVertices();
  Require(reverse.NumVertices() == n, "graph/reverse size mismatch");
  Require(s < n && t < n, "endpoint out of range");

  PointToPointResult result;
  if (s == t) {
    result.dist = 0;
    if (want_path) result.path = {s};
    return result;
  }

  std::vector<Weight> dist_f(n, kInfWeight), dist_b(n, kInfWeight);
  std::vector<VertexId> par_f(n, kInvalidVertex), par_b(n, kInvalidVertex);
  BinaryHeap queue_f(n), queue_b(n);

  dist_f[s] = 0;
  queue_f.Update(s, 0);
  dist_b[t] = 0;
  queue_b.Update(t, 0);

  Weight best = kInfWeight;
  VertexId meet = kInvalidVertex;

  const auto scan_one = [&](const Graph& g, BinaryHeap& q,
                            std::vector<Weight>& dist_here,
                            std::vector<VertexId>& par_here,
                            const std::vector<Weight>& dist_there) {
    const auto [v, key] = q.ExtractMin();
    ++result.scanned;
    for (const Arc& arc : g.ArcsOf(v)) {
      const Weight cand = SaturatingAdd(key, arc.weight);
      if (cand < dist_here[arc.other]) {
        dist_here[arc.other] = cand;
        par_here[arc.other] = v;
        q.Update(arc.other, cand);
        if (dist_there[arc.other] != kInfWeight) {
          const Weight through = SaturatingAdd(cand, dist_there[arc.other]);
          if (through < best) {
            best = through;
            meet = arc.other;
          }
        }
      }
    }
  };

  while (!queue_f.Empty() || !queue_b.Empty()) {
    const Weight min_f = queue_f.Empty() ? kInfWeight : queue_f.MinKey();
    const Weight min_b = queue_b.Empty() ? kInfWeight : queue_b.MinKey();
    if (SaturatingAdd(min_f, min_b) >= best) break;
    if (min_f <= min_b) {
      scan_one(forward, queue_f, dist_f, par_f, dist_b);
    } else {
      scan_one(reverse, queue_b, dist_b, par_b, dist_f);
    }
  }

  result.dist = best;
  if (best == kInfWeight || !want_path) return result;

  // Stitch the two half-paths at the meeting vertex.
  std::vector<VertexId> half;
  for (VertexId v = meet; v != kInvalidVertex; v = par_f[v]) half.push_back(v);
  result.path.assign(half.rbegin(), half.rend());
  for (VertexId v = par_b[meet]; v != kInvalidVertex; v = par_b[v]) {
    result.path.push_back(v);
  }
  return result;
}

}  // namespace phast

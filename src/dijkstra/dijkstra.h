#pragma once

#include <span>
#include <vector>

#include "graph/csr.h"
#include "graph/types.h"
#include "util/error.h"

namespace phast {

/// Distances and parent pointers of one shortest path tree, plus scan
/// statistics for the instrumentation the paper reports (queue pops).
struct SsspResult {
  std::vector<Weight> dist;
  std::vector<VertexId> parent;
  size_t scanned = 0;
};

/// Largest arc weight in the graph; the C parameter of bucket queues.
[[nodiscard]] inline Weight MaxArcWeight(const Graph& graph) {
  Weight c = 0;
  for (const Arc& a : graph.ArcArray()) c = std::max(c, a.weight);
  return c;
}

/// Dijkstra's algorithm from `source` over a forward graph, writing into
/// caller-provided arrays (size n, pre-filled by this function). The queue
/// is passed in so benchmark loops can reuse its storage across trees.
///
/// Queue is any type following the pq/ interface; decrease-key queues are
/// updated in place, monotone bucket queues get lazy duplicates that are
/// skipped when stale.
template <typename Queue>
void DijkstraInto(const Graph& graph, VertexId source, Queue& queue,
                  std::span<Weight> dist, std::span<VertexId> parent,
                  size_t* scanned = nullptr) {
  const VertexId n = graph.NumVertices();
  Require(source < n, "Dijkstra source out of range");
  Require(dist.size() == n, "distance array has wrong size");
  const bool want_parents = !parent.empty();
  Require(!want_parents || parent.size() == n, "parent array has wrong size");

  std::fill(dist.begin(), dist.end(), kInfWeight);
  if (want_parents) {
    std::fill(parent.begin(), parent.end(), kInvalidVertex);
  }
  queue.Clear();

  dist[source] = 0;
  if constexpr (Queue::kSupportsDecreaseKey) {
    queue.Update(source, 0);
  } else {
    queue.Insert(source, 0);
  }

  size_t scans = 0;
  while (!queue.Empty()) {
    const auto [v, key] = queue.ExtractMin();
    if constexpr (!Queue::kSupportsDecreaseKey) {
      if (key != dist[v]) continue;  // stale duplicate
    }
    ++scans;
    for (const Arc& arc : graph.ArcsOf(v)) {
      const Weight candidate = SaturatingAdd(key, arc.weight);
      if (candidate < dist[arc.other]) {
        dist[arc.other] = candidate;
        if (want_parents) parent[arc.other] = v;
        if constexpr (Queue::kSupportsDecreaseKey) {
          queue.Update(arc.other, candidate);
        } else {
          queue.Insert(arc.other, candidate);
        }
      }
    }
  }
  if (scanned != nullptr) *scanned = scans;
}

/// Convenience wrapper allocating the result arrays. QueueArgs are forwarded
/// to the queue constructor after the vertex count (e.g. the max arc weight
/// for DialBuckets).
template <typename Queue, typename... QueueArgs>
[[nodiscard]] SsspResult Dijkstra(const Graph& graph, VertexId source,
                                  QueueArgs&&... queue_args) {
  Queue queue(graph.NumVertices(), std::forward<QueueArgs>(queue_args)...);
  SsspResult result;
  result.dist.resize(graph.NumVertices());
  result.parent.resize(graph.NumVertices());
  DijkstraInto(graph, source, queue, result.dist, result.parent,
               &result.scanned);
  return result;
}

}  // namespace phast

#pragma once

#include <vector>

#include "graph/csr.h"
#include "graph/types.h"
#include "util/error.h"

namespace phast {

/// Hop counts and parents from a breadth-first search. BFS is the paper's
/// linear-time yardstick: "any significant practical improvements must take
/// advantage of better locality and parallelism" (§I), and basic PHAST runs
/// at BFS speed (§III).
struct BfsResult {
  std::vector<uint32_t> hops;  // kUnreachedHops if unreached
  std::vector<VertexId> parent;
  size_t visited = 0;

  static constexpr uint32_t kUnreachedHops =
      std::numeric_limits<uint32_t>::max();
};

[[nodiscard]] inline BfsResult Bfs(const Graph& graph, VertexId source) {
  const VertexId n = graph.NumVertices();
  Require(source < n, "BFS source out of range");
  BfsResult result;
  result.hops.assign(n, BfsResult::kUnreachedHops);
  result.parent.assign(n, kInvalidVertex);

  std::vector<VertexId> queue;
  queue.reserve(n);
  queue.push_back(source);
  result.hops[source] = 0;
  for (size_t head = 0; head < queue.size(); ++head) {
    const VertexId v = queue[head];
    for (const Arc& arc : graph.ArcsOf(v)) {
      if (result.hops[arc.other] == BfsResult::kUnreachedHops) {
        result.hops[arc.other] = result.hops[v] + 1;
        result.parent[arc.other] = v;
        queue.push_back(arc.other);
      }
    }
  }
  result.visited = queue.size();
  return result;
}

}  // namespace phast

// Per-round contraction profiling (DESIGN.md §9): the batched parallel CH
// preprocessing engine contracts one independent set per round, and the
// shape of those rounds — how many there are, how large the batches get,
// how much witness-search work each one settles — is what determines both
// preprocessing wall-time and how well it scales with threads. Like
// SweepProfile, this struct is filled by the engine (src/ch/contraction.cpp
// populates it into CHStats) and rendered to JSON for the bench emitters
// and phast_trace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace phast::obs {

/// One contraction round: the independent set it contracted and the work
/// its parallel phases performed.
struct ContractionRound {
  uint32_t round = 0;      ///< 1-based round number
  uint32_t batch = 0;      ///< vertices contracted this round
  uint32_t refreshed = 0;  ///< dirty vertices re-simulated for priorities
  uint64_t shortcuts = 0;  ///< shortcuts the round's merge step inserted
  uint64_t witness_searches = 0;  ///< searches run (refresh + batch phases)
  uint64_t witness_settled = 0;   ///< vertices settled across those searches
  uint64_t nanos = 0;             ///< wall time of the whole round
};

/// Profile of one preprocessing run. Rounds appear in execution order; the
/// initial whole-graph priority pass is reported separately because it is
/// not a contraction round (nothing is contracted).
struct ContractionProfile {
  uint32_t threads = 0;             ///< resolved thread count of the run
  uint32_t batch_neighborhood = 1;  ///< independence rule (1- or 2-hop)
  uint64_t init_nanos = 0;          ///< initial priority pass wall time
  uint64_t init_witness_searches = 0;
  uint64_t init_witness_settled = 0;
  std::vector<ContractionRound> rounds;

  [[nodiscard]] uint32_t NumRounds() const {
    return static_cast<uint32_t>(rounds.size());
  }
  /// Largest independent set contracted in one round.
  [[nodiscard]] uint32_t MaxBatch() const;
  /// Mean batch size (0 when no rounds ran).
  [[nodiscard]] double AvgBatch() const;
  /// Total vertices contracted (sum of batch sizes).
  [[nodiscard]] uint64_t TotalContracted() const;
  /// Total witness-settled vertices across init + all rounds.
  [[nodiscard]] uint64_t TotalWitnessSettled() const;

  /// Compact JSON object ({"threads":..,"rounds":[..],..}) used by
  /// bench_ch_preprocessing and phast_trace --json.
  [[nodiscard]] std::string ToJson() const;
};

}  // namespace phast::obs

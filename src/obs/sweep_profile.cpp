#include "obs/sweep_profile.h"

#include <cstdio>

namespace phast::obs {
namespace {

void AppendU64(std::string& out, const char* key, uint64_t value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "\"%s\":%llu", key,
                static_cast<unsigned long long>(value));
  out += buffer;
}

}  // namespace

uint64_t SweepProfile::TotalArcs() const {
  uint64_t total = 0;
  for (const LevelProfile& level : levels) total += level.arcs;
  return total;
}

uint64_t SweepProfile::TotalVertices() const {
  uint64_t total = 0;
  for (const LevelProfile& level : levels) total += level.vertices;
  return total;
}

uint64_t SweepProfile::TotalBytes() const {
  uint64_t total = 0;
  for (const LevelProfile& level : levels) total += level.bytes;
  return total;
}

std::string SweepProfile::ToJson() const {
  std::string out = "{";
  AppendU64(out, "k", k);
  out += ",";
  AppendU64(out, "sweep_nanos", sweep_nanos);
  out += ",\"upward\":{";
  AppendU64(out, "queue_pops", upward.queue_pops);
  out += ",";
  AppendU64(out, "arcs_relaxed", upward.arcs_relaxed);
  out += ",";
  AppendU64(out, "nanos", upward.nanos);
  out += "},\"levels\":[";
  bool first = true;
  for (const LevelProfile& level : levels) {
    if (!first) out += ",";
    first = false;
    out += "{";
    AppendU64(out, "level", level.level);
    out += ",";
    AppendU64(out, "vertices", level.vertices);
    out += ",";
    AppendU64(out, "arcs", level.arcs);
    out += ",";
    AppendU64(out, "nanos", level.nanos);
    out += ",";
    AppendU64(out, "bytes", level.bytes);
    out += "}";
  }
  out += "]}";
  return out;
}

uint64_t ModelSweepBytes(uint64_t vertices, uint64_t arcs, uint32_t k,
                         bool implicit_init) {
  const uint64_t lane_bytes = uint64_t{4} * k;
  uint64_t bytes = 0;
  bytes += vertices * lane_bytes;        // label lanes written
  bytes += (vertices + 1) * 4;           // CSR arc-offset column
  bytes += arcs * (8 + lane_bytes);      // DownArc records + tail label reads
  if (implicit_init) bytes += (vertices + 7) / 8;  // visit-mark bitmap
  return bytes;
}

}  // namespace phast::obs

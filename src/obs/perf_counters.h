// Hardware performance counters over perf_event_open (DESIGN.md §8).
//
// A PerfCounterGroup opens one event group (cycles, instructions, LLC
// references/misses, branch misses) for the calling thread and exposes
// Start/Stop/Read. Degradation is graceful and silent by design: when the
// perf interface is unavailable — non-Linux build, seccomp-filtered
// container, perf_event_paranoid too strict, the usual CI situation — the
// group becomes a no-op, Available() returns false, and readings are
// all-zero. Callers never need to branch on platform.
//
// Counters attach to any span by composition: open a group, Start() where
// the span opens, Read() where it closes (ScopedPerfSample does exactly
// that as RAII).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace phast::obs {

/// One reading of the fixed event set; zeros when unavailable.
struct PerfSample {
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t cache_references = 0;  ///< LLC references
  uint64_t cache_misses = 0;      ///< LLC misses
  uint64_t branch_misses = 0;

  [[nodiscard]] double Ipc() const {
    return cycles > 0 ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
  }
};

class PerfCounterGroup {
 public:
  /// Opens the counters for the calling thread; on any failure the whole
  /// group silently degrades to a no-op (all-or-nothing, so a sample is
  /// never a mix of live and dead counters).
  PerfCounterGroup();
  ~PerfCounterGroup();
  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  [[nodiscard]] bool Available() const { return !fds_.empty(); }

  /// Resets and enables the group (no-op when unavailable).
  void Start();
  /// Disables the group; Read() afterwards returns the frozen counts.
  void Stop();
  [[nodiscard]] PerfSample Read() const;

 private:
  std::vector<int> fds_;  ///< one fd per event, fds_[0] is the group leader
};

/// RAII: Start() on construction; Stop() and store Read() into `out` on
/// destruction. `group` and `out` must outlive the scope.
class ScopedPerfSample {
 public:
  ScopedPerfSample(PerfCounterGroup& group, PerfSample& out)
      : group_(group), out_(out) {
    group_.Start();
  }
  ~ScopedPerfSample() {
    group_.Stop();
    out_ = group_.Read();
  }
  ScopedPerfSample(const ScopedPerfSample&) = delete;
  ScopedPerfSample& operator=(const ScopedPerfSample&) = delete;

 private:
  PerfCounterGroup& group_;
  PerfSample& out_;
};

/// "cycles=... instructions=... ipc=... llc_miss=.../... br_miss=..." or
/// "perf counters unavailable".
[[nodiscard]] std::string FormatPerfSample(const PerfSample& sample,
                                           bool available);

}  // namespace phast::obs

// Engine-wide scoped-span tracing (DESIGN.md §8).
//
// PHAST_SPAN("name") opens an RAII span that covers the rest of the
// enclosing scope; spans nest naturally with scopes and may carry one
// integer argument (PHAST_SPAN_ARG) — a trace id, a sweep level, a batch
// width. Completed spans land in a lock-free single-writer buffer per
// thread; CollectSpans()/RenderChromeTrace() snapshot every thread's
// buffer into Chrome trace-event JSON loadable in chrome://tracing or
// Perfetto.
//
// Two gates keep the cost at zero when unwanted:
//  - Compile time: the PHAST_TRACING CMake option (default ON) defines
//    PHAST_TRACING_ENABLED. With the option OFF the macros expand to
//    nothing and instrumented code is identical to an untraced build
//    (bench_kernels' BM_SpanOverhead pins this).
//  - Run time: tracing starts disabled; EnableTracing(true) turns it on.
//    A disabled span is one relaxed atomic load.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace phast::obs {

/// One completed span. `name` must point to static-storage text (the
/// macros pass string literals); records are 40 bytes so a thread buffer
/// stays cache-friendly.
struct SpanRecord {
  const char* name = nullptr;
  uint64_t start_ns = 0;  ///< TraceClockNs() at open
  uint64_t end_ns = 0;    ///< TraceClockNs() at close
  uint64_t arg = 0;       ///< optional payload (0 = none)
  uint32_t tid = 0;       ///< small sequential trace-thread id
};

/// Runtime master switch; spans opened while disabled record nothing.
void EnableTracing(bool enabled);
[[nodiscard]] bool TracingEnabled();

/// Monotonic nanoseconds (steady clock) used for span timestamps.
[[nodiscard]] uint64_t TraceClockNs();

/// Appends a completed span to the calling thread's buffer. Buffers are
/// fixed-size; when one fills up further spans are dropped (and counted)
/// rather than overwriting history, so a snapshot is always a prefix of
/// the truth.
void RecordSpan(const char* name, uint64_t start_ns, uint64_t end_ns,
                uint64_t arg);

/// Snapshot of every thread's completed spans, in per-thread record order.
/// Safe to call while other threads trace (they may append concurrently;
/// the snapshot just stops at each buffer's published count).
[[nodiscard]] std::vector<SpanRecord> CollectSpans();

/// Total spans dropped to full buffers since the last ClearSpans().
[[nodiscard]] uint64_t DroppedSpanCount();

/// Resets all buffers and the drop counter. Call only at quiesce points —
/// no thread may be inside a span or concurrently recording.
void ClearSpans();

/// Renders the collected spans as Chrome trace-event JSON: an object with
/// a "traceEvents" array of paired B/E duration events, timestamps in
/// microseconds rebased to the earliest span. Per (pid, tid) the events
/// are emitted in nondecreasing-ts order with properly nested B/E pairs
/// (a child span leaking past its parent is clamped to the parent's end).
[[nodiscard]] std::string RenderChromeTrace();

/// RenderChromeTrace() to a file; Require()s the write succeeds.
void WriteChromeTraceFile(const std::string& path);

/// RAII span. Prefer the PHAST_SPAN macros; use this directly only where
/// the name is not a literal. Samples the clock only when tracing is
/// enabled at open, so a disabled span costs one relaxed load.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, uint64_t arg = 0) {
    if (TracingEnabled()) {
      name_ = name;
      arg_ = arg;
      start_ns_ = TraceClockNs();
    }
  }
  ~ScopedSpan() {
    if (name_ != nullptr) RecordSpan(name_, start_ns_, TraceClockNs(), arg_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  uint64_t start_ns_ = 0;
  uint64_t arg_ = 0;
};

}  // namespace phast::obs

#if PHAST_TRACING_ENABLED
#define PHAST_SPAN_CAT2(a, b) a##b
#define PHAST_SPAN_CAT(a, b) PHAST_SPAN_CAT2(a, b)
/// Opens a span named `name` (a string literal) covering the rest of the
/// enclosing scope.
#define PHAST_SPAN(name) \
  const ::phast::obs::ScopedSpan PHAST_SPAN_CAT(phast_span_, __COUNTER__)(name)
/// PHAST_SPAN with one integer argument attached (trace id, level, ...).
#define PHAST_SPAN_ARG(name, arg)                                        \
  const ::phast::obs::ScopedSpan PHAST_SPAN_CAT(phast_span_, __COUNTER__)( \
      name, static_cast<uint64_t>(arg))
#else
#define PHAST_SPAN(name) static_cast<void>(0)
#define PHAST_SPAN_ARG(name, arg) static_cast<void>(0)
#endif

#include "obs/customize_profile.h"

#include <algorithm>
#include <cstdio>

namespace phast::obs {
namespace {

void AppendU64(std::string& out, const char* key, uint64_t value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "\"%s\":%llu", key,
                static_cast<unsigned long long>(value));
  out += buffer;
}

}  // namespace

uint64_t CustomizeProfile::TotalTriangles() const {
  uint64_t total = 0;
  for (const CustomizeLevel& l : levels) total += l.triangles;
  return total;
}

uint32_t CustomizeProfile::MaxLevelWidth() const {
  uint32_t widest = 0;
  for (const CustomizeLevel& l : levels) {
    widest = std::max(widest, l.vertices);
  }
  return widest;
}

std::string CustomizeProfile::ToJson() const {
  std::string out = "{";
  AppendU64(out, "threads", threads);
  out += ",";
  AppendU64(out, "reset_nanos", reset_nanos);
  out += ",";
  AppendU64(out, "index_nanos", index_nanos);
  out += ",";
  AppendU64(out, "num_levels", NumLevels());
  out += ",";
  AppendU64(out, "total_triangles", TotalTriangles());
  out += ",";
  AppendU64(out, "max_level_width", MaxLevelWidth());
  out += ",\"levels\":[";
  bool first = true;
  for (const CustomizeLevel& l : levels) {
    if (!first) out += ",";
    first = false;
    out += "{";
    AppendU64(out, "level", l.level);
    out += ",";
    AppendU64(out, "vertices", l.vertices);
    out += ",";
    AppendU64(out, "triangles", l.triangles);
    out += ",";
    AppendU64(out, "nanos", l.nanos);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace phast::obs

#include "obs/perf_counters.h"

#include <cstdio>
#include <cstring>

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define PHAST_HAVE_PERF_EVENT 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#else
#define PHAST_HAVE_PERF_EVENT 0
#endif

namespace phast::obs {

#if PHAST_HAVE_PERF_EVENT

namespace {

/// The fixed event set; field offsets must match PerfSample's members.
constexpr uint64_t kEventConfigs[] = {
    PERF_COUNT_HW_CPU_CYCLES,       PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_REFERENCES, PERF_COUNT_HW_CACHE_MISSES,
    PERF_COUNT_HW_BRANCH_MISSES,
};
constexpr size_t kNumEvents = sizeof(kEventConfigs) / sizeof(kEventConfigs[0]);

int OpenEvent(uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = group_fd == -1 ? 1 : 0;  // the leader gates the group
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return static_cast<int>(syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                                  /*cpu=*/-1, group_fd, /*flags=*/0UL));
}

}  // namespace

PerfCounterGroup::PerfCounterGroup() {
  fds_.reserve(kNumEvents);
  for (const uint64_t config : kEventConfigs) {
    const int group_fd = fds_.empty() ? -1 : fds_.front();
    const int fd = OpenEvent(config, group_fd);
    if (fd < 0) {
      // All-or-nothing: a partially open group would skew derived ratios.
      for (const int open_fd : fds_) close(open_fd);
      fds_.clear();
      return;
    }
    fds_.push_back(fd);
  }
}

PerfCounterGroup::~PerfCounterGroup() {
  for (const int fd : fds_) close(fd);
}

void PerfCounterGroup::Start() {
  if (fds_.empty()) return;
  ioctl(fds_.front(), PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(fds_.front(), PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

void PerfCounterGroup::Stop() {
  if (fds_.empty()) return;
  ioctl(fds_.front(), PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
}

PerfSample PerfCounterGroup::Read() const {
  PerfSample sample;
  if (fds_.empty()) return sample;
  uint64_t* const fields[kNumEvents] = {
      &sample.cycles, &sample.instructions, &sample.cache_references,
      &sample.cache_misses, &sample.branch_misses};
  for (size_t i = 0; i < kNumEvents; ++i) {
    uint64_t value = 0;
    if (read(fds_[i], &value, sizeof(value)) == sizeof(value)) {
      *fields[i] = value;
    }
  }
  return sample;
}

#else  // !PHAST_HAVE_PERF_EVENT

PerfCounterGroup::PerfCounterGroup() = default;
PerfCounterGroup::~PerfCounterGroup() = default;
void PerfCounterGroup::Start() {}
void PerfCounterGroup::Stop() {}
PerfSample PerfCounterGroup::Read() const { return PerfSample{}; }

#endif  // PHAST_HAVE_PERF_EVENT

std::string FormatPerfSample(const PerfSample& sample, bool available) {
  if (!available) return "perf counters unavailable";
  char buffer[192];
  std::snprintf(buffer, sizeof(buffer),
                "cycles=%llu instructions=%llu ipc=%.2f llc_miss=%llu/%llu "
                "br_miss=%llu",
                static_cast<unsigned long long>(sample.cycles),
                static_cast<unsigned long long>(sample.instructions),
                sample.Ipc(),
                static_cast<unsigned long long>(sample.cache_misses),
                static_cast<unsigned long long>(sample.cache_references),
                static_cast<unsigned long long>(sample.branch_misses));
  return buffer;
}

}  // namespace phast::obs

// Per-level sweep profiling (DESIGN.md §8): the paper's Figure 1 argues the
// sweep's character from how vertices and arcs distribute across CH levels —
// a handful of huge low levels scanned at memory bandwidth and a long tail
// of tiny high ones. SweepProfile captures exactly that for one batch:
// per-level vertex/arc counts, kernel nanoseconds, and modeled bytes (so a
// derived effective bandwidth), plus the upward CH search's queue/arc work.
// Collection is opt-in via PhastOptions::collect_profile.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace phast::obs {

/// One level group of a profiled sweep.
struct LevelProfile {
  uint32_t level = 0;     ///< CH level (the sweep visits levels descending)
  uint32_t vertices = 0;  ///< sweep positions in this level group
  uint64_t arcs = 0;      ///< incoming downward arcs scanned
  uint64_t nanos = 0;     ///< wall time of the level's kernel call
  uint64_t bytes = 0;     ///< modeled bytes touched (ModelSweepBytes)

  /// Effective bandwidth in GB/s; 0 when the level timed below resolution.
  [[nodiscard]] double BandwidthGBps() const {
    return nanos > 0 ? static_cast<double>(bytes) / static_cast<double>(nanos)
                     : 0.0;
  }
};

/// Phase-one (upward CH search) work counters for the batch.
struct UpwardStats {
  uint64_t queue_pops = 0;    ///< heap extractions across all k sources
  uint64_t arcs_relaxed = 0;  ///< upward arcs whose relaxation was attempted
  uint64_t nanos = 0;         ///< wall time of the whole upward phase
};

/// Profile of one batch (k simultaneous trees). Levels appear in sweep
/// order, i.e. descending CH level.
struct SweepProfile {
  uint32_t k = 0;
  UpwardStats upward;
  std::vector<LevelProfile> levels;
  uint64_t sweep_nanos = 0;  ///< whole-sweep wall time (all levels)

  [[nodiscard]] uint64_t TotalArcs() const;
  [[nodiscard]] uint64_t TotalVertices() const;
  [[nodiscard]] uint64_t TotalBytes() const;

  /// Compact JSON object ({"k":..,"upward":{..},"levels":[..]}) used by the
  /// bench emitters and phast_trace --json.
  [[nodiscard]] std::string ToJson() const;
};

/// Models the bytes a level-ordered sweep touches for one level group:
/// label writes (vertices*k lanes), arc records and tail-label reads
/// (arcs * (record + k lanes)), the CSR offset column, and — under implicit
/// init — the visit-mark bitmap. A traffic model, not a measurement: it
/// counts each byte once and ignores caching, so the derived "effective
/// bandwidth" is comparable across levels and machines but is not DRAM
/// traffic (hardware counters cover that side).
[[nodiscard]] uint64_t ModelSweepBytes(uint64_t vertices, uint64_t arcs,
                                       uint32_t k, bool implicit_init);

}  // namespace phast::obs

#include "obs/trace.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <utility>

#include "util/error.h"
#include "util/thread_annotations.h"

namespace phast::obs {
namespace {

std::atomic<bool> g_tracing_enabled{false};

/// Fixed-capacity single-writer span buffer. The owning thread appends with
/// plain stores published by a release store of `count`; collectors read
/// `count` with acquire and only touch slots below it, so no locks sit on
/// the recording path. On overflow new spans are dropped (never
/// overwritten): a snapshot is always a stable prefix of what the thread
/// recorded.
struct ThreadBuffer {
  static constexpr size_t kCapacity = size_t{1} << 14;  // 16k spans/thread

  explicit ThreadBuffer(uint32_t thread_id) : tid(thread_id) {}

  void Push(const char* name, uint64_t start_ns, uint64_t end_ns,
            uint64_t arg) {
    const size_t index = count.load(std::memory_order_relaxed);
    if (index >= kCapacity) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    spans[index] = SpanRecord{name, start_ns, end_ns, arg, tid};
    count.store(index + 1, std::memory_order_release);
  }

  std::array<SpanRecord, kCapacity> spans;
  std::atomic<size_t> count{0};
  std::atomic<uint64_t> dropped{0};
  uint32_t tid;
};

/// Registry of every thread's buffer. Buffers outlive their threads (the
/// registry owns them) so spans recorded by short-lived workers — server
/// connection threads, OpenMP pools — survive until export.
struct Registry {
  AnnotatedMutex mu;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers GUARDED_BY(mu);
};

Registry& GlobalRegistry() {
  static Registry registry;
  return registry;
}

ThreadBuffer& LocalBuffer() {
  thread_local ThreadBuffer* buffer = [] {
    Registry& registry = GlobalRegistry();
    const MutexLock lock(registry.mu);
    const auto tid = static_cast<uint32_t>(registry.buffers.size());
    registry.buffers.push_back(std::make_unique<ThreadBuffer>(tid));
    return registry.buffers.back().get();
  }();
  return *buffer;
}

void AppendJsonEscaped(std::string& out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += hex;
        } else {
          out += c;
        }
    }
  }
}

void AppendEvent(std::string& out, bool& first, char phase,
                 const SpanRecord& span, uint64_t ts_ns, uint64_t base_ns) {
  if (!first) out += ',';
  first = false;
  out += "\n{\"name\":\"";
  AppendJsonEscaped(out, span.name);
  char buffer[128];
  const uint64_t rebased = ts_ns - base_ns;
  // Chrome trace timestamps are microseconds; keep ns precision in the
  // fraction. Integer-derived, so per-tid monotonicity survives printing.
  std::snprintf(buffer, sizeof(buffer),
                "\",\"cat\":\"phast\",\"ph\":\"%c\",\"ts\":%llu.%03llu,"
                "\"pid\":1,\"tid\":%u",
                phase, static_cast<unsigned long long>(rebased / 1000),
                static_cast<unsigned long long>(rebased % 1000), span.tid);
  out += buffer;
  if (phase == 'B' && span.arg != 0) {
    std::snprintf(buffer, sizeof(buffer), ",\"args\":{\"arg\":%llu}",
                  static_cast<unsigned long long>(span.arg));
    out += buffer;
  }
  out += '}';
}

}  // namespace

void EnableTracing(bool enabled) {
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

bool TracingEnabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

uint64_t TraceClockNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void RecordSpan(const char* name, uint64_t start_ns, uint64_t end_ns,
                uint64_t arg) {
  LocalBuffer().Push(name, start_ns, end_ns, arg);
}

std::vector<SpanRecord> CollectSpans() {
  Registry& registry = GlobalRegistry();
  const MutexLock lock(registry.mu);
  std::vector<SpanRecord> all;
  for (const auto& buffer : registry.buffers) {
    const size_t n = buffer->count.load(std::memory_order_acquire);
    all.insert(all.end(), buffer->spans.begin(), buffer->spans.begin() + n);
  }
  return all;
}

uint64_t DroppedSpanCount() {
  Registry& registry = GlobalRegistry();
  const MutexLock lock(registry.mu);
  uint64_t total = 0;
  for (const auto& buffer : registry.buffers) {
    total += buffer->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

void ClearSpans() {
  Registry& registry = GlobalRegistry();
  const MutexLock lock(registry.mu);
  for (const auto& buffer : registry.buffers) {
    buffer->count.store(0, std::memory_order_release);
    buffer->dropped.store(0, std::memory_order_relaxed);
  }
}

std::string RenderChromeTrace() {
  std::vector<SpanRecord> spans = CollectSpans();
  // Group per tid and order parents before children: start ascending, then
  // end descending so the longer (outer) span of a shared start comes first.
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.end_ns > b.end_ns;
            });
  uint64_t base_ns = UINT64_MAX;
  for (const SpanRecord& span : spans) base_ns = std::min(base_ns, span.start_ns);
  if (spans.empty()) base_ns = 0;

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  size_t i = 0;
  while (i < spans.size()) {
    size_t j = i;
    while (j < spans.size() && spans[j].tid == spans[i].tid) ++j;
    // Emit the tid's run as properly nested B/E pairs: a stack of open
    // spans, each with an end clamped into its parent (clock jitter can
    // make a child appear to outlive the scope that encloses it).
    std::vector<std::pair<const SpanRecord*, uint64_t>> open;
    for (; i < j; ++i) {
      const SpanRecord& span = spans[i];
      while (!open.empty() && open.back().second <= span.start_ns) {
        AppendEvent(out, first, 'E', *open.back().first, open.back().second,
                    base_ns);
        open.pop_back();
      }
      uint64_t end_ns = std::max(span.end_ns, span.start_ns);
      if (!open.empty()) end_ns = std::min(end_ns, open.back().second);
      AppendEvent(out, first, 'B', span, span.start_ns, base_ns);
      open.emplace_back(&span, end_ns);
    }
    while (!open.empty()) {
      AppendEvent(out, first, 'E', *open.back().first, open.back().second,
                  base_ns);
      open.pop_back();
    }
  }
  out += "\n]}\n";
  return out;
}

void WriteChromeTraceFile(const std::string& path) {
  const std::string json = RenderChromeTrace();
  std::FILE* file = std::fopen(path.c_str(), "w");
  Require(file != nullptr, "cannot open trace output file: " + path);
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool closed = std::fclose(file) == 0;
  Require(written == json.size() && closed,
          "short write to trace output file: " + path);
}

}  // namespace phast::obs

// phast_trace — tracing & profiling driver (DESIGN.md §8).
//
// Builds a synthetic country, runs profiled PHAST batches with tracing
// enabled, prints the per-level sweep profile (the paper's Figure 1 shape:
// vertices/arcs/time/modeled bandwidth per CH level) plus upward-search
// stats and hardware counters when the perf interface is available, and
// writes a Chrome trace-event JSON loadable in chrome://tracing / Perfetto.
//
//   phast_trace --trace-out=trace.json
//   phast_trace --width=160 --height=160 --k=8 --sweeps=4 --json
//
// Exit code 0 = success, 2 = usage error.
#include <cstdio>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "obs/contraction_profile.h"
#include "obs/perf_counters.h"
#include "obs/sweep_profile.h"
#include "obs/trace.h"
#include "phast/phast.h"
#include "phast/prepare.h"
#include "util/cli.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace phast;
  const CommandLine cli(argc, argv);
  if (cli.Has("help")) {
    std::printf(
        "usage: %s [--width=W --height=H --seed=S] [--k=K] [--sweeps=N]\n"
        "          [--ch-threads=N]    contraction threads (0 = all)\n"
        "          [--trace-out=FILE]  write Chrome trace JSON\n"
        "          [--json]            print sweep + contraction profiles as "
        "JSON\n",
        cli.ProgramName().c_str());
    return 0;
  }

  obs::EnableTracing(true);

  CountryParams params;
  params.width = static_cast<uint32_t>(cli.GetInt("width", 96));
  params.height = static_cast<uint32_t>(cli.GetInt("height", 96));
  params.seed = static_cast<uint64_t>(cli.GetInt("seed", 1));
  const auto k = static_cast<uint32_t>(cli.GetInt("k", 4));
  const int sweeps = static_cast<int>(cli.GetInt("sweeps", 4));
  if (k == 0 || sweeps <= 0) {
    std::fprintf(stderr, "phast_trace: --k and --sweeps must be positive\n");
    return 2;
  }

  PrepareOptions prepare_options;
  prepare_options.ch_params.threads =
      static_cast<uint32_t>(cli.GetInt("ch-threads", 0));
  const PreparedNetwork prepared = [&] {
    PHAST_SPAN("trace.prepare");
    return PrepareNetwork(GenerateCountry(params).edges, prepare_options);
  }();
  const obs::ContractionProfile& ch_profile = prepared.ch_stats.profile;
  std::printf(
      "instance: %u vertices, %u CH levels (contraction: %u threads, "
      "%u rounds, max batch %u, avg %.1f, %.2fs)\n",
      prepared.NumVertices(), prepared.ch.NumLevels(), ch_profile.threads,
      ch_profile.NumRounds(), ch_profile.MaxBatch(), ch_profile.AvgBatch(),
      prepared.ch_stats.seconds);

  Phast::Options options;
  options.collect_profile = true;
  const Phast engine(prepared.ch, options);
  Phast::Workspace ws = engine.MakeWorkspace(k);

  Rng rng(params.seed + 1);
  std::vector<VertexId> sources(k);
  obs::PerfCounterGroup perf;
  obs::PerfSample sample;
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    for (VertexId& s : sources) {
      s = static_cast<VertexId>(rng.NextBounded(engine.NumVertices()));
    }
    const obs::ScopedPerfSample scoped(perf, sample);
    engine.ComputeTrees(sources, ws);
  }

  const obs::SweepProfile& profile = ws.Profile();
  std::printf("last batch (k=%u): upward %.3f ms (%llu pops, %llu arcs), "
              "sweep %.3f ms\n",
              profile.k, static_cast<double>(profile.upward.nanos) * 1e-6,
              static_cast<unsigned long long>(profile.upward.queue_pops),
              static_cast<unsigned long long>(profile.upward.arcs_relaxed),
              static_cast<double>(profile.sweep_nanos) * 1e-6);
  std::printf("%8s %10s %12s %10s %10s\n", "level", "vertices", "arcs", "us",
              "GB/s");
  for (const obs::LevelProfile& level : profile.levels) {
    std::printf("%8u %10u %12llu %10.1f %10.2f\n", level.level, level.vertices,
                static_cast<unsigned long long>(level.arcs),
                static_cast<double>(level.nanos) * 1e-3,
                level.BandwidthGBps());
  }
  std::printf("perf: %s\n",
              obs::FormatPerfSample(sample, perf.Available()).c_str());
  if (cli.GetBool("json", false)) {
    std::printf("%s\n", profile.ToJson().c_str());
    std::printf("%s\n", ch_profile.ToJson().c_str());
  }

  if (cli.Has("trace-out")) {
    const std::string path = cli.GetString("trace-out", "");
    obs::WriteChromeTraceFile(path);
    std::printf("trace written to %s (%zu spans, %llu dropped)\n",
                path.c_str(), obs::CollectSpans().size(),
                static_cast<unsigned long long>(obs::DroppedSpanCount()));
  }
  return 0;
}

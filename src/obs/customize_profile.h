// Per-level customization profiling: metric customization (src/ch/
// customize.*) re-relaxes shortcut weights bottom-up, one ascending level
// group at a time, and the shape of those groups — how many vertices each
// level holds, how many lower triangles they relax — determines both the
// customization wall-time and its parallel scaling. Like ContractionProfile,
// this struct is filled by the engine (CustomizeWeights populates it into
// CustomizeStats) and rendered to JSON for the bench emitters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace phast::obs {

/// One ascending level group of the customization sweep.
struct CustomizeLevel {
  uint32_t level = 0;       ///< CH level of the group's via vertices
  uint32_t vertices = 0;    ///< via vertices relaxed in this group
  uint64_t triangles = 0;   ///< lower triangles enumerated through them
  uint64_t nanos = 0;       ///< wall time of the group's parallel pass
};

/// Profile of one customization run. Levels appear in execution order
/// (ascending CH level); the original-arc reweighting pass is reported
/// separately because it relaxes no triangles.
struct CustomizeProfile {
  uint32_t threads = 0;        ///< resolved thread count of the run
  uint64_t reset_nanos = 0;    ///< original-arc reweight + shortcut reset
  uint64_t index_nanos = 0;    ///< adjacency/lookup index construction
  std::vector<CustomizeLevel> levels;

  [[nodiscard]] uint32_t NumLevels() const {
    return static_cast<uint32_t>(levels.size());
  }
  /// Total lower triangles relaxed across all level groups.
  [[nodiscard]] uint64_t TotalTriangles() const;
  /// Largest level group (vertices relaxed in one parallel pass).
  [[nodiscard]] uint32_t MaxLevelWidth() const;

  /// Compact JSON object ({"threads":..,"levels":[..],..}) used by
  /// bench_customization.
  [[nodiscard]] std::string ToJson() const;
};

}  // namespace phast::obs

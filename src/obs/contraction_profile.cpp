#include "obs/contraction_profile.h"

#include <algorithm>
#include <cstdio>

namespace phast::obs {
namespace {

void AppendU64(std::string& out, const char* key, uint64_t value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "\"%s\":%llu", key,
                static_cast<unsigned long long>(value));
  out += buffer;
}

}  // namespace

uint32_t ContractionProfile::MaxBatch() const {
  uint32_t max_batch = 0;
  for (const ContractionRound& r : rounds) {
    max_batch = std::max(max_batch, r.batch);
  }
  return max_batch;
}

double ContractionProfile::AvgBatch() const {
  if (rounds.empty()) return 0.0;
  return static_cast<double>(TotalContracted()) /
         static_cast<double>(rounds.size());
}

uint64_t ContractionProfile::TotalContracted() const {
  uint64_t total = 0;
  for (const ContractionRound& r : rounds) total += r.batch;
  return total;
}

uint64_t ContractionProfile::TotalWitnessSettled() const {
  uint64_t total = init_witness_settled;
  for (const ContractionRound& r : rounds) total += r.witness_settled;
  return total;
}

std::string ContractionProfile::ToJson() const {
  std::string out = "{";
  AppendU64(out, "threads", threads);
  out += ",";
  AppendU64(out, "batch_neighborhood", batch_neighborhood);
  out += ",";
  AppendU64(out, "num_rounds", NumRounds());
  out += ",";
  AppendU64(out, "max_batch", MaxBatch());
  out += ",";
  AppendU64(out, "total_contracted", TotalContracted());
  out += ",";
  AppendU64(out, "total_witness_settled", TotalWitnessSettled());
  out += ",\"init\":{";
  AppendU64(out, "nanos", init_nanos);
  out += ",";
  AppendU64(out, "witness_searches", init_witness_searches);
  out += ",";
  AppendU64(out, "witness_settled", init_witness_settled);
  out += "},\"rounds\":[";
  bool first = true;
  for (const ContractionRound& r : rounds) {
    if (!first) out += ",";
    first = false;
    out += "{";
    AppendU64(out, "round", r.round);
    out += ",";
    AppendU64(out, "batch", r.batch);
    out += ",";
    AppendU64(out, "refreshed", r.refreshed);
    out += ",";
    AppendU64(out, "shortcuts", r.shortcuts);
    out += ",";
    AppendU64(out, "witness_searches", r.witness_searches);
    out += ",";
    AppendU64(out, "witness_settled", r.witness_settled);
    out += ",";
    AppendU64(out, "nanos", r.nanos);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace phast::obs

#pragma once

#include <vector>

#include "graph/csr.h"
#include "graph/types.h"
#include "phast/phast.h"

namespace phast {

// Sentinel contracts the tree extraction leans on: an unreached vertex has
// label kInfWeight == 0xFFFFFFFF (what the SIMD min_epu32 saturates to) and
// parent kInvalidVertex == 0xFFFFFFFF, so "all bits set" uniformly means
// "absent" for both labels and parents.
static_assert(kInfWeight == 0xFFFFFFFFu && kInvalidVertex == 0xFFFFFFFFu,
              "tree extraction assumes all-ones sentinels for labels and "
              "parents");

/// Derives parent pointers *in the original graph* from exact distance
/// labels (§VII-A): one pass over the arc list of G, making u the parent of
/// v whenever d(v) == d(u) + l(u, v). Requires strictly positive original
/// arc lengths, otherwise zero-weight ties can produce cycles instead of a
/// tree. Unreached vertices and the source get kInvalidVertex.
[[nodiscard]] inline std::vector<VertexId> BuildTreeInOriginalGraph(
    const Graph& graph, const Phast& engine, const Phast::Workspace& ws,
    uint32_t tree = 0) {
  const VertexId n = graph.NumVertices();
  std::vector<VertexId> parent(n, kInvalidVertex);
  for (VertexId u = 0; u < n; ++u) {
    const Weight du = engine.Distance(ws, u, tree);
    if (du == kInfWeight) continue;
    for (const Arc& arc : graph.ArcsOf(u)) {
      const VertexId v = arc.other;
      if (parent[v] != kInvalidVertex) continue;  // first witness wins
      if (engine.Distance(ws, v, tree) == SaturatingAdd(du, arc.weight) &&
          engine.Distance(ws, v, tree) != 0) {
        parent[v] = u;
      }
    }
  }
  return parent;
}

/// Checks that `parent` is a valid shortest path tree for the given labels:
/// every reached non-source vertex has a parent whose label plus some arc
/// weight equals its own label, and following parents reaches the source.
[[nodiscard]] inline bool ValidateTree(const Graph& graph, VertexId source,
                                       const std::vector<Weight>& dist,
                                       const std::vector<VertexId>& parent) {
  const VertexId n = graph.NumVertices();
  if (dist.size() != n || parent.size() != n) return false;
  if (dist[source] != 0) return false;
  for (VertexId v = 0; v < n; ++v) {
    if (v == source || dist[v] == kInfWeight) {
      if (parent[v] != kInvalidVertex) return false;
      continue;
    }
    const VertexId p = parent[v];
    if (p == kInvalidVertex || dist[p] == kInfWeight) return false;
    bool arc_found = false;
    for (const Arc& arc : graph.ArcsOf(p)) {
      if (arc.other == v && SaturatingAdd(dist[p], arc.weight) == dist[v]) {
        arc_found = true;
        break;
      }
    }
    if (!arc_found) return false;
  }
  // Acyclicity: labels strictly decrease along parent chains (positive
  // weights), so parent chains cannot cycle; verify by bounded walking.
  for (VertexId v = 0; v < n; ++v) {
    VertexId cur = v;
    size_t steps = 0;
    while (cur != kInvalidVertex && cur != source) {
      cur = parent[cur];
      if (++steps > n) return false;
    }
  }
  return true;
}

}  // namespace phast

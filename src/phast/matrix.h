#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"
#include "phast/phast.h"

namespace phast {

/// How ComputeDistanceTable runs its M source trees. All modes produce
/// bit-identical tables; they trade restriction cost against sweep width.
enum class MatrixMode : uint8_t {
  kSingleTree,         // one full sweep per source
  kBatched,            // k-strided full sweeps (ComputeManyTrees)
  kRestricted,         // RPHAST restriction, one restricted sweep per source
  kRestrictedBatched,  // RPHAST restriction, k-strided restricted sweeps
};

const char* ToString(MatrixMode mode);

struct MatrixOptions {
  MatrixMode mode = MatrixMode::kRestrictedBatched;
  /// Trees per sweep for the batched modes (multiples of 8 keep AVX2
  /// eligible, multiples of 4 SSE; anything else sweeps scalar).
  uint32_t trees_per_sweep = 8;
};

/// Computes the M x N one-to-many distance table, row-major:
/// table[i * targets.size() + j] = dist(sources[i], targets[j]).
/// Returns an empty vector when either side is empty. Duplicate sources
/// and targets are allowed and simply repeat their rows/columns. The
/// restricted modes require a level-ordered engine with implicit
/// initialization (the defaults) — the same precondition as RPhast.
std::vector<Weight> ComputeDistanceTable(const Phast& engine,
                                         std::span<const VertexId> sources,
                                         std::span<const VertexId> targets,
                                         const MatrixOptions& options = {});

}  // namespace phast

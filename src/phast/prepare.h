#pragma once

#include <cstdint>
#include <vector>

#include "ch/ch_data.h"
#include "ch/contraction.h"
#include "graph/csr.h"
#include "graph/edge_list.h"
#include "graph/types.h"

namespace phast {

/// Options for the one-call preparation pipeline.
struct PrepareOptions {
  /// Relabel vertices in DFS discovery order first (the paper's default
  /// layout, §II-A) — improves locality for both Dijkstra and PHAST.
  bool dfs_relabel = true;
  /// Root for the DFS relabeling.
  VertexId dfs_root = 0;
  /// Keep only the largest strongly connected component. PHAST itself
  /// handles disconnected graphs, but all-pairs experiments want one SCC.
  bool restrict_to_largest_scc = true;
  CHParams ch_params;
};

/// A fully prepared network: the (possibly relabeled, possibly restricted)
/// graph, its contraction hierarchy, and the id mappings back to the
/// caller's original vertex numbering.
struct PreparedNetwork {
  Graph graph;
  CHData ch;
  CHStats ch_stats;

  /// original id -> prepared id, kInvalidVertex if dropped with the SCC.
  std::vector<VertexId> to_prepared;
  /// prepared id -> original id.
  std::vector<VertexId> to_original;

  [[nodiscard]] VertexId NumVertices() const { return graph.NumVertices(); }
};

/// The standard preparation pipeline used by every benchmark and example:
/// largest SCC -> DFS relabel -> CH preprocessing. Feed the result to
/// Phast, CHQuery, RPhast, Gphast, or the apps.
[[nodiscard]] PreparedNetwork PrepareNetwork(const EdgeList& raw,
                                             const PrepareOptions& options = {});

}  // namespace phast

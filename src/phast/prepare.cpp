#include "phast/prepare.h"

#include <numeric>

#include "graph/connectivity.h"
#include "graph/reorder.h"
#include "obs/trace.h"
#include "util/error.h"

namespace phast {

PreparedNetwork PrepareNetwork(const EdgeList& raw,
                               const PrepareOptions& options) {
  PHAST_SPAN("prepare.network");
  Require(raw.NumVertices() > 0, "cannot prepare an empty graph");
  PreparedNetwork prepared;

  // Step 1: optionally restrict to the largest SCC.
  EdgeList edges;
  if (options.restrict_to_largest_scc) {
    PHAST_SPAN("prepare.scc");
    SubgraphResult scc = LargestStronglyConnectedComponent(raw);
    edges = std::move(scc.edges);
    prepared.to_prepared = std::move(scc.old_to_new);
    prepared.to_original = std::move(scc.new_to_old);
  } else {
    edges = raw;
    prepared.to_prepared.resize(raw.NumVertices());
    std::iota(prepared.to_prepared.begin(), prepared.to_prepared.end(),
              VertexId{0});
    prepared.to_original = prepared.to_prepared;
  }

  // Step 2: optionally DFS-relabel; compose the mappings.
  if (options.dfs_relabel && edges.NumVertices() > 0) {
    PHAST_SPAN("prepare.dfs_relabel");
    const Graph unordered = Graph::FromEdgeList(edges);
    const Permutation dfs = DfsPermutation(
        unordered, options.dfs_root < unordered.NumVertices()
                       ? options.dfs_root
                       : 0);
    edges = ApplyPermutation(edges, dfs);
    for (VertexId& id : prepared.to_prepared) {
      if (id != kInvalidVertex) id = dfs[id];
    }
    std::vector<VertexId> new_to_old(prepared.to_original.size());
    for (VertexId old_new = 0; old_new < prepared.to_original.size();
         ++old_new) {
      new_to_old[dfs[old_new]] = prepared.to_original[old_new];
    }
    prepared.to_original = std::move(new_to_old);
  }

  // Step 3: CH preprocessing.
  PHAST_SPAN("prepare.ch");
  prepared.graph = Graph::FromEdgeList(edges);
  prepared.ch = BuildContractionHierarchy(prepared.graph, options.ch_params,
                                          &prepared.ch_stats);
  return prepared;
}

}  // namespace phast

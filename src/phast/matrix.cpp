// One-to-many distance tables — the batched application the paper's §VI
// gestures at (arc flags, POI search) and the RPHAST follow-up makes fast:
// M upward searches share one target-side restriction, and the batched
// modes sweep k trees per pass so the (restricted) arc stream is read once
// per k sources instead of once per source.
#include "phast/matrix.h"

#include <algorithm>

#include "phast/batch.h"
#include "phast/rphast.h"
#include "util/error.h"

namespace phast {

const char* ToString(MatrixMode mode) {
  switch (mode) {
    case MatrixMode::kSingleTree: return "single-tree";
    case MatrixMode::kBatched: return "batched";
    case MatrixMode::kRestricted: return "restricted";
    case MatrixMode::kRestrictedBatched: return "restricted-batched";
  }
  return "?";
}

std::vector<Weight> ComputeDistanceTable(const Phast& engine,
                                         std::span<const VertexId> sources,
                                         std::span<const VertexId> targets,
                                         const MatrixOptions& options) {
  if (sources.empty() || targets.empty()) return {};
  const VertexId n = engine.NumVertices();
  for (const VertexId s : sources) Require(s < n, "matrix source out of range");
  for (const VertexId t : targets) Require(t < n, "matrix target out of range");
  Require(options.trees_per_sweep >= 1,
          "matrix trees_per_sweep must be at least 1");

  const size_t rows = sources.size();
  const size_t cols = targets.size();
  std::vector<Weight> table(rows * cols);

  switch (options.mode) {
    case MatrixMode::kSingleTree: {
      Phast::Workspace ws = engine.MakeWorkspace(1);
      for (size_t i = 0; i < rows; ++i) {
        engine.ComputeTree(sources[i], ws);
        for (size_t j = 0; j < cols; ++j) {
          table[i * cols + j] = engine.Distance(ws, targets[j], 0);
        }
      }
      break;
    }
    case MatrixMode::kBatched: {
      BatchOptions batch;
      batch.trees_per_sweep = options.trees_per_sweep;
      // Rows are disjoint, so the parallel visitor writes race-free.
      ComputeManyTrees(engine, sources, batch,
                       [&](size_t i, const Phast::Workspace& ws,
                           uint32_t lane) {
                         for (size_t j = 0; j < cols; ++j) {
                           table[i * cols + j] =
                               engine.Distance(ws, targets[j], lane);
                         }
                       });
      break;
    }
    case MatrixMode::kRestricted: {
      const RPhast rphast(engine, targets);
      RPhast::Workspace ws = rphast.MakeWorkspace();
      for (size_t i = 0; i < rows; ++i) {
        rphast.ComputeTree(sources[i], ws);
        for (size_t j = 0; j < cols; ++j) {
          table[i * cols + j] = rphast.DistanceToTarget(ws, j);
        }
      }
      break;
    }
    case MatrixMode::kRestrictedBatched: {
      const RPhast rphast(engine, targets);
      const uint32_t k = options.trees_per_sweep;
      RPhast::BatchWorkspace ws = rphast.MakeBatchWorkspace(k);
      std::vector<VertexId> lane_sources(k);
      for (size_t base = 0; base < rows; base += k) {
        const size_t lanes = std::min<size_t>(k, rows - base);
        for (size_t l = 0; l < lanes; ++l) {
          lane_sources[l] = sources[base + l];
        }
        // Pad the tail chunk with its last source; padded lanes are
        // computed and discarded — k stays fixed so the kernel choice
        // (and therefore the arithmetic) never changes mid-table.
        for (size_t l = lanes; l < k; ++l) {
          lane_sources[l] = lane_sources[lanes - 1];
        }
        rphast.ComputeTrees(lane_sources, ws);
        for (size_t l = 0; l < lanes; ++l) {
          for (size_t j = 0; j < cols; ++j) {
            table[(base + l) * cols + j] =
                rphast.DistanceToTarget(ws, j, static_cast<uint32_t>(l));
          }
        }
      }
      break;
    }
  }
  return table;
}

}  // namespace phast
